package main

import (
	"strings"
	"testing"

	"o2k/internal/mesh"
	"o2k/internal/partition"
)

func testMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	f := mesh.NewUnitSquare(4, 2)
	f.Adapt(mesh.DefaultFront(2).At(0))
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRenderSVGByLevel(t *testing.T) {
	m := testMesh(t)
	svg := renderSVG(m, nil)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if got := strings.Count(svg, "<polygon"); got != m.NumTris() {
		t.Fatalf("polygons %d != triangles %d", got, m.NumTris())
	}
}

func TestRenderSVGByPartition(t *testing.T) {
	m := testMesh(t)
	xs := make([]float64, m.NumTris())
	ys := make([]float64, m.NumTris())
	w := make([]float64, m.NumTris())
	for i := range xs {
		xs[i], ys[i] = m.Centroid(i)
		w[i] = 1
	}
	part := partition.RCB(xs, ys, w, 4)
	svg := renderSVG(m, part)
	// At least two distinct partition colours must appear.
	distinct := 0
	for _, c := range palette[:4] {
		if strings.Contains(svg, c) {
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatalf("only %d partition colours rendered", distinct)
	}
}
