// Command meshsvg renders the adaptive mesh to SVG, one file per adaptation
// cycle, coloured by refinement level or by partition — a quick visual check
// that the moving front is tracked and the partitions stay compact.
//
// Usage:
//
//	meshsvg [-grid 16] [-levels 3] [-cycles 4] [-procs 8] [-color level|part] [-out .]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"o2k/internal/mesh"
	"o2k/internal/partition"
)

func main() {
	grid := flag.Int("grid", 16, "base grid dimension")
	levels := flag.Int("levels", 3, "maximum refinement depth")
	cycles := flag.Int("cycles", 4, "adaptation cycles")
	procs := flag.Int("procs", 8, "partition count (for -color part)")
	colorBy := flag.String("color", "level", "colour triangles by 'level' or 'part'")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	f := mesh.NewUnitSquare(*grid, *levels)
	front := mesh.DefaultFront(*levels)
	for c := 0; c < *cycles; c++ {
		f.Adapt(front.At(c))
		m := f.Snapshot()
		if err := m.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "meshsvg: cycle %d: %v\n", c, err)
			os.Exit(1)
		}
		var part []int32
		if *colorBy == "part" {
			xs := make([]float64, m.NumTris())
			ys := make([]float64, m.NumTris())
			w := make([]float64, m.NumTris())
			for t := 0; t < m.NumTris(); t++ {
				xs[t], ys[t] = m.Centroid(t)
				w[t] = 1
			}
			part = partition.RCB(xs, ys, w, *procs)
		}
		path := filepath.Join(*out, fmt.Sprintf("mesh_cycle%d.svg", c))
		if err := os.WriteFile(path, []byte(renderSVG(m, part)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "meshsvg:", err)
			os.Exit(1)
		}
		fmt.Printf("cycle %d: %d triangles, %d edges -> %s\n",
			c, m.NumTris(), m.NumEdges(), path)
	}
}

var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

func renderSVG(m *mesh.Mesh, part []int32) string {
	const size = 800.0
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		int(size), int(size), int(size), int(size))
	for t := 0; t < m.NumTris(); t++ {
		v := m.Tris[t]
		var color string
		if part != nil {
			color = palette[int(part[t])%len(palette)]
		} else {
			color = palette[int(m.Level[t])%len(palette)]
		}
		fmt.Fprintf(&b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s" stroke="#333" stroke-width="0.4"/>`+"\n",
			m.VX[v[0]]*size, (1-m.VY[v[0]])*size,
			m.VX[v[1]]*size, (1-m.VY[v[1]])*size,
			m.VX[v[2]]*size, (1-m.VY[v[2]])*size,
			color)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
