package main

// Daemon-mode subprocess tests: the serve subcommand is exercised as a real
// child process (same TestMain re-exec idiom as cli_test.go) so signal
// handling, the drain path, and the stderr port banner are tested exactly as
// an operator sees them.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestCLIVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	stdout, stderr, code := o2kbench(t, "-version")
	if code != 0 {
		t.Fatalf("-version exited %d (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"o2kbench ", "go: go", "cache schema: ", "cache fingerprint: "} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-version output lacks %q:\n%s", want, stdout)
		}
	}
	// The fingerprint fences the disk cache: it must be a stable hex digest,
	// not an empty or per-run value.
	a := fingerprintLine(t, stdout)
	b := fingerprintLine(t, func() string { out, _, _ := o2kbench(t, "-version"); return out }())
	if a == "" || a != b {
		t.Fatalf("fingerprint not stable across runs: %q vs %q", a, b)
	}
}

func fingerprintLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "cache fingerprint: "); ok {
			return rest
		}
	}
	return ""
}

func TestCLIServeDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), mainArgsEnv+"=serve -addr 127.0.0.1:0 -cache "+dir)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its concrete (port-0-assigned) address on stderr.
	sc := bufio.NewScanner(stderrPipe)
	var base string
	var stderrTail bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		stderrTail.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "o2kbench: serving on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address; stderr so far:\n%s", stderrTail.String())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
			stderrTail.WriteString(sc.Text() + "\n")
		}
	}()

	// Submit a quick experiment, then SIGTERM the daemon while the request
	// is in flight: drain must let it stream to completion and commit its
	// cells before the process exits cleanly.
	type post struct {
		status int
		body   string
		err    error
	}
	done := make(chan post, 1)
	go func() {
		resp, err := http.Post(base+"/v1/experiments", "application/json",
			strings.NewReader(`{"exp":"regular-control","quick":true}`))
		if err != nil {
			done <- post{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- post{status: resp.StatusCode, body: string(body), err: err}
	}()

	// Wait for admission (visible in the metrics gauge) before signalling.
	admitted := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(body), "o2k_requests_pending 1") {
				admitted = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !admitted {
		t.Fatalf("request never showed up in /metrics; stderr:\n%s", stderrTail.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed across the drain: %v\nstderr:\n%s", r.err, stderrTail.String())
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got status %d\nbody:\n%s", r.status, r.body)
	}
	// The stream must have reached its result line, exit 0.
	var last struct {
		Type   string `json:"type"`
		Exit   int    `json:"exit"`
		Output string `json:"output"`
	}
	lines := strings.Split(strings.TrimSpace(r.body), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final stream line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if last.Type != "result" || last.Exit != 0 || last.Output == "" {
		t.Fatalf("drain cut the stream short: type=%q exit=%d output=%d bytes",
			last.Type, last.Exit, len(last.Output))
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v\nstderr:\n%s", err, stderrTail.String())
	}
	// Drain committed the request's cells to the shared cache.
	cells := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".cell" {
			cells++
		}
		return nil
	})
	if cells == 0 {
		t.Fatalf("no cache entries committed; stderr:\n%s", stderrTail.String())
	}
	if !strings.Contains(stderrTail.String(), "o2kbench: draining") {
		t.Errorf("stderr never announced the drain:\n%s", stderrTail.String())
	}
}

func TestCLIServeUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	if _, stderr, code := o2kbench(t, "serve -leases"); code != 2 ||
		!strings.Contains(stderr, "-leases requires -cache") {
		t.Fatalf("serve -leases without -cache: code=%d stderr=%s", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "serve -engine warp"); code != 2 ||
		!strings.Contains(stderr, "warp") {
		t.Fatalf("serve -engine warp: code=%d stderr=%s", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "serve extra"); code != 2 ||
		!strings.Contains(stderr, "unexpected argument") {
		t.Fatalf("serve with positional arg: code=%d stderr=%s", code, stderr)
	}
}
