package main

// The serve subcommand: `o2kbench serve -addr :8080` runs the experiment
// engine as a long-running HTTP daemon (internal/server, DESIGN.md §5.11)
// instead of a one-shot table regeneration. It reuses the CLI's engine,
// cache, and lease setup verbatim, so a daemon and a `-workers` fleet
// sharing one -cache directory coordinate through the same lease files.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
	"o2k/internal/runner/lease"
	"o2k/internal/server"
	"o2k/internal/sim"
)

func runServe(args []string) int {
	fs := flag.NewFlagSet("o2kbench serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cacheDir := fs.String("cache", "", "persistent cell-cache directory shared with CLI runs and worker fleets")
	leasesOn := fs.Bool("leases", false, "with -cache: coordinate with other processes on the same cache directory\nthrough per-cell lease files")
	engine := fs.String("engine", "event", "simulation engine: event or goroutine")
	jobs := fs.Int("jobs", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-cell compute deadline (0 = none)")
	retries := fs.Int("cellretries", 0, "retry budget for cells that fail with a transient error")
	stallDeadline := fs.Duration("stalldeadline", sim.DefaultStallDeadline,
		"simulation stall watchdog (0 = off)")
	inflight := fs.Int("inflight", 4, "concurrently running experiment requests")
	queue := fs.Int("queue", 16, "requests allowed to wait for a run slot; beyond inflight+queue, 429")
	drainTimeout := fs.Duration("drain-timeout", time.Minute,
		"on SIGINT/SIGTERM: how long to wait for in-flight requests before closing connections")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "o2kbench serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *leasesOn && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "o2kbench serve: -leases requires -cache DIR")
		return 2
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "o2kbench serve: -cellretries must be >= 0")
		return 2
	}
	se, err := sim.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench serve:", err)
		return 2
	}
	sim.SetDefaultEngine(se)
	sim.SetStallDeadline(*stallDeadline)

	// The engine lives on the *process's* context, not the signal context:
	// a drain must let admitted requests finish and commit their cells, so
	// shutdown stops the listener, never the engine.
	eng := runner.NewWithPolicy(context.Background(), *jobs, runner.Policy{
		CellTimeout: *timeout,
		Retries:     *retries,
	})
	var dc *diskcache.Cache
	if *cacheDir != "" {
		if dc, err = diskcache.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench serve: cache disabled:", err)
			dc = nil
		} else {
			eng.SetCache(dc)
			if *leasesOn {
				eng.SetLeases(lease.New(lease.Config{
					Dir:   *cacheDir,
					Shard: 0, Shards: 1,
					Hook: leaseAuditHook(),
				}))
			}
		}
	}
	srv := server.New(server.Config{
		Engine:      eng,
		Cache:       dc,
		MaxInflight: *inflight,
		MaxQueue:    *queue,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench serve:", err)
		return 1
	}
	// The concrete address goes to stderr so scripts (and the drain test)
	// can discover a :0-assigned port.
	fmt.Fprintf(os.Stderr, "o2kbench: serving on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "o2kbench serve:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain: refuse new work, let in-flight requests stream to completion
	// (their cells commit to the cache on the way), then report and exit.
	srv.Drain()
	code := 0
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	fmt.Fprintln(os.Stderr, "o2kbench: draining")
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench serve: drain:", err)
		hs.Close()
		code = 1
	}
	fmt.Fprint(os.Stderr, "\n"+eng.Report().Table().String())
	return code
}
