package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"o2k/internal/experiments"
	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
)

func TestRegistryResolvesAllNames(t *testing.T) {
	o := experiments.QuickOpts()
	o.Procs = []int{1, 2}
	for _, name := range []string{"table1", "workloads", "loc", "fig2", "mesh-speedup"} {
		tabs, err := experiments.Run(name, o)
		if err != nil || len(tabs) == 0 {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := experiments.Run("nope", o); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestListTableCoversRegistry(t *testing.T) {
	tb := listTable()
	specs := experiments.List()
	if len(tb.Rows) != len(specs)+1 { // +1 for the "all" line
		t.Fatalf("list has %d rows, want %d", len(tb.Rows), len(specs)+1)
	}
	for i, s := range specs {
		if tb.Rows[i][0] != s.Name {
			t.Fatalf("row %d = %q, want %q", i, tb.Rows[i][0], s.Name)
		}
	}
	if tb.Rows[len(tb.Rows)-1][0] != "all" {
		t.Fatal(`list must end with the "all" pseudo-experiment`)
	}
}

func TestParseProcs(t *testing.T) {
	ps, err := parseProcs("1, 2,8")
	if err != nil || len(ps) != 3 || ps[2] != 8 {
		t.Fatalf("parseProcs: %v %v", ps, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2", "-3"} {
		if _, err := parseProcs(bad); err == nil {
			t.Fatalf("parseProcs accepted %q", bad)
		}
	}
}

func TestTablesSerializeToJSON(t *testing.T) {
	o := experiments.QuickOpts()
	o.Procs = []int{1, 2}
	tabs, err := experiments.Run("table1", o)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(tabs)
	if err != nil {
		t.Fatal(err)
	}
	var back []struct {
		Title  string
		Header []string
		Rows   [][]string
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Title == "" || len(back[0].Rows) == 0 {
		t.Fatalf("json round trip lost data: %+v", back)
	}
}

func TestCacheMaintenance(t *testing.T) {
	dir := t.TempDir()

	// Populate the cache by running a small experiment through an engine
	// wired exactly the way run() wires it.
	dc, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.QuickOpts()
	o.Procs = []int{1, 2}
	eng := runner.New(1)
	eng.SetCache(dc)
	if _, err := experiments.RunOn(eng, "mesh-speedup", o); err != nil {
		t.Fatal(err)
	}
	n, err := dc.Len()
	if err != nil || n == 0 {
		t.Fatalf("no cache entries written (n=%d, err=%v)", n, err)
	}

	if code := cacheMaintenance(dir, false, true); code != 0 {
		t.Fatalf("verify of a clean cache exited %d", code)
	}

	// Damage one entry: verify must report it (exit 1) and evict it.
	var victim string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" {
			victim = path
		}
		return nil
	})
	if err := os.WriteFile(victim, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := cacheMaintenance(dir, false, true); code != 1 {
		t.Fatalf("verify of a damaged cache exited %d, want 1", code)
	}
	if code := cacheMaintenance(dir, false, true); code != 0 {
		t.Fatal("verify did not evict the damaged entry")
	}

	if code := cacheMaintenance(dir, true, false); code != 0 {
		t.Fatal("clear failed")
	}
	if n, _ := dc.Len(); n != 0 {
		t.Fatalf("%d entries survived -cache-clear", n)
	}
}
