package main

// The -workers orchestrator (DESIGN.md §5.10): shard a sweep across forked
// worker subprocesses that cooperate through the cache directory's lease
// layer, survive any of them dying, and leave the parent to render the
// merged result.
//
// The design exploits the system's own guarantees instead of adding a
// results channel: every worker runs the same experiment suite with leases
// on (-worker i/N), so each unique cell is computed by exactly one live
// worker and committed to the shared cache; when the workers are done — or
// dead beyond their restart budget — the parent simply runs the suite
// in-process against the now-warm cache. That final pass IS the merge: it
// serves completed cells from disk, computes whatever a crashed fleet left
// missing, and by the simulator's determinism produces stdout byte-identical
// to a single-process run. Total worker failure therefore degrades to
// exactly the single-process behavior, never to a broken report.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// drainTimeout bounds how long the orchestrator waits for SIGTERMed workers
// to finish their in-flight cells before escalating to SIGKILL.
const drainTimeout = 20 * time.Second

// orchCfg parameterizes one worker fleet.
type orchCfg struct {
	workers   int                  // fleet size (>= 2)
	restarts  int                  // total respawn budget across the fleet
	chaosKill time.Duration        // SIGKILL a random live worker this often (0 = off)
	args      func(i int) []string // argv for worker slot i
}

// orchestrator tracks the live fleet so the signal-drain and chaos-kill
// loops can address workers that respawn under them.
type orchestrator struct {
	cfg orchCfg
	exe string

	mu    sync.Mutex
	live  map[int]*os.Process // by worker slot
	rng   *rand.Rand
	spent atomic.Int64 // respawns consumed

	completed atomic.Int64 // workers that exited by themselves (any exit code)
	gaveUp    atomic.Int64 // slots abandoned with the budget exhausted
}

// orchestrate runs the fleet to completion (or cancellation) and returns an
// error only when not a single worker could be started — every lesser
// failure is absorbed, because the parent's merge pass recomputes whatever
// the fleet did not finish.
func orchestrate(ctx context.Context, cfg orchCfg) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("workers: %w", err)
	}
	o := &orchestrator{
		cfg:  cfg,
		exe:  exe,
		live: make(map[int]*os.Process),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}

	var wg sync.WaitGroup
	started := atomic.Int64{}
	for i := 0; i < cfg.workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			if o.runSlot(ctx, slot) {
				started.Add(1)
			}
		}(i)
	}

	// Fleet-scoped loops: the chaos killer (the crash-tolerance harness) and
	// the signal drain both stop when every slot has settled.
	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	if cfg.chaosKill > 0 {
		go o.chaosLoop(ctx, fleetDone)
	}
	go o.drainLoop(ctx, fleetDone)
	<-fleetDone

	if started.Load() == 0 {
		return fmt.Errorf("workers: none of %d workers could be started", cfg.workers)
	}
	fmt.Fprintf(os.Stderr, "o2kbench: %d worker(s): %d completed, %d respawn(s) used, %d slot(s) gave up\n",
		cfg.workers, o.completed.Load(), o.spent.Load(), o.gaveUp.Load())
	return nil
}

// runSlot keeps worker slot alive until it exits by itself or the restart
// budget runs dry. Returns whether the slot ever started a process.
func (o *orchestrator) runSlot(ctx context.Context, slot int) bool {
	startedOnce := false
	for {
		cmd := exec.Command(o.exe, o.cfg.args(slot)...)
		// The env mirror lets the test binary's TestMain run the same argv
		// through run(); the real binary parses argv and ignores it.
		cmd.Env = append(os.Environ(), mainArgsEnv+"="+strings.Join(o.cfg.args(slot), " "))
		cmd.Stdout = io.Discard // the parent's merge pass renders the tables
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "o2kbench: worker %d failed to start: %v\n", slot, err)
			o.gaveUp.Add(1)
			return startedOnce
		}
		startedOnce = true
		o.register(slot, cmd.Process)
		err := cmd.Wait()
		o.unregister(slot)

		if ctx.Err() != nil {
			// Shutdown: the drain loop already signalled the fleet; whatever
			// state the worker exited in, it is not coming back.
			return startedOnce
		}
		if signalled(cmd, err) {
			// Killed (chaos loop, OOM killer, an operator): the cache holds
			// every cell it committed, so a respawn resumes, not restarts.
			if o.spent.Add(1) > int64(o.cfg.restarts) {
				fmt.Fprintf(os.Stderr, "o2kbench: worker %d killed with restart budget exhausted\n", slot)
				o.gaveUp.Add(1)
				return startedOnce
			}
			// Brief jittered pause so a kill storm doesn't respawn the whole
			// fleet in lockstep against the same lease files.
			time.Sleep(time.Duration(20+o.randN(60)) * time.Millisecond)
			continue
		}
		// A voluntary exit — clean (0), partial with failed cells (1), or a
		// usage error (2) — is terminal: exit codes are deterministic here,
		// so a respawn would only reproduce it.
		o.completed.Add(1)
		return startedOnce
	}
}

// signalled reports whether the worker died to a signal rather than exiting.
func signalled(cmd *exec.Cmd, err error) bool {
	if err == nil || cmd.ProcessState == nil {
		return false
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled()
}

func (o *orchestrator) register(slot int, p *os.Process) {
	o.mu.Lock()
	o.live[slot] = p
	o.mu.Unlock()
}

func (o *orchestrator) unregister(slot int) {
	o.mu.Lock()
	delete(o.live, slot)
	o.mu.Unlock()
}

func (o *orchestrator) randN(n int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rng.Intn(n)
}

// signalAll sends sig to every live worker. Errors are ignored: a worker
// that exited between the snapshot and the signal needs no signalling.
func (o *orchestrator) signalAll(sig os.Signal) {
	o.mu.Lock()
	procs := make([]*os.Process, 0, len(o.live))
	for _, p := range o.live {
		procs = append(procs, p)
	}
	o.mu.Unlock()
	for _, p := range procs {
		p.Signal(sig)
	}
}

// chaosLoop is the chaos harness's killer: every chaosKill interval it
// SIGKILLs one random live worker. It exists so the crash-tolerance story is
// drivable from the CLI (and CI) without an external kill script.
func (o *orchestrator) chaosLoop(ctx context.Context, fleetDone <-chan struct{}) {
	t := time.NewTicker(o.cfg.chaosKill)
	defer t.Stop()
	for {
		select {
		case <-fleetDone:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			o.mu.Lock()
			var victim *os.Process
			if len(o.live) > 0 {
				k := o.rng.Intn(len(o.live))
				for _, p := range o.live {
					if k == 0 {
						victim = p
						break
					}
					k--
				}
			}
			o.mu.Unlock()
			if victim != nil {
				victim.Signal(syscall.SIGKILL)
			}
		}
	}
}

// drainLoop propagates the parent's shutdown to the fleet: on context
// cancellation (SIGINT/SIGTERM on the parent) every live worker gets a
// SIGTERM — their own NotifyContext converts it into drained FAILED(
// cancelled) cells and a prompt exit — and any straggler still alive after
// drainTimeout is SIGKILLed so the parent never hangs on a wedged child.
func (o *orchestrator) drainLoop(ctx context.Context, fleetDone <-chan struct{}) {
	select {
	case <-fleetDone:
		return
	case <-ctx.Done():
	}
	o.signalAll(syscall.SIGTERM)
	select {
	case <-fleetDone:
	case <-time.After(drainTimeout):
		o.signalAll(syscall.SIGKILL)
	}
}
