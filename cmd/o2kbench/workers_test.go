package main

// Subprocess tests for the multi-process sweep surface (DESIGN.md §5.10):
// flag validation, and the chaos acceptance run — a worker fleet under a
// continuous kill loop must still produce stdout byte-identical to a
// single-process run, leave a verifiable cache, and never hold one cell's
// lease from two live owners at once.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// o2kbenchEnv is o2kbench with extra environment entries (KEY=VALUE).
func o2kbenchEnv(t *testing.T, args string, extraEnv ...string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(append(os.Environ(), extraEnv...), mainArgsEnv+"="+args)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	switch e := err.(type) {
	case nil:
	case *exec.ExitError:
		code = e.ExitCode()
	default:
		t.Fatalf("running %q: %v", args, err)
	}
	return out.String(), errb.String(), code
}

func TestCLIWorkersValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cases := []struct {
		args, want string
	}{
		{"-workers 4", "require -cache"},
		{"-worker 0/4", "require -cache"},
		{"-leases", "require -cache"},
		{"-workers 4 -worker 0/4 -cache /tmp/x", "mutually exclusive"},
		{"-workers -1 -cache /tmp/x", ">= 0"},
		{"-worker 4/4 -cache /tmp/x", "bad -worker"},
		{"-worker nope -cache /tmp/x", "bad -worker"},
	}
	for _, tc := range cases {
		if _, stderr, code := o2kbench(t, tc.args); code != 2 || !strings.Contains(stderr, tc.want) {
			t.Errorf("%q: exit %d, stderr %q; want exit 2 mentioning %q", tc.args, code, stderr, tc.want)
		}
	}
}

func TestCLIWorkersHelpSection(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	_, stderr, _ := o2kbench(t, "-h")
	if !strings.Contains(stderr, "Multi-process sweeps:") {
		t.Fatalf("-help lacks the multi-process section:\n%s", stderr)
	}
}

// auditSession is one owner's hold of one cell's lease, reconstructed from
// the JSONL audit stream.
type auditSession struct {
	key, owner string
	start, end int64 // unix nanos
}

// readAuditSessions merges every audit file under prefix into per-key hold
// intervals. A SIGKILLed worker's file may end mid-line; such tails are
// skipped, and its unclosed sessions end at its last observed event.
func readAuditSessions(t *testing.T, prefix string) []auditSession {
	t.Helper()
	files, err := filepath.Glob(prefix + ".*.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		Kind  string `json:"ev"`
		Key   string `json:"key"`
		Owner string `json:"owner"`
		T     int64  `json:"t"`
	}
	var events []ev
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var e ev
			if err := json.Unmarshal(line, &e); err != nil {
				continue // torn tail of a killed worker
			}
			events = append(events, e)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].T < events[j].T })

	open := map[string]*auditSession{} // by key+owner
	var sessions []auditSession
	for _, e := range events {
		id := e.Key + "|" + e.Owner
		switch e.Kind {
		case "acquire", "steal":
			if s, ok := open[id]; ok {
				sessions = append(sessions, *s)
			}
			open[id] = &auditSession{key: e.Key, owner: e.Owner, start: e.T, end: e.T}
		case "renew":
			if s, ok := open[id]; ok && e.T > s.end {
				s.end = e.T
			}
		case "release", "lost":
			if s, ok := open[id]; ok {
				if e.T > s.end {
					s.end = e.T
				}
				sessions = append(sessions, *s)
				delete(open, id)
			}
		}
	}
	for _, s := range open {
		sessions = append(sessions, *s) // killed mid-hold: ends at last event
	}
	return sessions
}

// TestCLIChaosWorkers is the acceptance run: a 4-worker sweep under a kill
// loop produces byte-identical stdout, verifies clean, and the lease audit
// shows no cell ever held by two live owners at once.
func TestCLIChaosWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	refDir, chaosDir := t.TempDir(), t.TempDir()
	suite := "-quick -exp all "

	refOut, stderr, code := o2kbench(t, suite+"-cache "+refDir)
	if code != 0 {
		t.Fatalf("reference run exited %d (stderr: %s)", code, stderr)
	}

	audit := filepath.Join(chaosDir, "audit")
	chaosOut, stderr, code := o2kbenchEnv(t,
		suite+"-cache "+chaosDir+" -workers 4 -chaos-kill 100ms -worker-restarts 1024",
		leaseAuditEnv+"="+audit)
	if code != 0 {
		t.Fatalf("chaos run exited %d (stderr: %s)", code, stderr)
	}
	if chaosOut != refOut {
		t.Fatalf("chaos-run stdout differs from the single-process run:\n--- ref ---\n%s\n--- chaos ---\n%s", refOut, chaosOut)
	}
	if !strings.Contains(stderr, "worker(s):") {
		t.Fatalf("no fleet summary on stderr:\n%s", stderr)
	}

	if _, stderr, code := o2kbench(t, "-cache "+chaosDir+" -cache-verify"); code != 0 {
		t.Fatalf("-cache-verify after the chaos run exited %d (stderr: %s)", code, stderr)
	}

	// Lease-owner audit: for every cell, live hold intervals from different
	// owners must not overlap — the mutual-exclusion claim itself.
	sessions := readAuditSessions(t, audit)
	if len(sessions) == 0 {
		t.Fatal("audit stream is empty — leases were never exercised")
	}
	byKey := map[string][]auditSession{}
	for _, s := range sessions {
		byKey[s.key] = append(byKey[s.key], s)
	}
	for key, ss := range byKey {
		sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
		for i := 1; i < len(ss); i++ {
			prev, cur := ss[i-1], ss[i]
			if cur.owner != prev.owner && cur.start < prev.end {
				t.Errorf("cell %s: overlapping holds — %s [%d,%d] vs %s [%d,%d]",
					key, prev.owner, prev.start, prev.end, cur.owner, cur.start, cur.end)
			}
		}
	}
}
