// Command o2kbench regenerates the study's tables and figures.
//
// Usage:
//
//	o2kbench [-exp name] [-quick] [-procs 1,2,4,8,16,32,64] [-format text|json]
//
// Experiments (see DESIGN.md §5): table1, mesh-speedup (fig2),
// nbody-speedup (fig3), breakdown (fig4), loc (table5), memory (table6),
// latency-sweep (fig7), loadbalance (fig8), traffic (table9),
// regular-control (fig10), page-migration (fig11), machine-sweep (fig12),
// hybrid (fig13), cg (fig14), verdicts, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"o2k/internal/core"
	"o2k/internal/experiments"
)

// tablesFor resolves an experiment name to its tables.
func tablesFor(exp string, o experiments.Opts) ([]*core.Table, error) {
	switch exp {
	case "table1":
		return []*core.Table{experiments.Table1(o)}, nil
	case "mesh-speedup", "fig2":
		return []*core.Table{experiments.Fig2(o)}, nil
	case "nbody-speedup", "fig3":
		return []*core.Table{experiments.Fig3(o)}, nil
	case "breakdown", "fig4":
		return []*core.Table{experiments.Fig4(o)}, nil
	case "loc", "table5":
		return []*core.Table{experiments.Table5()}, nil
	case "memory", "table6":
		return []*core.Table{experiments.Table6(o)}, nil
	case "latency-sweep", "fig7":
		return []*core.Table{experiments.Fig7(o)}, nil
	case "loadbalance", "fig8":
		return []*core.Table{experiments.Fig8(o)}, nil
	case "traffic", "table9":
		return []*core.Table{experiments.Table9(o)}, nil
	case "regular-control", "fig10":
		return []*core.Table{experiments.Fig10(o)}, nil
	case "page-migration", "fig11":
		return []*core.Table{experiments.Fig11(o)}, nil
	case "machine-sweep", "fig12":
		return []*core.Table{experiments.Fig12(o)}, nil
	case "hybrid", "fig13":
		return []*core.Table{experiments.Fig13(o)}, nil
	case "cg", "fig14":
		return []*core.Table{experiments.Fig14(o)}, nil
	case "verdicts":
		return []*core.Table{experiments.Verdicts(o)}, nil
	case "all":
		return experiments.All(o), nil
	}
	return nil, fmt.Errorf("unknown experiment %q", exp)
}

// parseProcs parses a comma-separated processor-count list.
func parseProcs(s string) ([]int, error) {
	var ps []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		ps = append(ps, v)
	}
	return ps, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see doc comment; 'all' runs everything)")
	quick := flag.Bool("quick", false, "reduced workloads and processor counts")
	procs := flag.String("procs", "", "comma-separated processor counts (overrides default)")
	format := flag.String("format", "text", "output format: text or json")
	flag.Parse()

	o := experiments.DefaultOpts()
	if *quick {
		o = experiments.QuickOpts()
	}
	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			os.Exit(2)
		}
		o.Procs = ps
	}

	tables, err := tablesFor(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		os.Exit(2)
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			os.Exit(1)
		}
	case "text":
		for i, t := range tables {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "o2kbench: unknown format %q\n", *format)
		os.Exit(2)
	}
}
