// Command o2kbench regenerates the study's tables and figures.
//
// Usage:
//
//	o2kbench [-exp name] [-quick] [-procs 1,2,4,8,16,32,64] [-format text|json]
//	         [-jobs N] [-timeout d] [-cellretries N] [-runreport] [-list]
//	         [-cache dir] [-cache-verify] [-cache-clear]
//	         [-cpuprofile f] [-memprofile f]
//
// -cache DIR attaches a persistent, crash-safe cell cache (DESIGN.md §5.5):
// completed metrics cells are stored content-addressed under DIR and served
// to later invocations, making repeat runs near-instant. The cache is
// strictly an accelerator — any failure (unreadable directory, corrupt or
// stale entry, failed write) degrades to recomputation with a stderr
// warning and counters under -runreport; stdout bytes and the exit code
// never depend on cache state. -cache-verify scans and evicts bad entries,
// -cache-clear empties the cache; both exit without running experiments.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the inputs to
// the hot-path work recorded in DESIGN.md §5.4); profiles go to separate
// files and never touch stdout.
//
// Experiments are resolved through the experiments registry: every
// experiment answers to its semantic name (mesh-speedup) and its paper
// alias (fig2); `-list` prints the full index, and `all` runs everything.
// Simulations execute on a shared parallel cell engine (-jobs workers,
// default GOMAXPROCS) that memoizes each unique (application, model,
// machine, workload, P) cell, so `-exp all` costs one simulation per
// unique cell, not one per experiment that mentions it. `-runreport`
// prints the engine's cell/cache statistics to stderr — stdout carries
// only the tables and stays byte-identical at any -jobs value.
//
// Failure semantics (DESIGN.md §5.3): a cell that panics, exceeds the
// -timeout deadline, or is cancelled (SIGINT/SIGTERM) becomes a
// FAILED(<reason>) table entry; the run continues and every healthy entry
// keeps its exact bytes. Exit status: 0 all cells succeeded, 1 at least
// one cell failed (partial output), 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"o2k/internal/core"
	"o2k/internal/experiments"
	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
)

// listTable renders the experiment index from the registry.
func listTable() *core.Table {
	t := &core.Table{
		Title:  "Experiments",
		Header: []string{"name", "aliases", "description"},
	}
	for _, s := range experiments.List() {
		t.AddRow(s.Name, strings.Join(s.Aliases, ","), s.Title)
	}
	t.AddRow("all", "", "every non-standalone experiment above, in index order")
	return t
}

// parseProcs parses a comma-separated processor-count list.
func parseProcs(s string) ([]int, error) {
	var ps []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		ps = append(ps, v)
	}
	return ps, nil
}

// cacheMaintenance performs the standalone -cache-clear / -cache-verify
// operations: clear wins when both are given. Exit status: 0 clean, 1 the
// cache had bad entries (verify) or could not be maintained.
func cacheMaintenance(dir string, clear, verify bool) int {
	dc, err := diskcache.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 1
	}
	if clear {
		n, err := dc.Clear()
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "o2kbench: cleared %d cache entries from %s\n", n, dir)
		return 0
	}
	st, err := dc.Verify()
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "o2kbench: verified %d cache entries: %d bad (%d stale), bad entries evicted\n",
		st.Checked, st.Bad, st.Stale)
	if st.Bad > 0 {
		return 1
	}
	return 0
}

// main delegates to run so that deferred profile writers fire before the
// process exits (os.Exit would skip them).
func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to run (-list for the index; 'all' runs everything)")
	quick := flag.Bool("quick", false, "reduced workloads and processor counts")
	procs := flag.String("procs", "", "comma-separated processor counts (overrides default)")
	format := flag.String("format", "text", "output format: text or json")
	jobs := flag.Int("jobs", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-cell compute deadline (0 = none); expired cells render FAILED(timeout)")
	retries := flag.Int("cellretries", 0, "retry budget for cells that fail with a transient error")
	runreport := flag.Bool("runreport", false, "print cell cache/timing report to stderr (JSON with -format json)")
	cacheDir := flag.String("cache", "", "persistent cell-cache directory (created if missing); cache failures degrade to recompute")
	cacheVerify := flag.Bool("cache-verify", false, "with -cache: validate every entry, evict bad ones, and exit (1 if any were bad)")
	cacheClear := flag.Bool("cache-clear", false, "with -cache: remove every entry and exit")
	list := flag.Bool("list", false, "list every experiment name, its aliases, and its description")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
			}
		}()
	}

	if *list {
		fmt.Print(listTable().String())
		return 0
	}

	o := experiments.DefaultOpts()
	if *quick {
		o = experiments.QuickOpts()
	}
	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		o.Procs = ps
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "o2kbench: -cellretries must be >= 0")
		return 2
	}
	o.Jobs = *jobs

	if (*cacheVerify || *cacheClear) && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "o2kbench: -cache-verify/-cache-clear require -cache DIR")
		return 2
	}
	if *cacheVerify || *cacheClear {
		return cacheMaintenance(*cacheDir, *cacheClear, *cacheVerify)
	}

	// SIGINT/SIGTERM cancel the engine: blocked cell requesters unblock with
	// FAILED(cancelled) entries and the run drains instead of being killed
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := runner.NewWithPolicy(ctx, o.Jobs, runner.Policy{
		CellTimeout: *timeout,
		Retries:     *retries,
	})
	if *cacheDir != "" {
		// A cache that cannot even be opened is a warning, not a failure:
		// the run proceeds memory-only with identical output.
		if dc, err := diskcache.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench: cache disabled:", err)
		} else {
			eng.SetCache(dc)
		}
	}
	tables, err := experiments.RunOn(eng, *exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 2
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 1
		}
	case "text":
		for i, t := range tables {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "o2kbench: unknown format %q\n", *format)
		return 2
	}

	report := eng.Report()
	if *runreport {
		if *format == "json" {
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
				return 1
			}
		} else {
			fmt.Fprint(os.Stderr, "\n"+report.Table().String())
		}
	}
	if report.Failures > 0 {
		fmt.Fprintf(os.Stderr, "o2kbench: %d cell(s) failed; output is partial (rerun with -runreport for details)\n",
			report.Failures)
		return 1
	}
	return 0
}
