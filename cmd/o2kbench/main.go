// Command o2kbench regenerates the study's tables and figures.
//
// Usage:
//
//	o2kbench [-exp name] [-quick] [-procs 1,2,4|preset] [-format text|json] [-list] [-version]
//	         [-engine event|goroutine] [-jobs N] [-timeout d] [-cellretries N]
//	         [-stalldeadline d] [-runreport[=text|json]]
//	         [-cache dir] [-cache-verify] [-cache-clear]
//	         [-workers N] [-worker-restarts N] [-chaos-kill d] [-leases]
//	         [-trace f] [-trace-exp name] [-trace-ascii] [-phasereport]
//	         [-cpuprofile f] [-memprofile f]
//	o2kbench serve [-addr :8080] [-cache dir] [-leases] [-inflight N] [-queue N] ...
//
// `o2kbench serve` runs the engine as a long-running HTTP daemon
// (internal/server, DESIGN.md §5.11): POST /v1/experiments streams per-cell
// NDJSON and finishes with the CLI's exact stdout bytes, GET /v1/cells/...
// answers single-cell queries, and /v1/report, /v1/cache, /healthz, and
// /metrics expose the run telemetry. See serve.go for its flag set.
//
// The flag surface reads as four sections (see -help): experiment
// selection and output, engine and execution, multi-process sweeps, and
// observability and profiling.
//
// -engine selects the simulation engine (DESIGN.md §5.7): "event" (the
// default) runs each gang on a single-threaded virtual-time event scheduler
// built on continuations, "goroutine" runs the original one-OS-goroutine-
// per-proc gang. Both produce byte-identical tables; the goroutine engine is
// kept as the differential reference. -procs takes either an explicit
// comma-separated list or a named preset (paper, scale128, scale256,
// scale1024) for sweeps past the paper's 64-processor ceiling.
//
// The trace flags are the observability subsystem (DESIGN.md §5.6): they
// re-run one application cell with phase-timeline recording enabled —
// -trace-exp selects it ("mesh", "nbody", "stencil", "cg", or "hybrid",
// models narrowed like "mesh/mp"; hybrid is single-model) at
// the largest -procs count — and render it as Chrome trace-event JSON
// (-trace FILE, loadable in Perfetto), a terminal Gantt chart
// (-trace-ascii), or a per-phase min/max/mean/imbalance table
// (-phasereport, stderr). The trace file also carries host-side tracks of
// this invocation's cell lifecycle (compute / memo-hit / disk-hit / retry
// spans from the engine's event hook). Because tracing is a deliberate
// re-simulation outside the memoized engine, stdout of the experiment
// tables is byte-identical whether or not any trace flag is given.
//
// -cache DIR attaches a persistent, crash-safe cell cache (DESIGN.md §5.5):
// completed metrics cells are stored content-addressed under DIR and served
// to later invocations, making repeat runs near-instant. The cache is
// strictly an accelerator — any failure (unreadable directory, corrupt or
// stale entry, failed write) degrades to recomputation with a stderr
// warning and counters under -runreport; stdout bytes and the exit code
// never depend on cache state. -cache-verify scans and evicts bad entries,
// -cache-clear empties the cache; both exit without running experiments.
//
// -workers N (DESIGN.md §5.10) shards the sweep across N forked worker
// subprocesses that coordinate through per-cell lease files in the -cache
// directory (required): each cell is computed by exactly one live worker,
// crashed workers are respawned from a -worker-restarts budget and their
// in-flight cells reclaimed through lease stealing, and the parent merges by
// a final in-process pass over the warm cache — so stdout is byte-identical
// to a single-process run even if every worker dies. -chaos-kill d is the
// built-in chaos harness: it SIGKILLs a random live worker every d.
// SIGINT/SIGTERM on the parent drain the fleet (SIGTERM, then SIGKILL after
// a deadline) before the parent itself exits. -leases joins the same
// coordination from independently-launched processes sharing one cache.
//
// -timeout and -stalldeadline bound different things: -timeout is a wall-
// clock deadline on a whole cell (a cell that is legitimately slow renders
// FAILED(timeout)); -stalldeadline is the simulator's per-proc watchdog,
// panicking a simulated proc that sits this long on one event with no
// virtual-time progress (a deadlock), which cell retries then surface as a
// FAILED(stall ...) entry. A slow cell trips -timeout; only a wedged one
// trips -stalldeadline.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the inputs to
// the hot-path work recorded in DESIGN.md §5.4); profiles go to separate
// files and never touch stdout.
//
// Experiments are resolved through the experiments registry: every
// experiment answers to its semantic name (mesh-speedup) and its paper
// alias (fig2); `-list` prints the full index, and `all` runs everything.
// Simulations execute on a shared parallel cell engine (-jobs workers,
// default GOMAXPROCS) that memoizes each unique (application, model,
// machine, workload, P) cell, so `-exp all` costs one simulation per
// unique cell, not one per experiment that mentions it. `-runreport`
// prints the engine's cell/cache statistics to stderr — bare it follows
// -format, `-runreport=json` forces the machine-readable document (report
// plus phase aggregates when tracing ran). stdout carries only the tables
// and stays byte-identical at any -jobs value and under either engine.
//
// Failure semantics (DESIGN.md §5.3): a cell that panics, exceeds the
// -timeout deadline, or is cancelled (SIGINT/SIGTERM) becomes a
// FAILED(<reason>) table entry; the run continues and every healthy entry
// keeps its exact bytes. Exit status: 0 all cells succeeded, 1 at least
// one cell failed (partial output), 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"o2k/internal/core"
	"o2k/internal/experiments"
	"o2k/internal/obs"
	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
	"o2k/internal/runner/lease"
	"o2k/internal/sim"
)

// mainArgsEnv mirrors a worker's argv into its environment, so the test
// binary (whose TestMain switches on it) exercises the orchestrator's
// spawn path exactly like the real binary does.
const mainArgsEnv = "O2K_MAIN_ARGS"

// leaseAuditEnv, when set to a path prefix, makes every lease-protocol event
// of this process append to <prefix>.<pid>.jsonl. The chaos harness merges
// these streams into the lease-owner audit (no two overlapping holds per
// cell); it is an env var rather than a flag because it must survive the
// orchestrator's argv reconstruction untouched.
const leaseAuditEnv = "O2K_LEASE_AUDIT"

// listTable renders the experiment index from the registry.
func listTable() *core.Table {
	t := &core.Table{
		Title:  "Experiments",
		Header: []string{"name", "aliases", "description"},
	}
	for _, s := range experiments.List() {
		t.AddRow(s.Name, strings.Join(s.Aliases, ","), s.Title)
	}
	t.AddRow("all", "", "every non-standalone experiment above, in index order")
	return t
}

// parseProcs parses the -procs value: either a named preset or a
// comma-separated processor-count list (shared with the serve subcommand
// through experiments.ParseProcs).
func parseProcs(s string) ([]int, error) {
	return experiments.ParseProcs(s)
}

// parseWorkerSpec parses the -worker value "i/N" into (shard, shards).
func parseWorkerSpec(s string) (shard, shards int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if ok {
		shard, err = strconv.Atoi(i)
		if err == nil {
			shards, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil || shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("bad -worker %q: want i/N with 0 <= i < N", s)
	}
	return shard, shards, nil
}

// leaseAuditHook wires the lease manager's protocol events to the JSONL
// audit stream named by O2K_LEASE_AUDIT (nil hook when unset). Each process
// appends to its own <prefix>.<pid>.jsonl, so SIGKILL can at worst truncate
// the final line of one file; the chaos test merges and tolerates that.
func leaseAuditHook() func(lease.Event) {
	prefix := os.Getenv(leaseAuditEnv)
	if prefix == "" {
		return nil
	}
	f, err := os.OpenFile(fmt.Sprintf("%s.%d.jsonl", prefix, os.Getpid()),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench: lease audit disabled:", err)
		return nil
	}
	var mu sync.Mutex
	return func(ev lease.Event) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		data = append(data, '\n')
		mu.Lock()
		f.Write(data)
		mu.Unlock()
	}
}

// runReportFlag implements -runreport[=text|json]. The bare form means
// "auto": follow -format. An explicit =text or =json forces the mode.
type runReportFlag struct{ mode string }

func (f *runReportFlag) String() string { return f.mode }

// IsBoolFlag lets the flag package accept bare -runreport (parsed as
// Set("true")) while still allowing -runreport=json.
func (f *runReportFlag) IsBoolFlag() bool { return true }

func (f *runReportFlag) Set(s string) error {
	switch s {
	case "true":
		f.mode = "auto"
	case "false":
		f.mode = ""
	case "text", "json":
		f.mode = s
	default:
		return fmt.Errorf("must be text or json (bare -runreport follows -format)")
	}
	return nil
}

// resolve maps the auto mode to the concrete report format.
func (f *runReportFlag) resolve(format string) string {
	if f.mode == "auto" {
		if format == "json" {
			return "json"
		}
		return "text"
	}
	return f.mode
}

// flagGroups is the -help layout: every flag belongs to exactly one of
// three sections so the CLI surface reads as selection/output, engine and
// execution, and observability. usage() appends any unclaimed flag under
// "Other" so a new flag can never silently vanish from -help.
var flagGroups = []struct {
	title string
	names []string
}{
	{"Experiment selection and output", []string{
		"exp", "list", "quick", "procs", "format", "version"}},
	{"Engine and execution", []string{
		"engine", "jobs", "timeout", "cellretries", "stalldeadline", "runreport",
		"cache", "cache-verify", "cache-clear"}},
	{"Multi-process sweeps", []string{
		"workers", "worker-restarts", "chaos-kill", "worker", "leases"}},
	{"Observability and profiling", []string{
		"trace", "trace-exp", "trace-ascii", "phasereport",
		"cpuprofile", "memprofile"}},
}

func printFlag(out io.Writer, f *flag.Flag) {
	if f == nil {
		return
	}
	arg, usage := flag.UnquoteUsage(f)
	line := "  -" + f.Name
	if arg != "" {
		line += " " + arg
	}
	fmt.Fprintf(out, "%s\n    \t%s", line, strings.ReplaceAll(usage, "\n", "\n    \t"))
	if f.DefValue != "" && f.DefValue != "false" {
		fmt.Fprintf(out, " (default %s)", f.DefValue)
	}
	fmt.Fprintln(out)
}

func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprint(out, "Usage: o2kbench [flags]\n")
	fmt.Fprint(out, "       o2kbench serve [flags]   (experiment-serving daemon; serve -h for its flags)\n")
	fmt.Fprint(out, "\nRegenerates the study's tables and figures; -list prints the experiment index.\n")
	seen := map[string]bool{}
	for _, g := range flagGroups {
		fmt.Fprintf(out, "\n%s:\n", g.title)
		for _, name := range g.names {
			printFlag(out, flag.Lookup(name))
			seen[name] = true
		}
	}
	var orphans []*flag.Flag
	flag.VisitAll(func(f *flag.Flag) {
		// The test binary registers the testing package's test.* flags on
		// the same FlagSet; they are not part of the CLI surface.
		if !seen[f.Name] && !strings.HasPrefix(f.Name, "test.") {
			orphans = append(orphans, f)
		}
	})
	if len(orphans) > 0 {
		fmt.Fprint(out, "\nOther:\n")
		for _, f := range orphans {
			printFlag(out, f)
		}
	}
}

// cacheMaintenance performs the standalone -cache-clear / -cache-verify
// operations: clear wins when both are given. Exit status: 0 clean, 1 the
// cache had bad entries (verify) or could not be maintained.
func cacheMaintenance(dir string, clear, verify bool) int {
	dc, err := diskcache.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 1
	}
	if clear {
		n, err := dc.Clear()
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "o2kbench: cleared %d cache entries from %s\n", n, dir)
		return 0
	}
	st, err := dc.Verify()
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "o2kbench: verified %d cache entries: %d bad (%d stale), bad entries evicted; swept %d orphaned tmp file(s)\n",
		st.Checked, st.Bad, st.Stale, st.Tmp)
	// Leases are sidecars, not entries: stale ones (dead workers') are swept
	// on the lease subsystem's own judgement, and live ones never affect the
	// exit status — only bad entries do.
	if st.Leases > 0 {
		ls, lerr := lease.Sweep(dir, nil, 0)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", lerr)
		} else {
			fmt.Fprintf(os.Stderr, "o2kbench: swept %d stale lease(s), %d live lease(s) left\n", ls.Swept, ls.Live)
		}
	}
	if st.Bad > 0 {
		return 1
	}
	return 0
}

// writeTrace assembles the Chrome trace file: one virtual-time process per
// traced model run plus the host-side runner track of this invocation.
func writeTrace(path string, traced []experiments.TracedRun, col *obs.Collector) error {
	b := obs.NewBuilder()
	for _, tr := range traced {
		b.AddTimeline(tr.Label, tr.Group)
	}
	b.AddRunnerTrack(col.Events())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "o2kbench: wrote trace %s (%d timeline(s), %d runner events)\n",
		path, len(traced), col.Len())
	return nil
}

// writeRunReport emits the engine report to stderr: as a text table, or —
// with -runreport=json — as one machine-readable document that also
// carries the phase aggregates when a traced run produced them.
func writeRunReport(mode string, report *runner.Report, phases []obs.RunPhases) error {
	if mode != "json" {
		fmt.Fprint(os.Stderr, "\n"+report.Table().String())
		return nil
	}
	doc := struct {
		*runner.Report
		Phases []obs.RunPhases `json:"phases,omitempty"`
	}{report, phases}
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// main delegates to run so that deferred profile writers fire before the
// process exits (os.Exit would skip them).
func main() {
	os.Exit(run())
}

// version prints the build identity: the binary's module/VCS stamp and the
// cache version fence (schema + fingerprint). Two binaries that print the
// same fingerprint share disk-cache entries; differing fingerprints fence
// each other's entries off as stale.
func printVersion() {
	rev, modified := "", ""
	mod := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			mod = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	fmt.Printf("o2kbench %s\n", mod)
	if rev != "" {
		dirty := ""
		if modified == "true" {
			dirty = " (modified)"
		}
		fmt.Printf("vcs: %s%s\n", rev, dirty)
	}
	fmt.Printf("go: %s\n", runtime.Version())
	fmt.Printf("cache schema: %s\n", diskcache.Schema)
	fmt.Printf("cache fingerprint: %s\n", diskcache.Fingerprint())
}

func run() int {
	// Subcommand dispatch: `o2kbench serve` is the daemon mode (serve.go);
	// everything else is the classic flag-driven one-shot run.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		return runServe(os.Args[2:])
	}

	exp := flag.String("exp", "all", "experiment to run (-list for the index; 'all' runs everything)")
	quick := flag.Bool("quick", false, "reduced workloads and processor counts")
	procs := flag.String("procs", "", "processor counts: a comma-separated list, or a preset name\n("+strings.Join(experiments.ProcsPresetNames(), ", ")+")")
	format := flag.String("format", "text", "output format: text or json")
	engine := flag.String("engine", "event", "simulation engine: event (virtual-time scheduler) or goroutine (reference gang)")
	jobs := flag.Int("jobs", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-cell compute deadline (0 = none); expired cells render FAILED(timeout)")
	retries := flag.Int("cellretries", 0, "retry budget for cells that fail with a transient error")
	stallDeadline := flag.Duration("stalldeadline", sim.DefaultStallDeadline,
		"simulation stall watchdog: panic a proc blocked this long with no virtual-time\nprogress (0 = off). Catches deadlocks; -timeout bounds a whole cell's wall time")
	var runreport runReportFlag
	flag.Var(&runreport, "runreport", "print the cell cache/timing report to stderr; =text or =json forces the\nformat, bare follows -format")
	cacheDir := flag.String("cache", "", "persistent cell-cache directory (created if missing); cache failures degrade to recompute")
	cacheVerify := flag.Bool("cache-verify", false, "with -cache: validate every entry, evict bad ones, sweep orphaned temp and\nstale lease files, and exit (1 if any entries were bad)")
	cacheClear := flag.Bool("cache-clear", false, "with -cache: remove every entry and exit")
	workers := flag.Int("workers", 0, "run the sweep as this many worker subprocesses sharing -cache (requires -cache);\nthe parent merges by a final in-process pass over the warm cache")
	workerRestarts := flag.Int("worker-restarts", 32, "with -workers: total respawn budget for workers that die to a signal")
	chaosKill := flag.Duration("chaos-kill", 0, "with -workers: SIGKILL a random live worker this often (chaos harness; 0 = off)")
	workerSpec := flag.String("worker", "", "run as worker i/N of a fleet (set by -workers; requires -cache): enables\nleases with shard bias i of N")
	leasesOn := flag.Bool("leases", false, "with -cache: coordinate with other processes on the same cache directory\nthrough per-cell lease files, even without -workers")
	list := flag.Bool("list", false, "list every experiment name, its aliases, and its description")
	version := flag.Bool("version", false, "print the build identity and cache version fence, then exit")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
	traceExp := flag.String("trace-exp", "mesh", "what the trace flags re-run with tracing on:\nmesh, nbody, stencil, or cg (each optionally /MODEL), or hybrid")
	traceASCII := flag.Bool("trace-ascii", false, "print the traced run's phase timeline as a text Gantt chart")
	phaseReport := flag.Bool("phasereport", false, "print per-phase min/max/mean/imbalance of the traced run to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	flag.Usage = usage
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
			}
		}()
	}

	if *version {
		printVersion()
		return 0
	}
	if *list {
		fmt.Print(listTable().String())
		return 0
	}

	se, err := sim.EngineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 2
	}
	sim.SetDefaultEngine(se)

	o := experiments.DefaultOpts()
	if *quick {
		o = experiments.QuickOpts()
	}
	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		o.Procs = ps
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "o2kbench: -cellretries must be >= 0")
		return 2
	}
	o.Jobs = *jobs
	sim.SetStallDeadline(*stallDeadline)

	shard, shards := 0, 1
	if *workerSpec != "" {
		var err error
		if shard, shards, err = parseWorkerSpec(*workerSpec); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
	}
	switch {
	case *workers < 0 || *workerRestarts < 0 || *chaosKill < 0:
		fmt.Fprintln(os.Stderr, "o2kbench: -workers, -worker-restarts, and -chaos-kill must be >= 0")
		return 2
	case *workers > 1 && *workerSpec != "":
		fmt.Fprintln(os.Stderr, "o2kbench: -workers (orchestrate) and -worker (be a worker) are mutually exclusive")
		return 2
	case (*workers > 1 || *workerSpec != "" || *leasesOn) && *cacheDir == "":
		fmt.Fprintln(os.Stderr, "o2kbench: -workers/-worker/-leases require -cache DIR (the cache directory is the coordination substrate)")
		return 2
	}

	if (*cacheVerify || *cacheClear) && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "o2kbench: -cache-verify/-cache-clear require -cache DIR")
		return 2
	}
	if *cacheVerify || *cacheClear {
		return cacheMaintenance(*cacheDir, *cacheClear, *cacheVerify)
	}

	// Tracing (DESIGN.md §5.6) re-runs one cell with phase recording on, so
	// the memoized/cached path — and the bytes it produces — stay untouched.
	// Validate the target before paying for the experiment suite.
	tracing := *traceFile != "" || *traceASCII || *phaseReport
	if tracing {
		if err := experiments.CheckTraceTarget(*traceExp); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
	}

	// SIGINT/SIGTERM cancel the engine: blocked cell requesters unblock with
	// FAILED(cancelled) entries and the run drains instead of being killed
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workers > 1 {
		// Orchestrator mode (DESIGN.md §5.10): fork the fleet, let it populate
		// the shared cache under lease coordination, then fall through to the
		// normal in-process run below — against the now-warm cache, that run
		// IS the merge, and it recomputes whatever a crashed fleet left
		// missing. Orchestration failures are therefore only warnings.
		wargs := func(i int) []string {
			a := []string{
				"-worker", fmt.Sprintf("%d/%d", i, *workers),
				"-exp", *exp, "-engine", *engine, "-cache", *cacheDir,
				"-jobs", strconv.Itoa(*jobs), "-cellretries", strconv.Itoa(*retries),
				"-timeout", timeout.String(), "-stalldeadline", stallDeadline.String(),
			}
			if *quick {
				a = append(a, "-quick")
			}
			if *procs != "" {
				a = append(a, "-procs", *procs)
			}
			return a
		}
		if err := orchestrate(ctx, orchCfg{
			workers:   *workers,
			restarts:  *workerRestarts,
			chaosKill: *chaosKill,
			args:      wargs,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err, "— degrading to a single-process run")
		}
	}

	eng := runner.NewWithPolicy(ctx, o.Jobs, runner.Policy{
		CellTimeout: *timeout,
		Retries:     *retries,
	})
	if *cacheDir != "" {
		// A cache that cannot even be opened is a warning, not a failure:
		// the run proceeds memory-only with identical output.
		if dc, err := diskcache.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench: cache disabled:", err)
		} else {
			eng.SetCache(dc)
			if *workerSpec != "" || *leasesOn {
				eng.SetLeases(lease.New(lease.Config{
					Dir:   *cacheDir,
					Shard: shard, Shards: shards,
					Hook: leaseAuditHook(),
				}))
			}
		}
	}
	var collector *obs.Collector
	if *traceFile != "" {
		// The trace file carries host-side tracks of this run's cell
		// lifecycle alongside the simulated timelines.
		collector = &obs.Collector{}
		eng.SetHook(collector.Hook())
	}
	tables, err := experiments.RunOn(eng, *exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 2
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 1
		}
	case "text":
		for i, t := range tables {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "o2kbench: unknown format %q\n", *format)
		return 2
	}

	report := eng.Report()
	var phases []obs.RunPhases
	if tracing {
		traced, terr := experiments.Trace(*traceExp, o)
		if terr != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", terr)
			return 2
		}
		phases = make([]obs.RunPhases, len(traced))
		for i, tr := range traced {
			phases[i] = obs.NewRunPhases(tr.Label, tr.Group)
		}
		if *traceASCII {
			for _, tr := range traced {
				fmt.Printf("=== %s ===\n", tr.Label)
				fmt.Print(sim.RenderTimeline(tr.Group, 100))
			}
		}
		if *phaseReport {
			fmt.Fprint(os.Stderr, "\n"+obs.PhaseTable(phases).String())
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile, traced, collector); err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
				return 1
			}
		}
	}
	if mode := runreport.resolve(*format); mode != "" {
		if err := writeRunReport(mode, report, phases); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 1
		}
	}
	if report.Failures > 0 {
		fmt.Fprintf(os.Stderr, "o2kbench: %d cell(s) failed; output is partial (rerun with -runreport for details)\n",
			report.Failures)
		return 1
	}
	return 0
}
