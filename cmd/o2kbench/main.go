// Command o2kbench regenerates the study's tables and figures.
//
// Usage:
//
//	o2kbench [-exp name] [-quick] [-procs 1,2,4,8,16,32,64] [-format text|json]
//	         [-jobs N] [-timeout d] [-cellretries N] [-runreport] [-list]
//	         [-cpuprofile f] [-memprofile f]
//
// -cpuprofile and -memprofile write pprof profiles of the run (the inputs to
// the hot-path work recorded in DESIGN.md §5.4); profiles go to separate
// files and never touch stdout.
//
// Experiments are resolved through the experiments registry: every
// experiment answers to its semantic name (mesh-speedup) and its paper
// alias (fig2); `-list` prints the full index, and `all` runs everything.
// Simulations execute on a shared parallel cell engine (-jobs workers,
// default GOMAXPROCS) that memoizes each unique (application, model,
// machine, workload, P) cell, so `-exp all` costs one simulation per
// unique cell, not one per experiment that mentions it. `-runreport`
// prints the engine's cell/cache statistics to stderr — stdout carries
// only the tables and stays byte-identical at any -jobs value.
//
// Failure semantics (DESIGN.md §5.3): a cell that panics, exceeds the
// -timeout deadline, or is cancelled (SIGINT/SIGTERM) becomes a
// FAILED(<reason>) table entry; the run continues and every healthy entry
// keeps its exact bytes. Exit status: 0 all cells succeeded, 1 at least
// one cell failed (partial output), 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"o2k/internal/core"
	"o2k/internal/experiments"
	"o2k/internal/runner"
)

// listTable renders the experiment index from the registry.
func listTable() *core.Table {
	t := &core.Table{
		Title:  "Experiments",
		Header: []string{"name", "aliases", "description"},
	}
	for _, s := range experiments.List() {
		t.AddRow(s.Name, strings.Join(s.Aliases, ","), s.Title)
	}
	t.AddRow("all", "", "every non-standalone experiment above, in index order")
	return t
}

// parseProcs parses a comma-separated processor-count list.
func parseProcs(s string) ([]int, error) {
	var ps []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		ps = append(ps, v)
	}
	return ps, nil
}

// main delegates to run so that deferred profile writers fire before the
// process exits (os.Exit would skip them).
func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to run (-list for the index; 'all' runs everything)")
	quick := flag.Bool("quick", false, "reduced workloads and processor counts")
	procs := flag.String("procs", "", "comma-separated processor counts (overrides default)")
	format := flag.String("format", "text", "output format: text or json")
	jobs := flag.Int("jobs", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-cell compute deadline (0 = none); expired cells render FAILED(timeout)")
	retries := flag.Int("cellretries", 0, "retry budget for cells that fail with a transient error")
	runreport := flag.Bool("runreport", false, "print cell cache/timing report to stderr (JSON with -format json)")
	list := flag.Bool("list", false, "list every experiment name, its aliases, and its description")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
			}
		}()
	}

	if *list {
		fmt.Print(listTable().String())
		return 0
	}

	o := experiments.DefaultOpts()
	if *quick {
		o = experiments.QuickOpts()
	}
	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 2
		}
		o.Procs = ps
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "o2kbench: -cellretries must be >= 0")
		return 2
	}
	o.Jobs = *jobs

	// SIGINT/SIGTERM cancel the engine: blocked cell requesters unblock with
	// FAILED(cancelled) entries and the run drains instead of being killed
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := runner.NewWithPolicy(ctx, o.Jobs, runner.Policy{
		CellTimeout: *timeout,
		Retries:     *retries,
	})
	tables, err := experiments.RunOn(eng, *exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2kbench:", err)
		return 2
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "o2kbench:", err)
			return 1
		}
	case "text":
		for i, t := range tables {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "o2kbench: unknown format %q\n", *format)
		return 2
	}

	report := eng.Report()
	if *runreport {
		if *format == "json" {
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				fmt.Fprintln(os.Stderr, "o2kbench:", err)
				return 1
			}
		} else {
			fmt.Fprint(os.Stderr, "\n"+report.Table().String())
		}
	}
	if report.Failures > 0 {
		fmt.Fprintf(os.Stderr, "o2kbench: %d cell(s) failed; output is partial (rerun with -runreport for details)\n",
			report.Failures)
		return 1
	}
	return 0
}
