package main

// CLI-level subprocess tests: each case re-executes this test binary in
// "main mode" (see TestMain) so flag parsing, exit codes, and artifact
// files are exercised exactly as a shell user sees them — the same idiom
// as the experiments package's SIGKILL-resume test.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"o2k/internal/obs"
)

func TestMain(m *testing.M) {
	if args := os.Getenv(mainArgsEnv); args != "" {
		os.Args = append([]string{"o2kbench"}, strings.Fields(args)...)
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// o2kbench runs the CLI with args (whitespace-separated; paths must not
// contain spaces) and returns stdout, stderr, and the exit code.
func o2kbench(t *testing.T, args string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), mainArgsEnv+"="+args)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	switch e := err.(type) {
	case nil:
	case *exec.ExitError:
		code = e.ExitCode()
	default:
		t.Fatalf("running %q: %v", args, err)
	}
	return out.String(), errb.String(), code
}

func TestCLICacheMaintenanceExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()

	if _, stderr, code := o2kbench(t, "-cache-verify"); code != 2 {
		t.Fatalf("-cache-verify without -cache exited %d, want 2 (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache-clear"); code != 2 {
		t.Fatalf("-cache-clear without -cache exited %d, want 2 (stderr: %s)", code, stderr)
	}

	// Warm the cache with a real (quick) run, then verify it clean.
	if _, stderr, code := o2kbench(t, "-quick -procs 1,2 -exp mesh-speedup -cache "+dir); code != 0 {
		t.Fatalf("cache-warm run exited %d (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 0 {
		t.Fatalf("verify of a clean cache exited %d (stderr: %s)", code, stderr)
	}

	// Damage one committed entry: verify reports it once (exit 1), evicts
	// it, and a second verify is clean again.
	var victim string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" && filepath.Ext(path) == ".cell" {
			victim = path
		}
		return nil
	})
	if victim == "" {
		t.Fatal("warm run left no cache entries")
	}
	if err := os.WriteFile(victim, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 1 {
		t.Fatalf("verify of a damaged cache exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 0 {
		t.Fatalf("verify did not evict the damaged entry: exited %d (stderr: %s)", code, stderr)
	}

	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-clear"); code != 0 {
		t.Fatalf("clear exited %d (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 0 {
		t.Fatalf("verify after clear exited %d (stderr: %s)", code, stderr)
	}
}

// checkTraceFile validates a -trace artifact and its track shape: at least
// one simulated timeline with minProcs threads, plus host-side cell spans.
func checkTraceFile(t *testing.T, path string, minProcs int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ValidateChrome(data)
	if err != nil {
		t.Fatalf("%s failed Chrome schema validation: %v", path, err)
	}
	pids := tr.Pids()
	if len(pids) < 2 || pids[0] != 0 {
		t.Fatalf("%s has pids %v, want the host (0) plus >= 1 timeline", path, pids)
	}
	for _, pid := range pids[1:] {
		if threads := tr.Threads(pid); len(threads) < minProcs {
			t.Errorf("%s pid %d: %d threads, want >= %d (one per proc)", path, pid, len(threads), minProcs)
		}
	}
	if len(tr.Spans(0)) == 0 {
		t.Errorf("%s has no runner-cell spans on the host track", path)
	}
}

func TestCLITraceMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := filepath.Join(t.TempDir(), "mesh.json")
	_, stderr, code := o2kbench(t, "-quick -procs 1,4 -exp mesh-speedup -trace "+out+" -trace-exp mesh")
	if code != 0 {
		t.Fatalf("trace run exited %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "wrote trace") {
		t.Fatalf("no trace confirmation on stderr: %s", stderr)
	}
	checkTraceFile(t, out, 4)
}

func TestCLITraceNBody(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := filepath.Join(t.TempDir(), "nbody.json")
	_, stderr, code := o2kbench(t,
		"-quick -procs 1,4 -exp nbody-speedup -trace "+out+" -trace-exp nbody/mp -runreport=json")
	if code != 0 {
		t.Fatalf("trace run exited %d (stderr: %s)", code, stderr)
	}
	checkTraceFile(t, out, 4)
	// -runreport=json puts the machine-readable document (engine report +
	// phase aggregates from the traced run) on stderr.
	for _, want := range []string{`"cells"`, `"phases"`, `"imbalance"`} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-runreport=json stderr lacks %s:\n%s", want, stderr)
		}
	}
}

func TestCLIRunReportModes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	base := "-quick -procs 1,2 -exp mesh-speedup "

	_, stderr, code := o2kbench(t, base+"-runreport")
	if code != 0 || !strings.Contains(stderr, "cells") || strings.Contains(stderr, `"cells"`) {
		t.Fatalf("bare -runreport should print the text table (code %d, stderr: %s)", code, stderr)
	}
	_, stderr, code = o2kbench(t, base+"-runreport=json")
	if code != 0 || !strings.Contains(stderr, `"cells"`) {
		t.Fatalf("-runreport=json should print JSON to stderr (code %d, stderr: %s)", code, stderr)
	}
	// Bare -runreport follows -format.
	stdout, stderr, code := o2kbench(t, base+"-format json -runreport")
	if code != 0 || !strings.Contains(stderr, `"cells"`) {
		t.Fatalf("bare -runreport with -format json should emit JSON (code %d, stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, `"Title"`) {
		t.Fatalf("-format json stdout is not table JSON:\n%s", stdout)
	}
	if _, stderr, code := o2kbench(t, base+"-runreport=xml"); code != 2 ||
		!strings.Contains(stderr, "text or json") {
		t.Fatalf("-runreport=xml should be a usage error (code %d, stderr: %s)", code, stderr)
	}
	// The old two-flag spelling is gone.
	if _, _, code := o2kbench(t, base+"-runreport-json out.json"); code != 2 {
		t.Fatalf("-runreport-json should no longer parse (code %d)", code)
	}
}

func TestCLIEngineFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	base := "-quick -procs 1,4 -exp mesh-speedup -engine "
	evOut, stderr, code := o2kbench(t, base+"event")
	if code != 0 {
		t.Fatalf("-engine event exited %d (stderr: %s)", code, stderr)
	}
	gorOut, stderr, code := o2kbench(t, base+"goroutine")
	if code != 0 {
		t.Fatalf("-engine goroutine exited %d (stderr: %s)", code, stderr)
	}
	if evOut != gorOut {
		t.Fatalf("engines disagree on stdout bytes:\nevent:\n%s\ngoroutine:\n%s", evOut, gorOut)
	}
	if _, stderr, code := o2kbench(t, base+"warp"); code != 2 ||
		!strings.Contains(stderr, "warp") {
		t.Fatalf("-engine warp should be rejected (code %d, stderr: %s)", code, stderr)
	}
}

func TestCLIGroupedHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	_, stderr, _ := o2kbench(t, "-h")
	for _, section := range []string{
		"Experiment selection and output:",
		"Engine and execution:",
		"Observability and profiling:",
	} {
		if !strings.Contains(stderr, section) {
			t.Errorf("-help lacks section %q:\n%s", section, stderr)
		}
	}
	if strings.Contains(stderr, "Other:") {
		t.Errorf("-help has unclaimed flags under Other:\n%s", stderr)
	}
}

func TestParseProcsPresets(t *testing.T) {
	ps, err := parseProcs("scale1024")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 || ps[len(ps)-1] != 1024 {
		t.Fatalf("scale1024 preset = %v, want a sweep ending at 1024", ps)
	}
	if ps, err := parseProcs("1, 2,4"); err != nil || len(ps) != 3 {
		t.Fatalf("explicit list = %v, %v", ps, err)
	}
	if _, err := parseProcs("scale9000"); err == nil ||
		!strings.Contains(err.Error(), "scale1024") {
		t.Fatalf("unknown preset should fail mentioning valid presets, got %v", err)
	}
}

func TestCLIBadTraceTargetFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	stdout, stderr, code := o2kbench(t, "-quick -trace-ascii -trace-exp warp")
	if code != 2 {
		t.Fatalf("bad -trace-exp exited %d, want 2 (stderr: %s)", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("bad -trace-exp still produced experiment output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "unknown trace target") {
		t.Fatalf("stderr does not explain the rejection: %s", stderr)
	}
}
