package main

// CLI-level subprocess tests: each case re-executes this test binary in
// "main mode" (see TestMain) so flag parsing, exit codes, and artifact
// files are exercised exactly as a shell user sees them — the same idiom
// as the experiments package's SIGKILL-resume test.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"o2k/internal/obs"
)

// mainArgsEnv switches the re-executed test binary into CLI mode.
const mainArgsEnv = "O2K_MAIN_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(mainArgsEnv); args != "" {
		os.Args = append([]string{"o2kbench"}, strings.Fields(args)...)
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// o2kbench runs the CLI with args (whitespace-separated; paths must not
// contain spaces) and returns stdout, stderr, and the exit code.
func o2kbench(t *testing.T, args string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), mainArgsEnv+"="+args)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	switch e := err.(type) {
	case nil:
	case *exec.ExitError:
		code = e.ExitCode()
	default:
		t.Fatalf("running %q: %v", args, err)
	}
	return out.String(), errb.String(), code
}

func TestCLICacheMaintenanceExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()

	if _, stderr, code := o2kbench(t, "-cache-verify"); code != 2 {
		t.Fatalf("-cache-verify without -cache exited %d, want 2 (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache-clear"); code != 2 {
		t.Fatalf("-cache-clear without -cache exited %d, want 2 (stderr: %s)", code, stderr)
	}

	// Warm the cache with a real (quick) run, then verify it clean.
	if _, stderr, code := o2kbench(t, "-quick -procs 1,2 -exp mesh-speedup -cache "+dir); code != 0 {
		t.Fatalf("cache-warm run exited %d (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 0 {
		t.Fatalf("verify of a clean cache exited %d (stderr: %s)", code, stderr)
	}

	// Damage one committed entry: verify reports it once (exit 1), evicts
	// it, and a second verify is clean again.
	var victim string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" && filepath.Ext(path) == ".json" {
			victim = path
		}
		return nil
	})
	if victim == "" {
		t.Fatal("warm run left no cache entries")
	}
	if err := os.WriteFile(victim, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 1 {
		t.Fatalf("verify of a damaged cache exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 0 {
		t.Fatalf("verify did not evict the damaged entry: exited %d (stderr: %s)", code, stderr)
	}

	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-clear"); code != 0 {
		t.Fatalf("clear exited %d (stderr: %s)", code, stderr)
	}
	if _, stderr, code := o2kbench(t, "-cache "+dir+" -cache-verify"); code != 0 {
		t.Fatalf("verify after clear exited %d (stderr: %s)", code, stderr)
	}
}

// checkTraceFile validates a -trace artifact and its track shape: at least
// one simulated timeline with minProcs threads, plus host-side cell spans.
func checkTraceFile(t *testing.T, path string, minProcs int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ValidateChrome(data)
	if err != nil {
		t.Fatalf("%s failed Chrome schema validation: %v", path, err)
	}
	pids := tr.Pids()
	if len(pids) < 2 || pids[0] != 0 {
		t.Fatalf("%s has pids %v, want the host (0) plus >= 1 timeline", path, pids)
	}
	for _, pid := range pids[1:] {
		if threads := tr.Threads(pid); len(threads) < minProcs {
			t.Errorf("%s pid %d: %d threads, want >= %d (one per proc)", path, pid, len(threads), minProcs)
		}
	}
	if len(tr.Spans(0)) == 0 {
		t.Errorf("%s has no runner-cell spans on the host track", path)
	}
}

func TestCLITraceMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := filepath.Join(t.TempDir(), "mesh.json")
	_, stderr, code := o2kbench(t, "-quick -procs 1,4 -exp mesh-speedup -trace "+out+" -trace-exp mesh")
	if code != 0 {
		t.Fatalf("trace run exited %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "wrote trace") {
		t.Fatalf("no trace confirmation on stderr: %s", stderr)
	}
	checkTraceFile(t, out, 4)
}

func TestCLITraceNBody(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "nbody.json")
	report := filepath.Join(dir, "report.json")
	_, stderr, code := o2kbench(t,
		"-quick -procs 1,4 -exp nbody-speedup -trace "+out+" -trace-exp nbody/mp -runreport-json "+report)
	if code != 0 {
		t.Fatalf("trace run exited %d (stderr: %s)", code, stderr)
	}
	checkTraceFile(t, out, 4)
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cells"`, `"phases"`, `"imbalance"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("-runreport-json output lacks %s:\n%s", want, data)
		}
	}
}

func TestCLIBadTraceTargetFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	stdout, stderr, code := o2kbench(t, "-quick -trace-ascii -trace-exp stencil")
	if code != 2 {
		t.Fatalf("bad -trace-exp exited %d, want 2 (stderr: %s)", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("bad -trace-exp still produced experiment output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "unknown trace target") {
		t.Fatalf("stderr does not explain the rejection: %s", stderr)
	}
}
