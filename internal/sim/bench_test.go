package sim

import (
	"fmt"
	"sync"
	"testing"
)

// Host-performance microbenchmarks of the scheduler: the block/wake cycle is
// the floor under every rendezvous the apps execute.

// BenchmarkBarrierRoundTrip measures one full park/release cycle per op:
// every proc blocks on the barrier and the engine wakes all of them again,
// so an op costs procs context switches plus the release sweep. Run under
// both engines to keep the event scheduler honest against the goroutine
// baseline.
func BenchmarkBarrierRoundTrip(b *testing.B) {
	for _, name := range EngineNames() {
		eng, err := EngineByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, procs := range []int{4, 64, 256} {
			b.Run(fmt.Sprintf("%s/procs=%d", name, procs), func(b *testing.B) {
				g := NewGroupOn(eng, procs)
				bar := NewBarrier(procs, func(n int) Time { return Time(n) })
				b.ResetTimer()
				g.Run(func(p *Proc) {
					for i := 0; i < b.N; i++ {
						bar.Wait(p)
					}
				})
			})
		}
	}
}

// BenchmarkCondPingPong measures the single-waiter wake path: two procs
// alternate turns through a Cond, so each op is one block and one targeted
// wake on each side — the sharpest view of per-switch overhead, without the
// barrier's fan-in/fan-out.
func BenchmarkCondPingPong(b *testing.B) {
	for _, name := range EngineNames() {
		eng, err := EngineByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			g := NewGroupOn(eng, 2)
			var mu sync.Mutex
			var cv Cond
			turn := 0
			b.ResetTimer()
			g.Run(func(p *Proc) {
				me := p.ID()
				mu.Lock()
				defer mu.Unlock()
				for i := 0; i < b.N; i++ {
					for turn != me {
						cv.Wait(p, &mu)
					}
					turn = 1 - me
					cv.Broadcast()
				}
			})
		})
	}
}
