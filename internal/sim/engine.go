package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Engine is the execution strategy behind a Group: it decides how the n
// SPMD bodies of one Run are multiplexed onto the host. Every engine must
// preserve the package's core contract — virtual times, phase attribution,
// counters, traces, and failure semantics (ProcPanic, StallError, root-cause
// selection) are identical across engines — so an application cannot tell
// which engine it runs under except by host-side speed and memory footprint.
//
// Two engines exist:
//
//   - EventEngine (the default): a single-threaded virtual-time scheduler
//     that runs procs as resumable continuations and replaces OS-level
//     blocking at rendezvous points with a (virtual-time, rank) event heap.
//     See event.go.
//   - GoroutineEngine: the original goroutine-per-proc gang, kept as the
//     differential reference and for workloads that want real host
//     parallelism inside one Group.
//
// Engine implementations live in this package; the interface is sealed by
// the unexported run method.
type Engine interface {
	// Name returns the engine's flag-facing name ("event", "goroutine").
	Name() string
	// run executes body once per processor of g and returns when all have
	// finished, re-panicking with the root-cause *ProcPanic if any failed.
	run(g *Group, body func(*Proc))
}

// defaultEngine holds the process-wide engine used by NewGroup. The zero
// state means EventEngine; SetDefaultEngine installs an override.
var defaultEngine atomic.Pointer[Engine]

// DefaultEngine returns the engine NewGroup currently hands to new groups.
func DefaultEngine() Engine {
	if p := defaultEngine.Load(); p != nil {
		return *p
	}
	return EventEngine()
}

// SetDefaultEngine installs e as the process-wide default for subsequent
// NewGroup calls and returns the previous default. Existing groups keep the
// engine they were created with.
func SetDefaultEngine(e Engine) Engine {
	if e == nil {
		panic("sim: nil default engine")
	}
	prev := DefaultEngine()
	defaultEngine.Store(&e)
	return prev
}

// EngineNames lists the valid engine names accepted by EngineByName, in
// preference order.
func EngineNames() []string { return []string{"event", "goroutine"} }

// EngineByName resolves a flag-facing engine name.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "event":
		return EventEngine(), nil
	case "goroutine":
		return GoroutineEngine(), nil
	}
	return nil, fmt.Errorf("sim: unknown engine %q (valid: event, goroutine)", name)
}

// preferRootCause reports whether pp should replace first as the panic a Run
// re-raises. The choice is deterministic across engines and runs: a non-stall
// panic beats a StallError (stalls are downstream symptoms of the real
// failure), then the lowest rank wins.
func preferRootCause(pp, first *ProcPanic) bool {
	if first == nil {
		return true
	}
	isStall := func(v any) bool { _, ok := v.(*StallError); return ok }
	return (isStall(first.Value) && !isStall(pp.Value)) ||
		(isStall(first.Value) == isStall(pp.Value) && pp.Rank < first.Rank)
}

// goroutineEngine is the original execution strategy: one persistent worker
// goroutine per processor, blocking on channels and condition variables at
// rendezvous points, with the wall-clock stall watchdog (watchdog.go) as the
// liveness backstop.
//
// The gang's worker goroutines are created lazily on the first Run and
// persist across Run calls: experiments invoke Run once per adaptation cycle
// or time step, and respawning P goroutines per region was measurable
// scheduler churn. The workers hold no reference to the Group itself — only
// to their Proc and channels — so an abandoned Group is collected normally;
// a runtime cleanup closes the work channels and the workers exit.
type goroutineEngine struct{}

// GoroutineEngine returns the goroutine-per-proc gang engine.
func GoroutineEngine() Engine { return goroutineEngine{} }

func (goroutineEngine) Name() string { return "goroutine" }

func (goroutineEngine) run(g *Group, body func(*Proc)) {
	if g.work == nil {
		g.startGang()
	}
	for _, ch := range g.work {
		ch <- body
	}
	var first *ProcPanic
	for range g.procs {
		pp := <-g.res
		if pp != nil && preferRootCause(pp, first) {
			first = pp
		}
	}
	if first != nil {
		panic(first)
	}
}

// startGang spawns the persistent worker gang.
func (g *Group) startGang() {
	g.res = make(chan *ProcPanic, len(g.procs))
	g.work = make([]chan func(*Proc), len(g.procs))
	for i, p := range g.procs {
		ch := make(chan func(*Proc))
		g.work[i] = ch
		go gangWorker(p, ch, g.res)
	}
	runtime.AddCleanup(g, func(work []chan func(*Proc)) {
		for _, ch := range work {
			close(ch)
		}
	}, g.work)
}

// gangWorker executes bodies for one processor until its channel closes.
func gangWorker(p *Proc, work <-chan func(*Proc), res chan<- *ProcPanic) {
	for body := range work {
		res <- runBody(p, body)
	}
}
