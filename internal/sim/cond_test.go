package sim

import (
	"sync"
	"testing"
)

// TestCondPoisonKeepsCallerLockInvariant: when the event engine's deadlock
// detector poisons a proc suspended in Cond.Wait, the caller's mutex must be
// re-held before the *StallError unwinds. Real callers hold that mutex
// across Wait with a deferred Unlock (mp's mailbox.take, sas's Lock.Acquire),
// so a panic with the lock released would escalate into Go's unrecoverable
// "unlock of unlocked mutex" fatal — aborting the process instead of
// surfacing the documented *ProcPanic. Regression test for exactly that
// crash: under the broken unwind this test kills the whole test binary.
func TestCondPoisonKeepsCallerLockInvariant(t *testing.T) {
	g := NewGroupOn(EventEngine(), 2)
	var mu sync.Mutex
	cond := Cond{Kind: "test wait"}
	v := mustPanic(t, func() {
		g.Run(func(p *Proc) {
			if p.ID() == 1 {
				return // never broadcasts: proc 0 can only stall
			}
			mu.Lock()
			defer mu.Unlock() // fatal if Wait unwinds with mu released
			for {
				cond.Wait(p, &mu)
			}
		})
	})
	pp, ok := v.(*ProcPanic)
	if !ok {
		t.Fatalf("Run re-panicked with %T (%v), want *ProcPanic", v, v)
	}
	se, ok := pp.Value.(*StallError)
	if !ok {
		t.Fatalf("panic value %T (%v), want *StallError", pp.Value, pp.Value)
	}
	if pp.Rank != 0 || se.Kind != "test wait" {
		t.Fatalf("stall = rank %d %+v, want rank 0 kind %q", pp.Rank, se, "test wait")
	}
}

// TestCondBroadcastWakesEventWaiter: the healthy path — a Cond waiter under
// the event engine resumes after Broadcast with the lock re-held and the
// predicate satisfied, no stall involved.
func TestCondBroadcastWakesEventWaiter(t *testing.T) {
	g := NewGroupOn(EventEngine(), 2)
	var mu sync.Mutex
	var cond Cond
	ready := false
	g.Run(func(p *Proc) {
		mu.Lock()
		defer mu.Unlock()
		if p.ID() == 1 {
			ready = true
			cond.Broadcast()
			return
		}
		for !ready {
			cond.Wait(p, &mu)
		}
	})
	if !ready {
		t.Fatal("waiter resumed without the predicate set")
	}
}
