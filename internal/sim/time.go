// Package sim provides the deterministic virtual-time core that underlies
// every programming-model runtime in this repository.
//
// Each simulated processor carries a private virtual clock. Computation
// advances only the local clock; communication and synchronization events
// merge clocks conservatively (a receive cannot complete before the matching
// send has been issued in virtual time, a barrier releases everyone at the
// maximum entry time plus the barrier cost, and so on). Because costs are
// derived exclusively from each processor's own instruction stream plus
// synchronization-ordered events, the resulting virtual times are
// bit-for-bit reproducible across runs and host machines.
//
// How the processors are multiplexed onto the host is a separate, pluggable
// concern: an Engine (see engine.go) executes the gang either as resumable
// continuations under a single-threaded virtual-time event scheduler (the
// default) or as one goroutine per processor. Both engines produce
// identical simulation results.
package sim

import "fmt"

// Time is virtual time in nanoseconds. An int64 nanosecond clock covers
// roughly 292 years of simulated execution, far beyond any experiment here.
type Time int64

// Common time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "12.34ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
