package sim

import "sync"

// Cond is an engine-aware condition variable for model runtimes that need
// to suspend a processor until another processor changes shared state (a
// message arrives in a mailbox, a lock is released). Under the goroutine
// engine it degrades to a plain sync.Cond; under the event engine Wait
// suspends the processor's continuation so the single scheduler goroutine
// is never blocked.
//
// The zero value is ready to use. All methods must be called with the same
// lock held that guards the predicate, exactly as with sync.Cond; Wait is
// handed that lock explicitly because the goroutine path binds its
// sync.Cond to it lazily.
//
// A processor suspended here when the gang can make no further progress is
// poisoned by the event engine's deadlock detector with a *StallError whose
// Kind is the Cond's label — a failure mode the goroutine engine cannot
// surface (a goroutine stuck in sync.Cond.Wait outside any barrier episode
// simply hangs), so the event engine is strictly more diagnosable here.
type Cond struct {
	// Kind labels stall diagnostics for procs suspended on this Cond,
	// e.g. "mp recv"; empty reads as "wait".
	Kind string
	c    *sync.Cond
	evq  []*evProc
}

// Wait atomically releases l and suspends p until Broadcast; l is re-held
// on return. As with sync.Cond, the caller must re-check its predicate in a
// loop.
func (c *Cond) Wait(p *Proc, l sync.Locker) {
	if p.ev != nil {
		c.evq = append(c.evq, p.ev)
		l.Unlock()
		err := p.ev.block(c.stallInfo)
		// Re-acquire l before unwinding a poisoned proc: callers hold l
		// across Wait (typically with a deferred Unlock), so panicking
		// unlocked would turn the stall diagnostic into an unrecoverable
		// "unlock of unlocked mutex" runtime fatal.
		l.Lock()
		if err != nil {
			panic(err)
		}
		return
	}
	if c.c == nil {
		// First goroutine-engine waiter; l is held, and every Wait call
		// site holds the same l, so this lazy init cannot race.
		c.c = sync.NewCond(l)
	}
	c.c.Wait()
}

// Broadcast wakes all suspended processors. Event-engine waiters resume at
// their own virtual clocks: unlike a barrier release, a state change here
// imposes no clock merge by itself — the woken processor re-checks its
// predicate and charges whatever cost its runtime defines.
func (c *Cond) Broadcast() {
	for _, ep := range c.evq {
		ep.wake(ep.p.clock)
	}
	c.evq = c.evq[:0]
	if c.c != nil {
		c.c.Broadcast()
	}
}

// stallInfo synthesizes the poison error for a proc wedged on this Cond.
// There is no participant roster to report, so N and Arrived stay zero.
func (c *Cond) stallInfo() *StallError {
	kind := c.Kind
	if kind == "" {
		kind = "wait"
	}
	return &StallError{Kind: kind, Deadline: StallDeadline()}
}
