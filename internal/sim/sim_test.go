package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3.0 {
		t.Errorf("Micros() = %v, want 3", got)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestProcAdvance(t *testing.T) {
	g := NewGroup(1)
	p := g.Proc(0)
	p.Advance(10)
	if p.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", p.Now())
	}
	p.AdvanceTo(5) // past: no-op
	if p.Now() != 10 {
		t.Fatalf("AdvanceTo past moved clock: %v", p.Now())
	}
	p.AdvanceTo(25)
	if p.Now() != 25 {
		t.Fatalf("AdvanceTo(25) => %v", p.Now())
	}
}

func TestProcNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	g := NewGroup(1)
	g.Proc(0).Advance(-1)
}

func TestPhaseAttribution(t *testing.T) {
	g := NewGroup(1)
	p := g.Proc(0)
	p.Advance(7) // PhaseCompute by default
	prev := p.SetPhase(PhaseComm)
	if prev != PhaseCompute {
		t.Fatalf("prev phase = %v, want compute", prev)
	}
	p.Advance(11)
	p.SetPhase(prev)
	if p.PhaseTime(PhaseCompute) != 7 {
		t.Errorf("compute time = %v, want 7", p.PhaseTime(PhaseCompute))
	}
	if p.PhaseTime(PhaseComm) != 11 {
		t.Errorf("comm time = %v, want 11", p.PhaseTime(PhaseComm))
	}
	sum := Time(0)
	for _, pt := range p.PhaseTimes() {
		sum += pt
	}
	if sum != p.Now() {
		t.Errorf("phase times sum %v != clock %v", sum, p.Now())
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		s := ph.String()
		if s == "" || seen[s] {
			t.Errorf("phase %d has bad/duplicate name %q", ph, s)
		}
		seen[s] = true
	}
	if Phase(200).String() != "phase(200)" {
		t.Error("out-of-range phase name wrong")
	}
}

func TestGroupRun(t *testing.T) {
	g := NewGroup(8)
	if g.Size() != 8 {
		t.Fatalf("Size = %d", g.Size())
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	g.Run(func(p *Proc) {
		p.Advance(Time(p.ID()) * 10)
		mu.Lock()
		seen[p.ID()] = true
		mu.Unlock()
	})
	if len(seen) != 8 {
		t.Fatalf("only %d procs ran", len(seen))
	}
	if g.MaxTime() != 70 {
		t.Fatalf("MaxTime = %v, want 70", g.MaxTime())
	}
}

func TestBarrierMergesClocks(t *testing.T) {
	g := NewGroup(4)
	b := NewBarrier(4, func(n int) Time { return 100 })
	g.Run(func(p *Proc) {
		p.Advance(Time(p.ID()) * 1000) // ranks at 0, 1000, 2000, 3000
		b.Wait(p)
	})
	for i := 0; i < 4; i++ {
		if got := g.Proc(i).Now(); got != 3100 {
			t.Errorf("proc %d clock = %v, want 3100", i, got)
		}
	}
	// Barrier wait is charged to PhaseSync.
	if g.Proc(0).PhaseTime(PhaseSync) != 3100 {
		t.Errorf("proc 0 sync time = %v, want 3100", g.Proc(0).PhaseTime(PhaseSync))
	}
}

func TestBarrierReusable(t *testing.T) {
	g := NewGroup(3)
	b := NewBarrier(3, nil)
	g.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Advance(Time(p.ID() + 1))
			b.Wait(p)
		}
	})
	// All clocks equal after final barrier.
	t0 := g.Proc(0).Now()
	for i := 1; i < 3; i++ {
		if g.Proc(i).Now() != t0 {
			t.Fatalf("clocks diverge: %v vs %v", g.Proc(i).Now(), t0)
		}
	}
	if t0 != 50*3 { // max advance per round is 3
		t.Fatalf("final clock = %v, want 150", t0)
	}
}

func TestBarrierHookPenalty(t *testing.T) {
	g := NewGroup(2)
	calls := 0
	b := NewBarrierHook(2, nil, func() []Time {
		calls++
		return []Time{5, 50}
	})
	g.Run(func(p *Proc) {
		p.Advance(100)
		b.Wait(p)
	})
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1", calls)
	}
	if g.Proc(0).Now() != 105 || g.Proc(1).Now() != 150 {
		t.Fatalf("penalties misapplied: %v, %v", g.Proc(0).Now(), g.Proc(1).Now())
	}
}

func TestReducerRankOrder(t *testing.T) {
	g := NewGroup(4)
	r := NewReducer(4, nil)
	got := make([][]int, 4)
	g.Run(func(p *Proc) {
		res := r.Do(p, p.ID()*p.ID(), func(vals []any) any {
			out := make([]int, len(vals))
			for i, v := range vals {
				out[i] = v.(int)
			}
			return out
		})
		got[p.ID()] = res.([]int)
	})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got[i][j] != j*j {
				t.Fatalf("proc %d slot %d = %d, want %d", i, j, got[i][j], j*j)
			}
		}
	}
}

func TestBarrierDeterministic(t *testing.T) {
	run := func() Time {
		g := NewGroup(6)
		b := NewBarrier(6, func(n int) Time { return Time(n) })
		g.Run(func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(Time((p.ID()*7+i*3)%11 + 1))
				b.Wait(p)
			}
		})
		return g.MaxTime()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("virtual time not deterministic: %v vs %v", got, first)
		}
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{CacheHits: 1, LocalMisses: 2, RemoteMisses: 3, CohMisses: 4,
		BytesSent: 5, MsgsSent: 6, Collectives: 7, LockOps: 8, AllocBytes: 9}
	var b Counters
	b.Add(&a)
	b.Add(&a)
	if b.CacheHits != 2 || b.AllocBytes != 18 || b.MsgsSent != 12 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestGroupAggregates(t *testing.T) {
	g := NewGroup(2)
	g.Run(func(p *Proc) {
		p.SetPhase(PhaseCompute)
		p.Advance(Time(100 * (p.ID() + 1)))
		p.CacheHits = uint64(p.ID() + 1)
	})
	maxPh := g.MaxPhaseTime()
	if maxPh[PhaseCompute] != 200 {
		t.Errorf("max compute = %v, want 200", maxPh[PhaseCompute])
	}
	avgPh := g.AvgPhaseTime()
	if avgPh[PhaseCompute] != 150 {
		t.Errorf("avg compute = %v, want 150", avgPh[PhaseCompute])
	}
	if c := g.TotalCounters(); c.CacheHits != 3 {
		t.Errorf("total hits = %d, want 3", c.CacheHits)
	}
}

// Property: AdvanceTo never decreases the clock and Advance is additive.
func TestAdvanceProperties(t *testing.T) {
	f := func(steps []uint16) bool {
		g := NewGroup(1)
		p := g.Proc(0)
		var sum Time
		for _, s := range steps {
			p.Advance(Time(s))
			sum += Time(s)
			if p.Now() != sum {
				return false
			}
			p.AdvanceTo(p.Now() - 1) // must be no-op (clock can't regress)
			if p.Now() != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
