package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// shortDeadline installs a test-scale watchdog deadline and restores the
// package default on cleanup.
func shortDeadline(t *testing.T, d time.Duration) {
	t.Helper()
	prev := SetStallDeadline(d)
	t.Cleanup(func() { SetStallDeadline(prev) })
}

// mustPanic runs f and returns the recovered panic value, failing the test
// if f returns normally.
func mustPanic(t *testing.T, f func()) (v any) {
	t.Helper()
	defer func() { v = recover() }()
	f()
	t.Fatal("expected panic")
	return nil
}

func TestBarrierStallNamesMissingRanks(t *testing.T) {
	shortDeadline(t, 50*time.Millisecond)
	g := NewGroup(3)
	b := NewBarrier(3, nil)
	v := mustPanic(t, func() {
		g.Run(func(p *Proc) {
			if p.ID() == 2 {
				return // never joins: the episode can only stall
			}
			b.Wait(p)
		})
	})
	pp, ok := v.(*ProcPanic)
	if !ok {
		t.Fatalf("Run re-panicked with %T (%v), want *ProcPanic", v, v)
	}
	se, ok := pp.Value.(*StallError)
	if !ok {
		t.Fatalf("proc panic value is %T (%v), want *StallError", pp.Value, pp.Value)
	}
	if se.Kind != "barrier" || se.N != 3 || len(se.Arrived) != 2 {
		t.Fatalf("stall = %+v", se)
	}
	if miss := se.Missing(); len(miss) != 1 || miss[0] != 2 {
		t.Fatalf("Missing() = %v, want [2]", miss)
	}
	if msg := se.Error(); !strings.Contains(msg, "missing [2]") {
		t.Fatalf("diagnostic does not name the missing rank: %q", msg)
	}
}

func TestBarrierStickyAfterStall(t *testing.T) {
	shortDeadline(t, 20*time.Millisecond)
	g := NewGroup(2)
	b := NewBarrier(2, nil)
	mustPanic(t, func() {
		g.Run(func(p *Proc) {
			if p.ID() == 0 {
				b.Wait(p)
			}
		})
	})
	// A late arrival at the broken barrier must fail fast, not block.
	v := mustPanic(t, func() { b.Wait(NewGroup(2).Proc(1)) })
	if _, ok := v.(*StallError); !ok {
		t.Fatalf("late Wait panicked with %T, want *StallError", v)
	}
}

func TestReducerStall(t *testing.T) {
	shortDeadline(t, 50*time.Millisecond)
	g := NewGroup(2)
	r := NewReducer(2, nil)
	v := mustPanic(t, func() {
		g.Run(func(p *Proc) {
			if p.ID() == 1 {
				return
			}
			r.Do(p, 1, func(vals []any) any { return vals[0] })
		})
	})
	se, ok := v.(*ProcPanic).Value.(*StallError)
	if !ok || se.Kind != "reducer" {
		t.Fatalf("want reducer StallError, got %v", v)
	}
	if miss := se.Missing(); len(miss) != 1 || miss[0] != 1 {
		t.Fatalf("Missing() = %v, want [1]", miss)
	}
}

func TestWatchdogQuietOnHealthyEpisodes(t *testing.T) {
	// Deadline far above episode latency: many rounds must complete without
	// a false positive, and timers must be disarmed (no stray stall later).
	shortDeadline(t, 5*time.Second)
	g := NewGroup(4)
	b := NewBarrier(4, nil)
	g.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			b.Wait(p)
		}
	})
	if b.stall != nil {
		t.Fatalf("healthy barrier marked stalled: %v", b.stall)
	}
}

func TestGroupRunPrefersRootCauseOverStall(t *testing.T) {
	shortDeadline(t, 50*time.Millisecond)
	g := NewGroup(3)
	b := NewBarrier(3, nil)
	v := mustPanic(t, func() {
		g.Run(func(p *Proc) {
			if p.ID() == 1 {
				panic("boom: rank 1 died")
			}
			b.Wait(p) // ranks 0 and 2 stall waiting for the dead rank
		})
	})
	pp, ok := v.(*ProcPanic)
	if !ok {
		t.Fatalf("Run re-panicked with %T, want *ProcPanic", v)
	}
	if pp.Rank != 1 || pp.Value != "boom: rank 1 died" {
		t.Fatalf("root cause not preferred: rank=%d value=%v", pp.Rank, pp.Value)
	}
	if len(pp.Stack) == 0 {
		t.Fatal("ProcPanic carries no stack")
	}
}

func TestProcPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	pp := &ProcPanic{Rank: 0, Value: sentinel}
	if !errors.Is(pp, sentinel) {
		t.Fatal("ProcPanic does not unwrap its error value")
	}
	var se *StallError
	stall := &ProcPanic{Rank: 2, Value: &StallError{Kind: "barrier", N: 2}}
	if !errors.As(stall, &se) {
		t.Fatal("errors.As cannot reach the StallError inside a ProcPanic")
	}
}

func TestReducerRankOutOfRangePanics(t *testing.T) {
	g := NewGroup(4)
	r := NewReducer(2, nil)
	v := mustPanic(t, func() {
		r.Do(g.Proc(3), 1, func(vals []any) any { return nil })
	})
	msg, ok := v.(string)
	if !ok || !strings.Contains(msg, "rank out of range") {
		t.Fatalf("out-of-range Do panicked with %v, want rank-out-of-range message", v)
	}
}

func TestReducerSlotOutOfRangePanics(t *testing.T) {
	g := NewGroup(1)
	r := NewReducer(2, nil)
	for _, slot := range []int{-1, 2} {
		v := mustPanic(t, func() {
			r.DoAs(g.Proc(0), slot, nil, func(vals []any) any { return nil })
		})
		if msg, ok := v.(string); !ok || !strings.Contains(msg, "out of range") {
			t.Fatalf("slot %d: panicked with %v, want out-of-range message", slot, v)
		}
	}
}

func TestAvgPhaseTimeRoundsHalfUp(t *testing.T) {
	// Sum 7 over 4 procs: truncation gives 1, half-up rounding gives 2.
	g := NewGroup(4)
	g.Run(func(p *Proc) {
		p.SetPhase(PhaseCompute)
		if p.ID() == 0 {
			p.Advance(7)
		}
	})
	if got := g.AvgPhaseTime()[PhaseCompute]; got != 2 {
		t.Fatalf("avg of 7/4 = %v, want 2 (round half-up)", got)
	}
	// Sum 5 over 4 procs: 1.25 rounds down to 1.
	g2 := NewGroup(4)
	g2.Run(func(p *Proc) {
		p.SetPhase(PhaseCompute)
		if p.ID() == 0 {
			p.Advance(5)
		}
	})
	if got := g2.AvgPhaseTime()[PhaseCompute]; got != 1 {
		t.Fatalf("avg of 5/4 = %v, want 1", got)
	}
}
