package sim

import "sync"

// Barrier is a reusable (cyclic) barrier that also merges virtual clocks:
// every participant leaves at the maximum entry time plus a configurable
// cost. Wait time is charged to PhaseSync.
//
// Unlike Proc, a Barrier is shared and safe for concurrent use — it is the
// synchronization point between processor goroutines.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     uint64
	maxT    Time
	relT    Time
	pen     []Time
	cost    func(n int) Time
	hook    func() []Time
}

// NewBarrier creates a barrier for n participants. cost maps the group size
// to the virtual latency of one barrier episode; nil means a free barrier.
func NewBarrier(n int, cost func(n int) Time) *Barrier {
	return NewBarrierHook(n, cost, nil)
}

// NewBarrierHook is NewBarrier with a rendezvous hook: hook runs exactly once
// per barrier episode, by the last arriver, while every other participant is
// still blocked — the safe point for cross-processor state merges (coherence,
// put-completion). It may return a per-participant virtual-time penalty
// (indexed by Proc.ID) added to each participant's release time, or nil.
func NewBarrierHook(n int, cost func(n int) Time, hook func() []Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	b := &Barrier{n: n, cost: cost, hook: hook}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have arrived, then advances p's clock
// to max(entry clocks) + cost(n) (+ any hook penalty). The advance is charged
// to PhaseSync.
func (b *Barrier) Wait(p *Proc) {
	b.mu.Lock()
	if p.clock > b.maxT {
		b.maxT = p.clock
	}
	b.waiting++
	if b.waiting == b.n {
		rel := b.maxT
		if b.cost != nil {
			rel += b.cost(b.n)
		}
		b.relT = rel
		b.pen = nil
		if b.hook != nil {
			b.pen = b.hook()
		}
		b.waiting = 0
		b.maxT = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		gen := b.gen
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	rel := b.relT
	if b.pen != nil && p.id < len(b.pen) {
		rel += b.pen[p.id]
	}
	b.mu.Unlock()

	prev := p.SetPhase(PhaseSync)
	p.AdvanceTo(rel)
	p.SetPhase(prev)
}

// Reducer merges one value per participant at a barrier-like rendezvous and
// hands every participant the combined result. It is the building block for
// deterministic cross-processor reductions: values are combined in rank
// order, so floating-point results are identical on every run.
type Reducer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	filled int
	gen    uint64
	slots  []any
	result any
	maxT   Time
	relT   Time
	cost   func(n int) Time
}

// NewReducer creates a rendezvous reducer for n participants with the given
// virtual cost function (nil means free).
func NewReducer(n int, cost func(n int) Time) *Reducer {
	if n <= 0 {
		panic("sim: reducer size must be positive")
	}
	r := &Reducer{n: n, slots: make([]any, n), cost: cost}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Do deposits v for rank p.ID(), waits for all participants, and returns
// combine(slots...) evaluated once, in rank order, by the last arriver.
// Clocks merge exactly as in Barrier.Wait; time is charged to PhaseSync.
func (r *Reducer) Do(p *Proc, v any, combine func(vals []any) any) any {
	return r.DoAs(p, p.id%r.n, v, combine)
}

// DoAs is Do with an explicit slot index, for participants whose logical
// rank differs from their processor ID (e.g. per-node representatives in a
// hybrid program).
func (r *Reducer) DoAs(p *Proc, slot int, v any, combine func(vals []any) any) any {
	r.mu.Lock()
	r.slots[slot] = v
	if p.clock > r.maxT {
		r.maxT = p.clock
	}
	r.filled++
	if r.filled == r.n {
		r.result = combine(r.slots)
		rel := r.maxT
		if r.cost != nil {
			rel += r.cost(r.n)
		}
		r.relT = rel
		r.filled = 0
		r.maxT = 0
		r.gen++
		r.cond.Broadcast()
	} else {
		gen := r.gen
		for gen == r.gen {
			r.cond.Wait()
		}
	}
	res := r.result
	rel := r.relT
	r.mu.Unlock()

	prev := p.SetPhase(PhaseSync)
	p.AdvanceTo(rel)
	p.SetPhase(prev)
	return res
}
