package sim

import (
	"fmt"
	"sync"
	"time"
)

// Barrier is a reusable (cyclic) barrier that also merges virtual clocks:
// every participant leaves at the maximum entry time plus a configurable
// cost. Wait time is charged to PhaseSync.
//
// Unlike Proc, a Barrier is shared and safe for concurrent use — it is the
// synchronization point between processor goroutines.
//
// Every episode is covered against stalls: under the goroutine engine by the
// wall-clock watchdog (see watchdog.go), under the event engine by the
// scheduler's structural deadlock detection (see event.go). Either way, if
// the participant count can no longer reach n, all arrived participants
// panic with a *StallError instead of blocking forever.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     uint64
	maxT    Time
	relT    Time
	pen     []Time
	cost    func(n int) Time
	hook    func() []Time

	arrived []int       // ranks in the open episode, for stall diagnostics
	evq     []*evProc   // event-engine participants suspended in the episode
	timer   *time.Timer // pending watchdog deadline, nil between episodes
	stall   *StallError // sticky: a stalled barrier stays broken
}

// NewBarrier creates a barrier for n participants. cost maps the group size
// to the virtual latency of one barrier episode; nil means a free barrier.
func NewBarrier(n int, cost func(n int) Time) *Barrier {
	return NewBarrierHook(n, cost, nil)
}

// NewBarrierHook is NewBarrier with a rendezvous hook: hook runs exactly once
// per barrier episode, by the last arriver, while every other participant is
// still blocked — the safe point for cross-processor state merges (coherence,
// put-completion). It may return a per-participant virtual-time penalty
// (indexed by Proc.ID) added to each participant's release time, or nil.
func NewBarrierHook(n int, cost func(n int) Time, hook func() []Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	b := &Barrier{n: n, cost: cost, hook: hook}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// armWatchdog starts the stall deadline for the episode that just opened.
// Called with b.mu held by the episode's first arriver.
func (b *Barrier) armWatchdog() {
	d := StallDeadline()
	if d <= 0 {
		return
	}
	gen := b.gen
	b.timer = time.AfterFunc(d, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		// A stale fire — the episode completed and bumped the generation
		// before Stop won the race — is a no-op.
		if b.gen != gen || b.stall != nil {
			return
		}
		b.stall = &StallError{Kind: "barrier", N: b.n,
			Arrived: append([]int(nil), b.arrived...), Deadline: d}
		b.cond.Broadcast()
	})
}

// disarmWatchdog cancels the pending deadline. Called with b.mu held by the
// episode's last arriver.
func (b *Barrier) disarmWatchdog() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}

// Wait blocks until all n participants have arrived, then advances p's clock
// to max(entry clocks) + cost(n) (+ any hook penalty). The advance is charged
// to PhaseSync. If the episode stalls past StallDeadline, Wait panics with a
// *StallError instead of blocking forever.
func (b *Barrier) Wait(p *Proc) {
	b.mu.Lock()
	if b.stall != nil {
		// A late arrival at an already-stalled barrier must not block: the
		// episode is unrecoverable and the group is unwinding.
		err := b.stall
		b.mu.Unlock()
		panic(err)
	}
	if p.clock > b.maxT {
		b.maxT = p.clock
	}
	b.waiting++
	b.arrived = append(b.arrived, p.id)
	if b.waiting == 1 && p.ev == nil {
		// Event-engine episodes rely on structural deadlock detection
		// instead of a wall-clock timer (see event.go).
		b.armWatchdog()
	}
	if b.waiting == b.n {
		b.disarmWatchdog()
		rel := b.maxT
		if b.cost != nil {
			rel += b.cost(b.n)
		}
		b.relT = rel
		b.pen = nil
		if b.hook != nil {
			b.pen = b.hook()
		}
		b.waiting = 0
		b.maxT = 0
		b.arrived = b.arrived[:0]
		b.gen++
		b.release()
	} else {
		gen := b.gen
		for gen == b.gen && b.stall == nil {
			b.wait(p)
		}
		if b.stall != nil && gen == b.gen {
			err := b.stall
			b.mu.Unlock()
			panic(err)
		}
	}
	rel := b.relT
	if b.pen != nil && p.id < len(b.pen) {
		rel += b.pen[p.id]
	}
	b.mu.Unlock()

	prev := p.SetPhase(PhaseSync)
	p.AdvanceTo(rel)
	p.SetPhase(prev)
}

// wait suspends p until the open episode completes or stalls. b.mu is held
// at entry and exit. Goroutine-engine procs block on the condition variable;
// event-engine procs suspend their continuation, dropping b.mu first because
// the whole gang shares one goroutine. A poisoned proc panics with b.mu
// released, exactly like the watchdog path in Wait.
func (b *Barrier) wait(p *Proc) {
	if p.ev == nil {
		b.cond.Wait()
		return
	}
	b.evq = append(b.evq, p.ev)
	b.mu.Unlock()
	if err := p.ev.block(b.stallInfo); err != nil {
		panic(err)
	}
	b.mu.Lock()
}

// release wakes every suspended participant of the episode that just
// completed. Called with b.mu held by the last arriver, after relT/pen are
// final: event-engine procs are rescheduled at their individual release
// times, which keeps the event heap ordered by virtual time.
func (b *Barrier) release() {
	for _, ep := range b.evq {
		rel := b.relT
		if b.pen != nil && ep.p.id < len(b.pen) {
			rel += b.pen[ep.p.id]
		}
		ep.wake(rel)
	}
	b.evq = b.evq[:0]
	b.cond.Broadcast()
}

// stallInfo marks the open episode as stalled and returns the sticky error —
// the event engine's counterpart of the watchdog timer callback. Idempotent:
// every participant poisoned during the unwind receives the same error.
func (b *Barrier) stallInfo() *StallError {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stall == nil {
		b.stall = &StallError{Kind: "barrier", N: b.n,
			Arrived: append([]int(nil), b.arrived...), Deadline: StallDeadline()}
	}
	return b.stall
}

// Reducer merges one value per participant at a barrier-like rendezvous and
// hands every participant the combined result. It is the building block for
// deterministic cross-processor reductions: values are combined in rank
// order, so floating-point results are identical on every run.
//
// Reducer episodes are covered by the same stall watchdog as Barrier.
type Reducer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	filled int
	gen    uint64
	slots  []any
	result any
	maxT   Time
	relT   Time
	cost   func(n int) Time

	arrived []int
	evq     []*evProc
	timer   *time.Timer
	stall   *StallError
}

// NewReducer creates a rendezvous reducer for n participants with the given
// virtual cost function (nil means free).
func NewReducer(n int, cost func(n int) Time) *Reducer {
	if n <= 0 {
		panic("sim: reducer size must be positive")
	}
	r := &Reducer{n: n, slots: make([]any, n), cost: cost}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Do deposits v for rank p.ID(), waits for all participants, and returns
// combine(slots...) evaluated once, in rank order, by the last arriver.
// Clocks merge exactly as in Barrier.Wait; time is charged to PhaseSync.
//
// p's rank must lie in [0, n): a processor outside the reducer's rank range
// is a caller bug (it would silently overwrite another rank's slot) and
// panics, matching NewGroup/NewBarrier validation. Participants whose
// logical rank legitimately differs from their processor ID use DoAs.
func (r *Reducer) Do(p *Proc, v any, combine func(vals []any) any) any {
	if p.id < 0 || p.id >= r.n {
		panic(fmt.Sprintf("sim: proc %d joined a %d-participant reducer (rank out of range; use DoAs for explicit slots)", p.id, r.n))
	}
	return r.DoAs(p, p.id, v, combine)
}

// DoAs is Do with an explicit slot index, for participants whose logical
// rank differs from their processor ID (e.g. per-node representatives in a
// hybrid program). slot must lie in [0, n).
func (r *Reducer) DoAs(p *Proc, slot int, v any, combine func(vals []any) any) any {
	if slot < 0 || slot >= r.n {
		panic(fmt.Sprintf("sim: slot %d out of range for %d-participant reducer", slot, r.n))
	}
	r.mu.Lock()
	if r.stall != nil {
		err := r.stall
		r.mu.Unlock()
		panic(err)
	}
	r.slots[slot] = v
	if p.clock > r.maxT {
		r.maxT = p.clock
	}
	r.filled++
	r.arrived = append(r.arrived, slot)
	if r.filled == 1 && p.ev == nil {
		// As with Barrier: event-engine episodes stall structurally.
		r.armWatchdog()
	}
	if r.filled == r.n {
		r.disarmWatchdog()
		r.result = combine(r.slots)
		rel := r.maxT
		if r.cost != nil {
			rel += r.cost(r.n)
		}
		r.relT = rel
		r.filled = 0
		r.maxT = 0
		r.arrived = r.arrived[:0]
		r.gen++
		r.release()
	} else {
		gen := r.gen
		for gen == r.gen && r.stall == nil {
			r.wait(p)
		}
		if r.stall != nil && gen == r.gen {
			err := r.stall
			r.mu.Unlock()
			panic(err)
		}
	}
	res := r.result
	rel := r.relT
	r.mu.Unlock()

	prev := p.SetPhase(PhaseSync)
	p.AdvanceTo(rel)
	p.SetPhase(prev)
	return res
}

// wait, release, and stallInfo mirror Barrier's engine dispatch for reducer
// episodes; see the Barrier methods for the locking discipline.
func (r *Reducer) wait(p *Proc) {
	if p.ev == nil {
		r.cond.Wait()
		return
	}
	r.evq = append(r.evq, p.ev)
	r.mu.Unlock()
	if err := p.ev.block(r.stallInfo); err != nil {
		panic(err)
	}
	r.mu.Lock()
}

func (r *Reducer) release() {
	for _, ep := range r.evq {
		ep.wake(r.relT)
	}
	r.evq = r.evq[:0]
	r.cond.Broadcast()
}

func (r *Reducer) stallInfo() *StallError {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stall == nil {
		r.stall = &StallError{Kind: "reducer", N: r.n,
			Arrived: append([]int(nil), r.arrived...), Deadline: StallDeadline()}
	}
	return r.stall
}

// armWatchdog starts the stall deadline for the episode that just opened.
// Called with r.mu held by the episode's first arriver.
func (r *Reducer) armWatchdog() {
	d := StallDeadline()
	if d <= 0 {
		return
	}
	gen := r.gen
	r.timer = time.AfterFunc(d, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.gen != gen || r.stall != nil {
			return
		}
		r.stall = &StallError{Kind: "reducer", N: r.n,
			Arrived: append([]int(nil), r.arrived...), Deadline: d}
		r.cond.Broadcast()
	})
}

// disarmWatchdog cancels the pending deadline. Called with r.mu held by the
// episode's last arriver.
func (r *Reducer) disarmWatchdog() {
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
}
