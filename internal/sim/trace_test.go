package sim

import (
	"strings"
	"testing"
)

func TestTraceSegments(t *testing.T) {
	g := NewGroup(2)
	g.EnableTrace()
	g.Run(func(p *Proc) {
		p.Advance(100) // compute
		prev := p.SetPhase(PhaseComm)
		p.Advance(50)
		p.SetPhase(prev)
		p.Advance(25)
	})
	segs := g.Trace(0)
	if len(segs) != 3 {
		t.Fatalf("segments: %v", segs)
	}
	want := []Segment{
		{PhaseCompute, 0, 100},
		{PhaseComm, 100, 150},
		{PhaseCompute, 150, 175},
	}
	for i, s := range segs {
		if s != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestTraceCoversClock(t *testing.T) {
	g := NewGroup(4)
	g.EnableTrace()
	b := NewBarrier(4, func(int) Time { return 10 })
	g.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(Time(10 * (p.ID() + 1)))
			prev := p.SetPhase(PhaseComm)
			p.Advance(5)
			p.SetPhase(prev)
			b.Wait(p)
		}
	})
	for i := 0; i < 4; i++ {
		segs := g.Trace(i)
		var covered Time
		last := Time(0)
		for _, s := range segs {
			if s.Start != last {
				t.Fatalf("proc %d: gap before %+v", i, s)
			}
			if s.End <= s.Start {
				t.Fatalf("proc %d: empty segment %+v", i, s)
			}
			covered += s.End - s.Start
			last = s.End
		}
		if last != g.Proc(i).Now() {
			t.Fatalf("proc %d: trace ends at %v, clock %v", i, last, g.Proc(i).Now())
		}
		if covered != g.Proc(i).Now() {
			t.Fatalf("proc %d: trace covers %v of %v", i, covered, g.Proc(i).Now())
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := NewGroup(1)
	g.Run(func(p *Proc) { p.Advance(10) })
	if segs := g.Trace(0); segs != nil {
		t.Fatalf("trace recorded without enable: %v", segs)
	}
}

func TestRenderTimeline(t *testing.T) {
	g := NewGroup(3)
	g.EnableTrace()
	b := NewBarrier(3, nil)
	g.Run(func(p *Proc) {
		p.Advance(Time(100 * (p.ID() + 1)))
		prev := p.SetPhase(PhaseComm)
		p.Advance(60)
		p.SetPhase(prev)
		b.Wait(p)
	})
	out := RenderTimeline(g, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // legend + 3 procs
		t.Fatalf("timeline lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "C") || !strings.Contains(lines[1], "m") {
		t.Fatalf("proc 0 row missing phases: %q", lines[1])
	}
	// Proc 0 finished early and waited: its row must contain sync glyphs.
	if !strings.Contains(lines[1], ".") {
		t.Fatalf("proc 0 row missing sync: %q", lines[1])
	}
	if RenderTimeline(NewGroup(1), 20) != "(empty timeline)\n" {
		t.Fatal("empty timeline rendering wrong")
	}
}
