package sim

import (
	"fmt"
	"strings"
)

// Segment is one contiguous stretch of virtual time a processor spent in a
// single phase.
type Segment struct {
	Phase Phase
	Start Time
	End   Time
}

// Tracing is opt-in per group: when enabled, every processor records the
// phase segments of its virtual timeline, and RenderTimeline draws them as
// a text Gantt chart — the visual counterpart of the phase-breakdown table.

// EnableTrace turns on segment recording for every processor in the group.
// Call before Run; tracing adds a small host-side cost per phase change.
func (g *Group) EnableTrace() {
	for _, p := range g.procs {
		p.tracing = true
	}
}

// Trace returns the recorded segments of processor i (nil without
// EnableTrace). Zero-length segments are omitted.
func (g *Group) Trace(i int) []Segment {
	p := g.procs[i]
	p.flushSegment()
	return p.trace
}

// Traces returns every processor's recorded segments, indexed by rank — the
// bulk form of Trace for exporters (nil slices without EnableTrace).
func (g *Group) Traces() [][]Segment {
	out := make([][]Segment, len(g.procs))
	for i := range g.procs {
		out[i] = g.Trace(i)
	}
	return out
}

// record is called on phase changes; it closes the open segment.
func (p *Proc) flushSegment() {
	if !p.tracing {
		return
	}
	if p.clock > p.segStart {
		n := len(p.trace)
		if n > 0 && p.trace[n-1].Phase == p.segPhase && p.trace[n-1].End == p.segStart {
			p.trace[n-1].End = p.clock // merge adjacent same-phase segments
		} else {
			p.trace = append(p.trace, Segment{Phase: p.segPhase, Start: p.segStart, End: p.clock})
		}
	}
	p.segStart = p.clock
	p.segPhase = p.phase
}

// timelineGlyphs maps each phase to the rune RenderTimeline draws.
var timelineGlyphs = [NumPhases]rune{
	'C', // compute
	'm', // comm
	'.', // sync
	'K', // mark
	'R', // refine
	'P', // partition
	'M', // remap
	'T', // tree
	'o', // other
}

// RenderTimeline draws the group's traced virtual timelines as one text row
// per processor, quantized to width columns. Each column shows the phase
// that occupied most of that column's time slice. Requires EnableTrace.
func RenderTimeline(g *Group, width int) string {
	if width < 8 {
		width = 8
	}
	total := g.MaxTime()
	if total == 0 {
		return "(empty timeline)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "virtual timeline, %v total; ", total)
	for ph := Phase(0); ph < NumPhases; ph++ {
		fmt.Fprintf(&b, "%c=%s ", timelineGlyphs[ph], ph)
	}
	b.WriteByte('\n')
	for i := 0; i < g.Size(); i++ {
		segs := g.Trace(i)
		fmt.Fprintf(&b, "p%-3d |", i)
		var buckets [][NumPhases]Time
		buckets = make([][NumPhases]Time, width)
		for _, s := range segs {
			lo := int(int64(s.Start) * int64(width) / int64(total))
			hi := int(int64(s.End) * int64(width) / int64(total))
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				// Overlap of the segment with column c's slice.
				cLo := Time(int64(total) * int64(c) / int64(width))
				cHi := Time(int64(total) * int64(c+1) / int64(width))
				ov := Min(s.End, cHi) - Max(s.Start, cLo)
				if ov > 0 {
					buckets[c][s.Phase] += ov
				}
			}
		}
		for c := 0; c < width; c++ {
			best, bestT := -1, Time(0)
			for ph := Phase(0); ph < NumPhases; ph++ {
				if buckets[c][ph] > bestT {
					best, bestT = int(ph), buckets[c][ph]
				}
			}
			if best < 0 {
				b.WriteByte(' ') // idle (waiting host-side; no virtual time)
			} else {
				b.WriteRune(timelineGlyphs[best])
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
