package sim

import "iter"

// The event engine runs a whole gang inside one goroutine. Each processor
// body becomes a resumable continuation (iter.Pull coroutine); rendezvous
// primitives suspend the running continuation instead of blocking an OS
// thread, and a min-heap of (virtual-time, rank) events decides which
// processor resumes next. This removes the park/unpark cost that dominates
// the goroutine gang beyond ~128 procs and makes the schedule itself
// deterministic: every heap key derives from virtual time, so host load and
// GOMAXPROCS cannot reorder execution.
//
// Liveness differs from the goroutine engine by construction. A wall-clock
// watchdog makes no sense when nothing ever blocks on the host, so barrier
// and reducer episodes do not arm timers under this engine. Instead the
// scheduler detects a stall structurally: if the run queue is empty while
// unfinished processors remain, every remaining processor is blocked on a
// rendezvous that can never complete. The scheduler then poisons the blocked
// processor with the lowest rank — its primitive records the same sticky
// *StallError the watchdog would have produced (same Kind/N/Arrived fields,
// Deadline reported as the configured StallDeadline) — and repeats until the
// gang has unwound. Group.Run therefore surfaces an identical root-cause
// ProcPanic under both engines, just without waiting out a wall-clock
// deadline first.

// eventEngine implements Engine with the continuation scheduler.
type eventEngine struct{}

// EventEngine returns the virtual-time event-scheduler engine (the default).
func EventEngine() Engine { return eventEngine{} }

func (eventEngine) Name() string { return "event" }

// evProc is one processor's continuation plus its scheduling state.
type evProc struct {
	p    *Proc
	s    *evSched
	next func() (struct{}, bool) // resume the continuation
	// yield suspends the continuation; valid only while the body runs.
	yield func(struct{}) bool

	key     Time // heap key while queued: the virtual time it resumes at
	blocked bool // suspended in block(), waiting for wake or poison
	done    bool // body returned (pp records an escaped panic)
	poison  *StallError
	// stallInfo is set while blocked: invoked by the scheduler's deadlock
	// detector, it must mark the primitive the proc is blocked on as stalled
	// and return the sticky *StallError to poison the proc with.
	stallInfo func() *StallError
	pp        *ProcPanic
}

// block suspends the calling continuation until wake (normal resume, nil
// return) or poison (the deadlock detector chose this proc), in which case
// the StallError is returned for the caller to panic with. Returning rather
// than panicking here lets each primitive restore its own lock invariant
// first: Cond.Wait must re-acquire the caller's mutex before unwinding (its
// callers hold it across Wait with a deferred Unlock), while Barrier and
// Reducer deliberately panic with their mutex released, matching the
// watchdog-fired path. The caller must not hold any host lock across block:
// the whole gang shares one goroutine, so a held lock could never be
// released while suspended.
func (ep *evProc) block(info func() *StallError) *StallError {
	ep.blocked = true
	ep.stallInfo = info
	if !ep.yield(struct{}{}) {
		panic("sim: event scheduler stopped mid-run")
	}
	ep.blocked = false
	ep.stallInfo = nil
	if err := ep.poison; err != nil {
		ep.poison = nil
		return err
	}
	return nil
}

// wake schedules a blocked proc to resume at virtual time at. Waking an
// already-finished proc is a no-op, so primitives may hold stale wait-queue
// entries from an unwound episode without corrupting the schedule.
func (ep *evProc) wake(at Time) {
	if ep.done {
		return
	}
	ep.s.push(ep, at)
}

// evSched is the per-Run scheduler state: the continuation for every proc
// and the runnable min-heap ordered by (key, rank). The slices persist on
// the Group across Runs; the continuations are created fresh each Run.
type evSched struct {
	eps  []*evProc
	heap []*evProc
}

func evLess(a, b *evProc) bool {
	return a.key < b.key || (a.key == b.key && a.p.id < b.p.id)
}

func (s *evSched) push(ep *evProc, key Time) {
	ep.key = key
	h := append(s.heap, ep)
	s.heap = h
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !evLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (s *evSched) pop() *evProc {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	s.heap = h
	for i := 0; ; {
		small, l, r := i, 2*i+1, 2*i+2
		if l < len(h) && evLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && evLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// poisonLowest is the structural deadlock detector: called when the run
// queue is empty but unfinished procs remain, it picks the blocked proc with
// the lowest rank, stamps it with the primitive's sticky StallError, and
// reschedules it so the panic unwinds its body. Lowest-rank-first matches
// the goroutine engine's deterministic root-cause preference.
func (s *evSched) poisonLowest() {
	for _, ep := range s.eps {
		if ep.blocked {
			ep.poison = ep.stallInfo()
			s.push(ep, ep.p.clock)
			return
		}
	}
	panic("sim: event scheduler: no runnable or blocked procs in a live gang")
}

func (eventEngine) run(g *Group, body func(*Proc)) {
	if g.sched == nil {
		g.sched = &evSched{}
	}
	s := g.sched
	s.eps = s.eps[:0]
	for _, p := range g.procs {
		ep := &evProc{p: p, s: s}
		next, _ := iter.Pull(func(yield func(struct{}) bool) {
			ep.yield = yield
			ep.pp = runBody(ep.p, body)
		})
		ep.next = next
		s.eps = append(s.eps, ep)
	}
	// Bind every proc to its continuation before any body starts, and always
	// unbind on the way out so raw (non-Run) uses of Barrier/Reducer on these
	// procs fall back to host blocking.
	for _, ep := range s.eps {
		ep.p.ev = ep
	}
	defer func() {
		for _, ep := range s.eps {
			ep.p.ev = nil
		}
	}()
	for _, ep := range s.eps {
		s.push(ep, ep.p.clock)
	}
	live := len(s.eps)
	for live > 0 {
		if len(s.heap) == 0 {
			s.poisonLowest()
		}
		ep := s.pop()
		if _, more := ep.next(); !more {
			ep.done = true
			live--
		}
	}
	var first *ProcPanic
	for _, ep := range s.eps {
		if ep.pp != nil && preferRootCause(ep.pp, first) {
			first = ep.pp
		}
	}
	if first != nil {
		panic(first)
	}
}
