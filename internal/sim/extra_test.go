package sim

import (
	"testing"
	"testing/quick"
)

func TestReducerDoAsExplicitSlots(t *testing.T) {
	// Four processors act as two logical ranks: only procs 0 and 2
	// participate, using slots 0 and 1 — the hybrid-model pattern.
	g := NewGroup(4)
	r := NewReducer(2, nil)
	var got [4][]int
	g.Run(func(p *Proc) {
		if p.ID()%2 != 0 {
			return
		}
		slot := p.ID() / 2
		res := r.DoAs(p, slot, 100+slot, func(vals []any) any {
			out := make([]int, len(vals))
			for i, v := range vals {
				out[i] = v.(int)
			}
			return out
		})
		got[p.ID()] = res.([]int)
	})
	for _, pid := range []int{0, 2} {
		if got[pid][0] != 100 || got[pid][1] != 101 {
			t.Fatalf("proc %d saw %v", pid, got[pid])
		}
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	g := NewGroup(1)
	b := NewBarrier(1, func(int) Time { return 42 })
	g.Run(func(p *Proc) {
		b.Wait(p)
		b.Wait(p)
	})
	if g.Proc(0).Now() != 84 {
		t.Fatalf("single-proc barrier cost: %v", g.Proc(0).Now())
	}
}

func TestBarrierZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0, nil)
}

func TestReducerZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReducer(0, nil)
}

func TestGroupZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroup(0)
}

// Property: after a barrier, all participants' clocks are equal and are at
// least the maximum pre-barrier clock.
func TestBarrierClockProperty(t *testing.T) {
	f := func(adv [6]uint16) bool {
		g := NewGroup(6)
		b := NewBarrier(6, nil)
		g.Run(func(p *Proc) {
			p.Advance(Time(adv[p.ID()]))
			b.Wait(p)
		})
		var maxIn Time
		for _, a := range adv {
			if Time(a) > maxIn {
				maxIn = Time(a)
			}
		}
		t0 := g.Proc(0).Now()
		if t0 < maxIn {
			return false
		}
		for i := 1; i < 6; i++ {
			if g.Proc(i).Now() != t0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedBarriersAndReducers(t *testing.T) {
	// Alternating barrier and reducer episodes must stay consistent over
	// many rounds (regression guard for generation/reset bookkeeping).
	g := NewGroup(5)
	b := NewBarrier(5, nil)
	r := NewReducer(5, nil)
	g.Run(func(p *Proc) {
		for round := 0; round < 100; round++ {
			p.Advance(Time(p.ID() + round))
			b.Wait(p)
			sum := r.Do(p, 1, func(vals []any) any {
				s := 0
				for _, v := range vals {
					s += v.(int)
				}
				return s
			}).(int)
			if sum != 5 {
				t.Errorf("round %d: sum %d", round, sum)
				return
			}
		}
	})
}

func TestPhaseTimeNeverNegative(t *testing.T) {
	g := NewGroup(2)
	b := NewBarrier(2, nil)
	g.Run(func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.SetPhase(Phase(i % int(NumPhases)))
			p.Advance(Time(i))
			b.Wait(p)
		}
	})
	for i := 0; i < 2; i++ {
		for ph := Phase(0); ph < NumPhases; ph++ {
			if g.Proc(i).PhaseTime(ph) < 0 {
				t.Fatalf("negative phase time")
			}
		}
	}
}
