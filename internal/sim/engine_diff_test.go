package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// The differential engine suite: the event scheduler and the goroutine gang
// are two implementations of the same Engine contract, so any observable —
// clocks, phase times, counters, traces, stall diagnostics — must be
// identical between them. The goroutine engine is the reference; these
// tests are what lets the event engine be the default.

// gangObservables captures everything a Group exposes after Run.
type gangObservables struct {
	Max      Time
	PhaseMax [NumPhases]Time
	PhaseAvg [NumPhases]Time
	Counters Counters
	Clocks   []Time
	Traces   [][]Segment
}

// runOnEngine executes body on a fresh n-proc group under the named engine
// and snapshots the observables.
func runOnEngine(t *testing.T, name string, n int, body func(p *Proc)) gangObservables {
	t.Helper()
	e, err := EngineByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupOn(e, n)
	g.EnableTrace()
	g.Run(body)
	obs := gangObservables{
		Max:      g.MaxTime(),
		PhaseMax: g.MaxPhaseTime(),
		PhaseAvg: g.AvgPhaseTime(),
		Counters: g.TotalCounters(),
		Traces:   g.Traces(),
	}
	for i := 0; i < g.Size(); i++ {
		obs.Clocks = append(obs.Clocks, g.Proc(i).Now())
	}
	return obs
}

// TestEnginesAgreeOnSyntheticGang drives a deliberately irregular episode —
// rank-skewed compute, phase changes, a penalized barrier, and a reducer —
// and demands bit-identical observables from both engines.
func TestEnginesAgreeOnSyntheticGang(t *testing.T) {
	const n = 7
	pen := make([]Time, n)
	for i := range pen {
		pen[i] = Time(i * 3)
	}
	cost := func(n int) Time { return Time(20 * n) }
	body := func(p *Proc) {
		b := barrierOf(p)
		r := reducerOf(p)
		for round := 0; round < 4; round++ {
			p.Advance(Time(100 + 17*p.ID() + round))
			prev := p.SetPhase(PhaseComm)
			p.Advance(Time(5 * (p.ID() + 1)))
			p.SetPhase(prev)
			b.Wait(p)
			got := r.Do(p, p.ID(), func(vals []any) any {
				sum := 0
				for _, v := range vals {
					sum += v.(int)
				}
				return sum
			})
			if got.(int) != n*(n-1)/2 {
				panic(fmt.Sprintf("reduction = %v", got))
			}
		}
	}
	var want gangObservables
	for i, name := range EngineNames() {
		// Rendezvous state must be fresh per engine run but shared across
		// the gang: allocate per run, hand out via the closure table.
		b := NewBarrierHook(n, cost, func() []Time { return pen })
		r := NewReducer(n, cost)
		setSharedPrimitives(b, r)
		got := runOnEngine(t, name, n, body)
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine %q observables diverge:\n got %+v\nwant %+v", name, got, want)
		}
	}
	if want.Max == 0 {
		t.Fatal("synthetic gang did no work")
	}
}

// sharedB/sharedR hand fresh rendezvous primitives to the gang body without
// capturing them in the closure (the body is reused verbatim per engine so
// the two runs are textually identical work).
var (
	sharedB *Barrier
	sharedR *Reducer
)

func setSharedPrimitives(b *Barrier, r *Reducer) { sharedB, sharedR = b, r }
func barrierOf(*Proc) *Barrier                   { return sharedB }
func reducerOf(*Proc) *Reducer                   { return sharedR }

// TestEnginesAgreeOnStallDiagnostics: a rank that never joins the barrier
// must produce the same *StallError — kind, membership, missing ranks, and
// message — whether the goroutine watchdog times out in real time or the
// event engine proves the stall structurally from an empty event heap.
func TestEnginesAgreeOnStallDiagnostics(t *testing.T) {
	prev := SetStallDeadline(50 * time.Millisecond)
	t.Cleanup(func() { SetStallDeadline(prev) })

	type stallObs struct {
		rank int
		se   StallError
		msg  string
	}
	observe := func(name string) stallObs {
		e, err := EngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGroupOn(e, 3)
		b := NewBarrier(3, nil)
		v := mustPanic(t, func() {
			g.Run(func(p *Proc) {
				if p.ID() == 2 {
					return // never arrives
				}
				p.Advance(Time(10 * (p.ID() + 1)))
				b.Wait(p)
			})
		})
		pp, ok := v.(*ProcPanic)
		if !ok {
			t.Fatalf("engine %q: Run re-panicked with %T (%v), want *ProcPanic", name, v, v)
		}
		se, ok := pp.Value.(*StallError)
		if !ok {
			t.Fatalf("engine %q: panic value %T (%v), want *StallError", name, pp.Value, pp.Value)
		}
		// Arrival order is scheduling-dependent under the goroutine engine;
		// the contract is the set, not the order (Error() sorts too).
		canon := *se
		canon.Arrived = append([]int(nil), se.Arrived...)
		sort.Ints(canon.Arrived)
		return stallObs{rank: pp.Rank, se: canon, msg: se.Error()}
	}

	var want stallObs
	for i, name := range EngineNames() {
		got := observe(name)
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine %q stall diagnostics diverge:\n got %+v\nwant %+v", name, got, want)
		}
	}
	if want.se.Kind != "barrier" || want.se.N != 3 || len(want.se.Arrived) != 2 {
		t.Fatalf("stall shape = %+v", want.se)
	}
}
