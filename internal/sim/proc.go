package sim

import (
	"fmt"
	"runtime/debug"
)

// Phase labels the activity that virtual time is attributed to. The set is
// shared by every application so that phase-breakdown figures are comparable
// across programming models.
type Phase uint8

// Phases of execution. Applications attribute time via Proc.SetPhase.
const (
	PhaseCompute   Phase = iota // numerical work (solver, force evaluation)
	PhaseComm                   // explicit communication (messages, puts/gets)
	PhaseSync                   // barriers, fences, locks, waiting
	PhaseMark                   // adaptive: error estimation + edge marking
	PhaseRefine                 // adaptive: structural refinement/coarsening
	PhasePartition              // repartitioning computation
	PhaseRemap                  // data migration after repartitioning
	PhaseTree                   // N-body: tree construction
	PhaseOther                  // anything else
	NumPhases
)

var phaseNames = [NumPhases]string{
	"compute", "comm", "sync", "mark", "refine", "partition", "remap", "tree", "other",
}

// String returns the lowercase phase name.
func (ph Phase) String() string {
	if int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return fmt.Sprintf("phase(%d)", int(ph))
}

// Counters aggregates event counts on one simulated processor. They feed the
// traffic and memory-system tables of the evaluation.
type Counters struct {
	CacheHits    uint64 // loads/stores satisfied by the simulated cache
	LocalMisses  uint64 // misses homed on the local node
	RemoteMisses uint64 // misses homed on a remote node
	CohMisses    uint64 // misses caused by coherence invalidations
	BytesSent    uint64 // payload bytes pushed into the network
	MsgsSent     uint64 // point-to-point messages or one-sided transfers
	Collectives  uint64 // collective operations entered
	LockOps      uint64 // lock acquisitions
	AllocBytes   uint64 // model-visible memory allocated by this proc
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.CacheHits += other.CacheHits
	c.LocalMisses += other.LocalMisses
	c.RemoteMisses += other.RemoteMisses
	c.CohMisses += other.CohMisses
	c.BytesSent += other.BytesSent
	c.MsgsSent += other.MsgsSent
	c.Collectives += other.Collectives
	c.LockOps += other.LockOps
	c.AllocBytes += other.AllocBytes
}

// Proc is one simulated processor: a private virtual clock plus per-phase
// time attribution and event counters. A Proc is owned by exactly one
// execution context (worker goroutine or scheduled continuation, depending
// on the Group's Engine) for the duration of a Group.Run; its methods are
// not safe for concurrent use by multiple goroutines.
type Proc struct {
	id        int
	clock     Time
	phase     Phase
	phaseTime [NumPhases]Time
	Counters

	// ev binds the proc to its continuation while an event-engine Run is in
	// flight (nil otherwise). Rendezvous primitives dispatch on it: nil means
	// host blocking, non-nil means suspend the continuation.
	ev *evProc

	// Optional phase-timeline tracing (see Group.EnableTrace).
	tracing  bool
	trace    []Segment
	segStart Time
	segPhase Phase
}

// ID returns the processor's rank within its group, in [0, N).
func (p *Proc) ID() int { return p.id }

// Now returns the processor's current virtual time.
func (p *Proc) Now() Time { return p.clock }

// Phase returns the phase virtual time is currently attributed to.
func (p *Proc) Phase() Phase { return p.phase }

// SetPhase switches time attribution to ph and returns the previous phase,
// enabling the idiom:
//
//	defer p.SetPhase(p.SetPhase(sim.PhaseComm))
func (p *Proc) SetPhase(ph Phase) Phase {
	prev := p.phase
	if ph != prev {
		p.phase = ph
		p.flushSegment()
	}
	return prev
}

// Advance charges d of virtual time to the current phase. Negative d panics:
// virtual clocks never run backwards.
//
// Advance runs once per costed memory access, so it must stay inlinable; the
// panic formatting lives in advanceNegative to keep it under the inliner
// budget.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		p.advanceNegative(d)
	}
	p.clock += d
	p.phaseTime[p.phase] += d
}

//go:noinline
func (p *Proc) advanceNegative(d Time) {
	panic(fmt.Sprintf("sim: proc %d advanced by negative time %d", p.id, d))
}

// AdvanceTo moves the clock forward to t if t is in the future, charging the
// gap to the current phase. It is a no-op when t is in the past: clock merges
// are conservative maxima.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.clock {
		p.Advance(t - p.clock)
	}
}

// PhaseTime reports the total virtual time attributed to ph so far.
func (p *Proc) PhaseTime(ph Phase) Time { return p.phaseTime[ph] }

// PhaseTimes returns a copy of all per-phase accumulations.
func (p *Proc) PhaseTimes() [NumPhases]Time { return p.phaseTime }

// Group is a gang of simulated processors that execute one SPMD program
// under a fixed Engine (see engine.go for the execution strategies).
type Group struct {
	procs []*Proc
	eng   Engine

	// Goroutine-engine gang state (nil until its first Run; see engine.go).
	work []chan func(*Proc) // one channel per worker
	res  chan *ProcPanic    // completion per worker per Run (nil = clean)

	// Event-engine scheduler state, reused across Runs (see event.go).
	sched *evSched
}

// NewGroup creates n processors with zeroed clocks, ranked 0..n-1, running
// under the process-wide default engine (see SetDefaultEngine).
func NewGroup(n int) *Group {
	return NewGroupOn(DefaultEngine(), n)
}

// NewGroupOn is NewGroup with an explicit engine, pinning the group to e
// regardless of later SetDefaultEngine calls — the hook differential tests
// use to run the same program under both engines side by side.
func NewGroupOn(e Engine, n int) *Group {
	if n <= 0 {
		panic("sim: group size must be positive")
	}
	if e == nil {
		panic("sim: nil engine")
	}
	g := &Group{procs: make([]*Proc, n), eng: e}
	for i := range g.procs {
		g.procs[i] = &Proc{id: i}
	}
	return g
}

// Engine returns the engine this group executes under.
func (g *Group) Engine() Engine { return g.eng }

// runBody runs body on p, converting an escaped panic into a *ProcPanic.
func runBody(p *Proc, body func(*Proc)) (pp *ProcPanic) {
	defer func() {
		if r := recover(); r != nil {
			pp = &ProcPanic{Rank: p.id, Value: r, Stack: debug.Stack()}
		}
	}()
	body(p)
	return nil
}

// Size returns the number of processors in the group.
func (g *Group) Size() int { return len(g.procs) }

// Proc returns processor i.
func (g *Group) Proc(i int) *Proc { return g.procs[i] }

// ProcPanic wraps a panic that escaped a processor goroutine. Group.Run
// recovers it there and re-raises it on Run's calling goroutine, so a bug in
// SPMD body code (or a barrier StallError) surfaces where it can be handled —
// e.g. recovered by the experiment engine into a failed cell — instead of
// crashing the whole process from an anonymous goroutine.
type ProcPanic struct {
	Rank  int    // the processor whose body panicked
	Value any    // the original panic value
	Stack []byte // that goroutine's stack at panic time
}

func (e *ProcPanic) Error() string {
	return fmt.Sprintf("sim: proc %d panicked: %v", e.Rank, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *ProcPanic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes body once per processor under the group's engine and returns
// when all have finished. This is the SPMD entry point: body receives the
// Proc it owns and may use it with any of the model runtimes. Run is not
// safe for concurrent use on the same Group (the Procs are single-owner);
// sequential Runs reuse the engine's per-group state.
//
// If any body panics, Run waits for the rest of the gang to unwind (the
// stall watchdog under the goroutine engine, or the event scheduler's
// structural deadlock detection, guarantees participants blocked on the dead
// rank do so) and then re-panics with a *ProcPanic on the calling goroutine.
// When several processors panic, the root cause is preferred
// deterministically: a non-stall panic beats a StallError (stalls are
// downstream symptoms), then the lowest rank wins.
func (g *Group) Run(body func(p *Proc)) {
	g.eng.run(g, body)
}

// MaxTime returns the latest virtual clock in the group — the simulated
// wall-clock time of the parallel execution.
func (g *Group) MaxTime() Time {
	var m Time
	for _, p := range g.procs {
		if p.clock > m {
			m = p.clock
		}
	}
	return m
}

// MaxPhaseTime returns, for each phase, the maximum per-processor time — the
// critical-path view used in phase-breakdown figures.
func (g *Group) MaxPhaseTime() [NumPhases]Time {
	var out [NumPhases]Time
	for _, p := range g.procs {
		for ph := Phase(0); ph < NumPhases; ph++ {
			if p.phaseTime[ph] > out[ph] {
				out[ph] = p.phaseTime[ph]
			}
		}
	}
	return out
}

// AvgPhaseTime returns the per-phase time averaged over processors, rounded
// half-up: plain integer division would silently truncate each average by up
// to n-1 time units, biasing every phase low.
func (g *Group) AvgPhaseTime() [NumPhases]Time {
	var out [NumPhases]Time
	for _, p := range g.procs {
		for ph := Phase(0); ph < NumPhases; ph++ {
			out[ph] += p.phaseTime[ph]
		}
	}
	n := Time(len(g.procs))
	for ph := range out {
		out[ph] = (out[ph] + n/2) / n
	}
	return out
}

// TotalCounters sums event counters over all processors.
func (g *Group) TotalCounters() Counters {
	var c Counters
	for _, p := range g.procs {
		c.Add(&p.Counters)
	}
	return c
}
