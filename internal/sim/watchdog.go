package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// The stall watchdog is the simulation runtime's liveness backstop. A barrier
// or reducer episode that never reaches its full participant count — because
// a processor goroutine panicked, returned early, or deadlocked elsewhere —
// would otherwise block every arrived participant forever and hang the whole
// process. Instead, the first arriver of each episode arms a host-side (wall
// clock, not virtual time) timer; if the episode is still incomplete when it
// fires, every arrived participant panics with a *StallError naming the
// missing ranks, Group.Run recovers the panics and re-raises one on its
// caller, and the experiment engine converts it into a failed cell.
//
// Virtual time is unrelated: a legitimate episode completes in microseconds
// of host time however much simulated time it spans, so the default deadline
// only ever fires on a genuinely wedged episode.

// DefaultStallDeadline is the initial episode deadline. It is deliberately
// generous: a false positive fails a healthy cell, while a true stall only
// wastes this much wall time once.
const DefaultStallDeadline = 30 * time.Second

var stallDeadlineNS atomic.Int64

func init() { stallDeadlineNS.Store(int64(DefaultStallDeadline)) }

// SetStallDeadline sets the package-wide episode deadline and returns the
// previous value. d <= 0 disables the watchdog (episodes may then block
// forever; only do this in code that provably cannot stall). Tests that
// provoke stalls on purpose set a short deadline and restore the old one:
//
//	defer sim.SetStallDeadline(sim.SetStallDeadline(50 * time.Millisecond))
func SetStallDeadline(d time.Duration) time.Duration {
	return time.Duration(stallDeadlineNS.Swap(int64(d)))
}

// StallDeadline returns the current package-wide episode deadline.
func StallDeadline() time.Duration { return time.Duration(stallDeadlineNS.Load()) }

// StallError is the panic value raised by every participant of a barrier or
// reducer episode that failed to complete within the watchdog deadline. It
// names the ranks that did arrive, so the diagnostic points straight at the
// ones that are missing.
type StallError struct {
	Kind     string        // "barrier" or "reducer"
	N        int           // expected participant count
	Arrived  []int         // ranks (or slots) that reached the episode
	Deadline time.Duration // the deadline that expired
}

// Missing returns the ranks in [0, N) that never arrived, sorted.
func (e *StallError) Missing() []int {
	present := make(map[int]bool, len(e.Arrived))
	for _, id := range e.Arrived {
		present[id] = true
	}
	var miss []int
	for id := 0; id < e.N; id++ {
		if !present[id] {
			miss = append(miss, id)
		}
	}
	return miss
}

func (e *StallError) Error() string {
	arrived := append([]int(nil), e.Arrived...)
	sort.Ints(arrived)
	return fmt.Sprintf("sim: %s stalled: %d/%d participants after %v (arrived %v, missing %v)",
		e.Kind, len(e.Arrived), e.N, e.Deadline, arrived, e.Missing())
}
