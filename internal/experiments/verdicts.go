package experiments

import (
	"context"
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/runner"
	"o2k/internal/sim"
)

// buildVerdicts runs the study's falsifiable predictions (the "expected
// shape" lines of EXPERIMENTS.md) as executable checks and reports
// PASS/FAIL for each — the reproduction statement in one table. Every
// underlying simulation goes through the cell engine, so on a shared
// engine (o2kbench after -exp all, or RunAll) most of its evidence is
// already cached.
//
// V0 is the evidence gate: if any cell the checks depend on failed
// (panicked, timed out, was cancelled), V0 FAILs and names the first
// failure. The per-claim verdicts below it still render — a failed cell
// contributes zero-valued metrics there — but V0 makes the degradation
// impossible to mistake for a clean FAIL or PASS.
func buildVerdicts(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Verdicts — the study's falsifiable predictions, checked",
		Header: []string{"id", "claim", "verdict", "evidence"},
	}
	maxP := o.Procs[len(o.Procs)-1]
	midP := o.Procs[len(o.Procs)/2]

	add := func(id, claim string, ok bool, evidence string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(id, claim, verdict, evidence)
	}

	wOff := o.MeshW
	wOff.NoRemap = true

	// Warm every independent evidence group so the unique cells run in
	// parallel; the serial checks below then assemble from cache.
	var meshMax, meshMid, nb, nbMid, t3e [3]runner.Res
	var fig7 *core.Table
	var stMP, stSAS, hyb, cgMaxMP, cgMidMP runner.Res
	var onPlans, offPlans []*adaptmesh.CyclePlan
	var onErr, offErr error
	e.Warm(
		func() { meshMax = e.MeshModels(ctx, machine.Default(maxP), o.MeshW) },
		func() { meshMid = e.MeshModels(ctx, machine.Default(midP), o.MeshW) },
		func() { nb = e.NBodyModels(ctx, machine.Default(maxP), o.NBodyW) },
		func() { nbMid = e.NBodyModels(ctx, machine.Default(midP), o.NBodyW) },
		func() { fig7 = buildFig7(ctx, e, o) },
		func() { stMP = e.Stencil(ctx, core.MP, machine.Default(maxP), o.StencilW) },
		func() { stSAS = e.Stencil(ctx, core.SAS, machine.Default(maxP), o.StencilW) },
		func() { onPlans, onErr = e.MeshPlans(ctx, o.MeshW, maxP) },
		func() { offPlans, offErr = e.MeshPlans(ctx, wOff, maxP) },
		func() { t3e = e.MeshModels(ctx, machine.T3E(midP), o.MeshW) },
		func() { hyb = e.MeshHybrid(ctx, machine.Default(maxP), o.MeshW) },
		func() { cgMaxMP = e.CG(ctx, core.MP, machine.Default(maxP), o.CGW) },
		func() { cgMidMP = e.CG(ctx, core.MP, machine.Default(midP), o.CGW) },
	)

	// V0: evidence integrity.
	var failed []string
	for _, r := range []runner.Res{
		meshMax[0], meshMax[1], meshMax[2], meshMid[0], meshMid[1], meshMid[2],
		nb[0], nb[1], nb[2], nbMid[0], nbMid[1], nbMid[2],
		t3e[0], t3e[1], t3e[2], stMP, stSAS, hyb, cgMaxMP, cgMidMP,
	} {
		if r.Err != nil {
			failed = append(failed, runner.FailLabel(r.Err))
		}
	}
	for _, err := range []error{onErr, offErr} {
		if err != nil {
			failed = append(failed, runner.FailLabel(err))
		}
	}
	if len(failed) == 0 {
		add("V0", "every evidence cell computed", true, "all cells ok")
	} else {
		add("V0", "every evidence cell computed", false,
			fmt.Sprintf("%d failed cell(s), first: %s", len(failed), failed[0]))
	}

	// V1/V2: mesh ordering and widening gap.
	add("V1", "adaptive mesh: CC-SAS < SHMEM < MP at max P",
		meshMax[2].M.Total < meshMax[1].M.Total && meshMax[1].M.Total < meshMax[0].M.Total,
		fmt.Sprintf("P=%d: %v / %v / %v", maxP, meshMax[0].M.Total, meshMax[1].M.Total, meshMax[2].M.Total))
	gapMax := float64(meshMax[0].M.Total) / float64(meshMax[2].M.Total)
	gapMid := float64(meshMid[0].M.Total) / float64(meshMid[2].M.Total)
	add("V2", "MP:CC-SAS gap widens with P",
		gapMax > gapMid,
		fmt.Sprintf("P=%d: %.2f -> P=%d: %.2f", midP, gapMid, maxP, gapMax))

	// V3: N-body winner.
	add("V3", "n-body: CC-SAS fastest at max P",
		nb[2].M.Total < nb[0].M.Total && nb[2].M.Total < nb[1].M.Total,
		fmt.Sprintf("%v / %v / %v", nb[0].M.Total, nb[1].M.Total, nb[2].M.Total))

	// V4: memory ordering.
	add("V4", "memory: CC-SAS < SHMEM <= MP (mesh)",
		meshMax[2].M.DataBytes < meshMax[1].M.DataBytes && meshMax[1].M.DataBytes <= meshMax[0].M.DataBytes,
		fmt.Sprintf("%d / %d / %d bytes", meshMax[0].M.DataBytes, meshMax[1].M.DataBytes, meshMax[2].M.DataBytes))

	// V5: programming effort.
	loc := Table5()
	locOK := true
	ev := ""
	for _, r := range loc.Rows {
		mp, sh, sa := atoiSafe(r[1]), atoiSafe(r[2]), atoiSafe(r[3])
		if sa > mp || sa > sh {
			locOK = false
		}
		ev += fmt.Sprintf("%s:%d/%d/%d ", r[0][:4], mp, sh, sa)
	}
	add("V5", "LoC: CC-SAS smallest in every component", locOK, ev)

	// V6: NUMA-ratio crossover.
	first := parseRatio(fig7.Rows[0][4])
	last := parseRatio(fig7.Rows[len(fig7.Rows)-1][4])
	add("V6", "CC-SAS advantage erodes as remote:local ratio grows",
		first < 1 && last > first,
		fmt.Sprintf("CC-SAS/MP: %.2f -> %.2f", first, last))

	// V7: regular control.
	stGap := float64(stMP.M.Total) / float64(stSAS.M.Total)
	add("V7", "regular stencil gap well below adaptive gap",
		stGap < gapMax,
		fmt.Sprintf("stencil %.2f vs mesh %.2f", stGap, gapMax))

	// V8: PLUM remap reduces movement.
	var mOn, mOff float64
	for i := range onPlans {
		mOn += onPlans[i].Remap.TotalW
		mOff += offPlans[i].Remap.TotalW
	}
	add("V8", "PLUM remap moves less weight than identity",
		onErr == nil && offErr == nil && mOn <= mOff,
		fmt.Sprintf("%.0f vs %.0f", mOn, mOff))

	// V9: machine-class flip.
	add("V9", "on a T3E-like MPP the winner flips to SHMEM",
		t3e[1].M.Total < t3e[0].M.Total && t3e[1].M.Total < t3e[2].M.Total,
		fmt.Sprintf("%v / %v / %v", t3e[0].M.Total, t3e[1].M.Total, t3e[2].M.Total))

	// V10: hybrid finding.
	pure := meshMax[0].M.Total
	add("V10", "hybrid MP+SAS within 15% of pure MP on Origin",
		!hyb.Failed() && float64(hyb.M.Total) <= 1.15*float64(pure),
		fmt.Sprintf("hybrid %v vs MP %v", hyb.M.Total, pure))

	// V11: cross-model result identity.
	okID := meshMid[0].M.Checksum == meshMid[1].M.Checksum && meshMid[1].M.Checksum == meshMid[2].M.Checksum
	okID = okID && nbMid[0].M.Checksum == nbMid[1].M.Checksum && nbMid[1].M.Checksum == nbMid[2].M.Checksum
	add("V11", "bit-identical results across models (mesh + n-body)",
		okID, fmt.Sprintf("mesh %.9g, n-body %.9g", meshMid[0].M.Checksum, nbMid[0].M.Checksum))

	// V12: CG reduction-latency signature.
	add("V12", "CG: MP reduction share grows with P",
		cgMaxMP.M.PhaseFraction(sim.PhaseSync) > cgMidMP.M.PhaseFraction(sim.PhaseSync),
		fmt.Sprintf("sync frac P=%d: %.2f -> P=%d: %.2f",
			midP, cgMidMP.M.PhaseFraction(sim.PhaseSync), maxP, cgMaxMP.M.PhaseFraction(sim.PhaseSync)))

	return t
}

// Verdicts runs every check on a private engine.
//
// Deprecated: use Run("verdicts", o), or RunOn with the engine that already
// ran the experiments the checks re-examine.
func Verdicts(o Opts) *core.Table { return buildVerdicts(context.Background(), runner.New(o.Jobs), o) }

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func parseRatio(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}
