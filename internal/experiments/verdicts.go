package experiments

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

// Verdicts runs the study's falsifiable predictions (the "expected shape"
// lines of EXPERIMENTS.md) as executable checks and reports PASS/FAIL for
// each — the reproduction statement in one table. It re-executes the
// underlying experiments, so at DefaultOpts it takes as long as several
// figures combined.
func Verdicts(o Opts) *core.Table {
	t := &core.Table{
		Title:  "Verdicts — the study's falsifiable predictions, checked",
		Header: []string{"id", "claim", "verdict", "evidence"},
	}
	maxP := o.Procs[len(o.Procs)-1]
	midP := o.Procs[len(o.Procs)/2]

	add := func(id, claim string, ok bool, evidence string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(id, claim, verdict, evidence)
	}

	// V1/V2: mesh ordering and widening gap.
	meshMax := runMesh(o.MeshW, maxP)
	meshMid := runMesh(o.MeshW, midP)
	add("V1", "adaptive mesh: CC-SAS < SHMEM < MP at max P",
		meshMax[2].Total < meshMax[1].Total && meshMax[1].Total < meshMax[0].Total,
		fmt.Sprintf("P=%d: %v / %v / %v", maxP, meshMax[0].Total, meshMax[1].Total, meshMax[2].Total))
	gapMax := float64(meshMax[0].Total) / float64(meshMax[2].Total)
	gapMid := float64(meshMid[0].Total) / float64(meshMid[2].Total)
	add("V2", "MP:CC-SAS gap widens with P",
		gapMax > gapMid,
		fmt.Sprintf("P=%d: %.2f -> P=%d: %.2f", midP, gapMid, maxP, gapMax))

	// V3: N-body winner.
	nb := runNBody(o.NBodyW, maxP)
	add("V3", "n-body: CC-SAS fastest at max P",
		nb[2].Total < nb[0].Total && nb[2].Total < nb[1].Total,
		fmt.Sprintf("%v / %v / %v", nb[0].Total, nb[1].Total, nb[2].Total))

	// V4: memory ordering.
	add("V4", "memory: CC-SAS < SHMEM <= MP (mesh)",
		meshMax[2].DataBytes < meshMax[1].DataBytes && meshMax[1].DataBytes <= meshMax[0].DataBytes,
		fmt.Sprintf("%d / %d / %d bytes", meshMax[0].DataBytes, meshMax[1].DataBytes, meshMax[2].DataBytes))

	// V5: programming effort.
	loc := Table5()
	locOK := true
	ev := ""
	for _, r := range loc.Rows {
		mp, sh, sa := atoiSafe(r[1]), atoiSafe(r[2]), atoiSafe(r[3])
		if sa > mp || sa > sh {
			locOK = false
		}
		ev += fmt.Sprintf("%s:%d/%d/%d ", r[0][:4], mp, sh, sa)
	}
	add("V5", "LoC: CC-SAS smallest in every component", locOK, ev)

	// V6: NUMA-ratio crossover.
	fig7 := Fig7(o)
	first := parseRatio(fig7.Rows[0][4])
	last := parseRatio(fig7.Rows[len(fig7.Rows)-1][4])
	add("V6", "CC-SAS advantage erodes as remote:local ratio grows",
		first < 1 && last > first,
		fmt.Sprintf("CC-SAS/MP: %.2f -> %.2f", first, last))

	// V7: regular control.
	stMP := stencil.Run(core.MP, mach(maxP), o.StencilW).Total
	stSAS := stencil.Run(core.SAS, mach(maxP), o.StencilW).Total
	stGap := float64(stMP) / float64(stSAS)
	add("V7", "regular stencil gap well below adaptive gap",
		stGap < gapMax,
		fmt.Sprintf("stencil %.2f vs mesh %.2f", stGap, gapMax))

	// V8: PLUM remap reduces movement.
	wOff := o.MeshW
	wOff.NoRemap = true
	on := adaptmesh.BuildPlans(o.MeshW, maxP)
	off := adaptmesh.BuildPlans(wOff, maxP)
	var mOn, mOff float64
	for i := range on {
		mOn += on[i].Remap.TotalW
		mOff += off[i].Remap.TotalW
	}
	add("V8", "PLUM remap moves less weight than identity",
		mOn <= mOff, fmt.Sprintf("%.0f vs %.0f", mOn, mOff))

	// V9: machine-class flip.
	t3e := machine.MustNew(machine.T3E(midP))
	plans := adaptmesh.BuildPlans(o.MeshW, midP)
	var t3eT [3]sim.Time
	for i, model := range core.AllModels() {
		t3eT[i] = adaptmesh.RunWithPlans(model, t3e, o.MeshW, plans).Total
	}
	add("V9", "on a T3E-like MPP the winner flips to SHMEM",
		t3eT[1] < t3eT[0] && t3eT[1] < t3eT[2],
		fmt.Sprintf("%v / %v / %v", t3eT[0], t3eT[1], t3eT[2]))

	// V10: hybrid finding.
	hyb := adaptmesh.RunHybridWithPlans(mach(maxP), o.MeshW,
		adaptmesh.BuildPlans(o.MeshW, mach(maxP).Nodes())).Total
	pure := meshMax[0].Total
	add("V10", "hybrid MP+SAS within 15% of pure MP on Origin",
		float64(hyb) <= 1.15*float64(pure),
		fmt.Sprintf("hybrid %v vs MP %v", hyb, pure))

	// V11: cross-model result identity.
	nbp := barnes.BuildPlans(o.NBodyW, midP)
	mm := runMesh(o.MeshW, midP)
	okID := mm[0].Checksum == mm[1].Checksum && mm[1].Checksum == mm[2].Checksum
	var nbc [3]float64
	for i, model := range core.AllModels() {
		nbc[i] = barnes.RunWithPlans(model, mach(midP), o.NBodyW, nbp).Checksum
	}
	okID = okID && nbc[0] == nbc[1] && nbc[1] == nbc[2]
	add("V11", "bit-identical results across models (mesh + n-body)",
		okID, fmt.Sprintf("mesh %.9g, n-body %.9g", mm[0].Checksum, nbc[0]))

	// V12: CG reduction-latency signature.
	cgPl := cg.BuildPlan(o.CGW, maxP)
	cgMP := cg.RunWithPlan(core.MP, mach(maxP), o.CGW, cgPl)
	cgMid := cg.RunWithPlan(core.MP, mach(midP), o.CGW, cg.BuildPlan(o.CGW, midP))
	add("V12", "CG: MP reduction share grows with P",
		cgMP.PhaseFraction(sim.PhaseSync) > cgMid.PhaseFraction(sim.PhaseSync),
		fmt.Sprintf("sync frac P=%d: %.2f -> P=%d: %.2f",
			midP, cgMid.PhaseFraction(sim.PhaseSync), maxP, cgMP.PhaseFraction(sim.PhaseSync)))

	return t
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func parseRatio(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}
