package experiments

import (
	"strings"
	"testing"

	"o2k/internal/core"
	"o2k/internal/runner"
)

// renderAll joins a table list into the exact bytes o2kbench prints.
func renderAll(tables []*core.Table) string {
	var b strings.Builder
	for i, t := range tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func TestRegistryIndex(t *testing.T) {
	specs := List()
	if len(specs) != 15 {
		t.Fatalf("registry has %d specs, want 15", len(specs))
	}
	// Paper index order, each reachable by name and by alias.
	wantOrder := []string{"workloads", "mesh-speedup", "nbody-speedup", "breakdown",
		"loc", "memory", "latency-sweep", "loadbalance", "traffic",
		"regular-control", "page-migration", "machine-sweep", "hybrid", "cg", "verdicts"}
	for i, s := range specs {
		if s.Name != wantOrder[i] {
			t.Fatalf("spec %d = %q, want %q", i, s.Name, wantOrder[i])
		}
		if s.Title == "" || s.Build == nil {
			t.Fatalf("spec %q incomplete", s.Name)
		}
		for _, n := range append([]string{s.Name}, s.Aliases...) {
			got, ok := Lookup(n)
			if !ok || got.Name != s.Name {
				t.Fatalf("Lookup(%q) = %q, %v", n, got.Name, ok)
			}
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestAliasAndNameProduceSameTable(t *testing.T) {
	o := QuickOpts()
	o.Procs = []int{1, 2}
	byAlias, err1 := Run("fig2", o)
	byName, err2 := Run("mesh-speedup", o)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if renderAll(byAlias) != renderAll(byName) {
		t.Fatal("alias and canonical name produced different tables")
	}
}

// TestParallelSerialEquivalence is the headline determinism guarantee: the
// full suite renders byte-identically with a serial pool and a wide one.
func TestParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	o := QuickOpts()
	serial := renderAll(RunAll(runner.New(1), o))
	parallel := renderAll(RunAll(runner.New(8), o))
	if serial != parallel {
		t.Fatal("-jobs=1 and -jobs=8 table output differ")
	}
	if strings.Count(serial, "##") != 14 {
		t.Fatalf("expected 14 rendered tables, got %d", strings.Count(serial, "##"))
	}
}

// TestSharedEngineCacheRate asserts the cross-experiment sharing the runner
// exists for: over the whole suite, at least 30% of cell requests must be
// served from cache.
func TestSharedEngineCacheRate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	e := runner.New(4)
	RunAll(e, QuickOpts())
	r := e.Report()
	if rate := r.HitRate(); rate < 0.30 {
		t.Fatalf("shared-cache hit rate %.1f%% < 30%% (unique=%d requests=%d)",
			100*rate, r.Unique, r.Requests)
	}
}

// TestSecondRunAllCacheHits: repeating an experiment on the same engine
// must simulate nothing new and reproduce the bytes exactly.
func TestSecondRunAllCacheHits(t *testing.T) {
	o := QuickOpts()
	o.Procs = []int{1, 4}
	e := runner.New(2)
	first, err := RunOn(e, "loadbalance", o)
	if err != nil {
		t.Fatal(err)
	}
	misses := e.Report().Unique
	second, err := RunOn(e, "loadbalance", o)
	if err != nil {
		t.Fatal(err)
	}
	if r := e.Report(); r.Unique != misses {
		t.Fatalf("re-run simulated %d new cells, want 0", r.Unique-misses)
	}
	if renderAll(first) != renderAll(second) {
		t.Fatal("re-run produced different bytes")
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run("nope", QuickOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
