package experiments

import (
	"bufio"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"o2k/internal/core"
	"o2k/internal/runner"
)

// buildTable5 adapts the LoC counter to the registry's Build signature; it
// measures source files, not simulations, so it takes nothing from the
// engine.
func buildTable5(_ context.Context, _ *runner.Engine, _ Opts) *core.Table { return Table5() }

// Table5 is the programming-effort table: lines of code of each model's
// implementation, measured from this repository's own sources (the honest
// analogue of the paper's LoC comparison — these are the files a programmer
// would have written per model).
func Table5() *core.Table {
	t := &core.Table{
		Title:  "Table 5 — Programming effort (non-blank, non-comment lines of Go)",
		Header: []string{"component", "MP", "SHMEM", "CC-SAS"},
	}
	root := repoRoot()
	count := func(rel string) int {
		n, err := countLoC(filepath.Join(root, rel))
		if err != nil {
			return -1
		}
		return n
	}
	row := func(label, mpF, shF, saF string) {
		t.AddRow(label,
			itoa(count(mpF)), itoa(count(shF)), itoa(count(saF)))
	}
	row("adaptive mesh app",
		"internal/apps/adaptmesh/mpapp.go",
		"internal/apps/adaptmesh/shmapp.go",
		"internal/apps/adaptmesh/sasapp.go")
	row("n-body app",
		"internal/apps/barnes/mpapp.go",
		"internal/apps/barnes/shmapp.go",
		"internal/apps/barnes/sasapp.go")
	row("stencil app (control)",
		"internal/apps/stencil/mpapp.go",
		"internal/apps/stencil/shmapp.go",
		"internal/apps/stencil/sasapp.go")
	row("conjugate gradient app",
		"internal/apps/cg/mpapp.go",
		"internal/apps/cg/shmapp.go",
		"internal/apps/cg/sasapp.go")
	row("model runtime",
		"internal/mp", "internal/shm", "internal/sas")
	return t
}

func itoa(n int) string {
	if n < 0 {
		return "?"
	}
	s := ""
	if n == 0 {
		return "0"
	}
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// repoRoot locates the module root from this source file's path.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	// .../internal/experiments/loc.go -> repo root
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countLoC counts non-blank, non-comment-only lines over a Go file or all
// non-test Go files of a directory.
func countLoC(path string) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if !info.IsDir() {
		return countFile(path)
	}
	total := 0
	entries, err := os.ReadDir(path)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := countFile(filepath.Join(path, name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func countFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				inBlock = false
				line = strings.TrimSpace(line[idx+2:])
			} else {
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}
