// Package experiments regenerates every (reconstructed) table and figure of
// the evaluation — see DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Experiments are declared as registry Specs (Register/List/Lookup) and
// assembled from memoized simulation cells on a runner.Engine, so one
// invocation that produces many artifacts — `o2kbench -exp all`, the
// verdict checker — simulates each unique (application, model, machine,
// workload, P) cell exactly once, in parallel on a bounded worker pool.
// Run/RunOn are the entry points; the exported per-artifact functions
// (Fig2, Table6, …) remain as thin deprecated wrappers over the registry.
package experiments

import (
	"fmt"
	"sync"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/runner"
	"o2k/internal/sim"
)

// Opts selects the experiment scale.
type Opts struct {
	Procs    []int              // processor counts for the scaling figures
	MeshW    adaptmesh.Workload // adaptive-mesh workload
	NBodyW   barnes.Workload    // N-body workload
	StencilW stencil.Workload   // regular-control workload
	CGW      cg.Workload        // conjugate-gradient workload
	Jobs     int                // worker-pool size for Run; <= 0 means GOMAXPROCS
}

// DefaultOpts returns the full-scale configuration: the Origin2000 study's
// 1..64 processor range.
func DefaultOpts() Opts {
	return Opts{
		Procs:    []int{1, 2, 4, 8, 16, 32, 64},
		MeshW:    adaptmesh.Default(),
		NBodyW:   barnes.Default(),
		StencilW: stencil.Default(),
		CGW:      cg.Default(),
	}
}

// QuickOpts returns a reduced configuration for tests.
func QuickOpts() Opts {
	return Opts{
		Procs:    []int{1, 4, 16},
		MeshW:    adaptmesh.Small(),
		NBodyW:   barnes.Small(),
		StencilW: stencil.Small(),
		CGW:      cg.Small(),
	}
}

// The experiment index, in paper order. Registered here in one place (not
// per-file init functions) so the registry order is explicit.
func init() {
	Register(Spec{Name: "workloads", Aliases: []string{"table1"},
		Title: "Table 1 — application and workload characteristics", Build: buildTable1})
	Register(Spec{Name: "mesh-speedup", Aliases: []string{"fig2"},
		Title: "Figure 2 — adaptive mesh: time and speedup vs processors", Build: buildFig2})
	Register(Spec{Name: "nbody-speedup", Aliases: []string{"fig3"},
		Title: "Figure 3 — Barnes-Hut N-body: time and speedup vs processors", Build: buildFig3})
	Register(Spec{Name: "breakdown", Aliases: []string{"fig4"},
		Title: "Figure 4 — mesh phase breakdown at the largest P", Build: buildFig4})
	Register(Spec{Name: "loc", Aliases: []string{"table5"},
		Title: "Table 5 — programming effort (lines of code per model)", Build: buildTable5})
	Register(Spec{Name: "memory", Aliases: []string{"table6"},
		Title: "Table 6 — model-visible data memory at the largest P", Build: buildTable6})
	Register(Spec{Name: "latency-sweep", Aliases: []string{"fig7"},
		Title: "Figure 7 — sensitivity to the remote:local latency ratio", Build: buildFig7})
	Register(Spec{Name: "loadbalance", Aliases: []string{"fig8"},
		Title: "Figure 8 — PLUM remapping on vs off", Build: buildFig8})
	Register(Spec{Name: "traffic", Aliases: []string{"table9"},
		Title: "Table 9 — communication/traffic statistics", Build: buildTable9})
	Register(Spec{Name: "regular-control", Aliases: []string{"fig10"},
		Title: "Figure 10 — MP:CC-SAS ratio, regular vs adaptive workloads", Build: buildFig10})
	Register(Spec{Name: "page-migration", Aliases: []string{"fig11"},
		Title: "Figure 11 — CC-SAS page-migration ablation", Build: buildFig11})
	Register(Spec{Name: "machine-sweep", Aliases: []string{"fig12"},
		Title: "Figure 12 — machine-class sweep (Origin/T3E/SMP/cluster)", Build: buildFig12})
	Register(Spec{Name: "hybrid", Aliases: []string{"fig13"},
		Title: "Figure 13 — hybrid MP+SAS extension", Build: buildFig13})
	Register(Spec{Name: "cg", Aliases: []string{"fig14"},
		Title: "Figure 14 — conjugate gradient scaling and reduction share", Build: buildFig14})
	Register(Spec{Name: "verdicts",
		Title: "the study's falsifiable predictions, checked", Build: buildVerdicts,
		Standalone: true})
}

func buildTable1(e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Table 1 — Application and workload characteristics (reconstructed)",
		Header: []string{"application", "elements", "edges/interactions", "adapt cycles/steps", "sweeps per cycle", "max imbalance pre-LB"},
	}
	var meshPlans []*adaptmesh.CyclePlan
	var nbPlans []*barnes.StepPlan
	var cgPl *cg.Plan
	e.Warm(
		func() { meshPlans = e.MeshPlans(o.MeshW, 1) },
		func() { nbPlans = e.NBodyPlans(o.NBodyW, 1) },
		func() { cgPl = e.CGPlan(o.CGW, 1) },
	)
	last := meshPlans[len(meshPlans)-1]
	avgT, avgE := 0, 0
	for _, pl := range meshPlans {
		avgT += pl.M.NumTris()
		avgE += pl.M.NumEdges()
	}
	t.AddRow("adaptive mesh",
		fmt.Sprintf("%d tris (final %d)", avgT/len(meshPlans), last.M.NumTris()),
		fmt.Sprintf("%d edges", avgE/len(meshPlans)),
		fmt.Sprintf("%d cycles", o.MeshW.Cycles),
		fmt.Sprintf("%d", o.MeshW.SolveIters),
		core.F(last.Imbalance))
	inter := 0
	cells := 0
	for _, pl := range nbPlans {
		inter += pl.TotalInter
		cells += pl.Tree.NumCells()
	}
	t.AddRow("barnes-hut n-body",
		fmt.Sprintf("%d bodies", o.NBodyW.N),
		fmt.Sprintf("%d interactions/step", inter/len(nbPlans)),
		fmt.Sprintf("%d steps", o.NBodyW.Steps),
		"1",
		fmt.Sprintf("theta=%.2f, %d cells", o.NBodyW.Theta, cells/len(nbPlans)))
	t.AddRow("jacobi stencil (control)",
		fmt.Sprintf("%dx%d grid", o.StencilW.N, o.StencilW.N),
		fmt.Sprintf("%d cells/sweep", o.StencilW.N*o.StencilW.N),
		"static",
		fmt.Sprintf("%d", o.StencilW.Iters),
		"1.000")
	t.AddRow("conjugate gradient",
		fmt.Sprintf("%d tris", cgPl.M.NumTris()),
		fmt.Sprintf("%d edges (matrix rows %d)", cgPl.M.NumEdges(), cgPl.M.NumVertsUsed()),
		"static refined",
		fmt.Sprintf("%d CG iters", o.CGW.Iters),
		"2 allreduce/iter")
	return t
}

func buildFig2(e *runner.Engine, o Opts) *core.Table {
	return scalingTable(e, "Figure 2 — Adaptive mesh: time and speedup vs processors",
		o.Procs, func(p int) [3]core.Metrics { return e.MeshModels(machine.Default(p), o.MeshW) })
}

func buildFig3(e *runner.Engine, o Opts) *core.Table {
	return scalingTable(e, "Figure 3 — Barnes-Hut N-body: time and speedup vs processors",
		o.Procs, func(p int) [3]core.Metrics { return e.NBodyModels(machine.Default(p), o.NBodyW) })
}

// scalingTable warms every processor count's cells in parallel, then
// assembles the rows serially from the (now cached) results, so row order
// never depends on execution order.
func scalingTable(e *runner.Engine, title string, procs []int, run func(p int) [3]core.Metrics) *core.Table {
	t := &core.Table{
		Title: title,
		Header: []string{"P", "MP time", "SHMEM time", "CC-SAS time",
			"MP spdup", "SHMEM spdup", "CC-SAS spdup"},
	}
	fns := make([]func(), len(procs))
	for i, p := range procs {
		p := p
		fns[i] = func() { run(p) }
	}
	e.Warm(fns...)
	var base [3]core.Metrics
	for i, p := range procs {
		m := run(p)
		if i == 0 {
			base = m
		}
		t.AddRow(fmt.Sprintf("%d", p),
			core.FT(m[0].Total), core.FT(m[1].Total), core.FT(m[2].Total),
			core.F(m[0].Speedup(base[0])), core.F(m[1].Speedup(base[1])), core.F(m[2].Speedup(base[2])))
	}
	return t
}

func buildFig4(e *runner.Engine, o Opts) *core.Table {
	p := o.Procs[len(o.Procs)-1]
	m := e.MeshModels(machine.Default(p), o.MeshW)
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 4 — Adaptive mesh phase breakdown at P=%d", p),
		Header: []string{"phase", "MP", "SHMEM", "CC-SAS"},
	}
	for ph := sim.Phase(0); ph < sim.NumPhases; ph++ {
		if m[0].PhaseMax[ph] == 0 && m[1].PhaseMax[ph] == 0 && m[2].PhaseMax[ph] == 0 {
			continue
		}
		t.AddRow(ph.String(),
			core.FT(m[0].PhaseMax[ph]), core.FT(m[1].PhaseMax[ph]), core.FT(m[2].PhaseMax[ph]))
	}
	t.AddRow("TOTAL", core.FT(m[0].Total), core.FT(m[1].Total), core.FT(m[2].Total))
	return t
}

func buildTable6(e *runner.Engine, o Opts) *core.Table {
	p := o.Procs[len(o.Procs)-1]
	var mm, nb [3]core.Metrics
	e.Warm(
		func() { mm = e.MeshModels(machine.Default(p), o.MeshW) },
		func() { nb = e.NBodyModels(machine.Default(p), o.NBodyW) },
	)
	t := &core.Table{
		Title:  fmt.Sprintf("Table 6 — Model-visible data memory at P=%d (bytes)", p),
		Header: []string{"application", "MP", "SHMEM", "CC-SAS", "MP/CC-SAS ratio"},
	}
	t.AddRow("adaptive mesh",
		fmt.Sprintf("%d", mm[0].DataBytes), fmt.Sprintf("%d", mm[1].DataBytes),
		fmt.Sprintf("%d", mm[2].DataBytes),
		core.F(float64(mm[0].DataBytes)/float64(mm[2].DataBytes)))
	t.AddRow("barnes-hut n-body",
		fmt.Sprintf("%d", nb[0].DataBytes), fmt.Sprintf("%d", nb[1].DataBytes),
		fmt.Sprintf("%d", nb[2].DataBytes),
		core.F(float64(nb[0].DataBytes)/float64(nb[2].DataBytes)))
	return t
}

// fig7Ratios is the remote:local latency sweep of the sensitivity ablation.
var fig7Ratios = []float64{1, 2, 4, 8}

// fig7Config scales the baseline NUMA latencies by the given ratio.
func fig7Config(procs int, ratio float64) machine.Config {
	cfg := machine.Default(procs)
	cfg.RemoteMissNS = sim.Time(float64(cfg.LocalMissNS) * ratio)
	cfg.RemoteHopNS = sim.Time(float64(cfg.RemoteHopNS) * ratio / 1.5)
	return cfg
}

func buildFig7(e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	if procs > 32 {
		procs = 32
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 7 — Sensitivity to remote:local latency ratio (mesh, P=%d)", procs),
		Header: []string{"ratio", "MP", "SHMEM", "CC-SAS", "CC-SAS/MP"},
	}
	res := make([][3]core.Metrics, len(fig7Ratios))
	fns := make([]func(), len(fig7Ratios))
	for i, ratio := range fig7Ratios {
		i, ratio := i, ratio
		fns[i] = func() { res[i] = e.MeshModels(fig7Config(procs, ratio), o.MeshW) }
	}
	e.Warm(fns...)
	for i, ratio := range fig7Ratios {
		m := res[i]
		t.AddRow(fmt.Sprintf("%.1fx", ratio),
			core.FT(m[0].Total), core.FT(m[1].Total), core.FT(m[2].Total),
			core.F(float64(m[2].Total)/float64(m[0].Total)))
	}
	return t
}

func buildFig8(e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 8 — PLUM remapping on vs off (mesh, P=%d)", procs),
		Header: []string{"model", "remap on", "remap off", "moved weight on", "moved weight off"},
	}
	wOff := o.MeshW
	wOff.NoRemap = true
	var on, off [3]core.Metrics
	e.Warm(
		func() { on = e.MeshModels(machine.Default(procs), o.MeshW) },
		func() { off = e.MeshModels(machine.Default(procs), wOff) },
	)
	for i, model := range core.AllModels() {
		t.AddRow(model.String(),
			core.FT(on[i].Total), core.FT(off[i].Total),
			core.F(on[i].Extra["moved_weight"]), core.F(off[i].Extra["moved_weight"]))
	}
	return t
}

func buildTable9(e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Table 9 — Traffic statistics (mesh application)",
		Header: []string{"P", "model", "msgs", "bytes", "remote misses", "coh evictions", "lock ops"},
	}
	procs := []int{o.Procs[len(o.Procs)/2], o.Procs[len(o.Procs)-1]}
	res := make([][3]core.Metrics, len(procs))
	var wg sync.WaitGroup
	for i, p := range procs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i] = e.MeshModels(machine.Default(p), o.MeshW)
		}()
	}
	wg.Wait()
	for i, p := range procs {
		for j, model := range core.AllModels() {
			c := res[i][j].Counters
			t.AddRow(fmt.Sprintf("%d", p), model.String(),
				fmt.Sprintf("%d", c.MsgsSent), fmt.Sprintf("%d", c.BytesSent),
				fmt.Sprintf("%d", c.RemoteMisses), fmt.Sprintf("%d", c.CohMisses),
				fmt.Sprintf("%d", c.LockOps))
		}
	}
	return t
}

func buildFig10(e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 10 — MP:CC-SAS time ratio, regular vs adaptive workloads",
		Header: []string{"P", "stencil (regular)", "adaptive mesh", "n-body"},
	}
	var procs []int
	for _, p := range o.Procs {
		if p >= 4 { // ratios at tiny P are all ~1 and waste a row
			procs = append(procs, p)
		}
	}
	type row struct {
		st0, st2 core.Metrics
		me, nb   [3]core.Metrics
	}
	res := make([]row, len(procs))
	var fns []func()
	for i, p := range procs {
		i, p := i, p
		fns = append(fns,
			func() { res[i].st0 = e.Stencil(core.MP, machine.Default(p), o.StencilW) },
			func() { res[i].st2 = e.Stencil(core.SAS, machine.Default(p), o.StencilW) },
			func() { res[i].me = e.MeshModels(machine.Default(p), o.MeshW) },
			func() { res[i].nb = e.NBodyModels(machine.Default(p), o.NBodyW) },
		)
	}
	e.Warm(fns...)
	for i, p := range procs {
		r := res[i]
		t.AddRow(fmt.Sprintf("%d", p),
			core.F(float64(r.st0.Total)/float64(r.st2.Total)),
			core.F(float64(r.me[0].Total)/float64(r.me[2].Total)),
			core.F(float64(r.nb[0].Total)/float64(r.nb[2].Total)))
	}
	return t
}

func buildFig11(e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 11 — CC-SAS page migration ablation (adaptive mesh)",
		Header: []string{"P", "first-touch", "page-migrate", "remote misses FT", "remote misses PM"},
	}
	wMig := o.MeshW
	wMig.SasPageMigrate = true
	var procs []int
	for _, p := range o.Procs {
		if p >= 4 {
			procs = append(procs, p)
		}
	}
	ft := make([]core.Metrics, len(procs))
	pm := make([]core.Metrics, len(procs))
	var fns []func()
	for i, p := range procs {
		i, p := i, p
		fns = append(fns,
			func() { ft[i] = e.Mesh(core.SAS, machine.Default(p), o.MeshW) },
			func() { pm[i] = e.Mesh(core.SAS, machine.Default(p), wMig) },
		)
	}
	e.Warm(fns...)
	for i, p := range procs {
		t.AddRow(fmt.Sprintf("%d", p),
			core.FT(ft[i].Total), core.FT(pm[i].Total),
			fmt.Sprintf("%d", ft[i].Counters.RemoteMisses),
			fmt.Sprintf("%d", pm[i].Counters.RemoteMisses))
	}
	return t
}

// fig12Classes are the machine classes of the conditional-claim sweep.
func fig12Classes(procs int) []struct {
	name string
	cfg  machine.Config
} {
	return []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000 (ccNUMA)", machine.Default(procs)},
		{"t3e (MPP)", machine.T3E(procs)},
		{"ideal SMP", machine.SMP(procs)},
		{"cluster of SMPs", machine.ClusterOfSMPs(procs)},
	}
}

func buildFig12(e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	if procs > 32 {
		procs = 32
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 12 — Machine-class sweep (mesh, P=%d)", procs),
		Header: []string{"machine", "MP", "SHMEM", "CC-SAS", "winner"},
	}
	classes := fig12Classes(procs)
	res := make([][3]core.Metrics, len(classes))
	fns := make([]func(), len(classes))
	for i, cl := range classes {
		i, cl := i, cl
		fns[i] = func() { res[i] = e.MeshModels(cl.cfg, o.MeshW) }
	}
	e.Warm(fns...)
	for i, cl := range classes {
		best := 0
		for j := range res[i] {
			if res[i][j].Total < res[i][best].Total {
				best = j
			}
		}
		t.AddRow(cl.name, core.FT(res[i][0].Total), core.FT(res[i][1].Total), core.FT(res[i][2].Total),
			core.AllModels()[best].String())
	}
	return t
}

func buildFig13(e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 13 — Hybrid MP+SAS extension (mesh, P=%d)", procs),
		Header: []string{"machine", "MP", "MP+SAS hybrid", "CC-SAS", "hybrid/MP"},
	}
	classes := []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000", machine.Default(procs)},
		{"cluster of SMPs", machine.ClusterOfSMPs(procs)},
	}
	type row struct{ pure, sas, hyb core.Metrics }
	res := make([]row, len(classes))
	var fns []func()
	for i, cl := range classes {
		i, cl := i, cl
		fns = append(fns,
			func() { res[i].pure = e.Mesh(core.MP, cl.cfg, o.MeshW) },
			func() { res[i].sas = e.Mesh(core.SAS, cl.cfg, o.MeshW) },
			func() { res[i].hyb = e.MeshHybrid(cl.cfg, o.MeshW) },
		)
	}
	e.Warm(fns...)
	for i, cl := range classes {
		r := res[i]
		t.AddRow(cl.name, core.FT(r.pure.Total), core.FT(r.hyb.Total), core.FT(r.sas.Total),
			core.F(float64(r.hyb.Total)/float64(r.pure.Total)))
	}
	return t
}

func buildFig14(e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 14 — Conjugate gradient: time vs processors, reduction share",
		Header: []string{"P", "MP", "SHMEM", "CC-SAS", "MP sync frac", "CC-SAS sync frac"},
	}
	res := make([][3]core.Metrics, len(o.Procs))
	fns := make([]func(), len(o.Procs))
	for i, p := range o.Procs {
		i, p := i, p
		fns[i] = func() { res[i] = e.CGModels(machine.Default(p), o.CGW) }
	}
	e.Warm(fns...)
	for i, p := range o.Procs {
		met := res[i]
		t.AddRow(fmt.Sprintf("%d", p),
			core.FT(met[0].Total), core.FT(met[1].Total), core.FT(met[2].Total),
			core.F(met[0].PhaseFraction(sim.PhaseSync)),
			core.F(met[2].PhaseFraction(sim.PhaseSync)))
	}
	return t
}

// Deprecated wrappers — the pre-registry API. Each builds its artifact on a
// private engine; callers producing more than one artifact should use
// RunOn/RunAll with a shared engine to get cross-experiment cell reuse.

// Table1 reports the application and workload characteristics.
//
// Deprecated: use Run("workloads", o).
func Table1(o Opts) *core.Table { return buildTable1(runner.New(o.Jobs), o) }

// Fig2 is the adaptive-mesh scaling figure.
//
// Deprecated: use Run("mesh-speedup", o).
func Fig2(o Opts) *core.Table { return buildFig2(runner.New(o.Jobs), o) }

// Fig3 is the N-body scaling figure.
//
// Deprecated: use Run("nbody-speedup", o).
func Fig3(o Opts) *core.Table { return buildFig3(runner.New(o.Jobs), o) }

// Fig4 is the phase-breakdown figure at the largest processor count.
//
// Deprecated: use Run("breakdown", o).
func Fig4(o Opts) *core.Table { return buildFig4(runner.New(o.Jobs), o) }

// Table6 is the memory-footprint table.
//
// Deprecated: use Run("memory", o).
func Table6(o Opts) *core.Table { return buildTable6(runner.New(o.Jobs), o) }

// Fig7 is the remote:local latency sensitivity ablation.
//
// Deprecated: use Run("latency-sweep", o).
func Fig7(o Opts) *core.Table { return buildFig7(runner.New(o.Jobs), o) }

// Fig8 is the load-balancing (PLUM remap on/off) figure.
//
// Deprecated: use Run("loadbalance", o).
func Fig8(o Opts) *core.Table { return buildFig8(runner.New(o.Jobs), o) }

// Table9 is the communication/traffic statistics table.
//
// Deprecated: use Run("traffic", o).
func Table9(o Opts) *core.Table { return buildTable9(runner.New(o.Jobs), o) }

// Fig10 is the regular-workload control figure.
//
// Deprecated: use Run("regular-control", o).
func Fig10(o Opts) *core.Table { return buildFig10(runner.New(o.Jobs), o) }

// Fig11 is the CC-SAS page-migration ablation.
//
// Deprecated: use Run("page-migration", o).
func Fig11(o Opts) *core.Table { return buildFig11(runner.New(o.Jobs), o) }

// Fig12 is the machine-class sweep.
//
// Deprecated: use Run("machine-sweep", o).
func Fig12(o Opts) *core.Table { return buildFig12(runner.New(o.Jobs), o) }

// Fig13 is the hybrid-model extension figure.
//
// Deprecated: use Run("hybrid", o).
func Fig13(o Opts) *core.Table { return buildFig13(runner.New(o.Jobs), o) }

// Fig14 is the conjugate-gradient figure.
//
// Deprecated: use Run("cg", o).
func Fig14(o Opts) *core.Table { return buildFig14(runner.New(o.Jobs), o) }

// All runs every experiment in index order on one shared engine.
//
// Deprecated: use Run("all", o), or RunAll with a caller-owned engine when
// the run report is wanted.
func All(o Opts) []*core.Table { return RunAll(runner.New(o.Jobs), o) }
