// Package experiments regenerates every (reconstructed) table and figure of
// the evaluation — see DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for recorded results. Each function returns a core.Table
// whose rows are the series the corresponding figure plots or the rows the
// corresponding table lists. Both cmd/o2kbench and the root benchmark
// harness drive these.
package experiments

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

// Opts selects the experiment scale.
type Opts struct {
	Procs    []int              // processor counts for the scaling figures
	MeshW    adaptmesh.Workload // adaptive-mesh workload
	NBodyW   barnes.Workload    // N-body workload
	StencilW stencil.Workload   // regular-control workload
	CGW      cg.Workload        // conjugate-gradient workload
}

// DefaultOpts returns the full-scale configuration: the Origin2000 study's
// 1..64 processor range.
func DefaultOpts() Opts {
	return Opts{
		Procs:    []int{1, 2, 4, 8, 16, 32, 64},
		MeshW:    adaptmesh.Default(),
		NBodyW:   barnes.Default(),
		StencilW: stencil.Default(),
		CGW:      cg.Default(),
	}
}

// QuickOpts returns a reduced configuration for tests.
func QuickOpts() Opts {
	return Opts{
		Procs:    []int{1, 4, 16},
		MeshW:    adaptmesh.Small(),
		NBodyW:   barnes.Small(),
		StencilW: stencil.Small(),
		CGW:      cg.Small(),
	}
}

func mach(p int) *machine.Machine { return machine.MustNew(machine.Default(p)) }

// runMesh executes the mesh application for every model at procs, sharing
// one plan set.
func runMesh(w adaptmesh.Workload, procs int) [3]core.Metrics {
	plans := adaptmesh.BuildPlans(w, procs)
	var out [3]core.Metrics
	for i, model := range core.AllModels() {
		out[i] = adaptmesh.RunWithPlans(model, mach(procs), w, plans)
	}
	return out
}

func runNBody(w barnes.Workload, procs int) [3]core.Metrics {
	plans := barnes.BuildPlans(w, procs)
	var out [3]core.Metrics
	for i, model := range core.AllModels() {
		out[i] = barnes.RunWithPlans(model, mach(procs), w, plans)
	}
	return out
}

// Table1 reports the application and workload characteristics (the paper's
// application-description table).
func Table1(o Opts) *core.Table {
	t := &core.Table{
		Title:  "Table 1 — Application and workload characteristics (reconstructed)",
		Header: []string{"application", "elements", "edges/interactions", "adapt cycles/steps", "sweeps per cycle", "max imbalance pre-LB"},
	}
	meshPlans := adaptmesh.BuildPlans(o.MeshW, 1)
	last := meshPlans[len(meshPlans)-1]
	avgT, avgE := 0, 0
	for _, pl := range meshPlans {
		avgT += pl.M.NumTris()
		avgE += pl.M.NumEdges()
	}
	t.AddRow("adaptive mesh",
		fmt.Sprintf("%d tris (final %d)", avgT/len(meshPlans), last.M.NumTris()),
		fmt.Sprintf("%d edges", avgE/len(meshPlans)),
		fmt.Sprintf("%d cycles", o.MeshW.Cycles),
		fmt.Sprintf("%d", o.MeshW.SolveIters),
		core.F(last.Imbalance))
	nbPlans := barnes.BuildPlans(o.NBodyW, 1)
	inter := 0
	cells := 0
	for _, pl := range nbPlans {
		inter += pl.TotalInter
		cells += pl.Tree.NumCells()
	}
	t.AddRow("barnes-hut n-body",
		fmt.Sprintf("%d bodies", o.NBodyW.N),
		fmt.Sprintf("%d interactions/step", inter/len(nbPlans)),
		fmt.Sprintf("%d steps", o.NBodyW.Steps),
		"1",
		fmt.Sprintf("theta=%.2f, %d cells", o.NBodyW.Theta, cells/len(nbPlans)))
	t.AddRow("jacobi stencil (control)",
		fmt.Sprintf("%dx%d grid", o.StencilW.N, o.StencilW.N),
		fmt.Sprintf("%d cells/sweep", o.StencilW.N*o.StencilW.N),
		"static",
		fmt.Sprintf("%d", o.StencilW.Iters),
		"1.000")
	cgPl := cg.BuildPlan(o.CGW, 1)
	t.AddRow("conjugate gradient",
		fmt.Sprintf("%d tris", cgPl.M.NumTris()),
		fmt.Sprintf("%d edges (matrix rows %d)", cgPl.M.NumEdges(), cgPl.M.NumVertsUsed()),
		"static refined",
		fmt.Sprintf("%d CG iters", o.CGW.Iters),
		"2 allreduce/iter")
	return t
}

// Fig2 is the adaptive-mesh scaling figure: execution time and speedup vs
// processor count for each model.
func Fig2(o Opts) *core.Table {
	return scalingTable("Figure 2 — Adaptive mesh: time and speedup vs processors",
		o.Procs, func(p int) [3]core.Metrics { return runMesh(o.MeshW, p) })
}

// Fig3 is the N-body scaling figure.
func Fig3(o Opts) *core.Table {
	return scalingTable("Figure 3 — Barnes-Hut N-body: time and speedup vs processors",
		o.Procs, func(p int) [3]core.Metrics { return runNBody(o.NBodyW, p) })
}

func scalingTable(title string, procs []int, run func(p int) [3]core.Metrics) *core.Table {
	t := &core.Table{
		Title: title,
		Header: []string{"P", "MP time", "SHMEM time", "CC-SAS time",
			"MP spdup", "SHMEM spdup", "CC-SAS spdup"},
	}
	var base [3]core.Metrics
	for i, p := range procs {
		m := run(p)
		if i == 0 {
			base = m
		}
		t.AddRow(fmt.Sprintf("%d", p),
			core.FT(m[0].Total), core.FT(m[1].Total), core.FT(m[2].Total),
			core.F(m[0].Speedup(base[0])), core.F(m[1].Speedup(base[1])), core.F(m[2].Speedup(base[2])))
	}
	return t
}

// Fig4 is the phase-breakdown figure at the largest processor count: the
// per-phase critical-path time of each model on the mesh application.
func Fig4(o Opts) *core.Table {
	p := o.Procs[len(o.Procs)-1]
	m := runMesh(o.MeshW, p)
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 4 — Adaptive mesh phase breakdown at P=%d", p),
		Header: []string{"phase", "MP", "SHMEM", "CC-SAS"},
	}
	for ph := sim.Phase(0); ph < sim.NumPhases; ph++ {
		if m[0].PhaseMax[ph] == 0 && m[1].PhaseMax[ph] == 0 && m[2].PhaseMax[ph] == 0 {
			continue
		}
		t.AddRow(ph.String(),
			core.FT(m[0].PhaseMax[ph]), core.FT(m[1].PhaseMax[ph]), core.FT(m[2].PhaseMax[ph]))
	}
	t.AddRow("TOTAL", core.FT(m[0].Total), core.FT(m[1].Total), core.FT(m[2].Total))
	return t
}

// Table6 is the memory-footprint table: model-visible field memory for both
// applications at the largest processor count.
func Table6(o Opts) *core.Table {
	p := o.Procs[len(o.Procs)-1]
	mm := runMesh(o.MeshW, p)
	nb := runNBody(o.NBodyW, p)
	t := &core.Table{
		Title:  fmt.Sprintf("Table 6 — Model-visible data memory at P=%d (bytes)", p),
		Header: []string{"application", "MP", "SHMEM", "CC-SAS", "MP/CC-SAS ratio"},
	}
	t.AddRow("adaptive mesh",
		fmt.Sprintf("%d", mm[0].DataBytes), fmt.Sprintf("%d", mm[1].DataBytes),
		fmt.Sprintf("%d", mm[2].DataBytes),
		core.F(float64(mm[0].DataBytes)/float64(mm[2].DataBytes)))
	t.AddRow("barnes-hut n-body",
		fmt.Sprintf("%d", nb[0].DataBytes), fmt.Sprintf("%d", nb[1].DataBytes),
		fmt.Sprintf("%d", nb[2].DataBytes),
		core.F(float64(nb[0].DataBytes)/float64(nb[2].DataBytes)))
	return t
}

// Fig7 is the sensitivity ablation: total mesh-application time as the
// remote:local memory latency ratio sweeps from 1x to 8x, at a fixed
// processor count. CC-SAS depends on hardware shared memory, so it is the
// model most exposed to NUMA-ness.
func Fig7(o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	if procs > 32 {
		procs = 32
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 7 — Sensitivity to remote:local latency ratio (mesh, P=%d)", procs),
		Header: []string{"ratio", "MP", "SHMEM", "CC-SAS", "CC-SAS/MP"},
	}
	plans := adaptmesh.BuildPlans(o.MeshW, procs)
	for _, ratio := range []float64{1, 2, 4, 8} {
		cfg := machine.Default(procs)
		cfg.RemoteMissNS = sim.Time(float64(cfg.LocalMissNS) * ratio)
		cfg.RemoteHopNS = sim.Time(float64(cfg.RemoteHopNS) * ratio / 1.5)
		m := machine.MustNew(cfg)
		var tot [3]sim.Time
		for i, model := range core.AllModels() {
			tot[i] = adaptmesh.RunWithPlans(model, m, o.MeshW, plans).Total
		}
		t.AddRow(fmt.Sprintf("%.1fx", ratio),
			core.FT(tot[0]), core.FT(tot[1]), core.FT(tot[2]),
			core.F(float64(tot[2])/float64(tot[0])))
	}
	return t
}

// Fig8 is the load-balancing figure: the mesh application with and without
// PLUM-style remapping, per model.
func Fig8(o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 8 — PLUM remapping on vs off (mesh, P=%d)", procs),
		Header: []string{"model", "remap on", "remap off", "moved weight on", "moved weight off"},
	}
	wOff := o.MeshW
	wOff.NoRemap = true
	on := runMesh(o.MeshW, procs)
	off := runMesh(wOff, procs)
	for i, model := range core.AllModels() {
		t.AddRow(model.String(),
			core.FT(on[i].Total), core.FT(off[i].Total),
			core.F(on[i].Extra["moved_weight"]), core.F(off[i].Extra["moved_weight"]))
	}
	return t
}

// Table9 is the communication/traffic statistics table at two scales.
func Table9(o Opts) *core.Table {
	t := &core.Table{
		Title:  "Table 9 — Traffic statistics (mesh application)",
		Header: []string{"P", "model", "msgs", "bytes", "remote misses", "coh evictions", "lock ops"},
	}
	for _, p := range []int{o.Procs[len(o.Procs)/2], o.Procs[len(o.Procs)-1]} {
		m := runMesh(o.MeshW, p)
		for i, model := range core.AllModels() {
			c := m[i].Counters
			t.AddRow(fmt.Sprintf("%d", p), model.String(),
				fmt.Sprintf("%d", c.MsgsSent), fmt.Sprintf("%d", c.BytesSent),
				fmt.Sprintf("%d", c.RemoteMisses), fmt.Sprintf("%d", c.CohMisses),
				fmt.Sprintf("%d", c.LockOps))
		}
	}
	return t
}

// Fig10 is the regular-workload control: the MP:CC-SAS total-time ratio on
// the static Jacobi stencil vs the two adaptive applications, per processor
// count. The adaptive ratios should be well above the stencil's ≈1 line —
// direct evidence that the paradigm gap is caused by adaptivity.
func Fig10(o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 10 — MP:CC-SAS time ratio, regular vs adaptive workloads",
		Header: []string{"P", "stencil (regular)", "adaptive mesh", "n-body"},
	}
	for _, p := range o.Procs {
		if p < 4 {
			continue // ratios at tiny P are all ~1 and waste a row
		}
		m := mach(p)
		st0 := stencil.Run(core.MP, m, o.StencilW).Total
		st2 := stencil.Run(core.SAS, m, o.StencilW).Total
		me := runMesh(o.MeshW, p)
		nb := runNBody(o.NBodyW, p)
		t.AddRow(fmt.Sprintf("%d", p),
			core.F(float64(st0)/float64(st2)),
			core.F(float64(me[0].Total)/float64(me[2].Total)),
			core.F(float64(nb[0].Total)/float64(nb[2].Total)))
	}
	return t
}

// Fig11 is the page-migration ablation: CC-SAS on the adaptive mesh with
// IRIX-style static first-touch placement vs OS page migration after each
// repartition. Migration buys locality back in the solve loop at a per-page
// cost — the trade-off shifts with scale.
func Fig11(o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 11 — CC-SAS page migration ablation (adaptive mesh)",
		Header: []string{"P", "first-touch", "page-migrate", "remote misses FT", "remote misses PM"},
	}
	wMig := o.MeshW
	wMig.SasPageMigrate = true
	for _, p := range o.Procs {
		if p < 4 {
			continue
		}
		plans := adaptmesh.BuildPlans(o.MeshW, p)
		ft := adaptmesh.RunWithPlans(core.SAS, mach(p), o.MeshW, plans)
		pm := adaptmesh.RunWithPlans(core.SAS, mach(p), wMig, plans)
		t.AddRow(fmt.Sprintf("%d", p),
			core.FT(ft.Total), core.FT(pm.Total),
			fmt.Sprintf("%d", ft.Counters.RemoteMisses),
			fmt.Sprintf("%d", pm.Counters.RemoteMisses))
	}
	return t
}

// Fig12 re-runs the mesh comparison on four machine classes: the baseline
// Origin2000, a T3E-like message-optimized MPP, an ideal (bus) SMP, and a
// cluster of SMPs. The study's claim is conditional on the machine class —
// this figure makes the condition explicit: the CC-SAS win belongs to
// tightly coupled ccNUMA (and SMP); on a T3E, SHMEM leads; on a cluster,
// software shared memory collapses.
func Fig12(o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	if procs > 32 {
		procs = 32
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 12 — Machine-class sweep (mesh, P=%d)", procs),
		Header: []string{"machine", "MP", "SHMEM", "CC-SAS", "winner"},
	}
	plans := adaptmesh.BuildPlans(o.MeshW, procs)
	classes := []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000 (ccNUMA)", machine.Default(procs)},
		{"t3e (MPP)", machine.T3E(procs)},
		{"ideal SMP", machine.SMP(procs)},
		{"cluster of SMPs", machine.ClusterOfSMPs(procs)},
	}
	for _, cl := range classes {
		m := machine.MustNew(cl.cfg)
		var tot [3]sim.Time
		best := 0
		for i, model := range core.AllModels() {
			tot[i] = adaptmesh.RunWithPlans(model, m, o.MeshW, plans).Total
			if tot[i] < tot[best] {
				best = i
			}
		}
		t.AddRow(cl.name, core.FT(tot[0]), core.FT(tot[1]), core.FT(tot[2]),
			core.AllModels()[best].String())
	}
	return t
}

// Fig13 is the hybrid-model extension: MP+SAS (message passing between
// nodes, shared memory within) against the pure models, on the baseline
// Origin2000 and on a cluster of 4-way SMPs. The follow-up-paper result:
// the hybrid is only marginally different from pure MP on tightly coupled
// hardware, but wins where inter-node messaging is expensive.
func Fig13(o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 13 — Hybrid MP+SAS extension (mesh, P=%d)", procs),
		Header: []string{"machine", "MP", "MP+SAS hybrid", "CC-SAS", "hybrid/MP"},
	}
	for _, cl := range []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000", machine.Default(procs)},
		{"cluster of SMPs", machine.ClusterOfSMPs(procs)},
	} {
		m := machine.MustNew(cl.cfg)
		pure := adaptmesh.RunWithPlans(core.MP, m, o.MeshW, adaptmesh.BuildPlans(o.MeshW, procs)).Total
		sasT := adaptmesh.RunWithPlans(core.SAS, m, o.MeshW, adaptmesh.BuildPlans(o.MeshW, procs)).Total
		hyb := adaptmesh.RunHybridWithPlans(m, o.MeshW, adaptmesh.BuildPlans(o.MeshW, m.Nodes())).Total
		t.AddRow(cl.name, core.FT(pure), core.FT(hyb), core.FT(sasT),
			core.F(float64(hyb)/float64(pure)))
	}
	return t
}

// Fig14 is the conjugate-gradient figure: time per model vs P, plus the
// share of MP's time spent in the two per-iteration global reductions —
// CG's latency-bound signature. The reductions cannot shrink with P, so
// their share grows and the hardware-assisted CC-SAS tree pulls ahead.
func Fig14(o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 14 — Conjugate gradient: time vs processors, reduction share",
		Header: []string{"P", "MP", "SHMEM", "CC-SAS", "MP sync frac", "CC-SAS sync frac"},
	}
	for _, p := range o.Procs {
		pl := cg.BuildPlan(o.CGW, p)
		m := mach(p)
		var met [3]core.Metrics
		for i, model := range core.AllModels() {
			met[i] = cg.RunWithPlan(model, m, o.CGW, pl)
		}
		t.AddRow(fmt.Sprintf("%d", p),
			core.FT(met[0].Total), core.FT(met[1].Total), core.FT(met[2].Total),
			core.F(met[0].PhaseFraction(sim.PhaseSync)),
			core.F(met[2].PhaseFraction(sim.PhaseSync)))
	}
	return t
}

// All runs every experiment in index order.
func All(o Opts) []*core.Table {
	return []*core.Table{
		Table1(o), Fig2(o), Fig3(o), Fig4(o), Table5(), Table6(o), Fig7(o), Fig8(o), Table9(o),
		Fig10(o), Fig11(o), Fig12(o), Fig13(o), Fig14(o),
	}
}
