// Package experiments regenerates every (reconstructed) table and figure of
// the evaluation — see DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Experiments are declared as registry Specs (Register/List/Lookup) and
// assembled from memoized simulation cells on a runner.Engine, so one
// invocation that produces many artifacts — `o2kbench -exp all`, the
// verdict checker — simulates each unique (application, model, machine,
// workload, P) cell exactly once, in parallel on a bounded worker pool.
// Register/Run/RunOn/List are the only entry points; the pre-registry
// per-artifact wrappers (Fig2, Table6, …) are gone.
//
// Cells carry errors (DESIGN.md §5.3): a cell that panicked, timed out, or
// was cancelled renders as a FAILED(<reason>) table entry via the fmt*
// helpers below, and the rest of the table — and the rest of the run — is
// unaffected. Because failed cells only ever replace their own entries, the
// bytes of all non-failed entries are identical to a fully healthy run.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/runner"
	"o2k/internal/sim"
)

// Opts selects the experiment scale.
type Opts struct {
	Procs    []int              // processor counts for the scaling figures
	MeshW    adaptmesh.Workload // adaptive-mesh workload
	NBodyW   barnes.Workload    // N-body workload
	StencilW stencil.Workload   // regular-control workload
	CGW      cg.Workload        // conjugate-gradient workload
	Jobs     int                // worker-pool size for Run; <= 0 means GOMAXPROCS
}

// DefaultOpts returns the full-scale configuration: the Origin2000 study's
// 1..64 processor range.
func DefaultOpts() Opts {
	return Opts{
		Procs:    []int{1, 2, 4, 8, 16, 32, 64},
		MeshW:    adaptmesh.Default(),
		NBodyW:   barnes.Default(),
		StencilW: stencil.Default(),
		CGW:      cg.Default(),
	}
}

// QuickOpts returns a reduced configuration for tests.
func QuickOpts() Opts {
	return Opts{
		Procs:    []int{1, 4, 16},
		MeshW:    adaptmesh.Small(),
		NBodyW:   barnes.Small(),
		StencilW: stencil.Small(),
		CGW:      cg.Small(),
	}
}

// Failure-aware cell renderers. Every table entry derived from a metrics
// cell goes through one of these: a failed cell yields its deterministic
// FAILED(<reason>) annotation, a healthy cell yields exactly the bytes the
// pre-failure-semantics code produced.

// fmtT renders a cell's total simulated time.
func fmtT(r runner.Res) string {
	if r.Err != nil {
		return runner.FailLabel(r.Err)
	}
	return core.FT(r.M.Total)
}

// fmtRatio renders num.Total/den.Total; either side's failure wins.
func fmtRatio(num, den runner.Res) string {
	if num.Err != nil {
		return runner.FailLabel(num.Err)
	}
	if den.Err != nil {
		return runner.FailLabel(den.Err)
	}
	return core.F(float64(num.M.Total) / float64(den.M.Total))
}

// fmtSpeedup renders base.Total/r.Total, the scaling figure-of-merit.
func fmtSpeedup(r, base runner.Res) string {
	if r.Err != nil {
		return runner.FailLabel(r.Err)
	}
	if base.Err != nil {
		return runner.FailLabel(base.Err)
	}
	return core.F(r.M.Speedup(base.M))
}

// fmtF renders f(metrics) as a 3-decimal float.
func fmtF(r runner.Res, f func(core.Metrics) float64) string {
	if r.Err != nil {
		return runner.FailLabel(r.Err)
	}
	return core.F(f(r.M))
}

// fmtU renders f(metrics) as an unsigned count (traffic counters).
func fmtU(r runner.Res, f func(core.Metrics) uint64) string {
	if r.Err != nil {
		return runner.FailLabel(r.Err)
	}
	return fmt.Sprintf("%d", f(r.M))
}

// The experiment index, in paper order. Registered here in one place (not
// per-file init functions) so the registry order is explicit.
func init() {
	Register(Spec{Name: "workloads", Aliases: []string{"table1"},
		Title: "Table 1 — application and workload characteristics", Build: buildTable1})
	Register(Spec{Name: "mesh-speedup", Aliases: []string{"fig2"},
		Title: "Figure 2 — adaptive mesh: time and speedup vs processors", Build: buildFig2})
	Register(Spec{Name: "nbody-speedup", Aliases: []string{"fig3"},
		Title: "Figure 3 — Barnes-Hut N-body: time and speedup vs processors", Build: buildFig3})
	Register(Spec{Name: "breakdown", Aliases: []string{"fig4"},
		Title: "Figure 4 — mesh phase breakdown at the largest P", Build: buildFig4})
	Register(Spec{Name: "loc", Aliases: []string{"table5"},
		Title: "Table 5 — programming effort (lines of code per model)", Build: buildTable5})
	Register(Spec{Name: "memory", Aliases: []string{"table6"},
		Title: "Table 6 — model-visible data memory at the largest P", Build: buildTable6})
	Register(Spec{Name: "latency-sweep", Aliases: []string{"fig7"},
		Title: "Figure 7 — sensitivity to the remote:local latency ratio", Build: buildFig7})
	Register(Spec{Name: "loadbalance", Aliases: []string{"fig8"},
		Title: "Figure 8 — PLUM remapping on vs off", Build: buildFig8})
	Register(Spec{Name: "traffic", Aliases: []string{"table9"},
		Title: "Table 9 — communication/traffic statistics", Build: buildTable9})
	Register(Spec{Name: "regular-control", Aliases: []string{"fig10"},
		Title: "Figure 10 — MP:CC-SAS ratio, regular vs adaptive workloads", Build: buildFig10})
	Register(Spec{Name: "page-migration", Aliases: []string{"fig11"},
		Title: "Figure 11 — CC-SAS page-migration ablation", Build: buildFig11})
	Register(Spec{Name: "machine-sweep", Aliases: []string{"fig12"},
		Title: "Figure 12 — machine-class sweep (Origin/T3E/SMP/cluster)", Build: buildFig12})
	Register(Spec{Name: "hybrid", Aliases: []string{"fig13"},
		Title: "Figure 13 — hybrid MP+SAS extension", Build: buildFig13})
	Register(Spec{Name: "cg", Aliases: []string{"fig14"},
		Title: "Figure 14 — conjugate gradient scaling and reduction share", Build: buildFig14})
	Register(Spec{Name: "verdicts",
		Title: "the study's falsifiable predictions, checked", Build: buildVerdicts,
		Standalone: true})
}

func buildTable1(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Table 1 — Application and workload characteristics (reconstructed)",
		Header: []string{"application", "elements", "edges/interactions", "adapt cycles/steps", "sweeps per cycle", "max imbalance pre-LB"},
	}
	var meshPlans []*adaptmesh.CyclePlan
	var nbPlans []*barnes.StepPlan
	var cgPl *cg.Plan
	var meshErr, nbErr, cgErr error
	e.Warm(
		func() { meshPlans, meshErr = e.MeshPlans(ctx, o.MeshW, 1) },
		func() { nbPlans, nbErr = e.NBodyPlans(ctx, o.NBodyW, 1) },
		func() { cgPl, cgErr = e.CGPlan(ctx, o.CGW, 1) },
	)
	// A zero-cycle/zero-step workload yields an empty plan sequence; render
	// it as a failure row instead of dividing by len() == 0 below.
	if meshErr == nil && len(meshPlans) == 0 {
		meshErr = fmt.Errorf("empty plan sequence (Cycles=%d)", o.MeshW.Cycles)
	}
	if nbErr == nil && len(nbPlans) == 0 {
		nbErr = fmt.Errorf("empty plan sequence (Steps=%d)", o.NBodyW.Steps)
	}
	if meshErr != nil {
		t.AddRow("adaptive mesh", runner.FailLabel(meshErr), "", "", "", "")
	} else {
		last := meshPlans[len(meshPlans)-1]
		avgT, avgE := 0, 0
		for _, pl := range meshPlans {
			avgT += pl.M.NumTris()
			avgE += pl.M.NumEdges()
		}
		t.AddRow("adaptive mesh",
			fmt.Sprintf("%d tris (final %d)", avgT/len(meshPlans), last.M.NumTris()),
			fmt.Sprintf("%d edges", avgE/len(meshPlans)),
			fmt.Sprintf("%d cycles", o.MeshW.Cycles),
			fmt.Sprintf("%d", o.MeshW.SolveIters),
			core.F(last.Imbalance))
	}
	if nbErr != nil {
		t.AddRow("barnes-hut n-body", runner.FailLabel(nbErr), "", "", "", "")
	} else {
		inter := 0
		cells := 0
		for _, pl := range nbPlans {
			inter += pl.TotalInter
			cells += pl.Tree.NumCells()
		}
		t.AddRow("barnes-hut n-body",
			fmt.Sprintf("%d bodies", o.NBodyW.N),
			fmt.Sprintf("%d interactions/step", inter/len(nbPlans)),
			fmt.Sprintf("%d steps", o.NBodyW.Steps),
			"1",
			fmt.Sprintf("theta=%.2f, %d cells", o.NBodyW.Theta, cells/len(nbPlans)))
	}
	t.AddRow("jacobi stencil (control)",
		fmt.Sprintf("%dx%d grid", o.StencilW.N, o.StencilW.N),
		fmt.Sprintf("%d cells/sweep", o.StencilW.N*o.StencilW.N),
		"static",
		fmt.Sprintf("%d", o.StencilW.Iters),
		"1.000")
	if cgErr != nil {
		t.AddRow("conjugate gradient", runner.FailLabel(cgErr), "", "", "", "")
	} else {
		t.AddRow("conjugate gradient",
			fmt.Sprintf("%d tris", cgPl.M.NumTris()),
			fmt.Sprintf("%d edges (matrix rows %d)", cgPl.M.NumEdges(), cgPl.M.NumVertsUsed()),
			"static refined",
			fmt.Sprintf("%d CG iters", o.CGW.Iters),
			"2 allreduce/iter")
	}
	return t
}

func buildFig2(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	return scalingTable(ctx, e, "Figure 2 — Adaptive mesh: time and speedup vs processors",
		o.Procs, func(p int) [3]runner.Res { return e.MeshModels(ctx, machine.Default(p), o.MeshW) })
}

func buildFig3(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	return scalingTable(ctx, e, "Figure 3 — Barnes-Hut N-body: time and speedup vs processors",
		o.Procs, func(p int) [3]runner.Res { return e.NBodyModels(ctx, machine.Default(p), o.NBodyW) })
}

// scalingTable warms every processor count's cells in parallel, then
// assembles the rows serially from the (now cached) results, so row order
// never depends on execution order.
func scalingTable(ctx context.Context, e *runner.Engine, title string, procs []int, run func(p int) [3]runner.Res) *core.Table {
	t := &core.Table{
		Title: title,
		Header: []string{"P", "MP time", "SHMEM time", "CC-SAS time",
			"MP spdup", "SHMEM spdup", "CC-SAS spdup"},
	}
	fns := make([]func(), len(procs))
	for i, p := range procs {
		p := p
		fns[i] = func() { run(p) }
	}
	e.Warm(fns...)
	var base [3]runner.Res
	for i, p := range procs {
		m := run(p)
		if i == 0 {
			base = m
		}
		t.AddRow(fmt.Sprintf("%d", p),
			fmtT(m[0]), fmtT(m[1]), fmtT(m[2]),
			fmtSpeedup(m[0], base[0]), fmtSpeedup(m[1], base[1]), fmtSpeedup(m[2], base[2]))
	}
	return t
}

func buildFig4(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	p := o.Procs[len(o.Procs)-1]
	m := e.MeshModels(ctx, machine.Default(p), o.MeshW)
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 4 — Adaptive mesh phase breakdown at P=%d", p),
		Header: []string{"phase", "MP", "SHMEM", "CC-SAS"},
	}
	phase := func(r runner.Res, ph sim.Phase) string {
		if r.Err != nil {
			return runner.FailLabel(r.Err)
		}
		return core.FT(r.M.PhaseMax[ph])
	}
	for ph := sim.Phase(0); ph < sim.NumPhases; ph++ {
		// Failed models contribute zero here, so an all-models failure
		// collapses the breakdown to the TOTAL row — which carries the
		// FAILED annotations.
		if m[0].M.PhaseMax[ph] == 0 && m[1].M.PhaseMax[ph] == 0 && m[2].M.PhaseMax[ph] == 0 {
			continue
		}
		t.AddRow(ph.String(), phase(m[0], ph), phase(m[1], ph), phase(m[2], ph))
	}
	t.AddRow("TOTAL", fmtT(m[0]), fmtT(m[1]), fmtT(m[2]))
	return t
}

func buildTable6(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	p := o.Procs[len(o.Procs)-1]
	var mm, nb [3]runner.Res
	e.Warm(
		func() { mm = e.MeshModels(ctx, machine.Default(p), o.MeshW) },
		func() { nb = e.NBodyModels(ctx, machine.Default(p), o.NBodyW) },
	)
	t := &core.Table{
		Title:  fmt.Sprintf("Table 6 — Model-visible data memory at P=%d (bytes)", p),
		Header: []string{"application", "MP", "SHMEM", "CC-SAS", "MP/CC-SAS ratio"},
	}
	bytes := func(r runner.Res) string {
		if r.Err != nil {
			return runner.FailLabel(r.Err)
		}
		return fmt.Sprintf("%d", r.M.DataBytes)
	}
	byteRatio := func(a, b runner.Res) string {
		if a.Err != nil {
			return runner.FailLabel(a.Err)
		}
		if b.Err != nil {
			return runner.FailLabel(b.Err)
		}
		return core.F(float64(a.M.DataBytes) / float64(b.M.DataBytes))
	}
	t.AddRow("adaptive mesh", bytes(mm[0]), bytes(mm[1]), bytes(mm[2]), byteRatio(mm[0], mm[2]))
	t.AddRow("barnes-hut n-body", bytes(nb[0]), bytes(nb[1]), bytes(nb[2]), byteRatio(nb[0], nb[2]))
	return t
}

// fig7Ratios is the remote:local latency sweep of the sensitivity ablation.
var fig7Ratios = []float64{1, 2, 4, 8}

// fig7Config scales the baseline NUMA latencies by the given ratio.
func fig7Config(procs int, ratio float64) machine.Config {
	cfg := machine.Default(procs)
	cfg.RemoteMissNS = sim.Time(float64(cfg.LocalMissNS) * ratio)
	cfg.RemoteHopNS = sim.Time(float64(cfg.RemoteHopNS) * ratio / 1.5)
	return cfg
}

func buildFig7(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	if procs > 32 {
		procs = 32
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 7 — Sensitivity to remote:local latency ratio (mesh, P=%d)", procs),
		Header: []string{"ratio", "MP", "SHMEM", "CC-SAS", "CC-SAS/MP"},
	}
	res := make([][3]runner.Res, len(fig7Ratios))
	fns := make([]func(), len(fig7Ratios))
	for i, ratio := range fig7Ratios {
		i, ratio := i, ratio
		fns[i] = func() { res[i] = e.MeshModels(ctx, fig7Config(procs, ratio), o.MeshW) }
	}
	e.Warm(fns...)
	for i, ratio := range fig7Ratios {
		m := res[i]
		t.AddRow(fmt.Sprintf("%.1fx", ratio),
			fmtT(m[0]), fmtT(m[1]), fmtT(m[2]), fmtRatio(m[2], m[0]))
	}
	return t
}

func buildFig8(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 8 — PLUM remapping on vs off (mesh, P=%d)", procs),
		Header: []string{"model", "remap on", "remap off", "moved weight on", "moved weight off"},
	}
	wOff := o.MeshW
	wOff.NoRemap = true
	var on, off [3]runner.Res
	e.Warm(
		func() { on = e.MeshModels(ctx, machine.Default(procs), o.MeshW) },
		func() { off = e.MeshModels(ctx, machine.Default(procs), wOff) },
	)
	moved := func(r runner.Res) string {
		if r.Err != nil {
			return runner.FailLabel(r.Err)
		}
		return core.F(r.M.Extra["moved_weight"])
	}
	for i, model := range core.AllModels() {
		t.AddRow(model.String(),
			fmtT(on[i]), fmtT(off[i]), moved(on[i]), moved(off[i]))
	}
	return t
}

func buildTable9(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Table 9 — Traffic statistics (mesh application)",
		Header: []string{"P", "model", "msgs", "bytes", "remote misses", "coh evictions", "lock ops"},
	}
	procs := []int{o.Procs[len(o.Procs)/2], o.Procs[len(o.Procs)-1]}
	res := make([][3]runner.Res, len(procs))
	var wg sync.WaitGroup
	for i, p := range procs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i] = e.MeshModels(ctx, machine.Default(p), o.MeshW)
		}()
	}
	wg.Wait()
	for i, p := range procs {
		for j, model := range core.AllModels() {
			r := res[i][j]
			t.AddRow(fmt.Sprintf("%d", p), model.String(),
				fmtU(r, func(m core.Metrics) uint64 { return m.Counters.MsgsSent }),
				fmtU(r, func(m core.Metrics) uint64 { return m.Counters.BytesSent }),
				fmtU(r, func(m core.Metrics) uint64 { return m.Counters.RemoteMisses }),
				fmtU(r, func(m core.Metrics) uint64 { return m.Counters.CohMisses }),
				fmtU(r, func(m core.Metrics) uint64 { return m.Counters.LockOps }))
		}
	}
	return t
}

func buildFig10(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 10 — MP:CC-SAS time ratio, regular vs adaptive workloads",
		Header: []string{"P", "stencil (regular)", "adaptive mesh", "n-body"},
	}
	var procs []int
	for _, p := range o.Procs {
		if p >= 4 { // ratios at tiny P are all ~1 and waste a row
			procs = append(procs, p)
		}
	}
	type row struct {
		st0, st2 runner.Res
		me, nb   [3]runner.Res
	}
	res := make([]row, len(procs))
	var fns []func()
	for i, p := range procs {
		i, p := i, p
		fns = append(fns,
			func() { res[i].st0 = e.Stencil(ctx, core.MP, machine.Default(p), o.StencilW) },
			func() { res[i].st2 = e.Stencil(ctx, core.SAS, machine.Default(p), o.StencilW) },
			func() { res[i].me = e.MeshModels(ctx, machine.Default(p), o.MeshW) },
			func() { res[i].nb = e.NBodyModels(ctx, machine.Default(p), o.NBodyW) },
		)
	}
	e.Warm(fns...)
	for i, p := range procs {
		r := res[i]
		t.AddRow(fmt.Sprintf("%d", p),
			fmtRatio(r.st0, r.st2), fmtRatio(r.me[0], r.me[2]), fmtRatio(r.nb[0], r.nb[2]))
	}
	return t
}

func buildFig11(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 11 — CC-SAS page migration ablation (adaptive mesh)",
		Header: []string{"P", "first-touch", "page-migrate", "remote misses FT", "remote misses PM"},
	}
	wMig := o.MeshW
	wMig.SasPageMigrate = true
	var procs []int
	for _, p := range o.Procs {
		if p >= 4 {
			procs = append(procs, p)
		}
	}
	ft := make([]runner.Res, len(procs))
	pm := make([]runner.Res, len(procs))
	var fns []func()
	for i, p := range procs {
		i, p := i, p
		fns = append(fns,
			func() { ft[i] = e.Mesh(ctx, core.SAS, machine.Default(p), o.MeshW) },
			func() { pm[i] = e.Mesh(ctx, core.SAS, machine.Default(p), wMig) },
		)
	}
	e.Warm(fns...)
	for i, p := range procs {
		t.AddRow(fmt.Sprintf("%d", p),
			fmtT(ft[i]), fmtT(pm[i]),
			fmtU(ft[i], func(m core.Metrics) uint64 { return m.Counters.RemoteMisses }),
			fmtU(pm[i], func(m core.Metrics) uint64 { return m.Counters.RemoteMisses }))
	}
	return t
}

// fig12Classes are the machine classes of the conditional-claim sweep.
func fig12Classes(procs int) []struct {
	name string
	cfg  machine.Config
} {
	return []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000 (ccNUMA)", machine.Default(procs)},
		{"t3e (MPP)", machine.T3E(procs)},
		{"ideal SMP", machine.SMP(procs)},
		{"cluster of SMPs", machine.ClusterOfSMPs(procs)},
	}
}

func buildFig12(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	if procs > 32 {
		procs = 32
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 12 — Machine-class sweep (mesh, P=%d)", procs),
		Header: []string{"machine", "MP", "SHMEM", "CC-SAS", "winner"},
	}
	classes := fig12Classes(procs)
	res := make([][3]runner.Res, len(classes))
	fns := make([]func(), len(classes))
	for i, cl := range classes {
		i, cl := i, cl
		fns[i] = func() { res[i] = e.MeshModels(ctx, cl.cfg, o.MeshW) }
	}
	e.Warm(fns...)
	for i, cl := range classes {
		winner := "n/a" // undecidable when any model's cell failed
		if !res[i][0].Failed() && !res[i][1].Failed() && !res[i][2].Failed() {
			best := 0
			for j := range res[i] {
				if res[i][j].M.Total < res[i][best].M.Total {
					best = j
				}
			}
			winner = core.AllModels()[best].String()
		}
		t.AddRow(cl.name, fmtT(res[i][0]), fmtT(res[i][1]), fmtT(res[i][2]), winner)
	}
	return t
}

func buildFig13(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	procs := o.Procs[len(o.Procs)-1]
	t := &core.Table{
		Title:  fmt.Sprintf("Figure 13 — Hybrid MP+SAS extension (mesh, P=%d)", procs),
		Header: []string{"machine", "MP", "MP+SAS hybrid", "CC-SAS", "hybrid/MP"},
	}
	classes := []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000", machine.Default(procs)},
		{"cluster of SMPs", machine.ClusterOfSMPs(procs)},
	}
	type row struct{ pure, sas, hyb runner.Res }
	res := make([]row, len(classes))
	var fns []func()
	for i, cl := range classes {
		i, cl := i, cl
		fns = append(fns,
			func() { res[i].pure = e.Mesh(ctx, core.MP, cl.cfg, o.MeshW) },
			func() { res[i].sas = e.Mesh(ctx, core.SAS, cl.cfg, o.MeshW) },
			func() { res[i].hyb = e.MeshHybrid(ctx, cl.cfg, o.MeshW) },
		)
	}
	e.Warm(fns...)
	for i, cl := range classes {
		r := res[i]
		t.AddRow(cl.name, fmtT(r.pure), fmtT(r.hyb), fmtT(r.sas), fmtRatio(r.hyb, r.pure))
	}
	return t
}

func buildFig14(ctx context.Context, e *runner.Engine, o Opts) *core.Table {
	t := &core.Table{
		Title:  "Figure 14 — Conjugate gradient: time vs processors, reduction share",
		Header: []string{"P", "MP", "SHMEM", "CC-SAS", "MP sync frac", "CC-SAS sync frac"},
	}
	res := make([][3]runner.Res, len(o.Procs))
	fns := make([]func(), len(o.Procs))
	for i, p := range o.Procs {
		i, p := i, p
		fns[i] = func() { res[i] = e.CGModels(ctx, machine.Default(p), o.CGW) }
	}
	e.Warm(fns...)
	syncFrac := func(m core.Metrics) float64 { return m.PhaseFraction(sim.PhaseSync) }
	for i, p := range o.Procs {
		met := res[i]
		t.AddRow(fmt.Sprintf("%d", p),
			fmtT(met[0]), fmtT(met[1]), fmtT(met[2]),
			fmtF(met[0], syncFrac), fmtF(met[2], syncFrac))
	}
	return t
}
