package experiments

import (
	"fmt"
	"testing"
)

// TestTable5Frozen pins Table 5's LoC counts. The table is computed from the
// working tree at runtime, which makes it the one part of the experiment
// output that can drift silently with unrelated source edits — and with it
// the golden quick-suite SHA (golden_test.go). Freezing the rows here turns
// any change to a counted file into an explicit two-line diff: this table
// and the golden hash, updated together, exactly once per PR that touches a
// model implementation.
//
// The frozen values also carry the paper's Table 5 point: the programming
// effort ordering (CC-SAS ≤ SHMEM ≤ MP for the apps; the MP runtime's
// explicit message machinery vs. CC-SAS's thin load/store veneer).
func TestTable5Frozen(t *testing.T) {
	want := [][4]string{
		{"adaptive mesh app", "219", "254", "204"},
		{"n-body app", "139", "124", "121"},
		{"stencil app (control)", "72", "62", "55"},
		{"conjugate gradient app", "134", "134", "132"},
		{"model runtime", "289", "352", "128"},
	}
	tab := Table5()
	if len(tab.Rows) != len(want) {
		t.Fatalf("Table 5 has %d rows, want %d", len(tab.Rows), len(want))
	}
	var diffs []string
	for i, w := range want {
		got := tab.Rows[i]
		if len(got) != 4 || got[0] != w[0] || got[1] != w[1] || got[2] != w[2] || got[3] != w[3] {
			diffs = append(diffs, fmt.Sprintf("row %d: got %v, want %v", i, got, w[:]))
		}
	}
	if diffs != nil {
		t.Errorf("Table 5 LoC drifted from the frozen values:\n%s\n"+
			"If the source change is intentional, update this table AND "+
			"goldenQuickSHA256 in golden_test.go in the same commit.",
			joinLines(diffs))
	}
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n"
		}
		out += s
	}
	return out
}
