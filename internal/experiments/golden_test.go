package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"o2k/internal/runner"
)

// goldenQuickSHA256 pins the exact bytes of the full quick-scale experiment
// suite, rendered the way `o2kbench -quick -exp all` prints it. It is the
// regression net under the hot-path optimization work (DESIGN.md §5.4): any
// change to the simulator that alters a single character of any table —
// virtual times, counters, speedups, verdicts — fails this test.
//
// If the test fails after an INTENTIONAL model or output change, update the
// constant to the hash printed in the failure message. Note that Table 5
// measures this repository's own model-runtime sources (internal/mp, shm,
// sas), so edits to those files legitimately change the bytes too.
const goldenQuickSHA256 = "d90370fb8d7d18670f398affe2693bd24f19d685935217955570a14526cf27e8"

func TestGoldenQuickOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite; skipped with -short")
	}
	out := renderAll(RunAll(runner.New(0), QuickOpts()))
	sum := sha256.Sum256([]byte(out))
	got := hex.EncodeToString(sum[:])
	if got != goldenQuickSHA256 {
		if dir := os.Getenv("O2K_GOLDEN_DUMP"); dir != "" {
			_ = os.WriteFile(dir, []byte(out), 0o644)
		}
		t.Fatalf("quick-suite output hash changed:\n got %s\nwant %s\n"+
			"If the change is intentional, update goldenQuickSHA256 "+
			"(set O2K_GOLDEN_DUMP=<file> to dump the rendered bytes).", got, goldenQuickSHA256)
	}
}
