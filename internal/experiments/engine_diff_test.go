package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/runner"
	"o2k/internal/sim"
)

// Differential engine suite at the application and suite level: every
// registered application under every programming model must produce the
// same Metrics — totals, per-phase critical paths and averages, counters,
// data sizes, checksums — under the event scheduler and the goroutine
// reference gang, and the whole quick suite must render the same bytes.

// underEngine runs f with the named engine installed as the default,
// restoring the previous default afterwards.
func underEngine(t *testing.T, name string, f func()) {
	t.Helper()
	e, err := sim.EngineByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prev := sim.SetDefaultEngine(e)
	defer sim.SetDefaultEngine(prev)
	f()
}

func TestEnginesAgreeOnEveryAppAndModel(t *testing.T) {
	const procs = 4
	mach := func() *machine.Machine { return machine.MustNew(machine.Default(procs)) }
	cases := []struct {
		name string
		run  func(m core.Model) core.Metrics
	}{
		{"mesh", func(m core.Model) core.Metrics {
			return adaptmesh.Run(m, mach(), adaptmesh.Small())
		}},
		{"nbody", func(m core.Model) core.Metrics {
			return barnes.Run(m, mach(), barnes.Small())
		}},
		{"stencil", func(m core.Model) core.Metrics {
			return stencil.Run(m, mach(), stencil.Small())
		}},
		{"cg", func(m core.Model) core.Metrics {
			return cg.Run(m, mach(), cg.Small())
		}},
	}
	models := append(core.AllModels(), core.Hybrid)
	for _, tc := range cases {
		for _, model := range models {
			if model == core.Hybrid && tc.name != "mesh" {
				continue // only the mesh has the hybrid extension
			}
			run := tc.run
			if model == core.Hybrid {
				run = func(core.Model) core.Metrics {
					return adaptmesh.RunHybrid(mach(), adaptmesh.Small())
				}
			}
			t.Run(tc.name+"/"+model.String(), func(t *testing.T) {
				var byEngine []core.Metrics
				for _, en := range sim.EngineNames() {
					underEngine(t, en, func() {
						byEngine = append(byEngine, run(model))
					})
				}
				for i := 1; i < len(byEngine); i++ {
					if !reflect.DeepEqual(byEngine[i], byEngine[0]) {
						t.Fatalf("engines %q and %q disagree:\n%+v\n%+v",
							sim.EngineNames()[i], sim.EngineNames()[0], byEngine[i], byEngine[0])
					}
				}
			})
		}
	}
}

// TestEnginesAgreeOnQuickSuiteBytes is the end-to-end form of the contract:
// the full quick suite, simulated from scratch on a fresh cell engine per
// run (so nothing is served from a cache warmed by the other engine),
// renders byte-identically.
func TestEnginesAgreeOnQuickSuiteBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite once per engine")
	}
	o := QuickOpts()
	outputs := map[string]string{}
	for _, en := range sim.EngineNames() {
		underEngine(t, en, func() {
			outputs[en] = renderAll(RunAll(runner.New(4), o))
		})
	}
	names := sim.EngineNames()
	for _, en := range names[1:] {
		if outputs[en] != outputs[names[0]] {
			t.Fatalf("quick-suite bytes differ between engines %q and %q", en, names[0])
		}
	}
}

// TestEnginesAgreeOnPoisonedCell: failure semantics are part of the engine
// contract too — a pre-failed cell must render the same FAILED(...) bytes
// whichever engine computes the healthy remainder of the table.
func TestEnginesAgreeOnPoisonedCell(t *testing.T) {
	o := QuickOpts()
	maxP := o.Procs[len(o.Procs)-1]
	outputs := map[string]string{}
	for _, en := range sim.EngineNames() {
		underEngine(t, en, func() {
			e := runner.New(2)
			poisonMeshMP(e, o, maxP, errors.New("injected fault"))
			tabs, err := RunOn(e, "mesh-speedup", o)
			if err != nil {
				t.Fatal(err)
			}
			outputs[en] = renderAll(tabs)
		})
	}
	names := sim.EngineNames()
	first := outputs[names[0]]
	if !strings.Contains(first, "FAILED(") {
		t.Fatalf("poisoned table lacks a FAILED entry:\n%s", first)
	}
	for _, en := range names[1:] {
		if outputs[en] != first {
			t.Fatalf("poisoned-cell rendering differs between engines %q and %q:\n%s\n%s",
				en, names[0], outputs[en], first)
		}
	}
}
