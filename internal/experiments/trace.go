package experiments

import (
	"fmt"
	"strings"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

// Phase-timeline tracing (the -trace / -trace-ascii / -phasereport path).
// A traced run is a deliberate re-simulation outside the cell engine:
// EnableTrace changes the host-side cost of a run and keeps live Group
// state, neither of which belongs in the memoized/cached path whose outputs
// are byte-identity-guarded. Exactly one plan set and one group per traced
// model is paid, so tracing costs O(one cell) however large the experiment
// suite that ran before it.

// TracedRun couples one phase-traced application run with its display
// label ("mesh MP P=8").
type TracedRun struct {
	Label string
	Group *sim.Group
}

// traceTarget is a parsed -trace-exp argument: an application, optionally
// narrowed to one model.
type traceTarget struct {
	app    string // "mesh", "nbody", "stencil", "cg", or "hybrid"
	models []core.Model
}

// traceApps are the accepted -trace-exp applications. "hybrid" is the mesh
// MP+SAS extension: a single-model target that rejects narrowing.
var traceApps = map[string]bool{
	"mesh": true, "nbody": true, "stencil": true, "cg": true, "hybrid": true,
}

// parseTraceTarget resolves "app" or "app/model" (case-insensitive; model
// accepts the paper names mp, shmem, and sas/cc-sas).
func parseTraceTarget(name string) (traceTarget, error) {
	tg := traceTarget{models: core.AllModels()}
	app, modelSel, narrowed := strings.Cut(strings.ToLower(name), "/")
	tg.app = app
	if !traceApps[app] {
		return tg, fmt.Errorf("unknown trace target %q (want mesh, nbody, stencil, cg, or hybrid, optionally /MODEL)", name)
	}
	if narrowed {
		if app == "hybrid" {
			return tg, fmt.Errorf("trace target %q: hybrid is a single-model target, drop the /%s", name, modelSel)
		}
		switch modelSel {
		case "mp":
			tg.models = []core.Model{core.MP}
		case "shmem":
			tg.models = []core.Model{core.SHMEM}
		case "sas", "cc-sas", "ccsas":
			tg.models = []core.Model{core.SAS}
		default:
			return tg, fmt.Errorf("unknown trace model %q (want mp, shmem, or sas)", modelSel)
		}
	}
	return tg, nil
}

// CheckTraceTarget validates a -trace-exp argument without running
// anything, so a typo fails fast instead of after the experiment suite.
func CheckTraceTarget(name string) error {
	_, err := parseTraceTarget(name)
	return err
}

// Trace re-runs the named application with phase-timeline tracing enabled
// at the largest processor count of o and returns one traced group per
// selected model, in core.AllModels order. name is "mesh", "nbody",
// "stencil", "cg", or "hybrid", optionally narrowed as e.g. "mesh/mp"
// (hybrid is single-model by construction).
func Trace(name string, o Opts) ([]TracedRun, error) {
	tg, err := parseTraceTarget(name)
	if err != nil {
		return nil, err
	}
	if len(o.Procs) == 0 {
		return nil, fmt.Errorf("trace %s: no processor counts configured", name)
	}
	procs := o.Procs[len(o.Procs)-1]
	mach, err := machine.New(machine.Default(procs))
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", name, err)
	}
	var runs []TracedRun
	switch tg.app {
	case "mesh":
		plans := adaptmesh.BuildPlans(o.MeshW, procs)
		for _, m := range tg.models {
			runs = append(runs, TracedRun{
				Label: fmt.Sprintf("mesh %v P=%d", m, procs),
				Group: adaptmesh.TraceRun(m, mach, o.MeshW, plans),
			})
		}
	case "nbody":
		plans := barnes.BuildPlans(o.NBodyW, procs)
		for _, m := range tg.models {
			runs = append(runs, TracedRun{
				Label: fmt.Sprintf("n-body %v P=%d", m, procs),
				Group: barnes.TraceRun(m, mach, o.NBodyW, plans),
			})
		}
	case "stencil":
		for _, m := range tg.models {
			runs = append(runs, TracedRun{
				Label: fmt.Sprintf("stencil %v P=%d", m, procs),
				Group: stencil.TraceRun(m, mach, o.StencilW),
			})
		}
	case "cg":
		plan := cg.BuildPlan(o.CGW, procs)
		for _, m := range tg.models {
			runs = append(runs, TracedRun{
				Label: fmt.Sprintf("cg %v P=%d", m, procs),
				Group: cg.TraceRun(m, mach, o.CGW, plan),
			})
		}
	case "hybrid":
		plans := adaptmesh.BuildPlans(o.MeshW, mach.Nodes())
		runs = append(runs, TracedRun{
			Label: fmt.Sprintf("mesh MP+SAS P=%d", procs),
			Group: adaptmesh.TraceHybridWithPlans(mach, o.MeshW, plans),
		})
	}
	return runs, nil
}
