package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"o2k/internal/core"
	"o2k/internal/sim"
)

func TestParseTraceTarget(t *testing.T) {
	cases := []struct {
		in     string
		app    string
		models []core.Model
	}{
		{"mesh", "mesh", core.AllModels()},
		{"nbody", "nbody", core.AllModels()},
		{"MESH", "mesh", core.AllModels()},
		{"mesh/mp", "mesh", []core.Model{core.MP}},
		{"nbody/shmem", "nbody", []core.Model{core.SHMEM}},
		{"mesh/sas", "mesh", []core.Model{core.SAS}},
		{"mesh/cc-sas", "mesh", []core.Model{core.SAS}},
		{"mesh/CCSAS", "mesh", []core.Model{core.SAS}},
		{"stencil", "stencil", core.AllModels()},
		{"stencil/mp", "stencil", []core.Model{core.MP}},
		{"cg", "cg", core.AllModels()},
		{"CG/shmem", "cg", []core.Model{core.SHMEM}},
		{"hybrid", "hybrid", core.AllModels()},
	}
	for _, tc := range cases {
		tg, err := parseTraceTarget(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if tg.app != tc.app || len(tg.models) != len(tc.models) {
			t.Errorf("%q: parsed %q/%v, want %q/%v", tc.in, tg.app, tg.models, tc.app, tc.models)
			continue
		}
		for i := range tc.models {
			if tg.models[i] != tc.models[i] {
				t.Errorf("%q: model[%d] = %v, want %v", tc.in, i, tg.models[i], tc.models[i])
			}
		}
	}
}

func TestCheckTraceTargetRejects(t *testing.T) {
	for _, bad := range []string{"", "warp", "mesh/openmp", "nbody/", "mesh/mp/extra", "hybrid/mp", "stencil/openmp"} {
		if err := CheckTraceTarget(bad); err == nil {
			t.Errorf("%q: accepted, want error", bad)
		}
	}
	if err := CheckTraceTarget("nbody/mp"); err != nil {
		t.Errorf("nbody/mp rejected: %v", err)
	}
}

func TestTraceUsesLargestProcCount(t *testing.T) {
	o := QuickOpts() // Procs 1, 4, 16
	runs, err := Trace("mesh/mp", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	if runs[0].Group.Size() != 16 {
		t.Fatalf("traced at P=%d, want the largest configured count 16", runs[0].Group.Size())
	}
	if runs[0].Label != "mesh MP P=16" {
		t.Fatalf("label = %q", runs[0].Label)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := Trace("bogus", QuickOpts()); err == nil {
		t.Error("bogus target accepted")
	}
	if _, err := Trace("mesh", Opts{}); err == nil {
		t.Error("empty Procs accepted")
	}
}

// TestGoldenASCIITimeline pins the -trace-ascii rendering of one fully
// deterministic traced run. Regenerate with O2K_UPDATE_GOLDEN=1 after a
// deliberate model change and review the diff like any other golden.
func TestGoldenASCIITimeline(t *testing.T) {
	o := QuickOpts()
	o.Procs = []int{4}
	runs, err := Trace("mesh/mp", o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&b, "=== %s ===\n%s", r.Label, sim.RenderTimeline(r.Group, 100))
	}
	got := b.String()

	golden := filepath.Join("testdata", "timeline.golden")
	if os.Getenv("O2K_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with O2K_UPDATE_GOLDEN=1 to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("ASCII timeline drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
