package experiments

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
)

// The suite-level guarantees of the persistent cell cache (DESIGN.md §5.5):
// a warm cache makes `-exp all` serve its metrics cells from disk with
// byte-identical output at any -jobs value, and every injected fault —
// unreadable entries, bit rot, version skew, a SIGKILL mid-sweep — degrades
// to recomputation without changing a single output byte.

// runAllCached renders the full quick suite on a fresh engine over the
// given cache, returning the bytes and the engine's report.
func runAllCached(t *testing.T, jobs int, dc *diskcache.Cache) (string, *runner.Report) {
	t.Helper()
	o := QuickOpts()
	e := runner.New(jobs)
	if dc != nil {
		e.SetCache(dc)
	}
	out := renderAll(RunAll(e, o))
	return out, e.Report()
}

func openCache(t *testing.T, dir string, opts ...diskcache.Option) *diskcache.Cache {
	t.Helper()
	dc, err := diskcache.Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestWarmCacheByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite; skipped with -short")
	}
	ref, _ := runAllCached(t, 1, nil) // uncached reference bytes

	dir := t.TempDir()
	cold, coldRep := runAllCached(t, 1, openCache(t, dir))
	if cold != ref {
		t.Fatal("cold cached run differs from uncached run")
	}
	if coldRep.DiskHits != 0 || coldRep.Disk == nil || coldRep.Disk.Misses == 0 {
		t.Fatalf("cold report = DiskHits=%d Disk=%+v", coldRep.DiskHits, coldRep.Disk)
	}

	for _, jobs := range []int{1, 4} {
		warm, warmRep := runAllCached(t, jobs, openCache(t, dir))
		if warm != ref {
			t.Fatalf("warm run at -jobs %d differs from cold run", jobs)
		}
		if warmRep.Disk == nil || warmRep.Disk.Corrupt != 0 || warmRep.Disk.Stale != 0 {
			t.Fatalf("warm run at -jobs %d reported damage: %+v", jobs, warmRep.Disk)
		}
		// Every persisted cell — metrics and plan tier alike — must come
		// from disk; the only cells computed on a warm run are the
		// memory-only n-body per-P plan derivations (no codec, Kind "").
		if warmRep.DiskHits == 0 {
			t.Fatalf("warm run at -jobs %d served nothing from disk", jobs)
		}
		if warmRep.PlanDiskHits == 0 {
			t.Fatalf("warm run at -jobs %d served no plan cells from disk", jobs)
		}
		for _, c := range warmRep.Cells {
			if !c.FromDisk && c.Kind != "" {
				t.Fatalf("warm run at -jobs %d recomputed persisted cell %q", jobs, c.Label)
			}
		}
	}
}

// Every injected fault class must leave the output bytes untouched.
func TestCacheFaultsPreserveBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite; skipped with -short")
	}
	ref, _ := runAllCached(t, 1, nil)

	t.Run("bit-rot on every read", func(t *testing.T) {
		dir := t.TempDir()
		if out, _ := runAllCached(t, 2, openCache(t, dir)); out != ref {
			t.Fatal("cold run differs")
		}
		ffs := diskcache.NewFaultFS(nil)
		ffs.FlipBitOnRead(1 << 20)
		out, rep := runAllCached(t, 2, openCache(t, dir, diskcache.WithFS(ffs)))
		if out != ref {
			t.Fatal("bit-rotted cache changed output bytes")
		}
		if rep.DiskHits != 0 || rep.Disk.Corrupt == 0 {
			t.Fatalf("report = DiskHits=%d Disk=%+v, want all-corrupt, none served", rep.DiskHits, rep.Disk)
		}
	})

	t.Run("read errors on every probe", func(t *testing.T) {
		dir := t.TempDir()
		if out, _ := runAllCached(t, 2, openCache(t, dir)); out != ref {
			t.Fatal("cold run differs")
		}
		ffs := diskcache.NewFaultFS(nil)
		ffs.FailReads(errors.New("injected EIO"))
		out, rep := runAllCached(t, 2, openCache(t, dir, diskcache.WithFS(ffs)))
		if out != ref {
			t.Fatal("unreadable cache changed output bytes")
		}
		if rep.DiskHits != 0 || rep.Disk.ReadErrs == 0 {
			t.Fatalf("report = DiskHits=%d Disk=%+v", rep.DiskHits, rep.Disk)
		}
	})

	t.Run("version skew", func(t *testing.T) {
		dir := t.TempDir()
		if out, _ := runAllCached(t, 2, openCache(t, dir, diskcache.WithFingerprint("old-build"))); out != ref {
			t.Fatal("cold run differs")
		}
		out, rep := runAllCached(t, 2, openCache(t, dir, diskcache.WithFingerprint("new-build")))
		if out != ref {
			t.Fatal("version-skewed cache changed output bytes")
		}
		if rep.DiskHits != 0 || rep.Disk.Stale == 0 {
			t.Fatalf("report = DiskHits=%d Disk=%+v, want all entries stale", rep.DiskHits, rep.Disk)
		}
	})

	t.Run("write errors while populating", func(t *testing.T) {
		ffs := diskcache.NewFaultFS(nil)
		ffs.FailWrites(errors.New("injected ENOSPC"))
		out, rep := runAllCached(t, 2, openCache(t, t.TempDir(), diskcache.WithFS(ffs)))
		if out != ref {
			t.Fatal("unwritable cache changed output bytes")
		}
		if rep.Disk.PutErrs == 0 {
			t.Fatalf("report = %+v, want put errors counted", rep.Disk)
		}
	})

	t.Run("truncated torn writes", func(t *testing.T) {
		dir := t.TempDir()
		ffs := diskcache.NewFaultFS(nil)
		ffs.TruncateWritesAt(25)
		if out, _ := runAllCached(t, 2, openCache(t, dir, diskcache.WithFS(ffs))); out != ref {
			t.Fatal("torn-write run changed output bytes")
		}
		// Every committed entry is torn; the rerun must reject them all.
		out, rep := runAllCached(t, 2, openCache(t, dir))
		if out != ref {
			t.Fatal("torn cache changed output bytes")
		}
		if rep.DiskHits != 0 || rep.Disk.Corrupt == 0 {
			t.Fatalf("report = DiskHits=%d Disk=%+v, want all-corrupt", rep.DiskHits, rep.Disk)
		}
	})
}

// The point of keying plan cells on (workload, P) and never on machine
// timing constants: fig12's four machine classes differ only in latency and
// bandwidth numbers, so all four share ONE structure cell and ONE plan cell.
func TestFig12MachinePresetsShareOnePlanCell(t *testing.T) {
	o := QuickOpts()
	dir := t.TempDir()

	e := runner.New(2)
	e.SetCache(openCache(t, dir))
	if _, err := RunOn(e, "machine-sweep", o); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	plan, persisted := 0, 0
	for _, c := range rep.Cells {
		if c.Kind != "" {
			persisted++
		}
		if c.Kind == "plan" {
			plan++
		}
	}
	// Four presets × three models ran, but the mesh workload needs exactly
	// two plan-tier cells: the adaptation structure and the P-specific
	// partitioning decisions.
	if plan != 2 {
		t.Fatalf("machine sweep created %d plan cells, want 2 (structure + plans)", plan)
	}
	if rep.PlanCells != plan {
		t.Fatalf("report counts %d plan cells, cells list has %d", rep.PlanCells, plan)
	}
	// Disk holds one entry per persisted cell — nothing was stored twice
	// under different machine constants.
	if got := countEntries(t, dir); got != persisted {
		t.Fatalf("disk has %d entries, report persisted %d cells", got, persisted)
	}

	// A second sweep over the same presets serves both plan cells from disk.
	e2 := runner.New(2)
	e2.SetCache(openCache(t, dir))
	if _, err := RunOn(e2, "machine-sweep", o); err != nil {
		t.Fatal(err)
	}
	if rep2 := e2.Report(); rep2.PlanDiskHits != 2 {
		t.Fatalf("warm sweep served %d plan cells from disk, want 2", rep2.PlanDiskHits)
	}
	if got := countEntries(t, dir); got != persisted {
		t.Fatalf("warm sweep changed the entry count: %d != %d", countEntries(t, dir), got)
	}
}

// childEnvDir is the env hook TestMain uses to run the sweep-child mode:
// the test binary re-executed as a separate process that fills the given
// cache directory until it is SIGKILLed.
const childEnvDir = "O2K_SWEEP_CHILD_CACHE"

// runSweepChild is the subprocess body for the kill-resume test: run the
// quick suite against the cache, serially so entries appear steadily.
func runSweepChild(dir string) {
	dc, err := diskcache.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep child:", err)
		os.Exit(1)
	}
	e := runner.New(1)
	e.SetCache(dc)
	RunAll(e, QuickOpts())
	os.Exit(0)
}

func TestMain(m *testing.M) {
	if dir := os.Getenv(childEnvDir); dir != "" {
		runSweepChild(dir)
	}
	os.Exit(m.Run())
}

// countEntries walks the cache directory for committed entry files.
func countEntries(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".cell" {
			n++
		}
		return nil
	})
	return n
}

// TestKillResume proves the crash-safety story end to end: a sweep process
// SIGKILLed mid-run leaves a cache in which every committed entry is valid,
// and a rerun against the same directory resumes from it — serving the
// killed run's completed cells from disk — with byte-identical output.
func TestKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess + full quick suite; skipped with -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnvDir+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()

	// Kill the child the moment it has committed a few entries but (almost
	// certainly) not all of them. If the child is too fast and finishes,
	// the test still verifies resume — just not mid-sweep interruption.
	deadline := time.After(30 * time.Second)
poll:
	for countEntries(t, dir) < 5 {
		select {
		case <-done:
			break poll
		case <-deadline:
			break poll
		case <-time.After(2 * time.Millisecond):
		}
	}
	cmd.Process.Signal(syscall.SIGKILL)
	<-done

	committed := countEntries(t, dir)
	if committed == 0 {
		t.Fatal("child committed no entries before the kill")
	}
	t.Logf("killed child with %d entries committed", committed)

	// Every entry the kill left behind must be valid: atomic rename means
	// no torn entries, whatever instant the SIGKILL landed.
	dc := openCache(t, dir)
	st, err := dc.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bad != 0 {
		t.Fatalf("kill left %d invalid entries of %d", st.Bad, st.Checked)
	}

	// The resumed run serves the killed run's cells from disk and produces
	// the exact reference bytes.
	ref, _ := runAllCached(t, 1, nil)
	out, rep := runAllCached(t, 2, dc)
	if out != ref {
		t.Fatal("resumed run differs from reference bytes")
	}
	if rep.DiskHits == 0 {
		t.Fatal("resumed run served nothing from the killed run's cache")
	}
	if rep.Disk.Corrupt != 0 || rep.Disk.Stale != 0 {
		t.Fatalf("resumed run found damage: %+v", rep.Disk)
	}
	t.Logf("resumed run served %d cells from the killed sweep", rep.DiskHits)
}
