package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/runner"
)

// poisonMeshMP pre-fails the mesh MP run cell at the given processor count
// by publishing an error under the exact key the typed helper would use —
// the engine then serves the cached failure to the experiment builder.
func poisonMeshMP(e *runner.Engine, o Opts, procs int, err error) {
	key := core.CellKey("mesh/run", core.MP, machine.Default(procs), o.MeshW)
	e.Do(key, "poisoned mesh MP", func(context.Context) (any, error) { return nil, err })
}

func TestFailedCellRendersAsFailedEntry(t *testing.T) {
	o := QuickOpts()
	maxP := o.Procs[len(o.Procs)-1]
	e := runner.New(2)
	poisonMeshMP(e, o, maxP, errors.New("injected fault"))

	tabs, err := RunOn(e, "mesh-speedup", o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "FAILED(injected fault)" {
		t.Fatalf("poisoned MP entry = %q, want FAILED(injected fault)", last[1])
	}
	if last[4] != "FAILED(injected fault)" {
		t.Fatalf("speedup derived from poisoned cell = %q, want FAILED", last[4])
	}
	// The other models' entries at the same P are untouched.
	if strings.Contains(last[2], "FAILED") || strings.Contains(last[3], "FAILED") {
		t.Fatalf("healthy entries corrupted: %v", last)
	}
	if r := e.Report(); r.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", r.Failures)
	}
}

func TestFailedRunIsByteStableAcrossJobs(t *testing.T) {
	o := QuickOpts()
	maxP := o.Procs[len(o.Procs)-1]
	render := func(jobs int) string {
		e := runner.New(jobs)
		poisonMeshMP(e, o, maxP, errors.New("injected fault"))
		tabs, err := RunOn(e, "all", o)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tb := range tabs {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	if a, b := render(1), render(8); a != b {
		t.Fatal("degraded output differs between -jobs 1 and -jobs 8")
	}
}

func TestVerdictsFlagFailedEvidence(t *testing.T) {
	o := QuickOpts()
	maxP := o.Procs[len(o.Procs)-1]
	e := runner.New(2)
	poisonMeshMP(e, o, maxP, errors.New("injected fault"))

	tb := buildVerdicts(context.Background(), e, o)
	if tb.Rows[0][0] != "V0" {
		t.Fatalf("first verdict is %q, want the V0 evidence gate", tb.Rows[0][0])
	}
	if tb.Rows[0][2] != "FAIL" {
		t.Fatalf("V0 = %s with a poisoned evidence cell, want FAIL", tb.Rows[0][2])
	}
	if !strings.Contains(tb.Rows[0][3], "FAILED(injected fault)") {
		t.Fatalf("V0 evidence %q does not name the failure", tb.Rows[0][3])
	}
}

// A workload with zero adaptation cycles / zero time steps yields empty plan
// sequences; Table 1 must degrade those rows to FAILED(...) instead of
// panicking on the len()-divisions in its averages.
func TestTable1EmptyPlansDegradeToFailedRows(t *testing.T) {
	o := QuickOpts()
	o.MeshW.Cycles = 0
	o.NBodyW.Steps = 0
	tb := buildTable1(context.Background(), runner.New(1), o)
	rows := map[string][]string{}
	for _, r := range tb.Rows {
		rows[r[0]] = r
	}
	for _, app := range []string{"adaptive mesh", "barnes-hut n-body"} {
		r, ok := rows[app]
		if !ok {
			t.Fatalf("table 1 lost the %q row: %v", app, tb.Rows)
		}
		if !strings.Contains(r[1], "FAILED(") || !strings.Contains(r[1], "empty plan sequence") {
			t.Fatalf("%s row = %q, want FAILED(empty plan sequence ...)", app, r[1])
		}
	}
	// The healthy rows still render normally.
	if r := rows["conjugate gradient"]; strings.Contains(r[1], "FAILED") {
		t.Fatalf("cg row degraded: %v", r)
	}
}

func TestBuildSafeRecoversBuilderPanic(t *testing.T) {
	s := Spec{Name: "boom", Title: "panicking builder",
		Build: func(context.Context, *runner.Engine, Opts) *core.Table { panic("kaboom") }}
	tb := buildSafe(context.Background(), s, runner.New(1), QuickOpts())
	if tb == nil || len(tb.Rows) != 1 || !strings.Contains(tb.Rows[0][0], "builder panic: kaboom") {
		t.Fatalf("buildSafe did not degrade the panic: %+v", tb)
	}
}
