package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"o2k/internal/core"
	"o2k/internal/runner"
)

// Spec declares one experiment: its canonical semantic name, the paper-
// artifact aliases it also answers to, a one-line description, and the
// builder that assembles its table from simulation cells on a shared
// engine. Experiments register themselves at init time; cmd/o2kbench and
// the All driver discover them through List and Lookup — there is no
// hand-maintained name switch anywhere.
type Spec struct {
	Name    string   // canonical semantic name, e.g. "mesh-speedup"
	Aliases []string // paper names, e.g. "fig2"
	Title   string   // one-line description for -list
	// Build assembles the experiment's table, requesting every simulation
	// through e so unique cells are computed once and shared. ctx scopes the
	// request: the CLI passes its signal context, the experiment server a
	// per-HTTP-request context (cancelling it aborts only this request's
	// uncommitted cells — DESIGN.md §5.11).
	Build func(ctx context.Context, e *runner.Engine, o Opts) *core.Table
	// Standalone experiments (the verdict checker) are excluded from "all".
	Standalone bool
}

var (
	regMu    sync.RWMutex
	registry []Spec
	byName   = make(map[string]*Spec)
)

// Register adds a spec to the registry. Name, Title, and Build are
// required; names and aliases are case-insensitive and must be unique
// across the registry. It panics on a bad spec — registration happens in
// package init, where a broken table of contents should stop the program.
func Register(s Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	if s.Name == "" || s.Title == "" || s.Build == nil {
		panic(fmt.Sprintf("experiments: incomplete spec %+v", s))
	}
	registry = append(registry, s)
	p := &registry[len(registry)-1]
	for _, n := range append([]string{s.Name}, s.Aliases...) {
		n = strings.ToLower(n)
		if n == "all" {
			panic(`experiments: "all" is reserved`)
		}
		if _, dup := byName[n]; dup {
			panic(fmt.Sprintf("experiments: duplicate experiment name %q", n))
		}
		byName[n] = p
	}
}

// List returns every registered spec in registration (paper index) order.
func List() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Spec(nil), registry...)
}

// Names returns every accepted experiment name — canonical names and
// aliases — sorted, for error messages.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	ns := make([]string, 0, len(byName))
	for n := range byName {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Lookup resolves an experiment by canonical name or alias
// (case-insensitive).
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := byName[strings.ToLower(name)]
	if !ok {
		return Spec{}, false
	}
	return *p, true
}

// Run executes the named experiment (or "all") on a fresh engine sized from
// o.Jobs and returns its tables. Callers that run several experiments and
// want them to share the cell cache should create one runner.Engine and use
// RunOn.
func Run(name string, o Opts) ([]*core.Table, error) {
	return RunOn(runner.New(o.Jobs), name, o)
}

// Render joins a table list into the exact bytes o2kbench prints on stdout:
// tables separated by one blank line, each rendered by core.Table.String.
// The experiment server returns this rendering so its output can be compared
// byte-for-byte against the CLI.
func Render(tables []*core.Table) string {
	var b strings.Builder
	for i, t := range tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// RunOn is Run on a caller-supplied engine. The name "all" produces every
// non-standalone experiment in index order, built concurrently over the
// shared cell cache.
func RunOn(e *runner.Engine, name string, o Opts) ([]*core.Table, error) {
	return RunOnCtx(context.Background(), e, name, o)
}

// RunOnCtx is RunOn scoped to one request context: builders receive ctx and
// thread it into every cell request, so cancelling ctx abandons this
// invocation without disturbing other users of the shared engine.
func RunOnCtx(ctx context.Context, e *runner.Engine, name string, o Opts) ([]*core.Table, error) {
	if strings.ToLower(name) == "all" {
		return RunAllCtx(ctx, e, o), nil
	}
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (run -list for the index)", name)
	}
	return []*core.Table{buildSafe(ctx, s, e, o)}, nil
}

// buildSafe runs one builder with panic recovery: cell failures are already
// values (runner.Res), so a builder panic is a bug in the assembly code
// itself — degrade it to a one-row error table rather than killing every
// other experiment of the run.
func buildSafe(ctx context.Context, s Spec, e *runner.Engine, o Opts) (t *core.Table) {
	defer func() {
		if r := recover(); r != nil {
			t = &core.Table{
				Title:  s.Title,
				Header: []string{"error"},
				Rows:   [][]string{{fmt.Sprintf("FAILED(builder panic: %v)", r)}},
			}
		}
	}()
	return s.Build(ctx, e, o)
}

// RunAll builds every non-standalone experiment on the shared engine.
// Builders run concurrently — the engine's single-flight cache ensures each
// unique cell is still simulated exactly once — but results are returned in
// registration order, so the output is byte-identical at any parallelism.
func RunAll(e *runner.Engine, o Opts) []*core.Table {
	return RunAllCtx(context.Background(), e, o)
}

// RunAllCtx is RunAll scoped to one request context.
func RunAllCtx(ctx context.Context, e *runner.Engine, o Opts) []*core.Table {
	specs := List()
	out := make([]*core.Table, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		if s.Standalone {
			continue
		}
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			out[i] = buildSafe(ctx, s, e, o)
		}(i, s)
	}
	wg.Wait()
	tables := make([]*core.Table, 0, len(specs))
	for _, t := range out {
		if t != nil {
			tables = append(tables, t)
		}
	}
	return tables
}
