package experiments

import (
	"strconv"
	"strings"
	"testing"

	"o2k/internal/core"
	"o2k/internal/runner"
)

// runOne builds a single registered experiment through the registry API.
func runOne(t *testing.T, name string, o Opts) *core.Table {
	t.Helper()
	tables, err := Run(name, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("Run(%q) returned %d tables, want 1", name, len(tables))
	}
	return tables[0]
}

func TestAllExperimentsQuick(t *testing.T) {
	tables := RunAll(runner.New(0), QuickOpts())
	if len(tables) != 14 {
		t.Fatalf("expected 14 experiment tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("table %q is incomplete", tb.Title)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Header) {
				t.Fatalf("table %q: row width %d != header %d", tb.Title, len(r), len(tb.Header))
			}
		}
		if len(tb.String()) == 0 {
			t.Fatalf("table %q renders empty", tb.Title)
		}
	}
}

func TestFig2SpeedupIncreases(t *testing.T) {
	o := QuickOpts()
	tb := runOne(t, "mesh-speedup", o)
	// Final row's CC-SAS speedup (last col) must exceed 1.5 at P=16.
	lastRow := tb.Rows[len(tb.Rows)-1]
	sp, err := strconv.ParseFloat(lastRow[6], 64)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.5 {
		t.Fatalf("CC-SAS speedup %v at largest P", sp)
	}
	// First row is the P=1 baseline: speedups exactly 1.
	if tb.Rows[0][4] != "1.000" {
		t.Fatalf("baseline speedup not 1: %v", tb.Rows[0])
	}
}

func TestTable5LoCOrdering(t *testing.T) {
	tb := Table5()
	for _, r := range tb.Rows {
		mp, err1 := strconv.Atoi(r[1])
		sh, err2 := strconv.Atoi(r[2])
		sa, err3 := strconv.Atoi(r[3])
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("LoC row unparseable: %v", r)
		}
		if mp <= 0 || sh <= 0 || sa <= 0 {
			t.Fatalf("LoC counting failed: %v", r)
		}
		if !strings.Contains(r[0], "runtime") {
			// Application code: CC-SAS must be the shortest (the paper's
			// programming-effort finding).
			if !(sa <= sh && sa <= mp) {
				t.Errorf("%s: CC-SAS LoC (%d) not smallest (mp=%d shm=%d)", r[0], sa, mp, sh)
			}
		}
	}
}

func TestFig7MonotoneForSAS(t *testing.T) {
	o := QuickOpts()
	tb := runOne(t, "latency-sweep", o)
	// CC-SAS times (col 3) must not decrease as the latency ratio grows.
	prev := ""
	for _, r := range tb.Rows {
		if prev != "" && parseTime(t, r[3]) < parseTime(t, prev) {
			t.Fatalf("CC-SAS time decreased with worse latency: %v < %v", r[3], prev)
		}
		prev = r[3]
	}
}

func parseTime(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, s = 1e6, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		mult, s = 1e3, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ns"):
		s = strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "s"):
		mult, s = 1e9, strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad time %q", s)
	}
	return v * mult
}

func TestFig8RemapReducesMovement(t *testing.T) {
	o := QuickOpts()
	tb := runOne(t, "loadbalance", o)
	for _, r := range tb.Rows {
		onW, _ := strconv.ParseFloat(r[3], 64)
		offW, _ := strconv.ParseFloat(r[4], 64)
		if onW > offW {
			t.Fatalf("%s: remap moved more weight (%v) than identity (%v)", r[0], onW, offW)
		}
	}
}

func TestFig12MachineClassWinners(t *testing.T) {
	tb := runOne(t, "machine-sweep", QuickOpts())
	winners := map[string]string{}
	for _, r := range tb.Rows {
		winners[r[0]] = r[4]
	}
	if winners["origin2000 (ccNUMA)"] != "CC-SAS" {
		t.Errorf("Origin2000 winner = %s, want CC-SAS", winners["origin2000 (ccNUMA)"])
	}
	if winners["ideal SMP"] != "CC-SAS" {
		t.Errorf("SMP winner = %s, want CC-SAS", winners["ideal SMP"])
	}
	if w := winners["t3e (MPP)"]; w == "CC-SAS" {
		t.Errorf("T3E winner should not be CC-SAS, got %s", w)
	}
}

func TestVerdictsAllPassQuick(t *testing.T) {
	tb := Verdicts(QuickOpts())
	for _, r := range tb.Rows {
		if r[2] != "PASS" {
			t.Errorf("%s (%s): %s — %s", r[0], r[1], r[2], r[3])
		}
	}
	if len(tb.Rows) < 10 {
		t.Fatalf("only %d verdicts", len(tb.Rows))
	}
}
