package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Processor-count scaling presets for o2kbench's -procs flag. The paper's
// sweep stops at 64 because the studied Origin2000 did; the event engine and
// lazy cache-tag allocation make larger gangs practical, and these presets
// name the standard sweeps so CI jobs and scaling runs don't hand-maintain
// doubling lists. scale1024 is deliberately coarser (factor-4 steps): the
// point of the largest preset is the memory/scheduling envelope at the top
// end, not a dense curve.
var procsPresets = map[string][]int{
	"paper":     {1, 2, 4, 8, 16, 32, 64},
	"scale128":  {1, 2, 4, 8, 16, 32, 64, 128},
	"scale256":  {1, 2, 4, 8, 16, 32, 64, 128, 256},
	"scale1024": {1, 4, 16, 64, 256, 1024},
}

// ProcsPreset resolves a named processor sweep; ok is false for unknown
// names. The returned slice is a copy.
func ProcsPreset(name string) (ps []int, ok bool) {
	p, ok := procsPresets[name]
	return append([]int(nil), p...), ok
}

// ProcsPresetNames returns the preset names, sorted, for flag help and
// error messages.
func ProcsPresetNames() []string {
	ns := make([]string, 0, len(procsPresets))
	for n := range procsPresets {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// ParseProcs resolves a -procs style value — a preset name or an explicit
// comma-separated processor-count list — shared by the CLI flag and the
// experiment server's request field.
func ParseProcs(s string) ([]int, error) {
	if ps, ok := ProcsPreset(s); ok {
		return ps, nil
	}
	var ps []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q (counts are positive integers; presets: %s)",
				f, strings.Join(ProcsPresetNames(), ", "))
		}
		ps = append(ps, v)
	}
	return ps, nil
}
