package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"o2k/internal/runner/diskcache"
)

// This file is the engine's bridge to the persistent cell cache
// (internal/runner/diskcache): which cells persist, how an outcome —
// a value or its memoized error — becomes a payload, and when a stored
// outcome may be trusted. The division of labor: diskcache owns entry
// integrity (atomic commit, checksum, version fence) and the engine owns
// outcome semantics (typed payloads, which errors are deterministic enough
// to persist). Every failure on this layer degrades to recomputation —
// the cache can make a run slower, never different.

// Codec serializes one cell type's successful value for the persistent
// cache. Only cells whose helpers pass a codec to DoCached persist. Two
// codec families exist: MetricsCodec for run cells, and the plan codecs in
// cells.go that persist the structural tier (adaptation histories, reference
// simulations, partitioning decisions) behind the plan cells.
type Codec struct {
	// Kind classifies the cell for reporting ("metrics", "plan"); it does
	// not affect storage.
	Kind string
	// Encode turns the cell's value into a stable payload. An error means
	// "do not cache this value"; the run is unaffected.
	Encode func(v any) ([]byte, error)
	// Decode is the strict inverse. An error marks the entry corrupt: the
	// engine evicts it and recomputes.
	Decode func(data []byte) (any, error)
}

// CachedError is a deterministic cell failure restored from the persistent
// cache. It preserves both the original message and the original FAILED(…)
// table rendering, so a warm run's failed entries are byte-identical to the
// cold run that first produced them.
type CachedError struct {
	Msg   string // original err.Error()
	Label string // original FailLabel(err) rendering
}

func (e *CachedError) Error() string { return e.Msg }

// Outcome framing: the payload's first line tags what follows. A value
// payload is "v\n" + the codec's bytes verbatim (no re-encoding — codec
// output can be multi-megabyte plan text, and warm-run time is dominated by
// how many passes are made over it); an error payload is "e\n" + the JSON of
// cachedErrPayload. Anything else is corrupt.
var (
	valPrefix = []byte("v\n")
	errPrefix = []byte("e\n")
)

type cachedErrPayload struct {
	Msg   string `json:"msg"`
	Label string `json:"label"`
}

// persistable reports whether a cell outcome is a property of the cell
// itself rather than of this run's environment. Timeouts, cancellations,
// and transient failures depend on deadlines, signals, and luck — caching
// them would convert a one-off hiccup into a persistent wrong answer.
// Values, deterministic compute errors, and panics (the simulator is
// deterministic, so a panic reproduces) persist.
func persistable(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return !IsTransient(err)
}

// SetCache attaches a persistent cache to the engine. It must be called
// before the first Do; a nil cache (the default) keeps the engine
// memory-only. Cells opt in per call site by passing a Codec to DoCached.
func (e *Engine) SetCache(c *diskcache.Cache) { e.cache = c }

// Cache returns the attached persistent cache, or nil.
func (e *Engine) Cache() *diskcache.Cache { return e.cache }

// diskLoad tries to satisfy key from the persistent cache. ok is false on
// any miss or failure — the caller computes as if no cache existed. A
// payload that passed diskcache's integrity checks but fails to decode here
// is reclassified as corrupt and evicted.
func (e *Engine) diskLoad(key string, codec *Codec) (val any, cerr error, ok bool) {
	if e.cache == nil || codec == nil {
		return nil, nil, false
	}
	payload, ok := e.cache.Get(key)
	if !ok {
		return nil, nil, false
	}
	switch {
	case bytes.HasPrefix(payload, valPrefix):
		v, err := codec.Decode(payload[len(valPrefix):])
		if err != nil {
			e.cache.Invalidate(key)
			return nil, nil, false
		}
		return v, nil, true
	case bytes.HasPrefix(payload, errPrefix):
		dec := json.NewDecoder(bytes.NewReader(payload[len(errPrefix):]))
		dec.DisallowUnknownFields()
		var ep cachedErrPayload
		if err := dec.Decode(&ep); err != nil {
			e.cache.Invalidate(key)
			return nil, nil, false
		}
		return nil, &CachedError{Msg: ep.Msg, Label: ep.Label}, true
	default:
		e.cache.Invalidate(key)
		return nil, nil, false
	}
}

// diskStore persists a freshly computed outcome, best-effort: encode
// failures and write failures are counted by the cache and otherwise
// ignored. Outcomes are not stored while the engine is cancelling — a
// custom cancellation cause is environmental even when it does not unwrap
// to context.Canceled.
func (e *Engine) diskStore(key string, codec *Codec, val any, cellErr error) {
	if e.cache == nil || codec == nil || e.ctx.Err() != nil || !persistable(cellErr) {
		return
	}
	var body []byte
	prefix := valPrefix
	if cellErr != nil {
		data, err := json.Marshal(cachedErrPayload{Msg: cellErr.Error(), Label: FailLabel(cellErr)})
		if err != nil {
			return
		}
		body, prefix = data, errPrefix
	} else {
		data, err := codec.Encode(val)
		if err != nil {
			return
		}
		body = data
	}
	payload := make([]byte, 0, len(prefix)+len(body))
	payload = append(payload, prefix...)
	payload = append(payload, body...)
	e.cache.Put(key, payload) // counted by the cache on failure
}

// DiskStats is the persistent-cache section of a Report snapshot.
type DiskStats struct {
	Hits     int64 `json:"hits"`      // cells served from disk without simulation
	Misses   int64 `json:"misses"`    // disk probes that fell through to compute
	Corrupt  int64 `json:"corrupt"`   // integrity failures detected (and evicted)
	Stale    int64 `json:"stale"`     // version-fence rejections (and evicted)
	Evicted  int64 `json:"evicted"`   // entry files removed
	PutErrs  int64 `json:"put_errs"`  // failed entry commits
	ReadErrs int64 `json:"read_errs"` // I/O errors on probe
}

func diskStats(c diskcache.Counters) *DiskStats {
	return &DiskStats{
		Hits:     c.Hits,
		Misses:   c.Misses,
		Corrupt:  c.Corrupt,
		Stale:    c.Stale,
		Evicted:  c.Evicted,
		PutErrs:  c.PutErrs,
		ReadErrs: c.ReadErrs,
	}
}

// String renders the stats for the -runreport table.
func (d *DiskStats) String() string {
	s := fmt.Sprintf("hits=%d misses=%d corrupt=%d stale=%d evicted=%d",
		d.Hits, d.Misses, d.Corrupt, d.Stale, d.Evicted)
	if d.PutErrs > 0 || d.ReadErrs > 0 {
		s += fmt.Sprintf(" put_errs=%d read_errs=%d", d.PutErrs, d.ReadErrs)
	}
	return s
}
