package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"o2k/internal/runner/diskcache"
)

// This file is the engine's bridge to the persistent cell cache
// (internal/runner/diskcache): which cells persist, how an outcome —
// a value or its memoized error — becomes a payload, and when a stored
// outcome may be trusted. The division of labor: diskcache owns entry
// integrity (atomic commit, checksum, version fence) and the engine owns
// outcome semantics (typed payloads, which errors are deterministic enough
// to persist). Every failure on this layer degrades to recomputation —
// the cache can make a run slower, never different.

// Codec serializes one cell type's successful value for the persistent
// cache. Only cells whose helpers pass a codec to DoCached persist; plan
// cells hold live mesh/decomposition structures that are cheap to rebuild
// and are deliberately left memory-only (nil codec).
type Codec struct {
	// Encode turns the cell's value into a stable payload. An error means
	// "do not cache this value"; the run is unaffected.
	Encode func(v any) ([]byte, error)
	// Decode is the strict inverse. An error marks the entry corrupt: the
	// engine evicts it and recomputes.
	Decode func(data []byte) (any, error)
}

// CachedError is a deterministic cell failure restored from the persistent
// cache. It preserves both the original message and the original FAILED(…)
// table rendering, so a warm run's failed entries are byte-identical to the
// cold run that first produced them.
type CachedError struct {
	Msg   string // original err.Error()
	Label string // original FailLabel(err) rendering
}

func (e *CachedError) Error() string { return e.Msg }

// outcomePayload is the cached form of one completed cell: exactly one of
// Err or Val is set.
type outcomePayload struct {
	Err *cachedErrPayload `json:"err,omitempty"`
	Val json.RawMessage   `json:"val,omitempty"`
}

type cachedErrPayload struct {
	Msg   string `json:"msg"`
	Label string `json:"label"`
}

// persistable reports whether a cell outcome is a property of the cell
// itself rather than of this run's environment. Timeouts, cancellations,
// and transient failures depend on deadlines, signals, and luck — caching
// them would convert a one-off hiccup into a persistent wrong answer.
// Values, deterministic compute errors, and panics (the simulator is
// deterministic, so a panic reproduces) persist.
func persistable(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return !IsTransient(err)
}

// SetCache attaches a persistent cache to the engine. It must be called
// before the first Do; a nil cache (the default) keeps the engine
// memory-only. Cells opt in per call site by passing a Codec to DoCached.
func (e *Engine) SetCache(c *diskcache.Cache) { e.cache = c }

// Cache returns the attached persistent cache, or nil.
func (e *Engine) Cache() *diskcache.Cache { return e.cache }

// diskLoad tries to satisfy key from the persistent cache. ok is false on
// any miss or failure — the caller computes as if no cache existed. A
// payload that passed diskcache's integrity checks but fails to decode here
// is reclassified as corrupt and evicted.
func (e *Engine) diskLoad(key string, codec *Codec) (val any, cerr error, ok bool) {
	if e.cache == nil || codec == nil {
		return nil, nil, false
	}
	payload, ok := e.cache.Get(key)
	if !ok {
		return nil, nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var out outcomePayload
	if err := dec.Decode(&out); err != nil {
		e.cache.Invalidate(key)
		return nil, nil, false
	}
	switch {
	case out.Err != nil:
		return nil, &CachedError{Msg: out.Err.Msg, Label: out.Err.Label}, true
	case out.Val != nil:
		v, err := codec.Decode(out.Val)
		if err != nil {
			e.cache.Invalidate(key)
			return nil, nil, false
		}
		return v, nil, true
	default:
		e.cache.Invalidate(key)
		return nil, nil, false
	}
}

// diskStore persists a freshly computed outcome, best-effort: encode
// failures and write failures are counted by the cache and otherwise
// ignored. Outcomes are not stored while the engine is cancelling — a
// custom cancellation cause is environmental even when it does not unwrap
// to context.Canceled.
func (e *Engine) diskStore(key string, codec *Codec, val any, cellErr error) {
	if e.cache == nil || codec == nil || e.ctx.Err() != nil || !persistable(cellErr) {
		return
	}
	var out outcomePayload
	if cellErr != nil {
		out.Err = &cachedErrPayload{Msg: cellErr.Error(), Label: FailLabel(cellErr)}
	} else {
		data, err := codec.Encode(val)
		if err != nil {
			return
		}
		out.Val = data
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return
	}
	e.cache.Put(key, payload) // counted by the cache on failure
}

// DiskStats is the persistent-cache section of a Report snapshot.
type DiskStats struct {
	Hits     int64 `json:"hits"`      // cells served from disk without simulation
	Misses   int64 `json:"misses"`    // disk probes that fell through to compute
	Corrupt  int64 `json:"corrupt"`   // integrity failures detected (and evicted)
	Stale    int64 `json:"stale"`     // version-fence rejections (and evicted)
	Evicted  int64 `json:"evicted"`   // entry files removed
	PutErrs  int64 `json:"put_errs"`  // failed entry commits
	ReadErrs int64 `json:"read_errs"` // I/O errors on probe
}

func diskStats(c diskcache.Counters) *DiskStats {
	return &DiskStats{
		Hits:     c.Hits,
		Misses:   c.Misses,
		Corrupt:  c.Corrupt,
		Stale:    c.Stale,
		Evicted:  c.Evicted,
		PutErrs:  c.PutErrs,
		ReadErrs: c.ReadErrs,
	}
}

// String renders the stats for the -runreport table.
func (d *DiskStats) String() string {
	s := fmt.Sprintf("hits=%d misses=%d corrupt=%d stale=%d evicted=%d",
		d.Hits, d.Misses, d.Corrupt, d.Stale, d.Evicted)
	if d.PutErrs > 0 || d.ReadErrs > 0 {
		s += fmt.Sprintf(" put_errs=%d read_errs=%d", d.PutErrs, d.ReadErrs)
	}
	return s
}
