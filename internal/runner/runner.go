// Package runner is the concurrent experiment engine behind the experiments
// registry. It decomposes every table and figure of the evaluation into
// *simulation cells* — one (application, model, machine config, workload,
// processor count) point of the comparison matrix, keyed by a stable
// content hash (core.CellKey) — and guarantees that each unique cell is
// simulated exactly once per Engine, however many experiments ask for it.
//
// Three mechanisms combine to make `o2kbench -exp all` cost O(unique cells)
// instead of O(experiments × cells):
//
//   - memoization: a completed cell's core.Metrics (or plan set) is cached
//     under its content hash and served to later requesters;
//   - single-flight: a cell requested while already in flight blocks its
//     requester on the one running simulation instead of starting another;
//   - a bounded worker pool: unique cells execute under a semaphore sized
//     from GOMAXPROCS (or the -jobs flag), so an entire experiment suite
//     saturates the host without oversubscribing it.
//
// Because the virtual-time simulator is fully deterministic (DESIGN.md §4),
// a cache hit is provably indistinguishable from a re-run, and table output
// is byte-identical at any worker count. The Engine also records per-cell
// wall time and hit/miss/dedup statistics; Report exposes them as the
// observability hook behind `o2kbench -runreport`.
//
// Cells carry errors, not just values (DESIGN.md §5.3): a compute that
// panics, times out, or fails is published as the cell's error and served to
// every requester, so one wedged cell degrades one table entry instead of
// deadlocking the run. The engine is cancellable as a whole (NewWithPolicy's
// context), bounds each attempt with a per-cell timeout, and retries
// failures marked Transient with exponential backoff.
package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"o2k/internal/runner/diskcache"
	"o2k/internal/runner/lease"
)

// ErrCellAborted is the cancellation cause a cell's compute context carries
// when every requester waiting on the cell has gone away before it completed
// (per-request cancellation, DESIGN.md §5.11). It wraps context.Canceled, so
// an aborted outcome is never persisted to the disk cache; the engine also
// retires the cell from the memo map and the report order, so the next
// request of the same key recomputes from scratch as if the cell had never
// been asked for.
var ErrCellAborted = fmt.Errorf("every requester left: %w", context.Canceled)

// Policy is the engine's fault-tolerance configuration. The zero value means
// no per-cell timeout and no retries — every failure is final on the first
// attempt.
type Policy struct {
	// CellTimeout bounds each compute attempt; 0 means no bound. On expiry
	// the attempt's requesters get context.DeadlineExceeded while the
	// compute goroutine keeps its worker slot until it actually returns
	// (the sim stall watchdog guarantees it eventually does), so the pool
	// is never oversubscribed.
	CellTimeout time.Duration
	// Retries is the number of extra attempts granted to a compute whose
	// error is marked Transient. Deterministic failures are never retried.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt.
	// 0 selects 10ms when Retries > 0. Each sleep is jittered over
	// [b/2, b]: pure doubling synchronizes retry storms the moment N
	// processes share one cache directory and hit the same flaky resource
	// together, while equal jitter keeps the mean and the cap.
	Backoff time.Duration
	// Seed seeds the jitter stream. 0 derives a per-process seed (the
	// desynchronization is the point); tests that need reproducible sleeps
	// set it explicitly.
	Seed int64
}

// backoff returns the un-jittered sleep cap before retry attempt i
// (0-based); the engine jitters it at sleep time.
func (p Policy) backoff(i int) time.Duration {
	b := p.Backoff
	if b <= 0 {
		b = 10 * time.Millisecond
	}
	return b << i
}

// Engine memoizes simulation cells and bounds their concurrent execution.
// The zero value is not usable; use New or NewWithPolicy. An Engine is safe
// for concurrent use and is meant to be shared by every experiment of one
// invocation — sharing is where the cross-experiment cache hits come from.
type Engine struct {
	jobs   int
	sem    chan struct{}
	pol    Policy
	ctx    context.Context
	cancel context.CancelCauseFunc

	cache  *diskcache.Cache // persistent cell cache, nil when memory-only
	leases *lease.Manager   // cross-process single-flight, nil when solo
	hook   Hook             // cell lifecycle observer, nil when silent

	rngMu sync.Mutex
	rng   *rand.Rand // retry-backoff jitter stream

	mu    sync.Mutex
	cells map[string]*cell
	order []*cell // insertion order, for stable reports
}

// cell is one memoized computation: the single-flight slot, its result or
// error, and its statistics. val, err, wall, attempts, and retired are
// written only by the owner goroutine before done is closed; readers must
// observe done first (close(done) is the publication barrier). waiters and
// completed are guarded by the engine mutex: they implement per-request
// cancellation — every live requester (the owner included) holds one
// reference, and the last reference leaving an incomplete cell cancels cctx
// with ErrCellAborted.
type cell struct {
	key      string
	label    string
	kind     string        // codec classification ("metrics", "plan"), "" if memory-only
	done     chan struct{} // closed once val/err are set
	val      any
	err      error
	wall     time.Duration // compute wall time across all attempts
	attempts int           // times compute actually ran
	fromDisk bool          // outcome restored from the persistent cache
	retired  bool          // aborted outcome withdrawn from the memo map
	hits     atomic.Int64  // requests served after completion
	dedup    atomic.Int64  // requests that waited on the in-flight run

	cctx      context.Context         // compute context: engine ctx + abort
	abort     context.CancelCauseFunc // fired when the last requester leaves
	waiters   int                     // live requesters (engine mutex)
	completed bool                    // outcome published (engine mutex)
}

// New returns an Engine whose worker pool admits jobs concurrent cell
// executions; jobs <= 0 selects GOMAXPROCS. The engine has a zero Policy
// and a background context — use NewWithPolicy for timeouts, retries, or
// engine-wide cancellation.
func New(jobs int) *Engine {
	return NewWithPolicy(context.Background(), jobs, Policy{})
}

// NewWithPolicy is New with fault-tolerance configuration: cancelling ctx
// (or calling Cancel) aborts every pending and future cell request, and pol
// sets the per-cell timeout and retry budget.
func NewWithPolicy(ctx context.Context, jobs int, pol Policy) *Engine {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ectx, cancel := context.WithCancelCause(ctx)
	seed := pol.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
	}
	return &Engine{
		jobs:   jobs,
		sem:    make(chan struct{}, jobs),
		pol:    pol,
		ctx:    ectx,
		cancel: cancel,
		rng:    rand.New(rand.NewSource(seed)),
		cells:  make(map[string]*cell),
	}
}

// jitterBackoff maps the policy's doubling cap for retry attempt i to an
// equal-jitter sleep: uniform over [cap/2, cap].
func (e *Engine) jitterBackoff(i int) time.Duration {
	b := e.pol.backoff(i)
	e.rngMu.Lock()
	d := b/2 + time.Duration(e.rng.Int63n(int64(b/2)+1))
	e.rngMu.Unlock()
	return d
}

// Jobs returns the worker-pool size.
func (e *Engine) Jobs() int { return e.jobs }

// Cancel aborts the engine: every blocked requester unblocks with cause
// (context.Canceled if nil) and future requests fail fast. In-flight compute
// goroutines run to completion but publish the cancellation error.
func (e *Engine) Cancel(cause error) { e.cancel(cause) }

// Do returns the memoized result of compute under key, running it at most
// once per Engine. The first requester becomes the owner: it acquires a
// worker slot, computes (with the Policy's timeout and retry budget), and
// publishes; concurrent requesters of the same key block on that one
// execution (single-flight), and later requesters get the cached outcome
// immediately. Failures are outcomes too: a panic, timeout, or returned
// error is published as the cell's error to every requester — waiters
// always unblock, and a subsequent request of the same key returns the
// cached error without recomputing.
//
// compute receives a context cancelled at the per-cell deadline or on
// engine cancellation; long-running computes may observe it, but the
// simulation runtime's stall watchdog is the backstop for those that don't.
//
// compute must not call Do (directly or through a typed cell helper) —
// nested acquisition could deadlock the bounded pool. Resolve dependency
// cells *before* calling Do and capture their results in the closure, as
// the typed helpers in cells.go do with their plan cells.
func (e *Engine) Do(key, label string, compute func(ctx context.Context) (any, error)) (any, error) {
	return e.DoCachedCtx(context.Background(), key, label, nil, compute)
}

// DoCached is Do for cells that also persist across processes: when the
// engine has a cache (SetCache) and codec is non-nil, the owner consults
// the disk before computing and writes the outcome back after. Disk is
// strictly a third tier behind the in-memory map and the single-flight
// slot — a warm entry costs one read, and every disk failure (absent,
// unreadable, corrupt, stale) silently falls through to compute, so cached
// and uncached runs are byte-identical by construction.
func (e *Engine) DoCached(key, label string, codec *Codec, compute func(ctx context.Context) (any, error)) (any, error) {
	return e.DoCachedCtx(context.Background(), key, label, codec, compute)
}

// DoCtx is Do scoped to one request: cancelling ctx abandons this request's
// wait without disturbing the engine or other requesters of the same cell.
func (e *Engine) DoCtx(ctx context.Context, key, label string, compute func(ctx context.Context) (any, error)) (any, error) {
	return e.DoCachedCtx(ctx, key, label, nil, compute)
}

// DoCachedCtx is DoCached scoped to one request (the experiment server's
// entry point; the CLI paths call it with a background context through
// Do/DoCached and behave exactly as before). The request semantics:
//
//   - every live requester of an in-flight cell — the owner included —
//     holds one reference on it; cancelling ctx drops this request out of
//     its wait immediately with ctx's cause;
//   - when the *last* reference leaves a cell that has not completed, the
//     cell's compute context is cancelled with ErrCellAborted: a client
//     disconnect aborts only cells no other request still wants;
//   - an aborted outcome is retired — withdrawn from the memo map and the
//     report — and never persisted, so the next request of the same key
//     recomputes as if the cell had never existed. A requester that raced
//     its registration against the abort observes the retirement and
//     retries its lookup.
//
// If ctx carries a request hook (WithRequestHook), every event this request
// produces is also delivered to it.
func (e *Engine) DoCachedCtx(ctx context.Context, key, label string, codec *Codec, compute func(ctx context.Context) (any, error)) (any, error) {
	rh := requestHook(ctx)
	for {
		v, err, retry := e.doCached(ctx, rh, key, label, codec, compute)
		if !retry {
			return v, err
		}
	}
}

// unregister drops one requester reference from c. The last live requester
// leaving an incomplete cell aborts its compute.
func (e *Engine) unregister(c *cell) {
	e.mu.Lock()
	c.waiters--
	if c.waiters == 0 && !c.completed {
		c.abort(ErrCellAborted)
	}
	e.mu.Unlock()
}

// doCached is one pass of DoCachedCtx: serve, wait, or own. retry is true
// when the observed outcome was a retired (aborted) cell while this request
// is still live — the caller loops and looks the key up again.
func (e *Engine) doCached(ctx context.Context, rh Hook, key, label string, codec *Codec, compute func(ctx context.Context) (any, error)) (val any, err error, retry bool) {
	e.mu.Lock()
	if c, ok := e.cells[key]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
			if c.retired && ctx.Err() == nil && e.ctx.Err() == nil {
				// The lookup raced the owner's retirement: the cell was
				// still in the map when we read it but its outcome was
				// aborted and withdrawn. Look again.
				return nil, nil, true
			}
			c.hits.Add(1)
			if e.hooked(rh) {
				e.fire(rh, Event{Kind: EventMemoHit, Key: key, Label: label, Start: time.Now(), Err: errMsg(c.err)})
			}
			return c.val, c.err, false
		default:
		}
		// In flight: register as a waiter. The AfterFunc carries the
		// reference drop for a cancelled request; a request that completes
		// its wait normally stops it and drops the reference itself.
		e.mu.Lock()
		if c.completed || c.retired {
			// Completed (or retired) between the lookup and here; done is
			// closed or about to close — fall through to the wait without
			// registering, the owner no longer observes waiters.
			e.mu.Unlock()
			<-c.done
			if c.retired && ctx.Err() == nil && e.ctx.Err() == nil {
				return nil, nil, true
			}
			c.hits.Add(1)
			if e.hooked(rh) {
				e.fire(rh, Event{Kind: EventMemoHit, Key: key, Label: label, Start: time.Now(), Err: errMsg(c.err)})
			}
			return c.val, c.err, false
		}
		c.waiters++
		e.mu.Unlock()
		stop := context.AfterFunc(ctx, func() { e.unregister(c) })
		c.dedup.Add(1)
		var t0 time.Time
		if e.hooked(rh) {
			t0 = time.Now()
		}
		select {
		case <-c.done:
			if stop() {
				e.unregister(c)
			}
			if c.retired && ctx.Err() == nil && e.ctx.Err() == nil {
				// The owner aborted after every registered requester left;
				// ours raced the abort. Still live, so look the key up
				// again — the retired cell is gone from the map.
				return nil, nil, true
			}
			if e.hooked(rh) {
				e.fire(rh, Event{Kind: EventDedup, Key: key, Label: label, Start: t0, Dur: time.Since(t0), Err: errMsg(c.err)})
			}
			return c.val, c.err, false
		case <-ctx.Done():
			// The AfterFunc drops our reference (and possibly aborts).
			return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx)), false
		case <-e.ctx.Done():
			if stop() {
				e.unregister(c)
			}
			return nil, fmt.Errorf("cell %s: %w", label, context.Cause(e.ctx)), false
		}
	}
	c := &cell{key: key, label: label, done: make(chan struct{}), waiters: 1}
	if codec != nil {
		c.kind = codec.Kind
	}
	c.cctx, c.abort = context.WithCancelCause(e.ctx)
	e.cells[key] = c
	e.order = append(e.order, c)
	e.mu.Unlock()

	// Creator path: spawn the detached publisher that computes and publishes
	// the outcome, then wait exactly like any other requester — so a creator
	// whose request context is cancelled unblocks immediately while the
	// compute keeps running for (or is aborted on behalf of) the remaining
	// references. The publisher holds no reference of its own; the creator's
	// registration is what keeps a fresh cell's compute alive.
	go e.publish(c, rh, codec, compute)
	stop := context.AfterFunc(ctx, func() { e.unregister(c) })
	select {
	case <-c.done:
		if stop() {
			e.unregister(c)
		}
		if c.retired && ctx.Err() == nil && e.ctx.Err() == nil {
			// Our own compute was aborted by a racing departure (a co-waiter
			// left last while our registration raced it); still live, so ask
			// again.
			return nil, nil, true
		}
		return c.val, c.err, false
	case <-ctx.Done():
		// The AfterFunc drops the reference (and possibly aborts the cell).
		return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx)), false
	case <-e.ctx.Done():
		if stop() {
			e.unregister(c)
		}
		return nil, fmt.Errorf("cell %s: %w", label, context.Cause(e.ctx)), false
	}
}

// publish is the detached owner of one fresh cell: it resolves the outcome
// (disk, lease-coordinated compute, or plain compute), publishes it, and
// closes done. Whatever happens inside — success, error, panic, timeout,
// abort — done is closed, so no requester can block forever on this key.
func (e *Engine) publish(c *cell, rh Hook, codec *Codec, compute func(ctx context.Context) (any, error)) {
	start := time.Now()
	if v, cerr, ok := e.diskLoad(c.key, codec); ok {
		c.val, c.err, c.fromDisk = v, cerr, true
		if e.hooked(rh) {
			e.fire(rh, Event{Kind: EventDiskHit, Key: c.key, Label: c.label, Start: start, Dur: time.Since(start), Err: errMsg(cerr)})
		}
	} else if e.leases != nil && e.cache != nil && codec != nil {
		c.val, c.err, c.attempts, c.fromDisk = e.computeShared(c.cctx, rh, c.key, c.label, codec, compute)
		if c.fromDisk && e.hooked(rh) {
			e.fire(rh, Event{Kind: EventDiskHit, Key: c.key, Label: c.label, Start: start, Dur: time.Since(start), Err: errMsg(c.err)})
		}
	} else {
		c.val, c.err, c.attempts = e.run(c.cctx, rh, c.key, c.label, compute)
		e.diskStore(c.key, codec, c.val, c.err)
	}
	c.wall = time.Since(start)

	// Publish — or retire an aborted outcome so the key can be recomputed.
	// Engine-wide cancellation is not an abort: those outcomes stay, and
	// every requester sees the engine's cause as before.
	e.mu.Lock()
	if errors.Is(c.err, ErrCellAborted) && e.ctx.Err() == nil {
		c.retired = true
		delete(e.cells, c.key)
		for i, oc := range e.order {
			if oc == c {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	}
	c.completed = true
	e.mu.Unlock()
	close(c.done)
	c.abort(nil) // release the cctx timer/child bookkeeping
}

// run executes compute under the engine's retry policy and returns the final
// outcome and the number of attempts actually made. ctx is the cell's
// compute context: the engine context plus the cell's abort.
func (e *Engine) run(ctx context.Context, rh Hook, key, label string, compute func(ctx context.Context) (any, error)) (val any, err error, attempts int) {
	for {
		var t0 time.Time
		if e.hooked(rh) {
			t0 = time.Now()
		}
		val, err = e.attempt(ctx, label, compute)
		attempts++
		if e.hooked(rh) {
			e.fire(rh, Event{Kind: EventCompute, Key: key, Label: label, Start: t0, Dur: time.Since(t0), Attempt: attempts, Err: errMsg(err)})
		}
		if err == nil || !IsTransient(err) || attempts > e.pol.Retries {
			return val, err, attempts
		}
		if e.hooked(rh) {
			e.fire(rh, Event{Kind: EventRetry, Key: key, Label: label, Start: time.Now(), Attempt: attempts, Err: errMsg(err)})
		}
		select {
		case <-time.After(e.jitterBackoff(attempts - 1)):
		case <-ctx.Done():
			return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx)), attempts
		}
	}
}

// attempt runs compute once: acquire a worker slot (or fail on engine
// cancellation or cell abort), execute on a child goroutine with panic
// recovery, and wait for the result or the per-cell deadline. The child
// releases the slot when compute actually returns — a timed-out compute
// keeps its slot until then, so the pool never runs more than jobs
// simulations at once.
func (e *Engine) attempt(ctx context.Context, label string, compute func(ctx context.Context) (any, error)) (any, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx))
	}

	cancel := context.CancelFunc(func() {})
	if e.pol.CellTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.pol.CellTimeout)
	}
	defer cancel()

	type outcome struct {
		val any
		err error
	}
	ch := make(chan outcome, 1) // buffered: the child never blocks if we left
	go func() {
		defer func() { <-e.sem }()
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &PanicError{Cell: label, Reason: r, Stack: debug.Stack()}}
			}
		}()
		v, err := compute(ctx)
		ch <- outcome{val: v, err: err}
	}()

	select {
	case out := <-ch:
		return out.val, out.err
	case <-ctx.Done():
		return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx))
	}
}

// Warm evaluates fns concurrently and waits for all of them. It is the
// prefetch idiom for experiment builders: fire every cell the table needs,
// let the worker pool execute the unique ones in parallel, then assemble
// the table serially from what are now guaranteed cache hits — the
// assembly order, and hence the output bytes, never depend on the pool.
func (e *Engine) Warm(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
