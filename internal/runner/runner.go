// Package runner is the concurrent experiment engine behind the experiments
// registry. It decomposes every table and figure of the evaluation into
// *simulation cells* — one (application, model, machine config, workload,
// processor count) point of the comparison matrix, keyed by a stable
// content hash (core.CellKey) — and guarantees that each unique cell is
// simulated exactly once per Engine, however many experiments ask for it.
//
// Three mechanisms combine to make `o2kbench -exp all` cost O(unique cells)
// instead of O(experiments × cells):
//
//   - memoization: a completed cell's core.Metrics (or plan set) is cached
//     under its content hash and served to later requesters;
//   - single-flight: a cell requested while already in flight blocks its
//     requester on the one running simulation instead of starting another;
//   - a bounded worker pool: unique cells execute under a semaphore sized
//     from GOMAXPROCS (or the -jobs flag), so an entire experiment suite
//     saturates the host without oversubscribing it.
//
// Because the virtual-time simulator is fully deterministic (DESIGN.md §4),
// a cache hit is provably indistinguishable from a re-run, and table output
// is byte-identical at any worker count. The Engine also records per-cell
// wall time and hit/miss/dedup statistics; Report exposes them as the
// observability hook behind `o2kbench -runreport`.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Engine memoizes simulation cells and bounds their concurrent execution.
// The zero value is not usable; use New. An Engine is safe for concurrent
// use and is meant to be shared by every experiment of one invocation —
// sharing is where the cross-experiment cache hits come from.
type Engine struct {
	jobs int
	sem  chan struct{}

	mu    sync.Mutex
	cells map[string]*cell
	order []*cell // insertion order, for stable reports
}

// cell is one memoized computation: the single-flight slot, its result, and
// its statistics.
type cell struct {
	key   string
	label string
	done  chan struct{} // closed once val is set
	val   any
	wall  time.Duration // compute wall time (owner only)
	hits  atomic.Int64  // requests served after completion
	dedup atomic.Int64  // requests that waited on the in-flight run
}

// New returns an Engine whose worker pool admits jobs concurrent cell
// executions; jobs <= 0 selects GOMAXPROCS.
func New(jobs int) *Engine {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		jobs:  jobs,
		sem:   make(chan struct{}, jobs),
		cells: make(map[string]*cell),
	}
}

// Jobs returns the worker-pool size.
func (e *Engine) Jobs() int { return e.jobs }

// Do returns the memoized result of compute under key, running it at most
// once per Engine. The first requester becomes the owner: it acquires a
// worker slot, computes, and publishes; concurrent requesters of the same
// key block on that one execution (single-flight), and later requesters get
// the cached value immediately.
//
// compute must not call Do (directly or through a typed cell helper) —
// nested acquisition could deadlock the bounded pool. Resolve dependency
// cells *before* calling Do and capture their results in the closure, as
// the typed helpers in cells.go do with their plan cells.
func (e *Engine) Do(key, label string, compute func() any) any {
	e.mu.Lock()
	c, ok := e.cells[key]
	if ok {
		e.mu.Unlock()
		select {
		case <-c.done:
			c.hits.Add(1)
		default:
			c.dedup.Add(1)
			<-c.done
		}
		return c.val
	}
	c = &cell{key: key, label: label, done: make(chan struct{})}
	e.cells[key] = c
	e.order = append(e.order, c)
	e.mu.Unlock()

	e.sem <- struct{}{}
	start := time.Now()
	c.val = compute()
	c.wall = time.Since(start)
	<-e.sem
	close(c.done)
	return c.val
}

// Warm evaluates fns concurrently and waits for all of them. It is the
// prefetch idiom for experiment builders: fire every cell the table needs,
// let the worker pool execute the unique ones in parallel, then assemble
// the table serially from what are now guaranteed cache hits — the
// assembly order, and hence the output bytes, never depend on the pool.
func (e *Engine) Warm(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
