// Package runner is the concurrent experiment engine behind the experiments
// registry. It decomposes every table and figure of the evaluation into
// *simulation cells* — one (application, model, machine config, workload,
// processor count) point of the comparison matrix, keyed by a stable
// content hash (core.CellKey) — and guarantees that each unique cell is
// simulated exactly once per Engine, however many experiments ask for it.
//
// Three mechanisms combine to make `o2kbench -exp all` cost O(unique cells)
// instead of O(experiments × cells):
//
//   - memoization: a completed cell's core.Metrics (or plan set) is cached
//     under its content hash and served to later requesters;
//   - single-flight: a cell requested while already in flight blocks its
//     requester on the one running simulation instead of starting another;
//   - a bounded worker pool: unique cells execute under a semaphore sized
//     from GOMAXPROCS (or the -jobs flag), so an entire experiment suite
//     saturates the host without oversubscribing it.
//
// Because the virtual-time simulator is fully deterministic (DESIGN.md §4),
// a cache hit is provably indistinguishable from a re-run, and table output
// is byte-identical at any worker count. The Engine also records per-cell
// wall time and hit/miss/dedup statistics; Report exposes them as the
// observability hook behind `o2kbench -runreport`.
//
// Cells carry errors, not just values (DESIGN.md §5.3): a compute that
// panics, times out, or fails is published as the cell's error and served to
// every requester, so one wedged cell degrades one table entry instead of
// deadlocking the run. The engine is cancellable as a whole (NewWithPolicy's
// context), bounds each attempt with a per-cell timeout, and retries
// failures marked Transient with exponential backoff.
package runner

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"o2k/internal/runner/diskcache"
	"o2k/internal/runner/lease"
)

// Policy is the engine's fault-tolerance configuration. The zero value means
// no per-cell timeout and no retries — every failure is final on the first
// attempt.
type Policy struct {
	// CellTimeout bounds each compute attempt; 0 means no bound. On expiry
	// the attempt's requesters get context.DeadlineExceeded while the
	// compute goroutine keeps its worker slot until it actually returns
	// (the sim stall watchdog guarantees it eventually does), so the pool
	// is never oversubscribed.
	CellTimeout time.Duration
	// Retries is the number of extra attempts granted to a compute whose
	// error is marked Transient. Deterministic failures are never retried.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt.
	// 0 selects 10ms when Retries > 0. Each sleep is jittered over
	// [b/2, b]: pure doubling synchronizes retry storms the moment N
	// processes share one cache directory and hit the same flaky resource
	// together, while equal jitter keeps the mean and the cap.
	Backoff time.Duration
	// Seed seeds the jitter stream. 0 derives a per-process seed (the
	// desynchronization is the point); tests that need reproducible sleeps
	// set it explicitly.
	Seed int64
}

// backoff returns the un-jittered sleep cap before retry attempt i
// (0-based); the engine jitters it at sleep time.
func (p Policy) backoff(i int) time.Duration {
	b := p.Backoff
	if b <= 0 {
		b = 10 * time.Millisecond
	}
	return b << i
}

// Engine memoizes simulation cells and bounds their concurrent execution.
// The zero value is not usable; use New or NewWithPolicy. An Engine is safe
// for concurrent use and is meant to be shared by every experiment of one
// invocation — sharing is where the cross-experiment cache hits come from.
type Engine struct {
	jobs   int
	sem    chan struct{}
	pol    Policy
	ctx    context.Context
	cancel context.CancelCauseFunc

	cache  *diskcache.Cache // persistent cell cache, nil when memory-only
	leases *lease.Manager   // cross-process single-flight, nil when solo
	hook   Hook             // cell lifecycle observer, nil when silent

	rngMu sync.Mutex
	rng   *rand.Rand // retry-backoff jitter stream

	mu    sync.Mutex
	cells map[string]*cell
	order []*cell // insertion order, for stable reports
}

// cell is one memoized computation: the single-flight slot, its result or
// error, and its statistics. val, err, wall, and attempts are written only
// by the owner goroutine before done is closed; readers must observe done
// first (close(done) is the publication barrier).
type cell struct {
	key      string
	label    string
	kind     string        // codec classification ("metrics", "plan"), "" if memory-only
	done     chan struct{} // closed once val/err are set
	val      any
	err      error
	wall     time.Duration // compute wall time across all attempts
	attempts int           // times compute actually ran
	fromDisk bool          // outcome restored from the persistent cache
	hits     atomic.Int64  // requests served after completion
	dedup    atomic.Int64  // requests that waited on the in-flight run
}

// New returns an Engine whose worker pool admits jobs concurrent cell
// executions; jobs <= 0 selects GOMAXPROCS. The engine has a zero Policy
// and a background context — use NewWithPolicy for timeouts, retries, or
// engine-wide cancellation.
func New(jobs int) *Engine {
	return NewWithPolicy(context.Background(), jobs, Policy{})
}

// NewWithPolicy is New with fault-tolerance configuration: cancelling ctx
// (or calling Cancel) aborts every pending and future cell request, and pol
// sets the per-cell timeout and retry budget.
func NewWithPolicy(ctx context.Context, jobs int, pol Policy) *Engine {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ectx, cancel := context.WithCancelCause(ctx)
	seed := pol.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
	}
	return &Engine{
		jobs:   jobs,
		sem:    make(chan struct{}, jobs),
		pol:    pol,
		ctx:    ectx,
		cancel: cancel,
		rng:    rand.New(rand.NewSource(seed)),
		cells:  make(map[string]*cell),
	}
}

// jitterBackoff maps the policy's doubling cap for retry attempt i to an
// equal-jitter sleep: uniform over [cap/2, cap].
func (e *Engine) jitterBackoff(i int) time.Duration {
	b := e.pol.backoff(i)
	e.rngMu.Lock()
	d := b/2 + time.Duration(e.rng.Int63n(int64(b/2)+1))
	e.rngMu.Unlock()
	return d
}

// Jobs returns the worker-pool size.
func (e *Engine) Jobs() int { return e.jobs }

// Cancel aborts the engine: every blocked requester unblocks with cause
// (context.Canceled if nil) and future requests fail fast. In-flight compute
// goroutines run to completion but publish the cancellation error.
func (e *Engine) Cancel(cause error) { e.cancel(cause) }

// Do returns the memoized result of compute under key, running it at most
// once per Engine. The first requester becomes the owner: it acquires a
// worker slot, computes (with the Policy's timeout and retry budget), and
// publishes; concurrent requesters of the same key block on that one
// execution (single-flight), and later requesters get the cached outcome
// immediately. Failures are outcomes too: a panic, timeout, or returned
// error is published as the cell's error to every requester — waiters
// always unblock, and a subsequent request of the same key returns the
// cached error without recomputing.
//
// compute receives a context cancelled at the per-cell deadline or on
// engine cancellation; long-running computes may observe it, but the
// simulation runtime's stall watchdog is the backstop for those that don't.
//
// compute must not call Do (directly or through a typed cell helper) —
// nested acquisition could deadlock the bounded pool. Resolve dependency
// cells *before* calling Do and capture their results in the closure, as
// the typed helpers in cells.go do with their plan cells.
func (e *Engine) Do(key, label string, compute func(ctx context.Context) (any, error)) (any, error) {
	return e.DoCached(key, label, nil, compute)
}

// DoCached is Do for cells that also persist across processes: when the
// engine has a cache (SetCache) and codec is non-nil, the owner consults
// the disk before computing and writes the outcome back after. Disk is
// strictly a third tier behind the in-memory map and the single-flight
// slot — a warm entry costs one read, and every disk failure (absent,
// unreadable, corrupt, stale) silently falls through to compute, so cached
// and uncached runs are byte-identical by construction.
func (e *Engine) DoCached(key, label string, codec *Codec, compute func(ctx context.Context) (any, error)) (any, error) {
	e.mu.Lock()
	if c, ok := e.cells[key]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
			c.hits.Add(1)
			if e.hook != nil {
				e.hook(Event{Kind: EventMemoHit, Key: key, Label: label, Start: time.Now(), Err: errMsg(c.err)})
			}
		default:
			c.dedup.Add(1)
			var t0 time.Time
			if e.hook != nil {
				t0 = time.Now()
			}
			select {
			case <-c.done:
			case <-e.ctx.Done():
				return nil, fmt.Errorf("cell %s: %w", label, context.Cause(e.ctx))
			}
			if e.hook != nil {
				e.hook(Event{Kind: EventDedup, Key: key, Label: label, Start: t0, Dur: time.Since(t0), Err: errMsg(c.err)})
			}
		}
		return c.val, c.err
	}
	c := &cell{key: key, label: label, done: make(chan struct{})}
	if codec != nil {
		c.kind = codec.Kind
	}
	e.cells[key] = c
	e.order = append(e.order, c)
	e.mu.Unlock()

	// Owner path. Whatever happens inside run — success, error, panic,
	// timeout, cancellation — the cell's outcome is published and done is
	// closed, so no requester can block forever on this key.
	start := time.Now()
	if v, cerr, ok := e.diskLoad(key, codec); ok {
		c.val, c.err, c.fromDisk = v, cerr, true
		if e.hook != nil {
			e.hook(Event{Kind: EventDiskHit, Key: key, Label: label, Start: start, Dur: time.Since(start), Err: errMsg(cerr)})
		}
	} else if e.leases != nil && e.cache != nil && codec != nil {
		c.val, c.err, c.attempts, c.fromDisk = e.computeShared(key, label, codec, compute)
		if c.fromDisk && e.hook != nil {
			e.hook(Event{Kind: EventDiskHit, Key: key, Label: label, Start: start, Dur: time.Since(start), Err: errMsg(c.err)})
		}
	} else {
		c.val, c.err, c.attempts = e.run(key, label, compute)
		e.diskStore(key, codec, c.val, c.err)
	}
	c.wall = time.Since(start)
	close(c.done)
	return c.val, c.err
}

// run executes compute under the engine's retry policy and returns the final
// outcome and the number of attempts actually made.
func (e *Engine) run(key, label string, compute func(ctx context.Context) (any, error)) (val any, err error, attempts int) {
	for {
		var t0 time.Time
		if e.hook != nil {
			t0 = time.Now()
		}
		val, err = e.attempt(label, compute)
		attempts++
		if e.hook != nil {
			e.hook(Event{Kind: EventCompute, Key: key, Label: label, Start: t0, Dur: time.Since(t0), Attempt: attempts, Err: errMsg(err)})
		}
		if err == nil || !IsTransient(err) || attempts > e.pol.Retries {
			return val, err, attempts
		}
		if e.hook != nil {
			e.hook(Event{Kind: EventRetry, Key: key, Label: label, Start: time.Now(), Attempt: attempts, Err: errMsg(err)})
		}
		select {
		case <-time.After(e.jitterBackoff(attempts - 1)):
		case <-e.ctx.Done():
			return nil, fmt.Errorf("cell %s: %w", label, context.Cause(e.ctx)), attempts
		}
	}
}

// attempt runs compute once: acquire a worker slot (or fail on engine
// cancellation), execute on a child goroutine with panic recovery, and wait
// for the result or the per-cell deadline. The child releases the slot when
// compute actually returns — a timed-out compute keeps its slot until then,
// so the pool never runs more than jobs simulations at once.
func (e *Engine) attempt(label string, compute func(ctx context.Context) (any, error)) (any, error) {
	select {
	case e.sem <- struct{}{}:
	case <-e.ctx.Done():
		return nil, fmt.Errorf("cell %s: %w", label, context.Cause(e.ctx))
	}

	ctx := e.ctx
	cancel := context.CancelFunc(func() {})
	if e.pol.CellTimeout > 0 {
		ctx, cancel = context.WithTimeout(e.ctx, e.pol.CellTimeout)
	}
	defer cancel()

	type outcome struct {
		val any
		err error
	}
	ch := make(chan outcome, 1) // buffered: the child never blocks if we left
	go func() {
		defer func() { <-e.sem }()
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &PanicError{Cell: label, Reason: r, Stack: debug.Stack()}}
			}
		}()
		v, err := compute(ctx)
		ch <- outcome{val: v, err: err}
	}()

	select {
	case out := <-ch:
		return out.val, out.err
	case <-ctx.Done():
		return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx))
	}
}

// Warm evaluates fns concurrently and waits for all of them. It is the
// prefetch idiom for experiment builders: fire every cell the table needs,
// let the worker pool execute the unique ones in parallel, then assemble
// the table serially from what are now guaranteed cache hits — the
// assembly order, and hence the output bytes, never depend on the pool.
func (e *Engine) Warm(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
