package runner

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"o2k/internal/core"
	"o2k/internal/runner/diskcache"
)

// testCodec persists int cell values for the engine-level tests.
var testCodec = &Codec{
	Encode: func(v any) ([]byte, error) { return json.Marshal(v.(int)) },
	Decode: func(data []byte) (any, error) {
		var v int
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, err
		}
		return v, nil
	},
}

func cachedEngine(t *testing.T, dir string, opts ...diskcache.Option) *Engine {
	t.Helper()
	dc, err := diskcache.Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e := New(2)
	e.SetCache(dc)
	return e
}

func TestDiskCachePersistsAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/persist", 1)
	computes := 0
	compute := func(context.Context) (any, error) { computes++; return 41, nil }

	e1 := cachedEngine(t, dir)
	if v, err := e1.DoCached(key, "cell", testCodec, compute); err != nil || v.(int) != 41 {
		t.Fatalf("cold run: %v, %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}

	// A second engine over the same directory restores from disk.
	e2 := cachedEngine(t, dir)
	v, err := e2.DoCached(key, "cell", testCodec, compute)
	if err != nil || v.(int) != 41 {
		t.Fatalf("warm run: %v, %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("warm run recomputed (computes = %d)", computes)
	}
	r := e2.Report()
	if r.DiskHits != 1 || r.Disk == nil || r.Disk.Hits != 1 {
		t.Fatalf("report disk stats = DiskHits=%d Disk=%+v, want one disk hit", r.DiskHits, r.Disk)
	}
	if len(r.Cells) != 1 || !r.Cells[0].FromDisk {
		t.Fatalf("cell stat not marked FromDisk: %+v", r.Cells)
	}
}

func TestDiskCacheUncodedCellsStayMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/plain", 1)
	computes := 0
	compute := func(context.Context) (any, error) { computes++; return 1, nil }

	e1 := cachedEngine(t, dir)
	e1.Do(key, "cell", compute) // nil codec: plan-style cell
	e2 := cachedEngine(t, dir)
	e2.Do(key, "cell", compute)
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (nil-codec cells must not persist)", computes)
	}
	if n, _ := e2.Cache().Len(); n != 0 {
		t.Fatalf("%d entries on disk for nil-codec cells", n)
	}
}

func TestDiskCachePersistsDeterministicErrors(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/err", 1)
	computes := 0
	boom := errors.New("mesh exploded")
	compute := func(context.Context) (any, error) { computes++; return nil, boom }

	e1 := cachedEngine(t, dir)
	_, err1 := e1.DoCached(key, "cell", testCodec, compute)
	e2 := cachedEngine(t, dir)
	_, err2 := e2.DoCached(key, "cell", testCodec, compute)
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (deterministic error must persist)", computes)
	}
	var ce *CachedError
	if !errors.As(err2, &ce) {
		t.Fatalf("warm error = %T %v, want *CachedError", err2, err2)
	}
	if FailLabel(err2) != FailLabel(err1) || FailLabel(err2) != "FAILED(mesh exploded)" {
		t.Fatalf("warm FailLabel %q != cold %q", FailLabel(err2), FailLabel(err1))
	}
	if err2.Error() != boom.Error() {
		t.Fatalf("warm message %q, want %q", err2.Error(), boom.Error())
	}
}

func TestDiskCachePersistsPanics(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/panic", 1)
	computes := 0
	compute := func(context.Context) (any, error) { computes++; panic("blew a gasket") }

	e1 := cachedEngine(t, dir)
	_, err1 := e1.DoCached(key, "cell", testCodec, compute)
	e2 := cachedEngine(t, dir)
	_, err2 := e2.DoCached(key, "cell", testCodec, compute)
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	want := "FAILED(panic: blew a gasket)"
	if FailLabel(err1) != want || FailLabel(err2) != want {
		t.Fatalf("labels %q / %q, want %q", FailLabel(err1), FailLabel(err2), want)
	}
}

func TestDiskCacheSkipsEnvironmentalFailures(t *testing.T) {
	dir := t.TempDir()

	// Timeout: the outcome depends on the deadline, not the cell.
	dc, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := NewWithPolicy(context.Background(), 1, Policy{CellTimeout: 10 * time.Millisecond})
	e.SetCache(dc)
	release := make(chan struct{})
	_, terr := e.DoCached(core.CellKey("test/slow", 1), "slow", testCodec,
		func(ctx context.Context) (any, error) { <-release; return 1, nil })
	close(release)
	if !errors.Is(terr, context.DeadlineExceeded) {
		t.Fatalf("timeout err = %v", terr)
	}

	// Cancellation, including a custom cause.
	e2 := cachedEngine(t, dir)
	e2.Cancel(errors.New("operator stop"))
	e2.DoCached(core.CellKey("test/cancelled", 1), "c", testCodec,
		func(context.Context) (any, error) { return 1, nil })

	// Transient failure: retryable by definition.
	e3 := cachedEngine(t, dir)
	e3.DoCached(core.CellKey("test/transient", 1), "t", testCodec,
		func(context.Context) (any, error) { return nil, Transient(errors.New("flaky")) })

	if n, _ := e3.Cache().Len(); n != 0 {
		t.Fatalf("%d entries persisted for environmental failures, want 0", n)
	}
}

func TestDiskCacheCorruptPayloadRecomputes(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/corrupt-payload", 1)

	// Plant an entry whose envelope is valid but whose payload does not
	// decode as an outcome — damage the checksum cannot see.
	dc, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Put(key, []byte(`{"neither":"val-nor-err"}`)); err != nil {
		t.Fatal(err)
	}

	computes := 0
	e := cachedEngine(t, dir)
	v, cerr := e.DoCached(key, "cell", testCodec,
		func(context.Context) (any, error) { computes++; return 7, nil })
	if cerr != nil || v.(int) != 7 || computes != 1 {
		t.Fatalf("corrupt payload not recomputed: v=%v err=%v computes=%d", v, cerr, computes)
	}
	cn := e.Cache().Counters()
	if cn.Corrupt != 1 {
		t.Fatalf("counters = %+v, want corrupt=1", cn)
	}
	// The recompute overwrote the bad entry; a fresh engine now hits.
	e2 := cachedEngine(t, dir)
	if v, err := e2.DoCached(key, "cell", testCodec,
		func(context.Context) (any, error) { computes++; return 7, nil }); err != nil || v.(int) != 7 || computes != 1 {
		t.Fatalf("rewritten entry not served: %v %v computes=%d", v, err, computes)
	}
}

func TestDiskCacheWriteFailuresDoNotAffectRun(t *testing.T) {
	ffs := diskcache.NewFaultFS(nil)
	ffs.FailWrites(errors.New("injected ENOSPC"))
	e := cachedEngine(t, t.TempDir(), diskcache.WithFS(ffs))

	key := core.CellKey("test/unwritable", 1)
	v, err := e.DoCached(key, "cell", testCodec, func(context.Context) (any, error) { return 9, nil })
	if err != nil || v.(int) != 9 {
		t.Fatalf("run affected by write failure: %v, %v", v, err)
	}
	if cn := e.Cache().Counters(); cn.PutErrs != 1 {
		t.Fatalf("counters = %+v, want put_errs=1", cn)
	}
	// Memoized in memory regardless.
	computes := 0
	if v, _ := e.DoCached(key, "cell", testCodec, func(context.Context) (any, error) { computes++; return 9, nil }); v.(int) != 9 || computes != 0 {
		t.Fatal("in-memory memoization broken under write failures")
	}
}

func TestDiskCacheReadFaultsDegradeToCompute(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/unreadable", 1)
	e1 := cachedEngine(t, dir)
	if _, err := e1.DoCached(key, "cell", testCodec, func(context.Context) (any, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}

	ffs := diskcache.NewFaultFS(nil)
	ffs.FailReads(errors.New("injected EIO"))
	e2 := cachedEngine(t, dir, diskcache.WithFS(ffs))
	computes := 0
	v, err := e2.DoCached(key, "cell", testCodec, func(context.Context) (any, error) { computes++; return 3, nil })
	if err != nil || v.(int) != 3 || computes != 1 {
		t.Fatalf("read fault not degraded to compute: %v %v computes=%d", v, err, computes)
	}
	r := e2.Report()
	if r.Disk == nil || r.Disk.ReadErrs != 1 || r.DiskHits != 0 {
		t.Fatalf("report disk stats = %+v DiskHits=%d", r.Disk, r.DiskHits)
	}
}
