package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"o2k/internal/core"
	"o2k/internal/runner/diskcache"
	"o2k/internal/runner/lease"
)

// leasedEngine builds an engine whose disk cache and lease manager share dir,
// as one worker process of a fleet would.
func leasedEngine(t *testing.T, dir, owner string) *Engine {
	t.Helper()
	e := cachedEngine(t, dir)
	e.SetLeases(lease.New(lease.Config{
		Dir:       dir,
		Owner:     owner,
		Heartbeat: 5 * time.Millisecond,
		Stale:     200 * time.Millisecond,
		Poll:      5 * time.Millisecond,
		Grace:     -1,
		Seed:      1,
	}))
	return e
}

// TestLeaseCrossEngineSingleFlight is the in-process model of two worker
// processes hitting the same cold cell: exactly one pays for the compute, the
// other adopts the committed entry off disk.
func TestLeaseCrossEngineSingleFlight(t *testing.T) {
	dir := t.TempDir()
	key := core.CellKey("test/shared", 1)
	var computes atomic.Int64
	compute := func(context.Context) (any, error) {
		computes.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the lease long enough to collide
		return 7, nil
	}

	e1 := leasedEngine(t, dir, "host:1:aaaaaaaa")
	e2 := leasedEngine(t, dir, "host:2:bbbbbbbb")

	var wg sync.WaitGroup
	vals := make([]any, 2)
	errs := make([]error, 2)
	for i, e := range []*Engine{e1, e2} {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			vals[i], errs[i] = e.DoCached(key, "cell", testCodec, compute)
		}(i, e)
	}
	wg.Wait()

	for i := range vals {
		if errs[i] != nil || vals[i].(int) != 7 {
			t.Fatalf("engine %d: %v, %v", i, vals[i], errs[i])
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1 (cross-process single-flight)", n)
	}
	r1, r2 := e1.Report(), e2.Report()
	if r1.Lease == nil || r2.Lease == nil {
		t.Fatal("reports lack lease stats despite an attached manager")
	}
	if got := r1.Lease.Acquired + r2.Lease.Acquired; got != 1 {
		t.Fatalf("total leases acquired = %d, want 1", got)
	}
	if got := r1.DiskHits + r2.DiskHits; got != 1 {
		t.Fatalf("total disk adoptions = %d, want 1 (the waiter's)", got)
	}
}

// TestLeaseFaultsStillComputeCells pins the degradation invariant one level
// up: with every lease-file operation failing, DoCached still computes and
// returns the value — leases are an economy, never a correctness gate.
func TestLeaseFaultsStillComputeCells(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected")
	ffs := diskcache.NewFaultFS(nil)
	ffs.MatchPath(".lease")
	ffs.FailReads(boom)
	ffs.FailWrites(boom)
	ffs.FailLinks(boom)

	e := cachedEngine(t, dir)
	e.SetLeases(lease.New(lease.Config{Dir: dir, FS: ffs, Seed: 1}))
	v, err := e.DoCached(core.CellKey("test/degraded", 1), "cell", testCodec,
		func(context.Context) (any, error) { return 11, nil })
	if err != nil || v.(int) != 11 {
		t.Fatalf("DoCached under total lease failure = %v, %v; want the computed value", v, err)
	}
	if r := e.Report(); r.Lease == nil || r.Lease.Degraded == 0 {
		t.Fatalf("report lease stats = %+v, want Degraded > 0", r.Lease)
	}
	// The entry must still have been committed (cache path is healthy).
	e2 := cachedEngine(t, dir)
	recomputed := false
	if _, err := e2.DoCached(core.CellKey("test/degraded", 1), "cell", testCodec,
		func(context.Context) (any, error) { recomputed = true; return 11, nil }); err != nil {
		t.Fatal(err)
	}
	if recomputed {
		t.Fatal("degraded compute did not commit its entry")
	}
}

// TestJitterBackoffSeeded pins the retry-jitter satellite: equal-jitter over
// [b/2, b], and byte-for-byte reproducible under an explicit Policy.Seed.
func TestJitterBackoffSeeded(t *testing.T) {
	pol := Policy{Backoff: 80 * time.Millisecond, Seed: 42}
	e1 := NewWithPolicy(context.Background(), 1, pol)
	e2 := NewWithPolicy(context.Background(), 1, pol)
	for i := 0; i < 6; i++ {
		b := pol.backoff(i)
		d1, d2 := e1.jitterBackoff(i), e2.jitterBackoff(i)
		if d1 != d2 {
			t.Fatalf("attempt %d: seeded jitter not reproducible (%v vs %v)", i, d1, d2)
		}
		if d1 < b/2 || d1 > b {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", i, d1, b/2, b)
		}
	}
}
