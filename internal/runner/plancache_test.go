package runner

// Plan-tier persistence and fault semantics: the structure/plan cells added
// for millisecond warm runs must round-trip through the disk cache across
// engine instances, and every way a plan entry can go bad — bit rot, read
// errors, garbage files, well-framed payloads that fail the plan decoder —
// must degrade to recomputation with identical plans, never surface as a
// run error.

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/cg"
	"o2k/internal/runner/diskcache"
)

func openDisk(t *testing.T, dir string, opts ...diskcache.Option) *diskcache.Cache {
	t.Helper()
	dc, err := diskcache.Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// meshPlanBytes resolves the mesh plans on a fresh engine over dc and
// returns their canonical serialization plus the engine's report.
func meshPlanBytes(t *testing.T, w adaptmesh.Workload, procs int, dc *diskcache.Cache) ([]byte, *Report) {
	t.Helper()
	e := New(1)
	if dc != nil {
		e.SetCache(dc)
	}
	plans, err := e.MeshPlans(context.Background(), w, procs)
	if err != nil {
		t.Fatalf("MeshPlans: %v", err)
	}
	return adaptmesh.EncodePlans(plans, procs), e.Report()
}

func TestPlanCellsPersistAcrossEngines(t *testing.T) {
	w := adaptmesh.Small()
	dir := t.TempDir()

	ref, coldRep := meshPlanBytes(t, w, 4, openDisk(t, dir))
	if coldRep.PlanDiskHits != 0 || coldRep.PlanCells == 0 {
		t.Fatalf("cold report: PlanDiskHits=%d PlanCells=%d", coldRep.PlanDiskHits, coldRep.PlanCells)
	}

	warm, warmRep := meshPlanBytes(t, w, 4, openDisk(t, dir))
	if !bytes.Equal(warm, ref) {
		t.Fatal("warm plans differ from cold plans")
	}
	// Both tiers — the adaptation structure and the per-P partitioning
	// decisions — must come from disk on the warm pass.
	if warmRep.PlanDiskHits < 2 {
		t.Fatalf("warm PlanDiskHits = %d, want >= 2 (structure + plan)", warmRep.PlanDiskHits)
	}
	for _, c := range warmRep.Cells {
		if c.Kind == "plan" && !c.FromDisk {
			t.Fatalf("warm run recomputed plan cell %q", c.Label)
		}
	}
}

func TestPlanTierFaultsDegradeToRecompute(t *testing.T) {
	w := adaptmesh.Small()
	dir := t.TempDir()
	ref, _ := meshPlanBytes(t, w, 4, openDisk(t, dir))

	t.Run("bit rot on every read", func(t *testing.T) {
		ffs := diskcache.NewFaultFS(nil)
		ffs.FlipBitOnRead(1 << 20)
		out, rep := meshPlanBytes(t, w, 4, openDisk(t, dir, diskcache.WithFS(ffs)))
		if !bytes.Equal(out, ref) {
			t.Fatal("bit-rotted plan cache changed the plans")
		}
		if rep.PlanDiskHits != 0 || rep.Disk.Corrupt == 0 {
			t.Fatalf("report: PlanDiskHits=%d Disk=%+v, want all-corrupt, none served", rep.PlanDiskHits, rep.Disk)
		}
	})

	t.Run("read errors on every probe", func(t *testing.T) {
		dir := t.TempDir()
		meshPlanBytes(t, w, 4, openDisk(t, dir))
		ffs := diskcache.NewFaultFS(nil)
		ffs.FailReads(errors.New("injected EIO"))
		out, rep := meshPlanBytes(t, w, 4, openDisk(t, dir, diskcache.WithFS(ffs)))
		if !bytes.Equal(out, ref) {
			t.Fatal("unreadable plan cache changed the plans")
		}
		if rep.PlanDiskHits != 0 || rep.Disk.ReadErrs == 0 {
			t.Fatalf("report: PlanDiskHits=%d Disk=%+v", rep.PlanDiskHits, rep.Disk)
		}
	})

	// A payload that passes diskcache integrity and outcome framing but fails
	// the plan decoder must be invalidated and recomputed — this is the path
	// where a corrupt plan entry could otherwise surface as a run error.
	t.Run("well-framed garbage plan payloads", func(t *testing.T) {
		dir := t.TempDir()
		dc := openDisk(t, dir)
		for _, key := range []string{meshStructKey(w), meshPlanKey(w, 4)} {
			if err := dc.Put(key, []byte("v\nnot a plan at all")); err != nil {
				t.Fatal(err)
			}
		}
		out, rep := meshPlanBytes(t, w, 4, dc)
		if !bytes.Equal(out, ref) {
			t.Fatal("garbage plan payloads changed the plans")
		}
		if rep.PlanDiskHits != 0 {
			t.Fatalf("garbage payloads were served as plans: PlanDiskHits=%d", rep.PlanDiskHits)
		}
		// The decoder rejections must have evicted both entries; a rerun
		// stores fresh ones and serves them.
		out2, rep2 := meshPlanBytes(t, w, 4, openDisk(t, dir))
		if !bytes.Equal(out2, ref) {
			t.Fatal("recovered plan cache changed the plans")
		}
		if rep2.PlanDiskHits < 2 {
			t.Fatalf("entries were not rewritten after eviction: PlanDiskHits=%d", rep2.PlanDiskHits)
		}
	})

	t.Run("truncated and mis-framed cg plan entries", func(t *testing.T) {
		cw := cg.Small()
		dir := t.TempDir()
		e := New(1)
		e.SetCache(openDisk(t, dir))
		refPlan, err := e.CGPlan(context.Background(), cw, 4)
		if err != nil {
			t.Fatal(err)
		}
		refBytes := cg.EncodePlan(refPlan)

		dc := openDisk(t, dir)
		if err := dc.Put(cgMeshKey(cw), []byte("e\n{")); err != nil { // torn error frame
			t.Fatal(err)
		}
		if err := dc.Put(cgPlanKey(cw, 4), []byte("v\no2kcgplan 1")); err != nil { // truncated plan
			t.Fatal(err)
		}
		e2 := New(1)
		e2.SetCache(dc)
		p, err := e2.CGPlan(context.Background(), cw, 4)
		if err != nil {
			t.Fatalf("corrupt cg plan entries surfaced as a run error: %v", err)
		}
		if !bytes.Equal(cg.EncodePlan(p), refBytes) {
			t.Fatal("corrupt cg plan entries changed the plan")
		}
		if rep := e2.Report(); rep.PlanDiskHits != 0 {
			t.Fatalf("corrupt entries were served: PlanDiskHits=%d", rep.PlanDiskHits)
		}
	})
}
