package runner

// Per-request cancellation semantics (DESIGN.md §5.11): a requester leaving
// an in-flight cell drops its reference; the last reference leaving aborts
// the compute and retires the cell, so the next request recomputes from
// scratch — while a cell any other live request still wants survives its
// first requester's departure untouched.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestCancelAbortsAndRetiresCell(t *testing.T) {
	e := New(2)
	var count atomic.Int32
	blocking := func(ctx context.Context) (any, error) {
		count.Add(1)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.DoCtx(ctx, "k", "cell", blocking)
		errc <- err
	}()
	waitFor(t, "compute to start", func() bool { return count.Load() == 1 })

	cancel()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled owner got %v, want a context.Canceled chain", err)
	}
	// The aborted outcome must be withdrawn: no memoized error, no report row.
	waitFor(t, "cell retirement", func() bool { return e.Report().Unique == 0 })

	// A fresh request recomputes as if the key had never been asked for.
	v, err := e.DoCtx(context.Background(), "k", "cell", func(ctx context.Context) (any, error) {
		count.Add(1)
		return 42, nil
	})
	if err != nil || v.(int) != 42 {
		t.Fatalf("recompute after retirement: v=%v err=%v", v, err)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (abort + recompute)", got)
	}
	if rep := e.Report(); rep.Unique != 1 || rep.Failures != 0 {
		t.Fatalf("report after recompute: unique=%d failures=%d, want 1/0", rep.Unique, rep.Failures)
	}
}

func TestSecondWaiterKeepsCellAliveWhenFirstLeaves(t *testing.T) {
	e := New(2)
	gate := make(chan struct{})
	var count atomic.Int32
	compute := func(ctx context.Context) (any, error) {
		count.Add(1)
		select {
		case <-gate:
			return "ok", nil
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := e.DoCtx(ctxA, "k", "cell", compute)
		errA <- err
	}()
	waitFor(t, "owner to start", func() bool { return count.Load() == 1 })

	type out struct {
		v   any
		err error
	}
	resB := make(chan out, 1)
	go func() {
		v, err := e.DoCtx(context.Background(), "k", "cell", compute)
		resB <- out{v, err}
	}()
	// B is registered once the in-flight cell shows a dedup request.
	waitFor(t, "second waiter to register", func() bool {
		rep := e.Report()
		return len(rep.Cells) == 1 && rep.Cells[0].Dedups >= 1
	})

	// A leaves; B's reference keeps the compute alive.
	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want a context.Canceled chain", err)
	}
	close(gate)
	b := <-resB
	if b.err != nil || b.v.(string) != "ok" {
		t.Fatalf("surviving waiter got v=%v err=%v, want ok", b.v, b.err)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	// The cell completed normally: memoized, not retired.
	if _, err := e.Do("k", "cell", compute); err != nil {
		t.Fatalf("memo hit after survival: %v", err)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("memo hit recomputed: %d runs", got)
	}
}

func TestEngineCancelOutcomesAreNotRetired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewWithPolicy(ctx, 2, Policy{})
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := e.DoCtx(context.Background(), "k", "cell", func(cctx context.Context) (any, error) {
			close(started)
			<-cctx.Done()
			return nil, context.Cause(cctx)
		})
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("engine cancel surfaced %v", err)
	}
	// Engine-wide cancellation keeps the outcome (the CLI's FAILED(cancelled)
	// rendering depends on it): the cell stays in the report, err and all.
	// The requester can unblock before the publisher finishes publishing, so
	// poll for the completed snapshot.
	waitFor(t, "cancelled outcome to publish", func() bool {
		rep := e.Report()
		return rep.Unique == 1 && rep.Failures == 1
	})
}

func TestRequestHookSeesOnlyItsOwnEvents(t *testing.T) {
	e := New(2)
	collect := func(dst *[]Event) (Hook, *[]Event) {
		return func(ev Event) { *dst = append(*dst, ev) }, dst
	}
	var evA, evB []Event
	hookA, _ := collect(&evA)
	hookB, _ := collect(&evB)

	ctxA := WithRequestHook(context.Background(), hookA)
	if _, err := e.DoCtx(ctxA, "k", "cell", func(ctx context.Context) (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	ctxB := WithRequestHook(context.Background(), hookB)
	if _, err := e.DoCtx(ctxB, "k", "cell", nil); err != nil {
		t.Fatal(err)
	}

	if len(evA) != 1 || evA[0].Kind != EventCompute {
		t.Fatalf("request A saw %v, want exactly one compute event", evA)
	}
	if len(evB) != 1 || evB[0].Kind != EventMemoHit {
		t.Fatalf("request B saw %v, want exactly one memo-hit event", evB)
	}
}
