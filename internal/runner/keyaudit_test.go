package runner

// Exhaustive-field audit of the plan-tier cache keys (the analogue of
// core/key_test.go for the typed key helpers in cells.go): every field of
// every workload struct must either change the cache key when mutated, or
// appear on that key's explicit exclusion list. Adding a Workload field and
// excluding it from a key without updating the list here fails this test —
// the decision to share cache entries across a knob must be deliberate.

import (
	"fmt"
	"reflect"
	"testing"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/mesh"
)

// mutant is one single-field mutation of a workload struct.
type mutant struct {
	path string // dotted field path, e.g. "Front.Radius"
	val  reflect.Value
}

// withField returns a copy of struct value w with field i replaced by nv.
func withField(w reflect.Value, i int, nv reflect.Value) reflect.Value {
	c := reflect.New(w.Type()).Elem()
	c.Set(w)
	c.Field(i).Set(nv)
	return c
}

// mutants returns one mutated copy of struct value w per leaf field,
// recursing through nested structs and non-nil pointers and emitting a
// nil→non-nil toggle (and vice versa) for pointer fields.
func mutants(t *testing.T, w reflect.Value, prefix string) []mutant {
	t.Helper()
	var out []mutant
	wt := w.Type()
	for i := 0; i < wt.NumField(); i++ {
		f := wt.Field(i)
		p := f.Name
		if prefix != "" {
			p = prefix + "." + f.Name
		}
		fv := w.Field(i)
		switch fv.Kind() {
		case reflect.Struct:
			for _, m := range mutants(t, fv, p) {
				out = append(out, mutant{m.path, withField(w, i, m.val)})
			}
		case reflect.Pointer:
			if fv.IsNil() {
				out = append(out, mutant{p, withField(w, i, reflect.New(f.Type.Elem()))})
				break
			}
			out = append(out, mutant{p, withField(w, i, reflect.Zero(f.Type))})
			for _, m := range mutants(t, fv.Elem(), p) {
				np := reflect.New(f.Type.Elem())
				np.Elem().Set(m.val)
				out = append(out, mutant{m.path, withField(w, i, np)})
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			nv := reflect.New(f.Type).Elem()
			nv.SetInt(fv.Int() + 1)
			out = append(out, mutant{p, withField(w, i, nv)})
		case reflect.Float32, reflect.Float64:
			nv := reflect.New(f.Type).Elem()
			nv.SetFloat(fv.Float() + 1.5)
			out = append(out, mutant{p, withField(w, i, nv)})
		case reflect.Bool:
			nv := reflect.New(f.Type).Elem()
			nv.SetBool(!fv.Bool())
			out = append(out, mutant{p, withField(w, i, nv)})
		case reflect.String:
			nv := reflect.New(f.Type).Elem()
			nv.SetString(fv.String() + "x")
			out = append(out, mutant{p, withField(w, i, nv)})
		default:
			t.Fatalf("workload field %s has unhandled kind %v — extend the key audit", p, fv.Kind())
		}
	}
	return out
}

// topField returns the top-level field name of a dotted path.
func topField(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return path
}

func auditKey(t *testing.T, name string, base any, key func(reflect.Value) string, excluded map[string]bool) {
	t.Helper()
	bv := reflect.ValueOf(base)
	ref := key(bv)
	seen := map[string]bool{}
	for _, m := range mutants(t, bv, "") {
		top := topField(m.path)
		seen[top] = true
		changed := key(m.val) != ref
		if want := !excluded[top]; changed != want {
			if want {
				t.Errorf("%s: mutating %s did NOT change the cache key — the field is silently excluded; either fold it into the key or add it to this audit's exclusion list", name, m.path)
			} else {
				t.Errorf("%s: mutating %s changed the cache key, but %s is on the exclusion list — entries that should be shared are not", name, m.path, top)
			}
		}
	}
	for f := range excluded {
		if !seen[f] {
			t.Errorf("%s: exclusion list names unknown field %s", name, f)
		}
	}
}

func TestPlanCacheKeysAuditEveryWorkloadField(t *testing.T) {
	// Mesh workload in both shapes: single front, and with the colliding
	// two-front variant set so the audit recurses into Collision's fields.
	meshBases := []adaptmesh.Workload{adaptmesh.Small()}
	{
		w := adaptmesh.Small()
		c := mesh.DefaultCollision(2)
		w.Collision = &c
		meshBases = append(meshBases, w)
	}

	for i, base := range meshBases {
		auditKey(t, fmt.Sprintf("mesh/structure base%d", i), base,
			func(v reflect.Value) string { return meshStructKey(v.Interface().(adaptmesh.Workload)) },
			map[string]bool{"SolveIters": true, "AuxFields": true, "SasPageMigrate": true, "NoRemap": true})
		auditKey(t, fmt.Sprintf("mesh/plans base%d", i), base,
			func(v reflect.Value) string { return meshPlanKey(v.Interface().(adaptmesh.Workload), 4) },
			map[string]bool{"SolveIters": true, "AuxFields": true, "SasPageMigrate": true})
	}

	auditKey(t, "nbody/structure", barnes.Small(),
		func(v reflect.Value) string { return nbodyStructKey(v.Interface().(barnes.Workload)) },
		nil)

	auditKey(t, "cg/mesh", cg.Small(),
		func(v reflect.Value) string { return cgMeshKey(v.Interface().(cg.Workload)) },
		map[string]bool{"Iters": true, "Sigma": true})
	auditKey(t, "cg/plan", cg.Small(),
		func(v reflect.Value) string { return cgPlanKey(v.Interface().(cg.Workload), 4) },
		map[string]bool{"Iters": true, "Sigma": true})
}

// The per-P plan keys must discriminate on the processor count (it is the
// one machine parameter that changes partitioning), and nothing else about
// the machine: two presets differing only in latency constants never appear
// in the key's inputs, so sharing across them is structural.
func TestPlanKeysDiscriminateProcs(t *testing.T) {
	if meshPlanKey(adaptmesh.Small(), 4) == meshPlanKey(adaptmesh.Small(), 8) {
		t.Error("mesh plan key ignores the processor count")
	}
	if cgPlanKey(cg.Small(), 4) == cgPlanKey(cg.Small(), 8) {
		t.Error("cg plan key ignores the processor count")
	}
}
