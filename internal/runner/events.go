package runner

import (
	"context"
	"time"
)

// The engine's observability seam. The tracing subsystem (internal/obs)
// subscribes to cell lifecycle events through a Hook; the dependency points
// only one way — obs imports runner, never the reverse — so the engine stays
// free of any exporter concern. With no hook attached the only cost on the
// request path is one nil check per event site: time.Now is never called and
// no Event is ever constructed.

// EventKind classifies one cell lifecycle event.
type EventKind uint8

// The cell lifecycle events the engine reports.
const (
	// EventCompute is one compute attempt: a span from worker-slot
	// acquisition to the attempt's outcome (including queue wait).
	EventCompute EventKind = iota
	// EventMemoHit is a request served from the in-memory cell map after
	// the cell completed (instant).
	EventMemoHit
	// EventDedup is a request that waited on the in-flight owner of its
	// cell: a span covering the wait.
	EventDedup
	// EventDiskHit is a cell restored from the persistent cache: a span
	// covering the disk load.
	EventDiskHit
	// EventRetry marks a transient failure that the policy scheduled for
	// another attempt (instant, fired before the backoff sleep).
	EventRetry
)

var eventKindNames = [...]string{"compute", "memo-hit", "dedup", "disk-hit", "retry"}

// String returns the kind's lowercase name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one cell lifecycle event. Span kinds carry a start and duration
// in host wall time; instant kinds carry only the start.
type Event struct {
	Kind    EventKind
	Key     string // cell content hash (core.CellKey)
	Label   string // human-readable cell description
	Start   time.Time
	Dur     time.Duration
	Attempt int    // 1-based attempt number (compute and retry events)
	Err     string // the outcome's failure message, "" on success
}

// Hook receives engine events. It is called synchronously from whatever
// goroutine produced the event — request goroutines and compute owners alike
// — so implementations must be safe for concurrent use and fast; anything
// expensive belongs behind a buffer.
type Hook func(Event)

// SetHook attaches an event hook to the engine. Like SetCache it must be
// called before the first Do; a nil hook (the default) keeps the engine
// silent and adds zero overhead to the request path.
func (e *Engine) SetHook(h Hook) { e.hook = h }

// reqHookKey carries a per-request Hook through a context (WithRequestHook).
type reqHookKey struct{}

// WithRequestHook returns a context that carries h as a per-request event
// hook. Every event a DoCtx/DoCachedCtx call fires for that request — and
// only that request — is also delivered to h, in addition to the engine-wide
// SetHook observer. Because all event kinds fire synchronously in the
// requester's own goroutines, a request hook sees exactly the cell
// lifecycle of its request with correct attribution, even while other
// requests share the engine — the seam the experiment server streams
// per-cell NDJSON from.
func WithRequestHook(ctx context.Context, h Hook) context.Context {
	return context.WithValue(ctx, reqHookKey{}, h)
}

// requestHook extracts the per-request hook from ctx, nil when absent.
func requestHook(ctx context.Context) Hook {
	h, _ := ctx.Value(reqHookKey{}).(Hook)
	return h
}

// fire delivers an event to the engine-wide hook and the request hook.
func (e *Engine) fire(rh Hook, ev Event) {
	if e.hook != nil {
		e.hook(ev)
	}
	if rh != nil {
		rh(ev)
	}
}

// hooked reports whether any observer would receive an event, gating the
// time.Now calls on the request path exactly as the nil-hook check used to.
func (e *Engine) hooked(rh Hook) bool { return e.hook != nil || rh != nil }

// errMsg renders an outcome error for an Event.
func errMsg(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
