package runner

import (
	"context"
	"fmt"
	"time"

	"o2k/internal/runner/lease"
)

// This file is the engine's bridge to the cross-process single-flight layer
// (internal/runner/lease, DESIGN.md §5.10). The in-memory memo map and the
// single-flight slot already guarantee each cell is computed once *per
// process*; with a lease manager attached, the owner path of DoCached
// extends that to once *per cache directory*: before computing a
// cache-missed cell, the owner takes the cell's lease, and requesters in
// other processes wait on the committed entry instead of re-simulating.
//
// The layering keeps PR 4's invariant intact: leases gate only *who
// computes*, never *what is served*. Every lease failure degrades to
// computing without exclusion, and a waiter whose foreign owner dies
// re-acquires through the manager's steal path — so a SIGKILLed worker's
// cells are reclaimed after the stale deadline, never orphaned.

// SetLeases attaches a cross-process lease manager. It must be called
// before the first Do, after SetCache (leases without a shared cache have
// nothing to coordinate and are ignored). A nil manager (the default) keeps
// single-flight process-local.
func (e *Engine) SetLeases(m *lease.Manager) { e.leases = m }

// Leases returns the attached lease manager, or nil.
func (e *Engine) Leases() *lease.Manager { return e.leases }

// computeShared is the owner path of DoCached when a lease manager is
// attached and the disk probe missed: coordinate with other processes over
// the cell's lease, and either compute under it or adopt the foreign
// owner's committed entry. fromDisk reports the latter.
func (e *Engine) computeShared(ctx context.Context, rh Hook, key, label string, codec *Codec, compute func(ctx context.Context) (any, error)) (val any, err error, attempts int, fromDisk bool) {
	for {
		l, st := e.leases.Acquire(key)
		switch st {
		case lease.Acquired:
			// Double-check the entry under the lease: between our cache probe
			// and this acquisition, a foreign owner may have committed and
			// released. Re-probing here makes the cold-cell guarantee exact —
			// each key is computed once per cache directory, not once per
			// probe-miss — which the experiment-server fleet test asserts.
			if v, cerr, ok := e.diskLoad(key, codec); ok {
				l.Release()
				return v, cerr, 0, true
			}
			// Commit the outcome before releasing: a waiter that sees the
			// lease vanish must find the entry (or conclude the outcome was
			// environmental and compute it itself).
			val, err, attempts = e.run(ctx, rh, key, label, compute)
			e.diskStore(key, codec, val, err)
			l.Release()
			return val, err, attempts, false

		case lease.Busy:
			// A live foreign owner is computing. Poll for its entry with
			// jittered backoff; Acquire's observation clock promotes the
			// owner to stale — and us to the steal path — if it dies.
			select {
			case <-time.After(e.leases.PollInterval()):
			case <-ctx.Done():
				return nil, fmt.Errorf("cell %s: %w", label, context.Cause(ctx)), 0, false
			}
			if v, cerr, ok := e.diskLoad(key, codec); ok {
				return v, cerr, 0, true
			}

		default: // lease.Degraded
			// The lease machinery is unusable for this key (I/O error, no
			// hard links, corrupt-and-unremovable lease). Compute without
			// exclusion: worst case is duplicated work, and last-rename-wins
			// on identical bytes keeps the cache coherent.
			val, err, attempts = e.run(ctx, rh, key, label, compute)
			e.diskStore(key, codec, val, err)
			return val, err, attempts, false
		}
	}
}
