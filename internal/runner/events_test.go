package runner

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"o2k/internal/core"
)

// eventLog is a minimal concurrent-safe hook for tests.
type eventLog struct {
	mu  sync.Mutex
	evs []Event
}

func (l *eventLog) hook(ev Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) byKind(k EventKind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestHookComputeAndMemoHit(t *testing.T) {
	log := &eventLog{}
	e := New(2)
	e.SetHook(log.hook)
	compute := func(context.Context) (any, error) {
		time.Sleep(time.Millisecond)
		return 42, nil
	}
	if _, err := e.Do("k1", "cell one", compute); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do("k1", "cell one", compute); err != nil {
		t.Fatal(err)
	}
	comps := log.byKind(EventCompute)
	if len(comps) != 1 {
		t.Fatalf("got %d compute events, want 1: %+v", len(comps), comps)
	}
	c := comps[0]
	if c.Key != "k1" || c.Label != "cell one" || c.Attempt != 1 || c.Err != "" {
		t.Fatalf("compute event = %+v", c)
	}
	if c.Start.IsZero() || c.Dur < time.Millisecond {
		t.Fatalf("compute span not timed: start=%v dur=%v", c.Start, c.Dur)
	}
	hits := log.byKind(EventMemoHit)
	if len(hits) != 1 || hits[0].Key != "k1" {
		t.Fatalf("got memo hits %+v, want exactly one for k1", hits)
	}
}

func TestHookDedupSpan(t *testing.T) {
	log := &eventLog{}
	e := New(2)
	e.SetHook(log.hook)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.Do("k", "slow", func(context.Context) (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	go func() {
		defer wg.Done()
		<-started
		e.Do("k", "slow", func(context.Context) (any, error) { return 1, nil })
	}()
	// Give the second requester time to block on the in-flight owner, then
	// let the owner finish.
	<-started
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	dedups := log.byKind(EventDedup)
	if len(dedups) != 1 {
		t.Fatalf("got %d dedup events, want 1", len(dedups))
	}
	if dedups[0].Dur <= 0 {
		t.Fatalf("dedup wait has no duration: %+v", dedups[0])
	}
}

func TestHookRetryAndFailure(t *testing.T) {
	log := &eventLog{}
	e := NewWithPolicy(context.Background(), 1, Policy{Retries: 2, Backoff: time.Microsecond})
	e.SetHook(log.hook)
	boom := Transient(errors.New("flaky"))
	calls := 0
	_, err := e.Do("k", "flaky cell", func(context.Context) (any, error) {
		calls++
		if calls < 3 {
			return nil, boom
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	comps := log.byKind(EventCompute)
	if len(comps) != 3 {
		t.Fatalf("got %d compute events, want 3", len(comps))
	}
	if comps[0].Err == "" || comps[2].Err != "" {
		t.Fatalf("attempt errors wrong: first=%q last=%q", comps[0].Err, comps[2].Err)
	}
	retries := log.byKind(EventRetry)
	if len(retries) != 2 {
		t.Fatalf("got %d retry events, want 2", len(retries))
	}
	if retries[0].Attempt != 1 || retries[1].Attempt != 2 {
		t.Fatalf("retry attempts = %d, %d", retries[0].Attempt, retries[1].Attempt)
	}
}

func TestHookDiskHit(t *testing.T) {
	dir := t.TempDir()
	codec := &Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v.(string)) },
		Decode: func(b []byte) (any, error) {
			var s string
			err := json.Unmarshal(b, &s)
			return s, err
		},
	}
	compute := func(context.Context) (any, error) { return "payload", nil }
	key := core.CellKey("test/hook-disk", 1)

	warm := cachedEngine(t, dir)
	if _, err := warm.DoCached(key, "cached cell", codec, compute); err != nil {
		t.Fatal(err)
	}

	log := &eventLog{}
	e := cachedEngine(t, dir)
	e.SetHook(log.hook)
	v, err := e.DoCached(key, "cached cell", codec, compute)
	if err != nil || v != "payload" {
		t.Fatalf("DoCached = %v, %v", v, err)
	}
	if n := len(log.byKind(EventCompute)); n != 0 {
		t.Fatalf("disk-served cell emitted %d compute events", n)
	}
	hits := log.byKind(EventDiskHit)
	if len(hits) != 1 || hits[0].Label != "cached cell" {
		t.Fatalf("disk hits = %+v, want one for the cached cell", hits)
	}
}

// Kind names are part of the trace-file contract (they become Chrome event
// categories); pin them.
func TestEventKindNames(t *testing.T) {
	want := map[EventKind]string{
		EventCompute: "compute", EventMemoHit: "memo-hit", EventDedup: "dedup",
		EventDiskHit: "disk-hit", EventRetry: "retry",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}
