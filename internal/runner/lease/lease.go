// Package lease is the cross-process single-flight layer of the persistent
// cell cache (DESIGN.md §5.10): per-cell lease files in the cache directory
// that let N worker processes sharing one cache agree on who computes each
// cell, while surviving any of those workers dying — even by SIGKILL — at
// any instant.
//
// A lease is a sidecar file `<key>.lease` next to the cell's entry in the
// shard layout of internal/runner/diskcache. Its one-line JSON record names
// the owner (host:pid:token), a monotonically increasing heartbeat sequence,
// and the writer's wall-clock heartbeat timestamp. The protocol:
//
//   - acquire: write the record to a temp file and hard-Link it to the lease
//     path. Link is POSIX's atomic create-exclusive across processes — two
//     racing acquirers get exactly one winner, with no lock server and no
//     O_EXCL dependence on the FS seam's WriteFile.
//   - renew: a heartbeat goroutine rewrites the record (seq+1, fresh
//     timestamp) via temp-file + rename every Heartbeat interval, first
//     re-reading the file to confirm it still owns it; discovering a foreign
//     owner marks the lease lost instead of clobbering the thief.
//   - steal: an observer considers a lease stale only after its *content*
//     (owner, seq) has not changed for Stale on the observer's own clock —
//     never by comparing the embedded timestamp against local time, so
//     cross-process clock skew cannot trigger a steal. A stale lease is
//     stolen by re-reading after a randomized backoff, removing it, and
//     re-acquiring through the normal Link path; after winning, the thief
//     waits a grace period and re-verifies ownership before reporting
//     Acquired, closing most of the window against a zombie owner's
//     in-flight renewal.
//
// Every failure on any of those paths — EPERM, a filesystem without hard
// links, a lost rename, a corrupt lease record that cannot be removed —
// degrades to Degraded, which callers must treat as "compute anyway": the
// simulator is deterministic and entry commits are last-rename-wins, so a
// broken lease layer can waste work but can never change a run's bytes or
// fail it. This extends PR 4's cache invariant one level up: leases make
// multi-process sweeps *economical*, the cache alone already makes them
// *correct*.
package lease

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"o2k/internal/runner/diskcache"
)

// Defaults for Config's tuning knobs. Heartbeat and Stale trade reclaim
// latency against steal safety: a SIGKILLed owner's cells come back after
// ~Stale, while a live owner would have to pause for the whole Stale window
// (120 missed heartbeat opportunities… well, Stale/Heartbeat of them) to be
// stolen from.
const (
	DefaultHeartbeat = 100 * time.Millisecond
	DefaultStale     = 2 * time.Second
	DefaultPoll      = 15 * time.Millisecond
	DefaultGrace     = 150 * time.Millisecond // foreign-shard deference window
)

// Status is the outcome of an Acquire attempt.
type Status int

const (
	// Acquired: the caller owns the lease and must compute the cell, then
	// Release.
	Acquired Status = iota
	// Busy: a foreign live lease (or a shard-deference grace period) covers
	// the key; the caller should poll the cache for the owner's committed
	// entry and re-Acquire if the entry never appears.
	Busy
	// Degraded: the lease machinery failed (I/O error, no hard links, …);
	// the caller must compute anyway, without mutual exclusion.
	Degraded
)

func (s Status) String() string {
	switch s {
	case Acquired:
		return "acquired"
	case Busy:
		return "busy"
	default:
		return "degraded"
	}
}

// record is the lease file's one-line JSON body.
type record struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	Seq   int64  `json:"seq"` // heartbeat sequence, bumped on every renewal
	HB    int64  `json:"hb"`  // writer-clock heartbeat, unix nanos (Sweep only)
}

// Event is one lease-protocol action, delivered to Config.Hook. The chaos
// harness's lease-owner audit is built on these: acquire/renew/release/lost
// events from every worker, merged and checked for overlapping holds.
type Event struct {
	Kind  string    `json:"ev"` // acquire | steal | renew | release | lost
	Key   string    `json:"key"`
	Owner string    `json:"owner"`
	Seq   int64     `json:"seq"`
	T     time.Time `json:"-"`
	TNano int64     `json:"t"` // T as unix nanos, for the JSONL audit stream
}

// Config parameterizes a Manager. Dir is required; everything else has a
// working default.
type Config struct {
	Dir   string      // cache directory (diskcache shard layout)
	Owner string      // unique owner id; default host:pid:token
	FS    diskcache.FS // filesystem seam; default OSFS

	Heartbeat time.Duration // renewal interval; default DefaultHeartbeat
	Stale     time.Duration // steal after this much observed silence; default DefaultStale
	Poll      time.Duration // waiter poll interval hint; default DefaultPoll
	Grace     time.Duration // foreign-shard deference window; default DefaultGrace

	// Shard/Shards bias (never partition) the cell space: an acquirer whose
	// key hashes to a foreign shard defers to that shard's owner for Grace
	// before competing, so N workers spread across the space yet any worker
	// can still cover a dead peer's cells. Shards <= 1 disables deference.
	Shard, Shards int

	Seed int64        // seeds steal backoff + poll jitter; 0 derives per-process
	Hook func(Event) // protocol observer; nil = silent
}

// Stats is a snapshot of the manager's protocol counters.
type Stats struct {
	Acquired int64 `json:"acquired"` // leases taken (including steals)
	Stolen   int64 `json:"stolen"`   // of Acquired, taken from a stale owner
	Busy     int64 `json:"busy"`     // acquire attempts that found a live foreign lease
	Degraded int64 `json:"degraded"` // lease-path failures degraded to compute-anyway
	Released int64 `json:"released"` // leases released intact
	Lost     int64 `json:"lost"`     // leases observed stolen out from under us
}

// observation is what the manager last saw in a foreign lease file, with
// the local-clock time it first saw that exact content.
type observation struct {
	owner string
	seq   int64
	since time.Time
}

// Manager coordinates this process's leases under one cache directory.
// It is safe for concurrent use by every cell the engine has in flight.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	seen  map[string]observation // foreign-lease staleness observations
	grace map[string]time.Time   // free-lease shard-deference start times
	stats Stats
}

// tmpSeq disambiguates temp files process-wide: two Managers over one
// directory in one process (one per engine) share a pid, so a per-Manager
// counter would let their temp writes collide — and a collision here is not
// cosmetic, it could Link another manager's record under our name.
var tmpSeq atomic.Int64

// New returns a Manager over cfg, filling defaults.
func New(cfg Config) *Manager {
	if cfg.FS == nil {
		cfg.FS = diskcache.OSFS{}
	}
	if cfg.Owner == "" {
		cfg.Owner = defaultOwner()
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Stale <= 0 {
		cfg.Stale = DefaultStale
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Grace < 0 {
		cfg.Grace = 0
	} else if cfg.Grace == 0 {
		cfg.Grace = DefaultGrace
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
	}
	return &Manager{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		seen:  make(map[string]observation),
		grace: make(map[string]time.Time),
	}
}

// defaultOwner builds a cluster-unique owner id. The random token makes two
// incarnations of one pid distinguishable, so a respawned worker never
// mistakes its predecessor's lease for its own.
func defaultOwner() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return fmt.Sprintf("%s:%d:%08x", host, os.Getpid(), rand.Uint32())
}

// Owner returns the manager's owner id.
func (m *Manager) Owner() string { return m.cfg.Owner }

// Stats snapshots the protocol counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// PollInterval returns a jittered waiter-poll sleep: uniformly
// [Poll/2, Poll*3/2), so N waiters on one owner spread their cache probes
// instead of stampeding in lockstep.
func (m *Manager) PollInterval() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.cfg.Poll
	return p/2 + time.Duration(m.rng.Int63n(int64(p)+1))
}

func (m *Manager) path(key string) string {
	return diskcache.SidecarPath(m.cfg.Dir, key, ".lease")
}

func (m *Manager) emit(kind, key string, seq int64) {
	if m.cfg.Hook == nil {
		return
	}
	now := time.Now()
	m.cfg.Hook(Event{Kind: kind, Key: key, Owner: m.cfg.Owner, Seq: seq, T: now, TNano: now.UnixNano()})
}

func (m *Manager) note(counter *int64) {
	m.mu.Lock()
	*counter++
	m.mu.Unlock()
}

// Acquire attempts to take the lease for key. On Acquired the returned Lease
// is live (heartbeating) and the caller must Release it after committing the
// cell. On Busy the lease is nil and a foreign owner is presumed computing.
// On Degraded the lease is nil and the caller must compute without one.
//
// Acquire never blocks on a live foreign lease — staleness is judged from
// this manager's accumulated observations, so callers are expected to poll:
// Busy now, re-Acquire after a PollInterval, and the steal logic engages by
// itself once the foreign owner has been silent for Stale.
func (m *Manager) Acquire(key string) (*Lease, Status) {
	if !diskcache.ValidKey(key) {
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}
	path := m.path(key)
	data, err := m.cfg.FS.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if m.deferToShardOwner(key) {
			m.note(&m.stats.Busy)
			return nil, Busy
		}
		return m.take(key, path, false)
	case err != nil:
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}

	rec, perr := parseRecord(data)
	if perr != nil || rec.Key != key {
		// A lease file that doesn't parse (or answers for the wrong key) is
		// garbage — bit rot, a torn tool, a doctored file. It can't be
		// heartbeating, so remove it and take its place; if even the removal
		// fails, fall back to computing without exclusion.
		if rerr := m.cfg.FS.Remove(path); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
			m.note(&m.stats.Degraded)
			return nil, Degraded
		}
		return m.take(key, path, true)
	}

	if !m.observedStale(key, rec) {
		m.note(&m.stats.Busy)
		return nil, Busy
	}

	// The owner has been silent past the stale deadline on our clock.
	// Randomized backoff desynchronizes competing stealers, then a re-read
	// confirms the silence really is ongoing before anything is removed.
	m.backoffSleep()
	data2, err2 := m.cfg.FS.ReadFile(path)
	switch {
	case errors.Is(err2, fs.ErrNotExist):
		return m.take(key, path, true)
	case err2 != nil:
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}
	rec2, perr2 := parseRecord(data2)
	if perr2 == nil && (rec2.Owner != rec.Owner || rec2.Seq != rec.Seq) {
		// The owner came back (or someone else already stole and is
		// heartbeating): restart our observation window.
		m.observe(key, rec2)
		m.note(&m.stats.Busy)
		return nil, Busy
	}
	if rerr := m.cfg.FS.Remove(path); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}
	return m.take(key, path, true)
}

// take attempts the atomic create-exclusive acquisition, and on success
// starts the heartbeat. steal marks the acquisition as a reclaim for the
// stats and the audit stream, and arms the post-steal verification grace.
func (m *Manager) take(key, path string, steal bool) (*Lease, Status) {
	rec := record{Key: key, Owner: m.cfg.Owner, Seq: 1, HB: time.Now().UnixNano()}
	data, err := json.Marshal(rec)
	if err != nil {
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}
	data = append(data, '\n')
	tmp := m.tmpPath(path)
	// The cell's shard directory may not exist yet — leases often precede
	// their entry. A MkdirAll failure surfaces as the WriteFile error below.
	m.cfg.FS.MkdirAll(filepath.Dir(path), 0o755)
	if err := m.cfg.FS.WriteFile(tmp, data, 0o644); err != nil {
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}
	lerr := m.cfg.FS.Link(tmp, path)
	m.cfg.FS.Remove(tmp)
	if lerr != nil {
		if errors.Is(lerr, fs.ErrExist) {
			// Lost the race to another acquirer; from here on it is a live
			// foreign lease.
			m.forget(key)
			m.note(&m.stats.Busy)
			return nil, Busy
		}
		m.note(&m.stats.Degraded)
		return nil, Degraded
	}

	if steal {
		// Post-steal verification: give a zombie owner whose clobbering
		// renewal raced our steal one heartbeat to surface, and yield if it
		// did. This shrinks the double-hold window to a pause landing inside
		// a microsecond-scale syscall gap (see DESIGN.md §5.10's failure
		// matrix); determinism and last-rename-wins make even that window
		// harmless to correctness.
		time.Sleep(m.cfg.Heartbeat)
		cur, err := m.cfg.FS.ReadFile(path)
		if err == nil {
			if rec2, perr := parseRecord(cur); perr == nil && rec2.Owner != m.cfg.Owner {
				m.observe(key, rec2)
				m.note(&m.stats.Busy)
				return nil, Busy
			}
		}
	}

	m.forget(key)
	m.mu.Lock()
	m.stats.Acquired++
	if steal {
		m.stats.Stolen++
	}
	m.mu.Unlock()

	l := &Lease{
		m:    m,
		key:  key,
		path: path,
		rec:  rec,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if steal {
		m.emit("steal", key, rec.Seq)
	} else {
		m.emit("acquire", key, rec.Seq)
	}
	go l.heartbeat()
	return l, Acquired
}

// tmpPath disambiguates concurrent acquisitions process-wide.
func (m *Manager) tmpPath(path string) string {
	return fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
}

// deferToShardOwner implements the shard bias: for a free lease on a
// foreign-shard key, wait out a Grace window (starting at first sight) to
// give the preferred worker time to claim it. Returns true while deferring.
func (m *Manager) deferToShardOwner(key string) bool {
	if m.cfg.Shards <= 1 || ShardOf(key, m.cfg.Shards) == m.cfg.Shard || m.cfg.Grace <= 0 {
		return false
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	start, ok := m.grace[key]
	if !ok {
		m.grace[key] = now
		return true
	}
	return now.Sub(start) < m.cfg.Grace
}

// ShardOf maps a cell key to one of n shards (FNV-1a over the key bytes).
// Exported so the orchestrator and tests agree with the manager on the
// partition.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// observedStale reports whether key's lease content has been unchanged for
// at least Stale on the local clock, tracking observations as a side effect.
func (m *Manager) observedStale(key string, rec record) bool {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	ob, ok := m.seen[key]
	if !ok || ob.owner != rec.Owner || ob.seq != rec.Seq {
		m.seen[key] = observation{owner: rec.Owner, seq: rec.Seq, since: now}
		return false
	}
	return now.Sub(ob.since) >= m.cfg.Stale
}

// observe records rec as key's current content, restarting the staleness
// window.
func (m *Manager) observe(key string, rec record) {
	m.mu.Lock()
	m.seen[key] = observation{owner: rec.Owner, seq: rec.Seq, since: time.Now()}
	m.mu.Unlock()
}

// forget drops key's observation and grace state (the lease changed hands or
// disappeared; stale bookkeeping must restart from scratch).
func (m *Manager) forget(key string) {
	m.mu.Lock()
	delete(m.seen, key)
	delete(m.grace, key)
	m.mu.Unlock()
}

// backoffSleep sleeps a random fraction of a heartbeat before a steal, so
// competing stealers don't remove/link in lockstep.
func (m *Manager) backoffSleep() {
	m.mu.Lock()
	d := time.Duration(m.rng.Int63n(int64(m.cfg.Heartbeat) + 1))
	m.mu.Unlock()
	time.Sleep(d)
}

func parseRecord(data []byte) (record, error) {
	var r record
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, err
	}
	if r.Owner == "" {
		return r, errors.New("lease: record has no owner")
	}
	return r, nil
}

// Lease is a held per-cell lease: a background heartbeat renews it until
// Release (or until it is observed stolen).
type Lease struct {
	m    *Manager
	key  string
	path string

	mu   sync.Mutex
	rec  record
	lost bool

	stop chan struct{} // closed by Release
	done chan struct{} // closed when the heartbeat goroutine exits
}

// Key returns the cell key the lease covers.
func (l *Lease) Key() string { return l.key }

// Lost reports whether the lease was observed taken by another owner (e.g.
// stolen during a long local pause). The holder cannot abort a deterministic
// compute midway — and doesn't need to; Lost is telemetry, not a correctness
// signal.
func (l *Lease) Lost() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost
}

func (l *Lease) heartbeat() {
	defer close(l.done)
	t := time.NewTicker(l.m.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if !l.renew() {
				return
			}
		}
	}
}

// renew re-reads the lease to confirm ownership, then rewrites it with a
// bumped sequence via temp-file + rename. A foreign owner in the file means
// the lease was stolen: mark lost and stop heartbeating — never rename over
// a thief. I/O errors are tolerated silently: a renewal that keeps failing
// simply lets the lease age toward being stolen, which is the correct
// degradation.
func (l *Lease) renew() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost {
		return false
	}
	if data, err := l.m.cfg.FS.ReadFile(l.path); err == nil {
		if rec, perr := parseRecord(data); perr == nil && rec.Owner != l.rec.Owner {
			l.lost = true
			l.m.note(&l.m.stats.Lost)
			l.m.emit("lost", l.key, l.rec.Seq)
			return false
		}
	}
	l.rec.Seq++
	l.rec.HB = time.Now().UnixNano()
	data, err := json.Marshal(l.rec)
	if err != nil {
		return true
	}
	data = append(data, '\n')
	tmp := l.m.tmpPath(l.path)
	if err := l.m.cfg.FS.WriteFile(tmp, data, 0o644); err != nil {
		return true
	}
	if err := l.m.cfg.FS.Rename(tmp, l.path); err != nil {
		l.m.cfg.FS.Remove(tmp)
		return true
	}
	l.m.emit("renew", l.key, l.rec.Seq)
	return true
}

// Release stops the heartbeat and removes the lease file if it is still
// ours. Call it after the cell's outcome is committed to the cache, so a
// waiter that sees the lease vanish finds the entry on its next poll.
func (l *Lease) Release() {
	close(l.stop)
	<-l.done

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost {
		return
	}
	// Confirm the file is still our incarnation before removing: unlinking a
	// thief's live lease would re-open the very race the lease exists to
	// close.
	if data, err := l.m.cfg.FS.ReadFile(l.path); err == nil {
		if rec, perr := parseRecord(data); perr == nil && rec.Owner != l.rec.Owner {
			l.lost = true
			l.m.note(&l.m.stats.Lost)
			l.m.emit("lost", l.key, l.rec.Seq)
			return
		}
	}
	l.m.cfg.FS.Remove(l.path)
	l.m.note(&l.m.stats.Released)
	l.m.emit("release", l.key, l.rec.Seq)
}

// SweepStats summarizes a Sweep pass.
type SweepStats struct {
	Live  int // leases with a fresh heartbeat, left in place
	Swept int // stale or unparseable leases removed
}

// Sweep removes lease files whose writer-clock heartbeat is older than
// staleAfter (<= 0 selects DefaultStale), plus any that do not parse; live
// leases are untouched. It is the offline janitor behind `o2kbench
// -cache-verify`: after a chaos run every killed worker's leases linger, and
// this is what reclaims them. Unlike the online steal path, Sweep compares
// the embedded timestamp against the local clock — it runs on the same
// machine as the workers (the cache directory is the coordination substrate),
// where that comparison is sound.
func Sweep(dir string, fsys diskcache.FS, staleAfter time.Duration) (SweepStats, error) {
	if fsys == nil {
		fsys = diskcache.OSFS{}
	}
	if staleAfter <= 0 {
		staleAfter = DefaultStale
	}
	var st SweepStats
	shards, err := fsys.ReadDir(dir)
	if err != nil {
		return st, fmt.Errorf("lease: sweep %s: %w", dir, err)
	}
	now := time.Now()
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := fsys.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, ".lease") {
				continue
			}
			key := strings.TrimSuffix(name, ".lease")
			if !diskcache.ValidKey(key) {
				continue
			}
			path := diskcache.SidecarPath(dir, key, ".lease")
			data, err := fsys.ReadFile(path)
			if err != nil {
				continue
			}
			rec, perr := parseRecord(data)
			if perr == nil && now.Sub(time.Unix(0, rec.HB)) <= staleAfter {
				st.Live++
				continue
			}
			if fsys.Remove(path) == nil {
				st.Swept++
			}
		}
	}
	return st, nil
}
