package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"o2k/internal/runner/diskcache"
)

// key returns a syntactically valid cell key (32 lowercase hex chars)
// derived from s.
func key(s string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return fmt.Sprintf("%032x", h)
}

// fastCfg returns a Config tuned so steals happen in tens of milliseconds
// instead of seconds. Grace: -1 disables shard deference (Config normalizes
// negatives to zero).
func fastCfg(dir, owner string) Config {
	return Config{
		Dir:       dir,
		Owner:     owner,
		Heartbeat: 5 * time.Millisecond,
		Stale:     50 * time.Millisecond,
		Poll:      5 * time.Millisecond,
		Grace:     -1,
		Seed:      1,
	}
}

func TestAcquireConflictRelease(t *testing.T) {
	dir := t.TempDir()
	a := New(fastCfg(dir, "host:1:aaaaaaaa"))
	b := New(fastCfg(dir, "host:2:bbbbbbbb"))
	k := key("conflict")

	la, st := a.Acquire(k)
	if st != Acquired || la == nil {
		t.Fatalf("first acquire = %v, want Acquired", st)
	}
	if _, st := b.Acquire(k); st != Busy {
		t.Fatalf("acquire of a held lease = %v, want Busy", st)
	}
	la.Release()
	if la.Lost() {
		t.Fatal("uncontested lease reports Lost")
	}
	lb, st := b.Acquire(k)
	if st != Acquired {
		t.Fatalf("acquire after release = %v, want Acquired", st)
	}
	lb.Release()

	as, bs := a.Stats(), b.Stats()
	if as.Acquired != 1 || as.Released != 1 || as.Stolen != 0 {
		t.Fatalf("owner stats = %+v", as)
	}
	if bs.Busy != 1 || bs.Acquired != 1 || bs.Stolen != 0 {
		t.Fatalf("waiter stats = %+v", bs)
	}
}

// writeDeadLease plants a lease file as a SIGKILLed foreign worker would
// leave it: a valid record that will never heartbeat again.
func writeDeadLease(t *testing.T, dir, k string, hb time.Time) {
	t.Helper()
	rec := record{Key: k, Owner: "otherhost:99:deadbeef", Seq: 7, HB: hb.UnixNano()}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := diskcache.SidecarPath(dir, k, ".lease")
	if err := os.MkdirAll(dir+"/"+k[:2], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStealFromDeadOwner(t *testing.T) {
	dir := t.TempDir()
	k := key("orphaned")
	writeDeadLease(t, dir, k, time.Now())

	m := New(fastCfg(dir, "host:3:cccccccc"))
	deadline := time.Now().Add(10 * time.Second)
	sawBusy := false
	for {
		l, st := m.Acquire(k)
		switch st {
		case Acquired:
			if !sawBusy {
				t.Fatal("stole a fresh lease without ever observing it as Busy")
			}
			if s := m.Stats(); s.Stolen != 1 {
				t.Fatalf("stats = %+v, want exactly one steal", s)
			}
			l.Release()
			return
		case Busy:
			sawBusy = true
		default:
			t.Fatalf("acquire of an orphaned lease degraded: %v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("dead owner's lease never became stealable")
		}
		time.Sleep(m.PollInterval())
	}
}

func TestCorruptLeaseReplaced(t *testing.T) {
	dir := t.TempDir()
	k := key("corrupt")
	path := diskcache.SidecarPath(dir, k, ".lease")
	if err := os.MkdirAll(dir+"/"+k[:2], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a lease record"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := New(fastCfg(dir, "host:4:dddddddd"))
	l, st := m.Acquire(k)
	if st != Acquired {
		t.Fatalf("acquire over a corrupt lease = %v, want Acquired (replace garbage)", st)
	}
	l.Release()
}

func TestLeasePathFaultsDegrade(t *testing.T) {
	boom := errors.New("injected")
	cases := []struct {
		name string
		arm  func(f *diskcache.FaultFS)
	}{
		{"read", func(f *diskcache.FaultFS) { f.FailReads(boom) }},
		{"write", func(f *diskcache.FaultFS) { f.FailWrites(boom) }},
		{"link", func(f *diskcache.FaultFS) { f.FailLinks(boom) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ffs := diskcache.NewFaultFS(nil)
			ffs.MatchPath(".lease")
			tc.arm(ffs)
			cfg := fastCfg(t.TempDir(), "host:5:eeeeeeee")
			cfg.FS = ffs
			m := New(cfg)
			if l, st := m.Acquire(key("faulted-" + tc.name)); st != Degraded || l != nil {
				t.Fatalf("acquire under %s fault = %v, want Degraded (compute anyway)", tc.name, st)
			}
			if s := m.Stats(); s.Degraded != 1 {
				t.Fatalf("stats = %+v, want one Degraded", s)
			}
		})
	}
}

func TestRenewRenameFaultTolerated(t *testing.T) {
	ffs := diskcache.NewFaultFS(nil)
	ffs.MatchPath(".lease")
	cfg := fastCfg(t.TempDir(), "host:6:ffffffff")
	cfg.FS = ffs
	m := New(cfg)
	l, st := m.Acquire(key("renew-faulted"))
	if st != Acquired {
		t.Fatalf("acquire = %v", st)
	}
	// Renewals now lose every rename; the lease must keep working (it just
	// stops aging forward, drifting toward stealable — the designed decay).
	ffs.FailRenames(errors.New("injected"))
	time.Sleep(10 * cfg.Heartbeat)
	ffs.FailRenames(nil)
	l.Release()
	if s := m.Stats(); s.Released != 1 || s.Lost != 0 {
		t.Fatalf("stats = %+v, want a clean release despite renew faults", s)
	}
}

func TestInvalidKeyDegrades(t *testing.T) {
	m := New(fastCfg(t.TempDir(), "host:7:00000001"))
	if _, st := m.Acquire("../../evil"); st != Degraded {
		t.Fatalf("acquire of invalid key = %v, want Degraded", st)
	}
}

func TestShardOf(t *testing.T) {
	if ShardOf(key("x"), 1) != 0 || ShardOf(key("x"), 0) != 0 {
		t.Fatal("degenerate shard counts must map to 0")
	}
	counts := make([]int, 4)
	for i := 0; i < 256; i++ {
		s := ShardOf(key(fmt.Sprintf("cell-%d", i)), 4)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf out of range: %d", s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d got none of 256 keys — hash not spreading (%v)", s, counts)
		}
	}
}

func TestShardDeferenceThenCover(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir, "host:8:00000002")
	cfg.Shards = 2
	cfg.Grace = 40 * time.Millisecond
	// Pick a key owned by the *other* shard.
	var k string
	for i := 0; ; i++ {
		k = key(fmt.Sprintf("foreign-%d", i))
		if ShardOf(k, 2) != cfg.Shard {
			break
		}
	}
	m := New(cfg)
	if _, st := m.Acquire(k); st != Busy {
		t.Fatalf("first acquire of a free foreign-shard key = %v, want Busy (deference)", st)
	}
	time.Sleep(cfg.Grace + 10*time.Millisecond)
	l, st := m.Acquire(k)
	if st != Acquired {
		t.Fatalf("acquire after the grace window = %v, want Acquired (cover the dead peer)", st)
	}
	l.Release()
}

func TestSweep(t *testing.T) {
	dir := t.TempDir()
	kStale, kLive, kJunk := key("stale"), key("live"), key("junk")
	writeDeadLease(t, dir, kStale, time.Now().Add(-time.Minute))
	writeDeadLease(t, dir, kLive, time.Now())
	junkPath := diskcache.SidecarPath(dir, kJunk, ".lease")
	if err := os.MkdirAll(dir+"/"+kJunk[:2], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(junkPath, []byte("???"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Sweep(dir, nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Swept != 2 || st.Live != 1 {
		t.Fatalf("sweep = %+v, want 2 swept (stale + junk), 1 live", st)
	}
	if _, err := os.Stat(diskcache.SidecarPath(dir, kStale, ".lease")); !os.IsNotExist(err) {
		t.Fatal("stale lease survived the sweep")
	}
	if _, err := os.Stat(diskcache.SidecarPath(dir, kLive, ".lease")); err != nil {
		t.Fatal("live lease was swept")
	}
}
