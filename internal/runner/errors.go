package runner

import (
	"context"
	"errors"
	"fmt"
)

// PanicError is the cached error of a cell whose compute panicked. The owner
// goroutine recovers the panic, so a wedged or buggy cell fails with a
// diagnostic instead of crashing the process — and, critically, instead of
// leaving its done channel open and deadlocking every later requester.
type PanicError struct {
	Cell   string // the cell's human-readable label
	Reason any    // the recovered panic value
	Stack  []byte // stack of the computing goroutine at panic time
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cell %s: panic: %v", e.Cell, e.Reason)
}

// Unwrap exposes an error panic value (e.g. a *sim.ProcPanic wrapping a
// *sim.StallError) to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Reason.(error); ok {
		return err
	}
	return nil
}

// transientError marks an error as retryable under the engine's Policy.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the engine's retry policy treats the failure as
// retryable. Deterministic failures (panics, timeouts, assertion errors)
// must not be wrapped: retrying them burns attempts on the same outcome.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable via Transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// FailLabel renders a failed cell for table output: a deterministic, compact
// FAILED(<reason>) annotation. Non-failed cells render their value; failed
// cells render this, so the non-failed bytes of a table never depend on
// which cells failed.
func FailLabel(err error) string {
	// A failure restored from the persistent cache replays its original
	// rendering verbatim, keeping warm-run bytes identical to the cold run.
	var ce *CachedError
	if errors.As(err, &ce) {
		return ce.Label
	}
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return "FAILED(timeout)"
	case errors.Is(err, context.Canceled):
		return "FAILED(cancelled)"
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("FAILED(panic: %v)", pe.Reason)
	}
	return fmt.Sprintf("FAILED(%v)", err)
}
