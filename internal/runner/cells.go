package runner

import (
	"context"
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mesh"
	"o2k/internal/planio"
)

// The typed cell helpers below are the whole vocabulary the experiments
// need: one run cell per (application, model, machine config, workload),
// plus the plan cells the run cells depend on. Plans are memoized
// separately because they are shared across the three models at a given
// processor count (and, for the mesh, across ablation variants that differ
// only in run-time knobs) — exactly the sharing the serial drivers used to
// arrange by hand with RunWithPlans.
//
// Plan construction itself splits into two tiers, both persisted:
//
//   - a *structure* cell per workload (the adaptation history, the N-body
//     reference simulation, the refined CG mesh) — independent of the
//     processor count, so every P of a scaling sweep shares one entry;
//   - a *plan* cell per (workload, P) storing only the partitioning
//     decisions; the full plans are re-derived from structure + decisions
//     on decode, which is cheap, keeps entries small, and makes a decoded
//     plan equal to a computed one by construction.
//
// Machine latency/bandwidth constants never enter a structure or plan key —
// only the processor count does — so machine presets that differ only in
// timing (fig12's four classes) share every plan-tier entry.
//
// Dependency discipline: every helper resolves its plan cell *before*
// entering Do, so a goroutine never holds a worker slot while waiting for
// another cell — the bounded pool cannot deadlock, even at -jobs=1. A plan
// cell's failure propagates to every run cell that depends on it without
// starting the run.

// Res is the outcome of one metrics cell: the run's metrics, or the error
// that kept them from being produced. Experiment builders render a failed
// Res as a FAILED(<reason>) table entry (see FailLabel) and keep going —
// one bad cell degrades one entry, never the whole run.
type Res struct {
	M   core.Metrics
	Err error
}

// Failed reports whether the cell produced an error instead of metrics.
func (r Res) Failed() bool { return r.Err != nil }

// metricsRes adapts a Do outcome to a Res.
func metricsRes(v any, err error) Res {
	if err != nil {
		return Res{Err: err}
	}
	return Res{M: v.(core.Metrics)}
}

// MetricsCodec persists metrics run cells in the on-disk cache: the strict
// lossless JSON codec from core (see core/codec.go for why the round-trip
// is exact).
var MetricsCodec = &Codec{
	Kind: "metrics",
	Encode: func(v any) ([]byte, error) {
		m, ok := v.(core.Metrics)
		if !ok {
			return nil, fmt.Errorf("runner: metrics cell holds %T", v)
		}
		return core.EncodeMetrics(m)
	},
	Decode: func(data []byte) (any, error) {
		m, err := core.DecodeMetrics(data)
		if err != nil {
			return nil, err
		}
		return m, nil
	},
}

// textCodec wraps a plan-tier text serialization (internal/planio format) as
// a cache Codec. Payload bytes are stored verbatim — the cache's value
// framing is format-agnostic, so the multi-megabyte plan text is read with
// zero re-encoding passes on warm runs.
func textCodec(enc func(v any) ([]byte, error), dec func(data []byte) (any, error)) *Codec {
	return &Codec{Kind: "plan", Encode: enc, Decode: dec}
}

// meshStructWorkload strips every workload field the adaptation sequence
// does not read — the run-time knobs (solver depth, auxiliary field count,
// the CC-SAS page-migration toggle) and NoRemap, which only affects the
// per-P partitioning. What remains — grid, refinement depth, cycles, fronts,
// StaticMesh — is exactly what changes the structure.
func meshStructWorkload(w adaptmesh.Workload) adaptmesh.Workload {
	w.SolveIters = 0
	w.AuxFields = 0
	w.SasPageMigrate = false
	w.NoRemap = false
	return w
}

// meshPlanWorkload strips the workload fields that BuildPlans does not read
// (solver depth, auxiliary field count, the CC-SAS page-migration knob), so
// ablation variants that differ only in those knobs share one plan cell.
// Structural fields — grid, refinement depth, cycles, fronts, StaticMesh,
// NoRemap — stay, because they change the plans.
func meshPlanWorkload(w adaptmesh.Workload) adaptmesh.Workload {
	w.SolveIters = 0
	w.AuxFields = 0
	w.SasPageMigrate = false
	return w
}

// Plan-tier cache keys. Each folds in the payload's schema string, so a
// format change retires old entries; none folds in machine timing constants.
func meshStructKey(w adaptmesh.Workload) string {
	return core.CellKey("mesh/structure", adaptmesh.StructureSchema, meshStructWorkload(w))
}

func meshPlanKey(w adaptmesh.Workload, procs int) string {
	return core.CellKey("mesh/plans", adaptmesh.PlanSchema, meshPlanWorkload(w), procs)
}

func nbodyStructKey(w barnes.Workload) string {
	return core.CellKey("nbody/structure", barnes.StructureSchema, w)
}

// cgStructWorkload strips the fields the CG plan does not depend on: the
// iteration count and the diagonal shift are pure run-time parameters.
func cgStructWorkload(w cg.Workload) cg.Workload {
	w.Iters = 0
	w.Sigma = 0
	return w
}

func cgMeshKey(w cg.Workload) string {
	return core.CellKey("cg/mesh", cg.MeshSchema, cgStructWorkload(w))
}

func cgPlanKey(w cg.Workload, procs int) string {
	return core.CellKey("cg/plan", cg.PlanSchema, cgStructWorkload(w), procs)
}

// meshStructure returns the memoized (and persisted) adaptation history for
// the mesh workload.
func (e *Engine) meshStructure(ctx context.Context, w adaptmesh.Workload) (*adaptmesh.Structure, error) {
	sw := meshStructWorkload(w)
	codec := textCodec(
		func(v any) ([]byte, error) { return adaptmesh.EncodeStructure(v.(*adaptmesh.Structure), sw), nil },
		func(data []byte) (any, error) { return adaptmesh.DecodeStructure(data, sw) },
	)
	v, err := e.DoCachedCtx(ctx, meshStructKey(w), "mesh structure", codec, func(context.Context) (any, error) {
		return adaptmesh.BuildStructure(sw), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*adaptmesh.Structure), nil
}

// MeshPlans returns the memoized cycle plans for the mesh workload at the
// given processor count. The structure cell is resolved first (never inside
// the plan cell's compute — see the Do discipline above); the plan cell then
// persists only the per-cycle partitioning decisions.
func (e *Engine) MeshPlans(ctx context.Context, w adaptmesh.Workload, procs int) ([]*adaptmesh.CyclePlan, error) {
	st, err := e.meshStructure(ctx, w)
	if err != nil {
		return nil, err
	}
	pw := meshPlanWorkload(w)
	codec := textCodec(
		func(v any) ([]byte, error) { return adaptmesh.EncodePlans(v.([]*adaptmesh.CyclePlan), procs), nil },
		func(data []byte) (any, error) { return st.DecodePlans(data, procs) },
	)
	v, err := e.DoCachedCtx(ctx, meshPlanKey(w, procs), fmt.Sprintf("mesh plans P=%d", procs), codec, func(context.Context) (any, error) {
		return st.Plans(procs, pw.NoRemap), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*adaptmesh.CyclePlan), nil
}

// Mesh runs the adaptive-mesh application under one model on one machine
// configuration (cfg.Procs is the processor count), memoized.
func (e *Engine) Mesh(ctx context.Context, model core.Model, cfg machine.Config, w adaptmesh.Workload) Res {
	plans, err := e.MeshPlans(ctx, w, cfg.Procs)
	if err != nil {
		return Res{Err: fmt.Errorf("mesh plans: %w", err)}
	}
	key := core.CellKey("mesh/run", model, cfg, w)
	return metricsRes(e.DoCachedCtx(ctx, key, fmt.Sprintf("mesh %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return adaptmesh.RunWithPlans(model, machine.MustNew(cfg), w, plans), nil
	}))
}

// MeshModels runs the mesh application under all three models, in parallel
// where the pool allows, returning outcomes in core.AllModels order.
func (e *Engine) MeshModels(ctx context.Context, cfg machine.Config, w adaptmesh.Workload) [3]Res {
	var out [3]Res
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.Mesh(ctx, m, cfg, w) })...)
	return out
}

// MeshHybrid runs the MP+SAS hybrid mesh extension: plans are built at the
// machine's node count (one MP rank per node board).
func (e *Engine) MeshHybrid(ctx context.Context, cfg machine.Config, w adaptmesh.Workload) Res {
	m, err := machine.New(cfg)
	if err != nil {
		return Res{Err: fmt.Errorf("machine: %w", err)}
	}
	plans, err := e.MeshPlans(ctx, w, m.Nodes())
	if err != nil {
		return Res{Err: fmt.Errorf("mesh plans: %w", err)}
	}
	key := core.CellKey("mesh/hybrid", cfg, w)
	return metricsRes(e.DoCachedCtx(ctx, key, fmt.Sprintf("mesh MP+SAS P=%d", cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return adaptmesh.RunHybridWithPlans(m, w, plans), nil
	}))
}

// nbodyStructure returns the memoized (and persisted) reference-simulation
// record for the N-body workload — the force evaluations that dominate plan
// construction.
func (e *Engine) nbodyStructure(ctx context.Context, w barnes.Workload) (*barnes.Structure, error) {
	codec := textCodec(
		func(v any) ([]byte, error) { return barnes.EncodeStructure(v.(*barnes.Structure)), nil },
		func(data []byte) (any, error) { return barnes.DecodeStructure(data, w) },
	)
	v, err := e.DoCachedCtx(ctx, nbodyStructKey(w), "n-body structure", codec, func(context.Context) (any, error) {
		return barnes.BuildStructure(w), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*barnes.Structure), nil
}

// NBodyPlans returns the memoized per-step plans for the N-body workload.
// The per-P derivation (cost-zones over the captured positions) is cheap
// relative to the persisted structure, so the plan cells stay memory-only.
func (e *Engine) NBodyPlans(ctx context.Context, w barnes.Workload, procs int) ([]*barnes.StepPlan, error) {
	st, err := e.nbodyStructure(ctx, w)
	if err != nil {
		return nil, err
	}
	key := core.CellKey("nbody/plans", w, procs)
	v, err := e.DoCtx(ctx, key, fmt.Sprintf("n-body plans P=%d", procs), func(context.Context) (any, error) {
		return st.Plans(procs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*barnes.StepPlan), nil
}

// NBody runs the Barnes-Hut application under one model, memoized.
func (e *Engine) NBody(ctx context.Context, model core.Model, cfg machine.Config, w barnes.Workload) Res {
	plans, err := e.NBodyPlans(ctx, w, cfg.Procs)
	if err != nil {
		return Res{Err: fmt.Errorf("n-body plans: %w", err)}
	}
	key := core.CellKey("nbody/run", model, cfg, w)
	return metricsRes(e.DoCachedCtx(ctx, key, fmt.Sprintf("n-body %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return barnes.RunWithPlans(model, machine.MustNew(cfg), w, plans), nil
	}))
}

// NBodyModels runs the N-body application under all three models.
func (e *Engine) NBodyModels(ctx context.Context, cfg machine.Config, w barnes.Workload) [3]Res {
	var out [3]Res
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.NBody(ctx, m, cfg, w) })...)
	return out
}

// cgMesh returns the memoized (and persisted) refined snapshot for the CG
// workload, serialized in the mesh v2 global-ID format.
func (e *Engine) cgMesh(ctx context.Context, w cg.Workload) (*mesh.Mesh, error) {
	codec := textCodec(
		func(v any) ([]byte, error) {
			var pw planio.Writer
			v.(*mesh.Mesh).AppendGlobal(&pw)
			return pw.Bytes(), nil
		},
		func(data []byte) (any, error) {
			s := planio.NewScanner(data)
			m, err := mesh.DecodeGlobalFrom(s)
			if err != nil {
				return nil, err
			}
			s.Done()
			if err := s.Err(); err != nil {
				return nil, err
			}
			return m, nil
		},
	)
	sw := cgStructWorkload(w)
	v, err := e.DoCachedCtx(ctx, cgMeshKey(w), "cg mesh", codec, func(context.Context) (any, error) {
		return cg.BuildMesh(sw), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*mesh.Mesh), nil
}

// CGPlan returns the memoized static plan for the conjugate-gradient run.
// The mesh cell is resolved first; the plan cell persists the partitioning
// decision only.
func (e *Engine) CGPlan(ctx context.Context, w cg.Workload, procs int) (*cg.Plan, error) {
	m, err := e.cgMesh(ctx, w)
	if err != nil {
		return nil, err
	}
	sw := cgStructWorkload(w)
	codec := textCodec(
		func(v any) ([]byte, error) { return cg.EncodePlan(v.(*cg.Plan)), nil },
		func(data []byte) (any, error) { return cg.DecodePlan(data, sw, m, procs) },
	)
	v, err := e.DoCachedCtx(ctx, cgPlanKey(w, procs), fmt.Sprintf("cg plan P=%d", procs), codec, func(context.Context) (any, error) {
		return cg.PlanForMesh(sw, m, procs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cg.Plan), nil
}

// CG runs the conjugate-gradient application under one model, memoized.
func (e *Engine) CG(ctx context.Context, model core.Model, cfg machine.Config, w cg.Workload) Res {
	plan, err := e.CGPlan(ctx, w, cfg.Procs)
	if err != nil {
		return Res{Err: fmt.Errorf("cg plan: %w", err)}
	}
	key := core.CellKey("cg/run", model, cfg, w)
	return metricsRes(e.DoCachedCtx(ctx, key, fmt.Sprintf("cg %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return cg.RunWithPlan(model, machine.MustNew(cfg), w, plan), nil
	}))
}

// CGModels runs the conjugate-gradient application under all three models.
func (e *Engine) CGModels(ctx context.Context, cfg machine.Config, w cg.Workload) [3]Res {
	var out [3]Res
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.CG(ctx, m, cfg, w) })...)
	return out
}

// Stencil runs the regular Jacobi control application under one model;
// it has no plan stage.
func (e *Engine) Stencil(ctx context.Context, model core.Model, cfg machine.Config, w stencil.Workload) Res {
	key := core.CellKey("stencil/run", model, cfg, w)
	return metricsRes(e.DoCachedCtx(ctx, key, fmt.Sprintf("stencil %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return stencil.Run(model, machine.MustNew(cfg), w), nil
	}))
}

// modelFns adapts a per-model assignment to Warm's closure list.
func modelFns(f func(i int, m core.Model)) []func() {
	fns := make([]func(), 0, len(core.AllModels()))
	for i, m := range core.AllModels() {
		i, m := i, m
		fns = append(fns, func() { f(i, m) })
	}
	return fns
}
