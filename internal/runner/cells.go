package runner

import (
	"context"
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
)

// The typed cell helpers below are the whole vocabulary the experiments
// need: one run cell per (application, model, machine config, workload),
// plus the plan cells the run cells depend on. Plans are memoized
// separately because they are shared across the three models at a given
// processor count (and, for the mesh, across ablation variants that differ
// only in run-time knobs) — exactly the sharing the serial drivers used to
// arrange by hand with RunWithPlans.
//
// Dependency discipline: every helper resolves its plan cell *before*
// entering Do, so a goroutine never holds a worker slot while waiting for
// another cell — the bounded pool cannot deadlock, even at -jobs=1. A plan
// cell's failure propagates to every run cell that depends on it without
// starting the run.

// Res is the outcome of one metrics cell: the run's metrics, or the error
// that kept them from being produced. Experiment builders render a failed
// Res as a FAILED(<reason>) table entry (see FailLabel) and keep going —
// one bad cell degrades one entry, never the whole run.
type Res struct {
	M   core.Metrics
	Err error
}

// Failed reports whether the cell produced an error instead of metrics.
func (r Res) Failed() bool { return r.Err != nil }

// metricsRes adapts a Do outcome to a Res.
func metricsRes(v any, err error) Res {
	if err != nil {
		return Res{Err: err}
	}
	return Res{M: v.(core.Metrics)}
}

// MetricsCodec persists metrics run cells in the on-disk cache: the strict
// lossless JSON codec from core (see core/codec.go for why the round-trip
// is exact). Plan cells stay memory-only — they hold live mesh structures
// and are cheap to rebuild relative to the runs that consume them.
var MetricsCodec = &Codec{
	Encode: func(v any) ([]byte, error) {
		m, ok := v.(core.Metrics)
		if !ok {
			return nil, fmt.Errorf("runner: metrics cell holds %T", v)
		}
		return core.EncodeMetrics(m)
	},
	Decode: func(data []byte) (any, error) {
		m, err := core.DecodeMetrics(data)
		if err != nil {
			return nil, err
		}
		return m, nil
	},
}

// meshPlanWorkload strips the workload fields that BuildPlans does not read
// (solver depth, auxiliary field count, the CC-SAS page-migration knob), so
// ablation variants that differ only in those knobs share one plan cell.
// Structural fields — grid, refinement depth, cycles, fronts, StaticMesh,
// NoRemap — stay, because they change the plans.
func meshPlanWorkload(w adaptmesh.Workload) adaptmesh.Workload {
	w.SolveIters = 0
	w.AuxFields = 0
	w.SasPageMigrate = false
	return w
}

// MeshPlans returns the memoized cycle plans for the mesh workload at the
// given processor count.
func (e *Engine) MeshPlans(w adaptmesh.Workload, procs int) ([]*adaptmesh.CyclePlan, error) {
	pw := meshPlanWorkload(w)
	key := core.CellKey("mesh/plans", pw, procs)
	v, err := e.Do(key, fmt.Sprintf("mesh plans P=%d", procs), func(context.Context) (any, error) {
		return adaptmesh.BuildPlans(pw, procs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*adaptmesh.CyclePlan), nil
}

// Mesh runs the adaptive-mesh application under one model on one machine
// configuration (cfg.Procs is the processor count), memoized.
func (e *Engine) Mesh(model core.Model, cfg machine.Config, w adaptmesh.Workload) Res {
	plans, err := e.MeshPlans(w, cfg.Procs)
	if err != nil {
		return Res{Err: fmt.Errorf("mesh plans: %w", err)}
	}
	key := core.CellKey("mesh/run", model, cfg, w)
	return metricsRes(e.DoCached(key, fmt.Sprintf("mesh %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return adaptmesh.RunWithPlans(model, machine.MustNew(cfg), w, plans), nil
	}))
}

// MeshModels runs the mesh application under all three models, in parallel
// where the pool allows, returning outcomes in core.AllModels order.
func (e *Engine) MeshModels(cfg machine.Config, w adaptmesh.Workload) [3]Res {
	var out [3]Res
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.Mesh(m, cfg, w) })...)
	return out
}

// MeshHybrid runs the MP+SAS hybrid mesh extension: plans are built at the
// machine's node count (one MP rank per node board).
func (e *Engine) MeshHybrid(cfg machine.Config, w adaptmesh.Workload) Res {
	m, err := machine.New(cfg)
	if err != nil {
		return Res{Err: fmt.Errorf("machine: %w", err)}
	}
	plans, err := e.MeshPlans(w, m.Nodes())
	if err != nil {
		return Res{Err: fmt.Errorf("mesh plans: %w", err)}
	}
	key := core.CellKey("mesh/hybrid", cfg, w)
	return metricsRes(e.DoCached(key, fmt.Sprintf("mesh MP+SAS P=%d", cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return adaptmesh.RunHybridWithPlans(m, w, plans), nil
	}))
}

// NBodyPlans returns the memoized per-step plans for the N-body workload.
func (e *Engine) NBodyPlans(w barnes.Workload, procs int) ([]*barnes.StepPlan, error) {
	key := core.CellKey("nbody/plans", w, procs)
	v, err := e.Do(key, fmt.Sprintf("n-body plans P=%d", procs), func(context.Context) (any, error) {
		return barnes.BuildPlans(w, procs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*barnes.StepPlan), nil
}

// NBody runs the Barnes-Hut application under one model, memoized.
func (e *Engine) NBody(model core.Model, cfg machine.Config, w barnes.Workload) Res {
	plans, err := e.NBodyPlans(w, cfg.Procs)
	if err != nil {
		return Res{Err: fmt.Errorf("n-body plans: %w", err)}
	}
	key := core.CellKey("nbody/run", model, cfg, w)
	return metricsRes(e.DoCached(key, fmt.Sprintf("n-body %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return barnes.RunWithPlans(model, machine.MustNew(cfg), w, plans), nil
	}))
}

// NBodyModels runs the N-body application under all three models.
func (e *Engine) NBodyModels(cfg machine.Config, w barnes.Workload) [3]Res {
	var out [3]Res
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.NBody(m, cfg, w) })...)
	return out
}

// CGPlan returns the memoized static plan for the conjugate-gradient run.
func (e *Engine) CGPlan(w cg.Workload, procs int) (*cg.Plan, error) {
	key := core.CellKey("cg/plan", w, procs)
	v, err := e.Do(key, fmt.Sprintf("cg plan P=%d", procs), func(context.Context) (any, error) {
		return cg.BuildPlan(w, procs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cg.Plan), nil
}

// CG runs the conjugate-gradient application under one model, memoized.
func (e *Engine) CG(model core.Model, cfg machine.Config, w cg.Workload) Res {
	plan, err := e.CGPlan(w, cfg.Procs)
	if err != nil {
		return Res{Err: fmt.Errorf("cg plan: %w", err)}
	}
	key := core.CellKey("cg/run", model, cfg, w)
	return metricsRes(e.DoCached(key, fmt.Sprintf("cg %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return cg.RunWithPlan(model, machine.MustNew(cfg), w, plan), nil
	}))
}

// CGModels runs the conjugate-gradient application under all three models.
func (e *Engine) CGModels(cfg machine.Config, w cg.Workload) [3]Res {
	var out [3]Res
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.CG(m, cfg, w) })...)
	return out
}

// Stencil runs the regular Jacobi control application under one model;
// it has no plan stage.
func (e *Engine) Stencil(model core.Model, cfg machine.Config, w stencil.Workload) Res {
	key := core.CellKey("stencil/run", model, cfg, w)
	return metricsRes(e.DoCached(key, fmt.Sprintf("stencil %v P=%d", model, cfg.Procs), MetricsCodec, func(context.Context) (any, error) {
		return stencil.Run(model, machine.MustNew(cfg), w), nil
	}))
}

// modelFns adapts a per-model assignment to Warm's closure list.
func modelFns(f func(i int, m core.Model)) []func() {
	fns := make([]func(), 0, len(core.AllModels()))
	for i, m := range core.AllModels() {
		i, m := i, m
		fns = append(fns, func() { f(i, m) })
	}
	return fns
}
