package runner

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/apps/cg"
	"o2k/internal/apps/stencil"
	"o2k/internal/core"
	"o2k/internal/machine"
)

// The typed cell helpers below are the whole vocabulary the experiments
// need: one run cell per (application, model, machine config, workload),
// plus the plan cells the run cells depend on. Plans are memoized
// separately because they are shared across the three models at a given
// processor count (and, for the mesh, across ablation variants that differ
// only in run-time knobs) — exactly the sharing the serial drivers used to
// arrange by hand with RunWithPlans.
//
// Dependency discipline: every helper resolves its plan cell *before*
// entering Do, so a goroutine never holds a worker slot while waiting for
// another cell — the bounded pool cannot deadlock, even at -jobs=1.

// meshPlanWorkload strips the workload fields that BuildPlans does not read
// (solver depth, auxiliary field count, the CC-SAS page-migration knob), so
// ablation variants that differ only in those knobs share one plan cell.
// Structural fields — grid, refinement depth, cycles, fronts, StaticMesh,
// NoRemap — stay, because they change the plans.
func meshPlanWorkload(w adaptmesh.Workload) adaptmesh.Workload {
	w.SolveIters = 0
	w.AuxFields = 0
	w.SasPageMigrate = false
	return w
}

// MeshPlans returns the memoized cycle plans for the mesh workload at the
// given processor count.
func (e *Engine) MeshPlans(w adaptmesh.Workload, procs int) []*adaptmesh.CyclePlan {
	pw := meshPlanWorkload(w)
	key := core.CellKey("mesh/plans", pw, procs)
	v := e.Do(key, fmt.Sprintf("mesh plans P=%d", procs), func() any {
		return adaptmesh.BuildPlans(pw, procs)
	})
	return v.([]*adaptmesh.CyclePlan)
}

// Mesh runs the adaptive-mesh application under one model on one machine
// configuration (cfg.Procs is the processor count), memoized.
func (e *Engine) Mesh(model core.Model, cfg machine.Config, w adaptmesh.Workload) core.Metrics {
	plans := e.MeshPlans(w, cfg.Procs)
	key := core.CellKey("mesh/run", model, cfg, w)
	v := e.Do(key, fmt.Sprintf("mesh %v P=%d", model, cfg.Procs), func() any {
		return adaptmesh.RunWithPlans(model, machine.MustNew(cfg), w, plans)
	})
	return v.(core.Metrics)
}

// MeshModels runs the mesh application under all three models, in parallel
// where the pool allows, returning metrics in core.AllModels order.
func (e *Engine) MeshModels(cfg machine.Config, w adaptmesh.Workload) [3]core.Metrics {
	var out [3]core.Metrics
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.Mesh(m, cfg, w) })...)
	return out
}

// MeshHybrid runs the MP+SAS hybrid mesh extension: plans are built at the
// machine's node count (one MP rank per node board).
func (e *Engine) MeshHybrid(cfg machine.Config, w adaptmesh.Workload) core.Metrics {
	m := machine.MustNew(cfg)
	plans := e.MeshPlans(w, m.Nodes())
	key := core.CellKey("mesh/hybrid", cfg, w)
	v := e.Do(key, fmt.Sprintf("mesh MP+SAS P=%d", cfg.Procs), func() any {
		return adaptmesh.RunHybridWithPlans(m, w, plans)
	})
	return v.(core.Metrics)
}

// NBodyPlans returns the memoized per-step plans for the N-body workload.
func (e *Engine) NBodyPlans(w barnes.Workload, procs int) []*barnes.StepPlan {
	key := core.CellKey("nbody/plans", w, procs)
	v := e.Do(key, fmt.Sprintf("n-body plans P=%d", procs), func() any {
		return barnes.BuildPlans(w, procs)
	})
	return v.([]*barnes.StepPlan)
}

// NBody runs the Barnes-Hut application under one model, memoized.
func (e *Engine) NBody(model core.Model, cfg machine.Config, w barnes.Workload) core.Metrics {
	plans := e.NBodyPlans(w, cfg.Procs)
	key := core.CellKey("nbody/run", model, cfg, w)
	v := e.Do(key, fmt.Sprintf("n-body %v P=%d", model, cfg.Procs), func() any {
		return barnes.RunWithPlans(model, machine.MustNew(cfg), w, plans)
	})
	return v.(core.Metrics)
}

// NBodyModels runs the N-body application under all three models.
func (e *Engine) NBodyModels(cfg machine.Config, w barnes.Workload) [3]core.Metrics {
	var out [3]core.Metrics
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.NBody(m, cfg, w) })...)
	return out
}

// CGPlan returns the memoized static plan for the conjugate-gradient run.
func (e *Engine) CGPlan(w cg.Workload, procs int) *cg.Plan {
	key := core.CellKey("cg/plan", w, procs)
	v := e.Do(key, fmt.Sprintf("cg plan P=%d", procs), func() any {
		return cg.BuildPlan(w, procs)
	})
	return v.(*cg.Plan)
}

// CG runs the conjugate-gradient application under one model, memoized.
func (e *Engine) CG(model core.Model, cfg machine.Config, w cg.Workload) core.Metrics {
	plan := e.CGPlan(w, cfg.Procs)
	key := core.CellKey("cg/run", model, cfg, w)
	v := e.Do(key, fmt.Sprintf("cg %v P=%d", model, cfg.Procs), func() any {
		return cg.RunWithPlan(model, machine.MustNew(cfg), w, plan)
	})
	return v.(core.Metrics)
}

// CGModels runs the conjugate-gradient application under all three models.
func (e *Engine) CGModels(cfg machine.Config, w cg.Workload) [3]core.Metrics {
	var out [3]core.Metrics
	e.Warm(modelFns(func(i int, m core.Model) { out[i] = e.CG(m, cfg, w) })...)
	return out
}

// Stencil runs the regular Jacobi control application under one model;
// it has no plan stage.
func (e *Engine) Stencil(model core.Model, cfg machine.Config, w stencil.Workload) core.Metrics {
	key := core.CellKey("stencil/run", model, cfg, w)
	v := e.Do(key, fmt.Sprintf("stencil %v P=%d", model, cfg.Procs), func() any {
		return stencil.Run(model, machine.MustNew(cfg), w)
	})
	return v.(core.Metrics)
}

// modelFns adapts a per-model assignment to Warm's closure list.
func modelFns(f func(i int, m core.Model)) []func() {
	fns := make([]func(), 0, len(core.AllModels()))
	for i, m := range core.AllModels() {
		i, m := i, m
		fns = append(fns, func() { f(i, m) })
	}
	return fns
}
