package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/core"
	"o2k/internal/machine"
)

// ok is a compute adapter for cells that cannot fail.
func ok(v any) func(context.Context) (any, error) {
	return func(context.Context) (any, error) { return v, nil }
}

func TestDoMemoizes(t *testing.T) {
	e := New(2)
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, err := e.Do("k", "k", func(context.Context) (any, error) { calls.Add(1); return 42, nil })
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do returned %v, %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	r := e.Report()
	if r.Unique != 1 || r.Hits != 4 || r.Requests != 5 || r.Failures != 0 {
		t.Fatalf("report = %+v", r)
	}
}

func TestDoSingleFlight(t *testing.T) {
	e := New(4)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Do("slow", "slow", func(context.Context) (any, error) {
				<-gate // hold the cell in flight until everyone has asked
				calls.Add(1)
				return "done", nil
			})
			if err != nil || v.(string) != "done" {
				t.Errorf("Do returned %v, %v", v, err)
			}
		}()
	}
	// Wait until the dedup count shows every non-owner is parked, then
	// release the one running compute.
	for e.Report().Dedups != waiters-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("in-flight cell computed %d times, want 1", calls.Load())
	}
}

func TestJobsDefaultsPositive(t *testing.T) {
	if New(0).Jobs() < 1 || New(-3).Jobs() < 1 {
		t.Fatal("New must select a positive pool size")
	}
}

// TestPanickingCellDoesNotDeadlock is the headline regression test: one
// cell's compute panics while 8 goroutines request it concurrently. Every
// requester must unblock with the panic in the cell's error (no poisoned
// done channel), the owner's worker slot must be released (a subsequent
// unrelated cell still runs), and the panic reason must appear in Report.
func TestPanickingCellDoesNotDeadlock(t *testing.T) {
	for _, tc := range []struct {
		name string
		jobs int
	}{
		{"jobs=1", 1}, // one slot: a leaked slot would wedge the engine outright
		{"jobs=4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(tc.jobs)
			const requesters = 8
			errs := make(chan error, requesters)
			for i := 0; i < requesters; i++ {
				go func() {
					_, err := e.Do("bad", "bad cell", func(context.Context) (any, error) {
						panic("boom: simulated cell bug")
					})
					errs <- err
				}()
			}
			for i := 0; i < requesters; i++ {
				select {
				case err := <-errs:
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("requester %d: err = %v, want *PanicError", i, err)
					}
					if !strings.Contains(err.Error(), "boom: simulated cell bug") {
						t.Fatalf("panic reason lost: %v", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("requester %d still blocked: poisoned-cell deadlock", i)
				}
			}
			// Slot recovery: an unrelated cell must still run.
			done := make(chan struct{})
			go func() {
				if v, err := e.Do("good", "good", ok(7)); err != nil || v.(int) != 7 {
					t.Errorf("follow-up cell: %v, %v", v, err)
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("follow-up cell blocked: worker slot leaked by the panicking owner")
			}
			// The failure is memoized and visible in the report.
			if _, err := e.Do("bad", "bad cell", ok(nil)); err == nil {
				t.Fatal("re-request of the failed cell lost its error")
			}
			r := e.Report()
			if r.Failures != 1 {
				t.Fatalf("Failures = %d, want 1", r.Failures)
			}
			found := false
			for _, c := range r.Cells {
				if c.Label == "bad cell" && strings.Contains(c.Err, "boom: simulated cell bug") {
					found = true
				}
			}
			if !found {
				t.Fatalf("panic reason missing from report: %+v", r.Cells)
			}
		})
	}
}

func TestCellError(t *testing.T) {
	e := New(1)
	sentinel := errors.New("compute says no")
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		_, err := e.Do("err", "err", func(context.Context) (any, error) {
			calls.Add(1)
			return nil, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("failed cell recomputed %d times; errors must be memoized", calls.Load())
	}
}

func TestCellTimeout(t *testing.T) {
	e := NewWithPolicy(context.Background(), 2, Policy{CellTimeout: 20 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	_, err := e.Do("hang", "hang", func(context.Context) (any, error) {
		<-release // a compute that never finishes on its own
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the wait")
	}
	if got := FailLabel(err); got != "FAILED(timeout)" {
		t.Fatalf("FailLabel = %q", got)
	}
}

func TestEngineCancelUnblocksWaiters(t *testing.T) {
	e := NewWithPolicy(context.Background(), 1, Policy{})
	gate := make(chan struct{})
	defer close(gate)
	go e.Do("held", "held", func(context.Context) (any, error) { <-gate; return 1, nil })
	for e.Report().Unique != 1 {
		runtime.Gosched()
	}
	// A waiter on the in-flight cell and a requester needing the (occupied)
	// worker slot must both unblock on engine cancellation.
	errs := make(chan error, 2)
	go func() { _, err := e.Do("held", "held", ok(nil)); errs <- err }()
	go func() { _, err := e.Do("other", "other", ok(nil)); errs <- err }()
	cause := errors.New("operator abort")
	time.AfterFunc(10*time.Millisecond, func() { e.Cancel(cause) })
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, cause) {
				t.Fatalf("err = %v, want cancellation cause", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancellation did not unblock a requester")
		}
	}
}

func TestTransientRetry(t *testing.T) {
	e := NewWithPolicy(context.Background(), 1, Policy{Retries: 3, Backoff: time.Millisecond})
	var calls atomic.Int64
	v, err := e.Do("flaky", "flaky", func(context.Context) (any, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("try again"))
		}
		return "finally", nil
	})
	if err != nil || v.(string) != "finally" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("compute ran %d times, want 3", calls.Load())
	}
	r := e.Report()
	if r.Cells[0].Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", r.Cells[0].Attempts)
	}

	// A persistent transient error exhausts the budget and caches the error.
	var persist atomic.Int64
	_, err = e.Do("stillflaky", "stillflaky", func(context.Context) (any, error) {
		persist.Add(1)
		return nil, Transient(errors.New("never better"))
	})
	if err == nil || persist.Load() != 4 { // 1 attempt + 3 retries
		t.Fatalf("persistent transient: err=%v attempts=%d, want error after 4 attempts", err, persist.Load())
	}

	// Non-transient errors are never retried.
	var hard atomic.Int64
	e.Do("hard", "hard", func(context.Context) (any, error) {
		hard.Add(1)
		return nil, errors.New("deterministic failure")
	})
	if hard.Load() != 1 {
		t.Fatalf("deterministic failure retried %d times", hard.Load())
	}
}

// TestReportConcurrentWithWarm is the -race regression test for the Report
// snapshot: reading per-cell fields of in-flight cells while their owners
// write them must be race-free (publication via the done channel).
func TestReportConcurrentWithWarm(t *testing.T) {
	e := New(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Report()
			}
		}
	}()
	var fns []func()
	for i := 0; i < 64; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		fns = append(fns, func() {
			e.Do(key, key, func(context.Context) (any, error) {
				time.Sleep(time.Millisecond)
				return key, nil
			})
		})
	}
	e.Warm(fns...)
	close(stop)
	wg.Wait()
	r := e.Report()
	if r.Unique == 0 || r.Failures != 0 {
		t.Fatalf("report after warm = %+v", r)
	}
}

// TestMeshCellMatchesDirect pins the cell path to the direct RunWithPlans
// path: memoization must be semantically invisible.
func TestMeshCellMatchesDirect(t *testing.T) {
	w := adaptmesh.Small()
	cfg := machine.Default(4)
	direct := adaptmesh.RunWithPlans(core.SAS, machine.MustNew(cfg), w, adaptmesh.BuildPlans(w, 4))
	cell := New(2).Mesh(context.Background(), core.SAS, cfg, w)
	if cell.Failed() {
		t.Fatalf("cell failed: %v", cell.Err)
	}
	if direct.Fingerprint() != cell.M.Fingerprint() {
		t.Fatalf("cell metrics diverge from direct run:\n cell   %v\n direct %v", cell.M, direct)
	}
}

// TestCacheCorrectness re-requests the same cells and demands 100% cache
// hits with identical metrics.
func TestCacheCorrectness(t *testing.T) {
	e := New(2)
	w := barnes.Small()
	cfg := machine.Default(2)
	first := e.NBodyModels(context.Background(), cfg, w)
	misses := e.Report().Unique
	second := e.NBodyModels(context.Background(), cfg, w)
	r := e.Report()
	if r.Unique != misses {
		t.Fatalf("second request simulated %d new cells, want 0", r.Unique-misses)
	}
	for i := range first {
		if first[i].Failed() || second[i].Failed() {
			t.Fatalf("cell failed: %v / %v", first[i].Err, second[i].Err)
		}
		if first[i].M.Fingerprint() != second[i].M.Fingerprint() {
			t.Fatalf("model %d: cached metrics differ from first run", i)
		}
	}
}

// TestMeshPlanKeyNormalization checks that ablation knobs the plan builder
// ignores do not split the plan cell.
func TestMeshPlanKeyNormalization(t *testing.T) {
	e := New(2)
	w := adaptmesh.Small()
	if _, err := e.MeshPlans(context.Background(), w, 2); err != nil {
		t.Fatal(err)
	}
	base := e.Report().Unique

	wMig := w
	wMig.SasPageMigrate = true
	e.MeshPlans(context.Background(), wMig, 2)
	if got := e.Report().Unique; got != base {
		t.Fatalf("SasPageMigrate split the plan cell (%d -> %d unique)", base, got)
	}

	// NoRemap changes the plans and must get its own cell.
	wOff := w
	wOff.NoRemap = true
	e.MeshPlans(context.Background(), wOff, 2)
	if got := e.Report().Unique; got != base+1 {
		t.Fatalf("NoRemap plan cell not separate (%d -> %d unique)", base, got)
	}
}

func TestReportHitRate(t *testing.T) {
	e := New(1)
	e.Do("a", "a", ok(1))
	e.Do("a", "a", ok(1))
	e.Do("b", "b", ok(2))
	r := e.Report()
	if got, want := r.HitRate(), 1.0/3.0; got != want {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
	if tb := r.Table(); len(tb.Rows) != 4+r.Unique {
		t.Fatalf("report table has %d rows, want %d", len(tb.Rows), 4+r.Unique)
	}
}

func TestFailLabel(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.DeadlineExceeded, "FAILED(timeout)"},
		{context.Canceled, "FAILED(cancelled)"},
		{&PanicError{Cell: "c", Reason: "boom"}, "FAILED(panic: boom)"},
		{errors.New("plain"), "FAILED(plain)"},
	} {
		if got := FailLabel(tc.err); got != tc.want {
			t.Errorf("FailLabel(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
	if !IsTransient(Transient(errors.New("x"))) || IsTransient(errors.New("x")) || Transient(nil) != nil {
		t.Fatal("Transient/IsTransient misbehave")
	}
}
