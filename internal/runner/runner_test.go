package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/apps/barnes"
	"o2k/internal/core"
	"o2k/internal/machine"
)

func TestDoMemoizes(t *testing.T) {
	e := New(2)
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v := e.Do("k", "k", func() any { calls.Add(1); return 42 })
		if v.(int) != 42 {
			t.Fatalf("Do returned %v", v)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	r := e.Report()
	if r.Unique != 1 || r.Hits != 4 || r.Requests != 5 {
		t.Fatalf("report = %+v", r)
	}
}

func TestDoSingleFlight(t *testing.T) {
	e := New(4)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := e.Do("slow", "slow", func() any {
				<-gate // hold the cell in flight until everyone has asked
				calls.Add(1)
				return "done"
			})
			if v.(string) != "done" {
				t.Errorf("Do returned %v", v)
			}
		}()
	}
	// Wait until the dedup count shows every non-owner is parked, then
	// release the one running compute.
	for e.Report().Dedups != waiters-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("in-flight cell computed %d times, want 1", calls.Load())
	}
}

func TestJobsDefaultsPositive(t *testing.T) {
	if New(0).Jobs() < 1 || New(-3).Jobs() < 1 {
		t.Fatal("New must select a positive pool size")
	}
}

// TestMeshCellMatchesDirect pins the cell path to the direct RunWithPlans
// path: memoization must be semantically invisible.
func TestMeshCellMatchesDirect(t *testing.T) {
	w := adaptmesh.Small()
	cfg := machine.Default(4)
	direct := adaptmesh.RunWithPlans(core.SAS, machine.MustNew(cfg), w, adaptmesh.BuildPlans(w, 4))
	cell := New(2).Mesh(core.SAS, cfg, w)
	if direct.Fingerprint() != cell.Fingerprint() {
		t.Fatalf("cell metrics diverge from direct run:\n cell   %v\n direct %v", cell, direct)
	}
}

// TestCacheCorrectness re-requests the same cells and demands 100% cache
// hits with identical metrics.
func TestCacheCorrectness(t *testing.T) {
	e := New(2)
	w := barnes.Small()
	cfg := machine.Default(2)
	first := e.NBodyModels(cfg, w)
	misses := e.Report().Unique
	second := e.NBodyModels(cfg, w)
	r := e.Report()
	if r.Unique != misses {
		t.Fatalf("second request simulated %d new cells, want 0", r.Unique-misses)
	}
	for i := range first {
		if first[i].Fingerprint() != second[i].Fingerprint() {
			t.Fatalf("model %d: cached metrics differ from first run", i)
		}
	}
}

// TestMeshPlanKeyNormalization checks that ablation knobs the plan builder
// ignores do not split the plan cell.
func TestMeshPlanKeyNormalization(t *testing.T) {
	e := New(2)
	w := adaptmesh.Small()
	e.MeshPlans(w, 2)
	base := e.Report().Unique

	wMig := w
	wMig.SasPageMigrate = true
	e.MeshPlans(wMig, 2)
	if got := e.Report().Unique; got != base {
		t.Fatalf("SasPageMigrate split the plan cell (%d -> %d unique)", base, got)
	}

	// NoRemap changes the plans and must get its own cell.
	wOff := w
	wOff.NoRemap = true
	e.MeshPlans(wOff, 2)
	if got := e.Report().Unique; got != base+1 {
		t.Fatalf("NoRemap plan cell not separate (%d -> %d unique)", base, got)
	}
}

func TestReportHitRate(t *testing.T) {
	e := New(1)
	e.Do("a", "a", func() any { return 1 })
	e.Do("a", "a", func() any { return 1 })
	e.Do("b", "b", func() any { return 2 })
	r := e.Report()
	if got, want := r.HitRate(), 1.0/3.0; got != want {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
	if tb := r.Table(); len(tb.Rows) != 4+r.Unique {
		t.Fatalf("report table has %d rows, want %d", len(tb.Rows), 4+r.Unique)
	}
}
