package runner

import (
	"fmt"
	"sort"
	"time"

	"o2k/internal/core"
	"o2k/internal/runner/lease"
)

// CellStat is one unique cell's execution record.
type CellStat struct {
	Label    string        `json:"label"`               // human-readable cell description
	Key      string        `json:"key"`                 // content hash (core.CellKey)
	Wall     time.Duration `json:"wall_ns"`             // compute wall time paid by the owner
	Hits     int64         `json:"hits"`                // requests served from the completed cache entry
	Dedups   int64         `json:"dedups"`              // requests that shared the in-flight execution
	Attempts int           `json:"attempts"`            // compute executions (1 unless retried)
	Err      string        `json:"err,omitempty"`       // the cell's failure, empty on success
	InFlight bool          `json:"in_flight,omitempty"` // still computing at snapshot time
	FromDisk bool          `json:"from_disk,omitempty"` // served from the persistent cache
	Kind     string        `json:"kind,omitempty"`      // codec classification ("metrics", "plan")
}

// Report is the engine's execution summary: how many cell requests the
// experiments issued, how many unique simulations were actually paid for,
// and where the wall time went. It is host-timing data — print it to stderr
// (as o2kbench -runreport does) so table output stays byte-stable.
type Report struct {
	Jobs         int           `json:"jobs"`
	Unique       int           `json:"unique_cells"`
	Requests     int64         `json:"requests"`
	Hits         int64         `json:"hits"`
	Dedups       int64         `json:"dedups"`
	Failures     int           `json:"failures"`       // completed cells that ended in error
	CellWall     time.Duration `json:"cell_wall_ns"`   // summed compute time of all unique cells
	DiskHits     int64         `json:"disk_hits"`      // unique cells restored from the persistent cache
	PlanCells    int           `json:"plan_cells"`      // completed plan-tier cells (structures + plans)
	PlanDiskHits int64         `json:"plan_disk_hits"`  // plan-tier cells restored from the persistent cache
	Disk         *DiskStats    `json:"disk,omitempty"`  // persistent-cache telemetry, nil when memory-only
	Lease        *lease.Stats  `json:"lease,omitempty"` // cross-process single-flight telemetry, nil when solo
	Cells        []CellStat    `json:"cells"`           // sorted by wall time, descending
}

// Report snapshots the engine's statistics. It is safe to call while cells
// are still computing: per-cell result fields (wall time, attempts, error)
// are written by the owner goroutine and published by the close of the
// cell's done channel, so the snapshot reads them only for completed cells —
// an in-flight cell contributes its label and request counters and is marked
// InFlight. Call Report after the experiments have finished for exact
// numbers.
func (e *Engine) Report() *Report {
	e.mu.Lock()
	cells := make([]*cell, len(e.order))
	copy(cells, e.order)
	e.mu.Unlock()

	r := &Report{Jobs: e.jobs, Unique: len(cells)}
	if e.cache != nil {
		r.Disk = diskStats(e.cache.Counters())
	}
	if e.leases != nil {
		ls := e.leases.Stats()
		r.Lease = &ls
	}
	for _, c := range cells {
		s := CellStat{Label: c.label, Key: c.key, Kind: c.kind, Hits: c.hits.Load(), Dedups: c.dedup.Load()}
		select {
		case <-c.done:
			s.Wall, s.Attempts, s.FromDisk = c.wall, c.attempts, c.fromDisk
			if s.FromDisk {
				r.DiskHits++
				if s.Kind == "plan" {
					r.PlanDiskHits++
				}
			}
			if s.Kind == "plan" {
				r.PlanCells++
			}
			if c.err != nil {
				s.Err = c.err.Error()
				r.Failures++
			}
		default:
			s.InFlight = true
		}
		r.Hits += s.Hits
		r.Dedups += s.Dedups
		r.CellWall += s.Wall
		r.Cells = append(r.Cells, s)
	}
	r.Requests = int64(r.Unique) + r.Hits + r.Dedups
	sort.SliceStable(r.Cells, func(i, j int) bool { return r.Cells[i].Wall > r.Cells[j].Wall })
	return r
}

// HitRate is the fraction of cell requests served without a fresh
// simulation — completed-cache hits plus in-flight dedups over all
// requests. The acceptance bar for a shared `-exp all` run is ≥ 0.30.
func (r *Report) HitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hits+r.Dedups) / float64(r.Requests)
}

// Table renders the report: a summary block followed by every unique cell,
// slowest first. Failed cells carry their FAILED(<reason>) annotation in
// the wall column.
func (r *Report) Table() *core.Table {
	t := &core.Table{
		Title:  "Run report — simulation cells",
		Header: []string{"cell", "wall", "hits", "dedups"},
	}
	t.AddRow("jobs", fmt.Sprintf("%d", r.Jobs), "", "")
	t.AddRow("requests", fmt.Sprintf("%d", r.Requests), "", "")
	t.AddRow(fmt.Sprintf("unique cells (misses) %d", r.Unique),
		r.CellWall.Round(time.Millisecond).String(),
		fmt.Sprintf("%d", r.Hits), fmt.Sprintf("%d", r.Dedups))
	t.AddRow("cache hit rate", fmt.Sprintf("%.1f%%", 100*r.HitRate()), "", "")
	if r.Disk != nil {
		t.AddRow("disk cache", r.Disk.String(), "", "")
		t.AddRow("cells from disk", fmt.Sprintf("%d", r.DiskHits), "", "")
		t.AddRow("plan cells from disk", fmt.Sprintf("%d of %d", r.PlanDiskHits, r.PlanCells), "", "")
	}
	if r.Lease != nil {
		t.AddRow("leases", fmt.Sprintf("acquired=%d stolen=%d lost=%d degraded=%d",
			r.Lease.Acquired, r.Lease.Stolen, r.Lease.Lost, r.Lease.Degraded), "", "")
	}
	if r.Failures > 0 {
		t.AddRow("failed cells", fmt.Sprintf("%d", r.Failures), "", "")
	}
	for _, c := range r.Cells {
		wall := c.Wall.Round(10 * time.Microsecond).String()
		switch {
		case c.InFlight:
			wall = "(in flight)"
		case c.Err != "":
			wall = fmt.Sprintf("%s FAILED(%s)", wall, c.Err)
		case c.FromDisk:
			wall += " (disk)"
		}
		t.AddRow(c.Label, wall, fmt.Sprintf("%d", c.Hits), fmt.Sprintf("%d", c.Dedups))
	}
	return t
}
