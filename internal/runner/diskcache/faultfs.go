package diskcache

import (
	"os"
	"strings"
	"sync"

	"io/fs"
)

// FaultFS wraps an FS and injects failures on demand. It is the test rig
// behind the cache's graceful-degradation guarantees (DESIGN.md §5.5):
// every knob models one real-world failure, and the cache must treat all of
// them as misses — never as fatal errors, never as trusted data.
//
// Knobs are safe to flip concurrently with cache traffic; the zero value
// (over a nil Inner) injects nothing and behaves like OSFS.
type FaultFS struct {
	Inner FS // nil means OSFS{}

	mu sync.Mutex

	readErr   error // returned by every ReadFile
	writeErr  error // returned by every WriteFile
	renameErr error // returned by every Rename
	linkErr   error // returned by every Link

	truncateAt int    // keep only the first N bytes of written files (-1 = off)
	flipBitAt  int    // XOR bit 0 of byte N (clamped) of every file read (-1 = off)
	match      string // restrict injected faults to paths containing this ("" = all)

	reads, writes, renames, links int64
}

// NewFaultFS returns a FaultFS over inner (OSFS if nil) with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{Inner: inner, truncateAt: -1, flipBitAt: -1}
}

// FailReads arms (or, with nil, disarms) an error on every ReadFile.
func (f *FaultFS) FailReads(err error) { f.mu.Lock(); f.readErr = err; f.mu.Unlock() }

// FailWrites arms (or disarms) an error on every WriteFile.
func (f *FaultFS) FailWrites(err error) { f.mu.Lock(); f.writeErr = err; f.mu.Unlock() }

// FailRenames arms (or disarms) an error on every Rename — the torn-commit
// case: the temp file is written but never becomes the entry.
func (f *FaultFS) FailRenames(err error) { f.mu.Lock(); f.renameErr = err; f.mu.Unlock() }

// FailLinks arms (or disarms) an error on every Link — the lost-acquisition
// case: a lease's exclusive-create step fails (e.g. a filesystem without
// hard links), which the lease layer must degrade to computing anyway.
func (f *FaultFS) FailLinks(err error) { f.mu.Lock(); f.linkErr = err; f.mu.Unlock() }

// MatchPath restricts every armed fault to paths containing substr — e.g.
// ".lease" faults only the lease files while cache entries stay healthy.
// "" (the default) faults every path.
func (f *FaultFS) MatchPath(substr string) { f.mu.Lock(); f.match = substr; f.mu.Unlock() }

// matches reports whether faults apply to name. Callers hold f.mu.
func (f *FaultFS) matches(name string) bool {
	return f.match == "" || strings.Contains(name, f.match)
}

// TruncateWritesAt keeps only the first n bytes of every subsequent write,
// modelling a torn write / full disk. n < 0 disarms.
func (f *FaultFS) TruncateWritesAt(n int) { f.mu.Lock(); f.truncateAt = n; f.mu.Unlock() }

// FlipBitOnRead XORs one bit of byte n (clamped to the file) of every
// subsequent read, modelling silent bit rot. n < 0 disarms.
func (f *FaultFS) FlipBitOnRead(n int) { f.mu.Lock(); f.flipBitAt = n; f.mu.Unlock() }

// Ops reports how many reads, writes, and renames reached the FaultFS.
func (f *FaultFS) Ops() (reads, writes, renames int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.writes, f.renames
}

// Links reports how many Link calls reached the FaultFS.
func (f *FaultFS) Links() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.links
}

func (f *FaultFS) inner() FS {
	if f.Inner == nil {
		return OSFS{}
	}
	return f.Inner
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner().MkdirAll(path, perm)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	f.reads++
	rerr, flip := f.readErr, f.flipBitAt
	if !f.matches(name) {
		rerr, flip = nil, -1
	}
	f.mu.Unlock()
	if rerr != nil {
		return nil, rerr
	}
	data, err := f.inner().ReadFile(name)
	if err == nil && flip >= 0 && len(data) > 0 {
		data = append([]byte(nil), data...)
		i := flip
		if i >= len(data) {
			i = len(data) - 1
		}
		data[i] ^= 1
	}
	return data, err
}

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	f.writes++
	werr, trunc := f.writeErr, f.truncateAt
	if !f.matches(name) {
		werr, trunc = nil, -1
	}
	f.mu.Unlock()
	if werr != nil {
		return werr
	}
	if trunc >= 0 && trunc < len(data) {
		data = data[:trunc]
	}
	return f.inner().WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	rerr := f.renameErr
	if !f.matches(newpath) {
		rerr = nil
	}
	f.mu.Unlock()
	if rerr != nil {
		return rerr
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FaultFS) Link(oldpath, newpath string) error {
	f.mu.Lock()
	f.links++
	lerr := f.linkErr
	if !f.matches(newpath) {
		lerr = nil
	}
	f.mu.Unlock()
	if lerr != nil {
		return lerr
	}
	return f.inner().Link(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.inner().Remove(name) }

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner().ReadDir(name) }
