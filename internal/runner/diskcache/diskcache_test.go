package diskcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// key returns a syntactically valid cell key (32 lowercase hex chars)
// derived from s.
func key(s string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return fmt.Sprintf("%032x", h)
}

func open(t *testing.T, opts ...Option) *Cache {
	t.Helper()
	c, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// entryFile locates the single committed entry for k in c's directory.
func entryFile(t *testing.T, c *Cache, k string) string {
	t.Helper()
	p := filepath.Join(c.Dir(), k[:2], k+".cell")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry for %s not on disk: %v", k, err)
	}
	return p
}

func TestPutGetRoundtrip(t *testing.T) {
	c := open(t)
	k := key("cell-a")
	payload := []byte(`{"val":{"Total":42}}`)
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	if cn := c.Counters(); cn.Hits != 1 || cn.Misses != 0 {
		t.Fatalf("counters = %+v, want one hit", cn)
	}
	// A second cache over the same dir (same fence) also hits.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k); !ok {
		t.Fatal("fresh cache over same dir missed a committed entry")
	}
}

func TestMissOnAbsent(t *testing.T) {
	c := open(t)
	if _, ok := c.Get(key("never-stored")); ok {
		t.Fatal("hit on absent key")
	}
	if cn := c.Counters(); cn.Misses != 1 || cn.Corrupt != 0 || cn.ReadErrs != 0 {
		t.Fatalf("counters = %+v, want one clean miss", cn)
	}
}

func TestMalformedKeyRejected(t *testing.T) {
	c := open(t)
	for _, bad := range []string{"", "short", strings.Repeat("g", 32), "../../../../etc/passwd0000000000"} {
		if err := c.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put accepted malformed key %q", bad)
		}
		if _, ok := c.Get(bad); ok {
			t.Fatalf("Get accepted malformed key %q", bad)
		}
	}
}

// corruptionCases mutates a committed entry in various ways; every variant
// must read as a miss, count as corrupt, and be evicted.
func TestCorruptEntriesRecompute(t *testing.T) {
	cases := []struct {
		name   string
		damage func(path string) error
	}{
		{"bit-flip", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}},
		{"truncated", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/3], 0o644)
		}},
		{"empty", func(p string) error { return os.WriteFile(p, nil, 0o644) }},
		{"garbage", func(p string) error { return os.WriteFile(p, []byte("not json at all"), 0o644) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := open(t)
			k := key("victim-" + tc.name)
			if err := c.Put(k, []byte(`{"val":1}`)); err != nil {
				t.Fatal(err)
			}
			p := entryFile(t, c, k)
			if err := tc.damage(p); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(k); ok {
				t.Fatal("damaged entry served as a hit")
			}
			cn := c.Counters()
			if cn.Corrupt != 1 || cn.Misses != 1 || cn.Evicted != 1 {
				t.Fatalf("counters = %+v, want corrupt=miss=evicted=1", cn)
			}
			if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("damaged entry not evicted")
			}
		})
	}
}

func TestMisfiledEntryIsCorrupt(t *testing.T) {
	c := open(t)
	ka, kb := key("cell-a"), key("cell-b")
	if ka == kb {
		t.Fatal("test keys collide")
	}
	if err := c.Put(ka, []byte(`{"val":1}`)); err != nil {
		t.Fatal(err)
	}
	src := entryFile(t, c, ka)
	dst := filepath.Join(c.Dir(), kb[:2], kb+".cell")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(kb); ok {
		t.Fatal("entry claiming another key was trusted")
	}
	if cn := c.Counters(); cn.Corrupt != 1 {
		t.Fatalf("counters = %+v, want corrupt=1", cn)
	}
}

func TestVersionSkewEvicts(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, WithFingerprint("build-1"))
	if err != nil {
		t.Fatal(err)
	}
	k := key("cell-a")
	if err := c1.Put(k, []byte(`{"val":1}`)); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, WithFingerprint("build-2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k); ok {
		t.Fatal("entry from another binary fingerprint was trusted")
	}
	cn := c2.Counters()
	if cn.Stale != 1 || cn.Misses != 1 || cn.Evicted != 1 || cn.Corrupt != 0 {
		t.Fatalf("counters = %+v, want stale=miss=evicted=1", cn)
	}
	if n, _ := c2.Len(); n != 0 {
		t.Fatalf("stale entry still on disk (%d entries)", n)
	}
}

func TestFaultInjectionReads(t *testing.T) {
	ffs := NewFaultFS(nil)
	c := open(t, WithFS(ffs))
	k := key("cell-a")
	if err := c.Put(k, []byte(`{"val":1}`)); err != nil {
		t.Fatal(err)
	}

	ffs.FailReads(errors.New("injected EIO"))
	if _, ok := c.Get(k); ok {
		t.Fatal("hit through a failing read")
	}
	if cn := c.Counters(); cn.ReadErrs != 1 || cn.Misses != 1 {
		t.Fatalf("counters = %+v, want read_errs=misses=1", cn)
	}

	ffs.FailReads(nil)
	ffs.FlipBitOnRead(1 << 20) // clamps to the last byte: a structural brace
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on a bit-rotted read")
	}
	if cn := c.Counters(); cn.Corrupt != 1 {
		t.Fatalf("counters = %+v, want corrupt=1 after bit flip", cn)
	}

	// Bit rot is detected on read, and the eviction removed the (actually
	// intact) file; a re-Put recovers.
	ffs.FlipBitOnRead(-1)
	if err := c.Put(k, []byte(`{"val":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("cache did not recover after fault cleared")
	}
}

func TestFaultInjectionWrites(t *testing.T) {
	ffs := NewFaultFS(nil)
	c := open(t, WithFS(ffs))
	k := key("cell-a")

	ffs.FailWrites(errors.New("injected ENOSPC"))
	if err := c.Put(k, []byte(`{"val":1}`)); err == nil {
		t.Fatal("Put succeeded through a failing write")
	}
	if cn := c.Counters(); cn.PutErrs != 1 {
		t.Fatalf("counters = %+v, want put_errs=1", cn)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("entry exists after failed write")
	}

	// Torn write: only a prefix reaches the disk. The commit itself
	// succeeds, but the entry must fail validation on read.
	ffs.FailWrites(nil)
	ffs.TruncateWritesAt(30)
	if err := c.Put(k, []byte(`{"val":1}`)); err != nil {
		t.Fatal(err)
	}
	ffs.TruncateWritesAt(-1)
	if _, ok := c.Get(k); ok {
		t.Fatal("torn entry served as a hit")
	}
	if cn := c.Counters(); cn.Corrupt != 1 {
		t.Fatalf("counters = %+v, want corrupt=1 after torn write", cn)
	}

	// Failed rename: temp file written, never committed, removed.
	ffs.FailRenames(errors.New("injected EXDEV"))
	if err := c.Put(k, []byte(`{"val":1}`)); err == nil {
		t.Fatal("Put succeeded through a failing rename")
	}
	ffs.FailRenames(nil)
	if _, ok := c.Get(k); ok {
		t.Fatal("entry exists after failed rename")
	}
	ents, err := os.ReadDir(filepath.Join(c.Dir(), k[:2]))
	if err == nil {
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp.") {
				t.Fatalf("stray temp file %s after failed rename", e.Name())
			}
		}
	}
}

func TestVerifyAndClear(t *testing.T) {
	c := open(t)
	keys := []string{key("a"), key("b"), key("c")}
	for _, k := range keys {
		if err := c.Put(k, []byte(`{"val":"`+k+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	// Damage one entry and plant a stray temp file.
	p := entryFile(t, c, keys[1])
	if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(c.Dir(), keys[0][:2], keys[0]+".cell.tmp.1.1")
	if err := os.WriteFile(tmp, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checked != 3 || st.Bad != 1 || st.Stale != 0 {
		t.Fatalf("verify = %+v, want checked=3 bad=1", st)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("verify left the stray temp file")
	}
	if n, _ := c.Len(); n != 2 {
		t.Fatalf("after verify, %d entries, want 2", n)
	}

	removed, err := c.Clear()
	if err != nil || removed != 2 {
		t.Fatalf("clear = %d, %v; want 2 removed", removed, err)
	}
	if n, _ := c.Len(); n != 0 {
		t.Fatalf("after clear, %d entries, want 0", n)
	}
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %s survived clear", k)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c := open(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				k := key(fmt.Sprintf("cell-%d", j%10))
				payload := []byte(fmt.Sprintf(`{"val":%d}`, j%10))
				if err := c.Put(k, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := c.Get(k); ok && string(got) != string(payload) {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestConcurrentPutSameKeyTwoCaches races same-key commits from two Cache
// instances over one directory — the multi-process collision (two workers,
// one cell, no or degraded leases). Atomic rename must leave exactly one
// valid committed entry and no temp debris, whichever writer won.
func TestConcurrentPutSameKeyTwoCaches(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("contended")
	payloads := map[string]bool{}
	var wg sync.WaitGroup
	for i, c := range []*Cache{c1, c2} {
		for j := 0; j < 4; j++ {
			p := fmt.Sprintf(`{"val":%d}`, i*4+j)
			payloads[p] = true
			wg.Add(1)
			go func(c *Cache, p string) {
				defer wg.Done()
				if err := c.Put(k, []byte(p)); err != nil {
					t.Error(err)
				}
			}(c, p)
		}
	}
	wg.Wait()

	got, ok := c1.Get(k)
	if !ok || !payloads[string(got)] {
		t.Fatalf("surviving entry = %q, %v; want one of the racers' payloads", got, ok)
	}
	// Exactly one committed file for the key, zero temp leftovers.
	files, err := os.ReadDir(filepath.Join(dir, k[:2]))
	if err != nil {
		t.Fatal(err)
	}
	var cells, others int
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".cell") {
			cells++
		} else {
			others++
		}
	}
	if cells != 1 || others != 0 {
		t.Fatalf("shard dir holds %d cell files and %d leftovers, want exactly 1 and 0", cells, others)
	}
	st, err := c2.Verify()
	if err != nil || st.Bad != 0 || st.Checked != 1 {
		t.Fatalf("verify after the race = %+v, %v; want 1 clean entry", st, err)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b || a == "" {
		t.Fatalf("fingerprint not stable: %q vs %q", a, b)
	}
}
