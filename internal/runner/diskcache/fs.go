package diskcache

import (
	"io/fs"
	"os"
)

// FS is the slice of the filesystem the cache uses. It exists so the
// fault-injection layer (FaultFS) can sit between the cache and the OS and
// exercise every degradation path — I/O errors, torn writes, bit rot,
// failed renames — deterministically in tests. The default implementation
// is the real filesystem (OSFS).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	// Link hard-links oldpath to newpath, failing with fs.ErrExist if
	// newpath already exists. It is the one primitive POSIX offers for
	// atomic create-exclusive across processes, and the lease subsystem's
	// acquisition step (internal/runner/lease) is built on it.
	Link(oldpath, newpath string) error
}

// OSFS is the passthrough FS backed by the os package.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                   { return os.Remove(name) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) Link(oldpath, newpath string) error         { return os.Link(oldpath, newpath) }
