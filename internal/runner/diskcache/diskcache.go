// Package diskcache is the crash-safe persistent half of the runner's cell
// cache: a content-addressed store mapping a cell's core.CellKey to the
// opaque payload of its completed outcome, shared by every o2kbench
// invocation and CI verdict job that points at the same directory.
//
// The store is built around one invariant — a broken cache may slow a run
// down, but it can never change the run's bytes or fail it (DESIGN.md §5.5).
// Three mechanisms enforce it:
//
//   - atomic commits: an entry is written to a temp file in the same
//     directory and renamed into place, so a crash (even SIGKILL) at any
//     instant leaves either the old entry, the new entry, or no entry —
//     never a half-written one that parses;
//   - per-entry integrity: each entry records a SHA-256 checksum of its
//     payload plus the key it claims to answer for; torn writes, bit rot,
//     and misfiled entries are detected on read, counted as corruption,
//     evicted, and reported as misses;
//   - a version fence: entries carry the schema identifier and a
//     binary fingerprint (Fingerprint); entries written by a different
//     schema or binary are stale, never trusted, and evicted on contact.
//
// Every failure path — open error, read error, parse error, checksum
// mismatch, fence skew — degrades to a miss and bumps a counter that
// runner.Report surfaces under `o2kbench -runreport`. The FS seam (see FS
// and FaultFS) lets tests inject each of those failures deterministically.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
)

// Schema identifies the on-disk entry format. Bump it when the envelope or
// payload encoding changes incompatibly; old entries then read as stale and
// are recomputed.
//
// v2 split the entry into a one-line JSON header followed by the raw payload
// bytes. Plan-tier payloads run to megabytes; embedding them inside the
// header's JSON (as v1 did) forced several full JSON scans per warm read,
// which dominated warm-run time. The header/payload split reads an entry
// with one parse of a tiny header plus one checksum pass over the payload,
// and frees payloads from being valid JSON at all.
const Schema = "o2k-cellcache/v2"

// header is the first line of an entry file: integrity and identity metadata
// for the payload bytes that follow the newline. json.Marshal never emits a
// raw newline, so the first '\n' in the file is always the separator.
type header struct {
	Schema string `json:"schema"`
	Fence  string `json:"fence"`
	Key    string `json:"key"`
	Sum    string `json:"sum"` // SHA-256 hex of the payload bytes
}

// parseEntry splits an entry file into its decoded header and the payload
// bytes (aliasing data, not copying). Any malformation is an error.
func parseEntry(data []byte) (h header, payload []byte, err error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return h, nil, errors.New("diskcache: entry has no header line")
	}
	dec := json.NewDecoder(bytes.NewReader(data[:i]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return h, nil, err
	}
	return h, data[i+1:], nil
}

// Counters is a snapshot of the cache's degradation telemetry. Every Get
// increments exactly one of Hits/Misses; the remaining counters classify
// why a miss happened or what maintenance was performed.
type Counters struct {
	Hits     int64 `json:"hits"`      // entries served intact
	Misses   int64 `json:"misses"`    // absent, unreadable, stale, or corrupt
	Corrupt  int64 `json:"corrupt"`   // integrity failures: parse, checksum, key mismatch
	Stale    int64 `json:"stale"`     // schema/fingerprint fence mismatches
	Evicted  int64 `json:"evicted"`   // entry files removed (corrupt, stale, cleared)
	PutErrs  int64 `json:"put_errs"`  // failed writes (entry not committed)
	ReadErrs int64 `json:"read_errs"` // I/O errors on read (distinct from absent)
}

// Cache is a content-addressed store of cell outcomes under one directory.
// It is safe for concurrent use by one or more processes sharing the
// directory: entries are immutable once committed, commits are atomic
// renames, and two writers racing on one key commit identical bytes (the
// simulator is deterministic), so last-rename-wins is harmless.
type Cache struct {
	dir   string
	fence string
	fs    FS

	hits, misses, corrupt, stale, evicted, putErrs, readErrs atomic.Int64
}

// tmpSeq disambiguates temp files process-wide: two Cache instances over one
// directory (one per engine, say) would collide on a per-Cache counter, since
// the pid in the temp name no longer tells them apart.
var tmpSeq atomic.Int64

// Option configures Open.
type Option func(*Cache)

// WithFS substitutes the filesystem implementation (fault injection).
func WithFS(f FS) Option { return func(c *Cache) { c.fs = f } }

// WithFingerprint overrides the binary fingerprint half of the version
// fence. Tests use it to simulate version skew; production callers should
// let Fingerprint() be derived from the running binary.
func WithFingerprint(fp string) Option { return func(c *Cache) { c.fence = fp } }

// Open returns a Cache rooted at dir, creating the directory if needed.
func Open(dir string, opts ...Option) (*Cache, error) {
	c := &Cache{dir: dir, fence: Fingerprint(), fs: OSFS{}}
	for _, o := range opts {
		o(c)
	}
	if err := c.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: open %s: %w", dir, err)
	}
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Fence returns the active version fence (schema + binary fingerprint).
func (c *Cache) Fence() string { return c.fence }

// Fingerprint derives the binary half of the version fence from the running
// executable: Go version, main module path/version, and VCS revision when
// the build recorded one. Two processes built from the same source share a
// fingerprint; a rebuild from different source (when VCS stamping is
// available) does not. The fence is best-effort — builds without VCS
// stamping (go test, go run) fall back to the module identity, so after a
// model change in a dev tree, clear the cache (or rely on the golden-output
// tests, which catch any drift).
func Fingerprint() string {
	parts := []string{Schema, runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		parts = append(parts, bi.Main.Path, bi.Main.Version, bi.Main.Sum)
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" || s.Key == "vcs.modified" {
				parts = append(parts, s.Key+"="+s.Value)
			}
		}
	}
	sum := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(sum[:8])
}

// ValidKey screens a cell key before it is used as a path component: CellKey
// produces fixed-width lowercase hex, and anything else (a doctored file
// name, a caller bug) must not escape the cache directory. The lease
// subsystem applies the same screen to its sidecar files.
func ValidKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// SidecarPath places a key-scoped sidecar file (extension including the dot,
// e.g. ".lease") in the same two-character shard directory as the key's
// entry, so everything about one cell lives together and directory listings
// stay bounded. key must satisfy ValidKey.
func SidecarPath(dir, key, ext string) string {
	return filepath.Join(dir, key[:2], key+ext)
}

// path returns the entry file for key: <dir>/<key[:2]>/<key>.cell.
func (c *Cache) path(key string) string {
	return SidecarPath(c.dir, key, ".cell")
}

// Get returns the stored payload for key, or ok=false on a miss. Every
// failure — absent entry, I/O error, unparseable envelope, checksum
// mismatch, key mismatch, schema or fingerprint skew — is a miss; damaged
// and stale entries are evicted so the rerun that recomputes them can
// rewrite them cleanly.
func (c *Cache) Get(key string) (payload []byte, ok bool) {
	if !ValidKey(key) {
		c.misses.Add(1)
		return nil, false
	}
	data, err := c.fs.ReadFile(c.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.readErrs.Add(1)
		}
		c.misses.Add(1)
		return nil, false
	}
	h, payload, err := parseEntry(data)
	if err != nil {
		c.corruptEvict(key)
		return nil, false
	}
	if h.Schema != Schema || h.Fence != c.fence {
		c.stale.Add(1)
		c.misses.Add(1)
		c.evict(key)
		return nil, false
	}
	if h.Key != key || !sumOK(h, payload) {
		c.corruptEvict(key)
		return nil, false
	}
	c.hits.Add(1)
	return payload, true
}

func sumOK(h header, payload []byte) bool {
	sum := sha256.Sum256(payload)
	return h.Sum == hex.EncodeToString(sum[:])
}

// corruptEvict books one integrity failure: corrupt + miss, entry removed.
func (c *Cache) corruptEvict(key string) {
	c.corrupt.Add(1)
	c.misses.Add(1)
	c.evict(key)
}

// evict best-effort removes key's entry file.
func (c *Cache) evict(key string) {
	if c.fs.Remove(c.path(key)) == nil {
		c.evicted.Add(1)
	}
}

// Invalidate reclassifies key's last Get as corrupt and evicts the entry.
// The runner calls it when the envelope verified but the payload failed to
// decode into the cell's type — damage the envelope checksum cannot see
// (e.g. an entry written under a colliding key by a buggy codec).
func (c *Cache) Invalidate(key string) {
	if !ValidKey(key) {
		return
	}
	c.hits.Add(-1)
	c.corrupt.Add(1)
	c.misses.Add(1)
	c.evict(key)
}

// Put atomically commits payload as key's entry: marshal the checksummed
// header, write header + '\n' + payload to a temp file in the entry's shard
// directory, and rename it into place. On any error the entry is untouched,
// the temp file is removed best-effort, and PutErrs is bumped — a failed Put
// never leaves a partial entry for a later Get to trust.
func (c *Cache) Put(key string, payload []byte) error {
	if !ValidKey(key) {
		c.putErrs.Add(1)
		return fmt.Errorf("diskcache: malformed key %q", key)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{
		Schema: Schema,
		Fence:  c.fence,
		Key:    key,
		Sum:    hex.EncodeToString(sum[:]),
	})
	if err != nil {
		c.putErrs.Add(1)
		return fmt.Errorf("diskcache: encode %s: %w", key, err)
	}
	data := make([]byte, 0, len(hdr)+1+len(payload))
	data = append(data, hdr...)
	data = append(data, '\n')
	data = append(data, payload...)
	dst := c.path(key)
	if err := c.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		c.putErrs.Add(1)
		return fmt.Errorf("diskcache: put %s: %w", key, err)
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%d", dst, os.Getpid(), tmpSeq.Add(1))
	if err := c.fs.WriteFile(tmp, data, 0o644); err != nil {
		c.putErrs.Add(1)
		c.fs.Remove(tmp)
		return fmt.Errorf("diskcache: put %s: %w", key, err)
	}
	if err := c.fs.Rename(tmp, dst); err != nil {
		c.putErrs.Add(1)
		c.fs.Remove(tmp)
		return fmt.Errorf("diskcache: commit %s: %w", key, err)
	}
	return nil
}

// Counters snapshots the degradation telemetry.
func (c *Cache) Counters() Counters {
	return Counters{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Corrupt:  c.corrupt.Load(),
		Stale:    c.stale.Load(),
		Evicted:  c.evicted.Load(),
		PutErrs:  c.putErrs.Load(),
		ReadErrs: c.readErrs.Load(),
	}
}

// VerifyStats summarizes a Verify scan.
type VerifyStats struct {
	Checked int // entry files examined
	Bad     int // entries that failed validation (and were removed)
	Stale   int // of Bad, entries rejected only by the version fence
	Tmp     int // orphaned temp files swept (interrupted or killed commits)
	Leases  int // lease sidecar files seen (left for lease.Sweep to judge)
}

// Verify scans every entry under the cache root, validates each against the
// schema, fence, key, and checksum, and removes the ones that fail — the
// offline counterpart of Get's on-contact eviction, behind `o2kbench
// -cache-verify`. Orphaned temp files from interrupted or SIGKILLed commits
// are swept and counted (they were never entries). Lease sidecar files are
// counted but never touched here: whether a lease is stale is the lease
// subsystem's call (lease.Sweep), and removing a live one would break a
// running worker's mutual exclusion. The scan itself is read-only on valid
// entries.
func (c *Cache) Verify() (VerifyStats, error) {
	var st VerifyStats
	err := c.walk(func(path, key string, kind fileKind) {
		switch kind {
		case fileTmp:
			if c.fs.Remove(path) == nil {
				st.Tmp++
			}
			return
		case fileLease:
			st.Leases++
			return
		}
		st.Checked++
		data, err := c.fs.ReadFile(path)
		if err != nil {
			st.Bad++
			c.fs.Remove(path)
			return
		}
		h, payload, perr := parseEntry(data)
		switch {
		case perr != nil, h.Key != key, !sumOK(h, payload):
			st.Bad++
			c.fs.Remove(path)
		case h.Schema != Schema, h.Fence != c.fence:
			st.Bad++
			st.Stale++
			c.fs.Remove(path)
		}
	})
	return st, err
}

// Clear removes every entry (plus stray temp and lease files) under the
// cache root and returns how many entry files were deleted.
func (c *Cache) Clear() (int, error) {
	removed := 0
	err := c.walk(func(path, key string, kind fileKind) {
		if c.fs.Remove(path) == nil && kind == fileEntry {
			removed++
			c.evicted.Add(1)
		}
	})
	return removed, err
}

// Len counts committed entries on disk.
func (c *Cache) Len() (int, error) {
	n := 0
	err := c.walk(func(path, key string, kind fileKind) {
		if kind == fileEntry {
			n++
		}
	})
	return n, err
}

// fileKind classifies what a file under a shard directory is.
type fileKind int

const (
	fileEntry fileKind = iota // <key>.cell — a committed entry
	fileLease                 // <key>.lease — a lease sidecar (see internal/runner/lease)
	fileTmp                   // anything else — an uncommitted temp file
)

// walk visits every file under the cache's shard directories, reporting its
// path, the key its name claims (entries and leases), and its kind.
func (c *Cache) walk(visit func(path, key string, kind fileKind)) error {
	shards, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("diskcache: scan %s: %w", c.dir, err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := c.fs.ReadDir(filepath.Join(c.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			name := f.Name()
			path := filepath.Join(c.dir, sh.Name(), name)
			if key, ok := strings.CutSuffix(name, ".cell"); ok && ValidKey(key) {
				visit(path, key, fileEntry)
			} else if key, ok := strings.CutSuffix(name, ".lease"); ok && ValidKey(key) {
				visit(path, key, fileLease)
			} else {
				visit(path, "", fileTmp)
			}
		}
	}
	return nil
}
