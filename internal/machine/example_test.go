package machine_test

import (
	"fmt"

	"o2k/internal/machine"
)

// The cost model is a plain struct: start from a preset and dial the knobs
// for what-if studies.
func ExampleDefault() {
	cfg := machine.Default(64)
	cfg.RemoteMissNS *= 2 // a more NUMA machine
	m := machine.MustNew(cfg)
	fmt.Println(m.Procs(), "procs on", m.Nodes(), "nodes, diameter", m.Diameter())
	// Output: 64 procs on 32 nodes, diameter 5
}

// Hop distances follow the hypercube interconnect.
func ExampleMachine_Hops() {
	m := machine.MustNew(machine.Default(64))
	fmt.Println(m.Hops(0, 1), m.Hops(0, 2), m.Hops(0, 62))
	// Output: 0 1 5
}
