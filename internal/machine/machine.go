// Package machine models the SGI Origin2000 hardware that the paper's
// experiments ran on: a cache-coherent NUMA multiprocessor built from
// two-processor nodes connected by a hypercube-style CrayLink interconnect.
//
// The model is a set of cost parameters (latencies, overheads, bandwidths)
// plus the node topology. Absolute values default to published Origin2000
// characteristics (250 MHz R10000, 128-byte secondary cache lines, 16 KB
// pages, ~0.3 µs local and ~0.5–1 µs remote memory latency, microsecond-scale
// message-passing software overheads). What the experiments depend on is the
// *relative* ordering — cache hit ≪ local memory ≪ remote memory ≪ software
// messaging — and every knob is exported so the sensitivity studies can sweep
// them.
package machine

import (
	"fmt"
	"math/bits"

	"o2k/internal/sim"
)

// Config holds every tunable of the machine model. The zero value is not
// usable; start from Default.
type Config struct {
	Procs        int // total processors (1..MaxProcs)
	ProcsPerNode int // processors per node board (Origin2000: 2)

	// Processor core.
	OpNS sim.Time // cost of one abstract ALU/FPU operation

	// Memory hierarchy.
	CacheBytes      int      // per-processor cache capacity
	LineBytes       int      // coherence/cache line size
	PageBytes       int      // virtual-memory page size (placement granularity)
	CacheHitNS      sim.Time // load/store hit
	LocalMissNS     sim.Time // miss satisfied by local node memory
	RemoteMissNS    sim.Time // miss satisfied by remote memory, first hop
	RemoteHopNS     sim.Time // additional latency per router hop beyond the first
	CohInvalPerLine sim.Time // time to process one inbound invalidation at a sync point

	// Interconnect for explicit transfers (messages, puts/gets).
	WireBaseNS    sim.Time // fixed network injection latency
	WireHopNS     sim.Time // per-router-hop latency
	WirePerByteNS sim.Time // inverse link bandwidth, ns per byte

	// Message passing (two-sided) software costs.
	MPSendOvNS   sim.Time // per-send software overhead
	MPRecvOvNS   sim.Time // per-receive software overhead (matching, copy setup)
	MPPerByteNS  sim.Time // per-byte cost of the MP stack (copies), on top of wire
	MPMinWireNS  sim.Time // floor wire latency for any message
	MPBarrierHop sim.Time // per-tree-stage cost of an MP barrier/collective step

	// SHMEM (one-sided) costs.
	ShmPutOvNS    sim.Time // initiator overhead of a put
	ShmGetOvNS    sim.Time // initiator overhead of a get (round trip setup)
	ShmPerByteNS  sim.Time // per-byte cost on top of wire
	ShmAtomicNS   sim.Time // remote atomic op (fetch-add, cswap) round trip
	ShmFenceNS    sim.Time // fence/quiet completion cost
	ShmBarrierHop sim.Time // per-tree-stage cost of a SHMEM barrier

	// Shared address space (CC-SAS) synchronization.
	SasLockNS      sim.Time // uncontended lock acquire+release (remote atomic)
	SasBarrierHop  sim.Time // per-tree-stage cost of a hardware-assisted barrier
	SasBarrierBase sim.Time // fixed barrier entry/exit cost
	PageMigrateNS  sim.Time // OS cost to migrate one page to a new home node
}

// MaxProcs bounds group sizes; the Origin2000 in the study scaled to 64,
// and the largest shipped configuration to 1024 (128 in a single image) —
// the event engine and lazy cache tags make the full 1024 simulable.
const MaxProcs = 1024

// Default returns the baseline Origin2000-like configuration for p
// processors.
func Default(procs int) Config {
	return Config{
		Procs:        procs,
		ProcsPerNode: 2,

		OpNS: 2, // ~250 MHz superscalar: a couple of sustained ops per 4 ns cycle

		CacheBytes:      4 << 20, // 4 MB L2
		LineBytes:       128,
		PageBytes:       16 << 10,
		CacheHitNS:      3,
		LocalMissNS:     320,
		RemoteMissNS:    480,
		RemoteHopNS:     100,
		CohInvalPerLine: 40,

		WireBaseNS:    260,
		WireHopNS:     100,
		WirePerByteNS: 3, // ~330 MB/s per CrayLink direction

		MPSendOvNS:   3500,
		MPRecvOvNS:   3500,
		MPPerByteNS:  7, // MPI stack copies: ~140 MB/s effective
		MPMinWireNS:  500,
		MPBarrierHop: 7000,

		ShmPutOvNS:    700,
		ShmGetOvNS:    1100,
		ShmPerByteNS:  4, // ~250 MB/s effective for block transfers
		ShmAtomicNS:   1300,
		ShmFenceNS:    600,
		ShmBarrierHop: 1500,

		SasLockNS:      900,
		SasBarrierHop:  600,
		SasBarrierBase: 400,
		PageMigrateNS:  30000, // ~30 µs per 16 KB page (copy + TLB shootdown)
	}
}

// Validate reports a descriptive error if the configuration is unusable.
func (c *Config) Validate() error {
	switch {
	case c.Procs < 1 || c.Procs > MaxProcs:
		return fmt.Errorf("machine: Procs=%d outside [1,%d]", c.Procs, MaxProcs)
	case c.ProcsPerNode < 1:
		return fmt.Errorf("machine: ProcsPerNode=%d must be >=1", c.ProcsPerNode)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("machine: LineBytes=%d must be a positive power of two", c.LineBytes)
	case c.PageBytes < c.LineBytes || c.PageBytes&(c.PageBytes-1) != 0:
		return fmt.Errorf("machine: PageBytes=%d must be a power of two >= LineBytes", c.PageBytes)
	case c.CacheBytes < c.LineBytes:
		return fmt.Errorf("machine: CacheBytes=%d smaller than one line", c.CacheBytes)
	case c.OpNS < 0 || c.CacheHitNS < 0 || c.LocalMissNS < 0 || c.RemoteMissNS < 0:
		return fmt.Errorf("machine: negative latency")
	}
	return nil
}

// Machine is a validated configuration plus derived topology helpers. It is
// immutable after construction and safe for concurrent use.
type Machine struct {
	Cfg   Config
	nodes int

	// Derived lookup tables for the memory-system hot path (internal/numa
	// charges one MemAccess per simulated cache miss, millions per run).
	// They trade a few KB per Machine for replacing the per-access integer
	// divisions and popcounts with two array loads.
	procNode []int32    // node housing each processor
	nodeLat  []sim.Time // nodes×nodes flat: MemAccess latency by (node, node)
}

// New builds a Machine from cfg, or returns an error if cfg is invalid.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	m := &Machine{Cfg: cfg, nodes: nodes}
	m.procNode = make([]int32, cfg.Procs)
	for p := range m.procNode {
		m.procNode[p] = int32(p / cfg.ProcsPerNode)
	}
	m.nodeLat = make([]sim.Time, nodes*nodes)
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			lat := cfg.LocalMissNS
			if a != b {
				h := bits.OnesCount(uint(a ^ b))
				lat = cfg.RemoteMissNS + sim.Time(h-1)*cfg.RemoteHopNS
			}
			m.nodeLat[a*nodes+b] = lat
		}
	}
	return m, nil
}

// MustNew is New but panics on invalid configuration; for tests and tables.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Procs returns the processor count.
func (m *Machine) Procs() int { return m.Cfg.Procs }

// Nodes returns the node-board count.
func (m *Machine) Nodes() int { return m.nodes }

// Node returns the node housing processor p.
func (m *Machine) Node(p int) int { return p / m.Cfg.ProcsPerNode }

// Hops returns the router-hop distance between the nodes of processors p and
// q. The Origin2000 interconnect is a (bristled) hypercube, so for
// power-of-two node counts the distance is the Hamming distance of node IDs;
// non-power-of-two machines embed in the next larger cube.
func (m *Machine) Hops(p, q int) int {
	a, b := m.Node(p), m.Node(q)
	if a == b {
		return 0
	}
	return bits.OnesCount(uint(a ^ b))
}

// Diameter returns the maximum hop distance in the machine.
func (m *Machine) Diameter() int {
	if m.nodes <= 1 {
		return 0
	}
	return bits.Len(uint(m.nodes - 1))
}

// MemAccess returns the latency of one cache-missing memory access issued by
// proc when the line's home is homeProc's node.
func (m *Machine) MemAccess(proc, homeProc int) sim.Time {
	return m.nodeLat[int(m.procNode[proc])*m.nodes+int(m.procNode[homeProc])]
}

// ProcNode returns, for every processor, the node housing it — the table the
// numa hot path uses for its local/remote classification. Callers must not
// mutate the returned slice.
func (m *Machine) ProcNode() []int32 { return m.procNode }

// NodeLat returns the flat nodes×nodes MemAccess latency table (row-major by
// source node). Callers must not mutate the returned slice.
func (m *Machine) NodeLat() []sim.Time { return m.nodeLat }

// Wire returns the pure network transfer time for n bytes over h hops:
// injection + per-hop routing + bandwidth term.
func (m *Machine) Wire(n, h int) sim.Time {
	return m.Cfg.WireBaseNS + sim.Time(h)*m.Cfg.WireHopNS + sim.Time(n)*m.Cfg.WirePerByteNS
}

// LogStages returns ceil(log2(n)), the stage count of tree-structured
// collectives; 0 for n <= 1.
func (m *Machine) LogStages(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
