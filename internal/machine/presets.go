package machine

// Alternative machine profiles. The study's conclusions are claims about a
// *class* of machines (tightly coupled ccNUMA); these presets let the
// experiments re-ask the questions on the neighbouring classes the follow-up
// papers explored — message-optimized MPPs and clusters of SMPs. All values
// are stylized profiles of the era's hardware, not calibrated models.

// T3E returns a Cray T3E-like profile: no hardware cache coherence worth
// modelling across nodes (remote data is accessed through E-registers /
// SHMEM), a very fast network with low put/get overhead, and message
// passing with lighter software overhead than SGI's MPI.
func T3E(procs int) Config {
	c := Default(procs)
	c.ProcsPerNode = 1

	// Remote loads are not cached; every remote access pays the network.
	c.RemoteMissNS = 900
	c.RemoteHopNS = 30

	c.WireBaseNS = 150
	c.WireHopNS = 30
	c.WirePerByteNS = 2 // ~500 MB/s links

	c.MPSendOvNS = 1500
	c.MPRecvOvNS = 1500
	c.MPPerByteNS = 3
	c.MPBarrierHop = 2500

	c.ShmPutOvNS = 250 // E-register puts were famously cheap
	c.ShmGetOvNS = 400
	c.ShmPerByteNS = 2
	c.ShmAtomicNS = 600
	c.ShmBarrierHop = 400 // hardware barrier network

	// CC-SAS on a T3E is emulated and slow: model it as very expensive
	// remote memory and costly synchronization.
	c.SasLockNS = 2500
	c.SasBarrierHop = 2000
	c.SasBarrierBase = 1500
	c.CohInvalPerLine = 120
	return c
}

// SMP returns an ideal bus-based symmetric multiprocessor: uniform memory
// (no NUMA penalty), cheap coherence and synchronization — CC-SAS's home
// turf. Only modest processor counts are physically plausible, but the
// model does not enforce that.
func SMP(procs int) Config {
	c := Default(procs)
	c.ProcsPerNode = procs // one "node": every access is local
	c.RemoteMissNS = c.LocalMissNS
	c.RemoteHopNS = 0
	c.CohInvalPerLine = 25
	c.SasLockNS = 400
	c.SasBarrierHop = 250
	c.SasBarrierBase = 150
	// Messaging runs over shared memory: cheaper than a network MPI but
	// still a software protocol.
	c.MPSendOvNS = 2000
	c.MPRecvOvNS = 2000
	c.MPMinWireNS = 100
	c.WireBaseNS = 80
	c.WireHopNS = 0
	c.WirePerByteNS = 1
	c.ShmPutOvNS = 400
	c.ShmGetOvNS = 500
	c.ShmPerByteNS = 1
	return c
}

// ClusterOfSMPs returns a late-90s cluster profile: 4-processor SMP nodes
// joined by a commodity network — fast shared memory inside a node, slow
// high-overhead messaging between nodes. This is the machine class of the
// authors' follow-up study ("Message Passing vs. Shared Address Space on a
// Cluster of SMPs").
func ClusterOfSMPs(procs int) Config {
	c := Default(procs)
	c.ProcsPerNode = 4
	// Inside a node: SMP-like.
	c.LocalMissNS = 280
	c.CohInvalPerLine = 30
	// Across nodes: commodity interconnect, no hardware coherence — remote
	// "loads" are really software shared memory, painfully slow.
	c.RemoteMissNS = 4000
	c.RemoteHopNS = 250
	c.WireBaseNS = 4000
	c.WireHopNS = 150
	c.WirePerByteNS = 10 // ~100 MB/s
	c.MPSendOvNS = 9000
	c.MPRecvOvNS = 9000
	c.MPPerByteNS = 9
	c.MPBarrierHop = 20000
	c.ShmPutOvNS = 5000 // one-sided emulated over the NIC
	c.ShmGetOvNS = 7000
	c.ShmPerByteNS = 9
	c.ShmAtomicNS = 9000
	c.ShmBarrierHop = 12000
	c.SasLockNS = 6000
	c.SasBarrierHop = 8000
	c.SasBarrierBase = 4000
	return c
}
