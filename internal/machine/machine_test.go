package machine

import (
	"testing"
	"testing/quick"

	"o2k/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 64, 512, 1024} {
		cfg := Default(p)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Default(%d) invalid: %v", p, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Procs = 0 },
		func(c *Config) { c.Procs = MaxProcs + 1 },
		func(c *Config) { c.ProcsPerNode = 0 },
		func(c *Config) { c.LineBytes = 96 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.PageBytes = 64 }, // < LineBytes
		func(c *Config) { c.CacheBytes = 16 },
		func(c *Config) { c.LocalMissNS = -1 },
	}
	for i, mut := range bad {
		cfg := Default(4)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := Default(4)
	cfg.Procs = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	cfg := Default(4)
	cfg.Procs = 0
	MustNew(cfg)
}

func TestTopology(t *testing.T) {
	m := MustNew(Default(64)) // 32 nodes
	if m.Nodes() != 32 {
		t.Fatalf("Nodes = %d, want 32", m.Nodes())
	}
	if m.Node(0) != 0 || m.Node(1) != 0 || m.Node(2) != 1 || m.Node(63) != 31 {
		t.Fatal("Node mapping wrong")
	}
	// Same node: 0 hops.
	if m.Hops(0, 1) != 0 {
		t.Errorf("Hops(0,1) = %d, want 0", m.Hops(0, 1))
	}
	// Adjacent hypercube nodes: node 0 vs node 1 => 1 hop.
	if m.Hops(0, 2) != 1 {
		t.Errorf("Hops(0,2) = %d, want 1", m.Hops(0, 2))
	}
	// Opposite corners: node 0 vs node 31 = 0b11111 => 5 hops.
	if m.Hops(0, 62) != 5 {
		t.Errorf("Hops(0,62) = %d, want 5", m.Hops(0, 62))
	}
	if d := m.Diameter(); d != 5 {
		t.Errorf("Diameter = %d, want 5", d)
	}
}

func TestHopsSymmetricNonNegative(t *testing.T) {
	m := MustNew(Default(48))
	f := func(a, b uint8) bool {
		p := int(a) % 48
		q := int(b) % 48
		h := m.Hops(p, q)
		return h >= 0 && h == m.Hops(q, p) && (p != q || h == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemAccessOrdering(t *testing.T) {
	m := MustNew(Default(64))
	local := m.MemAccess(0, 1) // same node
	near := m.MemAccess(0, 2)  // 1 hop
	far := m.MemAccess(0, 62)  // 5 hops
	if !(local < near && near < far) {
		t.Fatalf("latency ordering violated: local=%v near=%v far=%v", local, near, far)
	}
	if local != m.Cfg.LocalMissNS {
		t.Errorf("local access = %v, want LocalMissNS", local)
	}
	if near != m.Cfg.RemoteMissNS {
		t.Errorf("1-hop access = %v, want RemoteMissNS", near)
	}
	if far != m.Cfg.RemoteMissNS+4*m.Cfg.RemoteHopNS {
		t.Errorf("5-hop access = %v", far)
	}
}

func TestWireScalesWithSizeAndHops(t *testing.T) {
	m := MustNew(Default(16))
	if m.Wire(100, 2) <= m.Wire(100, 1) {
		t.Error("wire time should grow with hops")
	}
	if m.Wire(1000, 1) <= m.Wire(100, 1) {
		t.Error("wire time should grow with size")
	}
	want := m.Cfg.WireBaseNS + 2*m.Cfg.WireHopNS + 100*m.Cfg.WirePerByteNS
	if got := m.Wire(100, 2); got != want {
		t.Errorf("Wire(100,2) = %v, want %v", got, want)
	}
}

func TestLogStages(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6}
	m := MustNew(Default(4))
	for n, want := range cases {
		if got := m.LogStages(n); got != want {
			t.Errorf("LogStages(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCostHierarchy(t *testing.T) {
	// The relative ordering the whole study depends on.
	cfg := Default(64)
	if !(cfg.CacheHitNS < cfg.LocalMissNS && cfg.LocalMissNS < cfg.RemoteMissNS) {
		t.Error("memory hierarchy ordering violated")
	}
	if !(cfg.ShmPutOvNS < cfg.MPSendOvNS) {
		t.Error("SHMEM put must be cheaper than MP send")
	}
	if !(cfg.RemoteMissNS < cfg.ShmPutOvNS+cfg.WireBaseNS) {
		t.Error("hardware load/store should beat one-sided software transfer")
	}
	var zero sim.Time
	if cfg.OpNS <= zero {
		t.Error("OpNS must be positive")
	}
}
