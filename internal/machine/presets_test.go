package machine

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"t3e", T3E(64)},
		{"smp", SMP(16)},
		{"cluster", ClusterOfSMPs(32)},
	} {
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if _, err := New(tc.cfg); err != nil {
			t.Errorf("%s: New: %v", tc.name, err)
		}
	}
}

func TestPresetCharacters(t *testing.T) {
	o2k := Default(64)
	t3e := T3E(64)
	smp := SMP(64)
	cls := ClusterOfSMPs(64)

	// T3E: one-sided is dramatically cheaper than on the Origin; CC-SAS
	// synchronization dramatically more expensive.
	if !(t3e.ShmPutOvNS < o2k.ShmPutOvNS) {
		t.Error("T3E puts should beat Origin puts")
	}
	if !(t3e.SasBarrierHop > o2k.SasBarrierHop) {
		t.Error("T3E emulated SAS should cost more")
	}
	// SMP: flat memory.
	if smp.RemoteMissNS != smp.LocalMissNS || smp.RemoteHopNS != 0 {
		t.Error("SMP should be UMA")
	}
	m := MustNew(smp)
	if m.Nodes() != 1 || m.Hops(0, 63) != 0 {
		t.Error("SMP should be a single node")
	}
	// Cluster: inter-node messaging much worse than Origin; remote memory
	// catastrophically worse.
	if !(cls.MPSendOvNS > o2k.MPSendOvNS && cls.RemoteMissNS > 4*o2k.RemoteMissNS) {
		t.Error("cluster profile not slow enough")
	}
	mc := MustNew(cls)
	if mc.Node(0) != 0 || mc.Node(3) != 0 || mc.Node(4) != 1 {
		t.Error("cluster node mapping wrong")
	}
}

func TestPresetTopologies(t *testing.T) {
	m := MustNew(T3E(16)) // 1 proc per node: 16 nodes
	if m.Nodes() != 16 {
		t.Fatalf("T3E nodes = %d", m.Nodes())
	}
	if m.Hops(0, 15) != 4 {
		t.Fatalf("T3E hops(0,15) = %d", m.Hops(0, 15))
	}
}
