package shm

import (
	"testing"

	"o2k/internal/sim"
)

// Host-performance microbenchmarks of the SHMEM runtime.

func BenchmarkPut(b *testing.B) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 4096)
	payload := make([]float64, 64)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			Put(pe, s, 1, 0, payload)
		}
	})
}

func BenchmarkGet(b *testing.B) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 4096)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			Get[float64](pe, s, 1, 0, 64)
		}
	})
}

func BenchmarkBarrierWithPuts(b *testing.B) {
	w, g, _ := world(8)
	s := AllocWorld[float64](w, 4096)
	payload := make([]float64, 16)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		for i := 0; i < b.N; i++ {
			Put(pe, s, (pe.ID()+1)%8, pe.ID()*16, payload)
			pe.Barrier()
		}
	})
}

// BenchmarkPutIdx exercises the indexed put and its span log: scattered
// element puts whose dirty lines are deduplicated into the per-target log
// that the next barrier merges.
func BenchmarkPutIdx(b *testing.B) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 4096)
	idx := make([]int32, 128)
	vals := make([]float64, 128)
	for i := range idx {
		idx[i] = int32((i * 37) % 4096)
		vals[i] = float64(i)
	}
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			PutIdx(pe, s, 1, idx, vals)
		}
	})
}
