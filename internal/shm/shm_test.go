package shm

import (
	"testing"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

func world(procs int) (*World, *sim.Group, *machine.Machine) {
	m := machine.MustNew(machine.Default(procs))
	sp := numa.NewSpace(m)
	return NewWorld(m, sp), sim.NewGroup(procs), m
}

func TestSymmetricAlloc(t *testing.T) {
	w, g, _ := world(4)
	handles := make([]*Sym[float64], 4)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		handles[pe.ID()] = Alloc[float64](pe, 100)
	})
	for i := 1; i < 4; i++ {
		if handles[i] != handles[0] {
			t.Fatal("symmetric allocation returned different handles")
		}
	}
	if handles[0].Len() != 100 {
		t.Fatalf("Len = %d", handles[0].Len())
	}
}

func TestPutVisibleAfterBarrier(t *testing.T) {
	w, g, _ := world(2)
	var got float64
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[float64](pe, 10)
		if pe.ID() == 0 {
			Put(pe, s, 1, 3, []float64{2.5})
		}
		pe.Barrier()
		if pe.ID() == 1 {
			got = s.Local(pe).Load(p, 3)
		}
	})
	if got != 2.5 {
		t.Fatalf("put data not visible: %v", got)
	}
}

func TestPutInvalidatesTargetCache(t *testing.T) {
	w, g, m := world(2)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[float64](pe, 64)
		if pe.ID() == 1 {
			s.Local(pe).Load(p, 0) // warm target's cache
			s.Local(pe).Load(p, 0)
			if p.CacheHits != 1 {
				t.Errorf("expected warm hit, hits=%d", p.CacheHits)
			}
		}
		pe.Barrier()
		if pe.ID() == 0 {
			Put(pe, s, 1, 0, []float64{7})
		}
		pe.Barrier()
		if pe.ID() == 1 {
			misses := p.LocalMisses
			if v := s.Local(pe).Load(p, 0); v != 7 {
				t.Errorf("got %v, want 7", v)
			}
			if p.LocalMisses != misses+1 {
				t.Error("target should re-miss after put invalidation")
			}
		}
	})
	_ = m
}

func TestGetRoundTrip(t *testing.T) {
	w, g, m := world(4)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[int64](pe, 8)
		loc := s.Local(pe)
		for i := 0; i < 8; i++ {
			loc.Store(p, i, int64(pe.ID()*10+i))
		}
		pe.Barrier()
		src := (pe.ID() + 1) % 4
		before := p.Now()
		got := Get[int64](pe, s, src, 2, 3)
		if p.Now() <= before {
			t.Error("get charged no time")
		}
		for i, v := range got {
			if v != int64(src*10+2+i) {
				t.Errorf("get[%d] = %d", i, v)
			}
		}
	})
	_ = m
}

func TestGetCostExceedsPutCost(t *testing.T) {
	w, g, _ := world(4)
	var putT, getT sim.Time
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[float64](pe, 100)
		pe.Barrier()
		if pe.ID() == 0 {
			t0 := p.Now()
			Put(pe, s, 2, 0, make([]float64, 10))
			putT = p.Now() - t0
			t0 = p.Now()
			Get[float64](pe, s, 2, 0, 10)
			getT = p.Now() - t0
		}
	})
	if getT <= putT {
		t.Fatalf("get (%v) should cost more than put (%v): round trip", getT, putT)
	}
}

func TestLocalPutSkipsWire(t *testing.T) {
	w, g, _ := world(2)
	var selfT, remoteT sim.Time
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[float64](pe, 100)
		if pe.ID() == 0 {
			t0 := p.Now()
			Put(pe, s, 0, 0, make([]float64, 10))
			selfT = p.Now() - t0
			t0 = p.Now()
			Put(pe, s, 1, 0, make([]float64, 10))
			remoteT = p.Now() - t0
		}
	})
	if selfT >= remoteT {
		t.Fatalf("local put (%v) should be cheaper than remote (%v)", selfT, remoteT)
	}
}

func TestFetchAdd(t *testing.T) {
	w, g, _ := world(4)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[int64](pe, 1)
		pe.Barrier()
		FetchAdd(pe, s, 0, 0, int64(pe.ID()+1)) // 1+2+3+4
		pe.Barrier()
		if v := s.LocalOf(0).Data()[0]; v != 10 {
			t.Errorf("counter = %d, want 10", v)
		}
	})
}

func TestQuietAndFenceCharge(t *testing.T) {
	w, g, m := world(2)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		t0 := p.Now()
		pe.Quiet()
		pe.Fence()
		if p.Now()-t0 != 2*m.Cfg.ShmFenceNS {
			t.Errorf("fence cost = %v", p.Now()-t0)
		}
	})
}

func TestAllreduceAndExscan(t *testing.T) {
	w, g, _ := world(4)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if s := Allreduce1(pe, float64(pe.ID()), OpSum); s != 6 {
			t.Errorf("sum = %v", s)
		}
		if mx := Allreduce1(pe, pe.ID(), OpMax); mx != 3 {
			t.Errorf("max = %v", mx)
		}
		if mn := Allreduce1(pe, pe.ID()+5, OpMin); mn != 5 {
			t.Errorf("min = %v", mn)
		}
		before, total := Exscan(pe, 2)
		if before != 2*pe.ID() || total != 8 {
			t.Errorf("exscan: %d %d", before, total)
		}
	})
}

func TestBroadcastAndCollect(t *testing.T) {
	w, g, _ := world(3)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		var data []int32
		if pe.ID() == 1 {
			data = []int32{11, 22}
		}
		got := Broadcast(pe, 1, data)
		if len(got) != 2 || got[1] != 22 {
			t.Errorf("broadcast: %v", got)
		}
		mine := make([]int32, pe.ID()) // lengths 0,1,2
		for i := range mine {
			mine[i] = int32(pe.ID())
		}
		all, offs := Collect(pe, mine)
		if len(all) != 3 {
			t.Errorf("collect len = %d", len(all))
		}
		if offs[1] != 0 || offs[2] != 1 {
			t.Errorf("collect offsets: %v", offs)
		}
	})
}

func TestShmDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		w, g, _ := world(8)
		g.Run(func(p *sim.Proc) {
			pe := w.PE(p)
			s := Alloc[float64](pe, 64)
			for iter := 0; iter < 10; iter++ {
				Put(pe, s, (pe.ID()+1)%8, iter%64, []float64{float64(iter)})
				pe.Barrier()
				s.Local(pe).Load(p, iter%64)
			}
		})
		return g.MaxTime()
	}
	first := run()
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("SHMEM timing nondeterministic: %v vs %v", got, first)
		}
	}
}

func TestEmptyPutGetNoCharge(t *testing.T) {
	w, g, _ := world(2)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		s := Alloc[float64](pe, 4)
		t0 := p.Now()
		Put(pe, s, 1-pe.ID(), 0, nil)
		if p.Now() != t0 {
			t.Error("empty put charged time")
		}
		got := Get[float64](pe, s, 1-pe.ID(), 0, 0)
		if len(got) != 0 || p.Now() != t0 {
			t.Error("empty get misbehaved")
		}
	})
}
