package shm_test

import (
	"fmt"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
)

// A minimal SHMEM program: symmetric allocation, a one-sided put, a barrier
// for completion, and a read on the target side.
func Example() {
	m := machine.MustNew(machine.Default(2))
	w := shm.NewWorld(m, numa.NewSpace(m))
	s := shm.AllocWorld[float64](w, 8)
	g := sim.NewGroup(2)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() == 0 {
			shm.Put(pe, s, 1, 3, []float64{2.5}) // one-sided: no receive code
		}
		pe.Barrier()
		if pe.ID() == 1 {
			fmt.Println("PE 1 sees", s.Local(pe).Load(p, 3))
		}
	})
	// Output: PE 1 sees 2.5
}
