package shm

import (
	"testing"

	"o2k/internal/sim"
)

func TestPutIdxScattersAndInvalidates(t *testing.T) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 256)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() == 1 {
			// Warm scattered lines.
			s.Local(pe).Load(p, 10)
			s.Local(pe).Load(p, 100)
		}
		pe.Barrier()
		if pe.ID() == 0 {
			PutIdx(pe, s, 1, []int32{10, 100, 200}, []float64{1, 2, 3})
		}
		pe.Barrier()
		if pe.ID() == 1 {
			loc := s.Local(pe)
			misses := p.LocalMisses
			if loc.Load(p, 10) != 1 || loc.Load(p, 100) != 2 || loc.Load(p, 200) != 3 {
				t.Error("putidx data wrong")
			}
			if p.LocalMisses < misses+2 {
				t.Error("putidx did not invalidate target lines")
			}
		}
	})
}

func TestPutIdxMismatchedPanics(t *testing.T) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 16)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		PutIdx(pe, s, 1, []int32{1, 2}, []float64{1})
	})
}

func TestPutIdxEmptyNoCharge(t *testing.T) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 16)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		t0 := p.Now()
		PutIdx(pe, s, 1-pe.ID(), nil, nil)
		if p.Now() != t0 {
			t.Error("empty putidx charged time")
		}
	})
}

func TestCollectiveAllocIdenticalHandles(t *testing.T) {
	w, g, _ := world(3)
	handles := make([]*Sym[int64], 3)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		handles[pe.ID()] = Alloc[int64](pe, 32)
	})
	if handles[0] != handles[1] || handles[1] != handles[2] {
		t.Fatal("collective alloc returned distinct handles")
	}
}

func TestSelfPutNotLogged(t *testing.T) {
	w, g, _ := world(2)
	s := AllocWorld[float64](w, 64)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		if pe.ID() == 0 {
			s.Local(pe).Load(p, 0) // warm own line
			Put(pe, s, 0, 0, []float64{5})
		}
		pe.Barrier()
		if pe.ID() == 0 {
			hits := p.CacheHits
			if s.Local(pe).Load(p, 0) != 5 {
				t.Error("self put lost")
			}
			if p.CacheHits != hits+1 {
				t.Error("self put invalidated own cache")
			}
		}
	})
}

func TestFetchAddSerializesVirtualTime(t *testing.T) {
	w, g, _ := world(4)
	s := AllocWorld[int64](w, 1)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		for i := 0; i < 10; i++ {
			FetchAdd(pe, s, 0, 0, 1)
		}
	})
	if v := s.LocalOf(0).Data()[0]; v != 40 {
		t.Fatalf("atomic counter = %d, want 40", v)
	}
}

func TestBarrierManyEpochs(t *testing.T) {
	w, g, _ := world(4)
	s := AllocWorld[float64](w, 128)
	g.Run(func(p *sim.Proc) {
		pe := w.PE(p)
		for epoch := 0; epoch < 50; epoch++ {
			Put(pe, s, (pe.ID()+1)%4, pe.ID(), []float64{float64(epoch)})
			pe.Barrier()
			got := s.Local(pe).Load(p, (pe.ID()+3)%4)
			// Second barrier: the next epoch's put must not overwrite the
			// slot before everyone has read it — the standard SHMEM
			// double-buffer/epoch discipline.
			pe.Barrier()
			if got != float64(epoch) {
				t.Errorf("epoch %d: got %v", epoch, got)
				return
			}
		}
	})
}
