package shm

import (
	"unsafe"

	"o2k/internal/sim"
)

// Number constrains reduction element types.
type Number interface {
	~int | ~int32 | ~int64 | ~uint64 | ~float64
}

// Op selects the combining operator of a reduction.
type Op int

// Reduction operators (shmem_*_to_all analogues).
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func combine[T Number](op Op, a, b T) T {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	panic("shm: unknown op")
}

// Allreduce combines vals elementwise across all PEs in PE order and returns
// the combined vector everywhere (shmem_double_sum_to_all and friends).
func Allreduce[T Number](pe *PE, vals []T, op Op) []T {
	pe.P.Collectives++
	cp := make([]T, len(vals))
	copy(cp, vals)
	res := pe.W.reducer.Do(pe.P, cp, func(all []any) any {
		out := make([]T, len(cp))
		first := true
		for _, v := range all {
			vs := v.([]T)
			if first {
				copy(out, vs)
				first = false
				continue
			}
			for i := range out {
				out[i] = combine(op, out[i], vs[i])
			}
		}
		return out
	}).([]T)
	bytes := len(vals) * 8
	stages := pe.W.M.LogStages(pe.Size())
	pe.P.Advance(sim.Time(stages) * sim.Time(bytes) * pe.W.M.Cfg.ShmPerByteNS)
	return res
}

// Allreduce1 is Allreduce for a single value.
func Allreduce1[T Number](pe *PE, v T, op Op) T {
	return Allreduce(pe, []T{v}, op)[0]
}

// Broadcast distributes root's data to every PE (shmem_broadcast).
func Broadcast[T any](pe *PE, root int, data []T) []T {
	pe.P.Collectives++
	var payload []T
	if pe.ID() == root {
		payload = make([]T, len(data))
		copy(payload, data)
	}
	res := pe.W.reducer.Do(pe.P, payload, func(all []any) any {
		for _, v := range all {
			if vs, ok := v.([]T); ok && vs != nil {
				return vs
			}
		}
		return []T(nil)
	}).([]T)
	bytes := len(res) * elemBytes[T]()
	pe.P.Advance(sim.Time(bytes) * pe.W.M.Cfg.ShmPerByteNS)
	return res
}

// Collect concatenates each PE's variable-length contribution in PE order
// (shmem_collect) and returns the whole vector plus per-PE offsets.
func Collect[T any](pe *PE, data []T) (all []T, offsets []int) {
	pe.P.Collectives++
	cp := make([]T, len(data))
	copy(cp, data)
	type gathered struct {
		all     []T
		offsets []int
	}
	res := pe.W.reducer.Do(pe.P, cp, func(vals []any) any {
		g := &gathered{offsets: make([]int, len(vals)+1)}
		for i, v := range vals {
			vs := v.([]T)
			g.offsets[i] = len(g.all)
			g.all = append(g.all, vs...)
		}
		g.offsets[len(vals)] = len(g.all)
		return g
	}).(*gathered)
	// One-sided collect: each PE pulls everyone else's block at get cost.
	foreignElems := len(res.all) - len(data)
	bytes := foreignElems * elemBytes[T]()
	cfg := &pe.W.M.Cfg
	pe.P.Advance(sim.Time(bytes)*(cfg.ShmPerByteNS+cfg.WirePerByteNS) +
		sim.Time(pe.Size()-1)*cfg.ShmGetOvNS)
	pe.P.BytesSent += uint64(len(data) * elemBytes[T]()) // own injected bytes
	pe.P.MsgsSent += uint64(pe.Size() - 1)
	return res.all, res.offsets[:pe.Size()]
}

// Exscan returns the exclusive prefix sum of per-PE contributions v (PE
// order) and the global total; the SHMEM codes use it to assign index ranges
// deterministically instead of racing on a remote counter.
func Exscan(pe *PE, v int) (before, total int) {
	pe.P.Collectives++
	res := pe.W.reducer.Do(pe.P, v, func(all []any) any {
		pre := make([]int, len(all)+1)
		for i, x := range all {
			pre[i+1] = pre[i] + x.(int)
		}
		return pre
	}).([]int)
	return res[pe.ID()], res[len(res)-1]
}

func elemBytes[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}
