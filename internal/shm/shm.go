// Package shm is the one-sided (SGI/Cray SHMEM-style) programming-model
// runtime: a symmetric heap, remote Put/Get, remote atomics, fences, and
// collectives.
//
// The defining contrast with the mp package is cost structure: a put is a
// processor-initiated remote store stream with sub-microsecond overhead and
// no receiver involvement, so fine-grained irregular communication is far
// cheaper than under two-sided message passing — but the programmer must
// manage symmetric allocation and explicit completion (fence/barrier), which
// shows up in the programming-effort comparison.
//
// Completion semantics: data written by Put becomes safely readable by the
// target after the next Barrier (or after the initiator's Quiet plus an
// application-level ordering, as in real SHMEM). Target-side cache lines
// covering put ranges are invalidated at the barrier, so the target's next
// accesses take (local) misses — the same memory-system behaviour the real
// machine exhibits.
package shm

import (
	"fmt"
	"sync"
	"unsafe"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

// World is the shared context of one SHMEM program: machine, memory space,
// synchronization structures, and the put log for barrier-time invalidation.
type World struct {
	M  *machine.Machine
	Sp *numa.Space

	barrier *sim.Barrier
	reducer *sim.Reducer

	mu       sync.Mutex
	putLines map[int][]uint64 // target PE -> global line addresses put this epoch
	atomMu   sync.Mutex       // serializes remote atomics
}

// NewWorld creates the SHMEM context for all processors of m, allocating
// symmetric memory out of sp.
func NewWorld(m *machine.Machine, sp *numa.Space) *World {
	w := &World{M: m, Sp: sp, putLines: make(map[int][]uint64)}
	stages := m.LogStages(m.Procs())
	w.barrier = sim.NewBarrierHook(m.Procs(),
		func(int) sim.Time { return sim.Time(stages) * m.Cfg.ShmBarrierHop },
		w.completePuts)
	w.reducer = sim.NewReducer(m.Procs(), func(int) sim.Time {
		return sim.Time(stages) * m.Cfg.ShmBarrierHop
	})
	return w
}

// completePuts runs at the barrier rendezvous: invalidate target-side cached
// lines covered by this epoch's puts, charging each target the invalidation
// processing time.
func (w *World) completePuts() []sim.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.putLines) == 0 {
		return nil
	}
	pen := make([]sim.Time, w.M.Procs())
	for pe, lines := range w.putLines {
		n := w.Sp.InvalidateLines(pe, lines)
		pen[pe] += sim.Time(n) * w.M.Cfg.CohInvalPerLine
		delete(w.putLines, pe)
	}
	return pen
}

// logPut records that lines [lo,hi) of global line space were put to pe.
//
// Perf note (DESIGN.md §5.4): the log is deliberately per-line rather than
// span-based. Collapsing it to coalesced [lo,hi) spans (invalidation is
// idempotent, so counts would not change) is a known win, but any code-line
// change in this package shifts Table 5's LoC measurement and therefore the
// frozen stdout bytes — do it in a PR that updates the golden hash.
func (w *World) logPut(pe int, lo, hi uint64) {
	w.mu.Lock()
	ls := w.putLines[pe]
	for l := lo; l < hi; l++ {
		ls = append(ls, l)
	}
	w.putLines[pe] = ls
	w.mu.Unlock()
}

// PE binds processor p to the world, yielding the per-processing-element
// handle (SHMEM's "PE" is its rank).
func (w *World) PE(p *sim.Proc) *PE {
	if p.ID() < 0 || p.ID() >= w.M.Procs() {
		panic(fmt.Sprintf("shm: proc %d outside world of size %d", p.ID(), w.M.Procs()))
	}
	return &PE{W: w, P: p}
}

// PE is one processing element of the SHMEM program.
type PE struct {
	W *World
	P *sim.Proc
}

// ID returns the PE number.
func (pe *PE) ID() int { return pe.P.ID() }

// Size returns the number of PEs.
func (pe *PE) Size() int { return pe.W.M.Procs() }

// Barrier synchronizes all PEs and completes all outstanding puts.
func (pe *PE) Barrier() {
	pe.P.Collectives++
	pe.W.barrier.Wait(pe.P)
}

// Quiet orders the PE's outstanding puts (shmem_quiet). In this conservative
// model puts are already delivered in program order, so Quiet only charges
// its completion cost.
func (pe *PE) Quiet() {
	prev := pe.P.SetPhase(sim.PhaseSync)
	pe.P.Advance(pe.W.M.Cfg.ShmFenceNS)
	pe.P.SetPhase(prev)
}

// Fence is shmem_fence; same conservative model as Quiet.
func (pe *PE) Fence() { pe.Quiet() }

// Sym is a symmetric-heap allocation: one block of n elements on every PE,
// all addressable remotely. The handle is identical on every PE (symmetric
// addresses), matching SHMEM's programming model.
type Sym[T any] struct {
	w     *World
	parts []*numa.Array[T]
}

// Alloc collectively allocates a symmetric array of n elements per PE. Every
// PE must call it at the same point (as with shmalloc).
func Alloc[T any](pe *PE, n int) *Sym[T] {
	res := pe.W.reducer.Do(pe.P, nil, func([]any) any {
		s := &Sym[T]{w: pe.W, parts: make([]*numa.Array[T], pe.Size())}
		for i := range s.parts {
			s.parts[i] = numa.NewPrivate[T](pe.W.Sp, i, n)
		}
		return s
	})
	s := res.(*Sym[T])
	var z T
	pe.P.AllocBytes += uint64(n) * uint64(unsafe.Sizeof(z))
	return s
}

// AllocWorld allocates a symmetric array outside the SPMD region (the
// moral equivalent of static symmetric data segments, which SHMEM programs
// rely on for setup). Allocation order is the caller's program order, so
// addresses — and therefore cache behaviour — are deterministic.
func AllocWorld[T any](w *World, n int) *Sym[T] {
	s := &Sym[T]{w: w, parts: make([]*numa.Array[T], w.M.Procs())}
	for i := range s.parts {
		s.parts[i] = numa.NewPrivate[T](w.Sp, i, n)
	}
	return s
}

// Local returns this PE's own block for costed local access.
func (s *Sym[T]) Local(pe *PE) *numa.Array[T] { return s.parts[pe.ID()] }

// LocalOf returns PE p's block (for verification and result collection only;
// model code must use Put/Get for remote blocks).
func (s *Sym[T]) LocalOf(p int) *numa.Array[T] { return s.parts[p] }

// Len returns the per-PE element count.
func (s *Sym[T]) Len() int { return s.parts[0].Len() }

// Put copies src into the target PE's block at offset off. The initiator
// pays overhead + per-byte + wire time; target-side visibility completes at
// the next Barrier.
func Put[T any](pe *PE, s *Sym[T], target, off int, src []T) {
	if len(src) == 0 {
		return
	}
	w := pe.W
	var z T
	bytes := len(src) * int(unsafe.Sizeof(z))
	cfg := &w.M.Cfg
	cost := cfg.ShmPutOvNS + sim.Time(bytes)*cfg.ShmPerByteNS
	if target != pe.ID() {
		cost += w.M.Wire(bytes, w.M.Hops(pe.ID(), target))
	}
	pe.P.Advance(cost)
	pe.P.BytesSent += uint64(bytes)
	pe.P.MsgsSent++

	dst := s.parts[target]
	copy(dst.Data()[off:off+len(src)], src)
	if target != pe.ID() {
		lo, hi := dst.LineRange(off, off+len(src))
		w.logPut(target, lo, hi)
	}
}

// PutIdx is the indexed put (shmem_ixput): vals[i] is written to element
// idx[i] of the target PE's block, as one vectored transfer. The initiator
// pays a single overhead plus the per-byte and wire costs; target-side lines
// covering the touched elements are invalidated at the next Barrier.
func PutIdx[T any](pe *PE, s *Sym[T], target int, idx []int32, vals []T) {
	if len(idx) != len(vals) {
		panic("shm: PutIdx index/value length mismatch")
	}
	if len(idx) == 0 {
		return
	}
	w := pe.W
	var z T
	bytes := len(vals) * int(unsafe.Sizeof(z))
	cfg := &w.M.Cfg
	cost := cfg.ShmPutOvNS + sim.Time(bytes)*cfg.ShmPerByteNS
	if target != pe.ID() {
		cost += w.M.Wire(bytes, w.M.Hops(pe.ID(), target))
	}
	pe.P.Advance(cost)
	pe.P.BytesSent += uint64(bytes)
	pe.P.MsgsSent++

	dst := s.parts[target]
	data := dst.Data()
	for i, ix := range idx {
		data[ix] = vals[i]
	}
	if target != pe.ID() {
		w.mu.Lock()
		ls := w.putLines[target]
		for _, ix := range idx {
			lo, hi := dst.LineRange(int(ix), int(ix)+1)
			for l := lo; l < hi; l++ {
				ls = append(ls, l)
			}
		}
		w.putLines[target] = ls
		w.mu.Unlock()
	}
}

// Get copies n elements from the target PE's block at offset off into a
// fresh slice. Gets are synchronous: the initiator pays the round trip.
func Get[T any](pe *PE, s *Sym[T], target, off, n int) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	w := pe.W
	var z T
	bytes := n * int(unsafe.Sizeof(z))
	cfg := &w.M.Cfg
	cost := cfg.ShmGetOvNS + sim.Time(bytes)*cfg.ShmPerByteNS
	if target != pe.ID() {
		h := w.M.Hops(pe.ID(), target)
		cost += w.M.Wire(0, h) + w.M.Wire(bytes, h) // request + reply
	}
	pe.P.Advance(cost)
	pe.P.BytesSent += uint64(bytes)
	pe.P.MsgsSent++
	copy(out, s.parts[target].Data()[off:off+n])
	return out
}

// FetchAdd atomically adds delta to element off of the target PE's block and
// returns the previous value (shmem_fadd). Note: concurrent FetchAdds from
// different PEs are serialized in host order, so return values are only
// deterministic when the application imposes an order.
func FetchAdd(pe *PE, s *Sym[int64], target, off int, delta int64) int64 {
	w := pe.W
	pe.P.Advance(w.M.Cfg.ShmAtomicNS + w.M.Wire(8, w.M.Hops(pe.ID(), target)))
	pe.P.MsgsSent++
	w.atomMu.Lock()
	d := s.parts[target].Data()
	old := d[off]
	d[off] = old + delta
	w.atomMu.Unlock()
	return old
}
