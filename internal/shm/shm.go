// Package shm is the one-sided (SGI/Cray SHMEM-style) programming-model
// runtime: a symmetric heap, remote Put/Get, remote atomics, fences, and
// collectives.
//
// The defining contrast with the mp package is cost structure: a put is a
// processor-initiated remote store stream with sub-microsecond overhead and
// no receiver involvement, so fine-grained irregular communication is far
// cheaper than under two-sided message passing — but the programmer must
// manage symmetric allocation and explicit completion (fence/barrier), which
// shows up in the programming-effort comparison.
//
// Completion semantics: data written by Put becomes safely readable by the
// target after the next Barrier (or after the initiator's Quiet plus an
// application-level ordering, as in real SHMEM). Target-side cache lines
// covering put ranges are invalidated at the barrier, so the target's next
// accesses take (local) misses — the same memory-system behaviour the real
// machine exhibits.
package shm

import (
	"fmt"
	"slices"
	"sync"
	"unsafe"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

// World is the shared context of one SHMEM program: machine, memory space,
// synchronization structures, and the put log for barrier-time invalidation.
type World struct {
	M  *machine.Machine
	Sp *numa.Space

	barrier *sim.Barrier
	reducer *sim.Reducer

	mu       sync.Mutex
	putSpans [][]span   // per target PE: global line spans put this epoch
	atomMu   sync.Mutex // serializes remote atomics
}

// span is a half-open range [lo, hi) of global line addresses. The put log is
// span-based (DESIGN.md §5.9): adjacent puts coalesce at log time and the
// remainder merges at the barrier. Invalidation is idempotent — each present
// line evicts exactly once however often it was put — so replacing the old
// per-line multiset log with the span union leaves eviction counts, and
// therefore every penalty and counter, unchanged.
type span struct{ lo, hi uint64 }

// NewWorld creates the SHMEM context for all processors of m, allocating
// symmetric memory out of sp.
func NewWorld(m *machine.Machine, sp *numa.Space) *World {
	w := &World{M: m, Sp: sp, putSpans: make([][]span, m.Procs())}
	stages := m.LogStages(m.Procs())
	w.barrier = sim.NewBarrierHook(m.Procs(),
		func(int) sim.Time { return sim.Time(stages) * m.Cfg.ShmBarrierHop },
		w.completePuts)
	w.reducer = sim.NewReducer(m.Procs(), func(int) sim.Time {
		return sim.Time(stages) * m.Cfg.ShmBarrierHop
	})
	return w
}

// completePuts runs at the barrier rendezvous: invalidate target-side cached
// lines covered by this epoch's puts, charging each target the invalidation
// processing time. Each target's spans are sorted, merged, and probed once
// per line of the union — identical evictions to the old per-line log.
func (w *World) completePuts() []sim.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	var pen []sim.Time
	for pe, spans := range w.putSpans {
		if len(spans) == 0 {
			continue
		}
		if pen == nil {
			pen = make([]sim.Time, w.M.Procs())
		}
		slices.SortFunc(spans, func(a, b span) int {
			switch {
			case a.lo < b.lo:
				return -1
			case a.lo > b.lo:
				return 1
			default:
				return 0
			}
		})
		n := 0
		cur := spans[0]
		for _, s := range spans[1:] {
			if s.lo <= cur.hi {
				if s.hi > cur.hi {
					cur.hi = s.hi
				}
				continue
			}
			n += w.Sp.InvalidateSpan(pe, cur.lo, cur.hi)
			cur = s
		}
		n += w.Sp.InvalidateSpan(pe, cur.lo, cur.hi)
		pen[pe] += sim.Time(n) * w.M.Cfg.CohInvalPerLine
		w.putSpans[pe] = spans[:0]
	}
	return pen
}

// logPut records that lines [lo,hi) of global line space were put to pe,
// coalescing with the previous record when the ranges touch — consecutive
// puts into adjacent staging offsets (the common pattern) stay one span.
func (w *World) logPut(pe int, lo, hi uint64) {
	if hi <= lo {
		return
	}
	w.mu.Lock()
	w.logPutLocked(pe, lo, hi)
	w.mu.Unlock()
}

// logPutLocked is logPut's body for callers that batch several ranges under
// one acquisition of w.mu (see PutIdx).
func (w *World) logPutLocked(pe int, lo, hi uint64) {
	sp := w.putSpans[pe]
	if n := len(sp); n > 0 && lo <= sp[n-1].hi && sp[n-1].lo <= hi {
		if lo < sp[n-1].lo {
			sp[n-1].lo = lo
		}
		if hi > sp[n-1].hi {
			sp[n-1].hi = hi
		}
	} else {
		sp = append(sp, span{lo, hi})
	}
	w.putSpans[pe] = sp
}

// PE binds processor p to the world, yielding the per-processing-element
// handle (SHMEM's "PE" is its rank).
func (w *World) PE(p *sim.Proc) *PE {
	if p.ID() < 0 || p.ID() >= w.M.Procs() {
		panic(fmt.Sprintf("shm: proc %d outside world of size %d", p.ID(), w.M.Procs()))
	}
	return &PE{W: w, P: p}
}

// PE is one processing element of the SHMEM program.
type PE struct {
	W *World
	P *sim.Proc
}

// ID returns the PE number.
func (pe *PE) ID() int { return pe.P.ID() }

// Size returns the number of PEs.
func (pe *PE) Size() int { return pe.W.M.Procs() }

// Barrier synchronizes all PEs and completes all outstanding puts.
func (pe *PE) Barrier() {
	pe.P.Collectives++
	pe.W.barrier.Wait(pe.P)
}

// Quiet orders the PE's outstanding puts (shmem_quiet). In this conservative
// model puts are already delivered in program order, so Quiet only charges
// its completion cost.
func (pe *PE) Quiet() {
	prev := pe.P.SetPhase(sim.PhaseSync)
	pe.P.Advance(pe.W.M.Cfg.ShmFenceNS)
	pe.P.SetPhase(prev)
}

// Fence is shmem_fence; same conservative model as Quiet.
func (pe *PE) Fence() { pe.Quiet() }

// Sym is a symmetric-heap allocation: one block of n elements on every PE,
// all addressable remotely. The handle is identical on every PE (symmetric
// addresses), matching SHMEM's programming model.
type Sym[T any] struct {
	w     *World
	parts []*numa.Array[T]
}

// Alloc collectively allocates a symmetric array of n elements per PE. Every
// PE must call it at the same point (as with shmalloc).
func Alloc[T any](pe *PE, n int) *Sym[T] {
	res := pe.W.reducer.Do(pe.P, nil, func([]any) any {
		s := &Sym[T]{w: pe.W, parts: make([]*numa.Array[T], pe.Size())}
		for i := range s.parts {
			s.parts[i] = numa.NewPrivate[T](pe.W.Sp, i, n)
		}
		return s
	})
	s := res.(*Sym[T])
	var z T
	pe.P.AllocBytes += uint64(n) * uint64(unsafe.Sizeof(z))
	return s
}

// AllocWorld allocates a symmetric array outside the SPMD region (the
// moral equivalent of static symmetric data segments, which SHMEM programs
// rely on for setup). Allocation order is the caller's program order, so
// addresses — and therefore cache behaviour — are deterministic.
func AllocWorld[T any](w *World, n int) *Sym[T] {
	s := &Sym[T]{w: w, parts: make([]*numa.Array[T], w.M.Procs())}
	for i := range s.parts {
		s.parts[i] = numa.NewPrivate[T](w.Sp, i, n)
	}
	return s
}

// Free releases every PE's block of s for host-side reuse (numa.Release):
// the symmetric handle is dead afterwards. Callers must ensure all puts
// targeting s have completed at a barrier before freeing — a released block
// must never be accessed again, locally or remotely.
func Free[T any](s *Sym[T]) {
	for _, a := range s.parts {
		numa.Release(a)
	}
	s.parts = nil
}

// Local returns this PE's own block for costed local access.
func (s *Sym[T]) Local(pe *PE) *numa.Array[T] { return s.parts[pe.ID()] }

// LocalOf returns PE p's block (for verification and result collection only;
// model code must use Put/Get for remote blocks).
func (s *Sym[T]) LocalOf(p int) *numa.Array[T] { return s.parts[p] }

// Len returns the per-PE element count.
func (s *Sym[T]) Len() int { return s.parts[0].Len() }

// Put copies src into the target PE's block at offset off. The initiator
// pays overhead + per-byte + wire time; target-side visibility completes at
// the next Barrier.
func Put[T any](pe *PE, s *Sym[T], target, off int, src []T) {
	if len(src) == 0 {
		return
	}
	w := pe.W
	var z T
	bytes := len(src) * int(unsafe.Sizeof(z))
	cfg := &w.M.Cfg
	cost := cfg.ShmPutOvNS + sim.Time(bytes)*cfg.ShmPerByteNS
	if target != pe.ID() {
		cost += w.M.Wire(bytes, w.M.Hops(pe.ID(), target))
	}
	pe.P.Advance(cost)
	pe.P.BytesSent += uint64(bytes)
	pe.P.MsgsSent++

	dst := s.parts[target]
	copy(dst.Data()[off:off+len(src)], src)
	if target != pe.ID() {
		lo, hi := dst.LineRange(off, off+len(src))
		w.logPut(target, lo, hi)
	}
}

// PutIdx is the indexed put (shmem_ixput): vals[i] is written to element
// idx[i] of the target PE's block, as one vectored transfer. The initiator
// pays a single overhead plus the per-byte and wire costs; target-side lines
// covering the touched elements are invalidated at the next Barrier.
func PutIdx[T any](pe *PE, s *Sym[T], target int, idx []int32, vals []T) {
	if len(idx) != len(vals) {
		panic("shm: PutIdx index/value length mismatch")
	}
	if len(idx) == 0 {
		return
	}
	w := pe.W
	var z T
	bytes := len(vals) * int(unsafe.Sizeof(z))
	cfg := &w.M.Cfg
	cost := cfg.ShmPutOvNS + sim.Time(bytes)*cfg.ShmPerByteNS
	if target != pe.ID() {
		cost += w.M.Wire(bytes, w.M.Hops(pe.ID(), target))
	}
	pe.P.Advance(cost)
	pe.P.BytesSent += uint64(bytes)
	pe.P.MsgsSent++

	dst := s.parts[target]
	data := dst.Data()
	for i, ix := range idx {
		data[ix] = vals[i]
	}
	if target != pe.ID() {
		w.mu.Lock()
		for _, ix := range idx {
			lo, hi := dst.LineRange(int(ix), int(ix)+1)
			w.logPutLocked(target, lo, hi)
		}
		w.mu.Unlock()
	}
}

// Get copies n elements from the target PE's block at offset off into a
// fresh slice. Gets are synchronous: the initiator pays the round trip.
func Get[T any](pe *PE, s *Sym[T], target, off, n int) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	w := pe.W
	var z T
	bytes := n * int(unsafe.Sizeof(z))
	cfg := &w.M.Cfg
	cost := cfg.ShmGetOvNS + sim.Time(bytes)*cfg.ShmPerByteNS
	if target != pe.ID() {
		h := w.M.Hops(pe.ID(), target)
		cost += w.M.Wire(0, h) + w.M.Wire(bytes, h) // request + reply
	}
	pe.P.Advance(cost)
	pe.P.BytesSent += uint64(bytes)
	pe.P.MsgsSent++
	copy(out, s.parts[target].Data()[off:off+n])
	return out
}

// FetchAdd atomically adds delta to element off of the target PE's block and
// returns the previous value (shmem_fadd). Note: concurrent FetchAdds from
// different PEs are serialized in host order, so return values are only
// deterministic when the application imposes an order.
//
// Atomics count as messages but not payload bytes: the traffic tables follow
// the paper in attributing BytesSent to bulk data motion (puts, gets,
// messages), while an 8-byte atomic is pure latency/occupancy — its cost is
// the ShmAtomicNS + wire charge below, and adding its operand to BytesSent
// would double-count it as data volume.
func FetchAdd(pe *PE, s *Sym[int64], target, off int, delta int64) int64 {
	w := pe.W
	pe.P.Advance(w.M.Cfg.ShmAtomicNS + w.M.Wire(8, w.M.Hops(pe.ID(), target)))
	pe.P.MsgsSent++
	w.atomMu.Lock()
	d := s.parts[target].Data()
	old := d[off]
	d[off] = old + delta
	w.atomMu.Unlock()
	return old
}
