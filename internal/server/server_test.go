package server

// The experiment server's contract, tested over real HTTP (httptest):
// byte-identity of streamed output with the CLI, single-flight across
// concurrent clients, per-request cancellation on client disconnect,
// bounded admission with 429, drain semantics, and exactly-once cold
// compute across two daemons sharing one cache directory via leases.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"o2k/internal/core"
	"o2k/internal/experiments"
	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
	"o2k/internal/runner/lease"
)

// The test-block experiment: one Standalone registry entry (so "all" and
// the golden bytes never see it) whose single cell blocks on a package-level
// gate. Tests reset the gate per engine; the cell key is constant, which is
// fine because every test uses a fresh engine.
var (
	blockMu      sync.Mutex
	blockGate    chan struct{}
	blockStarted chan struct{}
	blockCount   int
)

// resetBlock arms the test-block cell with a fresh gate and returns it with
// the compute-started signal channel.
func resetBlock() (gate chan struct{}, started chan struct{}) {
	blockMu.Lock()
	defer blockMu.Unlock()
	blockGate = make(chan struct{})
	blockStarted = make(chan struct{}, 64)
	blockCount = 0
	return blockGate, blockStarted
}

// openBlock replaces the gate with an already-open one, so the next compute
// finishes immediately.
func openBlock() {
	ch := make(chan struct{})
	close(ch)
	blockMu.Lock()
	blockGate = ch
	blockMu.Unlock()
}

func blockComputes() int {
	blockMu.Lock()
	defer blockMu.Unlock()
	return blockCount
}

func init() {
	experiments.Register(experiments.Spec{
		Name:       "test-block",
		Title:      "server-test cell that blocks on a gate",
		Standalone: true,
		Build: func(ctx context.Context, e *runner.Engine, o experiments.Opts) *core.Table {
			blockMu.Lock()
			gate, started := blockGate, blockStarted
			blockMu.Unlock()
			v, err := e.DoCtx(ctx, "test-block-cell", "test-block", func(cctx context.Context) (any, error) {
				blockMu.Lock()
				blockCount++
				blockMu.Unlock()
				select {
				case started <- struct{}{}:
				default:
				}
				select {
				case <-gate:
					return "ok", nil
				case <-cctx.Done():
					return nil, context.Cause(cctx)
				}
			})
			tb := &core.Table{Title: "test-block", Header: []string{"result"}}
			if err != nil {
				tb.AddRow("FAILED(" + err.Error() + ")")
			} else {
				tb.AddRow(v.(string))
			}
			return tb
		},
	})
}

// newTestServer stands up a Server over a fresh engine behind httptest.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *runner.Engine) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = runner.New(0)
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, cfg.Engine
}

// result is the final NDJSON line of an experiment stream.
type result struct {
	Type     string `json:"type"`
	Exit     int    `json:"exit"`
	Failures int    `json:"failures"`
	Output   string `json:"output"`
	Error    string `json:"error"`
}

// postExperiment submits body to the experiments endpoint and returns the
// response code, the cell lines, and the terminal result line.
func postExperiment(t *testing.T, url, body string) (int, []map[string]any, result) {
	t.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/experiments: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, nil, result{Error: string(data)}
	}
	var (
		cells []map[string]any
		res   result
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "cell":
			var m map[string]any
			json.Unmarshal(sc.Bytes(), &m)
			cells = append(cells, m)
		case "result", "error":
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				t.Fatalf("bad terminal line %q: %v", sc.Text(), err)
			}
			res.Type = probe.Type
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp.StatusCode, cells, res
}

// waitCond polls cond for up to five seconds.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestExperimentsStreamMatchesCLIBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	ts, _, _ := newTestServer(t, Config{})
	code, cells, res := postExperiment(t, ts.URL, `{"exp":"all","quick":true}`)
	if code != http.StatusOK || res.Type != "result" {
		t.Fatalf("quick suite: code=%d terminal=%+v", code, res)
	}
	if res.Exit != 0 || res.Failures != 0 {
		t.Fatalf("quick suite failed: exit=%d failures=%d", res.Exit, res.Failures)
	}
	if len(cells) == 0 {
		t.Fatal("no cell events were streamed")
	}
	want := experiments.Render(experiments.RunAllCtx(context.Background(), runner.New(0), experiments.QuickOpts()))
	if res.Output != want {
		t.Fatalf("server output is not byte-identical to the CLI rendering:\nserver %d bytes, cli %d bytes", len(res.Output), len(want))
	}
}

func TestConcurrentIdenticalSubmissionsComputeOnce(t *testing.T) {
	gate, started := resetBlock()
	ts, _, eng := newTestServer(t, Config{MaxInflight: 16})

	const n = 8
	type resp struct {
		code int
		res  result
	}
	results := make(chan resp, n)
	for i := 0; i < n; i++ {
		go func() {
			code, _, res := postExperiment(t, ts.URL, `{"exp":"test-block"}`)
			results <- resp{code, res}
		}()
	}
	<-started
	// All other submissions must be waiting on the one in-flight compute.
	waitCond(t, "7 deduplicated requests", func() bool {
		for _, c := range eng.Report().Cells {
			if c.Label == "test-block" && c.Dedups >= n-1 {
				return true
			}
		}
		return false
	})
	close(gate)
	var first string
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK || r.res.Exit != 0 || !strings.Contains(r.res.Output, "ok") {
			t.Fatalf("client %d: code=%d res=%+v", i, r.code, r.res)
		}
		if first == "" {
			first = r.res.Output
		} else if r.res.Output != first {
			t.Fatalf("clients received different bytes")
		}
	}
	if got := blockComputes(); got != 1 {
		t.Fatalf("%d identical submissions ran the compute %d times, want exactly 1", n, got)
	}
}

func TestClientDisconnectAbortsOnlyItsCells(t *testing.T) {
	_, started := resetBlock()
	ts, _, eng := newTestServer(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/experiments",
			strings.NewReader(`{"exp":"test-block"}`))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	<-started

	// Mid-stream disconnect: the request's only cell loses its last
	// reference, is aborted, and retired from the engine.
	cancel()
	<-done
	waitCond(t, "aborted cell retirement", func() bool { return eng.Report().Unique == 0 })

	// The key recomputes for the next client as if it had never been asked.
	openBlock()
	code, _, res := postExperiment(t, ts.URL, `{"exp":"test-block"}`)
	if code != http.StatusOK || res.Exit != 0 || !strings.Contains(res.Output, "ok") {
		t.Fatalf("post-disconnect request: code=%d res=%+v", code, res)
	}
	if got := blockComputes(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (aborted attempt + recompute)", got)
	}
	if rep := eng.Report(); rep.Unique != 1 || rep.Failures != 0 {
		t.Fatalf("engine report after recompute: unique=%d failures=%d", rep.Unique, rep.Failures)
	}
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

func TestAdmissionQueueOverflowAnswers429(t *testing.T) {
	gate, started := resetBlock()
	ts, _, _ := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})

	results := make(chan int, 2)
	post := func() {
		code, _, _ := postExperiment(t, ts.URL, `{"exp":"test-block"}`)
		results <- code
	}
	go post() // request A: takes the run slot, blocks on the gate
	<-started
	go post() // request B: waits in the queue
	waitCond(t, "one queued request", func() bool {
		return strings.Contains(scrapeMetrics(t, ts.URL), "o2k_requests_pending 2")
	})

	// Request C: beyond inflight+queue — refused, fast.
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"exp":"test-block"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d (%s), want 429", resp.StatusCode, body)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d", i, code)
		}
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), `o2k_admission_rejected_total{reason="queue_full"} 1`) {
		t.Fatal("queue_full rejection not counted in /metrics")
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{})
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	s.Drain()
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	code, _, res := postExperiment(t, ts.URL, `{"exp":"test-block"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST after drain: code=%d res=%+v, want 503", code, res)
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "o2k_draining 1") {
		t.Fatal("drain state not reflected in /metrics")
	}
}

func TestCellEndpointSourcesAndValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	get := func(path string) (int, cellResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr cellResponse
		json.NewDecoder(resp.Body).Decode(&cr)
		return resp.StatusCode, cr
	}

	code, cr := get("/v1/cells/stencil/mp/2?quick=1")
	if code != http.StatusOK || cr.Source != "compute" || len(cr.Metrics) == 0 {
		t.Fatalf("cold cell: code=%d resp=%+v", code, cr)
	}
	if m, err := core.DecodeMetrics(cr.Metrics); err != nil || m.Procs != 2 {
		t.Fatalf("metrics payload does not round-trip the strict codec: %v %+v", err, m)
	}
	if code, cr = get("/v1/cells/stencil/mp/2?quick=1"); code != http.StatusOK || cr.Source != "memo" {
		t.Fatalf("warm cell: code=%d source=%q, want memo", code, cr.Source)
	}
	if code, cr = get("/v1/cells/hybrid/mp+sas/2?quick=1"); code != http.StatusOK || cr.Source != "compute" {
		t.Fatalf("hybrid cell: code=%d resp=%+v", code, cr)
	}

	for path, want := range map[string]int{
		"/v1/cells/warp/mp/2":        http.StatusNotFound,
		"/v1/cells/stencil/openmp/2": http.StatusBadRequest,
		"/v1/cells/stencil/mp/zero":  http.StatusBadRequest,
		"/v1/cells/mesh/mp+sas/2":    http.StatusBadRequest,
	} {
		if code, _ := get(path); code != want {
			t.Errorf("GET %s = %d, want %d", path, code, want)
		}
	}
}

func TestReportCacheAndMetricsEndpoints(t *testing.T) {
	dir := t.TempDir()
	dc, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.New(0)
	eng.SetCache(dc)
	ts, _, _ := newTestServer(t, Config{Engine: eng, Cache: dc})

	// Populate one cell so every surface has something to show.
	if resp, _ := http.Get(ts.URL + "/v1/cells/stencil/sas/2?quick=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up cell request: %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if rep["unique_cells"].(float64) < 1 {
		t.Fatalf("report shows no cells: %v", rep)
	}
	resp, _ = http.Get(ts.URL + "/v1/report?format=text")
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "Run report") {
		t.Fatalf("text report missing header:\n%s", text)
	}

	resp, _ = http.Get(ts.URL + "/v1/cache?verify=1")
	var cache cacheResponse
	json.NewDecoder(resp.Body).Decode(&cache)
	resp.Body.Close()
	if !cache.Enabled || cache.Dir != dir || cache.Counters == nil || cache.Verify == nil {
		t.Fatalf("cache document incomplete: %+v", cache)
	}
	if cache.Verify.Bad != 0 {
		t.Fatalf("fresh cache verified bad: %+v", cache.Verify)
	}

	// A memory-only server reports the cache as disabled.
	ts2, _, _ := newTestServer(t, Config{})
	resp, _ = http.Get(ts2.URL + "/v1/cache")
	var nocache cacheResponse
	json.NewDecoder(resp.Body).Decode(&nocache)
	resp.Body.Close()
	if nocache.Enabled {
		t.Fatalf("memory-only server claims a cache: %+v", nocache)
	}

	m := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"o2k_build_info{",
		`o2k_cell_events_total{kind="compute"}`,
		`o2k_http_requests_total{code="200"}`,
		"o2k_requests_pending 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, m)
		}
	}
}

func TestTwoServersSharingCacheComputeEachCellOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick experiment on two engines")
	}
	dir := t.TempDir()
	var (
		countMu  sync.Mutex
		computes = map[string]int{}
	)
	countHook := func(ev runner.Event) {
		if ev.Kind == runner.EventCompute {
			countMu.Lock()
			computes[ev.Key]++
			countMu.Unlock()
		}
	}
	mk := func(shard int) *httptest.Server {
		dc, err := diskcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng := runner.New(4)
		eng.SetCache(dc)
		eng.SetLeases(lease.New(lease.Config{Dir: dir, Shard: shard, Shards: 2}))
		ts, _, _ := newTestServer(t, Config{Engine: eng, Cache: dc, Hook: countHook})
		return ts
	}
	a, b := mk(0), mk(1)

	type out struct {
		code int
		res  result
	}
	results := make(chan out, 2)
	for _, ts := range []*httptest.Server{a, b} {
		go func(url string) {
			code, _, res := postExperiment(t, url, `{"exp":"regular-control","quick":true}`)
			results <- out{code, res}
		}(ts.URL)
	}
	var outputs []string
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK || r.res.Exit != 0 {
			t.Fatalf("daemon %d: code=%d res=%+v", i, r.code, r.res)
		}
		outputs = append(outputs, r.res.Output)
	}
	if outputs[0] != outputs[1] {
		t.Fatal("the two daemons rendered different bytes")
	}
	// Exactly-once is a disk-cache property: only persisted cells can be
	// adopted across processes. Memory-only cells (e.g. the n-body per-P
	// plans, which deliberately carry no codec) compute once per daemon.
	probe, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	countMu.Lock()
	defer countMu.Unlock()
	if len(computes) == 0 {
		t.Fatal("no computes recorded — the hook is not wired")
	}
	persisted := 0
	for key, n := range computes {
		if _, ok := probe.Get(key); !ok {
			continue
		}
		persisted++
		if n != 1 {
			t.Errorf("cell %s computed %d times across the fleet, want exactly 1", key, n)
		}
	}
	if persisted == 0 {
		t.Fatal("no persisted cells were computed — the cache is not wired")
	}
}
