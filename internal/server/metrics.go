package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
)

// Metrics is the server's telemetry: cell lifecycle counters fed from the
// engine's SetHook seam (so the hot path carries no new instrumentation —
// the hook call sites the tracing subsystem already pays for are the whole
// cost), plus HTTP admission counters maintained by the handler layer.
// All counters are monotonic; gauges (queue depth, inflight) are computed at
// scrape time from the admission state.
type Metrics struct {
	// One counter pair per runner.EventKind, indexed by the kind value.
	events  [5]atomic.Int64
	eventNS [5]atomic.Int64
	// Compute attempts that ended in error (the failure signal a dashboard
	// alerts on; retries that eventually succeed still count here once per
	// failed attempt).
	computeErrs atomic.Int64

	rejectedQueue atomic.Int64 // admissions refused with 429 (queue full)
	rejectedDrain atomic.Int64 // admissions refused with 503 (draining)

	mu    sync.Mutex
	codes map[int]int64 // HTTP responses by status code
}

func newMetrics() *Metrics {
	return &Metrics{codes: make(map[int]int64)}
}

// Hook returns the engine hook feeding the cell counters. It is installed
// engine-wide by New, so the counters cover every request of the daemon's
// lifetime, including cells other observers (per-request NDJSON streams)
// also saw.
func (m *Metrics) Hook() runner.Hook {
	return func(ev runner.Event) {
		k := int(ev.Kind)
		if k >= len(m.events) {
			return
		}
		m.events[k].Add(1)
		m.eventNS[k].Add(int64(ev.Dur))
		if ev.Kind == runner.EventCompute && ev.Err != "" {
			m.computeErrs.Add(1)
		}
	}
}

func (m *Metrics) observeHTTP(code int) {
	m.mu.Lock()
	m.codes[code]++
	m.mu.Unlock()
}

// write renders the Prometheus text exposition. queued/inflight/draining are
// the admission gauges sampled by the caller at scrape time.
func (m *Metrics) write(w io.Writer, queued, inflight int, draining bool) {
	fmt.Fprintf(w, "# HELP o2k_build_info Build identity of the serving binary (the cache version fence).\n")
	fmt.Fprintf(w, "# TYPE o2k_build_info gauge\n")
	fmt.Fprintf(w, "o2k_build_info{fingerprint=%q,schema=%q} 1\n", diskcache.Fingerprint(), diskcache.Schema)

	fmt.Fprintf(w, "# HELP o2k_cell_events_total Cell lifecycle events by kind (engine hook seam).\n")
	fmt.Fprintf(w, "# TYPE o2k_cell_events_total counter\n")
	for k := range m.events {
		fmt.Fprintf(w, "o2k_cell_events_total{kind=%q} %d\n", runner.EventKind(k), m.events[k].Load())
	}
	fmt.Fprintf(w, "# HELP o2k_cell_event_seconds_total Wall time spanned by cell events, by kind.\n")
	fmt.Fprintf(w, "# TYPE o2k_cell_event_seconds_total counter\n")
	for k := range m.eventNS {
		fmt.Fprintf(w, "o2k_cell_event_seconds_total{kind=%q} %g\n", runner.EventKind(k), float64(m.eventNS[k].Load())/1e9)
	}
	fmt.Fprintf(w, "# HELP o2k_cell_compute_failures_total Compute attempts that ended in error.\n")
	fmt.Fprintf(w, "# TYPE o2k_cell_compute_failures_total counter\n")
	fmt.Fprintf(w, "o2k_cell_compute_failures_total %d\n", m.computeErrs.Load())

	fmt.Fprintf(w, "# HELP o2k_http_requests_total HTTP responses by status code.\n")
	fmt.Fprintf(w, "# TYPE o2k_http_requests_total counter\n")
	m.mu.Lock()
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "o2k_http_requests_total{code=\"%d\"} %d\n", c, m.codes[c])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP o2k_admission_rejected_total Requests refused at admission, by reason.\n")
	fmt.Fprintf(w, "# TYPE o2k_admission_rejected_total counter\n")
	fmt.Fprintf(w, "o2k_admission_rejected_total{reason=\"queue_full\"} %d\n", m.rejectedQueue.Load())
	fmt.Fprintf(w, "o2k_admission_rejected_total{reason=\"draining\"} %d\n", m.rejectedDrain.Load())

	fmt.Fprintf(w, "# HELP o2k_requests_pending Admitted experiment requests: running plus queued.\n")
	fmt.Fprintf(w, "# TYPE o2k_requests_pending gauge\n")
	fmt.Fprintf(w, "o2k_requests_pending %d\n", queued)
	fmt.Fprintf(w, "# HELP o2k_requests_inflight Experiment requests holding a run slot.\n")
	fmt.Fprintf(w, "# TYPE o2k_requests_inflight gauge\n")
	fmt.Fprintf(w, "o2k_requests_inflight %d\n", inflight)
	fmt.Fprintf(w, "# HELP o2k_draining Whether the daemon is refusing new work pending shutdown.\n")
	fmt.Fprintf(w, "# TYPE o2k_draining gauge\n")
	d := 0
	if draining {
		d = 1
	}
	fmt.Fprintf(w, "o2k_draining %d\n", d)
}
