// Package server is the long-running experiment-serving daemon behind
// `o2kbench serve` (DESIGN.md §5.11): an HTTP/JSON front end over the same
// engine, registry, disk cache, and lease machinery the one-shot CLI uses.
// Many concurrent clients share one memoized cell map — N identical
// submissions cost one simulation — and a fleet of daemons or `-workers`
// processes sharing a cache directory coordinates through the existing
// lease files, so each cold cell is computed exactly once machine-wide.
//
// The API, under /v1:
//
//	POST /v1/experiments            submit a registry experiment; the response
//	                                streams one NDJSON line per cell event and
//	                                ends with a result line whose "output"
//	                                field is byte-identical to the CLI's stdout
//	GET  /v1/cells/{app}/{model}/{procs}  resolve one simulation cell
//	                                (memo → disk → compute, honoring leases)
//	GET  /v1/report                 the engine's live run report
//	GET  /v1/cache                  persistent-cache counters; ?verify=1 scans
//	GET  /healthz                   liveness; 503 once draining
//	GET  /metrics                   Prometheus text exposition
//
// Admission is a bounded queue: MaxInflight requests run concurrently,
// MaxQueue more wait, and anything beyond that is refused with 429 so a
// traffic spike degrades to fast rejections instead of unbounded goroutine
// pileup. Each admitted request runs under its own context (the HTTP request
// context), so a client disconnect aborts exactly the cells no other live
// request still wants — the engine retires those and recomputes them on the
// next ask. Drain() flips the daemon to refusing new work while in-flight
// requests finish and commit their cells to the disk cache.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"o2k/internal/core"
	"o2k/internal/experiments"
	"o2k/internal/machine"
	"o2k/internal/runner"
	"o2k/internal/runner/diskcache"
)

// Config assembles a Server. Engine is required; the zero value of every
// other field selects a sensible default.
type Config struct {
	Engine *runner.Engine
	// Cache is the engine's persistent cache, surfaced read-only through
	// /v1/cache; nil when the daemon runs memory-only.
	Cache *diskcache.Cache
	// MaxInflight bounds concurrently running experiment/cell requests
	// (default 4). Cell concurrency *within* a request is still the engine's
	// -jobs pool; this bounds how many requests contend for it.
	MaxInflight int
	// MaxQueue bounds requests waiting for a run slot (default 16); beyond
	// MaxInflight+MaxQueue, admission answers 429.
	MaxQueue int
	// Hook, when set, also receives every engine event (the metrics hook is
	// installed regardless; tests chain their own observers here).
	Hook runner.Hook
}

// Server is the HTTP handler. Create it with New; it installs the metrics
// hook on the engine, so construct it before the engine's first cell.
type Server struct {
	eng      *runner.Engine
	dc       *diskcache.Cache
	slots    chan struct{}
	limit    int64        // MaxInflight + MaxQueue
	pending  atomic.Int64 // admitted requests: running + queued
	draining atomic.Bool
	met      *Metrics
	mux      *http.ServeMux
}

// New returns a Server over cfg.Engine. It attaches the metrics hook (and
// cfg.Hook) via the engine's SetHook seam.
func New(cfg Config) *Server {
	inflight := cfg.MaxInflight
	if inflight <= 0 {
		inflight = 4
	}
	queue := cfg.MaxQueue
	if queue <= 0 {
		queue = 16
	}
	s := &Server{
		eng:   cfg.Engine,
		dc:    cfg.Cache,
		slots: make(chan struct{}, inflight),
		limit: int64(inflight + queue),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
	}
	mh := s.met.Hook()
	extra := cfg.Hook
	s.eng.SetHook(func(ev runner.Event) {
		mh(ev)
		if extra != nil {
			extra(ev)
		}
	})
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/cells/{app}/{model}/{procs}", s.handleCell)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Metrics exposes the server's telemetry (the serve subcommand prints a
// final scrape on drain).
func (s *Server) Metrics() *Metrics { return s.met }

// Drain flips the daemon to shutdown mode: /healthz answers 503 and new
// work is refused, while requests already admitted run to completion —
// their cells commit to the disk cache because the engine's context is the
// process's, not any request's.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the response code for the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes so NDJSON lines reach the client as the
// cells land, not when the response ends.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	s.met.observeHTTP(sw.code)
}

// jsonError writes a JSON error document with the given status.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// acquire admits one request through the bounded queue: it returns a release
// function, or writes the refusal (429 queue full, 503 draining) and returns
// nil. A request whose client leaves while queued releases silently.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) func() {
	if s.draining.Load() {
		s.met.rejectedDrain.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return nil
	}
	if n := s.pending.Add(1); n > s.limit {
		s.pending.Add(-1)
		s.met.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusTooManyRequests, "admission queue full (%d pending)", n-1)
		return nil
	}
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots; s.pending.Add(-1) }
	case <-r.Context().Done():
		s.pending.Add(-1)
		return nil
	}
}

// experimentsRequest is the POST /v1/experiments body. The zero value means
// the CLI's defaults: every experiment, full workloads, the paper sweep.
type experimentsRequest struct {
	Exp   string `json:"exp"`   // registry name, alias, or "all" (default)
	Quick bool   `json:"quick"` // reduced workloads and processor counts
	Procs string `json:"procs"` // "1,4,16" or a preset name; "" keeps the suite default
}

// requestOpts resolves the request into experiment options, mirroring the
// CLI flag handling so a given request and the equivalent flag set select
// identical cells.
func requestOpts(req experimentsRequest) (experiments.Opts, error) {
	o := experiments.DefaultOpts()
	if req.Quick {
		o = experiments.QuickOpts()
	}
	if req.Procs != "" {
		ps, err := experiments.ParseProcs(req.Procs)
		if err != nil {
			return o, err
		}
		o.Procs = ps
	}
	return o, nil
}

// streamLine is one NDJSON line of an experiment response.
type streamLine struct {
	Type    string  `json:"type"`              // "cell", "result", or "error"
	Kind    string  `json:"kind,omitempty"`    // cell: event kind (compute, memo-hit, …)
	Key     string  `json:"key,omitempty"`     // cell: content hash
	Label   string  `json:"label,omitempty"`   // cell: human-readable description
	Ms      float64 `json:"ms,omitempty"`      // cell: event span in milliseconds
	Attempt int     `json:"attempt,omitempty"` // cell: compute attempt number
	Err     string  `json:"err,omitempty"`     // cell: outcome error
	Exit    int     `json:"exit"`              // result: the CLI-equivalent exit code
	Fails   int     `json:"failures"`          // result: distinct failed cells of this request
	Output  string  `json:"output,omitempty"`  // result: the CLI's exact stdout bytes
	Error   string  `json:"error,omitempty"`   // error: what went wrong
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req experimentsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Exp == "" {
		req.Exp = "all"
	}
	if req.Exp != "all" {
		if _, ok := experiments.Lookup(req.Exp); !ok {
			jsonError(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/report lists nothing — see o2kbench -list)", req.Exp)
			return
		}
	}
	o, err := requestOpts(req)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release := s.acquire(w, r)
	if release == nil {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	// The per-request hook fires from the builders' goroutines concurrently;
	// one mutex serializes the stream and guards the failure ledger. After a
	// disconnect, a cell this request abandoned can still deliver its final
	// event from the detached publisher goroutine once the handler has
	// returned — the closed flag keeps those off the dead ResponseWriter.
	var (
		mu      sync.Mutex
		closed  bool
		cellErr = make(map[string]string)
	)
	defer func() {
		mu.Lock()
		closed = true
		mu.Unlock()
	}()
	writeLine := func(l streamLine) {
		data, err := json.Marshal(l)
		if err != nil {
			return
		}
		mu.Lock()
		if !closed {
			w.Write(append(data, '\n'))
			if fl != nil {
				fl.Flush()
			}
		}
		mu.Unlock()
	}
	hook := runner.Hook(func(ev runner.Event) {
		if ev.Kind != runner.EventRetry {
			// Terminal event kinds carry the cell's outcome for this
			// request; the last one per key wins (a retried compute that
			// succeeds clears its earlier attempts' errors).
			mu.Lock()
			cellErr[ev.Key] = ev.Err
			mu.Unlock()
		}
		writeLine(streamLine{
			Type: "cell", Kind: ev.Kind.String(), Key: ev.Key, Label: ev.Label,
			Ms: float64(ev.Dur) / 1e6, Attempt: ev.Attempt, Err: ev.Err,
		})
	})

	ctx := runner.WithRequestHook(r.Context(), hook)
	tables, err := experiments.RunOnCtx(ctx, s.eng, req.Exp, o)
	if err != nil {
		writeLine(streamLine{Type: "error", Error: err.Error()})
		return
	}
	failures := 0
	mu.Lock()
	for _, e := range cellErr {
		if e != "" {
			failures++
		}
	}
	mu.Unlock()
	exit := 0
	if failures > 0 {
		exit = 1
	}
	writeLine(streamLine{Type: "result", Exit: exit, Fails: failures, Output: experiments.Render(tables)})
}

// cellResponse is the GET /v1/cells document.
type cellResponse struct {
	App     string          `json:"app"`
	Model   string          `json:"model"`
	Procs   int             `json:"procs"`
	Quick   bool            `json:"quick"`
	Key     string          `json:"key,omitempty"`
	Label   string          `json:"label,omitempty"`
	Source  string          `json:"source"` // compute, memo, disk, or dedup
	Metrics json.RawMessage `json:"metrics,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// cellSource maps the request's terminal event kind to the response's
// source field.
func cellSource(k runner.EventKind) string {
	switch k {
	case runner.EventMemoHit:
		return "memo"
	case runner.EventDiskHit:
		return "disk"
	case runner.EventDedup:
		return "dedup"
	default:
		return "compute"
	}
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	app, modelName := r.PathValue("app"), r.PathValue("model")
	procs, err := strconv.Atoi(r.PathValue("procs"))
	if err != nil || procs < 1 {
		jsonError(w, http.StatusBadRequest, "bad processor count %q", r.PathValue("procs"))
		return
	}
	quick := r.URL.Query().Get("quick") == "1" || r.URL.Query().Get("quick") == "true"
	o := experiments.DefaultOpts()
	if quick {
		o = experiments.QuickOpts()
	}
	var model core.Model
	switch modelName {
	case "mp":
		model = core.MP
	case "shmem":
		model = core.SHMEM
	case "sas", "cc-sas", "ccsas":
		model = core.SAS
	case "mp+sas", "mp-sas":
		if app != "hybrid" {
			jsonError(w, http.StatusBadRequest, "model %q is only valid for the hybrid app", modelName)
			return
		}
	default:
		jsonError(w, http.StatusBadRequest, "unknown model %q (want mp, shmem, or sas; hybrid uses mp+sas)", modelName)
		return
	}

	release := s.acquire(w, r)
	if release == nil {
		return
	}
	defer release()

	// The terminal event of this request's single cell tells us where the
	// outcome came from; the request hook is the attribution seam.
	var (
		mu   sync.Mutex
		last runner.Event
		seen bool
	)
	ctx := runner.WithRequestHook(r.Context(), func(ev runner.Event) {
		if ev.Kind == runner.EventRetry {
			return
		}
		mu.Lock()
		last, seen = ev, true
		mu.Unlock()
	})

	cfg := machine.Default(procs)
	var res runner.Res
	switch app {
	case "mesh":
		res = s.eng.Mesh(ctx, model, cfg, o.MeshW)
	case "nbody":
		res = s.eng.NBody(ctx, model, cfg, o.NBodyW)
	case "cg":
		res = s.eng.CG(ctx, model, cfg, o.CGW)
	case "stencil":
		res = s.eng.Stencil(ctx, model, cfg, o.StencilW)
	case "hybrid":
		if modelName != "mp+sas" && modelName != "mp-sas" {
			jsonError(w, http.StatusBadRequest, "hybrid is a single-model app: GET /v1/cells/hybrid/mp+sas/%d", procs)
			return
		}
		res = s.eng.MeshHybrid(ctx, cfg, o.MeshW)
	default:
		jsonError(w, http.StatusNotFound, "unknown app %q (want mesh, nbody, cg, stencil, or hybrid)", app)
		return
	}

	resp := cellResponse{App: app, Model: modelName, Procs: procs, Quick: quick}
	mu.Lock()
	if seen {
		resp.Key, resp.Label, resp.Source = last.Key, last.Label, cellSource(last.Kind)
	}
	mu.Unlock()
	if res.Err != nil {
		resp.Err = res.Err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(resp)
		return
	}
	// The strict lossless codec from core — the same bytes the disk cache
	// stores — so a client round-trips exactly what the engine computed.
	if data, err := core.EncodeMetrics(res.M); err == nil {
		resp.Metrics = data
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep := s.eng.Report()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Table().String())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// cacheResponse is the GET /v1/cache document.
type cacheResponse struct {
	Enabled  bool                   `json:"enabled"`
	Dir      string                 `json:"dir,omitempty"`
	Fence    string                 `json:"fence,omitempty"`
	Counters *diskcache.Counters    `json:"counters,omitempty"`
	Verify   *diskcache.VerifyStats `json:"verify,omitempty"`
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	resp := cacheResponse{Enabled: s.dc != nil}
	if s.dc != nil {
		resp.Dir, resp.Fence = s.dc.Dir(), s.dc.Fence()
		c := s.dc.Counters()
		resp.Counters = &c
		if q := r.URL.Query().Get("verify"); q == "1" || q == "true" {
			st, err := s.dc.Verify()
			if err != nil {
				jsonError(w, http.StatusInternalServerError, "cache verify: %v", err)
				return
			}
			resp.Verify = &st
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, int(s.pending.Load()), len(s.slots), s.draining.Load())
}
