package mp

import (
	"o2k/internal/sim"
)

// Number constrains the element types the reduction collectives support.
type Number interface {
	~int | ~int32 | ~int64 | ~uint64 | ~float64
}

// Op selects the combining operator of a reduction.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func combine[T Number](op Op, a, b T) T {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	panic("mp: unknown op")
}

// Allreduce combines vals elementwise across all ranks (in rank order, so
// floating-point results are deterministic) and returns the combined vector
// on every rank.
func Allreduce[T Number](r *Rank, vals []T, op Op) []T {
	r.P.Collectives++
	cp := make([]T, len(vals))
	copy(cp, vals)
	res := r.W.reducer.DoAs(r.P, r.ID(), cp, func(all []any) any {
		out := make([]T, len(cp))
		first := true
		for _, v := range all {
			vs := v.([]T)
			if first {
				copy(out, vs)
				first = false
				continue
			}
			for i := range out {
				out[i] = combine(op, out[i], vs[i])
			}
		}
		return out
	}).([]T)
	// Per-rank data cost beyond the synchronization: log-stage copies.
	bytes := byteLen(vals)
	stages := r.W.M.LogStages(r.Size())
	r.P.Advance(sim.Time(stages) * sim.Time(bytes) * r.W.M.Cfg.MPPerByteNS)
	r.P.BytesSent += uint64(bytes * stages)
	return res
}

// Allreduce1 is Allreduce for a single value.
func Allreduce1[T Number](r *Rank, v T, op Op) T {
	return Allreduce(r, []T{v}, op)[0]
}

// Bcast distributes root's data to every rank and returns it. Non-root ranks
// pass nil (or anything; only root's payload is used).
func Bcast[T any](r *Rank, root int, data []T) []T {
	r.P.Collectives++
	var payload []T
	if r.ID() == root {
		payload = make([]T, len(data))
		copy(payload, data)
	}
	res := r.W.reducer.DoAs(r.P, r.ID(), payload, func(all []any) any {
		for _, v := range all {
			if vs, ok := v.([]T); ok && vs != nil {
				return vs
			}
		}
		return []T(nil)
	}).([]T)
	bytes := byteLen(res)
	if r.ID() == root {
		r.P.Advance(sim.Time(r.W.M.LogStages(r.Size())) * sim.Time(bytes) * r.W.M.Cfg.MPPerByteNS)
		r.P.BytesSent += uint64(bytes)
		r.P.MsgsSent++
	} else {
		r.P.Advance(sim.Time(bytes) * r.W.M.Cfg.MPPerByteNS)
	}
	return res
}

// Allgatherv concatenates every rank's contribution in rank order and returns
// the whole vector plus the starting offset of each rank's block.
func Allgatherv[T any](r *Rank, data []T) (all []T, offsets []int) {
	r.P.Collectives++
	cp := make([]T, len(data))
	copy(cp, data)
	type gathered struct {
		all     []T
		offsets []int
	}
	res := r.W.reducer.DoAs(r.P, r.ID(), cp, func(vals []any) any {
		g := &gathered{offsets: make([]int, len(vals)+1)}
		for i, v := range vals {
			vs := v.([]T)
			g.offsets[i] = len(g.all)
			g.all = append(g.all, vs...)
		}
		g.offsets[len(vals)] = len(g.all)
		return g
	}).(*gathered)
	// Each rank receives everyone else's data.
	foreign := byteLen(res.all) - byteLen(data)
	cfg := &r.W.M.Cfg
	r.P.Advance(sim.Time(foreign) * (cfg.MPPerByteNS + cfg.WirePerByteNS))
	r.P.BytesSent += uint64(byteLen(data))
	r.P.MsgsSent += uint64(r.W.M.LogStages(r.Size()))
	return res.all, res.offsets[:r.Size()]
}

// Exscan returns the exclusive prefix sum of per-rank contributions v (rank
// order) and the global total — MPI_Exscan plus MPI_Allreduce in one step.
func Exscan(r *Rank, v int) (before, total int) {
	r.P.Collectives++
	res := r.W.reducer.DoAs(r.P, r.ID(), v, func(all []any) any {
		pre := make([]int, len(all)+1)
		for i, x := range all {
			pre[i+1] = pre[i] + x.(int)
		}
		return pre
	}).([]int)
	return res[r.ID()], res[len(res)-1]
}

// Alltoallv delivers chunks[dst] from every rank to rank dst, using real
// point-to-point messages (this is how the MP remapping phase moves data).
// chunks[r.ID()] is kept locally. It returns the received chunks indexed by
// source rank.
func Alltoallv[T any](r *Rank, chunks [][]T) [][]T {
	const tag = -7 // runtime-internal tag
	n := r.Size()
	out := make([][]T, n)
	me := r.ID()
	out[me] = chunks[me]
	// Stagger send order to avoid systematic hot spots: rank k sends first to
	// k+1, then k+2, ...
	for d := 1; d < n; d++ {
		dst := (me + d) % n
		Send(r, dst, tag, chunks[dst])
	}
	for d := 1; d < n; d++ {
		src := (me - d + n) % n
		out[src] = Recv[T](r, src, tag)
	}
	return out
}

// Gatherv collects every rank's contribution on root (rank order). Non-root
// ranks receive nil.
func Gatherv[T any](r *Rank, root int, data []T) (all []T, offsets []int) {
	allv, offs := Allgatherv(r, data) // costed as allgather; root-only variant below
	if r.ID() != root {
		return nil, nil
	}
	return allv, offs
}
