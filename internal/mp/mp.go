// Package mp is the message-passing (MPI-style) programming-model runtime:
// two-sided point-to-point communication with tag matching, nonblocking
// operations, and tree-structured collectives.
//
// Semantics follow the MPI subset that the paper's MP codes use:
//
//   - Send is buffered (eager): the sender pays the software overhead and the
//     copy into a system buffer, then proceeds; the matching Recv cannot
//     complete, in virtual time, before the data could have crossed the wire.
//   - Messages between a (src, dst, tag) triple are delivered FIFO.
//   - Collectives synchronize all ranks and merge their virtual clocks.
//
// Costs: each point-to-point operation charges the per-message software
// overhead (MPSendOvNS / MPRecvOvNS), a per-byte stack cost (copies), and the
// wire time for the hop distance between the two processors' nodes. This is
// the familiar high-alpha/moderate-beta profile that makes fine-grained
// irregular communication expensive under MP — the effect the paper measures.
package mp

import (
	"fmt"
	"sync"
	"unsafe"

	"o2k/internal/machine"
	"o2k/internal/sim"
)

// message is one in-flight point-to-point transfer.
type message struct {
	src, tag int
	data     any // a copied slice of the element type
	elems    int
	bytes    int
	availAt  sim.Time // earliest virtual time the payload can be delivered
}

// mailbox is one rank's pending-message queue with tag matching. Blocking
// receives suspend via an engine-aware sim.Cond, so they work identically
// under the goroutine gang and the event scheduler.
type mailbox struct {
	mu   sync.Mutex
	cond sim.Cond
	q    []*message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond.Kind = "mp recv"
	return mb
}

func (mb *mailbox) put(m *message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// take suspends p until a message from src with tag is queued and removes
// the first match (FIFO per (src, tag)).
func (mb *mailbox) take(p *sim.Proc, src, tag int) *message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.q {
			if m.src == src && m.tag == tag {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m
			}
		}
		mb.cond.Wait(p, &mb.mu)
	}
}

// World is the communication context shared by all ranks of one MP program —
// the analogue of MPI_COMM_WORLD.
type World struct {
	M         *machine.Machine
	mailboxes []*mailbox
	barrier   *sim.Barrier
	reducer   *sim.Reducer
}

// NewWorld creates the context for all processors of m.
func NewWorld(m *machine.Machine) *World {
	n := m.Procs()
	w := &World{M: m, mailboxes: make([]*mailbox, n)}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	stages := m.LogStages(n)
	w.barrier = sim.NewBarrier(n, func(int) sim.Time {
		return sim.Time(stages) * m.Cfg.MPBarrierHop
	})
	w.reducer = sim.NewReducer(n, func(int) sim.Time {
		return sim.Time(stages) * m.Cfg.MPBarrierHop
	})
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.mailboxes) }

// Rank binds processor p to the world, yielding its per-rank handle. The
// rank number is the processor ID; use RankAs when they differ.
func (w *World) Rank(p *sim.Proc) *Rank {
	return w.RankAs(p, p.ID())
}

// RankAs binds processor p to the world under an explicit rank number —
// needed by hybrid programs where one processor per node acts as that
// node's MP process.
func (w *World) RankAs(p *sim.Proc, rank int) *Rank {
	if rank < 0 || rank >= w.Size() {
		panic(fmt.Sprintf("mp: rank %d outside world of size %d", rank, w.Size()))
	}
	return &Rank{W: w, P: p, id: rank}
}

// Rank is one process of the MP program: a processor plus its world.
type Rank struct {
	W  *World
	P  *sim.Proc
	id int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.W.Size() }

// sendCost charges the sender-side costs (to the processor's current phase,
// so communication performed inside an application phase is attributed to
// that phase) and returns the delivery time.
func (r *Rank) sendCost(dst, bytes int) sim.Time {
	cfg := &r.W.M.Cfg
	r.P.Advance(cfg.MPSendOvNS + sim.Time(bytes)*cfg.MPPerByteNS)
	wire := r.W.M.Wire(bytes, r.W.M.Hops(r.ID(), dst))
	if wire < cfg.MPMinWireNS {
		wire = cfg.MPMinWireNS
	}
	r.P.BytesSent += uint64(bytes)
	r.P.MsgsSent++
	return r.P.Now() + wire
}

// recvCost charges the receiver-side costs given the message's delivery
// time, attributed to the current phase.
func (r *Rank) recvCost(m *message) {
	cfg := &r.W.M.Cfg
	r.P.AdvanceTo(m.availAt)
	r.P.Advance(cfg.MPRecvOvNS + sim.Time(m.bytes)*cfg.MPPerByteNS)
}

// Send transmits a copy of data to dst with the given tag and returns once
// the send buffer is reusable (buffered semantics).
func Send[T any](r *Rank, dst, tag int, data []T) {
	if dst == r.ID() {
		panic("mp: send to self; use local copy")
	}
	cp := make([]T, len(data))
	copy(cp, data)
	bytes := byteLen(data)
	avail := r.sendCost(dst, bytes)
	r.W.mailboxes[dst].put(&message{src: r.ID(), tag: tag, data: cp, elems: len(cp), bytes: bytes, availAt: avail})
}

// Recv blocks until a message from src with tag arrives and returns its
// payload. The rank's clock advances to the delivery time plus receive
// overhead.
func Recv[T any](r *Rank, src, tag int) []T {
	m := r.W.mailboxes[r.ID()].take(r.P, src, tag)
	data, ok := m.data.([]T)
	if !ok {
		panic(fmt.Sprintf("mp: type mismatch receiving from %d tag %d: have %T", src, tag, m.data))
	}
	r.recvCost(m)
	return data
}

// Request is a pending nonblocking receive; see Irecv.
type Request[T any] struct {
	r        *Rank
	src, tag int
	done     bool
	data     []T
}

// Irecv posts a nonblocking receive. Matching and clock merging happen at
// Wait; posting itself is free (descriptor setup is in MPRecvOvNS at Wait).
func Irecv[T any](r *Rank, src, tag int) *Request[T] {
	return &Request[T]{r: r, src: src, tag: tag}
}

// Wait completes the request and returns the payload.
func (q *Request[T]) Wait() []T {
	if q.done {
		return q.data
	}
	q.data = Recv[T](q.r, q.src, q.tag)
	q.done = true
	return q.data
}

// SendRecv exchanges data with a partner in one deadlock-free step.
func SendRecv[T any](r *Rank, dst, sendTag int, data []T, src, recvTag int) []T {
	Send(r, dst, sendTag, data)
	return Recv[T](r, src, recvTag)
}

// Barrier synchronizes all ranks; clocks merge to the maximum entry time plus
// the tree barrier cost.
func (r *Rank) Barrier() {
	r.P.Collectives++
	r.W.barrier.Wait(r.P)
}

func byteLen[T any](s []T) int {
	var z T
	return len(s) * int(unsafe.Sizeof(z))
}
