package mp

import (
	"testing"

	"o2k/internal/machine"
	"o2k/internal/sim"
)

// TestRecvDeadlockStallDiagnostics: a Recv whose matching Send never comes is
// the Cond-flavored stall — no barrier episode, no participant roster, just a
// proc suspended on a mailbox that can never fill. It mirrors the barrier
// case in sim's TestEnginesAgreeOnStallDiagnostics, but only on the event
// engine: under the goroutine engine a proc stuck in sync.Cond.Wait outside
// any barrier episode simply hangs (no watchdog covers it), so there is no
// goroutine-side behavior to compare against. The test pins two things: the
// structural detector diagnoses the deadlock as a *StallError with the
// mailbox's "mp recv" kind on the lowest blocked rank, and the poison
// unwinds through mailbox.take's deferred mutex unlock as an ordinary
// *ProcPanic rather than a "sync: unlock of unlocked mutex" runtime fatal
// that would abort the whole process.
func TestRecvDeadlockStallDiagnostics(t *testing.T) {
	m := machine.MustNew(machine.Default(2))
	w := NewWorld(m)
	g := sim.NewGroupOn(sim.EventEngine(), 2)
	var v any
	func() {
		defer func() { v = recover() }()
		g.Run(func(p *sim.Proc) {
			r := w.Rank(p)
			if r.ID() == 0 {
				Recv[int](r, 1, 0) // rank 1 never sends
			}
		})
	}()
	pp, ok := v.(*sim.ProcPanic)
	if !ok {
		t.Fatalf("Run re-panicked with %T (%v), want *ProcPanic", v, v)
	}
	se, ok := pp.Value.(*sim.StallError)
	if !ok {
		t.Fatalf("panic value %T (%v), want *StallError", pp.Value, pp.Value)
	}
	if pp.Rank != 0 || se.Kind != "mp recv" {
		t.Fatalf("stall = rank %d kind %q, want rank 0 kind %q", pp.Rank, se.Kind, "mp recv")
	}
	if se.N != 0 || len(se.Arrived) != 0 {
		t.Fatalf("mailbox stall should carry no roster, got N=%d arrived=%v", se.N, se.Arrived)
	}
}
