package mp

import (
	"testing"

	"o2k/internal/sim"
)

// Host-performance microbenchmarks of the MP runtime.

func BenchmarkPingPong(b *testing.B) {
	w, g := world(2)
	payload := make([]float64, 64)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				Send(r, 1, 0, payload)
				Recv[float64](r, 1, 1)
			} else {
				Recv[float64](r, 0, 0)
				Send(r, 0, 1, payload)
			}
		}
	})
}

func BenchmarkAllreduce8(b *testing.B) {
	w, g := world(8)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		for i := 0; i < b.N; i++ {
			Allreduce1(r, float64(i), OpSum)
		}
	})
}

func BenchmarkBarrier8(b *testing.B) {
	w, g := world(8)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		for i := 0; i < b.N; i++ {
			r.Barrier()
		}
	})
}

func BenchmarkAlltoallv8(b *testing.B) {
	w, g := world(8)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		chunks := make([][]float64, 8)
		for d := range chunks {
			chunks[d] = make([]float64, 32)
		}
		for i := 0; i < b.N; i++ {
			Alltoallv(r, chunks)
		}
	})
}
