package mp_test

import (
	"fmt"

	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/sim"
)

// A minimal SPMD message-passing program: rank 0 sends, rank 1 receives,
// everyone reduces. Virtual time advances deterministically.
func Example() {
	m := machine.MustNew(machine.Default(2))
	w := mp.NewWorld(m)
	g := sim.NewGroup(2)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			mp.Send(r, 1, 0, []float64{3.5})
		} else {
			v := mp.Recv[float64](r, 0, 0)
			fmt.Println("received", v[0])
		}
		sum := mp.Allreduce1(r, float64(r.ID()+1), mp.OpSum)
		if r.ID() == 0 {
			fmt.Println("sum", sum)
		}
	})
	fmt.Println("deterministic:", g.MaxTime() > 0)
	// Output:
	// received 3.5
	// sum 3
	// deterministic: true
}
