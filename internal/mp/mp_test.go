package mp

import (
	"testing"

	"o2k/internal/machine"
	"o2k/internal/sim"
)

func world(procs int) (*World, *sim.Group) {
	m := machine.MustNew(machine.Default(procs))
	return NewWorld(m), sim.NewGroup(procs)
}

func TestSendRecvDelivers(t *testing.T) {
	w, g := world(2)
	var got []float64
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			Send(r, 1, 7, []float64{1, 2, 3})
		} else {
			got = Recv[float64](r, 0, 7)
		}
	})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("payload corrupted: %v", got)
	}
}

func TestSendBufferReusable(t *testing.T) {
	w, g := world(2)
	var got []int32
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			buf := []int32{10, 20}
			Send(r, 1, 0, buf)
			buf[0] = 99 // must not affect the in-flight message
			r.Barrier()
		} else {
			r.Barrier()
			got = Recv[int32](r, 0, 0)
		}
	})
	if got[0] != 10 {
		t.Fatalf("send buffer aliased: %v", got)
	}
}

func TestRecvWaitsForVirtualDelivery(t *testing.T) {
	w, g := world(2)
	var recvClock sim.Time
	var sendClock sim.Time
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			p.Advance(50 * sim.Microsecond) // sender is late
			Send(r, 1, 0, []float64{1})
			sendClock = p.Now()
		} else {
			Recv[float64](r, 0, 0)
			recvClock = p.Now()
		}
	})
	if recvClock <= sendClock {
		t.Fatalf("recv completed at %v, before/at send completion %v", recvClock, sendClock)
	}
}

func TestFIFOOrdering(t *testing.T) {
	w, g := world(2)
	var first, second []int
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			Send(r, 1, 3, []int{1})
			Send(r, 1, 3, []int{2})
		} else {
			first = Recv[int](r, 0, 3)
			second = Recv[int](r, 0, 3)
		}
	})
	if first[0] != 1 || second[0] != 2 {
		t.Fatalf("FIFO violated: %v %v", first, second)
	}
}

func TestTagMatching(t *testing.T) {
	w, g := world(2)
	var a, b []int
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			Send(r, 1, 5, []int{5})
			Send(r, 1, 4, []int{4})
		} else {
			// Receive in the opposite tag order.
			a = Recv[int](r, 0, 4)
			b = Recv[int](r, 0, 5)
		}
	})
	if a[0] != 4 || b[0] != 5 {
		t.Fatalf("tag matching wrong: %v %v", a, b)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	w, g := world(1)
	g.Run(func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send to self should panic")
			}
		}()
		Send(w.Rank(p), 0, 0, []int{1})
	})
}

func TestIrecvWait(t *testing.T) {
	w, g := world(2)
	var got []float64
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			Send(r, 1, 9, []float64{42})
		} else {
			req := Irecv[float64](r, 0, 9)
			got = req.Wait()
			if w2 := req.Wait(); &w2[0] != &got[0] {
				t.Error("second Wait should return cached payload")
			}
		}
	})
	if got[0] != 42 {
		t.Fatalf("Irecv payload: %v", got)
	}
}

func TestSendRecvExchange(t *testing.T) {
	w, g := world(2)
	got := make([][]int, 2)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		other := 1 - r.ID()
		got[r.ID()] = SendRecv(r, other, 1, []int{r.ID() * 100}, other, 1)
	})
	if got[0][0] != 100 || got[1][0] != 0 {
		t.Fatalf("exchange wrong: %v", got)
	}
}

func TestAllreduce(t *testing.T) {
	w, g := world(4)
	sums := make([]float64, 4)
	maxs := make([]int, 4)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		sums[r.ID()] = Allreduce1(r, float64(r.ID()+1), OpSum)
		maxs[r.ID()] = Allreduce1(r, r.ID()*3, OpMax)
	})
	for i := 0; i < 4; i++ {
		if sums[i] != 10 {
			t.Errorf("rank %d sum = %v, want 10", i, sums[i])
		}
		if maxs[i] != 9 {
			t.Errorf("rank %d max = %v, want 9", i, maxs[i])
		}
	}
}

func TestAllreduceMinVector(t *testing.T) {
	w, g := world(3)
	out := make([][]int64, 3)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		out[r.ID()] = Allreduce(r, []int64{int64(r.ID()), int64(10 - r.ID())}, OpMin)
	})
	for i := range out {
		if out[i][0] != 0 || out[i][1] != 8 {
			t.Fatalf("vector min wrong: %v", out[i])
		}
	}
}

func TestBcast(t *testing.T) {
	w, g := world(4)
	out := make([][]float64, 4)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		var data []float64
		if r.ID() == 2 {
			data = []float64{3.5, 4.5}
		}
		out[r.ID()] = Bcast(r, 2, data)
	})
	for i := 0; i < 4; i++ {
		if len(out[i]) != 2 || out[i][1] != 4.5 {
			t.Fatalf("rank %d bcast = %v", i, out[i])
		}
	}
}

func TestAllgatherv(t *testing.T) {
	w, g := world(3)
	alls := make([][]int, 3)
	offs := make([][]int, 3)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		mine := make([]int, r.ID()+1) // variable lengths: 1, 2, 3
		for i := range mine {
			mine[i] = r.ID()*10 + i
		}
		alls[r.ID()], offs[r.ID()] = Allgatherv(r, mine)
	})
	want := []int{0, 10, 11, 20, 21, 22}
	for rk := 0; rk < 3; rk++ {
		if len(alls[rk]) != 6 {
			t.Fatalf("rank %d total len %d", rk, len(alls[rk]))
		}
		for i, v := range want {
			if alls[rk][i] != v {
				t.Fatalf("rank %d slot %d = %d, want %d", rk, i, alls[rk][i], v)
			}
		}
		if offs[rk][0] != 0 || offs[rk][1] != 1 || offs[rk][2] != 3 {
			t.Fatalf("rank %d offsets %v", rk, offs[rk])
		}
	}
}

func TestExscan(t *testing.T) {
	w, g := world(4)
	befores := make([]int, 4)
	totals := make([]int, 4)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		befores[r.ID()], totals[r.ID()] = Exscan(r, r.ID()+1) // 1,2,3,4
	})
	wantBefore := []int{0, 1, 3, 6}
	for i := 0; i < 4; i++ {
		if befores[i] != wantBefore[i] || totals[i] != 10 {
			t.Fatalf("rank %d: before=%d total=%d", i, befores[i], totals[i])
		}
	}
}

func TestAlltoallv(t *testing.T) {
	w, g := world(4)
	got := make([][][]int, 4)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		chunks := make([][]int, 4)
		for d := 0; d < 4; d++ {
			chunks[d] = []int{r.ID()*100 + d}
		}
		got[r.ID()] = Alltoallv(r, chunks)
	})
	for me := 0; me < 4; me++ {
		for src := 0; src < 4; src++ {
			if got[me][src][0] != src*100+me {
				t.Fatalf("rank %d from %d: %v", me, src, got[me][src])
			}
		}
	}
}

func TestGatherv(t *testing.T) {
	w, g := world(3)
	var rootAll []int
	var nonRoot []int = []int{-1}
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		all, _ := Gatherv(r, 0, []int{r.ID()})
		if r.ID() == 0 {
			rootAll = all
		} else if r.ID() == 1 {
			nonRoot = all
		}
	})
	if len(rootAll) != 3 || rootAll[2] != 2 {
		t.Fatalf("root gather: %v", rootAll)
	}
	if nonRoot != nil {
		t.Fatalf("non-root should get nil, got %v", nonRoot)
	}
}

func TestBarrierMergesRanks(t *testing.T) {
	w, g := world(4)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		p.Advance(sim.Time(r.ID()) * sim.Millisecond)
		r.Barrier()
	})
	t0 := g.Proc(0).Now()
	for i := 1; i < 4; i++ {
		if g.Proc(i).Now() != t0 {
			t.Fatalf("clocks unequal after barrier")
		}
	}
	if t0 <= 3*sim.Millisecond {
		t.Fatalf("barrier cost missing: %v", t0)
	}
}

func TestCommChargesCurrentPhase(t *testing.T) {
	// Communication costs are attributed to the caller's current phase, so
	// an exchange performed inside an application phase (e.g. remap) is
	// charged to that phase.
	w, g := world(2)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		p.SetPhase(sim.PhaseRemap)
		if r.ID() == 0 {
			Send(r, 1, 0, make([]float64, 1000))
		} else {
			Recv[float64](r, 0, 0)
		}
	})
	if g.Proc(0).PhaseTime(sim.PhaseRemap) == 0 {
		t.Error("sender cost not attributed to current phase")
	}
	if g.Proc(1).PhaseTime(sim.PhaseRemap) == 0 {
		t.Error("receiver cost not attributed to current phase")
	}
	if g.Proc(0).BytesSent != 8000 {
		t.Errorf("bytes sent = %d", g.Proc(0).BytesSent)
	}
	if g.Proc(0).MsgsSent != 1 {
		t.Errorf("msgs sent = %d", g.Proc(0).MsgsSent)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		w, g := world(8)
		g.Run(func(p *sim.Proc) {
			r := w.Rank(p)
			for iter := 0; iter < 10; iter++ {
				next := (r.ID() + 1) % 8
				prev := (r.ID() + 7) % 8
				Send(r, next, iter, []float64{float64(iter)})
				Recv[float64](r, prev, iter)
				Allreduce1(r, float64(r.ID()), OpSum)
			}
		})
		return g.MaxTime()
	}
	first := run()
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("MP timing nondeterministic: %v vs %v", got, first)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	w, g := world(2)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			Send(r, 1, 0, []int{1})
		} else {
			defer func() {
				if recover() == nil {
					t.Error("expected type-mismatch panic")
				}
			}()
			Recv[float64](r, 0, 0)
		}
	})
}

func TestRankOutOfWorldPanics(t *testing.T) {
	m := machine.MustNew(machine.Default(2))
	w := NewWorld(m)
	g := sim.NewGroup(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic binding proc 3 to world of 2")
		}
	}()
	w.Rank(g.Proc(3))
}
