package mp

import (
	"testing"

	"o2k/internal/machine"
	"o2k/internal/sim"
)

func TestZeroLengthMessage(t *testing.T) {
	w, g := world(2)
	var got []float64
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			Send(r, 1, 0, []float64{})
		} else {
			got = Recv[float64](r, 0, 0)
		}
	})
	if len(got) != 0 {
		t.Fatalf("zero message corrupted: %v", got)
	}
}

func TestManyOutstandingMessages(t *testing.T) {
	// Buffered semantics: a rank may send far ahead of the receiver.
	w, g := world(2)
	const n = 500
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				Send(r, 1, 0, []int{i})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := Recv[int](r, 0, 0); got[0] != i {
					t.Errorf("message %d out of order: %d", i, got[0])
					return
				}
			}
		}
	})
}

func TestBcastEmptyPayload(t *testing.T) {
	w, g := world(3)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		got := Bcast(r, 0, []int{})
		if got == nil || len(got) != 0 {
			// A nil from non-participants is also acceptable; only length
			// matters.
			if len(got) != 0 {
				t.Errorf("bcast empty wrong: %v", got)
			}
		}
	})
}

func TestAllgathervSomeEmpty(t *testing.T) {
	w, g := world(4)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		var mine []int
		if r.ID()%2 == 0 {
			mine = []int{r.ID()}
		}
		all, offs := Allgatherv(r, mine)
		if len(all) != 2 || all[0] != 0 || all[1] != 2 {
			t.Errorf("gathered %v", all)
		}
		if offs[1] != 1 || offs[2] != 1 {
			t.Errorf("offsets %v", offs)
		}
	})
}

func TestRankAsSubsetWorld(t *testing.T) {
	// Four processors, but an MP world of two ranks driven by the even
	// processors — the hybrid pattern.
	m := machine.MustNew(machine.Default(2))
	w := NewWorld(m)
	g := sim.NewGroup(4)
	var got []float64
	g.Run(func(p *sim.Proc) {
		if p.ID()%2 != 0 {
			return
		}
		r := w.RankAs(p, p.ID()/2)
		if r.ID() == 0 {
			Send(r, 1, 5, []float64{7.5})
		} else {
			got = Recv[float64](r, 0, 5)
		}
	})
	if len(got) != 1 || got[0] != 7.5 {
		t.Fatalf("subset world exchange failed: %v", got)
	}
}

func TestRankAsOutOfRangePanics(t *testing.T) {
	m := machine.MustNew(machine.Default(2))
	w := NewWorld(m)
	g := sim.NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.RankAs(g.Proc(0), 2)
}

func TestExscanZeroContributions(t *testing.T) {
	w, g := world(3)
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		before, total := Exscan(r, 0)
		if before != 0 || total != 0 {
			t.Errorf("zero exscan: %d %d", before, total)
		}
	})
}

func TestMessageCostMonotoneInSize(t *testing.T) {
	timeFor := func(n int) sim.Time {
		w, g := world(2)
		g.Run(func(p *sim.Proc) {
			r := w.Rank(p)
			if r.ID() == 0 {
				Send(r, 1, 0, make([]float64, n))
			} else {
				Recv[float64](r, 0, 0)
			}
		})
		return g.MaxTime()
	}
	t1, t2, t3 := timeFor(1), timeFor(100), timeFor(10000)
	if !(t1 < t2 && t2 < t3) {
		t.Fatalf("message cost not monotone: %v %v %v", t1, t2, t3)
	}
}

func TestHopsAffectLatency(t *testing.T) {
	w, g := world(64)
	var near, far sim.Time
	g.Run(func(p *sim.Proc) {
		r := w.Rank(p)
		switch r.ID() {
		case 0:
			Send(r, 2, 0, []float64{1})  // 1 hop
			Send(r, 62, 1, []float64{1}) // 5 hops
		case 2:
			Recv[float64](r, 0, 0)
			near = p.Now()
		case 62:
			Recv[float64](r, 0, 1)
			far = p.Now()
		}
	})
	if near >= far {
		t.Fatalf("hop distance ignored: near=%v far=%v", near, far)
	}
}
