// Package planio provides the low-level text serialization primitives the
// plan-cell codecs share (mesh snapshots, decompositions, Barnes-Hut trees,
// adaptation plans). The format is whitespace-separated tokens grouped into
// lines for readability; the reader treats newlines as ordinary separators,
// so a payload's meaning depends only on its token sequence.
//
// Two properties matter more than speed (though both sides are much faster
// than fmt):
//
//   - exact float64 round-trips: floats are written with strconv's shortest
//     round-trip formatting and parsed back bit-identically, so a decoded
//     plan is reflect.DeepEqual to the one encoded;
//   - total decoders: a Scanner never panics on malformed input. The first
//     malformed token latches an error, every later read returns a zero
//     value, and the caller checks Err once at the end — corrupt cache
//     entries must decode to an error, not a crash.
package planio

import (
	"fmt"
	"math"
	"strconv"
)

// Writer accumulates a token stream. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// sep appends a separating space unless at start of buffer or line.
func (w *Writer) sep() {
	if n := len(w.buf); n > 0 && w.buf[n-1] != '\n' {
		w.buf = append(w.buf, ' ')
	}
}

// Word appends a bare token (must not contain whitespace).
func (w *Writer) Word(s string) {
	w.sep()
	w.buf = append(w.buf, s...)
}

// Int appends an integer token.
func (w *Writer) Int(v int) {
	w.sep()
	w.buf = strconv.AppendInt(w.buf, int64(v), 10)
}

// I32s appends each element of v as a token.
func (w *Writer) I32s(v []int32) {
	for _, x := range v {
		w.Int(int(x))
	}
}

// Float appends a float64 token with shortest exact round-trip formatting.
func (w *Writer) Float(v float64) {
	w.sep()
	w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64)
}

// End terminates the current line.
func (w *Writer) End() { w.buf = append(w.buf, '\n') }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Scanner consumes a token stream produced by Writer. All reads after the
// first error return zero values; Err reports the first failure.
type Scanner struct {
	data []byte
	pos  int
	err  error
}

// NewScanner returns a scanner over data.
func NewScanner(data []byte) *Scanner { return &Scanner{data: data} }

// Err returns the first scan failure, or nil.
func (s *Scanner) Err() error { return s.err }

// fail latches the scanner's first error.
func (s *Scanner) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("planio: "+format, args...)
	}
}

// token returns the next whitespace-separated token, or "" at end/error.
func (s *Scanner) token() string {
	if s.err != nil {
		return ""
	}
	for s.pos < len(s.data) {
		if c := s.data[s.pos]; c == ' ' || c == '\n' || c == '\t' || c == '\r' {
			s.pos++
			continue
		}
		break
	}
	if s.pos >= len(s.data) {
		s.fail("unexpected end of payload")
		return ""
	}
	start := s.pos
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		if c == ' ' || c == '\n' || c == '\t' || c == '\r' {
			break
		}
		s.pos++
	}
	return string(s.data[start:s.pos])
}

// Word returns the next token.
func (s *Scanner) Word() string { return s.token() }

// Expect consumes the next token and fails unless it equals want.
func (s *Scanner) Expect(want string) {
	if got := s.token(); s.err == nil && got != want {
		s.fail("expected %q, got %q", want, got)
	}
}

// Int parses the next token as an int.
func (s *Scanner) Int() int {
	t := s.token()
	if s.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil || v != int64(int(v)) {
		s.fail("bad integer %q", t)
		return 0
	}
	return int(v)
}

// IntRange parses an int and fails unless lo <= v <= hi.
func (s *Scanner) IntRange(lo, hi int) int {
	v := s.Int()
	if s.err == nil && (v < lo || v > hi) {
		s.fail("integer %d outside [%d, %d]", v, lo, hi)
		return 0
	}
	return v
}

// I32s fills dst with parsed int32 tokens, each checked against [lo, hi].
func (s *Scanner) I32s(dst []int32, lo, hi int) {
	for i := range dst {
		dst[i] = int32(s.IntRange(lo, hi))
	}
}

// Float parses the next token as a float64. NaN and infinities are rejected:
// no plan quantity is legitimately non-finite, and a NaN would break the
// DeepEqual round-trip contract.
func (s *Scanner) Float() float64 {
	t := s.token()
	if s.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		s.fail("bad float %q", t)
		return 0
	}
	return v
}

// Done fails unless the entire payload has been consumed (trailing
// whitespace is fine). Truncation is caught by reads running off the end;
// Done catches the inverse — trailing garbage appended to a valid prefix.
func (s *Scanner) Done() {
	if s.err != nil {
		return
	}
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		if c != ' ' && c != '\n' && c != '\t' && c != '\r' {
			s.fail("trailing garbage at offset %d", s.pos)
			return
		}
		s.pos++
	}
}
