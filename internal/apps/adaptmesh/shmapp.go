package adaptmesh

// The one-sided (SHMEM) implementation of the adaptive-mesh application.
// The decomposition is the same as MP's, but all communication is
// initiator-driven: partial sums and migrated values are *put* into
// symmetric staging buffers at precomputed offsets, updated ghost values are
// pushed with indexed puts directly into the owners' neighbours' field
// blocks, and barriers provide completion. No receive-side code exists at
// all — the structural difference the programming-effort table captures.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

// shmLayout precomputes the symmetric staging-buffer offsets for one cycle.
type shmLayout struct {
	offIn  [][]int // offIn[q][p]: start of region p→q in q's contrib block
	offMig [][]int // offMig[dst][src]: start of region src→dst in dst's migration block
	inLen  int     // contrib block length (max over PEs)
	migLen int     // migration block length (max over PEs)
}

func buildShmLayout(pl *CyclePlan, nprocs int) *shmLayout {
	lay := &shmLayout{
		offIn:  make([][]int, nprocs),
		offMig: make([][]int, nprocs),
	}
	for q := 0; q < nprocs; q++ {
		lay.offIn[q] = make([]int, nprocs)
		lay.offMig[q] = make([]int, nprocs)
		off := 0
		for p := 0; p < nprocs; p++ {
			lay.offIn[q][p] = off
			off += len(pl.Dec.Border[p][q])
		}
		if off > lay.inLen {
			lay.inLen = off
		}
		off = 0
		for src := 0; src < nprocs; src++ {
			lay.offMig[q][src] = off
			off += len(pl.MoveSend[src][q])
		}
		if off > lay.migLen {
			lay.migLen = off
		}
	}
	if lay.inLen == 0 {
		lay.inLen = 1
	}
	if lay.migLen == 0 {
		lay.migLen = 1
	}
	return lay
}

func runSHMEM(mach *machine.Machine, w Workload, plans []*CyclePlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	sp := numa.NewSpace(mach)
	world := shm.NewWorld(mach, sp)

	var uOld *shm.Sym[float64]
	var auxOld []*shm.Sym[float64]
	var checksum float64
	nf := 1 + w.AuxFields
	for ci, pl := range plans {
		lay := buildShmLayout(pl, nprocs)
		uNew := shm.AllocWorld[float64](world, pl.NV)
		acc := shm.AllocWorld[float64](world, pl.NV)
		auxNew := make([]*shm.Sym[float64], w.AuxFields)
		for k := range auxNew {
			auxNew[k] = shm.AllocWorld[float64](world, pl.NV)
		}
		contrib := shm.AllocWorld[float64](world, lay.inLen)
		mig := shm.AllocWorld[float64](world, nf*lay.migLen)
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		prevU, prevAux := uOld, auxOld
		g.Run(func(p *sim.Proc) {
			cs := shmCycle(world.PE(p), mach, w, pl, prev, lay, prevU, prevAux, uNew, auxNew, acc, contrib, mig)
			if p.ID() == 0 {
				checksum = cs
			}
		})
		uOld = uNew
		auxOld = auxNew
	}
	return finishMetrics(core.SHMEM, g, sp, plans, 2+w.AuxFields, checksum)
}

func shmCycle(pe *shm.PE, mach *machine.Machine, w Workload, pl, prev *CyclePlan,
	lay *shmLayout, uOld *shm.Sym[float64], auxOld []*shm.Sym[float64],
	u *shm.Sym[float64], aux []*shm.Sym[float64], acc, contrib, mig *shm.Sym[float64]) float64 {

	me := pe.ID()
	p := pe.P
	dec := pl.Dec
	uL := u.Local(pe)
	accL := acc.Local(pe)

	// --- mark
	chargeMark(p, mach, pl)

	// --- refine: each PE applies its share of the structural changes; the
	// records are shared by a one-sided collect (cheaper than MP's
	// allgather, but still explicit — unlike CC-SAS).
	ph := p.SetPhase(sim.PhaseRefine)
	shm.Collect(pe, refineRecords(pl, pe.Size()))
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine, solver.ApplyOps*((pl.Changes+pe.Size()-1)/pe.Size()))

	// --- partition
	chargePartition(p, mach, pl)

	// --- remap: puts into the migration staging block; completion by
	// barrier; then interpolate new vertices.
	ph = p.SetPhase(sim.PhaseRemap)
	nf := 1 + w.AuxFields
	auxL := make([]*numa.Array[float64], len(aux))
	for k := range aux {
		auxL[k] = aux[k].Local(pe)
	}
	if prev == nil {
		for _, v := range dec.OwnedVerts[me] {
			uL.Store(p, int(v), w.initialField(pl.M.VX[v], pl.M.VY[v]))
			for k := range auxL {
				auxL[k].Store(p, int(v), auxInit(k, pl.M.VX[v], pl.M.VY[v]))
			}
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(dec.OwnedVerts[me]))
		pe.Barrier()
	} else {
		uOldL := uOld.Local(pe)
		for _, v := range pl.LocalKeep[me] {
			uL.Store(p, int(v), uOldL.Load(p, int(v)))
			for k := range auxL {
				auxL[k].Store(p, int(v), auxOld[k].Local(pe).Load(p, int(v)))
			}
		}
		for dst := 0; dst < pe.Size(); dst++ {
			lst := pl.MoveSend[me][dst]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, nf*len(lst))
			for i, v := range lst {
				vals[nf*i] = uOldL.Load(p, int(v))
				for k := range auxL {
					vals[nf*i+1+k] = auxOld[k].Local(pe).Load(p, int(v))
				}
			}
			shm.Put(pe, mig, dst, nf*lay.offMig[dst][me], vals)
		}
		pe.Barrier()
		migL := mig.Local(pe)
		for src := 0; src < pe.Size(); src++ {
			lst := pl.MoveSend[src][me]
			off := nf * lay.offMig[me][src]
			for i, v := range lst {
				uL.Store(p, int(v), migL.Load(p, off+nf*i))
				for k := range auxL {
					auxL[k].Store(p, int(v), migL.Load(p, off+nf*i+1+k))
				}
			}
		}
		read := func(x int32) float64 { return uL.Load(p, int(x)) }
		for _, v := range pl.InterpOwned[me] {
			uL.Store(p, int(v), pl.InterpValue(v, read))
		}
		for k := range auxL {
			ax := auxL[k]
			readAux := func(x int32) float64 { return ax.Load(p, int(x)) }
			for _, v := range pl.InterpOwned[me] {
				ax.Store(p, int(v), pl.InterpValue(v, readAux))
			}
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[me]))
	}
	p.SetPhase(ph)

	// --- solve
	p.SetPhase(sim.PhaseCompute)
	shmGhostPush(pe, pl, u, uL)
	pe.Barrier()
	opNS := mach.Cfg.OpNS
	for it := 0; it < w.SolveIters; it++ {
		for _, v := range pl.Clear[me] {
			accL.Store(p, int(v), 0)
		}
		for _, e := range dec.OwnedEdges[me] {
			a, b := pl.M.Edges[e][0], pl.M.Edges[e][1]
			f := solver.Flux(uL.Load(p, int(a)), uL.Load(p, int(b)))
			accL.Store(p, int(a), accL.Load(p, int(a))+f)
			accL.Store(p, int(b), accL.Load(p, int(b))-f)
			p.Advance(sim.Time(solver.FluxOps) * opNS)
		}
		// Push partial sums into the owners' contribution blocks.
		phc := p.SetPhase(sim.PhaseComm)
		for q := 0; q < pe.Size(); q++ {
			lst := dec.Border[me][q]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, len(lst))
			for i, v := range lst {
				vals[i] = accL.Load(p, int(v))
			}
			shm.Put(pe, contrib, q, lay.offIn[q][me], vals)
		}
		p.SetPhase(phc)
		pe.Barrier()
		contribL := contrib.Local(pe)
		for q := 0; q < pe.Size(); q++ {
			lst := dec.Border[q][me]
			off := lay.offIn[me][q]
			for i, v := range lst {
				accL.Store(p, int(v), accL.Load(p, int(v))+contribL.Load(p, off+i))
			}
		}
		for _, v := range dec.OwnedVerts[me] {
			uL.Store(p, int(v), solver.Update(uL.Load(p, int(v)), accL.Load(p, int(v)), pl.Deg[v]))
			p.Advance(sim.Time(solver.UpdateOps) * opNS)
		}
		shmGhostPush(pe, pl, u, uL)
		pe.Barrier()
	}

	s := 0.0
	for _, v := range dec.OwnedVerts[me] {
		s += uL.Load(p, int(v))
		for k := range auxL {
			s += auxL[k].Load(p, int(v))
		}
	}
	return shm.Allreduce1(pe, s, shm.OpSum)
}

// shmGhostPush writes my owned vertices' updated values straight into each
// neighbour's field block with indexed puts; the following barrier makes
// them visible.
func shmGhostPush(pe *shm.PE, pl *CyclePlan, u *shm.Sym[float64], uL *numa.Array[float64]) {
	me := pe.ID()
	p := pe.P
	dec := pl.Dec
	defer p.SetPhase(p.SetPhase(sim.PhaseComm))
	for q := 0; q < pe.Size(); q++ {
		lst := dec.Border[q][me]
		if len(lst) == 0 {
			continue
		}
		vals := make([]float64, len(lst))
		for i, v := range lst {
			vals[i] = uL.Load(p, int(v))
		}
		shm.PutIdx(pe, u, q, lst, vals)
	}
}
