package adaptmesh

// The one-sided (SHMEM) implementation of the adaptive-mesh application.
// The decomposition is the same as MP's, but all communication is
// initiator-driven: partial sums and migrated values are *put* into
// symmetric staging buffers at precomputed offsets, updated ghost values are
// pushed with indexed puts directly into the owners' neighbours' field
// blocks, and barriers provide completion. No receive-side code exists at
// all — the structural difference the programming-effort table captures.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

// shmLayout precomputes the symmetric staging-buffer offsets for one cycle.
type shmLayout struct {
	offIn  [][]int // offIn[q][p]: start of region p→q in q's contrib block
	offMig [][]int // offMig[dst][src]: start of region src→dst in dst's migration block
	inLen  int     // contrib block length (max over PEs)
	migLen int     // migration block length (max over PEs)
}

func buildShmLayout(pl *CyclePlan, nprocs int) *shmLayout {
	lay := &shmLayout{
		offIn:  make([][]int, nprocs),
		offMig: make([][]int, nprocs),
	}
	for q := 0; q < nprocs; q++ {
		lay.offIn[q] = make([]int, nprocs)
		lay.offMig[q] = make([]int, nprocs)
		off := 0
		for p := 0; p < nprocs; p++ {
			lay.offIn[q][p] = off
			off += len(pl.Dec.Border[p][q])
		}
		if off > lay.inLen {
			lay.inLen = off
		}
		off = 0
		for src := 0; src < nprocs; src++ {
			lay.offMig[q][src] = off
			off += len(pl.MoveSend[src][q])
		}
		if off > lay.migLen {
			lay.migLen = off
		}
	}
	if lay.inLen == 0 {
		lay.inLen = 1
	}
	if lay.migLen == 0 {
		lay.migLen = 1
	}
	return lay
}

func runSHMEM(mach *machine.Machine, w Workload, plans []*CyclePlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	sp := numa.NewSpace(mach)
	world := shm.NewWorld(mach, sp)

	var uOld *shm.Sym[float64]
	var auxOld []*shm.Sym[float64]
	var checksum float64
	nf := 1 + w.AuxFields
	for ci, pl := range plans {
		lay := buildShmLayout(pl, nprocs)
		uNew := shm.AllocWorld[float64](world, pl.NV)
		acc := shm.AllocWorld[float64](world, pl.NV)
		auxNew := make([]*shm.Sym[float64], w.AuxFields)
		for k := range auxNew {
			auxNew[k] = shm.AllocWorld[float64](world, pl.NV)
		}
		contrib := shm.AllocWorld[float64](world, lay.inLen)
		mig := shm.AllocWorld[float64](world, nf*lay.migLen)
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		prevU, prevAux := uOld, auxOld
		g.Run(func(p *sim.Proc) {
			cs := shmCycle(world.PE(p), mach, w, pl, prev, lay, prevU, prevAux, uNew, auxNew, acc, contrib, mig)
			if p.ID() == 0 {
				checksum = cs
			}
		})
		// All puts into these blocks completed at the cycle's final barrier:
		// recycle the staging blocks, the accumulator, and the previous
		// cycle's field arrays (last read by this cycle's remap).
		shm.Free(acc)
		shm.Free(contrib)
		shm.Free(mig)
		if prevU != nil {
			shm.Free(prevU)
			for _, ax := range prevAux {
				shm.Free(ax)
			}
		}
		uOld = uNew
		auxOld = auxNew
	}
	return finishMetrics(core.SHMEM, g, sp, plans, 2+w.AuxFields, checksum)
}

func shmCycle(pe *shm.PE, mach *machine.Machine, w Workload, pl, prev *CyclePlan,
	lay *shmLayout, uOld *shm.Sym[float64], auxOld []*shm.Sym[float64],
	u *shm.Sym[float64], aux []*shm.Sym[float64], acc, contrib, mig *shm.Sym[float64]) float64 {

	me := pe.ID()
	p := pe.P
	dec := pl.Dec
	uL := u.Local(pe)
	accL := acc.Local(pe)

	// --- mark
	chargeMark(p, mach, pl)

	// --- refine: each PE applies its share of the structural changes; the
	// records are shared by a one-sided collect (cheaper than MP's
	// allgather, but still explicit — unlike CC-SAS).
	ph := p.SetPhase(sim.PhaseRefine)
	shm.Collect(pe, refineRecords(pl, pe.Size()))
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine, solver.ApplyOps*((pl.Changes+pe.Size()-1)/pe.Size()))

	// --- partition
	chargePartition(p, mach, pl)

	// --- remap: puts into the migration staging block; completion by
	// barrier; then interpolate new vertices.
	ph = p.SetPhase(sim.PhaseRemap)
	nf := 1 + w.AuxFields
	auxL := make([]*numa.Array[float64], len(aux))
	for k := range aux {
		auxL[k] = aux[k].Local(pe)
	}
	fields := make([]*numa.Array[float64], 0, nf)
	fields = append(append(fields, uL), auxL...)
	var scratch []float64
	buf := func(n int) []float64 {
		if cap(scratch) < n {
			scratch = make([]float64, n)
		}
		return scratch[:n]
	}
	if prev == nil {
		lst := dec.OwnedVerts[me]
		vals := buf(nf * len(lst))
		for i, v := range lst {
			vals[nf*i] = w.initialField(pl.M.VX[v], pl.M.VY[v])
			for k := range auxL {
				vals[nf*i+1+k] = auxInit(k, pl.M.VX[v], pl.M.VY[v])
			}
		}
		numa.ScatterFields(p, fields, lst, vals)
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(lst))
		pe.Barrier()
	} else {
		oldFields := make([]*numa.Array[float64], 0, nf)
		oldFields = append(oldFields, uOld.Local(pe))
		for k := range auxOld {
			oldFields = append(oldFields, auxOld[k].Local(pe))
		}
		numa.CopyFields(p, fields, oldFields, pl.LocalKeep[me])
		for dst := 0; dst < pe.Size(); dst++ {
			lst := pl.MoveSend[me][dst]
			if len(lst) == 0 {
				continue
			}
			vals := buf(nf * len(lst))
			numa.GatherFields(p, oldFields, lst, vals)
			shm.Put(pe, mig, dst, nf*lay.offMig[dst][me], vals)
		}
		pe.Barrier()
		migL := mig.Local(pe)
		for src := 0; src < pe.Size(); src++ {
			lst := pl.MoveSend[src][me]
			numa.UnpackFields(p, migL, nf*lay.offMig[me][src], fields, lst)
		}
		cu := uL.Cursor(p)
		read := func(x int32) float64 { return cu.Load(int(x)) }
		for _, v := range pl.InterpOwned[me] {
			cu.Store(int(v), pl.InterpValue(v, read))
		}
		cu.Flush()
		for k := range auxL {
			cax := auxL[k].Cursor(p)
			readAux := func(x int32) float64 { return cax.Load(int(x)) }
			for _, v := range pl.InterpOwned[me] {
				cax.Store(int(v), pl.InterpValue(v, readAux))
			}
			cax.Flush()
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[me]))
	}
	p.SetPhase(ph)

	// --- solve
	p.SetPhase(sim.PhaseCompute)
	shmGhostPush(pe, pl, u, uL, &scratch)
	pe.Barrier()
	opNS := mach.Cfg.OpNS
	ea, eb := pl.EdgeA[me], pl.EdgeB[me]
	for it := 0; it < w.SolveIters; it++ {
		accL.FillIdx(p, pl.Clear[me], 0)
		cu := uL.Cursor(p)
		ca := accL.Cursor(p)
		for j := range ea {
			a, b := int(ea[j]), int(eb[j])
			f := solver.Flux(cu.Load(a), cu.Load(b))
			ca.Store(a, ca.Load(a)+f)
			ca.Store(b, ca.Load(b)-f)
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(ea)*solver.FluxOps) * opNS)
		// Push partial sums into the owners' contribution blocks.
		phc := p.SetPhase(sim.PhaseComm)
		for q := 0; q < pe.Size(); q++ {
			lst := dec.Border[me][q]
			if len(lst) == 0 {
				continue
			}
			vals := buf(len(lst))
			accL.GatherIdx(p, lst, vals)
			shm.Put(pe, contrib, q, lay.offIn[q][me], vals)
		}
		p.SetPhase(phc)
		pe.Barrier()
		contribL := contrib.Local(pe)
		for q := 0; q < pe.Size(); q++ {
			numa.AddGather(p, accL, dec.Border[q][me], contribL, lay.offIn[me][q])
		}
		owned := dec.OwnedVerts[me]
		cu = uL.Cursor(p)
		ca = accL.Cursor(p)
		for _, v := range owned {
			i := int(v)
			cu.Store(i, solver.Update(cu.Load(i), ca.Load(i), pl.Deg[v]))
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(owned)*solver.UpdateOps) * opNS)
		shmGhostPush(pe, pl, u, uL, &scratch)
		pe.Barrier()
	}

	s := 0.0
	cu := uL.Cursor(p)
	cax := make([]numa.Cursor[float64], len(auxL))
	for k := range auxL {
		cax[k] = auxL[k].Cursor(p)
	}
	for _, v := range dec.OwnedVerts[me] {
		s += cu.Load(int(v))
		for k := range cax {
			s += cax[k].Load(int(v))
		}
	}
	cu.Flush()
	for k := range cax {
		cax[k].Flush()
	}
	return shm.Allreduce1(pe, s, shm.OpSum)
}

// shmGhostPush writes my owned vertices' updated values straight into each
// neighbour's field block with indexed puts; the following barrier makes
// them visible. scratch is the caller's staging buffer (PutIdx copies out
// before returning, so reuse across targets is safe).
func shmGhostPush(pe *shm.PE, pl *CyclePlan, u *shm.Sym[float64], uL *numa.Array[float64], scratch *[]float64) {
	me := pe.ID()
	p := pe.P
	dec := pl.Dec
	defer p.SetPhase(p.SetPhase(sim.PhaseComm))
	for q := 0; q < pe.Size(); q++ {
		lst := dec.Border[q][me]
		if len(lst) == 0 {
			continue
		}
		if cap(*scratch) < len(lst) {
			*scratch = make([]float64, len(lst))
		}
		vals := (*scratch)[:len(lst)]
		uL.GatherIdx(p, lst, vals)
		shm.PutIdx(pe, u, q, lst, vals)
	}
}
