package adaptmesh

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func TestHybridMatchesReference(t *testing.T) {
	w := Small()
	ref := ReferenceChecksum(w)
	for _, procs := range []int{2, 4, 8, 6} {
		m := mach(procs)
		met := RunHybrid(m, w)
		if met.Model != core.Hybrid || met.Model.String() != "MP+SAS" {
			t.Fatal("hybrid metrics mislabelled")
		}
		if rel := math.Abs(met.Checksum-ref) / math.Abs(ref); rel > 1e-9 {
			t.Fatalf("P=%d: hybrid checksum drift %v (got %v want %v)", procs, rel, met.Checksum, ref)
		}
	}
}

func TestHybridMatchesPureAtOneProcPerNode(t *testing.T) {
	// With one processor per node the hybrid degenerates to pure MP over
	// the same decomposition: checksums must be bit-identical.
	w := Small()
	m := mach(4)
	cfg := m.Cfg
	cfg.ProcsPerNode = 1
	m1, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := BuildPlans(w, 4)
	pure := RunWithPlans(core.MP, m1, w, plans).Checksum
	hyb := RunHybridWithPlans(m1, w, plans).Checksum
	if pure != hyb {
		t.Fatalf("hybrid(ppn=1) %v != pure MP %v", hyb, pure)
	}
}

func TestHybridDeterministic(t *testing.T) {
	w := Small()
	plans := BuildPlans(w, mach(8).Nodes())
	a := RunHybridWithPlans(mach(8), w, plans)
	b := RunHybridWithPlans(mach(8), w, plans)
	if a.Total != b.Total || a.Checksum != b.Checksum {
		t.Fatalf("hybrid nondeterministic: %v/%v vs %v/%v", a.Total, a.Checksum, b.Total, b.Checksum)
	}
}

func TestHybridVsPureMP(t *testing.T) {
	// The authors' follow-up finding: on tightly coupled hardware the hybrid
	// shows "only a small performance advantage over pure MPI in some
	// cases" — it must be competitive (within 15%) on the Origin profile...
	w := Default()
	m := mach(64)
	pure := RunWithPlans(core.MP, m, w, BuildPlans(w, 64)).Total
	hyb := RunHybrid(m, w).Total
	if float64(hyb) > 1.15*float64(pure) {
		t.Fatalf("hybrid (%v) not competitive with pure MP (%v) on Origin", hyb, pure)
	}
	// ...and must genuinely win where inter-node messages are expensive:
	// a cluster of 4-way SMPs.
	mc := machine.MustNew(machine.ClusterOfSMPs(32))
	pureC := RunWithPlans(core.MP, mc, w, BuildPlans(w, 32)).Total
	hybC := RunHybridWithPlans(mc, w, BuildPlans(w, mc.Nodes())).Total
	if hybC >= pureC {
		t.Fatalf("hybrid (%v) not faster than pure MP (%v) on cluster of SMPs", hybC, pureC)
	}
}

func TestHybridPhasesAndMemory(t *testing.T) {
	w := Small()
	met := RunHybrid(mach(8), w)
	if met.PhaseMax[sim.PhaseCompute] == 0 || met.PhaseMax[sim.PhaseComm] == 0 {
		t.Error("hybrid phase attribution missing")
	}
	if met.PhaseMax[sim.PhaseSync] == 0 {
		t.Error("hybrid should spend time in intra-node barriers")
	}
	if met.DataBytes <= 0 {
		t.Error("hybrid memory accounting missing")
	}
	// Node-granular ghosts: hybrid replicates less than pure MP at the same
	// processor count.
	pureMP := Run(core.MP, mach(8), w)
	if met.DataBytes >= pureMP.DataBytes {
		t.Errorf("hybrid memory %d not below pure MP %d", met.DataBytes, pureMP.DataBytes)
	}
}

func TestHybridRejectsWrongPlans(t *testing.T) {
	w := Small()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for proc-granularity plans")
		}
	}()
	RunHybridWithPlans(mach(8), w, BuildPlans(w, 8)) // 8 procs = 4 nodes: mismatch
}
