package adaptmesh

import (
	"fmt"

	"o2k/internal/mesh"
	"o2k/internal/partition"
	"o2k/internal/planio"
)

// Structure is the processor-count-independent half of plan construction:
// the full adaptation history of the workload's forest — one conforming
// snapshot per cycle plus the forest-wide parent arrays. It is the expensive
// part of BuildPlans that every processor count (and every run-time knob
// ablation) shares, and the unit the persistent plan cache stores.
//
// StructureSchema and PlanSchema version the serialized forms; they are
// folded into the cache keys, so a format change retires old entries instead
// of misreading them (the in-payload version headers are the backstop).
const (
	StructureSchema = "o2kmeshstruct/1"
	PlanSchema      = "o2kmeshplan/1"
)

// Structure holds the adaptation history. VX/VY and MidA/MidB are the
// forest's final coordinate and parent arrays; cycle c's snapshot uses the
// prefix [:NV_c] (vertex IDs are append-only, so earlier cycles see a prefix
// of the final ID space).
type Structure struct {
	BaseTris   int
	VX, VY     []float64
	MidA, MidB []int32
	Cycles     []StructCycle
}

// StructCycle is one adaptation cycle's structural output.
type StructCycle struct {
	M     *mesh.Mesh
	Stats mesh.AdaptStats
}

// BuildStructure runs the workload's adaptation sequence. Adaptation never
// depends on the partitioning, so the whole history can be computed before
// any processor count is chosen — the separation that lets fig12's machine
// presets (and every P of a scaling sweep) share one structure.
func BuildStructure(w Workload) *Structure {
	f := mesh.NewUnitSquare(w.GridN, w.MaxLevel)
	st := &Structure{BaseTris: f.BaseTris()}
	for c := 0; c < w.Cycles; c++ {
		step := c
		if w.StaticMesh {
			step = 0
		}
		stats := f.Adapt(w.indicatorAt(step))
		st.Cycles = append(st.Cycles, StructCycle{M: f.Snapshot(), Stats: stats})
	}
	st.VX, st.VY = f.VX, f.VY
	st.MidA, st.MidB = f.MidA, f.MidB
	return st
}

// appendFront writes the workload's front parameters as a self-describing
// cross-check inside the structure payload.
func appendFront(pw *planio.Writer, w Workload) {
	if w.Collision != nil {
		pw.Word("collision")
		pw.End()
		w.Collision.AppendTo(pw)
	} else {
		pw.Word("front")
		pw.End()
		w.Front.AppendTo(pw)
	}
}

// checkFront verifies the decoded payload's front matches the workload the
// cache key claimed — a defence against entries stored under a wrong key.
func checkFront(s *planio.Scanner, w Workload) error {
	switch kind := s.Word(); kind {
	case "collision":
		c, err := mesh.DecodeCollidingFrontsFrom(s)
		if err != nil {
			return err
		}
		if w.Collision == nil || *w.Collision != c {
			return fmt.Errorf("adaptmesh: structure entry is for a different collision workload")
		}
	case "front":
		f, err := mesh.DecodeMovingFrontFrom(s)
		if err != nil {
			return err
		}
		if w.Collision != nil || w.Front != f {
			return fmt.Errorf("adaptmesh: structure entry is for a different front workload")
		}
	default:
		if err := s.Err(); err != nil {
			return err
		}
		return fmt.Errorf("adaptmesh: bad front kind %q", kind)
	}
	return s.Err()
}

// EncodeStructure serializes the adaptation history:
//
//	o2kmeshstruct 1 <BaseTris> <cycles> <nvFinal>
//	<front cross-check>
//	<x> <y> <midA> <midB>      (nvFinal lines)
//	cycle <NV> <Refined> <Coarsened> <Passes> <nt>
//	<triangle table>           (per cycle, mesh v2 rows)
func EncodeStructure(st *Structure, w Workload) []byte {
	var pw planio.Writer
	pw.Word("o2kmeshstruct")
	pw.Int(1)
	pw.Int(st.BaseTris)
	pw.Int(len(st.Cycles))
	pw.Int(len(st.MidA))
	pw.End()
	appendFront(&pw, w)
	for v := range st.MidA {
		pw.Float(st.VX[v])
		pw.Float(st.VY[v])
		pw.Int(int(st.MidA[v]))
		pw.Int(int(st.MidB[v]))
		pw.End()
	}
	for _, sc := range st.Cycles {
		pw.Word("cycle")
		pw.Int(sc.M.NumVertsTotal())
		pw.Int(sc.Stats.Refined)
		pw.Int(sc.Stats.Coarsened)
		pw.Int(sc.Stats.Passes)
		pw.Int(sc.M.NumTris())
		pw.End()
		sc.M.AppendTris(&pw)
	}
	return pw.Bytes()
}

// DecodeStructure rebuilds an adaptation history from EncodeStructure's
// output, validating it against the expected workload. All snapshots share
// one decoded coordinate arena, exactly like the forest they came from.
func DecodeStructure(data []byte, w Workload) (*Structure, error) {
	s := planio.NewScanner(data)
	s.Expect("o2kmeshstruct")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return nil, fmt.Errorf("adaptmesh: unsupported structure version %d", v)
	}
	st := &Structure{BaseTris: s.IntRange(1, 1<<30)}
	cycles := s.IntRange(0, 1<<20)
	nv := s.IntRange(1, 1<<30)
	if err := s.Err(); err != nil {
		return nil, err
	}
	if cycles != w.Cycles {
		return nil, fmt.Errorf("adaptmesh: structure entry has %d cycles, workload wants %d", cycles, w.Cycles)
	}
	if err := checkFront(s, w); err != nil {
		return nil, err
	}
	vx := make([]float64, nv)
	vy := make([]float64, nv)
	st.MidA = make([]int32, nv)
	st.MidB = make([]int32, nv)
	for v := 0; v < nv; v++ {
		vx[v] = s.Float()
		vy[v] = s.Float()
		// Parents always have smaller IDs than their midpoint — the invariant
		// the interpolation recursion and ancestor walks terminate on — so
		// enforce it here: a corrupt in-range value must not be able to form
		// a parent-chain cycle.
		st.MidA[v] = int32(s.IntRange(-1, v-1))
		st.MidB[v] = int32(s.IntRange(-1, v-1))
	}
	st.VX, st.VY = vx, vy
	for c := 0; c < cycles; c++ {
		s.Expect("cycle")
		cnv := s.IntRange(1, nv)
		var stats mesh.AdaptStats
		stats.Refined = s.IntRange(0, 1<<30)
		stats.Coarsened = s.IntRange(0, 1<<30)
		stats.Passes = s.IntRange(0, 1<<30)
		nt := s.IntRange(1, 1<<30)
		if err := s.Err(); err != nil {
			return nil, err
		}
		m, err := mesh.DecodeTris(s, nt, vx[:cnv], vy[:cnv])
		if err != nil {
			return nil, err
		}
		st.Cycles = append(st.Cycles, StructCycle{M: m, Stats: stats})
	}
	s.Done()
	if err := s.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// EncodePlans serializes the per-processor-count half of a plan sequence:
// the partitioning decisions (triangle owners and remap statistics) each
// cycle's full plan is deterministically derived from.
//
//	o2kmeshplan 1 <P> <cycles>
//	<decomp> <TotalW> <MaxOutW> <MaxInW> <Retained>   (per cycle)
func EncodePlans(plans []*CyclePlan, nprocs int) []byte {
	var pw planio.Writer
	pw.Word("o2kmeshplan")
	pw.Int(1)
	pw.Int(nprocs)
	pw.Int(len(plans))
	pw.End()
	for _, p := range plans {
		p.Dec.AppendTo(&pw)
		pw.Float(p.Remap.TotalW)
		pw.Float(p.Remap.MaxOutW)
		pw.Float(p.Remap.MaxInW)
		pw.Float(p.Remap.Retained)
		pw.End()
	}
	return pw.Bytes()
}

// DecodePlans rebuilds a plan sequence from EncodePlans output by replaying
// the derivation against the structure. The owner vectors are validated per
// cycle; any mismatch with the structure (or the requested processor count)
// is an error, which the cache layer converts into a recomputation.
func (st *Structure) DecodePlans(data []byte, nprocs int) ([]*CyclePlan, error) {
	s := planio.NewScanner(data)
	s.Expect("o2kmeshplan")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return nil, fmt.Errorf("adaptmesh: unsupported plan version %d", v)
	}
	p := s.Int()
	cycles := s.Int()
	if err := s.Err(); err != nil {
		return nil, err
	}
	if p != nprocs {
		return nil, fmt.Errorf("adaptmesh: plan entry is for P=%d, want P=%d", p, nprocs)
	}
	if cycles != len(st.Cycles) {
		return nil, fmt.Errorf("adaptmesh: plan entry has %d cycles, structure has %d", cycles, len(st.Cycles))
	}
	plans := make([]*CyclePlan, 0, cycles)
	var prev *CyclePlan
	for c := 0; c < cycles; c++ {
		dec, err := partition.DecodeDecompFrom(s, st.Cycles[c].M)
		if err != nil {
			return nil, err
		}
		if dec.P != nprocs {
			return nil, fmt.Errorf("adaptmesh: cycle %d decomp is for P=%d, want P=%d", c, dec.P, nprocs)
		}
		var remap partition.RemapStats
		remap.TotalW = s.Float()
		remap.MaxOutW = s.Float()
		remap.MaxInW = s.Float()
		remap.Retained = s.Float()
		if err := s.Err(); err != nil {
			return nil, err
		}
		pl := st.planCycle(c, dec, remap, nprocs, prev)
		plans = append(plans, pl)
		prev = pl
	}
	s.Done()
	if err := s.Err(); err != nil {
		return nil, err
	}
	return plans, nil
}
