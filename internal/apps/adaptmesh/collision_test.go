package adaptmesh

import (
	"testing"

	"o2k/internal/core"
	"o2k/internal/mesh"
)

func TestCollisionWorkloadCrossModel(t *testing.T) {
	w := Small()
	coll := mesh.DefaultCollision(w.MaxLevel)
	w.Collision = &coll
	plans := BuildPlans(w, 4)
	ref := ReferenceChecksum(w)
	var sums [3]float64
	for i, model := range core.AllModels() {
		sums[i] = RunWithPlans(model, mach(4), w, plans).Checksum
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("collision workload diverged: %v", sums)
	}
	if sums[0] == 0 || ref == 0 {
		t.Fatal("zero checksums")
	}
	// Two-front workload produces a different answer than single-front.
	single := Run(core.SAS, mach(4), Small()).Checksum
	if sums[2] == single {
		t.Fatal("collision workload identical to single front?")
	}
}
