package adaptmesh

// Round-trip and corruption properties of the two plan-cache payloads: the
// adaptation structure and the per-P partitioning decisions. The decoded
// forms must be reflect.DeepEqual to the built ones — the invariant that
// makes a warm run's plans interchangeable with a cold run's.

import (
	"reflect"
	"testing"

	"o2k/internal/mesh"
)

func TestStructureRoundTripDeepEqual(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Workload
	}{
		{"single front", Small()},
		{"colliding fronts", func() Workload {
			w := Small()
			c := mesh.DefaultCollision(2)
			w.Collision = &c
			return w
		}()},
		{"zero cycles", func() Workload {
			w := Small()
			w.Cycles = 0
			return w
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := BuildStructure(tc.w)
			st2, err := DecodeStructure(EncodeStructure(st, tc.w), tc.w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st, st2) {
				t.Fatal("structure round trip is not DeepEqual")
			}
		})
	}
}

func TestStructureRejectsWrongWorkload(t *testing.T) {
	w := Small()
	data := EncodeStructure(BuildStructure(w), w)
	w2 := w
	w2.Front.Radius += 0.01
	if _, err := DecodeStructure(data, w2); err == nil {
		t.Fatal("structure for a different front was accepted")
	}
	w3 := w
	w3.Cycles++
	if _, err := DecodeStructure(data, w3); err == nil {
		t.Fatal("structure with a different cycle count was accepted")
	}
}

func TestPlansRoundTripDeepEqual(t *testing.T) {
	w := Small()
	st := BuildStructure(w)
	plans := st.Plans(4, false)
	plans2, err := st.DecodePlans(EncodePlans(plans, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plans, plans2) {
		t.Fatal("plan round trip is not DeepEqual")
	}
	// The one-shot builder and the structure-then-decode path agree too —
	// the equality the plan cache's two-tier split rests on.
	if !reflect.DeepEqual(BuildPlans(w, 4), plans2) {
		t.Fatal("BuildPlans and decoded plans disagree")
	}
}

func TestPlansRejectWrongProcs(t *testing.T) {
	st := BuildStructure(Small())
	data := EncodePlans(st.Plans(4, false), 4)
	if _, err := st.DecodePlans(data, 8); err == nil {
		t.Fatal("plans for P=4 were accepted at P=8")
	}
}

// Any single bit flip in either payload must decode to an error or a value —
// never a panic (the property the cache's corrupt-entry path depends on).
func TestStructureAndPlanBitFlipsNeverPanic(t *testing.T) {
	w := Small()
	st := BuildStructure(w)
	for _, data := range [][]byte{
		EncodeStructure(st, w),
		EncodePlans(st.Plans(4, false), 4),
	} {
		step := len(data)/150 + 1
		for pos := 0; pos < len(data); pos += step {
			c := append([]byte(nil), data...)
			c[pos] ^= 1 << (pos % 8)
			if st2, err := DecodeStructure(c, w); err == nil && st2 != nil {
				st2.Plans(2, false) // a silently-accepted flip must still derive plans
			}
			st.DecodePlans(c, 4) // must not panic
		}
	}
}
