package adaptmesh

import (
	"testing"
)

// Every owned vertex of a cycle must be seeded by exactly one mechanism:
// kept locally, received from a previous owner, or interpolated. This is
// the invariant that makes the remap phase correct in all three models.
func TestMigrationCoversEveryOwnedVertex(t *testing.T) {
	w := Small()
	for _, nprocs := range []int{2, 4, 7} {
		plans := BuildPlans(w, nprocs)
		for ci := 1; ci < len(plans); ci++ {
			pl := plans[ci]
			// source[v]: how many mechanisms deliver v's value to its owner.
			srcCount := make(map[int32]int)
			for p := 0; p < nprocs; p++ {
				for _, v := range pl.LocalKeep[p] {
					if pl.Dec.VertOwner[v] == int32(p) {
						srcCount[v]++
					}
				}
				for _, v := range pl.InterpOwned[p] {
					srcCount[v]++
				}
			}
			for src := 0; src < nprocs; src++ {
				for dst := 0; dst < nprocs; dst++ {
					for _, v := range pl.MoveSend[src][dst] {
						if pl.Dec.VertOwner[v] == int32(dst) {
							srcCount[v]++
						}
					}
				}
			}
			for p := 0; p < nprocs; p++ {
				for _, v := range pl.Dec.OwnedVerts[p] {
					if srcCount[v] != 1 {
						t.Fatalf("nprocs=%d cycle %d: vertex %d seeded %d times",
							nprocs, ci, v, srcCount[v])
					}
				}
			}
		}
	}
}

// Interpolation leaf values must themselves arrive at the interpolating
// processor — every previously-used ancestor of an InterpOwned vertex shows
// up in that processor's LocalKeep or inbound MoveSend.
func TestInterpolationLeavesDelivered(t *testing.T) {
	w := Small()
	nprocs := 4
	plans := BuildPlans(w, nprocs)
	for ci := 1; ci < len(plans); ci++ {
		pl := plans[ci]
		for p := 0; p < nprocs; p++ {
			have := map[int32]bool{}
			for _, v := range pl.LocalKeep[p] {
				have[v] = true
			}
			for src := 0; src < nprocs; src++ {
				for _, v := range pl.MoveSend[src][p] {
					have[v] = true
				}
			}
			var leaves []int32
			for _, v := range pl.InterpOwned[p] {
				leaves = pl.expandLeaves(v, leaves[:0])
				for _, lv := range leaves {
					if !have[lv] {
						t.Fatalf("cycle %d proc %d: leaf %d of %d not delivered", ci, p, lv, v)
					}
				}
			}
		}
	}
}
