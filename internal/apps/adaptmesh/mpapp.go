package adaptmesh

// The message-passing (MPI-style) implementation of the adaptive-mesh
// application. Every piece of data a process touches lives in its private
// memory; all sharing is explicit two-sided messaging:
//
//   - refine:   allgather of structural change records, replicated apply;
//   - remap:    point-to-point migration of field values to new owners;
//   - solve:    per-sweep exchange of partial sums to vertex owners and of
//               updated values back to ghost copies.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/numa"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

const (
	tagMig     = 12
	tagPartial = 13
	tagGhost   = 14
)

func runMP(mach *machine.Machine, w Workload, plans []*CyclePlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	world := mp.NewWorld(mach)
	sp := numa.NewSpace(mach)

	var uOld []*numa.Array[float64]
	var auxOld [][]*numa.Array[float64]
	var checksum float64
	for ci, pl := range plans {
		// Host-side allocation in rank order keeps addresses, and therefore
		// cache behaviour, deterministic.
		uNew := make([]*numa.Array[float64], nprocs)
		acc := make([]*numa.Array[float64], nprocs)
		auxNew := make([][]*numa.Array[float64], nprocs)
		for q := 0; q < nprocs; q++ {
			uNew[q] = numa.NewPrivate[float64](sp, q, pl.NV)
			acc[q] = numa.NewPrivate[float64](sp, q, pl.NV)
			auxNew[q] = make([]*numa.Array[float64], w.AuxFields)
			for k := range auxNew[q] {
				auxNew[q][k] = numa.NewPrivate[float64](sp, q, pl.NV)
			}
		}
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		g.Run(func(p *sim.Proc) {
			cs := mpCycle(world.Rank(p), mach, w, pl, prev,
				uOld, auxOld, uNew[p.ID()], auxNew[p.ID()], acc[p.ID()])
			if p.ID() == 0 {
				checksum = cs
			}
		})
		uOld = uNew
		auxOld = auxNew
	}
	return finishMetrics(core.MP, g, sp, plans, 2+w.AuxFields, checksum)
}

func mpCycle(r *mp.Rank, mach *machine.Machine, w Workload, pl, prev *CyclePlan,
	uOldArr []*numa.Array[float64], auxOldArr [][]*numa.Array[float64],
	u *numa.Array[float64], aux []*numa.Array[float64], acc *numa.Array[float64]) float64 {

	me := r.ID()
	p := r.P
	dec := pl.Dec

	// --- mark: local error-indicator evaluation.
	chargeMark(p, mach, pl)

	// --- refine: each rank applies its share of the structural changes,
	// then the change records are allgathered so every rank can update the
	// halo portions of its mesh structure — the messaging is the MP price of
	// making adaptation globally visible.
	ph := p.SetPhase(sim.PhaseRefine)
	mp.Allgatherv(r, refineRecords(pl, r.Size()))
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine, solver.ApplyOps*((pl.Changes+r.Size()-1)/r.Size()))

	// --- partition: replicated RCB (identical cost in every model).
	chargePartition(p, mach, pl)

	// --- remap: migrate old field values to new owners, then interpolate
	// the vertices created by this cycle's refinement.
	ph = p.SetPhase(sim.PhaseRemap)
	nf := 1 + w.AuxFields // values migrated per vertex
	if prev == nil {
		for _, v := range dec.OwnedVerts[me] {
			u.Store(p, int(v), w.initialField(pl.M.VX[v], pl.M.VY[v]))
			for k, ax := range aux {
				ax.Store(p, int(v), auxInit(k, pl.M.VX[v], pl.M.VY[v]))
			}
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(dec.OwnedVerts[me]))
	} else {
		uOld := uOldArr[me]
		auxOld := auxOldArr[me]
		for _, v := range pl.LocalKeep[me] {
			u.Store(p, int(v), uOld.Load(p, int(v)))
			for k, ax := range aux {
				ax.Store(p, int(v), auxOld[k].Load(p, int(v)))
			}
		}
		for dst := 0; dst < r.Size(); dst++ {
			lst := pl.MoveSend[me][dst]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, nf*len(lst))
			for i, v := range lst {
				vals[nf*i] = uOld.Load(p, int(v))
				for k := range aux {
					vals[nf*i+1+k] = auxOld[k].Load(p, int(v))
				}
			}
			mp.Send(r, dst, tagMig, vals)
		}
		for src := 0; src < r.Size(); src++ {
			lst := pl.MoveSend[src][me]
			if len(lst) == 0 {
				continue
			}
			vals := mp.Recv[float64](r, src, tagMig)
			for i, v := range lst {
				u.Store(p, int(v), vals[nf*i])
				for k, ax := range aux {
					ax.Store(p, int(v), vals[nf*i+1+k])
				}
			}
		}
		read := func(x int32) float64 { return u.Load(p, int(x)) }
		for _, v := range pl.InterpOwned[me] {
			u.Store(p, int(v), pl.InterpValue(v, read))
		}
		for k, ax := range aux {
			readAux := func(x int32) float64 { return ax.Load(p, int(x)) }
			_ = k
			for _, v := range pl.InterpOwned[me] {
				ax.Store(p, int(v), pl.InterpValue(v, readAux))
			}
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[me]))
	}
	p.SetPhase(ph)

	// --- solve: edge-based sweeps with owner-accumulation exchanges.
	p.SetPhase(sim.PhaseCompute)
	mpGhostExchange(r, pl, u)
	opNS := mach.Cfg.OpNS
	for it := 0; it < w.SolveIters; it++ {
		for _, v := range pl.Clear[me] {
			acc.Store(p, int(v), 0)
		}
		for _, e := range dec.OwnedEdges[me] {
			a, b := pl.M.Edges[e][0], pl.M.Edges[e][1]
			f := solver.Flux(u.Load(p, int(a)), u.Load(p, int(b)))
			acc.Store(p, int(a), acc.Load(p, int(a))+f)
			acc.Store(p, int(b), acc.Load(p, int(b))-f)
			p.Advance(sim.Time(solver.FluxOps) * opNS)
		}
		// Partial sums to vertex owners.
		phc := p.SetPhase(sim.PhaseComm)
		for q := 0; q < r.Size(); q++ {
			lst := dec.Border[me][q]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, len(lst))
			for i, v := range lst {
				vals[i] = acc.Load(p, int(v))
			}
			mp.Send(r, q, tagPartial, vals)
		}
		for q := 0; q < r.Size(); q++ {
			lst := dec.Border[q][me]
			if len(lst) == 0 {
				continue
			}
			vals := mp.Recv[float64](r, q, tagPartial)
			for i, v := range lst {
				acc.Store(p, int(v), acc.Load(p, int(v))+vals[i])
			}
		}
		p.SetPhase(phc)
		for _, v := range dec.OwnedVerts[me] {
			u.Store(p, int(v), solver.Update(u.Load(p, int(v)), acc.Load(p, int(v)), pl.Deg[v]))
			p.Advance(sim.Time(solver.UpdateOps) * opNS)
		}
		mpGhostExchange(r, pl, u)
	}

	// Deterministic digest: per-rank owned sums (solved + auxiliary state)
	// combined in rank order.
	s := 0.0
	for _, v := range dec.OwnedVerts[me] {
		s += u.Load(p, int(v))
		for _, ax := range aux {
			s += ax.Load(p, int(v))
		}
	}
	return mp.Allreduce1(r, s, mp.OpSum)
}

// mpGhostExchange sends each neighbour the updated values of the vertices I
// own that it touches, and refreshes my ghost copies from their owners.
func mpGhostExchange(r *mp.Rank, pl *CyclePlan, u *numa.Array[float64]) {
	me := r.ID()
	p := r.P
	dec := pl.Dec
	defer p.SetPhase(p.SetPhase(sim.PhaseComm))
	for q := 0; q < r.Size(); q++ {
		lst := dec.Border[q][me] // q touches these; I own them
		if len(lst) == 0 {
			continue
		}
		vals := make([]float64, len(lst))
		for i, v := range lst {
			vals[i] = u.Load(p, int(v))
		}
		mp.Send(r, q, tagGhost, vals)
	}
	for q := 0; q < r.Size(); q++ {
		lst := dec.Border[me][q] // I touch these; q owns them
		if len(lst) == 0 {
			continue
		}
		vals := mp.Recv[float64](r, q, tagGhost)
		for i, v := range lst {
			u.Store(p, int(v), vals[i])
		}
	}
}
