package adaptmesh

// The message-passing (MPI-style) implementation of the adaptive-mesh
// application. Every piece of data a process touches lives in its private
// memory; all sharing is explicit two-sided messaging:
//
//   - refine:   allgather of structural change records, replicated apply;
//   - remap:    point-to-point migration of field values to new owners;
//   - solve:    per-sweep exchange of partial sums to vertex owners and of
//               updated values back to ghost copies.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/numa"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

const (
	tagMig     = 12
	tagPartial = 13
	tagGhost   = 14
)

func runMP(mach *machine.Machine, w Workload, plans []*CyclePlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	world := mp.NewWorld(mach)
	sp := numa.NewSpace(mach)

	var uOld []*numa.Array[float64]
	var auxOld [][]*numa.Array[float64]
	var checksum float64
	for ci, pl := range plans {
		// Host-side allocation in rank order keeps addresses, and therefore
		// cache behaviour, deterministic.
		uNew := make([]*numa.Array[float64], nprocs)
		acc := make([]*numa.Array[float64], nprocs)
		auxNew := make([][]*numa.Array[float64], nprocs)
		for q := 0; q < nprocs; q++ {
			uNew[q] = numa.NewPrivate[float64](sp, q, pl.NV)
			acc[q] = numa.NewPrivate[float64](sp, q, pl.NV)
			auxNew[q] = make([]*numa.Array[float64], w.AuxFields)
			for k := range auxNew[q] {
				auxNew[q][k] = numa.NewPrivate[float64](sp, q, pl.NV)
			}
		}
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		g.Run(func(p *sim.Proc) {
			cs := mpCycle(world.Rank(p), mach, w, pl, prev,
				uOld, auxOld, uNew[p.ID()], auxNew[p.ID()], acc[p.ID()])
			if p.ID() == 0 {
				checksum = cs
			}
		})
		// The previous cycle's field arrays were last read by this cycle's
		// remap; the accumulators die with the cycle. Recycle their host
		// backing so the next cycle's allocations reuse it.
		for q := 0; q < nprocs; q++ {
			numa.Release(acc[q])
			if uOld != nil {
				numa.Release(uOld[q])
				for _, ax := range auxOld[q] {
					numa.Release(ax)
				}
			}
		}
		uOld = uNew
		auxOld = auxNew
	}
	return finishMetrics(core.MP, g, sp, plans, 2+w.AuxFields, checksum)
}

func mpCycle(r *mp.Rank, mach *machine.Machine, w Workload, pl, prev *CyclePlan,
	uOldArr []*numa.Array[float64], auxOldArr [][]*numa.Array[float64],
	u *numa.Array[float64], aux []*numa.Array[float64], acc *numa.Array[float64]) float64 {

	me := r.ID()
	p := r.P
	dec := pl.Dec

	// --- mark: local error-indicator evaluation.
	chargeMark(p, mach, pl)

	// --- refine: each rank applies its share of the structural changes,
	// then the change records are allgathered so every rank can update the
	// halo portions of its mesh structure — the messaging is the MP price of
	// making adaptation globally visible.
	ph := p.SetPhase(sim.PhaseRefine)
	mp.Allgatherv(r, refineRecords(pl, r.Size()))
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine, solver.ApplyOps*((pl.Changes+r.Size()-1)/r.Size()))

	// --- partition: replicated RCB (identical cost in every model).
	chargePartition(p, mach, pl)

	// --- remap: migrate old field values to new owners, then interpolate
	// the vertices created by this cycle's refinement.
	ph = p.SetPhase(sim.PhaseRemap)
	nf := 1 + w.AuxFields // values migrated per vertex
	fields := make([]*numa.Array[float64], 0, nf)
	fields = append(append(fields, u), aux...)
	var scratch []float64
	buf := func(n int) []float64 {
		if cap(scratch) < n {
			scratch = make([]float64, n)
		}
		return scratch[:n]
	}
	if prev == nil {
		lst := dec.OwnedVerts[me]
		vals := buf(nf * len(lst))
		for i, v := range lst {
			vals[nf*i] = w.initialField(pl.M.VX[v], pl.M.VY[v])
			for k := range aux {
				vals[nf*i+1+k] = auxInit(k, pl.M.VX[v], pl.M.VY[v])
			}
		}
		numa.ScatterFields(p, fields, lst, vals)
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(lst))
	} else {
		oldFields := make([]*numa.Array[float64], 0, nf)
		oldFields = append(append(oldFields, uOldArr[me]), auxOldArr[me]...)
		numa.CopyFields(p, fields, oldFields, pl.LocalKeep[me])
		for dst := 0; dst < r.Size(); dst++ {
			lst := pl.MoveSend[me][dst]
			if len(lst) == 0 {
				continue
			}
			vals := buf(nf * len(lst))
			numa.GatherFields(p, oldFields, lst, vals)
			mp.Send(r, dst, tagMig, vals)
		}
		for src := 0; src < r.Size(); src++ {
			lst := pl.MoveSend[src][me]
			if len(lst) == 0 {
				continue
			}
			numa.ScatterFields(p, fields, lst, mp.Recv[float64](r, src, tagMig))
		}
		cu := u.Cursor(p)
		read := func(x int32) float64 { return cu.Load(int(x)) }
		for _, v := range pl.InterpOwned[me] {
			cu.Store(int(v), pl.InterpValue(v, read))
		}
		cu.Flush()
		for _, ax := range aux {
			cax := ax.Cursor(p)
			readAux := func(x int32) float64 { return cax.Load(int(x)) }
			for _, v := range pl.InterpOwned[me] {
				cax.Store(int(v), pl.InterpValue(v, readAux))
			}
			cax.Flush()
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[me]))
	}
	p.SetPhase(ph)

	// --- solve: edge-based sweeps with owner-accumulation exchanges.
	p.SetPhase(sim.PhaseCompute)
	mpGhostExchange(r, pl, u, &scratch)
	opNS := mach.Cfg.OpNS
	ea, eb := pl.EdgeA[me], pl.EdgeB[me]
	for it := 0; it < w.SolveIters; it++ {
		acc.FillIdx(p, pl.Clear[me], 0)
		cu := u.Cursor(p)
		ca := acc.Cursor(p)
		for j := range ea {
			a, b := int(ea[j]), int(eb[j])
			f := solver.Flux(cu.Load(a), cu.Load(b))
			ca.Store(a, ca.Load(a)+f)
			ca.Store(b, ca.Load(b)-f)
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(ea)*solver.FluxOps) * opNS)
		// Partial sums to vertex owners.
		phc := p.SetPhase(sim.PhaseComm)
		for q := 0; q < r.Size(); q++ {
			lst := dec.Border[me][q]
			if len(lst) == 0 {
				continue
			}
			vals := buf(len(lst))
			acc.GatherIdx(p, lst, vals)
			mp.Send(r, q, tagPartial, vals)
		}
		for q := 0; q < r.Size(); q++ {
			lst := dec.Border[q][me]
			if len(lst) == 0 {
				continue
			}
			numa.AddIdx(p, acc, lst, mp.Recv[float64](r, q, tagPartial))
		}
		p.SetPhase(phc)
		owned := dec.OwnedVerts[me]
		cu = u.Cursor(p)
		ca = acc.Cursor(p)
		for _, v := range owned {
			i := int(v)
			cu.Store(i, solver.Update(cu.Load(i), ca.Load(i), pl.Deg[v]))
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(owned)*solver.UpdateOps) * opNS)
		mpGhostExchange(r, pl, u, &scratch)
	}

	// Deterministic digest: per-rank owned sums (solved + auxiliary state)
	// combined in rank order.
	s := 0.0
	cu := u.Cursor(p)
	cax := make([]numa.Cursor[float64], len(aux))
	for k, ax := range aux {
		cax[k] = ax.Cursor(p)
	}
	for _, v := range dec.OwnedVerts[me] {
		s += cu.Load(int(v))
		for k := range cax {
			s += cax[k].Load(int(v))
		}
	}
	cu.Flush()
	for k := range cax {
		cax[k].Flush()
	}
	return mp.Allreduce1(r, s, mp.OpSum)
}

// mpGhostExchange sends each neighbour the updated values of the vertices I
// own that it touches, and refreshes my ghost copies from their owners.
// scratch is the caller's staging buffer (mp.Send copies, so it is free to
// reuse across destinations).
func mpGhostExchange(r *mp.Rank, pl *CyclePlan, u *numa.Array[float64], scratch *[]float64) {
	me := r.ID()
	p := r.P
	dec := pl.Dec
	defer p.SetPhase(p.SetPhase(sim.PhaseComm))
	for q := 0; q < r.Size(); q++ {
		lst := dec.Border[q][me] // q touches these; I own them
		if len(lst) == 0 {
			continue
		}
		if cap(*scratch) < len(lst) {
			*scratch = make([]float64, len(lst))
		}
		vals := (*scratch)[:len(lst)]
		u.GatherIdx(p, lst, vals)
		mp.Send(r, q, tagGhost, vals)
	}
	for q := 0; q < r.Size(); q++ {
		lst := dec.Border[me][q] // I touch these; q owns them
		if len(lst) == 0 {
			continue
		}
		u.ScatterIdx(p, lst, mp.Recv[float64](r, q, tagGhost))
	}
}
