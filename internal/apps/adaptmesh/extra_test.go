package adaptmesh

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func TestPageMigrationPreservesResults(t *testing.T) {
	// Page migration is a placement policy: it may change time, never data.
	w := Small()
	wm := w
	wm.SasPageMigrate = true
	plans := BuildPlans(w, 8)
	a := RunWithPlans(core.SAS, mach(8), w, plans)
	b := RunWithPlans(core.SAS, mach(8), wm, plans)
	if a.Checksum != b.Checksum {
		t.Fatalf("page migration changed results: %v vs %v", a.Checksum, b.Checksum)
	}
	if b.PhaseMax[sim.PhaseRemap] <= a.PhaseMax[sim.PhaseRemap] {
		t.Fatalf("page migration charged no remap time: %v vs %v",
			b.PhaseMax[sim.PhaseRemap], a.PhaseMax[sim.PhaseRemap])
	}
}

func TestNoRemapPreservesResults(t *testing.T) {
	// Disabling PLUM remapping changes data placement and cost, not physics
	// (the partition itself is the same; only part->proc labels differ), so
	// the final digest must be identical.
	w := Small()
	woff := w
	woff.NoRemap = true
	a := Run(core.MP, mach(4), w).Checksum
	b := Run(core.MP, mach(4), woff).Checksum
	// Different ownership => different accumulation grouping => tolerance.
	if rel := math.Abs(a-b) / math.Abs(a); rel > 1e-9 {
		t.Fatalf("remap toggle drifted results: %v vs %v", a, b)
	}
}

func TestOnT3EShmemLeads(t *testing.T) {
	// On a T3E-like machine the one-sided model should take the lead over
	// CC-SAS (emulated, expensive) and MP (heavier software).
	w := Default()
	m := machine.MustNew(machine.T3E(32))
	plans := BuildPlans(w, 32)
	var tot [3]sim.Time
	for i, model := range core.AllModels() {
		tot[i] = RunWithPlans(model, m, w, plans).Total
	}
	if !(tot[1] < tot[0] && tot[1] < tot[2]) {
		t.Fatalf("T3E winner not SHMEM: MP=%v SHMEM=%v SAS=%v", tot[0], tot[1], tot[2])
	}
}

func TestWorkloadGrowsWithFrontCollision(t *testing.T) {
	// Sanity link between the mesh substrate's second workload and the
	// plan builder: more refined area, more triangles, still valid plans.
	w := Small()
	plans := BuildPlans(w, 4)
	for _, pl := range plans {
		if pl.Imbalance > 1.6 {
			t.Fatalf("partitioner left imbalance %v", pl.Imbalance)
		}
	}
}

func TestCheckpointableMetrics(t *testing.T) {
	w := Small()
	met := Run(core.SHMEM, mach(4), w)
	// Every documented field populated.
	if met.Model != core.SHMEM || met.Procs != 4 || met.Total == 0 {
		t.Fatal("metrics incomplete")
	}
	var phaseSum sim.Time
	for _, ph := range met.PhaseAvg {
		phaseSum += ph
	}
	if phaseSum == 0 {
		t.Fatal("phase averages empty")
	}
	if met.Counters.BytesSent == 0 {
		t.Fatal("SHMEM run moved no bytes?")
	}
}

func TestScalingBeyondNodeCount(t *testing.T) {
	// 3 procs (1.5 nodes) and 65+ procs are odd shapes the machinery must
	// survive.
	w := Small()
	for _, procs := range []int{3, 5, 9} {
		plans := BuildPlans(w, procs)
		var sums [3]float64
		for i, model := range core.AllModels() {
			sums[i] = RunWithPlans(model, mach(procs), w, plans).Checksum
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("P=%d: model divergence", procs)
		}
	}
}
