package adaptmesh

// The cache-coherent shared-address-space implementation of the adaptive-
// mesh application. The field lives in one shared array placed first-touch;
// there is no migration code and no ghost code at all — processors read
// remote values through the memory system and pay coherence misses instead.
// Partial sums still flow through per-pair regions of a shared contribution
// buffer (the standard CC-SAS idiom for deterministic owner accumulation).

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

// sasLayout assigns each ordered (writer, owner) pair a contiguous region of
// the shared contribution buffer, pages homed on the writer.
type sasLayout struct {
	off   [][]int // off[p][q]: start of region p→q
	total int
}

func buildSasLayout(pl *CyclePlan, nprocs int) *sasLayout {
	lay := &sasLayout{off: make([][]int, nprocs)}
	for p := 0; p < nprocs; p++ {
		lay.off[p] = make([]int, nprocs)
		for q := 0; q < nprocs; q++ {
			lay.off[p][q] = lay.total
			lay.total += len(pl.Dec.Border[p][q])
		}
	}
	if lay.total == 0 {
		lay.total = 1
	}
	return lay
}

// writerOf returns the writer of contribution-buffer element e under lay.
func (lay *sasLayout) writerOf(e, nprocs int) int {
	for p := nprocs - 1; p >= 0; p-- {
		if e >= lay.off[p][0] {
			return p
		}
	}
	return 0
}

func runSAS(mach *machine.Machine, w Workload, plans []*CyclePlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	sp := numa.NewSpace(mach)
	world := sas.NewWorld(mach, sp)

	// One shared field for the whole run, sized for the final vertex count,
	// pages placed where each vertex's first owner lives (first-touch).
	maxNV := MaxNV(plans)
	u := sas.NewArray[float64](world, maxNV)
	first := FirstOwner(plans)
	u.PlaceByElem(func(e int) int {
		if e < len(first) && first[e] >= 0 {
			return int(first[e])
		}
		return 0
	})
	// Auxiliary state: shared like the solved field, placed first-touch.
	aux := make([]*numa.Array[float64], w.AuxFields)
	for k := range aux {
		aux[k] = sas.NewArray[float64](world, maxNV)
		aux[k].PlaceByElem(func(e int) int {
			if e < len(first) && first[e] >= 0 {
				return int(first[e])
			}
			return 0
		})
	}
	// Private accumulators, allocated once.
	acc := make([]*numa.Array[float64], nprocs)
	for q := 0; q < nprocs; q++ {
		acc[q] = numa.NewPrivate[float64](sp, q, maxNV)
	}

	var checksum float64
	for ci, pl := range plans {
		lay := buildSasLayout(pl, nprocs)
		contrib := sas.NewArray[float64](world, lay.total)
		contrib.PlaceByElem(func(e int) int { return lay.writerOf(e, nprocs) })
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		var migPenalty sim.Time
		if w.SasPageMigrate && ci > 0 {
			// OS page migration: re-home the shared field to the new owners
			// and charge the per-page move cost (spread over the procs, as
			// the kernel migrates pages in parallel).
			owner := func(e int) int {
				if o := pl.Dec.VertOwner[min(e, pl.NV-1)]; o >= 0 {
					return int(o)
				}
				if e < len(first) && first[e] >= 0 {
					return int(first[e])
				}
				return 0
			}
			moved := u.RehomeByElem(owner)
			for _, ax := range aux {
				moved += ax.RehomeByElem(owner)
			}
			migPenalty = sim.Time(moved) * mach.Cfg.PageMigrateNS / sim.Time(nprocs)
		}
		g.Run(func(p *sim.Proc) {
			if migPenalty > 0 {
				prevPh := p.SetPhase(sim.PhaseRemap)
				p.Advance(migPenalty)
				p.SetPhase(prevPh)
			}
			cs := sasCycle(world.Ctx(p), mach, w, pl, prev, lay, u, aux, contrib, acc[p.ID()])
			if p.ID() == 0 {
				checksum = cs
			}
		})
	}
	return finishMetrics(core.SAS, g, sp, plans, 2+w.AuxFields, checksum)
}

func sasCycle(c *sas.Ctx, mach *machine.Machine, w Workload, pl, prev *CyclePlan,
	lay *sasLayout, u *numa.Array[float64], aux []*numa.Array[float64],
	contrib, acc *numa.Array[float64]) float64 {

	me := c.ID()
	p := c.P
	dec := pl.Dec

	// --- mark
	chargeMark(p, mach, pl)

	// --- refine: processors append their share of new elements directly
	// into the shared mesh arrays; an exclusive scan hands out index ranges
	// and a barrier publishes the structure. No replicated apply, no
	// gather — the structural work is 1/P of the MP/SHMEM versions'.
	myChanges := (pl.Changes + c.Size() - 1) / c.Size()
	ph := p.SetPhase(sim.PhaseRefine)
	sas.Exscan(c, myChanges)
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine, solver.ApplyOps*myChanges)
	c.Barrier()

	// --- partition
	chargePartition(p, mach, pl)

	// --- remap: nothing moves. New vertices are interpolated in place by
	// their owners, reading parent values straight out of the shared field.
	nf := 1 + w.AuxFields
	ph = p.SetPhase(sim.PhaseRemap)
	if prev == nil {
		for _, v := range dec.OwnedVerts[me] {
			u.Store(p, int(v), w.initialField(pl.M.VX[v], pl.M.VY[v]))
			for k, ax := range aux {
				ax.Store(p, int(v), auxInit(k, pl.M.VX[v], pl.M.VY[v]))
			}
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(dec.OwnedVerts[me]))
	} else {
		// Nothing migrates: old values (solved and auxiliary) are already in
		// the shared arrays; only the new vertices need interpolation.
		read := func(x int32) float64 { return u.Load(p, int(x)) }
		for _, v := range pl.InterpOwned[me] {
			u.Store(p, int(v), pl.InterpValue(v, read))
		}
		for _, ax := range aux {
			readAux := func(x int32) float64 { return ax.Load(p, int(x)) }
			for _, v := range pl.InterpOwned[me] {
				ax.Store(p, int(v), pl.InterpValue(v, readAux))
			}
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[me]))
	}
	p.SetPhase(ph)
	c.Barrier()

	// --- solve
	p.SetPhase(sim.PhaseCompute)
	opNS := mach.Cfg.OpNS
	for it := 0; it < w.SolveIters; it++ {
		for _, v := range pl.Clear[me] {
			acc.Store(p, int(v), 0)
		}
		for _, e := range dec.OwnedEdges[me] {
			a, b := pl.M.Edges[e][0], pl.M.Edges[e][1]
			f := solver.Flux(u.Load(p, int(a)), u.Load(p, int(b)))
			acc.Store(p, int(a), acc.Load(p, int(a))+f)
			acc.Store(p, int(b), acc.Load(p, int(b))-f)
			p.Advance(sim.Time(solver.FluxOps) * opNS)
		}
		// Publish partial sums for foreign-owned vertices.
		for q := 0; q < c.Size(); q++ {
			lst := dec.Border[me][q]
			off := lay.off[me][q]
			for i, v := range lst {
				contrib.Store(p, off+i, acc.Load(p, int(v)))
			}
		}
		c.Barrier()
		for q := 0; q < c.Size(); q++ {
			lst := dec.Border[q][me]
			off := lay.off[q][me]
			for i, v := range lst {
				acc.Store(p, int(v), acc.Load(p, int(v))+contrib.Load(p, off+i))
			}
		}
		for _, v := range dec.OwnedVerts[me] {
			u.Store(p, int(v), solver.Update(u.Load(p, int(v)), acc.Load(p, int(v)), pl.Deg[v]))
			p.Advance(sim.Time(solver.UpdateOps) * opNS)
		}
		c.Barrier()
	}

	s := 0.0
	for _, v := range dec.OwnedVerts[me] {
		s += u.Load(p, int(v))
		for _, ax := range aux {
			s += ax.Load(p, int(v))
		}
	}
	return sas.Allreduce1(c, s, sas.OpSum)
}
