package adaptmesh

// The cache-coherent shared-address-space implementation of the adaptive-
// mesh application. The field lives in one shared array placed first-touch;
// there is no migration code and no ghost code at all — processors read
// remote values through the memory system and pay coherence misses instead.
// Partial sums still flow through per-pair regions of a shared contribution
// buffer (the standard CC-SAS idiom for deterministic owner accumulation).

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

// sasLayout assigns each ordered (writer, owner) pair a contiguous region of
// the shared contribution buffer, pages homed on the writer.
type sasLayout struct {
	off   [][]int // off[p][q]: start of region p→q
	total int
}

func buildSasLayout(pl *CyclePlan, nprocs int) *sasLayout {
	lay := &sasLayout{off: make([][]int, nprocs)}
	for p := 0; p < nprocs; p++ {
		lay.off[p] = make([]int, nprocs)
		for q := 0; q < nprocs; q++ {
			lay.off[p][q] = lay.total
			lay.total += len(pl.Dec.Border[p][q])
		}
	}
	if lay.total == 0 {
		lay.total = 1
	}
	return lay
}

// writerOf returns the writer of contribution-buffer element e under lay.
func (lay *sasLayout) writerOf(e, nprocs int) int {
	for p := nprocs - 1; p >= 0; p-- {
		if e >= lay.off[p][0] {
			return p
		}
	}
	return 0
}

func runSAS(mach *machine.Machine, w Workload, plans []*CyclePlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	sp := numa.NewSpace(mach)
	world := sas.NewWorld(mach, sp)

	// One shared field for the whole run, sized for the final vertex count,
	// pages placed where each vertex's first owner lives (first-touch).
	maxNV := MaxNV(plans)
	u := sas.NewArray[float64](world, maxNV)
	first := FirstOwner(plans)
	u.PlaceByElem(func(e int) int {
		if e < len(first) && first[e] >= 0 {
			return int(first[e])
		}
		return 0
	})
	// Auxiliary state: shared like the solved field, placed first-touch.
	aux := make([]*numa.Array[float64], w.AuxFields)
	for k := range aux {
		aux[k] = sas.NewArray[float64](world, maxNV)
		aux[k].PlaceByElem(func(e int) int {
			if e < len(first) && first[e] >= 0 {
				return int(first[e])
			}
			return 0
		})
	}
	// Private accumulators, allocated once.
	acc := make([]*numa.Array[float64], nprocs)
	for q := 0; q < nprocs; q++ {
		acc[q] = numa.NewPrivate[float64](sp, q, maxNV)
	}

	var checksum float64
	for ci, pl := range plans {
		lay := buildSasLayout(pl, nprocs)
		contrib := sas.NewArray[float64](world, lay.total)
		contrib.PlaceByElem(func(e int) int { return lay.writerOf(e, nprocs) })
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		var migPenalty sim.Time
		if w.SasPageMigrate && ci > 0 {
			// OS page migration: re-home the shared field to the new owners
			// and charge the per-page move cost (spread over the procs, as
			// the kernel migrates pages in parallel).
			owner := func(e int) int {
				if o := pl.Dec.VertOwner[min(e, pl.NV-1)]; o >= 0 {
					return int(o)
				}
				if e < len(first) && first[e] >= 0 {
					return int(first[e])
				}
				return 0
			}
			moved := u.RehomeByElem(owner)
			for _, ax := range aux {
				moved += ax.RehomeByElem(owner)
			}
			migPenalty = sim.Time(moved) * mach.Cfg.PageMigrateNS / sim.Time(nprocs)
		}
		g.Run(func(p *sim.Proc) {
			if migPenalty > 0 {
				prevPh := p.SetPhase(sim.PhaseRemap)
				p.Advance(migPenalty)
				p.SetPhase(prevPh)
			}
			cs := sasCycle(world.Ctx(p), mach, w, pl, prev, lay, u, aux, contrib, acc[p.ID()])
			if p.ID() == 0 {
				checksum = cs
			}
		})
		// The contribution buffer dies with the cycle; its write-sets were
		// merged at the cycle's final barrier, so its host backing can be
		// recycled into the next cycle's (larger) buffer.
		numa.Release(contrib)
	}
	return finishMetrics(core.SAS, g, sp, plans, 2+w.AuxFields, checksum)
}

func sasCycle(c *sas.Ctx, mach *machine.Machine, w Workload, pl, prev *CyclePlan,
	lay *sasLayout, u *numa.Array[float64], aux []*numa.Array[float64],
	contrib, acc *numa.Array[float64]) float64 {

	me := c.ID()
	p := c.P
	dec := pl.Dec

	// --- mark
	chargeMark(p, mach, pl)

	// --- refine: processors append their share of new elements directly
	// into the shared mesh arrays; an exclusive scan hands out index ranges
	// and a barrier publishes the structure. No replicated apply, no
	// gather — the structural work is 1/P of the MP/SHMEM versions'.
	myChanges := (pl.Changes + c.Size() - 1) / c.Size()
	ph := p.SetPhase(sim.PhaseRefine)
	sas.Exscan(c, myChanges)
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine, solver.ApplyOps*myChanges)
	c.Barrier()

	// --- partition
	chargePartition(p, mach, pl)

	// --- remap: nothing moves. New vertices are interpolated in place by
	// their owners, reading parent values straight out of the shared field.
	nf := 1 + w.AuxFields
	ph = p.SetPhase(sim.PhaseRemap)
	fields := make([]*numa.Array[float64], 0, nf)
	fields = append(append(fields, u), aux...)
	if prev == nil {
		lst := dec.OwnedVerts[me]
		vals := make([]float64, nf*len(lst))
		for i, v := range lst {
			vals[nf*i] = w.initialField(pl.M.VX[v], pl.M.VY[v])
			for k := range aux {
				vals[nf*i+1+k] = auxInit(k, pl.M.VX[v], pl.M.VY[v])
			}
		}
		numa.ScatterFields(p, fields, lst, vals)
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(lst))
	} else {
		// Nothing migrates: old values (solved and auxiliary) are already in
		// the shared arrays; only the new vertices need interpolation.
		cu := u.Cursor(p)
		read := func(x int32) float64 { return cu.Load(int(x)) }
		for _, v := range pl.InterpOwned[me] {
			cu.Store(int(v), pl.InterpValue(v, read))
		}
		cu.Flush()
		for _, ax := range aux {
			cax := ax.Cursor(p)
			readAux := func(x int32) float64 { return cax.Load(int(x)) }
			for _, v := range pl.InterpOwned[me] {
				cax.Store(int(v), pl.InterpValue(v, readAux))
			}
			cax.Flush()
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[me]))
	}
	p.SetPhase(ph)
	c.Barrier()

	// --- solve
	p.SetPhase(sim.PhaseCompute)
	opNS := mach.Cfg.OpNS
	ea, eb := pl.EdgeA[me], pl.EdgeB[me]
	for it := 0; it < w.SolveIters; it++ {
		acc.FillIdx(p, pl.Clear[me], 0)
		cu := u.Cursor(p)
		ca := acc.Cursor(p)
		for j := range ea {
			a, b := int(ea[j]), int(eb[j])
			f := solver.Flux(cu.Load(a), cu.Load(b))
			ca.Store(a, ca.Load(a)+f)
			ca.Store(b, ca.Load(b)-f)
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(ea)*solver.FluxOps) * opNS)
		// Publish partial sums for foreign-owned vertices.
		for q := 0; q < c.Size(); q++ {
			numa.PackIdx(p, contrib, lay.off[me][q], acc, dec.Border[me][q])
		}
		c.Barrier()
		for q := 0; q < c.Size(); q++ {
			numa.AddGather(p, acc, dec.Border[q][me], contrib, lay.off[q][me])
		}
		owned := dec.OwnedVerts[me]
		cu = u.Cursor(p)
		ca = acc.Cursor(p)
		for _, v := range owned {
			i := int(v)
			cu.Store(i, solver.Update(cu.Load(i), ca.Load(i), pl.Deg[v]))
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(owned)*solver.UpdateOps) * opNS)
		c.Barrier()
	}

	s := 0.0
	cu := u.Cursor(p)
	cax := make([]numa.Cursor[float64], len(aux))
	for k, ax := range aux {
		cax[k] = ax.Cursor(p)
	}
	for _, v := range dec.OwnedVerts[me] {
		s += cu.Load(int(v))
		for k := range cax {
			s += cax[k].Load(int(v))
		}
	}
	cu.Flush()
	for k := range cax {
		cax[k].Flush()
	}
	return sas.Allreduce1(c, s, sas.OpSum)
}
