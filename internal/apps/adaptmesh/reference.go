package adaptmesh

import (
	"o2k/internal/solver"
)

// ReferenceChecksum executes the whole workload sequentially (no machine
// model, no virtual time) and returns the final field digest. A parallel run
// at P=1 must reproduce it bit-for-bit; at P>1 the parallel runs agree with
// it within floating-point reassociation tolerance and with each other
// exactly.
func ReferenceChecksum(w Workload) float64 {
	plans := BuildPlans(w, 1)
	return ReferenceChecksumWithPlans(w, plans)
}

// ReferenceChecksumWithPlans is ReferenceChecksum over prebuilt single-
// processor plans.
func ReferenceChecksumWithPlans(w Workload, plans []*CyclePlan) float64 {
	maxNV := MaxNV(plans)
	u := make([]float64, maxNV)
	aux := make([][]float64, w.AuxFields)
	for k := range aux {
		aux[k] = make([]float64, maxNV)
	}
	for ci, pl := range plans {
		if ci == 0 {
			for _, v := range pl.Dec.OwnedVerts[0] {
				u[v] = w.initialField(pl.M.VX[v], pl.M.VY[v])
				for k := range aux {
					aux[k][v] = auxInit(k, pl.M.VX[v], pl.M.VY[v])
				}
			}
		} else {
			read := func(x int32) float64 { return u[x] }
			for _, v := range pl.InterpOwned[0] {
				u[v] = pl.InterpValue(v, read)
			}
			for k := range aux {
				ak := aux[k]
				readAux := func(x int32) float64 { return ak[x] }
				for _, v := range pl.InterpOwned[0] {
					ak[v] = pl.InterpValue(v, readAux)
				}
			}
		}
		solver.Reference(pl.M, u[:pl.NV], w.SolveIters)
	}
	// Fold in the same per-vertex order the parallel codes use (u then each
	// auxiliary field at a vertex, vertices ascending) so P=1 runs match
	// bit-for-bit.
	last := plans[len(plans)-1]
	s := 0.0
	for v := 0; v < last.NV; v++ {
		if last.M.VertUsed(int32(v)) {
			s += u[v]
			for k := range aux {
				s += aux[k][v]
			}
		}
	}
	return s
}
