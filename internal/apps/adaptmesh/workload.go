// Package adaptmesh is the paper's headline application — a solver over a
// dynamically adapting unstructured mesh — implemented three times, once per
// programming model (MP, SHMEM, CC-SAS), over the shared substrates.
//
// Outer structure (identical in all models):
//
//	for each cycle:
//	    mark    — evaluate the error indicator on owned triangles
//	    refine  — apply the structural mesh adaptation
//	    partition — RCB over the new triangles, PLUM-style remap
//	    remap   — migrate field data to new owners; interpolate new vertices
//	    solve   — SolveIters edge-based relaxation sweeps
//
// What differs per model is every data-movement step: ghost exchanges and
// partial-sum exchanges in the solver, how the adapted structure is made
// globally visible, and how field data migrates — exactly the axes the
// paper compares. All three implementations follow the same deterministic
// accumulation discipline (see partition.Decomp), so at equal processor
// counts they produce bit-identical results; tests enforce this.
package adaptmesh

import "o2k/internal/mesh"

// Workload parameterizes one experiment instance.
type Workload struct {
	GridN      int              // base mesh is GridN×GridN cells (2·GridN² triangles)
	MaxLevel   int              // refinement depth
	Cycles     int              // adaptation cycles
	SolveIters int              // relaxation sweeps per cycle
	Front      mesh.MovingFront // the moving feature driving adaptation

	// Collision, when set, replaces Front with a two-front colliding
	// workload — the stress variant whose refined regions merge mid-run.
	Collision  *mesh.CollidingFronts
	NoRemap    bool // disable PLUM remapping (load-balance ablation)
	StaticMesh bool // freeze the mesh after cycle 0 (adaptivity ablation)

	// AuxFields is the number of passive per-vertex state fields carried
	// alongside the solved field (coordinates of the physical state a real
	// solver drags through every migration and interpolation). They do not
	// feed back into the relaxation, but they triple-or-more the remap
	// payload — the realistic weight of the data-migration phase.
	AuxFields int

	// SasPageMigrate enables OS page migration for the CC-SAS shared field:
	// after each repartition, pages move to their new owners (at the
	// machine's PageMigrateNS cost) instead of staying where first touch
	// left them. This is the locality-vs-migration-cost trade-off the
	// CC-SAS model exposes to the operating system (ablation experiment).
	SasPageMigrate bool
}

// Default returns the standard workload used by the scaling experiments:
// large enough that a 64-processor run has real work per processor, small
// enough to simulate quickly.
func Default() Workload {
	return Workload{
		GridN:      24,
		MaxLevel:   3,
		Cycles:     4,
		SolveIters: 8,
		AuxFields:  2,
		Front:      mesh.DefaultFront(3),
	}
}

// Small returns a reduced workload for unit tests.
func Small() Workload {
	return Workload{
		GridN:      8,
		MaxLevel:   2,
		Cycles:     3,
		SolveIters: 4,
		AuxFields:  2,
		Front:      mesh.DefaultFront(2),
	}
}

// indicatorAt returns the refinement indicator for the given cycle.
func (w Workload) indicatorAt(step int) mesh.Indicator {
	if w.Collision != nil {
		return w.Collision.At(step)
	}
	return w.Front.At(step)
}

// initialField returns the cycle-0 field value at a vertex.
func (w Workload) initialField(x, y float64) float64 {
	if w.Collision != nil {
		return w.Collision.InitialField(x, y)
	}
	return w.Front.InitialField(x, y)
}

// auxInit is the cycle-0 value of auxiliary field k at (x, y). It is linear
// in the coordinates, so midpoint interpolation reproduces it exactly — an
// invariant the tests exploit: after any number of adaptations and
// migrations, aux fields must still equal auxInit at every vertex.
func auxInit(k int, x, y float64) float64 {
	return float64(k+1)*x + float64(2*k+1)*y
}
