package adaptmesh

// The hybrid (MP+SAS) implementation of the adaptive-mesh application — the
// extension model beyond the paper's three: one MP process per node board,
// with the node's processors cooperating through shared memory. The
// decomposition is built at *node* granularity, so inter-node messages are
// fewer and larger than pure MP's, and intra-node work splits between the
// node's processors with cheap local barriers. The cost is node-level
// serialization: only the node leader communicates, so partners idle during
// exchange phases — the classic hybrid trade-off.
//
// Numerics: the node's two processors accumulate edge partial sums in
// separate private accumulators that the leader combines in lane order, so
// results are deterministic run-to-run but associate differently from the
// pure models' (validated against the sequential reference within
// floating-point tolerance rather than bitwise).

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/numa"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

// RunHybrid executes the workload under the hybrid MP+SAS model on mach
// (plans are built at node granularity).
func RunHybrid(mach *machine.Machine, w Workload) core.Metrics {
	return RunHybridWithPlans(mach, w, BuildPlans(w, mach.Nodes()))
}

// RunHybridWithPlans is RunHybrid with precomputed node-granularity plans.
func RunHybridWithPlans(mach *machine.Machine, w Workload, plans []*CyclePlan) core.Metrics {
	met, _ := runHybrid(mach, w, plans, false)
	return met
}

// TraceHybridWithPlans executes the hybrid model like RunHybridWithPlans but
// with phase-timeline tracing enabled, returning the processor group for
// sim.RenderTimeline.
func TraceHybridWithPlans(mach *machine.Machine, w Workload, plans []*CyclePlan) *sim.Group {
	_, g := runHybrid(mach, w, plans, true)
	return g
}

func runHybrid(mach *machine.Machine, w Workload, plans []*CyclePlan, trace bool) (core.Metrics, *sim.Group) {
	nprocs := mach.Procs()
	nnodes := mach.Nodes()
	if plans[0].Dec.P != nnodes {
		panic("adaptmesh: hybrid plans must be built for mach.Nodes() parts")
	}
	g := sim.NewGroup(nprocs)
	if trace {
		g.EnableTrace()
	}
	sp := numa.NewSpace(mach)
	// The MP layer spans node leaders: give it a machine whose "processors"
	// are the nodes themselves, preserving the inter-node hop geometry.
	mpCfg := mach.Cfg
	mpCfg.Procs = nnodes
	mpCfg.ProcsPerNode = 1
	world := mp.NewWorld(machine.MustNew(mpCfg))

	// Intra-node barriers (cheap: same board).
	nodeOf := func(pid int) int { return mach.Node(pid) }
	nodeSize := make([]int, nnodes)
	for pid := 0; pid < nprocs; pid++ {
		nodeSize[nodeOf(pid)]++
	}
	nodeBar := make([]*sim.Barrier, nnodes)
	for n := range nodeBar {
		nodeBar[n] = sim.NewBarrier(nodeSize[n], func(int) sim.Time {
			return mach.Cfg.SasBarrierBase
		})
	}

	var uOld []*numa.Array[float64]
	var auxOld [][]*numa.Array[float64]
	var checksum float64
	for ci, pl := range plans {
		uNode := make([]*numa.Array[float64], nnodes)
		auxNode := make([][]*numa.Array[float64], nnodes)
		accLane := make([]*numa.Array[float64], nprocs)
		for n := 0; n < nnodes; n++ {
			uNode[n] = numa.NewPrivate[float64](sp, n*mach.Cfg.ProcsPerNode, pl.NV)
			auxNode[n] = make([]*numa.Array[float64], w.AuxFields)
			for k := range auxNode[n] {
				auxNode[n][k] = numa.NewPrivate[float64](sp, n*mach.Cfg.ProcsPerNode, pl.NV)
			}
		}
		for q := 0; q < nprocs; q++ {
			accLane[q] = numa.NewPrivate[float64](sp, q, pl.NV)
		}
		var prev *CyclePlan
		if ci > 0 {
			prev = plans[ci-1]
		}
		g.Run(func(p *sim.Proc) {
			node := nodeOf(p.ID())
			cs := hybridCycle(p, mach, world, w, pl, prev, node, p.ID()%mach.Cfg.ProcsPerNode,
				nodeSize[node], nodeBar[node], uOld, auxOld, uNode, auxNode, accLane)
			if p.ID() == 0 {
				checksum = cs
			}
		})
		for q := 0; q < nprocs; q++ {
			numa.Release(accLane[q])
		}
		if uOld != nil {
			for n := 0; n < nnodes; n++ {
				numa.Release(uOld[n])
				for _, ax := range auxOld[n] {
					numa.Release(ax)
				}
			}
		}
		uOld = uNode
		auxOld = auxNode
	}
	met := finishMetrics(core.Hybrid, g, sp, plans, 2+w.AuxFields, checksum)
	// Hybrid data memory: MP-style replication, but at node granularity.
	mpB, _, _ := maxDataMemory(plans, 2+w.AuxFields)
	met.DataBytes = mpB
	return met, g
}

// maxDataMemory returns the peak per-model analytic memory over the plans.
func maxDataMemory(plans []*CyclePlan, nfields int) (mpB, shB, saB int) {
	for _, pl := range plans {
		a, b, c := pl.Dec.DataMemory(nfields)
		if a > mpB {
			mpB, shB, saB = a, b, c
		}
	}
	return
}

// lane returns this lane's slice of a node-level work list.
func laneSlice(list []int32, lane, nodeP int) []int32 {
	lo := lane * len(list) / nodeP
	hi := (lane + 1) * len(list) / nodeP
	return list[lo:hi]
}

func hybridCycle(p *sim.Proc, mach *machine.Machine, world *mp.World, w Workload,
	pl, prev *CyclePlan, node, lane, nodeP int, bar *sim.Barrier,
	uOldArr []*numa.Array[float64], auxOldArr [][]*numa.Array[float64],
	uNodeArr []*numa.Array[float64], auxNodeArr [][]*numa.Array[float64],
	accLane []*numa.Array[float64]) float64 {

	dec := pl.Dec
	u := uNodeArr[node]
	aux := auxNodeArr[node]
	nf := 1 + w.AuxFields
	acc := accLane[p.ID()]
	leader := lane == 0
	var r *mp.Rank
	if leader {
		r = world.RankAs(p, node)
	}
	opNS := mach.Cfg.OpNS

	// --- mark: the node's triangles split across its lanes.
	chargeOps(p, mach, sim.PhaseMark, solver.MarkOps*(pl.MarkWork[node]/nodeP+1))

	// --- refine: leader allgathers the change records; every lane applies a
	// share of the node's slice.
	ph := p.SetPhase(sim.PhaseRefine)
	if leader {
		mp.Allgatherv(r, refineRecords(pl, world.Size()))
	}
	p.SetPhase(ph)
	chargeOps(p, mach, sim.PhaseRefine,
		solver.ApplyOps*((pl.Changes+world.Size()*nodeP-1)/(world.Size()*nodeP)))
	bar.Wait(p)

	// --- partition: parallel share across all processors plus the serial
	// floor (same as the pure models).
	nt := pl.M.NumTris()
	ne := pl.M.NumEdges()
	levels := mach.LogStages(dec.P)
	if levels < 1 {
		levels = 1
	}
	chargeOps(p, mach, sim.PhasePartition,
		(solver.PartOps*nt*levels+8*(nt+ne))/(dec.P*nodeP)+2*nt)

	// --- remap: leader migrates between nodes; lanes share interpolation.
	ph = p.SetPhase(sim.PhaseRemap)
	fields := make([]*numa.Array[float64], 0, nf)
	fields = append(append(fields, u), aux...)
	var scratch []float64
	buf := func(n int) []float64 {
		if cap(scratch) < n {
			scratch = make([]float64, n)
		}
		return scratch[:n]
	}
	if prev == nil {
		lst := laneSlice(dec.OwnedVerts[node], lane, nodeP)
		vals := buf(nf * len(lst))
		for i, v := range lst {
			vals[nf*i] = w.initialField(pl.M.VX[v], pl.M.VY[v])
			for k := range aux {
				vals[nf*i+1+k] = auxInit(k, pl.M.VX[v], pl.M.VY[v])
			}
		}
		numa.ScatterFields(p, fields, lst, vals)
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(dec.OwnedVerts[node])/nodeP)
	} else {
		oldFields := make([]*numa.Array[float64], 0, nf)
		oldFields = append(append(oldFields, uOldArr[node]), auxOldArr[node]...)
		numa.CopyFields(p, fields, oldFields, laneSlice(pl.LocalKeep[node], lane, nodeP))
		if leader {
			for dst := 0; dst < world.Size(); dst++ {
				lst := pl.MoveSend[node][dst]
				if len(lst) == 0 {
					continue
				}
				vals := buf(nf * len(lst))
				numa.GatherFields(p, oldFields, lst, vals)
				mp.Send(r, dst, tagMig, vals)
			}
			for src := 0; src < world.Size(); src++ {
				lst := pl.MoveSend[src][node]
				if len(lst) == 0 {
					continue
				}
				numa.ScatterFields(p, fields, lst, mp.Recv[float64](r, src, tagMig))
			}
		}
		bar.Wait(p) // migrated values visible node-wide before interpolation
		cu := u.Cursor(p)
		read := func(x int32) float64 { return cu.Load(int(x)) }
		for _, v := range laneSlice(pl.InterpOwned[node], lane, nodeP) {
			cu.Store(int(v), pl.InterpValue(v, read))
		}
		cu.Flush()
		for _, ax := range aux {
			cax := ax.Cursor(p)
			readAux := func(x int32) float64 { return cax.Load(int(x)) }
			for _, v := range laneSlice(pl.InterpOwned[node], lane, nodeP) {
				cax.Store(int(v), pl.InterpValue(v, readAux))
			}
			cax.Flush()
		}
		chargeOps(p, mach, sim.PhaseRemap, solver.InterpOps*nf*len(pl.InterpOwned[node])/nodeP)
	}
	p.SetPhase(ph)
	bar.Wait(p)

	// --- solve
	p.SetPhase(sim.PhaseCompute)
	if leader {
		mpGhostExchange(r, pl, u, &scratch)
	}
	bar.Wait(p)
	leaderAcc := accLane[p.ID()-lane] // lane 0's accumulator of this node
	ea := laneSlice(pl.EdgeA[node], lane, nodeP)
	eb := laneSlice(pl.EdgeB[node], lane, nodeP)
	for it := 0; it < w.SolveIters; it++ {
		acc.FillIdx(p, pl.Clear[node], 0)
		cu := u.Cursor(p)
		ca := acc.Cursor(p)
		for j := range ea {
			a, b := int(ea[j]), int(eb[j])
			f := solver.Flux(cu.Load(a), cu.Load(b))
			ca.Store(a, ca.Load(a)+f)
			ca.Store(b, ca.Load(b)-f)
		}
		cu.Flush()
		ca.Flush()
		p.Advance(sim.Time(len(ea)*solver.FluxOps) * opNS)
		bar.Wait(p)
		if leader {
			// Combine the lanes' partials into the leader's accumulator, in
			// lane order, then run the node-level exchange.
			for ln := 1; ln < nodeP; ln++ {
				cacc := acc.Cursor(p)
				coth := accLane[p.ID()+ln].Cursor(p)
				for _, v := range pl.Clear[node] {
					i := int(v)
					cacc.Store(i, cacc.Load(i)+coth.Load(i))
				}
				cacc.Flush()
				coth.Flush()
			}
			phc := p.SetPhase(sim.PhaseComm)
			for q := 0; q < world.Size(); q++ {
				lst := dec.Border[node][q]
				if len(lst) == 0 {
					continue
				}
				vals := buf(len(lst))
				acc.GatherIdx(p, lst, vals)
				mp.Send(r, q, tagPartial, vals)
			}
			for q := 0; q < world.Size(); q++ {
				lst := dec.Border[q][node]
				if len(lst) == 0 {
					continue
				}
				numa.AddIdx(p, acc, lst, mp.Recv[float64](r, q, tagPartial))
			}
			p.SetPhase(phc)
		}
		bar.Wait(p)
		owned := laneSlice(dec.OwnedVerts[node], lane, nodeP)
		cu = u.Cursor(p)
		cla := leaderAcc.Cursor(p)
		for _, v := range owned {
			i := int(v)
			cu.Store(i, solver.Update(cu.Load(i), cla.Load(i), pl.Deg[v]))
		}
		cu.Flush()
		cla.Flush()
		p.Advance(sim.Time(len(owned)*solver.UpdateOps) * opNS)
		bar.Wait(p)
		if leader {
			mpGhostExchange(r, pl, u, &scratch)
		}
		bar.Wait(p)
	}

	// Checksum: node sums by the leader, combined across nodes in rank order.
	var cs float64
	if leader {
		s := 0.0
		cu := u.Cursor(p)
		cax := make([]numa.Cursor[float64], len(aux))
		for k, ax := range aux {
			cax[k] = ax.Cursor(p)
		}
		for _, v := range dec.OwnedVerts[node] {
			s += cu.Load(int(v))
			for k := range cax {
				s += cax[k].Load(int(v))
			}
		}
		cu.Flush()
		for k := range cax {
			cax[k].Flush()
		}
		cs = mp.Allreduce1(r, s, mp.OpSum)
	}
	bar.Wait(p)
	return cs
}
