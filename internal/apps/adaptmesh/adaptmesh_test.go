package adaptmesh

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func mach(p int) *machine.Machine { return machine.MustNew(machine.Default(p)) }

func TestPlansDeterministic(t *testing.T) {
	w := Small()
	a := BuildPlans(w, 4)
	b := BuildPlans(w, 4)
	if len(a) != len(b) {
		t.Fatal("plan count differs")
	}
	for i := range a {
		if a[i].NV != b[i].NV || a[i].M.NumTris() != b[i].M.NumTris() {
			t.Fatalf("cycle %d differs structurally", i)
		}
		for p := 0; p < 4; p++ {
			if len(a[i].Clear[p]) != len(b[i].Clear[p]) {
				t.Fatalf("cycle %d clear list differs", i)
			}
		}
	}
}

func TestPlanInvariants(t *testing.T) {
	w := Small()
	plans := BuildPlans(w, 4)
	if len(plans) != w.Cycles {
		t.Fatalf("plan count %d", len(plans))
	}
	for ci, pl := range plans {
		if err := pl.M.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", ci, err)
		}
		// Migration lists ascending, disjoint from LocalKeep duplicates.
		for s := 0; s < 4; s++ {
			for d := 0; d < 4; d++ {
				if s == d && len(pl.MoveSend[s][d]) > 0 {
					t.Fatalf("cycle %d: self-migration", ci)
				}
				for i := 1; i < len(pl.MoveSend[s][d]); i++ {
					if pl.MoveSend[s][d][i-1] >= pl.MoveSend[s][d][i] {
						t.Fatalf("cycle %d: MoveSend[%d][%d] not ascending", ci, s, d)
					}
				}
				// Every migrated vertex was previously owned by src.
				for _, v := range pl.MoveSend[s][d] {
					if pl.prevOwnerOf(v) != int32(s) {
						t.Fatalf("cycle %d: vertex %d not owned by claimed source", ci, v)
					}
				}
			}
		}
		if ci == 0 {
			for p := 0; p < 4; p++ {
				if len(pl.InterpOwned[p]) != 0 {
					t.Fatal("cycle 0 must not interpolate")
				}
			}
		}
		// Every owned new vertex appears in exactly one InterpOwned list.
		if ci > 0 {
			seen := map[int32]bool{}
			for p := 0; p < 4; p++ {
				for _, v := range pl.InterpOwned[p] {
					if seen[v] {
						t.Fatalf("vertex %d interpolated twice", v)
					}
					seen[v] = true
					if pl.prevOwnerOf(v) >= 0 {
						t.Fatalf("vertex %d interpolated but existed", v)
					}
					if pl.Dec.VertOwner[v] != int32(p) {
						t.Fatalf("vertex %d interpolated by non-owner", v)
					}
				}
			}
		}
	}
}

func TestCrossModelChecksumsIdentical(t *testing.T) {
	w := Small()
	for _, procs := range []int{1, 2, 4, 7} {
		m := mach(procs)
		plans := BuildPlans(w, procs)
		var sums [3]float64
		for i, model := range core.AllModels() {
			sums[i] = RunWithPlans(model, m, w, plans).Checksum
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("P=%d: checksums differ: MP=%v SHMEM=%v SAS=%v",
				procs, sums[0], sums[1], sums[2])
		}
		if sums[0] == 0 {
			t.Fatalf("P=%d: zero checksum (field lost)", procs)
		}
	}
}

func TestP1MatchesReferenceExactly(t *testing.T) {
	w := Small()
	plans := BuildPlans(w, 1)
	ref := ReferenceChecksumWithPlans(w, plans)
	for _, model := range core.AllModels() {
		got := RunWithPlans(model, mach(1), w, plans).Checksum
		if got != ref {
			t.Fatalf("%v at P=1: %v != reference %v", model, got, ref)
		}
	}
}

func TestParallelMatchesReferenceApprox(t *testing.T) {
	w := Small()
	ref := ReferenceChecksum(w)
	got := Run(core.SAS, mach(8), w).Checksum
	if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-9 {
		t.Fatalf("P=8 drifted from reference: %v vs %v (rel %v)", got, ref, rel)
	}
}

func TestVirtualTimeDeterministic(t *testing.T) {
	w := Small()
	for _, model := range core.AllModels() {
		m := mach(6)
		plans := BuildPlans(w, 6)
		t1 := RunWithPlans(model, m, w, plans).Total
		t2 := RunWithPlans(model, mach(6), w, plans).Total
		if t1 != t2 {
			t.Fatalf("%v: virtual time nondeterministic: %v vs %v", model, t1, t2)
		}
	}
}

func TestSpeedupWithProcs(t *testing.T) {
	w := Default()
	for _, model := range core.AllModels() {
		t1 := RunWithPlans(model, mach(1), w, BuildPlans(w, 1)).Total
		t16 := RunWithPlans(model, mach(16), w, BuildPlans(w, 16)).Total
		sp := float64(t1) / float64(t16)
		if sp < 2 {
			t.Errorf("%v: speedup at P=16 only %.2f (T1=%v T16=%v)", model, sp, t1, t16)
		}
	}
}

func TestPhaseBreakdownSane(t *testing.T) {
	w := Small()
	met := Run(core.MP, mach(4), w)
	if met.PhaseMax[sim.PhaseCompute] == 0 {
		t.Error("no compute time recorded")
	}
	if met.PhaseMax[sim.PhaseComm] == 0 {
		t.Error("MP run recorded no communication")
	}
	if met.PhaseMax[sim.PhaseRemap] == 0 {
		t.Error("no remap time recorded")
	}
	if met.PhaseMax[sim.PhaseMark] == 0 || met.PhaseMax[sim.PhasePartition] == 0 {
		t.Error("adaptation phases missing")
	}
	var sum sim.Time
	for _, ph := range met.PhaseMax {
		sum += ph
	}
	if sum < met.Total/2 {
		t.Errorf("phase attribution lost most of the time: phases=%v total=%v", sum, met.Total)
	}
}

func TestModelContrasts(t *testing.T) {
	// The qualitative relationships the study predicts, at moderate scale.
	w := Default()
	m := mach(16)
	plans := BuildPlans(w, 16)
	var met [3]core.Metrics
	for i, model := range core.AllModels() {
		met[i] = RunWithPlans(model, m, w, plans)
	}
	mpM, shM, saM := met[0], met[1], met[2]

	// Remap: SAS migrates nothing, MP migrates most.
	if !(saM.PhaseMax[sim.PhaseRemap] < shM.PhaseMax[sim.PhaseRemap]) ||
		!(shM.PhaseMax[sim.PhaseRemap] <= mpM.PhaseMax[sim.PhaseRemap]) {
		t.Errorf("remap ordering violated: MP=%v SHMEM=%v SAS=%v",
			mpM.PhaseMax[sim.PhaseRemap], shM.PhaseMax[sim.PhaseRemap], saM.PhaseMax[sim.PhaseRemap])
	}
	// Explicit communication: SHMEM cheaper than MP (lower software overhead).
	if !(shM.PhaseMax[sim.PhaseComm] < mpM.PhaseMax[sim.PhaseComm]) {
		t.Errorf("SHMEM comm %v !< MP comm %v",
			shM.PhaseMax[sim.PhaseComm], mpM.PhaseMax[sim.PhaseComm])
	}
	// Memory: SAS < SHMEM < MP.
	if !(saM.DataBytes < shM.DataBytes && shM.DataBytes < mpM.DataBytes) {
		t.Errorf("memory ordering violated: %d %d %d",
			mpM.DataBytes, shM.DataBytes, saM.DataBytes)
	}
	// MP must actually send messages; SAS must take remote/coherence misses.
	if mpM.Counters.MsgsSent == 0 || saM.Counters.RemoteMisses == 0 {
		t.Error("expected traffic signatures missing")
	}
}

func TestNoRemapMovesMore(t *testing.T) {
	w := Default()
	w2 := w
	w2.NoRemap = true
	a := BuildPlans(w, 8)
	b := BuildPlans(w2, 8)
	var withRemap, without float64
	for i := range a {
		withRemap += a[i].Remap.TotalW
		without += b[i].Remap.TotalW
	}
	if withRemap > without {
		t.Fatalf("PLUM remap moved more (%v) than identity (%v)", withRemap, without)
	}
}

func TestStaticMeshFreezes(t *testing.T) {
	w := Small()
	w.StaticMesh = true
	plans := BuildPlans(w, 2)
	for i := 1; i < len(plans); i++ {
		if plans[i].M.NumTris() != plans[0].M.NumTris() {
			t.Fatalf("static mesh changed size at cycle %d", i)
		}
		if plans[i].Stats.Refined != 0 {
			t.Fatalf("static mesh refined at cycle %d", i)
		}
	}
}

func TestMetricsExtras(t *testing.T) {
	w := Small()
	met := Run(core.SAS, mach(4), w)
	for _, k := range []string{"avg_tris", "avg_verts", "avg_edgecut", "max_imbalance"} {
		if met.Extra[k] <= 0 {
			t.Errorf("extra %q = %v", k, met.Extra[k])
		}
	}
	if met.Extra["max_imbalance"] > 2.0 {
		t.Errorf("imbalance too high: %v", met.Extra["max_imbalance"])
	}
}
