package adaptmesh

import (
	"math"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
	"o2k/internal/solver"
)

// Run executes the workload under the given programming model on machine
// mach and returns the run's metrics. Plans are rebuilt; use RunWithPlans to
// amortize plan construction across models (the plans are read-only and
// identical for every model at the same processor count).
func Run(model core.Model, mach *machine.Machine, w Workload) core.Metrics {
	return RunWithPlans(model, mach, w, BuildPlans(w, mach.Procs()))
}

// RunWithPlans is Run with precomputed cycle plans.
func RunWithPlans(model core.Model, mach *machine.Machine, w Workload, plans []*CyclePlan) core.Metrics {
	met, _ := runModel(model, mach, w, plans, false)
	return met
}

// TraceRun executes the workload like RunWithPlans but with phase-timeline
// tracing enabled, returning the processor group for sim.RenderTimeline.
func TraceRun(model core.Model, mach *machine.Machine, w Workload, plans []*CyclePlan) *sim.Group {
	_, g := runModel(model, mach, w, plans, true)
	return g
}

func runModel(model core.Model, mach *machine.Machine, w Workload, plans []*CyclePlan, trace bool) (core.Metrics, *sim.Group) {
	g := sim.NewGroup(mach.Procs())
	if trace {
		g.EnableTrace()
	}
	switch model {
	case core.MP:
		return runMP(mach, w, plans, g), g
	case core.SHMEM:
		return runSHMEM(mach, w, plans, g), g
	case core.SAS:
		return runSAS(mach, w, plans, g), g
	}
	panic("adaptmesh: unknown model")
}

// chargeOps advances p's clock by n abstract operations, attributed to ph.
func chargeOps(p *sim.Proc, mach *machine.Machine, ph sim.Phase, n int) {
	prev := p.SetPhase(ph)
	p.Advance(sim.Time(n) * mach.Cfg.OpNS)
	p.SetPhase(prev)
}

// chargeMark bills the error-indicator evaluation over this proc's share of
// the pre-adaptation mesh. Identical in every model (it is pure local
// computation).
func chargeMark(p *sim.Proc, mach *machine.Machine, pl *CyclePlan) {
	chargeOps(p, mach, sim.PhaseMark, solver.MarkOps*pl.MarkWork[p.ID()])
}

// chargePartition bills the repartitioning computation. The partitioner is
// parallelized (each processor handles its share of the RCB sort work) with
// a serial coordination floor — the PLUM-style structure all three models
// share, so the cost is identical across models.
func chargePartition(p *sim.Proc, mach *machine.Machine, pl *CyclePlan) {
	nt := pl.M.NumTris()
	ne := pl.M.NumEdges()
	levels := mach.LogStages(pl.Dec.P)
	if levels < 1 {
		levels = 1
	}
	ops := (solver.PartOps*nt*levels+8*(nt+ne))/pl.Dec.P + 2*nt
	chargeOps(p, mach, sim.PhasePartition, ops)
}

// refineRecords returns this proc's share of the structural change records
// exchanged during the refine phase: one compact word per change (element
// index + split pattern), the encoding a production adaptation code would
// gather to update remote halos.
func refineRecords(pl *CyclePlan, nprocs int) []int32 {
	per := (pl.Changes + nprocs - 1) / nprocs
	return make([]int32, per)
}

// finishMetrics assembles the result from the completed group. nfields is
// the per-vertex field count for the analytic memory table (solved field +
// accumulator + auxiliary state).
func finishMetrics(model core.Model, g *sim.Group, sp *numa.Space, plans []*CyclePlan, nfields int, checksum float64) core.Metrics {
	met := core.Metrics{
		Model:    model,
		Procs:    g.Size(),
		Total:    g.MaxTime(),
		PhaseMax: g.MaxPhaseTime(),
		PhaseAvg: g.AvgPhaseTime(),
		Counters: g.TotalCounters(),
		Checksum: checksum,
		Extra:    map[string]float64{},
	}
	for _, ev := range sp.CohEvictions() {
		met.Counters.CohMisses += ev
	}
	maxMem := [3]int{}
	var tris, verts, cut, movedW, imb float64
	for _, pl := range plans {
		mpB, shB, saB := pl.Dec.DataMemory(nfields)
		if mpB > maxMem[0] {
			maxMem[0], maxMem[1], maxMem[2] = mpB, shB, saB
		}
		tris += float64(pl.M.NumTris())
		verts += float64(pl.M.NumVertsUsed())
		cut += float64(pl.Dec.EdgeCut)
		movedW += pl.Remap.TotalW
		imb = math.Max(imb, pl.Imbalance)
	}
	n := float64(len(plans))
	switch model {
	case core.MP:
		met.DataBytes = maxMem[0]
	case core.SHMEM:
		met.DataBytes = maxMem[1]
	case core.SAS:
		met.DataBytes = maxMem[2]
	}
	met.Extra["avg_tris"] = tris / n
	met.Extra["avg_verts"] = verts / n
	met.Extra["avg_edgecut"] = cut / n
	met.Extra["moved_weight"] = movedW
	met.Extra["max_imbalance"] = imb
	return met
}
