package adaptmesh

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/sim"
)

// The auxiliary fields are linear in the coordinates, and midpoint
// interpolation is exact for linear functions — so after any number of
// adaptations, migrations, and interpolations, each aux field must still
// equal auxInit at every used vertex. The checksum difference between a run
// with and without aux fields therefore equals the analytic sum of auxInit
// over the final owned vertices.
func TestAuxFieldsExactlyLinear(t *testing.T) {
	w := Small()
	w0 := w
	w0.AuxFields = 0
	plans := BuildPlans(w, 4) // identical structure for both workloads
	for _, model := range core.AllModels() {
		with := RunWithPlans(model, mach(4), w, plans).Checksum
		without := RunWithPlans(model, mach(4), w0, plans).Checksum
		last := plans[len(plans)-1]
		want := 0.0
		for v := 0; v < last.NV; v++ {
			if last.M.VertUsed(int32(v)) {
				for k := 0; k < w.AuxFields; k++ {
					want += auxInit(k, last.M.VX[v], last.M.VY[v])
				}
			}
		}
		got := with - without
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-12 {
			t.Fatalf("%v: aux contribution %v, analytic %v (rel %v)", model, got, want, rel)
		}
	}
}

func TestAuxFieldsIncreaseRemapCost(t *testing.T) {
	// The whole point: carrying real per-element state makes migration
	// expensive, and only for the models that migrate.
	w := Default()
	w0 := w
	w0.AuxFields = 0
	plans := BuildPlans(w, 16)
	m := mach(16)
	mpWith := RunWithPlans(core.MP, m, w, plans).PhaseMax[sim.PhaseRemap]
	mpWithout := RunWithPlans(core.MP, m, w0, plans).PhaseMax[sim.PhaseRemap]
	if mpWith <= mpWithout {
		t.Fatalf("aux fields did not raise MP remap: %v vs %v", mpWith, mpWithout)
	}
	sasWith := RunWithPlans(core.SAS, m, w, plans).PhaseMax[sim.PhaseRemap]
	// SAS migrates nothing: its remap grows only by the interpolation work.
	if float64(sasWith) > 0.5*float64(mpWith) {
		t.Fatalf("SAS remap (%v) should stay far below MP's (%v)", sasWith, mpWith)
	}
}

func TestZeroAuxFieldsStillValid(t *testing.T) {
	w := Small()
	w.AuxFields = 0
	ref := ReferenceChecksum(w)
	got := Run(core.SHMEM, mach(2), w).Checksum
	if math.Abs(got-ref) > 1e-9*math.Abs(ref) {
		t.Fatalf("AuxFields=0 drifted: %v vs %v", got, ref)
	}
}
