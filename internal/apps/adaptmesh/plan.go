package adaptmesh

import (
	"slices"

	"o2k/internal/mesh"
	"o2k/internal/partition"
	"o2k/internal/solver"
)

// CyclePlan is the structural state of one adaptation cycle: the snapshot,
// its decomposition, and the (deterministic) migration and interpolation
// schedules every programming model executes against. Because the error
// indicator is geometric, the whole sequence of plans is computable up
// front and — crucially for the cross-model comparison — shared verbatim by
// all three implementations.
type CyclePlan struct {
	Step  int
	M     *mesh.Mesh
	Dec   *partition.Decomp
	Deg   []int32 // per global vertex ID, edge degree in this snapshot
	NV    int     // vertex-ID space size after this cycle's adaptation
	Stats mesh.AdaptStats
	Green int // green closure triangles in the snapshot

	// MidA/MidB alias the forest's parent arrays (length NV).
	MidA, MidB []int32

	// PrevOwner[v] is v's owner in the previous cycle's decomposition, or -1
	// if v was not used then (nil in cycle 0).
	PrevOwner []int32

	// MoveSend[src][dst] lists vertex IDs (ascending) whose previous-cycle
	// values processor src must deliver to processor dst (src != dst): the
	// values dst needs to seed its owned vertices and to interpolate its new
	// ones.
	MoveSend [][][]int32

	// LocalKeep[p] lists vertex IDs whose values stay on p across the cycle.
	LocalKeep [][]int32

	// InterpOwned[p] lists the new (previously unused) vertices p owns and
	// must interpolate, ascending.
	InterpOwned [][]int32

	// Clear[p] lists the vertices p must zero in its accumulator each sweep:
	// everything its edges touch plus everything it owns, ascending.
	Clear [][]int32

	// EdgeA/EdgeB[p] are the endpoint vertex IDs of p's owned edges,
	// index-aligned with Dec.OwnedEdges[p]: the flux sweep's
	// structure-of-arrays view, which replaces the per-edge double
	// indirection through M.Edges in every model's inner loop. Host-side
	// layout only — the costed accesses are to the field arrays the
	// endpoints index.
	EdgeA, EdgeB [][]int32

	Imbalance float64
	Remap     partition.RemapStats

	// MarkWork[p] is the number of triangles p evaluates the error indicator
	// on (its share of the pre-adaptation mesh).
	MarkWork []int
	// Changes is the number of structural elements the refinement step
	// touches (children created/removed plus green closures).
	Changes int
}

// BuildPlans runs the structural side of the whole experiment: Cycles
// adaptations of the forest, each partitioned for nprocs processors, with
// migration/interpolation schedules chained cycle to cycle. It is the
// one-shot convenience over the two-stage BuildStructure/Plans split the
// plan cache uses (see structure.go): the adaptation sequence is computed
// once per workload and the per-processor-count partitioning is derived from
// it, with bit-identical results either way.
func BuildPlans(w Workload, nprocs int) []*CyclePlan {
	return BuildStructure(w).Plans(nprocs, w.NoRemap)
}

// Plans derives the cycle plans for nprocs processors from the adaptation
// structure: RCB over each cycle's centroids, the PLUM remap against the
// previous cycle's owners, then the shared derivation in planCycle.
func (st *Structure) Plans(nprocs int, noRemap bool) []*CyclePlan {
	plans := make([]*CyclePlan, 0, len(st.Cycles))
	var prev *CyclePlan
	for c, sc := range st.Cycles {
		m := sc.M
		nt := m.NumTris()
		xs := make([]float64, nt)
		ys := make([]float64, nt)
		wt := make([]float64, nt)
		for t := 0; t < nt; t++ {
			xs[t], ys[t] = m.Centroid(t)
			wt[t] = 1
		}
		part := partition.RCB(xs, ys, wt, nprocs)

		// PLUM remap: similarity between the new parts and the previous
		// owners.
		assign := partition.IdentityAssign(nprocs)
		var remap partition.RemapStats
		if prev != nil {
			oldOwner := make([]int32, nt)
			for t := 0; t < nt; t++ {
				oldOwner[t] = st.ancestorOwner(prev, m.Tris[t][0])
			}
			if noRemap {
				remap = partition.MigrationStats(oldOwner, part, wt, assign, nprocs)
			} else {
				assign, remap = partition.Remap(oldOwner, part, wt, nprocs)
			}
		}
		triOwner := make([]int32, nt)
		for t := 0; t < nt; t++ {
			triOwner[t] = assign[part[t]]
		}
		p := st.planCycle(c, partition.NewDecomp(m, triOwner, nprocs), remap, nprocs, prev)
		plans = append(plans, p)
		prev = p
	}
	return plans
}

// planCycle derives one cycle's full plan from its decomposition and remap
// statistics — everything downstream of the partitioning decision is
// deterministic in (structure, triangle owners), which is why the plan cache
// can store just the owner vector and replay this derivation on warm runs
// (the decomposition itself is rebuilt by the decoder, so it is taken here
// instead of recomputed).
func (st *Structure) planCycle(cycle int, dec *partition.Decomp, remap partition.RemapStats, nprocs int, prev *CyclePlan) *CyclePlan {
	sc := st.Cycles[cycle]
	m := sc.M
	nv := m.NumVertsTotal()
	p := &CyclePlan{
		Step:  cycle,
		M:     m,
		Stats: sc.Stats,
		NV:    nv,
		MidA:  st.MidA[:nv],
		MidB:  st.MidB[:nv],
		Remap: remap,
	}
	for _, g := range m.Green {
		if g {
			p.Green++
		}
	}
	p.Dec = dec
	p.Deg = solver.Degrees(m)
	wt := make([]float64, len(dec.TriOwner))
	for t := range wt {
		wt[t] = 1
	}
	p.Imbalance = partition.Imbalance(dec.TriOwner, wt, nprocs)

	if prev != nil {
		p.PrevOwner = prev.Dec.VertOwner
	}
	p.Changes = 4*sc.Stats.Refined + 4*sc.Stats.Coarsened + p.Green
	p.MarkWork = make([]int, nprocs)
	for q := 0; q < nprocs; q++ {
		if prev != nil {
			p.MarkWork[q] = len(prev.Dec.OwnedTris[q])
		} else {
			p.MarkWork[q] = (st.BaseTris + nprocs - 1) / nprocs
		}
	}
	p.buildMigration(nprocs)
	p.buildClearLists(nprocs)
	return p
}

// ancestorOwner walks v's parent chain until a vertex that was used in the
// previous cycle, returning its previous owner — the "where did this region
// live" proxy the remapper's similarity matrix needs.
func (st *Structure) ancestorOwner(prev *CyclePlan, v int32) int32 {
	for {
		if int(v) < len(prev.Dec.VertOwner) {
			if o := prev.Dec.VertOwner[v]; o >= 0 {
				return o
			}
		}
		a := st.MidA[v]
		if a < 0 {
			return 0 // base vertex never used: cannot happen, but stay total
		}
		v = a
	}
}

// prevOwnerOf returns v's previous-cycle owner or -1.
func (p *CyclePlan) prevOwnerOf(v int32) int32 {
	if p.PrevOwner == nil || int(v) >= len(p.PrevOwner) {
		return -1
	}
	return p.PrevOwner[v]
}

// expandLeaves appends to out the previously-used ancestors whose values
// are needed to interpolate v, in parent-recursion order.
func (p *CyclePlan) expandLeaves(v int32, out []int32) []int32 {
	if p.prevOwnerOf(v) >= 0 {
		return append(out, v)
	}
	a, b := p.MidA[v], p.MidB[v]
	if a < 0 {
		// A base vertex that was never used before: only possible in cycle 0,
		// which seeds analytically and never calls this.
		panic("adaptmesh: unexpanded base vertex")
	}
	out = p.expandLeaves(a, out)
	return p.expandLeaves(b, out)
}

// buildMigration fills MoveSend, LocalKeep and InterpOwned.
func (p *CyclePlan) buildMigration(nprocs int) {
	p.MoveSend = make([][][]int32, nprocs)
	for s := range p.MoveSend {
		p.MoveSend[s] = make([][]int32, nprocs)
	}
	p.LocalKeep = make([][]int32, nprocs)
	p.InterpOwned = make([][]int32, nprocs)
	if p.PrevOwner == nil {
		return // cycle 0: analytic initialization, nothing to migrate
	}
	// sent[vid] is the last dst that scheduled vid; the dst loop ascends, so
	// a stamp array replaces a (dst, vid) set without any clearing.
	sent := make([]int32, p.NV)
	for i := range sent {
		sent[i] = -1
	}
	var leaves []int32
	for dst := 0; dst < nprocs; dst++ {
		d32 := int32(dst)
		for _, v := range p.Dec.OwnedVerts[dst] {
			if src := p.prevOwnerOf(v); src >= 0 {
				if sent[v] != d32 {
					sent[v] = d32
					if int(src) == dst {
						p.LocalKeep[dst] = append(p.LocalKeep[dst], v)
					} else {
						p.MoveSend[src][dst] = append(p.MoveSend[src][dst], v)
					}
				}
				continue
			}
			p.InterpOwned[dst] = append(p.InterpOwned[dst], v)
			leaves = p.expandLeaves(v, leaves[:0])
			for _, lv := range leaves {
				if sent[lv] == d32 {
					continue
				}
				sent[lv] = d32
				src := p.prevOwnerOf(lv)
				if int(src) == dst {
					p.LocalKeep[dst] = append(p.LocalKeep[dst], lv)
				} else {
					p.MoveSend[src][dst] = append(p.MoveSend[src][dst], lv)
				}
			}
		}
	}
	// Ascending order everywhere: message contents and local copies must be
	// deterministic and identical across models.
	for s := 0; s < nprocs; s++ {
		sortAsc(p.LocalKeep[s])
		for d := 0; d < nprocs; d++ {
			sortAsc(p.MoveSend[s][d])
		}
		// OwnedVerts is ascending already, so InterpOwned is too.
	}
}

// buildClearLists computes, per processor, the accumulator entries it uses:
// endpoints of owned edges plus owned vertices.
func (p *CyclePlan) buildClearLists(nprocs int) {
	p.Clear = make([][]int32, nprocs)
	p.EdgeA = make([][]int32, nprocs)
	p.EdgeB = make([][]int32, nprocs)
	mark := make([]int32, p.NV)
	for i := range mark {
		mark[i] = -1
	}
	for q := 0; q < nprocs; q++ {
		ne := len(p.Dec.OwnedEdges[q])
		ea := make([]int32, 0, ne)
		eb := make([]int32, 0, ne)
		for _, e := range p.Dec.OwnedEdges[q] {
			ea = append(ea, p.M.Edges[e][0])
			eb = append(eb, p.M.Edges[e][1])
			for _, v := range p.M.Edges[e] {
				if mark[v] != int32(q) {
					mark[v] = int32(q)
					p.Clear[q] = append(p.Clear[q], v)
				}
			}
		}
		p.EdgeA[q], p.EdgeB[q] = ea, eb
		for _, v := range p.Dec.OwnedVerts[q] {
			if mark[v] != int32(q) {
				mark[v] = int32(q)
				p.Clear[q] = append(p.Clear[q], v)
			}
		}
		sortAsc(p.Clear[q])
	}
}

func sortAsc(s []int32) {
	// The values are plain int32 IDs (no tie-broken satellite data), so any
	// sorting algorithm yields identical bytes; slices.Sort avoids the
	// interface indirection of sort.Slice on the warm-path derivation.
	slices.Sort(s)
}

// InterpValue computes the field value of (possibly new) vertex v from the
// values of previously-used vertices, via the same recursion in every model:
// a previously-used vertex reads its (migrated) value; a new vertex is the
// average of its parents. read must return the previously-used vertex's
// value; the recursion order and arithmetic are fixed, so results are
// bit-identical across models.
func (p *CyclePlan) InterpValue(v int32, read func(int32) float64) float64 {
	if p.prevOwnerOf(v) >= 0 {
		return read(v)
	}
	return 0.5 * (p.InterpValue(p.MidA[v], read) + p.InterpValue(p.MidB[v], read))
}

// MaxNV returns the final vertex-ID space size over a plan sequence.
func MaxNV(plans []*CyclePlan) int {
	m := 0
	for _, p := range plans {
		if p.NV > m {
			m = p.NV
		}
	}
	return m
}

// FirstOwner returns, per vertex ID, the owner in the first cycle where the
// vertex is used (-1 if never) — the deterministic stand-in for first-touch
// page placement of the CC-SAS shared field.
func FirstOwner(plans []*CyclePlan) []int32 {
	out := make([]int32, MaxNV(plans))
	for i := range out {
		out[i] = -1
	}
	for _, p := range plans {
		for v := 0; v < p.NV; v++ {
			if out[v] == -1 && p.Dec.VertOwner[v] >= 0 {
				out[v] = p.Dec.VertOwner[v]
			}
		}
	}
	return out
}
