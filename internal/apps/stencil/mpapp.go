package stencil

// Message-passing Jacobi: private row blocks plus explicit two-sided halo
// exchange — large contiguous messages, MP's best case.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

const tagHalo = 21

func runMP(mach *machine.Machine, w Workload, g *sim.Group) core.Metrics {
	np := mach.Procs()
	world := mp.NewWorld(mach)
	sp := numa.NewSpace(mach)
	size := (w.N + 2) * (w.N + 2)
	us := make([]*numa.Array[float64], np)
	vs := make([]*numa.Array[float64], np)
	for q := 0; q < np; q++ {
		us[q] = numa.NewPrivate[float64](sp, q, size)
		vs[q] = numa.NewPrivate[float64](sp, q, size)
	}
	var checksum float64
	g.Run(func(p *sim.Proc) {
		r := world.Rank(p)
		me := r.ID()
		lo, hi := rows(w, me, np)
		up, down := -1, -1
		if hi > lo {
			up = prevOwner(w, me, np)
			down = nextOwner(w, me, np)
		}
		u, v := us[me], vs[me]
		seed(p, w, u, v, lo-1, hi+1)
		rowLen := w.N + 2
		for it := 0; it < w.Iters; it++ {
			sweep(p, mach, w, u, v, lo, hi)
			u, v = v, u
			// Halo exchange with the nearest row-owning neighbours (post the
			// sends first).
			phc := p.SetPhase(sim.PhaseComm)
			if up >= 0 {
				row := make([]float64, rowLen)
				for j := 0; j < rowLen; j++ {
					row[j] = u.Load(p, idx(w, lo, j))
				}
				mp.Send(r, up, tagHalo, row)
			}
			if down >= 0 {
				row := make([]float64, rowLen)
				for j := 0; j < rowLen; j++ {
					row[j] = u.Load(p, idx(w, hi-1, j))
				}
				mp.Send(r, down, tagHalo, row)
			}
			if up >= 0 {
				row := mp.Recv[float64](r, up, tagHalo)
				for j := 0; j < rowLen; j++ {
					u.Store(p, idx(w, lo-1, j), row[j])
				}
			}
			if down >= 0 {
				row := mp.Recv[float64](r, down, tagHalo)
				for j := 0; j < rowLen; j++ {
					u.Store(p, idx(w, hi, j), row[j])
				}
			}
			p.SetPhase(phc)
		}
		cs := mp.Allreduce1(r, ownSum(p, w, u, lo, hi), mp.OpSum)
		if me == 0 {
			checksum = cs
		}
	})
	return finish(core.MP, g, checksum, w)
}
