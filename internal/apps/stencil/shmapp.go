package stencil

// One-sided (SHMEM) Jacobi: symmetric buffers; each PE puts its edge rows
// straight into the neighbours' halo slots, and a barrier completes them.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
)

func runSHMEM(mach *machine.Machine, w Workload, g *sim.Group) core.Metrics {
	np := mach.Procs()
	sp := numa.NewSpace(mach)
	world := shm.NewWorld(mach, sp)
	size := (w.N + 2) * (w.N + 2)
	uS := shm.AllocWorld[float64](world, size)
	vS := shm.AllocWorld[float64](world, size)
	var checksum float64
	g.Run(func(p *sim.Proc) {
		pe := world.PE(p)
		me := pe.ID()
		lo, hi := rows(w, me, np)
		up, down := -1, -1
		if hi > lo {
			up = prevOwner(w, me, np)
			down = nextOwner(w, me, np)
		}
		bufs := [2]*shm.Sym[float64]{uS, vS}
		cur := 0
		seed(p, w, uS.Local(pe), vS.Local(pe), lo-1, hi+1)
		pe.Barrier()
		rowLen := w.N + 2
		for it := 0; it < w.Iters; it++ {
			u, v := bufs[cur].Local(pe), bufs[1-cur].Local(pe)
			sweep(p, mach, w, u, v, lo, hi)
			cur = 1 - cur
			// Push my edge rows straight into the neighbours' halo slots.
			phc := p.SetPhase(sim.PhaseComm)
			nu := bufs[cur]
			nuL := nu.Local(pe)
			if up >= 0 {
				row := make([]float64, rowLen)
				for j := 0; j < rowLen; j++ {
					row[j] = nuL.Load(p, idx(w, lo, j))
				}
				shm.Put(pe, nu, up, idx(w, lo, 0), row)
			}
			if down >= 0 {
				row := make([]float64, rowLen)
				for j := 0; j < rowLen; j++ {
					row[j] = nuL.Load(p, idx(w, hi-1, j))
				}
				shm.Put(pe, nu, down, idx(w, hi-1, 0), row)
			}
			p.SetPhase(phc)
			pe.Barrier()
		}
		u := bufs[cur].Local(pe)
		cs := shm.Allreduce1(pe, ownSum(p, w, u, lo, hi), shm.OpSum)
		if me == 0 {
			checksum = cs
		}
	})
	return finish(core.SHMEM, g, checksum, w)
}
