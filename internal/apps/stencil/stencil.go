// Package stencil is the control application of the study: a *regular*
// five-point Jacobi relaxation on a fixed n×n grid. Nothing adapts — the
// decomposition is a static block of rows, the communication pattern is two
// large contiguous halo rows per neighbour per sweep, and the load is
// perfectly balanced.
//
// Its role in the comparison is contrast: on this workload message passing
// is at its best (few, large, regular messages amortize the per-message
// software overhead), so the three models finish close together — which
// shows that the large gaps measured on the adaptive applications come from
// adaptivity (irregular fine-grained communication, re-mapping, shifting
// load), not from some intrinsic handicap of a model's runtime.
package stencil

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

// Workload parameterizes the grid relaxation.
type Workload struct {
	N     int // grid is N×N interior points (plus fixed boundary)
	Iters int // Jacobi sweeps
}

// Default returns the standard scaling workload.
func Default() Workload { return Workload{N: 384, Iters: 20} }

// Small returns a reduced workload for unit tests.
func Small() Workload { return Workload{N: 64, Iters: 6} }

// Per-cell floating point work of one Jacobi update.
const cellOps = 5

// rows returns the block of interior rows [lo, hi) owned by proc p of np.
func rows(w Workload, p, np int) (lo, hi int) {
	lo = 1 + p*w.N/np
	hi = 1 + (p+1)*w.N/np
	return
}

// prevOwner returns the nearest lower-ranked processor that owns rows, or
// -1. When np > N some processors own no rows, so halo partners are not
// simply rank±1.
func prevOwner(w Workload, p, np int) int {
	for q := p - 1; q >= 0; q-- {
		if lo, hi := rows(w, q, np); hi > lo {
			return q
		}
	}
	return -1
}

// nextOwner returns the nearest higher-ranked processor that owns rows, or
// -1.
func nextOwner(w Workload, p, np int) int {
	for q := p + 1; q < np; q++ {
		if lo, hi := rows(w, q, np); hi > lo {
			return q
		}
	}
	return -1
}

// boundary returns the fixed boundary value at (i, j) — a hot west edge.
func boundary(w Workload, i, j int) float64 {
	if j == 0 {
		return 1
	}
	return 0
}

// initGrid returns the initial value at (i, j) on the (N+2)² padded grid.
func initGrid(w Workload, i, j int) float64 {
	if i == 0 || j == 0 || i == w.N+1 || j == w.N+1 {
		return boundary(w, i, j)
	}
	return 0
}

// idx maps padded-grid coordinates to the flat array index.
func idx(w Workload, i, j int) int { return i*(w.N+2) + j }

// Run executes the workload under the given model.
func Run(model core.Model, mach *machine.Machine, w Workload) core.Metrics {
	met, _ := runModel(model, mach, w, false)
	return met
}

// TraceRun executes the workload like Run but with phase-timeline tracing
// enabled, returning the processor group for sim.RenderTimeline.
func TraceRun(model core.Model, mach *machine.Machine, w Workload) *sim.Group {
	_, g := runModel(model, mach, w, true)
	return g
}

func runModel(model core.Model, mach *machine.Machine, w Workload, trace bool) (core.Metrics, *sim.Group) {
	g := sim.NewGroup(mach.Procs())
	if trace {
		g.EnableTrace()
	}
	switch model {
	case core.MP:
		return runMP(mach, w, g), g
	case core.SHMEM:
		return runSHMEM(mach, w, g), g
	case core.SAS:
		return runSAS(mach, w, g), g
	}
	panic("stencil: unknown model")
}

// ReferenceChecksum computes the final-grid digest sequentially.
func ReferenceChecksum(w Workload) float64 {
	size := (w.N + 2) * (w.N + 2)
	u := make([]float64, size)
	v := make([]float64, size)
	for i := 0; i <= w.N+1; i++ {
		for j := 0; j <= w.N+1; j++ {
			u[idx(w, i, j)] = initGrid(w, i, j)
			v[idx(w, i, j)] = initGrid(w, i, j)
		}
	}
	for it := 0; it < w.Iters; it++ {
		for i := 1; i <= w.N; i++ {
			for j := 1; j <= w.N; j++ {
				v[idx(w, i, j)] = 0.25 * (u[idx(w, i-1, j)] + u[idx(w, i+1, j)] +
					u[idx(w, i, j-1)] + u[idx(w, i, j+1)])
			}
		}
		u, v = v, u
	}
	s := 0.0
	for i := 1; i <= w.N; i++ {
		for j := 1; j <= w.N; j++ {
			s += u[idx(w, i, j)]
		}
	}
	return s
}

func finish(model core.Model, g *sim.Group, checksum float64, w Workload) core.Metrics {
	met := core.Metrics{
		Model:    model,
		Procs:    g.Size(),
		Total:    g.MaxTime(),
		PhaseMax: g.MaxPhaseTime(),
		PhaseAvg: g.AvgPhaseTime(),
		Counters: g.TotalCounters(),
		Checksum: checksum,
		Extra:    map[string]float64{},
	}
	row := (w.N + 2) * 8
	switch model {
	case core.MP:
		// Owned rows + two halo rows + two message buffers per process.
		met.DataBytes = 2*(w.N+2)*row + g.Size()*4*row
	case core.SHMEM:
		met.DataBytes = 2*(w.N+2)*row + g.Size()*2*row
	case core.SAS:
		met.DataBytes = 2 * (w.N + 2) * row
	}
	return met
}
