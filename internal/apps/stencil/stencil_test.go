package stencil

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func mach(p int) *machine.Machine { return machine.MustNew(machine.Default(p)) }

func TestReferenceConverges(t *testing.T) {
	w := Small()
	cs := ReferenceChecksum(w)
	if cs <= 0 {
		t.Fatalf("checksum %v (heat should have diffused in)", cs)
	}
	w2 := w
	w2.Iters *= 2
	if ReferenceChecksum(w2) <= cs {
		t.Fatal("more sweeps should diffuse more heat inward")
	}
}

func TestCrossModelChecksumsIdentical(t *testing.T) {
	w := Small()
	for _, procs := range []int{1, 2, 5, 8} {
		m := mach(procs)
		var sums [3]float64
		for i, model := range core.AllModels() {
			sums[i] = Run(model, m, w).Checksum
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("P=%d: %v %v %v", procs, sums[0], sums[1], sums[2])
		}
	}
}

func TestP1MatchesReferenceExactly(t *testing.T) {
	w := Small()
	ref := ReferenceChecksum(w)
	for _, model := range core.AllModels() {
		if got := Run(model, mach(1), w).Checksum; got != ref {
			t.Fatalf("%v: %v != %v", model, got, ref)
		}
	}
}

func TestParallelMatchesReferenceExactly(t *testing.T) {
	// Jacobi updates are per-cell independent, so even P>1 must be exact up
	// to the final reduction order; compare with a tight tolerance.
	w := Small()
	ref := ReferenceChecksum(w)
	got := Run(core.SAS, mach(4), w).Checksum
	if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-12 {
		t.Fatalf("drift %v", rel)
	}
}

func TestDeterministicTiming(t *testing.T) {
	w := Small()
	for _, model := range core.AllModels() {
		a := Run(model, mach(4), w).Total
		b := Run(model, mach(4), w).Total
		if a != b {
			t.Fatalf("%v nondeterministic", model)
		}
	}
}

func TestRegularWorkloadNarrowsGap(t *testing.T) {
	// The control result: on the regular stencil, MP's disadvantage vs
	// CC-SAS must be much smaller than on the adaptive applications.
	w := Default()
	m := mach(16)
	tMP := Run(core.MP, m, w).Total
	tSAS := Run(core.SAS, m, w).Total
	ratio := float64(tMP) / float64(tSAS)
	if ratio > 1.6 {
		t.Fatalf("MP/SAS ratio %v on regular stencil — should be close", ratio)
	}
	if ratio < 0.5 {
		t.Fatalf("suspicious ratio %v", ratio)
	}
}

func TestSpeedup(t *testing.T) {
	w := Default()
	for _, model := range core.AllModels() {
		t1 := Run(model, mach(1), w).Total
		t16 := Run(model, mach(16), w).Total
		if sp := float64(t1) / float64(t16); sp < 6 {
			t.Errorf("%v: regular stencil speedup only %.2f at P=16", model, sp)
		}
	}
}

func TestMoreProcsThanRows(t *testing.T) {
	w := Workload{N: 4, Iters: 3}
	ref := ReferenceChecksum(w)
	for _, model := range core.AllModels() {
		got := Run(model, mach(8), w).Checksum // some procs own zero rows
		if math.Abs(got-ref) > 1e-12*math.Abs(ref) {
			t.Fatalf("%v with idle procs: %v != %v", model, got, ref)
		}
	}
}

func TestPhaseAttribution(t *testing.T) {
	w := Small()
	met := Run(core.MP, mach(4), w)
	if met.PhaseMax[sim.PhaseCompute] == 0 {
		t.Error("no compute time")
	}
	if met.PhaseMax[sim.PhaseComm] == 0 {
		t.Error("no comm time for MP halo exchange")
	}
	if met.DataBytes <= 0 {
		t.Error("no memory accounting")
	}
}
