package stencil

// Cache-coherent shared-address-space Jacobi: two shared buffers placed by
// row owner; halo rows arrive through coherent loads, so the only explicit
// operation is the barrier between sweeps.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
)

func runSAS(mach *machine.Machine, w Workload, g *sim.Group) core.Metrics {
	np := mach.Procs()
	sp := numa.NewSpace(mach)
	world := sas.NewWorld(mach, sp)
	size := (w.N + 2) * (w.N + 2)
	uA := sas.NewArray[float64](world, size)
	vA := sas.NewArray[float64](world, size)
	place := func(e int) int {
		i := e / (w.N + 2)
		if i < 1 {
			i = 1
		}
		if i > w.N {
			i = w.N
		}
		return (i - 1) * np / w.N
	}
	uA.PlaceByElem(place)
	vA.PlaceByElem(place)
	var checksum float64
	g.Run(func(p *sim.Proc) {
		c := world.Ctx(p)
		me := c.ID()
		lo, hi := rows(w, me, np)
		// Owners seed their rows; proc 0 and np-1 seed the boundary rows.
		r0, r1 := lo, hi
		if me == 0 {
			r0 = 0
		}
		if me == np-1 {
			r1 = w.N + 2
		}
		seed(p, w, uA, vA, r0, r1)
		c.Barrier()
		bufs := [2]*numa.Array[float64]{uA, vA}
		cur := 0
		for it := 0; it < w.Iters; it++ {
			sweep(p, mach, w, bufs[cur], bufs[1-cur], lo, hi)
			cur = 1 - cur
			c.Barrier() // publish this sweep before neighbours read the halo
		}
		cs := sas.Allreduce1(c, ownSum(p, w, bufs[cur], lo, hi), sas.OpSum)
		if me == 0 {
			checksum = cs
		}
	})
	return finish(core.SAS, g, checksum, w)
}
