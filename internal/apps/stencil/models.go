package stencil

// Shared helpers of the three programming-model implementations: seeding,
// the Jacobi sweep, and the checksum fold. The decomposition is identical
// (static row blocks); only the halo-row movement differs per model.

import (
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

func seed(p *sim.Proc, w Workload, u, v *numa.Array[float64], r0, r1 int) {
	cu, cv := u.Cursor(p), v.Cursor(p)
	for i := r0; i < r1; i++ {
		for j := 0; j <= w.N+1; j++ {
			cu.Store(idx(w, i, j), initGrid(w, i, j))
			cv.Store(idx(w, i, j), initGrid(w, i, j))
		}
	}
	cu.Flush()
	cv.Flush()
}

// sweep charges and computes one Jacobi iteration over rows [lo, hi). The
// three stencil arms cycle through three distinct source lines per cell, so
// each keeps its own line memo (numa.Arm) — the left and right neighbours
// share the row arm, which the j walk keeps hot.
func sweep(p *sim.Proc, mach *machine.Machine, w Workload, src, dst *numa.Array[float64], lo, hi int) {
	opNS := mach.Cfg.OpNS
	cs, cd := src.Cursor(p), dst.Cursor(p)
	var up, down, row numa.Arm
	for i := lo; i < hi; i++ {
		u0, d0, c0 := idx(w, i-1, 0), idx(w, i+1, 0), idx(w, i, 0)
		for j := 1; j <= w.N; j++ {
			val := 0.25 * (cs.LoadArm(&up, u0+j) + cs.LoadArm(&down, d0+j) +
				cs.LoadArm(&row, c0+j-1) + cs.LoadArm(&row, c0+j+1))
			cd.Store(c0+j, val)
		}
		p.Advance(sim.Time(cellOps*w.N) * opNS)
	}
	cs.Flush()
	cd.Flush()
}

func ownSum(p *sim.Proc, w Workload, u *numa.Array[float64], lo, hi int) float64 {
	cu := u.Cursor(p)
	s := 0.0
	for i := lo; i < hi; i++ {
		for j := 1; j <= w.N; j++ {
			s += cu.Load(idx(w, i, j))
		}
	}
	cu.Flush()
	return s
}
