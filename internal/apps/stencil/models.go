package stencil

// Shared helpers of the three programming-model implementations: seeding,
// the Jacobi sweep, and the checksum fold. The decomposition is identical
// (static row blocks); only the halo-row movement differs per model.

import (
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

func seed(p *sim.Proc, w Workload, u, v *numa.Array[float64], r0, r1 int) {
	for i := r0; i < r1; i++ {
		for j := 0; j <= w.N+1; j++ {
			u.Store(p, idx(w, i, j), initGrid(w, i, j))
			v.Store(p, idx(w, i, j), initGrid(w, i, j))
		}
	}
}

func sweep(p *sim.Proc, mach *machine.Machine, w Workload, src, dst *numa.Array[float64], lo, hi int) {
	opNS := mach.Cfg.OpNS
	for i := lo; i < hi; i++ {
		for j := 1; j <= w.N; j++ {
			val := 0.25 * (src.Load(p, idx(w, i-1, j)) + src.Load(p, idx(w, i+1, j)) +
				src.Load(p, idx(w, i, j-1)) + src.Load(p, idx(w, i, j+1)))
			dst.Store(p, idx(w, i, j), val)
		}
		p.Advance(sim.Time(cellOps*w.N) * opNS)
	}
}

func ownSum(p *sim.Proc, w Workload, u *numa.Array[float64], lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		for j := 1; j <= w.N; j++ {
			s += u.Load(p, idx(w, i, j))
		}
	}
	return s
}
