package cg

// Cache-coherent shared-address-space CG: the search direction lives in one
// shared array placed by owner, so the matvec's "ghost" reads are plain
// coherent loads; partial sums flow through a shared contribution buffer;
// reductions use the hardware-assisted tree. No explicit communication code.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
)

func runSAS(mach *machine.Machine, w Workload, pl *Plan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	sp := numa.NewSpace(mach)
	world := sas.NewWorld(mach, sp)

	place := func(e int) int {
		if e < pl.NV && pl.Dec.VertOwner[e] >= 0 {
			return int(pl.Dec.VertOwner[e])
		}
		return 0
	}
	pv := sas.NewArray[float64](world, pl.NV) // shared: read across the border
	pv.PlaceByElem(place)
	// x, r, q are owner-private working vectors.
	xs := make([]*numa.Array[float64], nprocs)
	rs := make([]*numa.Array[float64], nprocs)
	qs := make([]*numa.Array[float64], nprocs)
	for i := 0; i < nprocs; i++ {
		xs[i] = numa.NewPrivate[float64](sp, i, pl.NV)
		rs[i] = numa.NewPrivate[float64](sp, i, pl.NV)
		qs[i] = numa.NewPrivate[float64](sp, i, pl.NV)
	}
	// Shared contribution buffer, regions homed on the writer.
	offIn := make([][]int, nprocs)
	total := 0
	for s := 0; s < nprocs; s++ {
		offIn[s] = make([]int, nprocs)
		for t := 0; t < nprocs; t++ {
			offIn[s][t] = total
			total += len(pl.Dec.Border[s][t])
		}
	}
	if total == 0 {
		total = 1
	}
	contrib := sas.NewArray[float64](world, total)
	contrib.PlaceByElem(func(e int) int {
		for s := nprocs - 1; s >= 0; s-- {
			if e >= offIn[s][0] {
				return s
			}
		}
		return 0
	})

	var checksum, rho float64
	g.Run(func(pc *sim.Proc) {
		cs, rh := sasCG(world.Ctx(pc), mach, w, pl, offIn, pv, contrib,
			xs[pc.ID()], rs[pc.ID()], qs[pc.ID()])
		if pc.ID() == 0 {
			checksum, rho = cs, rh
		}
	})
	return finish(core.SAS, g, pl, checksum, rho)
}

func sasCG(c *sas.Ctx, mach *machine.Machine, w Workload, pl *Plan, offIn [][]int,
	pv, contrib, x, rv, q *numa.Array[float64]) (float64, float64) {

	me := c.ID()
	pc := c.P
	dec := pl.Dec

	pc.SetPhase(sim.PhaseCompute)
	part := 0.0
	for _, vid := range dec.OwnedVerts[me] {
		b := pl.B[vid]
		rv.Store(pc, int(vid), b)
		pv.Store(pc, int(vid), b)
		x.Store(pc, int(vid), 0)
		part += b * b
		chargeOps(pc, mach, dotOps)
	}
	rho := sas.Allreduce1(c, part, sas.OpSum)
	c.Barrier() // publish the initial direction

	for it := 0; it < w.Iters; it++ {
		// Matvec straight off the shared direction vector.
		for _, vid := range pl.Clear[me] {
			q.Store(pc, int(vid), 0)
		}
		for _, e := range dec.OwnedEdges[me] {
			a, b := pl.M.Edges[e][0], pl.M.Edges[e][1]
			q.Store(pc, int(a), q.Load(pc, int(a))-pv.Load(pc, int(b)))
			q.Store(pc, int(b), q.Load(pc, int(b))-pv.Load(pc, int(a)))
			chargeOps(pc, mach, matvecOps)
		}
		for dst := 0; dst < c.Size(); dst++ {
			lst := dec.Border[me][dst]
			off := offIn[me][dst]
			for i, vid := range lst {
				contrib.Store(pc, off+i, q.Load(pc, int(vid)))
			}
		}
		c.Barrier()
		for src := 0; src < c.Size(); src++ {
			lst := dec.Border[src][me]
			off := offIn[src][me]
			for i, vid := range lst {
				q.Store(pc, int(vid), q.Load(pc, int(vid))+contrib.Load(pc, off+i))
			}
		}
		pq := 0.0
		for _, vid := range dec.OwnedVerts[me] {
			qa := q.Load(pc, int(vid)) + pl.Diag(w, vid)*pv.Load(pc, int(vid))
			q.Store(pc, int(vid), qa)
			pq += pv.Load(pc, int(vid)) * qa
			chargeOps(pc, mach, diagOps+dotOps)
		}
		alpha := rho / sas.Allreduce1(c, pq, sas.OpSum)

		rr := 0.0
		for _, vid := range dec.OwnedVerts[me] {
			x.Store(pc, int(vid), x.Load(pc, int(vid))+alpha*pv.Load(pc, int(vid)))
			nr := rv.Load(pc, int(vid)) - alpha*q.Load(pc, int(vid))
			rv.Store(pc, int(vid), nr)
			rr += nr * nr
			chargeOps(pc, mach, 2*axpyOps+dotOps)
		}
		rho2 := sas.Allreduce1(c, rr, sas.OpSum)
		beta := rho2 / rho
		rho = rho2
		// Everyone has finished reading the old direction (the matvec is
		// behind two reductions), so owners may overwrite it in place.
		for _, vid := range dec.OwnedVerts[me] {
			pv.Store(pc, int(vid), rv.Load(pc, int(vid))+beta*pv.Load(pc, int(vid)))
			chargeOps(pc, mach, axpyOps)
		}
		c.Barrier() // publish the new direction
	}

	s := 0.0
	for _, vid := range dec.OwnedVerts[me] {
		s += x.Load(pc, int(vid))
	}
	return sas.Allreduce1(c, s, sas.OpSum), rho
}
