package cg

// Message-passing CG: private vectors, explicit ghost exchange of the search
// direction before each matvec, explicit partial-sum exchange after it, and
// two blocking allreduces per iteration for the dot products — the
// reduction-latency profile that dominates MP CG at scale.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

const (
	tagGhost   = 31
	tagPartial = 32
)

func runMP(mach *machine.Machine, w Workload, pl *Plan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	world := mp.NewWorld(mach)
	sp := numa.NewSpace(mach)
	vecs := make([][4]*numa.Array[float64], nprocs) // x, r, p, q per rank
	for q := 0; q < nprocs; q++ {
		for k := 0; k < 4; k++ {
			vecs[q][k] = numa.NewPrivate[float64](sp, q, pl.NV)
		}
	}
	var checksum, rho float64
	g.Run(func(pc *sim.Proc) {
		cs, rh := mpCG(world.Rank(pc), mach, w, pl, vecs[pc.ID()])
		if pc.ID() == 0 {
			checksum, rho = cs, rh
		}
	})
	return finish(core.MP, g, pl, checksum, rho)
}

func mpCG(r *mp.Rank, mach *machine.Machine, w Workload, pl *Plan,
	v [4]*numa.Array[float64]) (float64, float64) {

	me := r.ID()
	pc := r.P
	dec := pl.Dec
	x, rv, pv, q := v[0], v[1], v[2], v[3]

	// Init: x = 0, r = p = b over owned vertices.
	pc.SetPhase(sim.PhaseCompute)
	part := 0.0
	for _, vid := range dec.OwnedVerts[me] {
		b := pl.B[vid]
		rv.Store(pc, int(vid), b)
		pv.Store(pc, int(vid), b)
		x.Store(pc, int(vid), 0)
		part += b * b
		chargeOps(pc, mach, dotOps)
	}
	rho := mp.Allreduce1(r, part, mp.OpSum)

	for it := 0; it < w.Iters; it++ {
		// Refresh ghost copies of the search direction.
		phc := pc.SetPhase(sim.PhaseComm)
		for dst := 0; dst < r.Size(); dst++ {
			lst := dec.Border[dst][me]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, len(lst))
			for i, vid := range lst {
				vals[i] = pv.Load(pc, int(vid))
			}
			mp.Send(r, dst, tagGhost, vals)
		}
		for src := 0; src < r.Size(); src++ {
			lst := dec.Border[me][src]
			if len(lst) == 0 {
				continue
			}
			vals := mp.Recv[float64](r, src, tagGhost)
			for i, vid := range lst {
				pv.Store(pc, int(vid), vals[i])
			}
		}
		pc.SetPhase(phc)

		// Matvec: q = A p via owned edges plus partial exchange.
		for _, vid := range pl.Clear[me] {
			q.Store(pc, int(vid), 0)
		}
		for _, e := range dec.OwnedEdges[me] {
			a, b := pl.M.Edges[e][0], pl.M.Edges[e][1]
			q.Store(pc, int(a), q.Load(pc, int(a))-pv.Load(pc, int(b)))
			q.Store(pc, int(b), q.Load(pc, int(b))-pv.Load(pc, int(a)))
			chargeOps(pc, mach, matvecOps)
		}
		phc = pc.SetPhase(sim.PhaseComm)
		for dst := 0; dst < r.Size(); dst++ {
			lst := dec.Border[me][dst]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, len(lst))
			for i, vid := range lst {
				vals[i] = q.Load(pc, int(vid))
			}
			mp.Send(r, dst, tagPartial, vals)
		}
		for src := 0; src < r.Size(); src++ {
			lst := dec.Border[src][me]
			if len(lst) == 0 {
				continue
			}
			vals := mp.Recv[float64](r, src, tagPartial)
			for i, vid := range lst {
				q.Store(pc, int(vid), q.Load(pc, int(vid))+vals[i])
			}
		}
		pc.SetPhase(phc)
		pq := 0.0
		for _, vid := range dec.OwnedVerts[me] {
			qa := q.Load(pc, int(vid)) + pl.Diag(w, vid)*pv.Load(pc, int(vid))
			q.Store(pc, int(vid), qa)
			pq += pv.Load(pc, int(vid)) * qa
			chargeOps(pc, mach, diagOps+dotOps)
		}
		alpha := rho / mp.Allreduce1(r, pq, mp.OpSum)

		rr := 0.0
		for _, vid := range dec.OwnedVerts[me] {
			x.Store(pc, int(vid), x.Load(pc, int(vid))+alpha*pv.Load(pc, int(vid)))
			nr := rv.Load(pc, int(vid)) - alpha*q.Load(pc, int(vid))
			rv.Store(pc, int(vid), nr)
			rr += nr * nr
			chargeOps(pc, mach, 2*axpyOps+dotOps)
		}
		rho2 := mp.Allreduce1(r, rr, mp.OpSum)
		beta := rho2 / rho
		rho = rho2
		for _, vid := range dec.OwnedVerts[me] {
			pv.Store(pc, int(vid), rv.Load(pc, int(vid))+beta*pv.Load(pc, int(vid)))
			chargeOps(pc, mach, axpyOps)
		}
	}

	s := 0.0
	for _, vid := range dec.OwnedVerts[me] {
		s += x.Load(pc, int(vid))
	}
	return mp.Allreduce1(r, s, mp.OpSum), rho
}
