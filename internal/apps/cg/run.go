package cg

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

// Operation counts for the virtual cost model.
const (
	matvecOps = 4 // per edge: two gathers, two accumulations
	diagOps   = 3 // per owned vertex: diagonal term
	axpyOps   = 4 // per owned vertex per vector update
	dotOps    = 2 // per owned vertex per dot product
)

// Run executes the CG workload under the given model.
func Run(model core.Model, mach *machine.Machine, w Workload) core.Metrics {
	return RunWithPlan(model, mach, w, BuildPlan(w, mach.Procs()))
}

// RunWithPlan is Run with a precomputed plan (shareable across models).
func RunWithPlan(model core.Model, mach *machine.Machine, w Workload, p *Plan) core.Metrics {
	met, _ := runModel(model, mach, w, p, false)
	return met
}

// TraceRun executes the workload like RunWithPlan but with phase-timeline
// tracing enabled, returning the processor group for sim.RenderTimeline.
func TraceRun(model core.Model, mach *machine.Machine, w Workload, p *Plan) *sim.Group {
	_, g := runModel(model, mach, w, p, true)
	return g
}

func runModel(model core.Model, mach *machine.Machine, w Workload, p *Plan, trace bool) (core.Metrics, *sim.Group) {
	g := sim.NewGroup(mach.Procs())
	if trace {
		g.EnableTrace()
	}
	switch model {
	case core.MP:
		return runMP(mach, w, p, g), g
	case core.SHMEM:
		return runSHMEM(mach, w, p, g), g
	case core.SAS:
		return runSAS(mach, w, p, g), g
	}
	panic("cg: unknown model")
}

func chargeOps(pc *sim.Proc, mach *machine.Machine, n int) {
	pc.Advance(sim.Time(n) * mach.Cfg.OpNS)
}

func finish(model core.Model, g *sim.Group, p *Plan, checksum, rho float64) core.Metrics {
	met := core.Metrics{
		Model:    model,
		Procs:    g.Size(),
		Total:    g.MaxTime(),
		PhaseMax: g.MaxPhaseTime(),
		PhaseAvg: g.AvgPhaseTime(),
		Counters: g.TotalCounters(),
		Checksum: checksum,
		Extra:    map[string]float64{"residual": rho},
	}
	mpB, shB, saB := p.Dec.DataMemory(5) // x, r, p, q, staging
	switch model {
	case core.MP:
		met.DataBytes = mpB
	case core.SHMEM:
		met.DataBytes = shB
	case core.SAS:
		met.DataBytes = saB
	}
	return met
}
