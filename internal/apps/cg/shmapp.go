package cg

// One-sided CG: ghost refresh by indexed puts straight into neighbours'
// direction vectors, partial sums through a symmetric staging buffer, and
// barrier completion. Reductions use the SHMEM collective tree.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
)

func runSHMEM(mach *machine.Machine, w Workload, pl *Plan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	world := shm.NewWorld(mach, numa.NewSpace(mach))
	x := shm.AllocWorld[float64](world, pl.NV)
	rv := shm.AllocWorld[float64](world, pl.NV)
	pv := shm.AllocWorld[float64](world, pl.NV)
	q := shm.AllocWorld[float64](world, pl.NV)
	// Contribution staging: region per (writer, owner) pair.
	offIn := make([][]int, nprocs)
	inLen := 0
	for t := 0; t < nprocs; t++ {
		offIn[t] = make([]int, nprocs)
		off := 0
		for s := 0; s < nprocs; s++ {
			offIn[t][s] = off
			off += len(pl.Dec.Border[s][t])
		}
		if off > inLen {
			inLen = off
		}
	}
	if inLen == 0 {
		inLen = 1
	}
	contrib := shm.AllocWorld[float64](world, inLen)

	var checksum, rho float64
	g.Run(func(pc *sim.Proc) {
		cs, rh := shmCG(world.PE(pc), mach, w, pl, offIn, x, rv, pv, q, contrib)
		if pc.ID() == 0 {
			checksum, rho = cs, rh
		}
	})
	return finish(core.SHMEM, g, pl, checksum, rho)
}

func shmCG(pe *shm.PE, mach *machine.Machine, w Workload, pl *Plan, offIn [][]int,
	xS, rS, pS, qS, contrib *shm.Sym[float64]) (float64, float64) {

	me := pe.ID()
	pc := pe.P
	dec := pl.Dec
	x, rv, pv, q := xS.Local(pe), rS.Local(pe), pS.Local(pe), qS.Local(pe)
	contribL := contrib.Local(pe)

	pc.SetPhase(sim.PhaseCompute)
	part := 0.0
	for _, vid := range dec.OwnedVerts[me] {
		b := pl.B[vid]
		rv.Store(pc, int(vid), b)
		pv.Store(pc, int(vid), b)
		x.Store(pc, int(vid), 0)
		part += b * b
		chargeOps(pc, mach, dotOps)
	}
	rho := shm.Allreduce1(pe, part, shm.OpSum)

	for it := 0; it < w.Iters; it++ {
		// Push my owned direction values into the neighbours' copies.
		phc := pc.SetPhase(sim.PhaseComm)
		for dst := 0; dst < pe.Size(); dst++ {
			lst := dec.Border[dst][me]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, len(lst))
			for i, vid := range lst {
				vals[i] = pv.Load(pc, int(vid))
			}
			shm.PutIdx(pe, pS, dst, lst, vals)
		}
		pc.SetPhase(phc)
		pe.Barrier()

		// Matvec.
		for _, vid := range pl.Clear[me] {
			q.Store(pc, int(vid), 0)
		}
		for _, e := range dec.OwnedEdges[me] {
			a, b := pl.M.Edges[e][0], pl.M.Edges[e][1]
			q.Store(pc, int(a), q.Load(pc, int(a))-pv.Load(pc, int(b)))
			q.Store(pc, int(b), q.Load(pc, int(b))-pv.Load(pc, int(a)))
			chargeOps(pc, mach, matvecOps)
		}
		phc = pc.SetPhase(sim.PhaseComm)
		for dst := 0; dst < pe.Size(); dst++ {
			lst := dec.Border[me][dst]
			if len(lst) == 0 {
				continue
			}
			vals := make([]float64, len(lst))
			for i, vid := range lst {
				vals[i] = q.Load(pc, int(vid))
			}
			shm.Put(pe, contrib, dst, offIn[dst][me], vals)
		}
		pc.SetPhase(phc)
		pe.Barrier()
		for src := 0; src < pe.Size(); src++ {
			lst := dec.Border[src][me]
			off := offIn[me][src]
			for i, vid := range lst {
				q.Store(pc, int(vid), q.Load(pc, int(vid))+contribL.Load(pc, off+i))
			}
		}
		pq := 0.0
		for _, vid := range dec.OwnedVerts[me] {
			qa := q.Load(pc, int(vid)) + pl.Diag(w, vid)*pv.Load(pc, int(vid))
			q.Store(pc, int(vid), qa)
			pq += pv.Load(pc, int(vid)) * qa
			chargeOps(pc, mach, diagOps+dotOps)
		}
		alpha := rho / shm.Allreduce1(pe, pq, shm.OpSum)

		rr := 0.0
		for _, vid := range dec.OwnedVerts[me] {
			x.Store(pc, int(vid), x.Load(pc, int(vid))+alpha*pv.Load(pc, int(vid)))
			nr := rv.Load(pc, int(vid)) - alpha*q.Load(pc, int(vid))
			rv.Store(pc, int(vid), nr)
			rr += nr * nr
			chargeOps(pc, mach, 2*axpyOps+dotOps)
		}
		rho2 := shm.Allreduce1(pe, rr, shm.OpSum)
		beta := rho2 / rho
		rho = rho2
		for _, vid := range dec.OwnedVerts[me] {
			pv.Store(pc, int(vid), rv.Load(pc, int(vid))+beta*pv.Load(pc, int(vid)))
			chargeOps(pc, mach, axpyOps)
		}
	}

	s := 0.0
	for _, vid := range dec.OwnedVerts[me] {
		s += x.Load(pc, int(vid))
	}
	return shm.Allreduce1(pe, s, shm.OpSum), rho
}
