// Package cg is the fourth application of the comparison: a conjugate-
// gradient solve of a shifted graph-Laplacian system over the (refined,
// irregular, but statically partitioned) unstructured mesh. Its
// communication signature completes the application mix:
//
//	stencil   — regular, bandwidth-bound halo exchange
//	adaptmesh — irregular AND dynamic (remapping, structure distribution)
//	barnes    — dynamic work distribution, all-to-all state visibility
//	cg        — irregular matvec plus two *latency-bound global reductions
//	            per iteration*: at scale, CG lives or dies on allreduce cost
//
// Each iteration performs one edge-based matvec (gather/scatter over the
// mesh, like the relaxation solver), two dot products (rank-ordered
// reductions, so results are bit-identical across models at equal P), and
// three vector updates. The matrix is A = sigma·I + L (L the graph
// Laplacian): symmetric positive definite, so CG genuinely converges — the
// tests check the residual drop against the sequential reference.
package cg

import (
	"fmt"

	"o2k/internal/mesh"
	"o2k/internal/partition"
	"o2k/internal/planio"
	"o2k/internal/solver"
)

// Schema strings versioning the persistent plan-cache payloads for this app;
// they are folded into the cache keys, so a format change retires old entries.
const (
	MeshSchema = "o2kcgmesh/1"
	PlanSchema = "o2kcgplan/1"
)

// Workload parameterizes the CG experiment.
type Workload struct {
	GridN    int     // base mesh dimension
	MaxLevel int     // refinement depth (one adapt pass makes it irregular)
	Iters    int     // CG iterations (fixed count: deterministic)
	Sigma    float64 // diagonal shift of A = sigma·I + Laplacian
}

// Default returns the standard scaling workload.
func Default() Workload {
	return Workload{GridN: 24, MaxLevel: 3, Iters: 25, Sigma: 1.0}
}

// Small returns a reduced workload for unit tests.
func Small() Workload {
	return Workload{GridN: 8, MaxLevel: 2, Iters: 10, Sigma: 1.0}
}

// Plan is the static structure of a CG run: one refined snapshot, its
// decomposition, and the accumulator clear lists — the same deterministic
// discipline as the adaptive-mesh application, without the per-cycle churn.
type Plan struct {
	M     *mesh.Mesh
	Dec   *partition.Decomp
	Deg   []int32
	NV    int
	Clear [][]int32 // per proc: owned + touched vertices, ascending
	B     []float64 // right-hand side by global vertex ID (zero if unused)
}

// BuildPlan constructs the mesh, partitions it, and precomputes the
// communication lists for nprocs processors. It is the one-shot convenience
// over the BuildMesh/PlanForMesh split the plan cache uses, with bit-identical
// results either way.
func BuildPlan(w Workload, nprocs int) *Plan {
	return PlanForMesh(w, BuildMesh(w), nprocs)
}

// BuildMesh constructs the refined snapshot — the processor-count-independent
// half of plan construction, shared by every P of a scaling sweep.
func BuildMesh(w Workload) *mesh.Mesh {
	f := mesh.NewUnitSquare(w.GridN, w.MaxLevel)
	f.Adapt(mesh.DefaultFront(w.MaxLevel).At(0))
	return f.Snapshot()
}

// PlanForMesh partitions snapshot m for nprocs processors and derives the
// full plan.
func PlanForMesh(w Workload, m *mesh.Mesh, nprocs int) *Plan {
	nt := m.NumTris()
	xs := make([]float64, nt)
	ys := make([]float64, nt)
	wt := make([]float64, nt)
	for t := 0; t < nt; t++ {
		xs[t], ys[t] = m.Centroid(t)
		wt[t] = 1
	}
	dec := partition.NewDecomp(m, partition.RCB(xs, ys, wt, nprocs), nprocs)
	return planFromDecomp(w, m, dec)
}

// planFromDecomp derives the full plan from a decomposition — everything
// downstream of the partitioning decision is deterministic in (mesh, owner),
// which is why the plan cache stores just the owner vector and replays this
// derivation on warm runs.
func planFromDecomp(w Workload, m *mesh.Mesh, dec *partition.Decomp) *Plan {
	nprocs := dec.P
	p := &Plan{
		M:   m,
		Dec: dec,
		Deg: solver.Degrees(m),
		NV:  m.NumVertsTotal(),
	}
	// Clear lists (owned + edge-touched), as in adaptmesh.
	mark := make([]int32, p.NV)
	for i := range mark {
		mark[i] = -1
	}
	p.Clear = make([][]int32, nprocs)
	for q := 0; q < nprocs; q++ {
		for _, e := range dec.OwnedEdges[q] {
			for _, v := range m.Edges[e] {
				if mark[v] != int32(q) {
					mark[v] = int32(q)
					p.Clear[q] = append(p.Clear[q], v)
				}
			}
		}
		for _, v := range dec.OwnedVerts[q] {
			if mark[v] != int32(q) {
				mark[v] = int32(q)
				p.Clear[q] = append(p.Clear[q], v)
			}
		}
		sortAsc(p.Clear[q])
	}
	// Right-hand side: the moving-front bump (anything nonzero and smooth).
	front := mesh.DefaultFront(w.MaxLevel)
	p.B = make([]float64, p.NV)
	for v := 0; v < p.NV; v++ {
		if m.VertUsed(int32(v)) {
			p.B[v] = front.InitialField(m.VX[v], m.VY[v])
		}
	}
	return p
}

// EncodePlan serializes the per-processor-count half of a plan: the
// partitioning decision the rest is derived from.
//
//	o2kcgplan 1
//	<decomp>
func EncodePlan(p *Plan) []byte {
	var pw planio.Writer
	pw.Word("o2kcgplan")
	pw.Int(1)
	pw.End()
	p.Dec.AppendTo(&pw)
	return pw.Bytes()
}

// DecodePlan rebuilds a plan from EncodePlan output by replaying the
// derivation against snapshot m. Any mismatch with the mesh or the requested
// processor count is an error, which the cache layer converts into a
// recomputation.
func DecodePlan(data []byte, w Workload, m *mesh.Mesh, nprocs int) (*Plan, error) {
	s := planio.NewScanner(data)
	s.Expect("o2kcgplan")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return nil, fmt.Errorf("cg: unsupported plan version %d", v)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	dec, err := partition.DecodeDecompFrom(s, m)
	if err != nil {
		return nil, err
	}
	if dec.P != nprocs {
		return nil, fmt.Errorf("cg: plan entry is for P=%d, want P=%d", dec.P, nprocs)
	}
	s.Done()
	if err := s.Err(); err != nil {
		return nil, err
	}
	return planFromDecomp(w, m, dec), nil
}

func sortAsc(s []int32) {
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}

// Diag returns the diagonal entry of A at vertex v.
func (p *Plan) Diag(w Workload, v int32) float64 {
	return w.Sigma + float64(p.Deg[v])
}

// ReferenceSolve runs the sequential CG and returns the solution digest and
// the final squared residual norm.
func ReferenceSolve(w Workload, p *Plan) (checksum, rho float64) {
	nv := p.NV
	x := make([]float64, nv)
	r := make([]float64, nv)
	pv := make([]float64, nv)
	q := make([]float64, nv)
	copy(r, p.B)
	copy(pv, p.B)
	rho = dotRef(p, r, r)
	for it := 0; it < w.Iters; it++ {
		// q = A p.
		for i := range q {
			q[i] = 0
		}
		for _, e := range p.M.Edges {
			a, b := e[0], e[1]
			q[a] -= pv[b]
			q[b] -= pv[a]
		}
		for v := 0; v < nv; v++ {
			if p.M.VertUsed(int32(v)) {
				q[v] += p.Diag(w, int32(v)) * pv[v]
			}
		}
		alpha := rho / dotRef(p, pv, q)
		for v := 0; v < nv; v++ {
			if p.M.VertUsed(int32(v)) {
				x[v] += alpha * pv[v]
				r[v] -= alpha * q[v]
			}
		}
		rho2 := dotRef(p, r, r)
		beta := rho2 / rho
		rho = rho2
		for v := 0; v < nv; v++ {
			if p.M.VertUsed(int32(v)) {
				pv[v] = r[v] + beta*pv[v]
			}
		}
	}
	s := 0.0
	for v := 0; v < nv; v++ {
		if p.M.VertUsed(int32(v)) {
			s += x[v]
		}
	}
	return s, rho
}

func dotRef(p *Plan, a, b []float64) float64 {
	s := 0.0
	for v := 0; v < p.NV; v++ {
		if p.M.VertUsed(int32(v)) {
			s += a[v] * b[v]
		}
	}
	return s
}
