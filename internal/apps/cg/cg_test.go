package cg

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func mach(p int) *machine.Machine { return machine.MustNew(machine.Default(p)) }

func TestReferenceConverges(t *testing.T) {
	w := Small()
	pl := BuildPlan(w, 1)
	_, rho := ReferenceSolve(w, pl)
	// Initial rho is ||b||²; after Iters CG steps on an SPD system the
	// residual must have dropped by orders of magnitude.
	rho0 := dotRef(pl, pl.B, pl.B)
	if rho >= rho0*1e-3 {
		t.Fatalf("CG barely converged: %v -> %v", rho0, rho)
	}
	if math.IsNaN(rho) {
		t.Fatal("residual NaN")
	}
}

func TestCrossModelChecksumsIdentical(t *testing.T) {
	w := Small()
	for _, procs := range []int{1, 3, 8} {
		pl := BuildPlan(w, procs)
		m := mach(procs)
		var sums, rhos [3]float64
		for i, model := range core.AllModels() {
			met := RunWithPlan(model, m, w, pl)
			sums[i] = met.Checksum
			rhos[i] = met.Extra["residual"]
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("P=%d: checksums differ: %v", procs, sums)
		}
		if rhos[0] != rhos[1] || rhos[1] != rhos[2] {
			t.Fatalf("P=%d: residuals differ: %v", procs, rhos)
		}
	}
}

func TestP1MatchesReferenceExactly(t *testing.T) {
	w := Small()
	pl := BuildPlan(w, 1)
	refCS, refRho := ReferenceSolve(w, pl)
	for _, model := range core.AllModels() {
		met := RunWithPlan(model, mach(1), w, pl)
		if met.Checksum != refCS || met.Extra["residual"] != refRho {
			t.Fatalf("%v: %v/%v != reference %v/%v",
				model, met.Checksum, met.Extra["residual"], refCS, refRho)
		}
	}
}

func TestParallelMatchesReferenceApprox(t *testing.T) {
	w := Small()
	pl1 := BuildPlan(w, 1)
	refCS, _ := ReferenceSolve(w, pl1)
	met := Run(core.SAS, mach(8), w)
	if rel := math.Abs(met.Checksum-refCS) / math.Abs(refCS); rel > 1e-8 {
		t.Fatalf("P=8 drift %v (%v vs %v)", rel, met.Checksum, refCS)
	}
}

func TestDeterministicTiming(t *testing.T) {
	w := Small()
	pl := BuildPlan(w, 4)
	for _, model := range core.AllModels() {
		a := RunWithPlan(model, mach(4), w, pl).Total
		b := RunWithPlan(model, mach(4), w, pl).Total
		if a != b {
			t.Fatalf("%v nondeterministic", model)
		}
	}
}

func TestReductionLatencyDominatesAtScale(t *testing.T) {
	// CG's signature: as P grows, the two allreduces per iteration become a
	// large share of MP's time (they cannot shrink with P).
	w := Default()
	met64 := RunWithPlan(core.MP, mach(64), w, BuildPlan(w, 64))
	syncFrac := met64.PhaseFraction(sim.PhaseSync)
	if syncFrac < 0.10 {
		t.Fatalf("MP CG at P=64 spends only %.0f%% in reductions", 100*syncFrac)
	}
	// And CC-SAS's cheaper reduction tree must beat MP overall.
	sas64 := RunWithPlan(core.SAS, mach(64), w, BuildPlan(w, 64))
	if sas64.Total >= met64.Total {
		t.Fatalf("CC-SAS CG (%v) not ahead of MP (%v) at P=64", sas64.Total, met64.Total)
	}
}

func TestSpeedup(t *testing.T) {
	w := Default()
	for _, model := range core.AllModels() {
		t1 := RunWithPlan(model, mach(1), w, BuildPlan(w, 1)).Total
		t16 := RunWithPlan(model, mach(16), w, BuildPlan(w, 16)).Total
		if sp := float64(t1) / float64(t16); sp < 3 {
			t.Errorf("%v: CG speedup %.2f at P=16", model, sp)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	w := Small()
	pl := BuildPlan(w, 8)
	m := mach(8)
	mpB := RunWithPlan(core.MP, m, w, pl).DataBytes
	saB := RunWithPlan(core.SAS, m, w, pl).DataBytes
	if saB >= mpB {
		t.Fatalf("memory ordering: sas %d !< mp %d", saB, mpB)
	}
}
