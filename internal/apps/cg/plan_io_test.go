package cg

// Round-trip and corruption properties of the CG plan payloads (refined
// mesh + partitioning decision).

import (
	"reflect"
	"testing"
)

func TestPlanRoundTripDeepEqual(t *testing.T) {
	w := Small()
	m := BuildMesh(w)
	p := PlanForMesh(w, m, 4)
	p2, err := DecodePlan(EncodePlan(p), w, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatal("cg plan round trip is not DeepEqual")
	}
	// The one-shot builder agrees with the two-stage path.
	if !reflect.DeepEqual(BuildPlan(w, 4), p2) {
		t.Fatal("BuildPlan and the decoded plan disagree")
	}
}

func TestPlanRejectsWrongProcs(t *testing.T) {
	w := Small()
	m := BuildMesh(w)
	data := EncodePlan(PlanForMesh(w, m, 4))
	if _, err := DecodePlan(data, w, m, 8); err == nil {
		t.Fatal("plan for P=4 was accepted at P=8")
	}
}

// Any single bit flip must decode to an error or a value — never a panic.
func TestPlanBitFlipsNeverPanic(t *testing.T) {
	w := Small()
	m := BuildMesh(w)
	data := EncodePlan(PlanForMesh(w, m, 4))
	step := len(data)/150 + 1
	for pos := 0; pos < len(data); pos += step {
		c := append([]byte(nil), data...)
		c[pos] ^= 1 << (pos % 8)
		DecodePlan(c, w, m, 4) // must not panic
	}
}
