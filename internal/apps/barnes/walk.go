package barnes

import (
	"math"

	"o2k/internal/nbody"
	"o2k/internal/numa"
)

// replayWalk charges body i's force-walk loads from the precomputed trace —
// the exact access sequence the cursor walker (below) would issue, with the
// traversal logic and physics paid once in WalkPlan.build instead of once
// per model per processor count. Entry e >= 0 loads body e's x/y/m; entry
// e < 0 loads cell ^e's three centre-of-mass words.
func replayWalk(wp *WalkPlan, i int, cx, cy, cm, ccl *numa.Cursor[float64]) {
	numa.ReplayLoads(wp.Trace[wp.Off[i]:wp.Off[i+1]], cx, cy, cm, ccl)
}

// treeWalker runs the Barnes-Hut traversal against cursor-based readers.
// nbody.(*Tree).Accel takes func-valued readers so each model can charge its
// own memory costs, but that indirect call per interaction dominates
// full-scale profiles; with concrete cursors the costed loads inline straight
// into the loop. Arithmetic and traversal order are identical to nbody.Accel
// (walk_test.go checks them value-for-value), and the traversal stack is
// reused across bodies. The production force loops replay the precomputed
// trace instead (replayWalk); the walker remains as the differential
// reference that pins the trace to the real traversal.
type treeWalker struct {
	stack []int32
}

func (wk *treeWalker) accel(t *nbody.Tree, self int32, bx, by, theta float64,
	cx, cy, cm, ccl *numa.Cursor[float64]) (ax, ay float64, inter int) {

	stack := wk.stack[:0]
	stack = append(stack, t.Root)
	tt := theta * theta // hoisted; (theta*theta)*d2 is the original association
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cell := &t.Cells[c]
		if cell.NBody == 0 {
			continue
		}
		if cell.Bodies != nil {
			for _, j := range cell.Bodies {
				if j == self {
					continue
				}
				ji := int(j)
				jx, ok := cx.TryLoad(ji)
				if !ok {
					if jx, ok = cx.TryProbe(ji); !ok {
						jx = cx.LoadMiss(ji)
					}
				}
				jy, ok := cy.TryLoad(ji)
				if !ok {
					if jy, ok = cy.TryProbe(ji); !ok {
						jy = cy.LoadMiss(ji)
					}
				}
				jm, ok := cm.TryLoad(ji)
				if !ok {
					if jm, ok = cm.TryProbe(ji); !ok {
						jm = cm.LoadMiss(ji)
					}
				}
				dx, dy := jx-bx, jy-by
				d2 := dx*dx + dy*dy + nbody.Soft2
				inv := 1 / (d2 * math.Sqrt(d2))
				ax += nbody.G * jm * dx * inv
				ay += nbody.G * jm * dy * inv
				inter++
			}
			continue
		}
		ci := int(3 * c)
		ccx, ok := ccl.TryLoad(ci)
		if !ok {
			if ccx, ok = ccl.TryProbe(ci); !ok {
				ccx = ccl.LoadMiss(ci)
			}
		}
		ccy, ok := ccl.TryLoad(ci + 1)
		if !ok {
			if ccy, ok = ccl.TryProbe(ci + 1); !ok {
				ccy = ccl.LoadMiss(ci + 1)
			}
		}
		ccm, ok := ccl.TryLoad(ci + 2)
		if !ok {
			if ccm, ok = ccl.TryProbe(ci + 2); !ok {
				ccm = ccl.LoadMiss(ci + 2)
			}
		}
		dx, dy := ccx-bx, ccy-by
		d2 := dx*dx + dy*dy
		if cell.Size*cell.Size < tt*d2 {
			d2 += nbody.Soft2
			inv := 1 / (d2 * math.Sqrt(d2))
			ax += nbody.G * ccm * dx * inv
			ay += nbody.G * ccm * dy * inv
			inter++
			continue
		}
		// Push children in reverse quadrant order so they pop in order.
		for q := 3; q >= 0; q-- {
			if ch := cell.Child[q]; ch >= 0 {
				stack = append(stack, ch)
			}
		}
	}
	wk.stack = stack
	return ax, ay, inter
}
