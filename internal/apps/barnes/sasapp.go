package barnes

// Cache-coherent shared-address-space Barnes-Hut: one shared copy of the
// body arrays (first-touch placed by the step-0 cost zones) and of each
// step's tree. Tree construction parallelizes trivially (each processor
// fills its block of cells); force evaluation reads remote bodies and cells
// through the memory system, paying coherence misses where bodies moved —
// there is no exchange phase at all, just barriers.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
)

type sasState struct {
	x, y, vx, vy, m *numa.Array[float64]
}

func runSAS(mach *machine.Machine, w Workload, plans []*StepPlan, g *sim.Group) core.Metrics {
	sp := numa.NewSpace(mach)
	world := sas.NewWorld(mach, sp)

	st := &sasState{
		x:  sas.NewArray[float64](world, w.N),
		y:  sas.NewArray[float64](world, w.N),
		vx: sas.NewArray[float64](world, w.N),
		vy: sas.NewArray[float64](world, w.N),
		m:  sas.NewArray[float64](world, w.N),
	}
	firstOwner := plans[0].Owner
	place := func(e int) int { return int(firstOwner[e]) }
	st.x.PlaceByElem(place)
	st.y.PlaceByElem(place)
	st.vx.PlaceByElem(place)
	st.vy.PlaceByElem(place)
	st.m.PlaceByElem(place)

	b0 := nbody.NewPlummer(w.N, w.Seed)
	g.Run(func(p *sim.Proc) {
		c := world.Ctx(p)
		own := plans[0].OwnedBodies[c.ID()]
		vals := make([]float64, 5*len(own))
		for k, i := range own {
			vals[5*k] = b0.X[i]
			vals[5*k+1] = b0.Y[i]
			vals[5*k+2] = b0.VX[i]
			vals[5*k+3] = b0.VY[i]
			vals[5*k+4] = b0.M[i]
		}
		numa.ScatterFields(p, []*numa.Array[float64]{st.x, st.y, st.vx, st.vy, st.m}, own, vals)
		c.Barrier()
	})

	var checksum float64
	for _, pl := range plans {
		cells := sas.NewArray[float64](world, 3*pl.Tree.NumCells())
		cells.PlaceBlock()
		g.Run(func(p *sim.Proc) {
			cs := sasStep(world.Ctx(p), mach, w, pl, st, cells)
			if p.ID() == 0 {
				checksum = cs
			}
		})
		// The cell array dies with the step; its write-sets merged at the
		// step's final barrier.
		numa.Release(cells)
	}
	return finishMetrics(core.SAS, g, sp, w, plans, mach, checksum)
}

func sasStep(c *sas.Ctx, mach *machine.Machine, w Workload, pl *StepPlan,
	s *sasState, cells *numa.Array[float64]) float64 {

	me := c.ID()
	p := c.P
	opNS := mach.Cfg.OpNS
	t := pl.Tree

	// --- tree: parallel build — each processor does 1/P of the insertion
	// work and fills its block of the shared cell array.
	chargeOps(p, mach, sim.PhaseTree, treeOps*w.N*treeLevels(w.N)/c.Size())
	phT := p.SetPhase(sim.PhaseTree)
	lo, hi := c.Range(t.NumCells())
	for cc := lo; cc < hi; cc++ {
		cell := &t.Cells[cc]
		cells.Store3At(p, 3*cc, cell.CX, cell.CY, cell.CM)
	}
	p.SetPhase(phT)
	c.Barrier()

	// --- partition
	chargePartitionStep(p, mach, w, c.Size())

	// --- force: read bodies and cells straight out of shared memory, through
	// cursors so the whole tree walk charges one Advance per body list. The
	// traversal itself is replayed from the plan's precomputed trace.
	p.SetPhase(sim.PhaseCompute)
	cx, cy, cm := s.x.Cursor(p), s.y.Cursor(p), s.m.Cursor(p)
	ccl := cells.Cursor(p)
	own := pl.OwnedBodies[me]
	wp := pl.Walk.Ensure()
	interTot := 0
	for _, i := range own {
		j := int(i)
		if !cx.TryTouch(j) {
			cx.TouchMiss(j)
		}
		if !cy.TryTouch(j) {
			cy.TouchMiss(j)
		}
		replayWalk(wp, j, &cx, &cy, &cm, &ccl)
		interTot += pl.Inter[j]
	}
	cx.Flush()
	cy.Flush()
	cm.Flush()
	ccl.Flush()
	p.Advance(sim.Time(interTot*forceOps) * opNS)
	// Everyone must finish reading positions before owners overwrite them.
	c.Barrier()

	// --- update owned bodies in place; the closing barrier publishes the
	// new positions (and invalidates stale cached copies elsewhere).
	cvx, cvy := s.vx.Cursor(p), s.vy.Cursor(p)
	for _, i := range own {
		j := int(i)
		nvx := cvx.Load(j) + wp.AX[j]*nbody.DT
		nvy := cvy.Load(j) + wp.AY[j]*nbody.DT
		cvx.Store(j, nvx)
		cvy.Store(j, nvy)
		cx.Store(j, cx.Load(j)+nvx*nbody.DT)
		cy.Store(j, cy.Load(j)+nvy*nbody.DT)
	}
	cvx.Flush()
	cvy.Flush()
	cx.Flush()
	cy.Flush()
	p.Advance(sim.Time(len(own)*updateOps) * opNS)
	c.Barrier()

	sum := 0.0
	for _, i := range own {
		sum += cx.Load(int(i)) + 2*cy.Load(int(i))
	}
	cx.Flush()
	cy.Flush()
	return sas.Allreduce1(c, sum, sas.OpSum)
}
