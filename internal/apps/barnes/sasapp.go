package barnes

// Cache-coherent shared-address-space Barnes-Hut: one shared copy of the
// body arrays (first-touch placed by the step-0 cost zones) and of each
// step's tree. Tree construction parallelizes trivially (each processor
// fills its block of cells); force evaluation reads remote bodies and cells
// through the memory system, paying coherence misses where bodies moved —
// there is no exchange phase at all, just barriers.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
)

type sasState struct {
	x, y, vx, vy, m *numa.Array[float64]
}

func runSAS(mach *machine.Machine, w Workload, plans []*StepPlan, g *sim.Group) core.Metrics {
	sp := numa.NewSpace(mach)
	world := sas.NewWorld(mach, sp)

	st := &sasState{
		x:  sas.NewArray[float64](world, w.N),
		y:  sas.NewArray[float64](world, w.N),
		vx: sas.NewArray[float64](world, w.N),
		vy: sas.NewArray[float64](world, w.N),
		m:  sas.NewArray[float64](world, w.N),
	}
	firstOwner := plans[0].Owner
	place := func(e int) int { return int(firstOwner[e]) }
	st.x.PlaceByElem(place)
	st.y.PlaceByElem(place)
	st.vx.PlaceByElem(place)
	st.vy.PlaceByElem(place)
	st.m.PlaceByElem(place)

	b0 := nbody.NewPlummer(w.N, w.Seed)
	g.Run(func(p *sim.Proc) {
		c := world.Ctx(p)
		for _, i := range plans[0].OwnedBodies[c.ID()] {
			st.x.Store(p, int(i), b0.X[i])
			st.y.Store(p, int(i), b0.Y[i])
			st.vx.Store(p, int(i), b0.VX[i])
			st.vy.Store(p, int(i), b0.VY[i])
			st.m.Store(p, int(i), b0.M[i])
		}
		c.Barrier()
	})

	var checksum float64
	for _, pl := range plans {
		cells := sas.NewArray[float64](world, 3*pl.Tree.NumCells())
		cells.PlaceBlock()
		g.Run(func(p *sim.Proc) {
			cs := sasStep(world.Ctx(p), mach, w, pl, st, cells)
			if p.ID() == 0 {
				checksum = cs
			}
		})
	}
	return finishMetrics(core.SAS, g, sp, w, plans, mach, checksum)
}

func sasStep(c *sas.Ctx, mach *machine.Machine, w Workload, pl *StepPlan,
	s *sasState, cells *numa.Array[float64]) float64 {

	me := c.ID()
	p := c.P
	opNS := mach.Cfg.OpNS
	t := pl.Tree

	// --- tree: parallel build — each processor does 1/P of the insertion
	// work and fills its block of the shared cell array.
	chargeOps(p, mach, sim.PhaseTree, treeOps*w.N*treeLevels(w.N)/c.Size())
	phT := p.SetPhase(sim.PhaseTree)
	lo, hi := c.Range(t.NumCells())
	for cc := lo; cc < hi; cc++ {
		cell := &t.Cells[cc]
		cells.Store(p, 3*cc, cell.CX)
		cells.Store(p, 3*cc+1, cell.CY)
		cells.Store(p, 3*cc+2, cell.CM)
	}
	p.SetPhase(phT)
	c.Barrier()

	// --- partition
	chargePartitionStep(p, mach, w, c.Size())

	// --- force: read bodies and cells straight out of shared memory.
	p.SetPhase(sim.PhaseCompute)
	readBody := func(j int32) (float64, float64, float64) {
		return s.x.Load(p, int(j)), s.y.Load(p, int(j)), s.m.Load(p, int(j))
	}
	readCell := func(cc int32) (float64, float64, float64) {
		return cells.Load(p, int(3*cc)), cells.Load(p, int(3*cc+1)), cells.Load(p, int(3*cc+2))
	}
	own := pl.OwnedBodies[me]
	ax := make([]float64, len(own))
	ay := make([]float64, len(own))
	for k, i := range own {
		bx, by := s.x.Load(p, int(i)), s.y.Load(p, int(i))
		var inter int
		ax[k], ay[k], inter = t.Accel(i, bx, by, w.Theta, readBody, readCell)
		p.Advance(sim.Time(inter*forceOps) * opNS)
	}
	// Everyone must finish reading positions before owners overwrite them.
	c.Barrier()

	// --- update owned bodies in place; the closing barrier publishes the
	// new positions (and invalidates stale cached copies elsewhere).
	for k, i := range own {
		nvx := s.vx.Load(p, int(i)) + ax[k]*nbody.DT
		nvy := s.vy.Load(p, int(i)) + ay[k]*nbody.DT
		s.vx.Store(p, int(i), nvx)
		s.vy.Store(p, int(i), nvy)
		s.x.Store(p, int(i), s.x.Load(p, int(i))+nvx*nbody.DT)
		s.y.Store(p, int(i), s.y.Load(p, int(i))+nvy*nbody.DT)
		p.Advance(sim.Time(updateOps) * opNS)
	}
	c.Barrier()

	sum := 0.0
	for _, i := range own {
		sum += s.x.Load(p, int(i)) + 2*s.y.Load(p, int(i))
	}
	return sas.Allreduce1(c, sum, sas.OpSum)
}
