package barnes

import (
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func TestOwnershipShiftsAcrossSteps(t *testing.T) {
	// The whole reason this is an "adaptive" application: cost-zones
	// ownership must actually change as the cluster evolves.
	w := Default()
	plans := BuildPlans(w, 8)
	changed := 0
	for s := 1; s < len(plans); s++ {
		for i := 0; i < w.N; i++ {
			if plans[s].Owner[i] != plans[s-1].Owner[i] {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatal("ownership never shifted — workload is not adaptive")
	}
}

func TestCostZonesBalanceWork(t *testing.T) {
	// After the first step, partitions use real interaction counts; the
	// per-processor work imbalance must be modest.
	w := Default()
	plans := BuildPlans(w, 16)
	for s := 1; s < len(plans); s++ {
		pl := plans[s]
		imb := float64(pl.MaxProcWork) * 16 / float64(pl.TotalInter)
		if imb > 1.35 {
			t.Fatalf("step %d: interaction imbalance %.2f", s, imb)
		}
	}
}

func TestBarnesOnSMPAllModelsConverge(t *testing.T) {
	// On a flat-memory SMP the three models' times should bunch up much
	// closer than on the NUMA machine.
	w := Small()
	smp := machine.MustNew(machine.SMP(8))
	plans := BuildPlans(w, 8)
	var tot [3]sim.Time
	for i, model := range core.AllModels() {
		tot[i] = RunWithPlans(model, smp, w, plans).Total
	}
	worst := float64(tot[0])
	best := float64(tot[2])
	for _, x := range tot {
		if float64(x) > worst {
			worst = float64(x)
		}
		if float64(x) < best {
			best = float64(x)
		}
	}
	if worst/best > 2.5 {
		t.Fatalf("SMP spread too wide: %v", tot)
	}
}

func TestTreePhaseScalesOnlyForSAS(t *testing.T) {
	w := Small()
	p4 := BuildPlans(w, 4)
	p8 := BuildPlans(w, 8)
	m4, m8 := mach(4), mach(8)
	sas4 := RunWithPlans(core.SAS, m4, w, p4).PhaseMax[sim.PhaseTree]
	sas8 := RunWithPlans(core.SAS, m8, w, p8).PhaseMax[sim.PhaseTree]
	mp4 := RunWithPlans(core.MP, m4, w, p4).PhaseMax[sim.PhaseTree]
	mp8 := RunWithPlans(core.MP, m8, w, p8).PhaseMax[sim.PhaseTree]
	if !(float64(sas8) < 0.8*float64(sas4)) {
		t.Errorf("SAS tree phase did not scale: %v -> %v", sas4, sas8)
	}
	if float64(mp8) < 0.8*float64(mp4) {
		t.Errorf("MP replicated tree phase scaled unexpectedly: %v -> %v", mp4, mp8)
	}
}
