package barnes

import (
	"math"
	"testing"

	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func mach(p int) *machine.Machine { return machine.MustNew(machine.Default(p)) }

func TestPlansCoverAllBodies(t *testing.T) {
	w := Small()
	plans := BuildPlans(w, 4)
	if len(plans) != w.Steps {
		t.Fatalf("plan count %d", len(plans))
	}
	for _, pl := range plans {
		seen := make([]bool, w.N)
		for q := 0; q < 4; q++ {
			last := int32(-1)
			for _, i := range pl.OwnedBodies[q] {
				if seen[i] {
					t.Fatalf("body %d owned twice", i)
				}
				if i <= last {
					t.Fatal("owned list not ascending")
				}
				last = i
				seen[i] = true
				if pl.Owner[i] != int32(q) {
					t.Fatal("owner mismatch")
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("body %d unowned", i)
			}
		}
		if pl.TotalInter == 0 || pl.Tree.NumCells() == 0 {
			t.Fatal("empty plan")
		}
	}
}

func TestCrossModelChecksumsIdentical(t *testing.T) {
	w := Small()
	for _, procs := range []int{1, 3, 8} {
		m := mach(procs)
		plans := BuildPlans(w, procs)
		var sums [3]float64
		for i, model := range core.AllModels() {
			sums[i] = RunWithPlans(model, m, w, plans).Checksum
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("P=%d: checksums differ: %v %v %v", procs, sums[0], sums[1], sums[2])
		}
	}
}

func TestP1MatchesReferenceExactly(t *testing.T) {
	w := Small()
	ref := ReferenceChecksum(w)
	plans := BuildPlans(w, 1)
	for _, model := range core.AllModels() {
		got := RunWithPlans(model, mach(1), w, plans).Checksum
		if got != ref {
			t.Fatalf("%v at P=1: %v != %v", model, got, ref)
		}
	}
}

func TestParallelMatchesReferenceApprox(t *testing.T) {
	w := Small()
	ref := ReferenceChecksum(w)
	got := Run(core.SAS, mach(8), w).Checksum
	if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-9 {
		t.Fatalf("P=8 drift: %v vs %v", got, ref)
	}
}

func TestDeterministicTiming(t *testing.T) {
	w := Small()
	for _, model := range core.AllModels() {
		plans := BuildPlans(w, 5)
		a := RunWithPlans(model, mach(5), w, plans).Total
		b := RunWithPlans(model, mach(5), w, plans).Total
		if a != b {
			t.Fatalf("%v nondeterministic: %v vs %v", model, a, b)
		}
	}
}

func TestSpeedupAndContrasts(t *testing.T) {
	w := Default()
	p1Plans := BuildPlans(w, 1)
	p16Plans := BuildPlans(w, 16)
	m1, m16 := mach(1), mach(16)
	var t1, t16 [3]sim.Time
	var met16 [3]core.Metrics
	for i, model := range core.AllModels() {
		t1[i] = RunWithPlans(model, m1, w, p1Plans).Total
		met16[i] = RunWithPlans(model, m16, w, p16Plans)
		t16[i] = met16[i].Total
	}
	for i, model := range core.AllModels() {
		sp := float64(t1[i]) / float64(t16[i])
		if sp < 2 {
			t.Errorf("%v: speedup %.2f at P=16", model, sp)
		}
	}
	// SAS ahead of MP (replicated tree + allgather hurt MP).
	if !(t16[2] < t16[0]) {
		t.Errorf("SAS (%v) not faster than MP (%v) at P=16", t16[2], t16[0])
	}
	// SHMEM exchange cheaper than MP's.
	if !(met16[1].PhaseMax[sim.PhaseComm] < met16[0].PhaseMax[sim.PhaseComm]) {
		t.Errorf("SHMEM comm %v !< MP comm %v",
			met16[1].PhaseMax[sim.PhaseComm], met16[0].PhaseMax[sim.PhaseComm])
	}
	// SAS tree phase scales; MP's is replicated.
	if !(met16[2].PhaseMax[sim.PhaseTree] < met16[0].PhaseMax[sim.PhaseTree]) {
		t.Errorf("SAS tree %v !< MP tree %v",
			met16[2].PhaseMax[sim.PhaseTree], met16[0].PhaseMax[sim.PhaseTree])
	}
	// Memory: replicated vs shared.
	if !(met16[2].DataBytes < met16[0].DataBytes) {
		t.Error("SAS memory not smaller than MP")
	}
}

func TestMetricsExtras(t *testing.T) {
	w := Small()
	met := Run(core.MP, mach(4), w)
	if met.Extra["interactions_per_step"] <= 0 || met.Extra["tree_cells"] <= 0 {
		t.Fatalf("extras missing: %v", met.Extra)
	}
	if met.Extra["max_imbalance"] < 1 {
		t.Fatalf("imbalance < 1: %v", met.Extra["max_imbalance"])
	}
	if met.Counters.MsgsSent == 0 {
		t.Error("MP run sent no messages")
	}
}
