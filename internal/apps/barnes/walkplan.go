package barnes

import (
	"math"
	"sync"

	"o2k/internal/nbody"
)

// WalkPlan is the per-step force-walk oracle: the reference traversal's exact
// visit sequence plus the accelerations it produces. All three models walk
// the same tree over the same body positions in the same order — only the
// *memory charging* of the loads differs between them — so the traversal and
// the physics are computed once per structure step and every model (at every
// processor count) replays just the charges. See replayWalk.
//
// The trace is flat: Trace[Off[i]:Off[i+1]] lists body i's visits in stack
// order. An entry e >= 0 is a leaf-body interaction (loads of x[e], y[e],
// m[e]); an entry e < 0 is an internal-cell visit (loads of cells[3c..3c+2]
// for c = ^e), covering both opened and accepted cells — the walk reads a
// cell's centre of mass before deciding, so both charge.
//
// Built lazily on first use (the holder is shared across the plan sets every
// processor count derives from one structure) and never serialized: a warm
// structure rebuilds it from the captured positions and tree.
type WalkPlan struct {
	x, y, m []float64
	tree    *nbody.Tree
	theta   float64
	once    sync.Once

	AX, AY []float64 // per body, the step's reference accelerations
	Trace  []int32   // flattened visit sequences (see above)
	Off    []int32   // per body, Trace offsets; len = N+1
}

// newWalkPlan captures the inputs; the trace itself is built on first Ensure.
func newWalkPlan(x, y, m []float64, t *nbody.Tree, theta float64) *WalkPlan {
	return &WalkPlan{x: x, y: y, m: m, tree: t, theta: theta}
}

// Ensure builds the trace once and returns the receiver. Safe to call from
// concurrent simulated processors; the build is pure host work and charges
// nothing.
func (wp *WalkPlan) Ensure() *WalkPlan {
	wp.once.Do(wp.build)
	return wp
}

// build replays nbody.Accel's traversal for every body, recording the visit
// sequence and accumulating the accelerations with the identical arithmetic
// and association (walk_test.go checks both against the cursor walker
// value-for-value).
func (wp *WalkPlan) build() {
	t := wp.tree
	n := len(wp.x)
	wp.AX = make([]float64, n)
	wp.AY = make([]float64, n)
	wp.Off = make([]int32, n+1)
	trace := make([]int32, 0, 32*n)
	stack := make([]int32, 0, 64)
	tt := wp.theta * wp.theta
	for i := 0; i < n; i++ {
		bx, by := wp.x[i], wp.y[i]
		self := int32(i)
		var ax, ay float64
		stack = append(stack[:0], t.Root)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cell := &t.Cells[c]
			if cell.NBody == 0 {
				continue
			}
			if cell.Bodies != nil {
				for _, j := range cell.Bodies {
					if j == self {
						continue
					}
					trace = append(trace, j)
					dx, dy := wp.x[j]-bx, wp.y[j]-by
					d2 := dx*dx + dy*dy + nbody.Soft2
					inv := 1 / (d2 * math.Sqrt(d2))
					ax += nbody.G * wp.m[j] * dx * inv
					ay += nbody.G * wp.m[j] * dy * inv
				}
				continue
			}
			trace = append(trace, ^c)
			dx, dy := cell.CX-bx, cell.CY-by
			d2 := dx*dx + dy*dy
			if cell.Size*cell.Size < tt*d2 {
				d2 += nbody.Soft2
				inv := 1 / (d2 * math.Sqrt(d2))
				ax += nbody.G * cell.CM * dx * inv
				ay += nbody.G * cell.CM * dy * inv
				continue
			}
			// Push children in reverse quadrant order so they pop in order.
			for q := 3; q >= 0; q-- {
				if ch := cell.Child[q]; ch >= 0 {
					stack = append(stack, ch)
				}
			}
		}
		wp.AX[i], wp.AY[i] = ax, ay
		wp.Off[i+1] = int32(len(trace))
	}
	wp.Trace = trace
}
