package barnes

// Message-passing Barnes-Hut: the classic replicated-data organization.
// Every rank keeps a full private copy of the body arrays and the tree's
// centre-of-mass data; each step it rebuilds the (replicated) tree, computes
// forces for its cost-zone, integrates its bodies, and allgathers the
// updated body state so every rank is again globally consistent.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

type mpState struct {
	x, y, vx, vy, m *numa.Array[float64]
}

func runMP(mach *machine.Machine, w Workload, plans []*StepPlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	world := mp.NewWorld(mach)
	sp := numa.NewSpace(mach)
	b0 := nbody.NewPlummer(w.N, w.Seed)

	st := make([]*mpState, nprocs)
	for q := 0; q < nprocs; q++ {
		st[q] = &mpState{
			x:  numa.NewPrivate[float64](sp, q, w.N),
			y:  numa.NewPrivate[float64](sp, q, w.N),
			vx: numa.NewPrivate[float64](sp, q, w.N),
			vy: numa.NewPrivate[float64](sp, q, w.N),
			m:  numa.NewPrivate[float64](sp, q, w.N),
		}
	}

	// Replicated initialization: every rank fills its full copy.
	g.Run(func(p *sim.Proc) {
		s := st[p.ID()]
		cx, cy := s.x.Cursor(p), s.y.Cursor(p)
		cvx, cvy := s.vx.Cursor(p), s.vy.Cursor(p)
		cm := s.m.Cursor(p)
		for i := 0; i < w.N; i++ {
			cx.Store(i, b0.X[i])
			cy.Store(i, b0.Y[i])
			cvx.Store(i, b0.VX[i])
			cvy.Store(i, b0.VY[i])
			cm.Store(i, b0.M[i])
		}
		cx.Flush()
		cy.Flush()
		cvx.Flush()
		cvy.Flush()
		cm.Flush()
	})

	var checksum float64
	for _, pl := range plans {
		cells := make([]*numa.Array[float64], nprocs)
		for q := 0; q < nprocs; q++ {
			cells[q] = numa.NewPrivate[float64](sp, q, 3*pl.Tree.NumCells())
		}
		// The cell centre-of-mass values are identical on every rank; flatten
		// them once host-side so each rank stores them as one range.
		flat := flattenCells(pl.Tree)
		g.Run(func(p *sim.Proc) {
			cs := mpStep(world.Rank(p), mach, w, pl, st[p.ID()], cells[p.ID()], flat)
			if p.ID() == 0 {
				checksum = cs
			}
		})
		for q := 0; q < nprocs; q++ {
			numa.Release(cells[q])
		}
	}
	return finishMetrics(core.MP, g, sp, w, plans, mach, checksum)
}

// flattenCells packs the tree's centre-of-mass records as (cx, cy, cm)
// triples — the value stream every replicated-tree store loop writes.
func flattenCells(t *nbody.Tree) []float64 {
	flat := make([]float64, 3*t.NumCells())
	for c := 0; c < t.NumCells(); c++ {
		cc := &t.Cells[c]
		flat[3*c] = cc.CX
		flat[3*c+1] = cc.CY
		flat[3*c+2] = cc.CM
	}
	return flat
}

func mpStep(r *mp.Rank, mach *machine.Machine, w Workload, pl *StepPlan,
	s *mpState, cells *numa.Array[float64], flat []float64) float64 {

	me := r.ID()
	p := r.P
	opNS := mach.Cfg.OpNS

	// --- tree: replicated build — every rank inserts every body and stores
	// every cell's centre of mass (one span store: same ascending element
	// order as the per-cell loop).
	chargeOps(p, mach, sim.PhaseTree, treeOps*w.N*treeLevels(w.N))
	phT := p.SetPhase(sim.PhaseTree)
	cells.StoreRange(p, 0, flat)
	p.SetPhase(phT)

	// --- partition
	chargePartitionStep(p, mach, w, r.Size())

	// --- force: replay the plan's precomputed traversal trace, charging each
	// load against this rank's private copies.
	p.SetPhase(sim.PhaseCompute)
	cx, cy, cm := s.x.Cursor(p), s.y.Cursor(p), s.m.Cursor(p)
	ccl := cells.Cursor(p)
	own := pl.OwnedBodies[me]
	wp := pl.Walk.Ensure()
	interTot := 0
	for _, i := range own {
		j := int(i)
		if !cx.TryTouch(j) {
			cx.TouchMiss(j)
		}
		if !cy.TryTouch(j) {
			cy.TouchMiss(j)
		}
		replayWalk(wp, j, &cx, &cy, &cm, &ccl)
		interTot += pl.Inter[j]
	}
	cm.Flush()
	ccl.Flush()
	p.Advance(sim.Time(interTot*forceOps) * opNS)

	// --- update owned bodies (leapfrog).
	cvx, cvy := s.vx.Cursor(p), s.vy.Cursor(p)
	for _, i := range own {
		j := int(i)
		vx := cvx.Load(j) + wp.AX[j]*nbody.DT
		vy := cvy.Load(j) + wp.AY[j]*nbody.DT
		cvx.Store(j, vx)
		cvy.Store(j, vy)
		cx.Store(j, cx.Load(j)+vx*nbody.DT)
		cy.Store(j, cy.Load(j)+vy*nbody.DT)
	}
	p.Advance(sim.Time(len(own)*updateOps) * opNS)

	// --- exchange: allgather updated body state; unpack foreign entries.
	cx.Flush()
	cy.Flush()
	cvx.Flush()
	cvy.Flush()
	phC := p.SetPhase(sim.PhaseComm)
	fields := []*numa.Array[float64]{s.x, s.y, s.vx, s.vy}
	vals := make([]float64, 4*len(own))
	numa.GatherFields(p, fields, own, vals)
	all, offs := mp.Allgatherv(r, vals)
	for q := 0; q < r.Size(); q++ {
		if q == me {
			continue
		}
		numa.ScatterFields(p, fields, pl.OwnedBodies[q], all[offs[q]:])
	}
	p.SetPhase(phC)

	sum := 0.0
	for _, i := range own {
		sum += cx.Load(int(i)) + 2*cy.Load(int(i))
	}
	cx.Flush()
	cy.Flush()
	return mp.Allreduce1(r, sum, mp.OpSum)
}
