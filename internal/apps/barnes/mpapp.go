package barnes

// Message-passing Barnes-Hut: the classic replicated-data organization.
// Every rank keeps a full private copy of the body arrays and the tree's
// centre-of-mass data; each step it rebuilds the (replicated) tree, computes
// forces for its cost-zone, integrates its bodies, and allgathers the
// updated body state so every rank is again globally consistent.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/mp"
	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

type mpState struct {
	x, y, vx, vy, m *numa.Array[float64]
}

func runMP(mach *machine.Machine, w Workload, plans []*StepPlan, g *sim.Group) core.Metrics {
	nprocs := mach.Procs()
	world := mp.NewWorld(mach)
	sp := numa.NewSpace(mach)
	b0 := nbody.NewPlummer(w.N, w.Seed)

	st := make([]*mpState, nprocs)
	for q := 0; q < nprocs; q++ {
		st[q] = &mpState{
			x:  numa.NewPrivate[float64](sp, q, w.N),
			y:  numa.NewPrivate[float64](sp, q, w.N),
			vx: numa.NewPrivate[float64](sp, q, w.N),
			vy: numa.NewPrivate[float64](sp, q, w.N),
			m:  numa.NewPrivate[float64](sp, q, w.N),
		}
	}

	// Replicated initialization: every rank fills its full copy.
	g.Run(func(p *sim.Proc) {
		s := st[p.ID()]
		for i := 0; i < w.N; i++ {
			s.x.Store(p, i, b0.X[i])
			s.y.Store(p, i, b0.Y[i])
			s.vx.Store(p, i, b0.VX[i])
			s.vy.Store(p, i, b0.VY[i])
			s.m.Store(p, i, b0.M[i])
		}
	})

	var checksum float64
	for _, pl := range plans {
		cells := make([]*numa.Array[float64], nprocs)
		for q := 0; q < nprocs; q++ {
			cells[q] = numa.NewPrivate[float64](sp, q, 3*pl.Tree.NumCells())
		}
		g.Run(func(p *sim.Proc) {
			cs := mpStep(world.Rank(p), mach, w, pl, st[p.ID()], cells[p.ID()])
			if p.ID() == 0 {
				checksum = cs
			}
		})
	}
	return finishMetrics(core.MP, g, sp, w, plans, mach, checksum)
}

func mpStep(r *mp.Rank, mach *machine.Machine, w Workload, pl *StepPlan,
	s *mpState, cells *numa.Array[float64]) float64 {

	me := r.ID()
	p := r.P
	opNS := mach.Cfg.OpNS
	t := pl.Tree

	// --- tree: replicated build — every rank inserts every body and stores
	// every cell's centre of mass.
	chargeOps(p, mach, sim.PhaseTree, treeOps*w.N*treeLevels(w.N))
	phT := p.SetPhase(sim.PhaseTree)
	for c := 0; c < t.NumCells(); c++ {
		cc := &t.Cells[c]
		cells.Store(p, 3*c, cc.CX)
		cells.Store(p, 3*c+1, cc.CY)
		cells.Store(p, 3*c+2, cc.CM)
	}
	p.SetPhase(phT)

	// --- partition
	chargePartitionStep(p, mach, w, r.Size())

	// --- force
	p.SetPhase(sim.PhaseCompute)
	readBody := func(j int32) (float64, float64, float64) {
		return s.x.Load(p, int(j)), s.y.Load(p, int(j)), s.m.Load(p, int(j))
	}
	readCell := func(c int32) (float64, float64, float64) {
		return cells.Load(p, int(3*c)), cells.Load(p, int(3*c+1)), cells.Load(p, int(3*c+2))
	}
	own := pl.OwnedBodies[me]
	ax := make([]float64, len(own))
	ay := make([]float64, len(own))
	for k, i := range own {
		bx, by := s.x.Load(p, int(i)), s.y.Load(p, int(i))
		var inter int
		ax[k], ay[k], inter = t.Accel(i, bx, by, w.Theta, readBody, readCell)
		p.Advance(sim.Time(inter*forceOps) * opNS)
	}

	// --- update owned bodies (leapfrog).
	for k, i := range own {
		vx := s.vx.Load(p, int(i)) + ax[k]*nbody.DT
		vy := s.vy.Load(p, int(i)) + ay[k]*nbody.DT
		s.vx.Store(p, int(i), vx)
		s.vy.Store(p, int(i), vy)
		s.x.Store(p, int(i), s.x.Load(p, int(i))+vx*nbody.DT)
		s.y.Store(p, int(i), s.y.Load(p, int(i))+vy*nbody.DT)
		p.Advance(sim.Time(updateOps) * opNS)
	}

	// --- exchange: allgather updated body state; unpack foreign entries.
	phC := p.SetPhase(sim.PhaseComm)
	vals := make([]float64, 4*len(own))
	for k, i := range own {
		vals[4*k] = s.x.Load(p, int(i))
		vals[4*k+1] = s.y.Load(p, int(i))
		vals[4*k+2] = s.vx.Load(p, int(i))
		vals[4*k+3] = s.vy.Load(p, int(i))
	}
	all, offs := mp.Allgatherv(r, vals)
	for q := 0; q < r.Size(); q++ {
		if q == me {
			continue
		}
		base := offs[q]
		for k, i := range pl.OwnedBodies[q] {
			s.x.Store(p, int(i), all[base+4*k])
			s.y.Store(p, int(i), all[base+4*k+1])
			s.vx.Store(p, int(i), all[base+4*k+2])
			s.vy.Store(p, int(i), all[base+4*k+3])
		}
	}
	p.SetPhase(phC)

	sum := 0.0
	for _, i := range own {
		sum += s.x.Load(p, int(i)) + 2*s.y.Load(p, int(i))
	}
	return mp.Allreduce1(r, sum, mp.OpSum)
}
