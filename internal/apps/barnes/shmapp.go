package barnes

// One-sided (SHMEM) Barnes-Hut: the same replicated-data decomposition as
// MP, but the per-step state exchange is a one-sided collect — no matching
// receives, far lower per-transfer overhead — and symmetric allocation
// replaces explicit buffer management.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
)

type shmState struct {
	x, y, vx, vy, m *shm.Sym[float64]
}

func runSHMEM(mach *machine.Machine, w Workload, plans []*StepPlan, g *sim.Group) core.Metrics {
	sp := numa.NewSpace(mach)
	world := shm.NewWorld(mach, sp)
	b0 := nbody.NewPlummer(w.N, w.Seed)

	st := &shmState{
		x:  shm.AllocWorld[float64](world, w.N),
		y:  shm.AllocWorld[float64](world, w.N),
		vx: shm.AllocWorld[float64](world, w.N),
		vy: shm.AllocWorld[float64](world, w.N),
		m:  shm.AllocWorld[float64](world, w.N),
	}
	g.Run(func(p *sim.Proc) {
		pe := world.PE(p)
		cx, cy := st.x.Local(pe).Cursor(p), st.y.Local(pe).Cursor(p)
		cvx, cvy := st.vx.Local(pe).Cursor(p), st.vy.Local(pe).Cursor(p)
		cm := st.m.Local(pe).Cursor(p)
		for i := 0; i < w.N; i++ {
			cx.Store(i, b0.X[i])
			cy.Store(i, b0.Y[i])
			cvx.Store(i, b0.VX[i])
			cvy.Store(i, b0.VY[i])
			cm.Store(i, b0.M[i])
		}
		cx.Flush()
		cy.Flush()
		cvx.Flush()
		cvy.Flush()
		cm.Flush()
	})

	var checksum float64
	for _, pl := range plans {
		cells := shm.AllocWorld[float64](world, 3*pl.Tree.NumCells())
		flat := flattenCells(pl.Tree)
		g.Run(func(p *sim.Proc) {
			cs := shmStep(world.PE(p), mach, w, pl, st, cells, flat)
			if p.ID() == 0 {
				checksum = cs
			}
		})
		shm.Free(cells)
	}
	return finishMetrics(core.SHMEM, g, sp, w, plans, mach, checksum)
}

func shmStep(pe *shm.PE, mach *machine.Machine, w Workload, pl *StepPlan,
	s *shmState, cells *shm.Sym[float64], flat []float64) float64 {

	me := pe.ID()
	p := pe.P
	opNS := mach.Cfg.OpNS
	x, y := s.x.Local(pe), s.y.Local(pe)
	vx, vy, m := s.vx.Local(pe), s.vy.Local(pe), s.m.Local(pe)
	cl := cells.Local(pe)

	// --- tree: replicated build into the local symmetric block (one span
	// store: same ascending element order as the per-cell loop).
	chargeOps(p, mach, sim.PhaseTree, treeOps*w.N*treeLevels(w.N))
	phT := p.SetPhase(sim.PhaseTree)
	cl.StoreRange(p, 0, flat)
	p.SetPhase(phT)

	// --- partition
	chargePartitionStep(p, mach, w, pe.Size())

	// --- force: replay the plan's precomputed traversal trace against the
	// local symmetric blocks.
	p.SetPhase(sim.PhaseCompute)
	cx, cy, cm := x.Cursor(p), y.Cursor(p), m.Cursor(p)
	ccl := cl.Cursor(p)
	own := pl.OwnedBodies[me]
	wp := pl.Walk.Ensure()
	interTot := 0
	for _, i := range own {
		j := int(i)
		if !cx.TryTouch(j) {
			cx.TouchMiss(j)
		}
		if !cy.TryTouch(j) {
			cy.TouchMiss(j)
		}
		replayWalk(wp, j, &cx, &cy, &cm, &ccl)
		interTot += pl.Inter[j]
	}
	cm.Flush()
	ccl.Flush()
	p.Advance(sim.Time(interTot*forceOps) * opNS)

	// --- update owned bodies.
	cvx, cvy := vx.Cursor(p), vy.Cursor(p)
	for _, i := range own {
		j := int(i)
		nvx := cvx.Load(j) + wp.AX[j]*nbody.DT
		nvy := cvy.Load(j) + wp.AY[j]*nbody.DT
		cvx.Store(j, nvx)
		cvy.Store(j, nvy)
		cx.Store(j, cx.Load(j)+nvx*nbody.DT)
		cy.Store(j, cy.Load(j)+nvy*nbody.DT)
	}
	p.Advance(sim.Time(len(own)*updateOps) * opNS)
	cx.Flush()
	cy.Flush()
	cvx.Flush()
	cvy.Flush()

	// --- exchange: one-sided collect of the updated state; unpack foreign.
	phC := p.SetPhase(sim.PhaseComm)
	fields := []*numa.Array[float64]{x, y, vx, vy}
	vals := make([]float64, 4*len(own))
	numa.GatherFields(p, fields, own, vals)
	all, offs := shm.Collect(pe, vals)
	for q := 0; q < pe.Size(); q++ {
		if q == me {
			continue
		}
		numa.ScatterFields(p, fields, pl.OwnedBodies[q], all[offs[q]:])
	}
	p.SetPhase(phC)
	pe.Barrier()

	sum := 0.0
	for _, i := range own {
		sum += cx.Load(int(i)) + 2*cy.Load(int(i))
	}
	cx.Flush()
	cy.Flush()
	return shm.Allreduce1(pe, sum, shm.OpSum)
}
