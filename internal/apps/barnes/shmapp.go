package barnes

// One-sided (SHMEM) Barnes-Hut: the same replicated-data decomposition as
// MP, but the per-step state exchange is a one-sided collect — no matching
// receives, far lower per-transfer overhead — and symmetric allocation
// replaces explicit buffer management.

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/shm"
	"o2k/internal/sim"
)

type shmState struct {
	x, y, vx, vy, m *shm.Sym[float64]
}

func runSHMEM(mach *machine.Machine, w Workload, plans []*StepPlan, g *sim.Group) core.Metrics {
	sp := numa.NewSpace(mach)
	world := shm.NewWorld(mach, sp)
	b0 := nbody.NewPlummer(w.N, w.Seed)

	st := &shmState{
		x:  shm.AllocWorld[float64](world, w.N),
		y:  shm.AllocWorld[float64](world, w.N),
		vx: shm.AllocWorld[float64](world, w.N),
		vy: shm.AllocWorld[float64](world, w.N),
		m:  shm.AllocWorld[float64](world, w.N),
	}
	g.Run(func(p *sim.Proc) {
		pe := world.PE(p)
		for i := 0; i < w.N; i++ {
			st.x.Local(pe).Store(p, i, b0.X[i])
			st.y.Local(pe).Store(p, i, b0.Y[i])
			st.vx.Local(pe).Store(p, i, b0.VX[i])
			st.vy.Local(pe).Store(p, i, b0.VY[i])
			st.m.Local(pe).Store(p, i, b0.M[i])
		}
	})

	var checksum float64
	for _, pl := range plans {
		cells := shm.AllocWorld[float64](world, 3*pl.Tree.NumCells())
		g.Run(func(p *sim.Proc) {
			cs := shmStep(world.PE(p), mach, w, pl, st, cells)
			if p.ID() == 0 {
				checksum = cs
			}
		})
	}
	return finishMetrics(core.SHMEM, g, sp, w, plans, mach, checksum)
}

func shmStep(pe *shm.PE, mach *machine.Machine, w Workload, pl *StepPlan,
	s *shmState, cells *shm.Sym[float64]) float64 {

	me := pe.ID()
	p := pe.P
	opNS := mach.Cfg.OpNS
	t := pl.Tree
	x, y := s.x.Local(pe), s.y.Local(pe)
	vx, vy, m := s.vx.Local(pe), s.vy.Local(pe), s.m.Local(pe)
	cl := cells.Local(pe)

	// --- tree: replicated build into the local symmetric block.
	chargeOps(p, mach, sim.PhaseTree, treeOps*w.N*treeLevels(w.N))
	phT := p.SetPhase(sim.PhaseTree)
	for c := 0; c < t.NumCells(); c++ {
		cc := &t.Cells[c]
		cl.Store(p, 3*c, cc.CX)
		cl.Store(p, 3*c+1, cc.CY)
		cl.Store(p, 3*c+2, cc.CM)
	}
	p.SetPhase(phT)

	// --- partition
	chargePartitionStep(p, mach, w, pe.Size())

	// --- force
	p.SetPhase(sim.PhaseCompute)
	readBody := func(j int32) (float64, float64, float64) {
		return x.Load(p, int(j)), y.Load(p, int(j)), m.Load(p, int(j))
	}
	readCell := func(c int32) (float64, float64, float64) {
		return cl.Load(p, int(3*c)), cl.Load(p, int(3*c+1)), cl.Load(p, int(3*c+2))
	}
	own := pl.OwnedBodies[me]
	ax := make([]float64, len(own))
	ay := make([]float64, len(own))
	for k, i := range own {
		bx, by := x.Load(p, int(i)), y.Load(p, int(i))
		var inter int
		ax[k], ay[k], inter = t.Accel(i, bx, by, w.Theta, readBody, readCell)
		p.Advance(sim.Time(inter*forceOps) * opNS)
	}

	// --- update owned bodies.
	for k, i := range own {
		nvx := vx.Load(p, int(i)) + ax[k]*nbody.DT
		nvy := vy.Load(p, int(i)) + ay[k]*nbody.DT
		vx.Store(p, int(i), nvx)
		vy.Store(p, int(i), nvy)
		x.Store(p, int(i), x.Load(p, int(i))+nvx*nbody.DT)
		y.Store(p, int(i), y.Load(p, int(i))+nvy*nbody.DT)
		p.Advance(sim.Time(updateOps) * opNS)
	}

	// --- exchange: one-sided collect of the updated state; unpack foreign.
	phC := p.SetPhase(sim.PhaseComm)
	vals := make([]float64, 4*len(own))
	for k, i := range own {
		vals[4*k] = x.Load(p, int(i))
		vals[4*k+1] = y.Load(p, int(i))
		vals[4*k+2] = vx.Load(p, int(i))
		vals[4*k+3] = vy.Load(p, int(i))
	}
	all, offs := shm.Collect(pe, vals)
	for q := 0; q < pe.Size(); q++ {
		if q == me {
			continue
		}
		base := offs[q]
		for k, i := range pl.OwnedBodies[q] {
			x.Store(p, int(i), all[base+4*k])
			y.Store(p, int(i), all[base+4*k+1])
			vx.Store(p, int(i), all[base+4*k+2])
			vy.Store(p, int(i), all[base+4*k+3])
		}
	}
	p.SetPhase(phC)
	pe.Barrier()

	sum := 0.0
	for _, i := range own {
		sum += x.Load(p, int(i)) + 2*y.Load(p, int(i))
	}
	return shm.Allreduce1(pe, sum, shm.OpSum)
}
