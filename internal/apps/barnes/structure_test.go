package barnes

// Round-trip and corruption properties of the reference-simulation payload.

import (
	"reflect"
	"testing"

	"o2k/internal/planio"
)

func TestStructureRoundTripDeepEqual(t *testing.T) {
	w := Workload{N: 200, Steps: 2, Theta: 0.7, Seed: 1}
	st := BuildStructure(w)
	st2, err := DecodeStructure(EncodeStructure(st), w)
	if err != nil {
		t.Fatal(err)
	}
	// Compare before deriving plans: the Morton-order memo is computed on
	// demand and is not part of the serialized form.
	if !reflect.DeepEqual(st, st2) {
		t.Fatal("structure round trip is not DeepEqual")
	}
	// Plans derived from the decoded structure match the built ones exactly.
	if !reflect.DeepEqual(st.Plans(4), st2.Plans(4)) {
		t.Fatal("plans derived from the decoded structure differ")
	}
}

func TestStructureRejectsWrongWorkload(t *testing.T) {
	w := Workload{N: 200, Steps: 2, Theta: 0.7, Seed: 1}
	data := EncodeStructure(BuildStructure(w))
	w2 := w
	w2.N++
	if _, err := DecodeStructure(data, w2); err == nil {
		t.Fatal("structure for a different N was accepted")
	}
	w3 := w
	w3.Steps++
	if _, err := DecodeStructure(data, w3); err == nil {
		t.Fatal("structure with a different step count was accepted")
	}
}

// Any single bit flip must decode to an error or a value — never a panic.
func TestStructureBitFlipsNeverPanic(t *testing.T) {
	w := Workload{N: 120, Steps: 2, Theta: 0.7, Seed: 1}
	data := EncodeStructure(BuildStructure(w))
	step := len(data)/150 + 1
	for pos := 0; pos < len(data); pos += step {
		c := append([]byte(nil), data...)
		c[pos] ^= 1 << (pos % 8)
		if st, err := DecodeStructure(c, w); err == nil && st != nil {
			st.Plans(2) // a silently-accepted flip must still derive plans
		}
	}
}

// The serialized forms carry their schema words up front, so a payload of
// one kind fed to the other decoder errors cleanly.
func TestStructureRejectsForeignPayload(t *testing.T) {
	var pw planio.Writer
	pw.Word("o2kdecomp")
	pw.Int(1)
	pw.End()
	if _, err := DecodeStructure(pw.Bytes(), Workload{N: 10, Steps: 1}); err == nil {
		t.Fatal("foreign payload accepted")
	}
}
