package barnes

import (
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

// Operation counts for the virtual cost model.
const (
	forceOps  = 14 // per interaction: distance, softened inverse-cube, two FMAs
	treeOps   = 26 // per body per tree level during construction
	partOps   = 18 // per body per sort level during cost-zones
	updateOps = 8  // per body leapfrog update
)

// Run executes the workload under the given model.
func Run(model core.Model, mach *machine.Machine, w Workload) core.Metrics {
	return RunWithPlans(model, mach, w, BuildPlans(w, mach.Procs()))
}

// RunWithPlans is Run with precomputed step plans (shareable across models).
func RunWithPlans(model core.Model, mach *machine.Machine, w Workload, plans []*StepPlan) core.Metrics {
	met, _ := runModel(model, mach, w, plans, false)
	return met
}

// TraceRun executes the workload like RunWithPlans but with phase-timeline
// tracing enabled, returning the processor group for sim.RenderTimeline or
// the obs exporters.
func TraceRun(model core.Model, mach *machine.Machine, w Workload, plans []*StepPlan) *sim.Group {
	_, g := runModel(model, mach, w, plans, true)
	return g
}

func runModel(model core.Model, mach *machine.Machine, w Workload, plans []*StepPlan, trace bool) (core.Metrics, *sim.Group) {
	g := sim.NewGroup(mach.Procs())
	if trace {
		g.EnableTrace()
	}
	switch model {
	case core.MP:
		return runMP(mach, w, plans, g), g
	case core.SHMEM:
		return runSHMEM(mach, w, plans, g), g
	case core.SAS:
		return runSAS(mach, w, plans, g), g
	}
	panic("barnes: unknown model")
}

func chargeOps(p *sim.Proc, mach *machine.Machine, ph sim.Phase, n int) {
	prev := p.SetPhase(ph)
	p.Advance(sim.Time(n) * mach.Cfg.OpNS)
	p.SetPhase(prev)
}

// treeLevels approximates the quadtree depth for cost charging.
func treeLevels(n int) int {
	l := 0
	for c := 1; c < n; c *= 4 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// chargePartitionStep bills the cost-zones computation: a parallel Morton
// sort with a serial coordination floor, identical across models.
func chargePartitionStep(p *sim.Proc, mach *machine.Machine, w Workload, nprocs int) {
	levels := mach.LogStages(max(w.N, 2))
	ops := (partOps*w.N*levels)/nprocs + 2*w.N
	chargeOps(p, mach, sim.PhasePartition, ops)
}

func finishMetrics(model core.Model, g *sim.Group, sp *numa.Space, w Workload, plans []*StepPlan, mach *machine.Machine, checksum float64) core.Metrics {
	met := core.Metrics{
		Model:    model,
		Procs:    g.Size(),
		Total:    g.MaxTime(),
		PhaseMax: g.MaxPhaseTime(),
		PhaseAvg: g.AvgPhaseTime(),
		Counters: g.TotalCounters(),
		Checksum: checksum,
		Extra:    map[string]float64{},
	}
	for _, ev := range sp.CohEvictions() {
		met.Counters.CohMisses += ev
	}
	totalInter, maxCells, imb := 0, 0, 1.0
	for _, pl := range plans {
		totalInter += pl.TotalInter
		if pl.Tree.NumCells() > maxCells {
			maxCells = pl.Tree.NumCells()
		}
		if pl.TotalInter > 0 {
			r := float64(pl.MaxProcWork) * float64(g.Size()) / float64(pl.TotalInter)
			if r > imb {
				imb = r
			}
		}
	}
	// Model-visible data memory: the MP and SHMEM codes replicate the body
	// arrays and the tree's centre-of-mass data on every process; CC-SAS
	// stores one shared copy.
	perCopy := (5*w.N + 3*maxCells) * 8
	switch model {
	case core.MP, core.SHMEM:
		met.DataBytes = perCopy * g.Size()
	case core.SAS:
		met.DataBytes = perCopy
	}
	met.Extra["interactions_per_step"] = float64(totalInter) / float64(len(plans))
	met.Extra["tree_cells"] = float64(maxCells)
	met.Extra["max_imbalance"] = imb
	_ = mach
	return met
}
