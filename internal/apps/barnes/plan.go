// Package barnes is the study's second adaptive application: a Barnes-Hut
// N-body simulation implemented under MP, SHMEM, and CC-SAS. Its phase
// structure per time step —
//
//	tree      — build the quadtree and centres of mass
//	partition — cost-zones repartition from last step's interaction counts
//	force     — tree-walk force evaluation for owned bodies (dominant)
//	update    — leapfrog integration of owned bodies
//	exchange  — make updated body state visible to all processors
//
// — stresses a different adaptivity axis than the mesh code: the *work per
// element* (interactions per body) is what shifts between processors, and
// the all-to-all visibility of body positions is what each model must
// provide (allgather for MP, one-sided collect for SHMEM, plain coherent
// loads for CC-SAS).
//
// All three implementations compute bit-identical trajectories at equal
// processor counts; tests enforce this.
package barnes

import (
	"o2k/internal/nbody"
)

// Workload parameterizes one experiment instance.
type Workload struct {
	N     int     // bodies
	Steps int     // leapfrog steps
	Theta float64 // Barnes-Hut opening angle
	Seed  int64
}

// Default returns the standard scaling workload.
func Default() Workload {
	return Workload{N: 6144, Steps: 5, Theta: nbody.ThetaBH, Seed: 1}
}

// Small returns a reduced workload for unit tests.
func Small() Workload {
	return Workload{N: 640, Steps: 3, Theta: nbody.ThetaBH, Seed: 1}
}

// StepPlan is the structural oracle for one time step, derived from the
// deterministic reference simulation that every model reproduces exactly.
type StepPlan struct {
	Step        int
	Tree        *nbody.Tree // structure + reference centre-of-mass values
	Owner       []int32     // per body, this step's cost-zones owner
	OwnedBodies [][]int32   // per proc, ascending body indices
	Inter       []int       // per body, interactions evaluated this step
	TotalInter  int
	MaxProcWork int       // largest per-proc interaction total (imbalance measure)
	Walk        *WalkPlan // lazy force-walk oracle, shared across processor counts
}

// BuildPlans runs the reference simulation and captures per-step plans for
// nprocs processors. It is the one-shot form of the structure/plan split the
// runner cache uses: capture the P-independent record once, derive the
// partitioning for this processor count.
func BuildPlans(w Workload, nprocs int) []*StepPlan {
	return BuildStructure(w).Plans(nprocs)
}

// ReferenceChecksum returns the digest of the final reference body state.
func ReferenceChecksum(w Workload) float64 {
	b := nbody.NewPlummer(w.N, w.Seed)
	ax := make([]float64, w.N)
	ay := make([]float64, w.N)
	inter := make([]int, w.N)
	for s := 0; s < w.Steps; s++ {
		nbody.Step(b, nbody.Build(b), w.Theta, ax, ay, inter)
	}
	return b.Checksum()
}
