package barnes

import (
	"testing"

	"o2k/internal/nbody"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

// walkFixture builds one step's body/cell arrays on a fresh 1-proc space and
// hands the cursors to fn inside a simulated proc body. Each call allocates
// an identical layout, so two fixtures observe identical simulated addresses
// and their charge sequences are directly comparable.
func walkFixture(t *testing.T, ss *StepStructure, m []float64,
	fn func(p *sim.Proc, cx, cy, cm, ccl *numa.Cursor[float64])) (sim.Time, uint64) {

	t.Helper()
	mch := mach(1)
	sp := numa.NewSpace(mch)
	g := sim.NewGroup(1)
	n := len(ss.X)
	x := numa.NewPrivate[float64](sp, 0, n)
	y := numa.NewPrivate[float64](sp, 0, n)
	bm := numa.NewPrivate[float64](sp, 0, n)
	cells := numa.NewPrivate[float64](sp, 0, 3*ss.Tree.NumCells())
	var total sim.Time
	var hits uint64
	g.Run(func(p *sim.Proc) {
		x.StoreRange(p, 0, ss.X)
		y.StoreRange(p, 0, ss.Y)
		bm.StoreRange(p, 0, m)
		cells.StoreRange(p, 0, flattenCells(ss.Tree))
		cx, cy, cm := x.Cursor(p), y.Cursor(p), bm.Cursor(p)
		ccl := cells.Cursor(p)
		t0 := p.Now()
		fn(p, &cx, &cy, &cm, &ccl)
		cx.Flush()
		cy.Flush()
		cm.Flush()
		ccl.Flush()
		total = p.Now() - t0
		hits = p.CacheHits
	})
	return total, hits
}

// TestWalkPlanMatchesCursorWalker pins the precomputed trace to the live
// traversal three ways: the recorded accelerations and interaction counts
// must equal the cursor walker's bit-for-bit, and the replayed charge
// sequence must cost exactly what the walker's loads cost — same virtual
// time, same hit counts — on identically laid-out spaces.
func TestWalkPlanMatchesCursorWalker(t *testing.T) {
	w := Small()
	st := BuildStructure(w)
	m := nbody.NewPlummer(w.N, w.Seed).M
	for _, ss := range st.Steps {
		wp := ss.Walk.Ensure()
		if got := int(wp.Off[w.N]); got != len(wp.Trace) {
			t.Fatalf("step %d: Off[N]=%d, len(Trace)=%d", ss.Tree.NumCells(), got, len(wp.Trace))
		}

		// Walker: full traversal with physics, through cursors.
		axW := make([]float64, w.N)
		ayW := make([]float64, w.N)
		tW, hW := walkFixture(t, ss, m, func(p *sim.Proc, cx, cy, cm, ccl *numa.Cursor[float64]) {
			var wk treeWalker
			for i := 0; i < w.N; i++ {
				bx, by := cx.Load(i), cy.Load(i)
				var inter int
				axW[i], ayW[i], inter = wk.accel(ss.Tree, int32(i), bx, by, w.Theta, cx, cy, cm, ccl)
				if inter != ss.Inter[i] {
					t.Fatalf("body %d: walker inter %d, structure %d", i, inter, ss.Inter[i])
				}
			}
		})

		for i := 0; i < w.N; i++ {
			if wp.AX[i] != axW[i] || wp.AY[i] != ayW[i] {
				t.Fatalf("body %d: plan accel (%v,%v) != walker (%v,%v)",
					i, wp.AX[i], wp.AY[i], axW[i], ayW[i])
			}
		}

		// Replay: batched charge-only path over the recorded trace.
		tR, hR := walkFixture(t, ss, m, func(p *sim.Proc, cx, cy, cm, ccl *numa.Cursor[float64]) {
			for i := 0; i < w.N; i++ {
				if !cx.TryTouch(i) {
					cx.TouchMiss(i)
				}
				if !cy.TryTouch(i) {
					cy.TouchMiss(i)
				}
				replayWalk(wp, i, cx, cy, cm, ccl)
			}
		})
		if tR != tW || hR != hW {
			t.Fatalf("replay charges differ: time %v vs %v, hits %d vs %d", tR, tW, hR, hW)
		}

		// Per-access fallback chain: must match the batched hoisted loop.
		tF, hF := walkFixture(t, ss, m, func(p *sim.Proc, cx, cy, cm, ccl *numa.Cursor[float64]) {
			for i := 0; i < w.N; i++ {
				if !cx.TryTouch(i) {
					cx.TouchMiss(i)
				}
				if !cy.TryTouch(i) {
					cy.TouchMiss(i)
				}
				for _, e := range wp.Trace[wp.Off[i]:wp.Off[i+1]] {
					if e >= 0 {
						j := int(e)
						jx, ok := cx.TryLoad(j)
						if !ok {
							if jx, ok = cx.TryProbe(j); !ok {
								jx = cx.LoadMiss(j)
							}
						}
						_ = jx
						if !cy.TryTouch(j) {
							cy.TouchMiss(j)
						}
						if !cm.TryTouch(j) {
							cm.TouchMiss(j)
						}
					} else {
						c3 := int(^e) * 3
						for k := 0; k < 3; k++ {
							if !ccl.TryTouch(c3 + k) {
								ccl.TouchMiss(c3 + k)
							}
						}
					}
				}
			}
		})
		if tF != tR || hF != hR {
			t.Fatalf("fallback chain differs: time %v vs %v, hits %d vs %d", tF, tR, hF, hR)
		}
	}
}
