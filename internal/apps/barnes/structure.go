package barnes

import (
	"fmt"
	"sync"

	"o2k/internal/nbody"
	"o2k/internal/planio"
)

// StructureSchema versions the serialized reference-simulation structure;
// it is folded into the plan cache key, so format changes retire old entries.
const StructureSchema = "o2knbstruct/1"

// Structure is the processor-count-independent half of plan construction:
// the reference simulation's per-step record — body positions at the start
// of the step (what cost-zones partitioning reads), the quadtree, and the
// per-body interaction counts the step's force evaluation produced. The
// force evaluation is by far the dominant cost of BuildPlans; every
// processor count derives its plans from this one record.
type Structure struct {
	N     int
	Steps []*StepStructure
}

// StepStructure is one time step's captured state.
type StepStructure struct {
	X, Y  []float64   // body positions at the start of the step
	Tree  *nbody.Tree // quadtree over those positions
	Inter []int       // per-body interactions evaluated this step
	Walk  *WalkPlan   // lazy force-walk oracle (never serialized)

	orderOnce sync.Once
	order     []int32 // Morton traversal order over X/Y, computed on demand
}

// attachWalks gives every step its walk-plan holder. Masses are constant over
// the run and derivable from the workload, so they are never serialized; the
// trace itself is built lazily on first force phase (see WalkPlan).
func (st *Structure) attachWalks(w Workload) {
	m := nbody.NewPlummer(w.N, w.Seed).M
	for _, ss := range st.Steps {
		ss.Walk = newWalkPlan(ss.X, ss.Y, m, ss.Tree, w.Theta)
	}
}

// mortonOrder returns the step's Morton traversal order, computed once and
// shared by every processor count deriving plans from this structure (plan
// cells for different P may run concurrently on one structure).
func (ss *StepStructure) mortonOrder() []int32 {
	ss.orderOnce.Do(func() {
		ss.order = nbody.MortonOrder(&nbody.Bodies{X: ss.X, Y: ss.Y})
	})
	return ss.order
}

// BuildStructure runs the reference simulation once, capturing the per-step
// structural record.
func BuildStructure(w Workload) *Structure {
	b := nbody.NewPlummer(w.N, w.Seed)
	ax := make([]float64, w.N)
	ay := make([]float64, w.N)
	inter := make([]int, w.N)
	st := &Structure{N: w.N}
	for s := 0; s < w.Steps; s++ {
		ss := &StepStructure{
			X:     append([]float64(nil), b.X...),
			Y:     append([]float64(nil), b.Y...),
			Tree:  nbody.Build(b),
			Inter: make([]int, w.N),
		}
		nbody.Step(b, ss.Tree, w.Theta, ax, ay, inter)
		copy(ss.Inter, inter)
		st.Steps = append(st.Steps, ss)
	}
	st.attachWalks(w)
	return st
}

// Plans derives the per-step plans for nprocs processors: cost-zones
// partitioning over the captured positions with costs chained from the
// previous step's interaction counts, exactly as the interleaved reference
// loop computed them.
func (st *Structure) Plans(nprocs int) []*StepPlan {
	cost := make([]float64, st.N)
	for i := range cost {
		cost[i] = 1
	}
	plans := make([]*StepPlan, 0, len(st.Steps))
	for s, ss := range st.Steps {
		owner := nbody.CostZonesOrdered(ss.mortonOrder(), cost, nprocs)
		pl := &StepPlan{
			Step:        s,
			Tree:        ss.Tree,
			Owner:       owner,
			OwnedBodies: make([][]int32, nprocs),
			Inter:       ss.Inter,
			Walk:        ss.Walk,
		}
		work := make([]int, nprocs)
		for i := 0; i < st.N; i++ {
			pl.OwnedBodies[owner[i]] = append(pl.OwnedBodies[owner[i]], int32(i))
			pl.TotalInter += ss.Inter[i]
			work[owner[i]] += ss.Inter[i]
			cost[i] = float64(ss.Inter[i])
		}
		for _, wk := range work {
			if wk > pl.MaxProcWork {
				pl.MaxProcWork = wk
			}
		}
		plans = append(plans, pl)
	}
	return plans
}

// EncodeStructure serializes the reference record:
//
//	o2knbstruct 1 <N> <steps>
//	step <s>
//	<x> <y> <inter>        (N lines)
//	<tree>                 (o2knbtree block)
func EncodeStructure(st *Structure) []byte {
	var pw planio.Writer
	pw.Word("o2knbstruct")
	pw.Int(1)
	pw.Int(st.N)
	pw.Int(len(st.Steps))
	pw.End()
	for s, ss := range st.Steps {
		pw.Word("step")
		pw.Int(s)
		pw.End()
		for i := 0; i < st.N; i++ {
			pw.Float(ss.X[i])
			pw.Float(ss.Y[i])
			pw.Int(ss.Inter[i])
			pw.End()
		}
		ss.Tree.AppendTo(&pw)
	}
	return pw.Bytes()
}

// DecodeStructure rebuilds a reference record, validating it against the
// expected workload.
func DecodeStructure(data []byte, w Workload) (*Structure, error) {
	s := planio.NewScanner(data)
	s.Expect("o2knbstruct")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return nil, fmt.Errorf("barnes: unsupported structure version %d", v)
	}
	n := s.IntRange(1, 1<<28)
	steps := s.IntRange(0, 1<<20)
	if err := s.Err(); err != nil {
		return nil, err
	}
	if n != w.N || steps != w.Steps {
		return nil, fmt.Errorf("barnes: structure entry is N=%d steps=%d, workload wants N=%d steps=%d", n, steps, w.N, w.Steps)
	}
	st := &Structure{N: n}
	for sn := 0; sn < steps; sn++ {
		s.Expect("step")
		if got := s.Int(); s.Err() == nil && got != sn {
			return nil, fmt.Errorf("barnes: step %d out of order (got %d)", sn, got)
		}
		ss := &StepStructure{
			X:     make([]float64, n),
			Y:     make([]float64, n),
			Inter: make([]int, n),
		}
		for i := 0; i < n; i++ {
			ss.X[i] = s.Float()
			ss.Y[i] = s.Float()
			ss.Inter[i] = s.IntRange(0, 1<<30)
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
		t, err := nbody.DecodeTreeFrom(s, n)
		if err != nil {
			return nil, err
		}
		ss.Tree = t
		st.Steps = append(st.Steps, ss)
	}
	s.Done()
	if err := s.Err(); err != nil {
		return nil, err
	}
	st.attachWalks(w)
	return st, nil
}
