// Package mesh implements the adaptive unstructured-mesh substrate: a 2-D
// triangular mesh over the unit square that repeatedly refines and coarsens
// to track a moving solution feature, in the style of the Biswas/Oliker
// adaptive-mesh line of work the paper's application comes from.
//
// The design is hierarchical red/green refinement:
//
//   - A fixed base mesh (a triangulated n×n grid) is the root layer.
//   - Refinement is "red": a triangle splits into four similar children via
//     its edge midpoints. The refinement forest persists across adaptation
//     cycles, so coarsening is exact de-refinement.
//   - Midpoint vertices are registered per geometric edge and reused, so
//     vertex IDs are stable and monotonically growing; field arrays indexed
//     by vertex ID survive adaptation, with new entries interpolated.
//   - A balance invariant (neighbouring leaves differ by at most one level)
//     is enforced by extra refinement passes, so any leaf edge carries at
//     most one hanging vertex.
//   - Snapshot extraction closes the leaves into a conforming mesh by
//     emitting temporary "green" triangles around hanging vertices; greens
//     are never refined — they are regenerated from the forest every cycle.
//
// All operations are deterministic: loops run in index order and new vertex
// IDs depend only on the refinement history, never on map iteration order.
package mesh

import "fmt"

// Vert is a vertex index; Tri indexes the forest triangle arena.
const nilIdx = int32(-1)

// ftri is one triangle of the refinement forest (internal or leaf).
type ftri struct {
	v      [3]int32 // corner vertices
	child  [4]int32 // red children, or nilIdx if leaf
	parent int32
	level  int8
	dead   bool // tombstoned by coarsening
}

func (t *ftri) isLeaf() bool { return t.child[0] == nilIdx && !t.dead }

// Forest is the persistent adaptive-mesh hierarchy.
type Forest struct {
	VX, VY []float64 // vertex coordinates, indexed by global vertex ID
	tris   []ftri
	nBase  int
	edgMid map[[2]int32]int32 // canonical edge -> midpoint vertex ID
	MaxLvl int

	// MidA/MidB record each vertex's parent edge endpoints (-1, -1 for the
	// base-mesh vertices). Parents always have smaller IDs, so recursive
	// expansion of a midpoint into original vertices terminates. The
	// applications use this to interpolate field values for new vertices
	// identically in every programming model.
	MidA, MidB []int32

	// scratch reused across passes
	cornerUse []bool
}

// NewUnitSquare builds the base mesh: an n×n grid over [0,1]² with each cell
// split into two triangles (2n² base triangles), and allows refinement down
// to maxLevel additional levels.
func NewUnitSquare(n, maxLevel int) *Forest {
	if n < 1 {
		panic("mesh: grid dimension must be >= 1")
	}
	if maxLevel < 0 || maxLevel > 30 {
		panic(fmt.Sprintf("mesh: maxLevel %d out of range", maxLevel))
	}
	f := &Forest{edgMid: make(map[[2]int32]int32), MaxLvl: maxLevel}
	nv := (n + 1) * (n + 1)
	f.VX = make([]float64, 0, nv)
	f.VY = make([]float64, 0, nv)
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			f.VX = append(f.VX, float64(i)/float64(n))
			f.VY = append(f.VY, float64(j)/float64(n))
			f.MidA = append(f.MidA, nilIdx)
			f.MidB = append(f.MidB, nilIdx)
		}
	}
	vid := func(i, j int) int32 { return int32(j*(n+1) + i) }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a, b := vid(i, j), vid(i+1, j)
			c, d := vid(i+1, j+1), vid(i, j+1)
			// Alternate the diagonal for isotropy.
			if (i+j)%2 == 0 {
				f.addBase(a, b, c)
				f.addBase(a, c, d)
			} else {
				f.addBase(a, b, d)
				f.addBase(b, c, d)
			}
		}
	}
	f.nBase = len(f.tris)
	return f
}

func (f *Forest) addBase(a, b, c int32) {
	f.tris = append(f.tris, ftri{
		v:      [3]int32{a, b, c},
		child:  [4]int32{nilIdx, nilIdx, nilIdx, nilIdx},
		parent: nilIdx,
	})
}

// NumVerts returns the total number of vertices ever created (IDs are
// stable; some may be unused by the current leaves).
func (f *Forest) NumVerts() int { return len(f.VX) }

// BaseTris returns the number of base-mesh triangles.
func (f *Forest) BaseTris() int { return f.nBase }

// NumTris returns the size of the forest arena (including interior and
// tombstoned triangles).
func (f *Forest) NumTris() int { return len(f.tris) }

// edgeKey canonicalizes an edge as (min, max).
func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// midpoint returns the midpoint vertex of edge (a,b), creating it on first
// use. Creation order is deterministic (callers loop in index order).
func (f *Forest) midpoint(a, b int32) int32 {
	k := edgeKey(a, b)
	if m, ok := f.edgMid[k]; ok {
		return m
	}
	m := int32(len(f.VX))
	f.VX = append(f.VX, 0.5*(f.VX[a]+f.VX[b]))
	f.VY = append(f.VY, 0.5*(f.VY[a]+f.VY[b]))
	f.MidA = append(f.MidA, k[0])
	f.MidB = append(f.MidB, k[1])
	f.edgMid[k] = m
	return m
}

// Mid returns the midpoint vertex of edge (a,b) and whether it exists.
func (f *Forest) Mid(a, b int32) (int32, bool) {
	m, ok := f.edgMid[edgeKey(a, b)]
	return m, ok
}

// refine red-splits leaf t into four children.
func (f *Forest) refine(t int32) {
	tr := &f.tris[t]
	v0, v1, v2 := tr.v[0], tr.v[1], tr.v[2]
	m01 := f.midpoint(v0, v1)
	m12 := f.midpoint(v1, v2)
	m20 := f.midpoint(v2, v0)
	lvl := tr.level + 1
	base := int32(len(f.tris))
	kids := [4][3]int32{
		{v0, m01, m20},
		{m01, v1, m12},
		{m20, m12, v2},
		{m01, m12, m20},
	}
	for i, k := range kids {
		f.tris = append(f.tris, ftri{
			v:      k,
			child:  [4]int32{nilIdx, nilIdx, nilIdx, nilIdx},
			parent: t,
			level:  lvl,
		})
		f.tris[t].child[i] = base + int32(i)
	}
}

// coarsen removes t's children (which must all be leaves).
func (f *Forest) coarsen(t int32) {
	tr := &f.tris[t]
	for i, c := range tr.child {
		if c != nilIdx {
			f.tris[c].dead = true
			tr.child[i] = nilIdx
		}
	}
}

// Centroid returns the centroid of forest triangle t.
func (f *Forest) centroid(t int32) (x, y float64) {
	v := f.tris[t].v
	x = (f.VX[v[0]] + f.VX[v[1]] + f.VX[v[2]]) / 3
	y = (f.VY[v[0]] + f.VY[v[1]] + f.VY[v[2]]) / 3
	return
}

// Indicator maps a location (triangle centroid) to the desired refinement
// level there. It must be (approximately) 1-Lipschitz in units of base-cell
// size for economical grading; the balance passes enforce conformity in any
// case.
type Indicator func(x, y float64) int

// AdaptStats summarizes one adaptation cycle.
type AdaptStats struct {
	Refined   int // red splits performed
	Coarsened int // red splits undone
	Passes    int // refinement/balance passes until fixpoint
}

// Adapt drives the forest toward the indicator's desired level everywhere:
// first coarsening where the indicator wants less depth, then refining and
// rebalancing until no leaf violates the desired level or the one-level
// neighbour balance. It returns the cycle's statistics.
func (f *Forest) Adapt(ind Indicator) AdaptStats {
	var st AdaptStats

	// Coarsening passes, deepest first: undo red splits whose four children
	// are leaves and all want a shallower level — unless a neighbouring leaf
	// is refined deeper than the children, in which case coarsening would
	// violate the one-level balance and the refinement pass would just redo
	// the split (wasted churn).
	for {
		changed := false
		f.rebuildCornerUse()
		for t := int32(0); t < int32(len(f.tris)); t++ {
			tr := &f.tris[t]
			if tr.dead || tr.child[0] == nilIdx {
				continue
			}
			ok := true
			for _, c := range tr.child {
				ct := &f.tris[c]
				if !ct.isLeaf() {
					ok = false
					break
				}
				cx, cy := f.centroid(c)
				if ind(cx, cy) >= int(ct.level) {
					ok = false
					break
				}
			}
			if ok && f.coarsenWouldUnbalance(tr) {
				ok = false
			}
			if ok {
				f.coarsen(t)
				st.Coarsened++
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Refinement to desired level, then balance: a leaf must refine if any
	// of its edges carries a midpoint that is itself split further by a
	// deeper neighbour (two hanging vertices on one edge).
	for {
		st.Passes++
		changed := false
		for t := int32(0); t < int32(len(f.tris)); t++ {
			tr := &f.tris[t]
			if !tr.isLeaf() || int(tr.level) >= f.MaxLvl {
				continue
			}
			cx, cy := f.centroid(t)
			if ind(cx, cy) > int(tr.level) {
				f.refine(t)
				st.Refined++
				changed = true
			}
		}
		f.rebuildCornerUse()
		for t := int32(0); t < int32(len(f.tris)); t++ {
			tr := &f.tris[t]
			if !tr.isLeaf() || int(tr.level) >= f.MaxLvl {
				continue
			}
			if f.edgeOverSplit(tr) {
				f.refine(t)
				st.Refined++
				changed = true
			}
		}
		if !changed {
			break
		}
		if st.Passes > f.MaxLvl+64 {
			panic("mesh: balance did not converge")
		}
	}
	return st
}

// rebuildCornerUse recomputes which vertices are corners of current leaves.
func (f *Forest) rebuildCornerUse() {
	if cap(f.cornerUse) < len(f.VX) {
		f.cornerUse = make([]bool, len(f.VX))
	} else {
		f.cornerUse = f.cornerUse[:len(f.VX)]
		clear(f.cornerUse)
	}
	for t := range f.tris {
		tr := &f.tris[t]
		if tr.isLeaf() {
			f.cornerUse[tr.v[0]] = true
			f.cornerUse[tr.v[1]] = true
			f.cornerUse[tr.v[2]] = true
		}
	}
}

// hangingMid returns the in-use midpoint of edge (a,b), or nilIdx.
// f.cornerUse may lag behind refinements made in the current pass; vertices
// created since the last rebuild are treated as not-in-use, and the Adapt
// fixpoint loop re-examines them on the next pass.
func (f *Forest) hangingMid(a, b int32) int32 {
	if m, ok := f.edgMid[edgeKey(a, b)]; ok && int(m) < len(f.cornerUse) && f.cornerUse[m] {
		return m
	}
	return nilIdx
}

// coarsenWouldUnbalance reports whether turning tr back into a leaf would
// leave one of its edges with two levels of hanging vertices: each edge of
// tr is split at a midpoint (tr was red-refined); if a sub-edge of that
// midpoint is itself split and in use, a deeper neighbour abuts tr, so tr's
// children must stay. f.cornerUse must be current.
func (f *Forest) coarsenWouldUnbalance(tr *ftri) bool {
	for i := 0; i < 3; i++ {
		a, b := tr.v[i], tr.v[(i+1)%3]
		m, ok := f.edgMid[edgeKey(a, b)]
		if !ok {
			continue
		}
		if f.hangingMid(a, m) != nilIdx || f.hangingMid(m, b) != nilIdx {
			return true
		}
	}
	return false
}

// edgeOverSplit reports whether any edge of leaf tr carries two levels of
// hanging vertices — the balance violation that forces a refinement.
func (f *Forest) edgeOverSplit(tr *ftri) bool {
	for i := 0; i < 3; i++ {
		a, b := tr.v[i], tr.v[(i+1)%3]
		m := f.hangingMid(a, b)
		if m == nilIdx {
			continue
		}
		if f.hangingMid(a, m) != nilIdx || f.hangingMid(m, b) != nilIdx {
			return true
		}
	}
	return false
}

// LeafCount returns the number of active leaves.
func (f *Forest) LeafCount() int {
	n := 0
	for t := range f.tris {
		if f.tris[t].isLeaf() {
			n++
		}
	}
	return n
}
