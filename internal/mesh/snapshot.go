package mesh

import "math"

// Mesh is one conforming snapshot of the forest's leaves: the structure the
// solver, partitioner, and applications work on between adaptations.
//
// Vertex IDs are the forest's stable global IDs; VX/VY alias the forest's
// coordinate arrays (treat them as read-only). Triangles are emitted in
// deterministic order: leaves in arena order, each leaf contributing one
// triangle or its green closure fan.
type Mesh struct {
	VX, VY []float64  // vertex coordinates by global vertex ID (read-only)
	Tris   [][3]int32 // conforming triangles
	Level  []int8     // refinement level of the source leaf, per triangle
	Green  []bool     // true if the triangle is a green closure
	Leaf   []int32    // source forest-leaf index, per triangle

	Edges    [][2]int32 // unique undirected edges (a < b)
	EdgeTris [][2]int32 // the one or two triangles on each edge (-1 if boundary)

	used  []bool // vertex in use by this snapshot
	nUsed int
}

// Snapshot extracts the current conforming mesh, closing hanging vertices
// with green triangles (one hanging edge -> 2 triangles, two -> 3,
// three -> 4). The balance invariant guarantees no edge has more than one
// hanging vertex.
func (f *Forest) Snapshot() *Mesh {
	f.rebuildCornerUse()
	m := &Mesh{VX: f.VX, VY: f.VY}

	emit := func(a, b, c int32, lvl int8, green bool, leaf int32) {
		m.Tris = append(m.Tris, [3]int32{a, b, c})
		m.Level = append(m.Level, lvl)
		m.Green = append(m.Green, green)
		m.Leaf = append(m.Leaf, leaf)
	}

	for t := int32(0); t < int32(len(f.tris)); t++ {
		tr := &f.tris[t]
		if !tr.isLeaf() {
			continue
		}
		v0, v1, v2 := tr.v[0], tr.v[1], tr.v[2]
		m0 := f.hangingMid(v0, v1)
		m1 := f.hangingMid(v1, v2)
		m2 := f.hangingMid(v2, v0)
		n := 0
		for _, mm := range [3]int32{m0, m1, m2} {
			if mm != nilIdx {
				n++
			}
		}
		lvl := tr.level
		switch n {
		case 0:
			emit(v0, v1, v2, lvl, false, t)
		case 1:
			// Rotate so the hanging edge is (v0,v1) with midpoint m0.
			switch {
			case m1 != nilIdx:
				v0, v1, v2, m0 = v1, v2, v0, m1
			case m2 != nilIdx:
				v0, v1, v2, m0 = v2, v0, v1, m2
			}
			emit(v0, m0, v2, lvl, true, t)
			emit(m0, v1, v2, lvl, true, t)
		case 2:
			// Rotate so the unsplit edge is (v2,v0): hanging on (v0,v1) and
			// (v1,v2) with midpoints m0, m1.
			switch {
			case m0 == nilIdx: // hanging on e1,e2
				v0, v1, v2, m0, m1 = v1, v2, v0, m1, m2
			case m1 == nilIdx: // hanging on e2,e0
				v0, v1, v2, m0, m1 = v2, v0, v1, m2, m0
			}
			emit(m0, v1, m1, lvl, true, t)
			emit(v0, m0, m1, lvl, true, t)
			emit(v0, m1, v2, lvl, true, t)
		case 3:
			emit(v0, m0, m2, lvl, true, t)
			emit(m0, v1, m1, lvl, true, t)
			emit(m2, m1, v2, lvl, true, t)
			emit(m0, m1, m2, lvl, true, t)
		}
	}
	m.buildEdges()
	return m
}

// buildEdges constructs the unique edge list and edge-triangle adjacency in
// deterministic (triangle, corner) order.
func (m *Mesh) buildEdges() {
	type ek = [2]int32
	idx := make(map[ek]int32, len(m.Tris)*3/2)
	m.used = make([]bool, len(m.VX))
	for t, tv := range m.Tris {
		for i := 0; i < 3; i++ {
			a, b := tv[i], tv[(i+1)%3]
			m.used[a] = true
			k := edgeKey(a, b)
			if e, ok := idx[k]; ok {
				if m.EdgeTris[e][1] != nilIdx {
					// A conforming 2-manifold mesh has at most two triangles
					// per edge; three indicates an extraction bug.
					panic("mesh: non-manifold edge")
				}
				m.EdgeTris[e][1] = int32(t)
			} else {
				idx[k] = int32(len(m.Edges))
				m.Edges = append(m.Edges, k)
				m.EdgeTris = append(m.EdgeTris, [2]int32{int32(t), nilIdx})
			}
		}
	}
	for _, u := range m.used {
		if u {
			m.nUsed++
		}
	}
}

// NumTris returns the triangle count of the snapshot.
func (m *Mesh) NumTris() int { return len(m.Tris) }

// NumEdges returns the unique edge count.
func (m *Mesh) NumEdges() int { return len(m.Edges) }

// NumVertsTotal returns the global vertex-ID space size (field array length).
func (m *Mesh) NumVertsTotal() int { return len(m.VX) }

// NumVertsUsed returns how many vertices this snapshot actually references.
func (m *Mesh) NumVertsUsed() int { return m.nUsed }

// VertUsed reports whether global vertex v appears in this snapshot.
func (m *Mesh) VertUsed(v int32) bool { return m.used[v] }

// Centroid returns the centroid of triangle t.
func (m *Mesh) Centroid(t int) (x, y float64) {
	v := m.Tris[t]
	x = (m.VX[v[0]] + m.VX[v[1]] + m.VX[v[2]]) / 3
	y = (m.VY[v[0]] + m.VY[v[1]] + m.VY[v[2]]) / 3
	return
}

// Area returns the (positive) area of triangle t.
func (m *Mesh) Area(t int) float64 {
	v := m.Tris[t]
	ax, ay := m.VX[v[0]], m.VY[v[0]]
	bx, by := m.VX[v[1]], m.VY[v[1]]
	cx, cy := m.VX[v[2]], m.VY[v[2]]
	a := 0.5 * ((bx-ax)*(cy-ay) - (cx-ax)*(by-ay))
	if a < 0 {
		a = -a
	}
	return a
}

// TotalArea sums all triangle areas; for a conforming mesh over the unit
// square it must equal 1 (up to roundoff) regardless of adaptation.
func (m *Mesh) TotalArea() float64 {
	s := 0.0
	for t := range m.Tris {
		s += m.Area(t)
	}
	return s
}

// EdgeLen returns the length of edge e.
func (m *Mesh) EdgeLen(e int) float64 {
	a, b := m.Edges[e][0], m.Edges[e][1]
	dx := m.VX[a] - m.VX[b]
	dy := m.VY[a] - m.VY[b]
	return math.Sqrt(dx*dx + dy*dy)
}
