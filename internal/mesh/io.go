package mesh

// Snapshot serialization: a small line-oriented text format so meshes can be
// dumped, diffed, and reloaded (debugging, external tooling, golden tests).
//
//	o2kmesh 1
//	verts <n>
//	<x> <y>          (n lines, compacted vertex order)
//	tris <m>
//	<a> <b> <c> <level> <green>   (m lines, indices into the vertex list)
//
// Encoding compacts vertex IDs (a snapshot's global ID space has unused
// holes); Decode rebuilds the edge structure and validates the result.
//
// Version 2 (EncodeGlobal/DecodeGlobal) preserves the *global* vertex-ID
// space instead of compacting it: the persistent plan cache stores snapshots
// whose IDs must keep indexing the forest-wide field arrays (MidA/MidB
// parent chains, per-vertex degrees, solver fields), so holes — vertices the
// snapshot does not use — are kept in place. It also keeps the Leaf column,
// so a decoded snapshot is reflect.DeepEqual to the encoded one:
//
//	o2kmesh 2
//	verts <nv>
//	<x> <y>                         (nv lines, all global IDs, holes included)
//	tris <m>
//	<a> <b> <c> <level> <green> <leaf>
//
// Floats use shortest-round-trip formatting (bit-exact). Decoding is total:
// any malformed or out-of-range token returns an error, never panics — the
// cache layer treats a decode error as a corrupt entry and recomputes.

import (
	"bufio"
	"fmt"
	"io"

	"o2k/internal/planio"
)

// Encode writes snapshot m in the o2kmesh text format.
func (m *Mesh) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Compact the used vertices.
	remap := make([]int32, len(m.VX))
	for i := range remap {
		remap[i] = -1
	}
	n := int32(0)
	for v := range m.VX {
		if m.used[v] {
			remap[v] = n
			n++
		}
	}
	fmt.Fprintf(bw, "o2kmesh 1\nverts %d\n", n)
	for v := range m.VX {
		if m.used[v] {
			fmt.Fprintf(bw, "%.17g %.17g\n", m.VX[v], m.VY[v])
		}
	}
	fmt.Fprintf(bw, "tris %d\n", len(m.Tris))
	for t, tv := range m.Tris {
		g := 0
		if m.Green[t] {
			g = 1
		}
		fmt.Fprintf(bw, "%d %d %d %d %d\n",
			remap[tv[0]], remap[tv[1]], remap[tv[2]], m.Level[t], g)
	}
	return bw.Flush()
}

// Decode reads an o2kmesh stream and reconstructs a standalone snapshot
// (with freshly built edge structure). The result does not belong to any
// Forest and cannot be adapted further; it is for inspection and solving.
func Decode(r io.Reader) (*Mesh, error) {
	br := bufio.NewReader(r)
	var version int
	if _, err := fmt.Fscanf(br, "o2kmesh %d\n", &version); err != nil {
		return nil, fmt.Errorf("mesh: bad header: %w", err)
	}
	if version != 1 {
		return nil, fmt.Errorf("mesh: unsupported version %d", version)
	}
	var nv int
	if _, err := fmt.Fscanf(br, "verts %d\n", &nv); err != nil || nv <= 0 {
		return nil, fmt.Errorf("mesh: bad vertex count")
	}
	vx := make([]float64, nv)
	vy := make([]float64, nv)
	for i := 0; i < nv; i++ {
		if _, err := fmt.Fscanf(br, "%g %g\n", &vx[i], &vy[i]); err != nil {
			return nil, fmt.Errorf("mesh: vertex %d: %w", i, err)
		}
	}
	var nt int
	if _, err := fmt.Fscanf(br, "tris %d\n", &nt); err != nil || nt <= 0 {
		return nil, fmt.Errorf("mesh: bad triangle count")
	}
	m := &Mesh{VX: vx, VY: vy}
	for t := 0; t < nt; t++ {
		var a, b, c, lvl, g int
		if _, err := fmt.Fscanf(br, "%d %d %d %d %d\n", &a, &b, &c, &lvl, &g); err != nil {
			return nil, fmt.Errorf("mesh: triangle %d: %w", t, err)
		}
		if a < 0 || a >= nv || b < 0 || b >= nv || c < 0 || c >= nv {
			return nil, fmt.Errorf("mesh: triangle %d has out-of-range vertex", t)
		}
		m.Tris = append(m.Tris, [3]int32{int32(a), int32(b), int32(c)})
		m.Level = append(m.Level, int8(lvl))
		m.Green = append(m.Green, g != 0)
		m.Leaf = append(m.Leaf, -1)
	}
	m.buildEdges()
	return m, nil
}

// EncodeGlobal writes snapshot m in the version-2 global-ID text format.
func (m *Mesh) EncodeGlobal(w io.Writer) error {
	var pw planio.Writer
	m.AppendGlobal(&pw)
	_, err := w.Write(pw.Bytes())
	return err
}

// AppendGlobal appends the version-2 encoding of m to pw (for codecs that
// embed a snapshot inside a larger payload).
func (m *Mesh) AppendGlobal(pw *planio.Writer) {
	pw.Word("o2kmesh")
	pw.Int(2)
	pw.End()
	pw.Word("verts")
	pw.Int(len(m.VX))
	pw.End()
	AppendVerts(pw, m.VX, m.VY)
	pw.Word("tris")
	pw.Int(len(m.Tris))
	pw.End()
	m.AppendTris(pw)
}

// AppendVerts writes the coordinate table: one "<x> <y>" line per global ID.
func AppendVerts(pw *planio.Writer, vx, vy []float64) {
	for v := range vx {
		pw.Float(vx[v])
		pw.Float(vy[v])
		pw.End()
	}
}

// DecodeVerts reads an n-entry coordinate table written by AppendVerts.
func DecodeVerts(s *planio.Scanner, n int) (vx, vy []float64, err error) {
	vx = make([]float64, n)
	vy = make([]float64, n)
	for v := 0; v < n; v++ {
		vx[v] = s.Float()
		vy[v] = s.Float()
	}
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return vx, vy, nil
}

// AppendTris writes the triangle table of m: "<a> <b> <c> <level> <green>
// <leaf>" per triangle, with global vertex IDs.
func (m *Mesh) AppendTris(pw *planio.Writer) {
	for t, tv := range m.Tris {
		pw.Int(int(tv[0]))
		pw.Int(int(tv[1]))
		pw.Int(int(tv[2]))
		pw.Int(int(m.Level[t]))
		g := 0
		if m.Green[t] {
			g = 1
		}
		pw.Int(g)
		pw.Int(int(m.Leaf[t]))
		pw.End()
	}
}

// DecodeTris reads an nt-entry triangle table and assembles a snapshot over
// the given global coordinate arrays, rebuilding the edge structure. The
// coordinate slices are aliased, not copied — callers sharing one append-only
// coordinate arena across several snapshots pass prefixes of it.
func DecodeTris(s *planio.Scanner, nt int, vx, vy []float64) (m *Mesh, err error) {
	// buildEdges panics on non-manifold connectivity, which corrupt-but-in-
	// range triangle data can produce; decoding must degrade to an error.
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("mesh: corrupt triangle table: %v", r)
		}
	}()
	if nt <= 0 {
		return nil, fmt.Errorf("mesh: bad triangle count %d", nt)
	}
	nv := len(vx)
	m = &Mesh{
		VX:    vx,
		VY:    vy,
		Tris:  make([][3]int32, nt),
		Level: make([]int8, nt),
		Green: make([]bool, nt),
		Leaf:  make([]int32, nt),
	}
	for t := 0; t < nt; t++ {
		m.Tris[t][0] = int32(s.IntRange(0, nv-1))
		m.Tris[t][1] = int32(s.IntRange(0, nv-1))
		m.Tris[t][2] = int32(s.IntRange(0, nv-1))
		m.Level[t] = int8(s.IntRange(-128, 127))
		m.Green[t] = s.IntRange(0, 1) != 0
		m.Leaf[t] = int32(s.IntRange(-1, 1<<30))
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	m.buildEdges()
	return m, nil
}

// DecodeGlobalFrom reads a version-2 snapshot from the scanner.
func DecodeGlobalFrom(s *planio.Scanner) (*Mesh, error) {
	s.Expect("o2kmesh")
	if v := s.Int(); s.Err() == nil && v != 2 {
		return nil, fmt.Errorf("mesh: unsupported global version %d", v)
	}
	s.Expect("verts")
	nv := s.IntRange(1, 1<<30)
	if err := s.Err(); err != nil {
		return nil, err
	}
	vx, vy, err := DecodeVerts(s, nv)
	if err != nil {
		return nil, err
	}
	s.Expect("tris")
	nt := s.IntRange(1, 1<<30)
	if err := s.Err(); err != nil {
		return nil, err
	}
	return DecodeTris(s, nt, vx, vy)
}

// DecodeGlobal reads a complete version-2 stream produced by EncodeGlobal.
func DecodeGlobal(r io.Reader) (*Mesh, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	s := planio.NewScanner(data)
	m, err := DecodeGlobalFrom(s)
	if err != nil {
		return nil, err
	}
	s.Done()
	if err := s.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendTo writes the front's parameters — the plan-structure codecs embed
// the workload's front as a self-describing cross-check, so a cache entry
// that was somehow stored under the wrong key fails decoding instead of
// silently supplying plans for a different workload.
func (w MovingFront) AppendTo(pw *planio.Writer) {
	pw.Word("o2kfront")
	pw.Int(1)
	pw.Float(w.Radius)
	pw.Float(w.Band)
	pw.Int(w.MaxLevel)
	pw.Float(w.X0)
	pw.Float(w.Y0)
	pw.Float(w.DX)
	pw.Float(w.DY)
	pw.End()
}

// DecodeMovingFrontFrom reads a front written by AppendTo.
func DecodeMovingFrontFrom(s *planio.Scanner) (MovingFront, error) {
	var w MovingFront
	s.Expect("o2kfront")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return w, fmt.Errorf("mesh: unsupported front version %d", v)
	}
	w.Radius = s.Float()
	w.Band = s.Float()
	w.MaxLevel = s.IntRange(0, 30)
	w.X0 = s.Float()
	w.Y0 = s.Float()
	w.DX = s.Float()
	w.DY = s.Float()
	return w, s.Err()
}

// AppendTo writes the colliding-front pair.
func (c CollidingFronts) AppendTo(pw *planio.Writer) {
	pw.Word("o2kfronts")
	pw.Int(1)
	pw.Int(c.MaxLevel)
	pw.End()
	c.A.AppendTo(pw)
	c.B.AppendTo(pw)
}

// DecodeCollidingFrontsFrom reads a colliding-front pair.
func DecodeCollidingFrontsFrom(s *planio.Scanner) (CollidingFronts, error) {
	var c CollidingFronts
	s.Expect("o2kfronts")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return c, fmt.Errorf("mesh: unsupported fronts version %d", v)
	}
	c.MaxLevel = s.IntRange(0, 30)
	var err error
	if c.A, err = DecodeMovingFrontFrom(s); err != nil {
		return c, err
	}
	if c.B, err = DecodeMovingFrontFrom(s); err != nil {
		return c, err
	}
	return c, s.Err()
}

// FromRaw builds a standalone snapshot from raw coordinate and connectivity
// arrays (for importing externally generated meshes). It builds the edge
// structure; call Validate to check conformity.
func FromRaw(vx, vy []float64, tris [][3]int32) (*Mesh, error) {
	if len(vx) != len(vy) {
		return nil, fmt.Errorf("mesh: coordinate length mismatch")
	}
	if len(tris) == 0 {
		return nil, fmt.Errorf("mesh: no triangles")
	}
	m := &Mesh{VX: vx, VY: vy}
	for t, tv := range tris {
		for _, v := range tv {
			if v < 0 || int(v) >= len(vx) {
				return nil, fmt.Errorf("mesh: triangle %d vertex out of range", t)
			}
		}
		m.Tris = append(m.Tris, tv)
		m.Level = append(m.Level, 0)
		m.Green = append(m.Green, false)
		m.Leaf = append(m.Leaf, -1)
	}
	m.buildEdges()
	return m, nil
}
