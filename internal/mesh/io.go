package mesh

// Snapshot serialization: a small line-oriented text format so meshes can be
// dumped, diffed, and reloaded (debugging, external tooling, golden tests).
//
//	o2kmesh 1
//	verts <n>
//	<x> <y>          (n lines, compacted vertex order)
//	tris <m>
//	<a> <b> <c> <level> <green>   (m lines, indices into the vertex list)
//
// Encoding compacts vertex IDs (a snapshot's global ID space has unused
// holes); Decode rebuilds the edge structure and validates the result.

import (
	"bufio"
	"fmt"
	"io"
)

// Encode writes snapshot m in the o2kmesh text format.
func (m *Mesh) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Compact the used vertices.
	remap := make([]int32, len(m.VX))
	for i := range remap {
		remap[i] = -1
	}
	n := int32(0)
	for v := range m.VX {
		if m.used[v] {
			remap[v] = n
			n++
		}
	}
	fmt.Fprintf(bw, "o2kmesh 1\nverts %d\n", n)
	for v := range m.VX {
		if m.used[v] {
			fmt.Fprintf(bw, "%.17g %.17g\n", m.VX[v], m.VY[v])
		}
	}
	fmt.Fprintf(bw, "tris %d\n", len(m.Tris))
	for t, tv := range m.Tris {
		g := 0
		if m.Green[t] {
			g = 1
		}
		fmt.Fprintf(bw, "%d %d %d %d %d\n",
			remap[tv[0]], remap[tv[1]], remap[tv[2]], m.Level[t], g)
	}
	return bw.Flush()
}

// Decode reads an o2kmesh stream and reconstructs a standalone snapshot
// (with freshly built edge structure). The result does not belong to any
// Forest and cannot be adapted further; it is for inspection and solving.
func Decode(r io.Reader) (*Mesh, error) {
	br := bufio.NewReader(r)
	var version int
	if _, err := fmt.Fscanf(br, "o2kmesh %d\n", &version); err != nil {
		return nil, fmt.Errorf("mesh: bad header: %w", err)
	}
	if version != 1 {
		return nil, fmt.Errorf("mesh: unsupported version %d", version)
	}
	var nv int
	if _, err := fmt.Fscanf(br, "verts %d\n", &nv); err != nil || nv <= 0 {
		return nil, fmt.Errorf("mesh: bad vertex count")
	}
	vx := make([]float64, nv)
	vy := make([]float64, nv)
	for i := 0; i < nv; i++ {
		if _, err := fmt.Fscanf(br, "%g %g\n", &vx[i], &vy[i]); err != nil {
			return nil, fmt.Errorf("mesh: vertex %d: %w", i, err)
		}
	}
	var nt int
	if _, err := fmt.Fscanf(br, "tris %d\n", &nt); err != nil || nt <= 0 {
		return nil, fmt.Errorf("mesh: bad triangle count")
	}
	m := &Mesh{VX: vx, VY: vy}
	for t := 0; t < nt; t++ {
		var a, b, c, lvl, g int
		if _, err := fmt.Fscanf(br, "%d %d %d %d %d\n", &a, &b, &c, &lvl, &g); err != nil {
			return nil, fmt.Errorf("mesh: triangle %d: %w", t, err)
		}
		if a < 0 || a >= nv || b < 0 || b >= nv || c < 0 || c >= nv {
			return nil, fmt.Errorf("mesh: triangle %d has out-of-range vertex", t)
		}
		m.Tris = append(m.Tris, [3]int32{int32(a), int32(b), int32(c)})
		m.Level = append(m.Level, int8(lvl))
		m.Green = append(m.Green, g != 0)
		m.Leaf = append(m.Leaf, -1)
	}
	m.buildEdges()
	return m, nil
}

// FromRaw builds a standalone snapshot from raw coordinate and connectivity
// arrays (for importing externally generated meshes). It builds the edge
// structure; call Validate to check conformity.
func FromRaw(vx, vy []float64, tris [][3]int32) (*Mesh, error) {
	if len(vx) != len(vy) {
		return nil, fmt.Errorf("mesh: coordinate length mismatch")
	}
	if len(tris) == 0 {
		return nil, fmt.Errorf("mesh: no triangles")
	}
	m := &Mesh{VX: vx, VY: vy}
	for t, tv := range tris {
		for _, v := range tv {
			if v < 0 || int(v) >= len(vx) {
				return nil, fmt.Errorf("mesh: triangle %d vertex out of range", t)
			}
		}
		m.Tris = append(m.Tris, tv)
		m.Level = append(m.Level, 0)
		m.Green = append(m.Green, false)
		m.Leaf = append(m.Leaf, -1)
	}
	m.buildEdges()
	return m, nil
}
