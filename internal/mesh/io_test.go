package mesh

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := NewUnitSquare(6, 2)
	f.Adapt(DefaultFront(2).At(1))
	m := f.Snapshot()

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatalf("decoded mesh invalid: %v", err)
	}
	if m2.NumTris() != m.NumTris() || m2.NumEdges() != m.NumEdges() {
		t.Fatalf("sizes changed: %d/%d vs %d/%d",
			m2.NumTris(), m2.NumEdges(), m.NumTris(), m.NumEdges())
	}
	// Geometry preserved exactly (coordinates are printed at full precision).
	for tt := 0; tt < m.NumTris(); tt++ {
		if m.Area(tt) != m2.Area(tt) {
			t.Fatalf("triangle %d area changed: %v vs %v", tt, m.Area(tt), m2.Area(tt))
		}
		if m.Level[tt] != m2.Level[tt] || m.Green[tt] != m2.Green[tt] {
			t.Fatalf("triangle %d metadata changed", tt)
		}
	}
	if m2.NumVertsUsed() != m.NumVertsUsed() {
		t.Fatalf("vertex counts differ: %d vs %d", m2.NumVertsUsed(), m.NumVertsUsed())
	}
	// Decoded meshes are compacted: every vertex is used.
	if m2.NumVertsTotal() != m2.NumVertsUsed() {
		t.Fatal("decode did not compact vertices")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	cases := []string{
		"",
		"wrongmagic 1\n",
		"o2kmesh 99\nverts 1\n0 0\ntris 1\n0 0 0 0 0\n",
		"o2kmesh 1\nverts -3\n",
		"o2kmesh 1\nverts 1\n0 0\ntris 1\n0 0 9 0 0\n", // out-of-range vertex
		"o2kmesh 1\nverts 2\n0 0\n1 1\ntris 0\n",
		"o2kmesh 1\nverts 2\n0 0\nbogus\n",
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestFromRaw(t *testing.T) {
	// Unit square split into two triangles.
	vx := []float64{0, 1, 1, 0}
	vy := []float64{0, 0, 1, 1}
	tris := [][3]int32{{0, 1, 2}, {0, 2, 3}}
	m, err := FromRaw(vx, vy, tris)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", m.NumEdges())
	}
	if m.TotalArea() != 1 {
		t.Fatalf("area = %v", m.TotalArea())
	}
}

func TestFromRawRejectsBad(t *testing.T) {
	if _, err := FromRaw([]float64{0}, []float64{0, 1}, [][3]int32{{0, 0, 0}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromRaw([]float64{0, 1}, []float64{0, 1}, nil); err == nil {
		t.Error("empty triangles accepted")
	}
	if _, err := FromRaw([]float64{0, 1, 0}, []float64{0, 0, 1}, [][3]int32{{0, 1, 7}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}
