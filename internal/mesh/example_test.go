package mesh_test

import (
	"fmt"

	"o2k/internal/mesh"
)

// The forest persists across adaptation cycles; each Snapshot is a
// conforming mesh ready for the solver.
func ExampleForest_Adapt() {
	f := mesh.NewUnitSquare(4, 2)
	front := mesh.DefaultFront(2)
	st := f.Adapt(front.At(0))
	m := f.Snapshot()
	fmt.Println("refined:", st.Refined > 0, "valid:", m.Validate() == nil)
	fmt.Println("area:", m.TotalArea())
	// Output:
	// refined: true valid: true
	// area: 1
}

// Uniform refinement quadruples the triangle count per level and never
// needs green closures.
func ExampleForest_Snapshot() {
	f := mesh.NewUnitSquare(2, 1)
	f.Adapt(func(x, y float64) int { return 1 })
	m := f.Snapshot()
	fmt.Println(m.NumTris(), "triangles")
	// Output: 32 triangles
}
