package mesh

import (
	"math"
	"testing"
)

func TestCollidingFrontsValid(t *testing.T) {
	c := DefaultCollision(3)
	f := NewUnitSquare(8, 3)
	var sizes []int
	for step := 0; step < 6; step++ {
		f.Adapt(c.At(step))
		m := f.Snapshot()
		if err := m.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		sizes = append(sizes, m.NumTris())
	}
	// Two refined bands must cost more triangles than one.
	single := NewUnitSquare(8, 3)
	single.Adapt(DefaultFront(3).At(0))
	if sizes[0] <= single.Snapshot().NumTris() {
		t.Fatalf("two fronts (%d tris) not larger than one (%d)", sizes[0], single.Snapshot().NumTris())
	}
}

func TestCollidingFrontsCombineMax(t *testing.T) {
	c := DefaultCollision(3)
	ind := c.At(0)
	ia, ib := c.A.At(0), c.B.At(0)
	for _, pt := range [][2]float64{{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}, {0.3, 0.7}} {
		want := ia(pt[0], pt[1])
		if b := ib(pt[0], pt[1]); b > want {
			want = b
		}
		if got := ind(pt[0], pt[1]); got != want {
			t.Fatalf("indicator at %v = %d, want %d", pt, got, want)
		}
	}
}

func TestCollidingInitialFieldPeaks(t *testing.T) {
	c := DefaultCollision(3)
	onA := c.InitialField(c.A.X0+c.A.Radius, c.A.Y0)
	onB := c.InitialField(c.B.X0, c.B.Y0+c.B.Radius)
	mid := c.InitialField(0.5, 0.02)
	if onA < 0.9 || onB < 0.9 {
		t.Fatalf("field not peaked on fronts: %v %v", onA, onB)
	}
	if mid > 0.5 {
		t.Fatalf("field unexpectedly high away from fronts: %v", mid)
	}
	if math.IsNaN(onA + onB + mid) {
		t.Fatal("NaN field")
	}
}
