package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBaseMesh(t *testing.T) {
	f := NewUnitSquare(4, 3)
	if f.NumTris() != 32 {
		t.Fatalf("base tris = %d, want 32", f.NumTris())
	}
	if f.NumVerts() != 25 {
		t.Fatalf("base verts = %d, want 25", f.NumVerts())
	}
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumTris() != 32 {
		t.Fatalf("snapshot tris = %d", m.NumTris())
	}
	if math.Abs(m.TotalArea()-1) > 1e-12 {
		t.Fatalf("area = %v", m.TotalArea())
	}
}

func TestBadArgsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewUnitSquare(0, 3) },
		func() { NewUnitSquare(4, -1) },
		func() { NewUnitSquare(4, 31) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUniformRefinement(t *testing.T) {
	f := NewUnitSquare(2, 2)
	st := f.Adapt(func(x, y float64) int { return 1 })
	if st.Refined != 8 {
		t.Fatalf("refined %d, want 8", st.Refined)
	}
	m := f.Snapshot()
	if m.NumTris() != 32 {
		t.Fatalf("tris = %d, want 32", m.NumTris())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for tt := range m.Tris {
		if m.Green[tt] {
			t.Fatal("uniform refinement must produce no greens")
		}
		if m.Level[tt] != 1 {
			t.Fatalf("level = %d", m.Level[tt])
		}
	}
}

func TestLocalRefinementProducesGreens(t *testing.T) {
	f := NewUnitSquare(4, 2)
	// Refine only near the origin corner.
	f.Adapt(func(x, y float64) int {
		if x < 0.3 && y < 0.3 {
			return 2
		}
		return 0
	})
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	greens := 0
	for _, g := range m.Green {
		if g {
			greens++
		}
	}
	if greens == 0 {
		t.Fatal("local refinement must need green closures")
	}
	hist := m.LevelHistogram()
	if hist[2] == 0 || hist[0] == 0 {
		t.Fatalf("expected mixed levels, got %v", hist)
	}
}

func TestCoarseningRestoresBase(t *testing.T) {
	f := NewUnitSquare(3, 3)
	f.Adapt(func(x, y float64) int { return 2 })
	refined := f.LeafCount()
	if refined != 18*16 {
		t.Fatalf("after refine: %d leaves", refined)
	}
	st := f.Adapt(func(x, y float64) int { return 0 })
	if f.LeafCount() != 18 {
		t.Fatalf("after coarsen: %d leaves, want 18", f.LeafCount())
	}
	if st.Coarsened == 0 {
		t.Fatal("no coarsening recorded")
	}
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumTris() != 18 {
		t.Fatalf("snapshot after coarsen: %d tris", m.NumTris())
	}
}

func TestBalanceInvariant(t *testing.T) {
	f := NewUnitSquare(4, 4)
	// A needle-sharp request: max level at a point, zero elsewhere. The
	// balance passes must grade the transition.
	f.Adapt(func(x, y float64) int {
		if math.Hypot(x-0.5, y-0.5) < 0.05 {
			return 4
		}
		return 0
	})
	// Invariant: edge-adjacent leaves differ by at most one level.
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for e, ts := range m.EdgeTris {
		if ts[1] == nilIdx {
			continue
		}
		d := int(m.Level[ts[0]]) - int(m.Level[ts[1]])
		if d < -1 || d > 1 {
			t.Fatalf("edge %d joins levels %d and %d", e, m.Level[ts[0]], m.Level[ts[1]])
		}
	}
}

func TestMidpointReuse(t *testing.T) {
	f := NewUnitSquare(2, 2)
	f.Adapt(func(x, y float64) int { return 1 })
	nv := f.NumVerts()
	f.Adapt(func(x, y float64) int { return 0 }) // coarsen
	f.Adapt(func(x, y float64) int { return 1 }) // re-refine
	if f.NumVerts() != nv {
		t.Fatalf("midpoints not reused: %d vs %d", f.NumVerts(), nv)
	}
}

func TestMovingFrontCycles(t *testing.T) {
	f := NewUnitSquare(8, 3)
	w := DefaultFront(3)
	prevCenterTris := -1
	for step := 0; step < 5; step++ {
		st := f.Adapt(w.At(step))
		m := f.Snapshot()
		if err := m.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if st.Passes == 0 {
			t.Fatalf("step %d: no passes", step)
		}
		// The refined region must track the front: count max-level tris.
		hist := m.LevelHistogram()
		if hist[3] == 0 {
			t.Fatalf("step %d: no max-level triangles near front", step)
		}
		_ = prevCenterTris
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Mesh {
		f := NewUnitSquare(6, 3)
		w := DefaultFront(3)
		for step := 0; step < 3; step++ {
			f.Adapt(w.At(step))
		}
		return f.Snapshot()
	}
	a, b := build(), build()
	if a.NumTris() != b.NumTris() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.NumTris(), a.NumEdges(), b.NumTris(), b.NumEdges())
	}
	for i := range a.Tris {
		if a.Tris[i] != b.Tris[i] {
			t.Fatalf("triangle %d differs: %v vs %v", i, a.Tris[i], b.Tris[i])
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestEdgesManifold(t *testing.T) {
	f := NewUnitSquare(5, 2)
	f.Adapt(DefaultFront(2).At(0))
	m := f.Snapshot()
	// Euler check for a disc: V - E + T = 1.
	if v, e, tt := m.NumVertsUsed(), m.NumEdges(), m.NumTris(); v-e+tt != 1 {
		t.Fatalf("Euler characteristic %d (V=%d E=%d T=%d)", v-e+tt, v, e, tt)
	}
}

func TestAspectRatioBounded(t *testing.T) {
	f := NewUnitSquare(6, 3)
	w := DefaultFront(3)
	for step := 0; step < 4; step++ {
		f.Adapt(w.At(step))
		m := f.Snapshot()
		if wa := m.WorstAspect(); wa > 6 {
			t.Fatalf("step %d: aspect ratio %v too bad", step, wa)
		}
	}
}

func TestEdgeLenPositive(t *testing.T) {
	f := NewUnitSquare(4, 1)
	f.Adapt(func(x, y float64) int { return 1 })
	m := f.Snapshot()
	for e := range m.Edges {
		if m.EdgeLen(e) <= 0 {
			t.Fatalf("edge %d has non-positive length", e)
		}
	}
}

func TestIndicatorClamped(t *testing.T) {
	w := DefaultFront(3)
	ind := w.At(0)
	f := func(x, y float64) bool {
		// Map arbitrary floats into the unit square.
		x = math.Abs(x) - math.Floor(math.Abs(x))
		y = math.Abs(y) - math.Floor(math.Abs(y))
		l := ind(x, y)
		return l >= 0 && l <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialFieldPeaksAtFront(t *testing.T) {
	w := DefaultFront(3)
	on := w.InitialField(w.X0+w.Radius, w.Y0)
	off := w.InitialField(w.X0+3*w.Radius, w.Y0)
	if on < 0.99 || off > 0.1 {
		t.Fatalf("field shape wrong: on=%v off=%v", on, off)
	}
}

// Property: area is conserved through any sequence of adaptation cycles.
func TestAreaConservedProperty(t *testing.T) {
	f := func(seed uint8) bool {
		fr := NewUnitSquare(3, 3)
		for step := 0; step < 4; step++ {
			s := float64(seed%7)/7.0 + 0.1
			fr.Adapt(func(x, y float64) int {
				if math.Hypot(x-s, y-s) < 0.3 {
					return int(seed) % 4
				}
				return 0
			})
			m := fr.Snapshot()
			if math.Abs(m.TotalArea()-1) > 1e-9 {
				return false
			}
			if m.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
