package mesh

import "testing"

// Host-performance microbenchmarks of the adaptive-mesh substrate.

func BenchmarkAdaptCycle(b *testing.B) {
	front := DefaultFront(3)
	for i := 0; i < b.N; i++ {
		f := NewUnitSquare(16, 3)
		for c := 0; c < 3; c++ {
			f.Adapt(front.At(c))
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	f := NewUnitSquare(16, 3)
	f.Adapt(DefaultFront(3).At(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Snapshot()
	}
}

func BenchmarkValidate(b *testing.B) {
	f := NewUnitSquare(16, 3)
	f.Adapt(DefaultFront(3).At(0))
	m := f.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
