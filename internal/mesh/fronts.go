package mesh

import "math"

// CollidingFronts is a second, harder workload: two circular features that
// start in opposite corners and sweep toward (and past) each other. Around
// the collision the refined regions merge, the triangle count spikes, and
// the partitions must reorganize drastically — a stress test for the
// load-balancing and remapping machinery beyond the single moving front.
type CollidingFronts struct {
	A, B     MovingFront
	MaxLevel int
}

// DefaultCollision returns the standard two-front workload.
func DefaultCollision(maxLevel int) CollidingFronts {
	a := DefaultFront(maxLevel)
	b := MovingFront{
		Radius:   0.18,
		Band:     0.04,
		MaxLevel: maxLevel,
		X0:       0.85,
		Y0:       0.85,
		DX:       -0.10,
		DY:       -0.08,
	}
	return CollidingFronts{A: a, B: b, MaxLevel: maxLevel}
}

// At returns the combined indicator at the given step: the deeper of the two
// fronts' requests.
func (c CollidingFronts) At(step int) Indicator {
	ia := c.A.At(step)
	ib := c.B.At(step)
	return func(x, y float64) int {
		la := ia(x, y)
		if lb := ib(x, y); lb > la {
			return lb
		}
		return la
	}
}

// InitialField superimposes both fronts' bumps.
func (c CollidingFronts) InitialField(x, y float64) float64 {
	da := math.Hypot(x-c.A.X0, y-c.A.Y0) - c.A.Radius
	db := math.Hypot(x-c.B.X0, y-c.B.Y0) - c.B.Radius
	return math.Exp(-(da*da)/(2*c.A.Band*c.A.Band)) +
		math.Exp(-(db*db)/(2*c.B.Band*c.B.Band))
}
