package mesh

import "math"

// MovingFront is the workload driver: a circular solution feature (think of
// a shock or flame front) of the given radius whose centre moves across the
// domain over the course of the experiment. The mesh must refine to MaxLevel
// in a band around the front and may coarsen everywhere else — the classic
// adaptive pattern whose shifting work distribution forces dynamic load
// balancing.
type MovingFront struct {
	Radius   float64 // front radius
	Band     float64 // half-width of the fully refined band around the front
	MaxLevel int     // level requested inside the band
	X0, Y0   float64 // centre at step 0
	DX, DY   float64 // centre displacement per step
}

// DefaultFront returns the standard workload: a quarter-circle front
// sweeping from the lower-left toward the upper-right of the unit square.
func DefaultFront(maxLevel int) MovingFront {
	return MovingFront{
		Radius:   0.25,
		Band:     0.04,
		MaxLevel: maxLevel,
		X0:       0.15,
		Y0:       0.15,
		DX:       0.09,
		DY:       0.07,
	}
}

// At returns the indicator for time step "step": desired level decays by one
// per band-width of distance from the front, so the request is graded.
func (w MovingFront) At(step int) Indicator {
	cx := w.X0 + float64(step)*w.DX
	cy := w.Y0 + float64(step)*w.DY
	return func(x, y float64) int {
		d := math.Abs(math.Hypot(x-cx, y-cy) - w.Radius)
		lvl := w.MaxLevel - int(math.Floor((d-w.Band)/w.Band))
		if d <= w.Band {
			lvl = w.MaxLevel
		}
		if lvl < 0 {
			return 0
		}
		if lvl > w.MaxLevel {
			return w.MaxLevel
		}
		return lvl
	}
}

// InitialField returns the physical field the solver smooths: a steep bump
// along the front at step 0, giving the solver something real to do and the
// cross-model result checks something nontrivial to compare.
func (w MovingFront) InitialField(x, y float64) float64 {
	d := math.Hypot(x-w.X0, y-w.Y0) - w.Radius
	return math.Exp(-(d * d) / (2 * w.Band * w.Band))
}
