package mesh

// Round-trip and corruption properties of the version-2 (global-ID) snapshot
// codec and the front codecs — the formats the persistent plan cache stores.

import (
	"bytes"
	"reflect"
	"testing"

	"o2k/internal/planio"
)

// adaptedSnapshot builds a snapshot with the properties the codec must
// preserve: green hanging-vertex closures and holes in the global ID space.
func adaptedSnapshot(t *testing.T) *Mesh {
	t.Helper()
	f := NewUnitSquare(6, 2)
	f.Adapt(DefaultFront(2).At(0))
	f.Adapt(DefaultFront(2).At(1))
	m := f.Snapshot()
	greens := 0
	for _, g := range m.Green {
		if g {
			greens++
		}
	}
	if greens == 0 {
		t.Fatal("test snapshot has no green closures — not exercising the codec")
	}
	if m.NumVertsTotal() == m.NumVertsUsed() {
		t.Fatal("test snapshot has no ID-space holes — not exercising the codec")
	}
	return m
}

func TestGlobalRoundTripDeepEqual(t *testing.T) {
	m := adaptedSnapshot(t)
	var buf bytes.Buffer
	if err := m.EncodeGlobal(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeGlobal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("global round trip is not DeepEqual")
	}
}

func TestFrontCodecsRoundTrip(t *testing.T) {
	front := DefaultFront(3)
	var pw planio.Writer
	front.AppendTo(&pw)
	s := planio.NewScanner(pw.Bytes())
	got, err := DecodeMovingFrontFrom(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != front {
		t.Fatalf("front round trip: %+v != %+v", got, front)
	}

	col := DefaultCollision(3)
	var pw2 planio.Writer
	col.AppendTo(&pw2)
	s2 := planio.NewScanner(pw2.Bytes())
	got2, err := DecodeCollidingFrontsFrom(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != col {
		t.Fatalf("collision round trip: %+v != %+v", got2, col)
	}
}

// flipSample yields ~n corrupted copies of data, each with one bit flipped,
// spread across the payload.
func flipSample(data []byte, n int) [][]byte {
	if len(data) == 0 {
		return nil
	}
	step := len(data) / n
	if step == 0 {
		step = 1
	}
	var out [][]byte
	for pos := 0; pos < len(data); pos += step {
		c := append([]byte(nil), data...)
		c[pos] ^= 1 << (pos % 8)
		out = append(out, c)
	}
	return out
}

// Any single bit flip must decode to an error or a value — never a panic.
// (Silent wrong values are the checksum layer's job; this is the total-
// decoder property the cache's corruption path depends on.)
func TestGlobalDecodeBitFlipsNeverPanic(t *testing.T) {
	m := adaptedSnapshot(t)
	var buf bytes.Buffer
	if err := m.EncodeGlobal(&buf); err != nil {
		t.Fatal(err)
	}
	for _, c := range flipSample(buf.Bytes(), 200) {
		DecodeGlobal(bytes.NewReader(c)) // must not panic
	}
}
