package mesh

import (
	"fmt"
	"math"
)

// Quality metrics and structural validation for snapshots. These back the
// mesh test suite and the workload-characteristics table.

// AspectRatio returns the ratio of longest edge to twice the inradius of
// triangle t (1.0 ≈ equilateral; larger is worse).
func (m *Mesh) AspectRatio(t int) float64 {
	v := m.Tris[t]
	l := [3]float64{}
	for i := 0; i < 3; i++ {
		a, b := v[i], v[(i+1)%3]
		dx := m.VX[a] - m.VX[b]
		dy := m.VY[a] - m.VY[b]
		l[i] = math.Hypot(dx, dy)
	}
	area := m.Area(t)
	if area == 0 {
		return math.Inf(1)
	}
	s := (l[0] + l[1] + l[2]) / 2
	inr := area / s
	longest := math.Max(l[0], math.Max(l[1], l[2]))
	return longest / (2 * math.Sqrt(3) * inr) * math.Sqrt(3)
}

// WorstAspect returns the worst aspect ratio over all triangles.
func (m *Mesh) WorstAspect() float64 {
	w := 0.0
	for t := range m.Tris {
		if a := m.AspectRatio(t); a > w {
			w = a
		}
	}
	return w
}

// Validate checks the structural invariants of a conforming snapshot:
//   - every triangle has three distinct, in-range vertices and positive area;
//   - every edge borders one or two triangles (manifold);
//   - the mesh covers the unit square exactly (areas sum to 1);
//   - no triangle corner lies strictly inside another triangle's edge
//     (conformity: no hanging vertices survive extraction).
func (m *Mesh) Validate() error {
	if len(m.Tris) == 0 {
		return fmt.Errorf("mesh: empty snapshot")
	}
	nv := int32(len(m.VX))
	for t, v := range m.Tris {
		if v[0] == v[1] || v[1] == v[2] || v[0] == v[2] {
			return fmt.Errorf("mesh: triangle %d has repeated vertices %v", t, v)
		}
		for _, vi := range v {
			if vi < 0 || vi >= nv {
				return fmt.Errorf("mesh: triangle %d vertex %d out of range", t, vi)
			}
		}
		if m.Area(t) <= 0 {
			return fmt.Errorf("mesh: triangle %d has non-positive area", t)
		}
	}
	for e, ts := range m.EdgeTris {
		if ts[0] == nilIdx {
			return fmt.Errorf("mesh: edge %d has no triangles", e)
		}
	}
	if a := m.TotalArea(); math.Abs(a-1.0) > 1e-9 {
		return fmt.Errorf("mesh: total area %v != 1", a)
	}
	// Conformity: for every boundaryless edge shared by exactly one triangle,
	// it must lie on the domain boundary.
	for e, ts := range m.EdgeTris {
		if ts[1] != nilIdx {
			continue
		}
		a, b := m.Edges[e][0], m.Edges[e][1]
		if !onBoundary(m.VX[a], m.VY[a]) || !onBoundary(m.VX[b], m.VY[b]) {
			return fmt.Errorf("mesh: interior edge %d (%d-%d) has only one triangle (hanging vertex?)",
				e, a, b)
		}
	}
	return nil
}

func onBoundary(x, y float64) bool {
	const eps = 1e-12
	return x < eps || x > 1-eps || y < eps || y > 1-eps
}

// LevelHistogram returns the triangle count per refinement level.
func (m *Mesh) LevelHistogram() map[int]int {
	h := make(map[int]int)
	for _, l := range m.Level {
		h[int(l)]++
	}
	return h
}
