package core

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Stable JSON codec for Metrics, the payload type of the persistent cell
// cache (internal/runner/diskcache). The encoding must be lossless — a
// decoded Metrics renders the exact bytes in every table the original
// would — and that holds because every field is exported and every value
// round-trips exactly through encoding/json: integers (including the uint64
// traffic counters) are emitted as full-precision decimals, and float64s use
// Go's shortest-exact formatting, which parses back to the identical bit
// pattern. The codec tests pin this with a Fingerprint equality check.

// EncodeMetrics serializes m for the persistent cell cache. It fails only
// on non-finite floats (which the deterministic simulator never produces);
// the caller treats a failure as "do not cache".
func EncodeMetrics(m Metrics) ([]byte, error) {
	return json.Marshal(m)
}

// DecodeMetrics is the strict inverse of EncodeMetrics: unknown fields and
// trailing data are errors, so an entry written by a different Metrics
// schema that slipped past the cache's version fence is rejected (and
// recomputed) instead of being half-read.
func DecodeMetrics(data []byte) (Metrics, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Metrics
	if err := dec.Decode(&m); err != nil {
		return Metrics{}, fmt.Errorf("core: decode metrics: %w", err)
	}
	if dec.More() {
		return Metrics{}, fmt.Errorf("core: decode metrics: trailing data")
	}
	return m, nil
}
