package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CellKey computes the stable content hash that identifies a simulation
// cell: one (application, model, machine config, workload, processor count,
// knobs) point of the evaluation matrix. The components are JSON-encoded in
// order and digested, so the key depends only on the *values* of the
// configuration — two experiments that ask for the same cell, however they
// construct it, get the same key and therefore share one simulation (the
// virtual-time engine is deterministic, see DESIGN.md §4, so the sharing is
// semantically invisible).
//
// Every component must be JSON-encodable with all relevant state exported;
// an unencodable component panics, since silently dropping it would corrupt
// the cache.
func CellKey(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("core: cell key component %T is not hashable: %v", p, err))
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Fingerprint digests the complete metrics content. Two runs of the same
// cell must produce equal fingerprints — the cache-correctness tests assert
// this, and a mismatch would indicate nondeterminism in the simulator.
func (m Metrics) Fingerprint() string { return CellKey(m) }
