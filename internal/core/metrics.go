// Package core is the comparison framework of the study: the Model
// enumeration, the Metrics every application run produces, and the report
// generators that turn runs into the paper's tables and figures.
package core

import (
	"fmt"
	"strings"

	"o2k/internal/sim"
)

// Model identifies one of the three programming models under comparison.
type Model int

// The three programming models of the paper's title.
const (
	MP Model = iota // two-sided message passing (MPI style)
	SHMEM
	SAS // cache-coherent shared address space
	NumModels

	// Hybrid is the extension model beyond the paper's three: message
	// passing between node boards, shared address space within a node —
	// the direction the authors' follow-up work on clusters of SMPs took.
	// It is not part of AllModels; experiments opt into it explicitly.
	Hybrid Model = NumModels
)

// String returns the model's display name.
func (m Model) String() string {
	switch m {
	case MP:
		return "MP"
	case SHMEM:
		return "SHMEM"
	case SAS:
		return "CC-SAS"
	case Hybrid:
		return "MP+SAS"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// AllModels lists the models in presentation order.
func AllModels() []Model { return []Model{MP, SHMEM, SAS} }

// Metrics is the outcome of one application run on one machine
// configuration under one programming model.
type Metrics struct {
	Model Model
	Procs int

	Total     sim.Time                // simulated wall-clock (max over procs)
	PhaseMax  [sim.NumPhases]sim.Time // per-phase critical path
	PhaseAvg  [sim.NumPhases]sim.Time // per-phase average over procs
	Counters  sim.Counters            // summed over procs
	DataBytes int                     // model-visible field memory (analytic)

	Checksum float64 // deterministic result digest; equal across models
	Extra    map[string]float64
}

// String summarizes the run in one line: model, processors, time, and the
// dominant phase.
func (m Metrics) String() string {
	best := sim.Phase(0)
	for ph := sim.Phase(1); ph < sim.NumPhases; ph++ {
		if m.PhaseMax[ph] > m.PhaseMax[best] {
			best = ph
		}
	}
	return fmt.Sprintf("%v P=%d total=%v dominant=%s(%v)",
		m.Model, m.Procs, m.Total, best, m.PhaseMax[best])
}

// Speedup computes base.Total / m.Total, the figure-of-merit for the
// scalability plots (base is the same model at P=1 unless stated otherwise).
func (m Metrics) Speedup(base Metrics) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(base.Total) / float64(m.Total)
}

// PhaseFraction returns the share of critical-path time spent in ph.
func (m Metrics) PhaseFraction(ph sim.Phase) float64 {
	var sum sim.Time
	for _, t := range m.PhaseMax {
		sum += t
	}
	if sum == 0 {
		return 0
	}
	return float64(m.PhaseMax[ph]) / float64(sum)
}

// Table is a simple fixed-column text table, the output format of every
// experiment (rows print aligned, suitable for EXPERIMENTS.md).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// F formats a float with 3 significant decimals for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// FT formats a virtual time for table cells.
func FT(t sim.Time) string { return t.String() }
