package core

import (
	"strings"
	"testing"

	"o2k/internal/sim"
)

func TestModelNames(t *testing.T) {
	if MP.String() != "MP" || SHMEM.String() != "SHMEM" || SAS.String() != "CC-SAS" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model name wrong")
	}
	if len(AllModels()) != int(NumModels) {
		t.Fatal("AllModels incomplete")
	}
}

func TestSpeedup(t *testing.T) {
	base := Metrics{Total: 100}
	m := Metrics{Total: 25}
	if got := m.Speedup(base); got != 4 {
		t.Fatalf("speedup = %v", got)
	}
	var zero Metrics
	if zero.Speedup(base) != 0 {
		t.Fatal("zero-total speedup should be 0")
	}
}

func TestPhaseFraction(t *testing.T) {
	var m Metrics
	m.PhaseMax[sim.PhaseCompute] = 75
	m.PhaseMax[sim.PhaseComm] = 25
	if f := m.PhaseFraction(sim.PhaseCompute); f != 0.75 {
		t.Fatalf("fraction = %v", f)
	}
	var empty Metrics
	if empty.PhaseFraction(sim.PhaseComm) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "23456")
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// Columns aligned: both rows' second column starts at the same offset.
	if strings.Index(lines[3], "1") < len("a-much-longer-name") {
		t.Error("column alignment broken")
	}
}

func TestMetricsString(t *testing.T) {
	var m Metrics
	m.Model = SAS
	m.Procs = 8
	m.Total = 2 * sim.Millisecond
	m.PhaseMax[sim.PhaseCompute] = sim.Millisecond
	m.PhaseMax[sim.PhaseSync] = 2 * sim.Millisecond
	s := m.String()
	for _, want := range []string{"CC-SAS", "P=8", "sync"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if FT(1500*sim.Nanosecond) != "1.500us" {
		t.Fatalf("FT = %q", FT(1500))
	}
}
