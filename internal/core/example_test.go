package core_test

import (
	"fmt"

	"o2k/internal/core"
	"o2k/internal/sim"
)

// Tables are the output format of every experiment: aligned plain text that
// drops straight into EXPERIMENTS.md.
func ExampleTable() {
	t := &core.Table{
		Title:  "Demo",
		Header: []string{"model", "time"},
	}
	t.AddRow(core.MP.String(), core.FT(1500*sim.Microsecond))
	t.AddRow(core.SAS.String(), core.FT(500*sim.Microsecond))
	fmt.Print(t.String())
	// Output:
	// ## Demo
	// model   time
	// ------  ---------
	// MP      1.500ms
	// CC-SAS  500.000us
}

// Speedup is measured against the same model's single-processor run.
func ExampleMetrics_Speedup() {
	base := core.Metrics{Total: 80 * sim.Millisecond}
	m := core.Metrics{Total: 10 * sim.Millisecond}
	fmt.Printf("%.1fx\n", m.Speedup(base))
	// Output: 8.0x
}
