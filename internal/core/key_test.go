package core

import (
	"testing"

	"o2k/internal/sim"
)

func TestCellKeyStableAndDiscriminating(t *testing.T) {
	type w struct {
		N    int
		Bias float64
	}
	a := CellKey("mesh", MP, w{24, 0.5}, 16)
	if a != CellKey("mesh", MP, w{24, 0.5}, 16) {
		t.Fatal("identical components hashed differently")
	}
	for _, other := range []string{
		CellKey("mesh", SHMEM, w{24, 0.5}, 16), // model
		CellKey("mesh", MP, w{25, 0.5}, 16),    // workload
		CellKey("mesh", MP, w{24, 0.5}, 32),    // procs
		CellKey("nbody", MP, w{24, 0.5}, 16),   // application
	} {
		if other == a {
			t.Fatalf("distinct cell collided with %q", a)
		}
	}
	if len(a) != 32 {
		t.Fatalf("key %q is not 32 hex chars", a)
	}
}

func TestCellKeyRejectsUnhashable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CellKey accepted a func component")
		}
	}()
	CellKey(func() {})
}

func TestMetricsFingerprint(t *testing.T) {
	m := Metrics{Model: SAS, Procs: 8, Total: 123 * sim.Microsecond,
		DataBytes: 4096, Checksum: 1.25, Extra: map[string]float64{"x": 1}}
	n := m
	if m.Fingerprint() != n.Fingerprint() {
		t.Fatal("equal metrics, different fingerprints")
	}
	n.Counters.MsgsSent++
	if m.Fingerprint() == n.Fingerprint() {
		t.Fatal("fingerprint ignored a counter change")
	}
}
