package core

import (
	"math"
	"testing"

	"o2k/internal/sim"
)

// sampleMetrics exercises every field, including values that stress JSON
// round-tripping: large uint64 counters and floats with no short decimal
// form.
func sampleMetrics() Metrics {
	m := Metrics{
		Model:     SAS,
		Procs:     64,
		Total:     sim.Time(1234567890123),
		DataBytes: 9 << 20,
		Checksum:  math.Pi * 1e6,
		Extra:     map[string]float64{"imbalance": 1.0 / 3.0, "remap": 0.1},
	}
	for ph := sim.Phase(0); ph < sim.NumPhases; ph++ {
		m.PhaseMax[ph] = sim.Time(1e9 + int64(ph)*7919)
		m.PhaseAvg[ph] = sim.Time(9e8 + int64(ph)*104729)
	}
	m.Counters = sim.Counters{
		CacheHits:    1 << 60, // beyond float64's exact-integer range
		LocalMisses:  3,
		RemoteMisses: 5,
		CohMisses:    7,
		BytesSent:    math.MaxUint64,
		MsgsSent:     11,
		Collectives:  13,
		LockOps:      17,
		AllocBytes:   19,
	}
	return m
}

func TestMetricsCodecRoundtripExact(t *testing.T) {
	m := sampleMetrics()
	data, err := EncodeMetrics(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMetrics(data)
	if err != nil {
		t.Fatal(err)
	}
	// Fingerprint hashes the complete content, so equality here proves the
	// round-trip is bit-exact — the property the persistent cache's
	// byte-identity guarantee rests on.
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("round-trip changed the metrics:\n in  %+v\n out %+v", m, got)
	}
	if got.Counters.BytesSent != math.MaxUint64 || got.Counters.CacheHits != 1<<60 {
		t.Fatalf("uint64 counters lost precision: %+v", got.Counters)
	}
	if got.Checksum != m.Checksum || got.Extra["imbalance"] != 1.0/3.0 {
		t.Fatalf("float64 fields lost precision: %+v", got)
	}
}

func TestDecodeMetricsStrict(t *testing.T) {
	m := sampleMetrics()
	data, err := EncodeMetrics(m)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"unknown field": []byte(`{"Model":2,"Bogus":1}`),
		"trailing data": append(append([]byte{}, data...), []byte(`{"Model":0}`)...),
		"truncated":     data[:len(data)/2],
		"garbage":       []byte("xx"),
		"empty":         nil,
	} {
		if _, err := DecodeMetrics(bad); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestEncodeMetricsRejectsNonFinite(t *testing.T) {
	m := sampleMetrics()
	m.Checksum = math.NaN()
	if _, err := EncodeMetrics(m); err == nil {
		t.Fatal("NaN metrics encoded; the cache would store an unreadable entry")
	}
}
