// Package solver holds the numerical kernel shared by every programming-
// model implementation of the adaptive-mesh application: an explicit,
// edge-based relaxation sweep (the compute phase of each outer cycle), plus
// the sequential reference implementation used to validate the parallel
// codes.
//
// The numerics are deliberately simple — a damped Jacobi/graph-Laplacian
// smoothing of a vertex field — because the paper's comparison is about the
// parallelization structure (irregular gather/scatter over mesh edges), not
// about the PDE. The per-edge/per-vertex operation counts below are what the
// cost model charges for the floating-point work.
package solver

import (
	"o2k/internal/mesh"
)

// Relaxation coefficient of the update u[v] += Damp * resid[v] / deg[v].
const Damp = 0.4

// Operation counts charged to the virtual clock per unit of work. They
// approximate the instruction footprint of an edge-based CFD-style kernel.
const (
	FluxOps   = 6  // per edge: load/sub/two accumulations worth of FP work
	UpdateOps = 5  // per vertex: divide, multiply, add
	InterpOps = 3  // per interpolated (new) vertex
	MarkOps   = 9  // per triangle: error-indicator evaluation
	ApplyOps  = 24 // per structural change applied to the mesh object
	PartOps   = 14 // per triangle per RCB level: comparison sort work
)

// Flux returns the edge flux for endpoint values ua, ub: the contribution
// added to a and subtracted from b. Shared by all models so the arithmetic
// is bit-identical.
func Flux(ua, ub float64) float64 { return ub - ua }

// Update returns the new vertex value given its residual and degree.
func Update(u, resid float64, deg int32) float64 {
	return u + Damp*resid/float64(deg)
}

// Degrees returns the edge-degree of every global vertex ID in snapshot m
// (zero for unused vertices).
func Degrees(m *mesh.Mesh) []int32 {
	deg := make([]int32, m.NumVertsTotal())
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}

// Reference runs iters sequential relaxation sweeps over snapshot m,
// modifying u in place (indexed by global vertex ID). Accumulation order is
// ascending edge order then ascending vertex order — identical to a P=1
// parallel run, and within roundoff of any P.
func Reference(m *mesh.Mesh, u []float64, iters int) {
	deg := Degrees(m)
	acc := make([]float64, len(u))
	for it := 0; it < iters; it++ {
		for i := range acc {
			acc[i] = 0
		}
		for _, e := range m.Edges {
			a, b := e[0], e[1]
			f := Flux(u[a], u[b])
			acc[a] += f
			acc[b] -= f
		}
		for v := range u {
			if deg[v] > 0 && m.VertUsed(int32(v)) {
				u[v] = Update(u[v], acc[v], deg[v])
			}
		}
	}
}

// Checksum folds the field into a single deterministic digest: the sum over
// used vertices in ascending ID order. Parallel runs at the same processor
// count produce bit-identical checksums across all three models; against
// this sequential digest they agree within floating-point reassociation
// tolerance (exactly at P=1).
func Checksum(m *mesh.Mesh, u []float64) float64 {
	s := 0.0
	for v := 0; v < m.NumVertsTotal(); v++ {
		if m.VertUsed(int32(v)) {
			s += u[v]
		}
	}
	return s
}
