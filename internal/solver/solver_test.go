package solver

import (
	"math"
	"testing"

	"o2k/internal/mesh"
)

func snapshot(t *testing.T) *mesh.Mesh {
	t.Helper()
	f := mesh.NewUnitSquare(6, 2)
	f.Adapt(mesh.DefaultFront(2).At(0))
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func initField(m *mesh.Mesh) []float64 {
	w := mesh.DefaultFront(2)
	u := make([]float64, m.NumVertsTotal())
	for v := range u {
		if m.VertUsed(int32(v)) {
			u[v] = w.InitialField(m.VX[v], m.VY[v])
		}
	}
	return u
}

func TestDegrees(t *testing.T) {
	m := snapshot(t)
	deg := Degrees(m)
	// Sum of degrees = 2 * edges.
	sum := int32(0)
	for _, d := range deg {
		sum += d
	}
	if int(sum) != 2*m.NumEdges() {
		t.Fatalf("degree sum %d != 2E %d", sum, 2*m.NumEdges())
	}
	// Used vertices have degree >= 2 on a conforming 2-D mesh.
	for v, d := range deg {
		if m.VertUsed(int32(v)) && d < 2 {
			t.Fatalf("vertex %d degree %d", v, d)
		}
		if !m.VertUsed(int32(v)) && d != 0 {
			t.Fatalf("unused vertex %d has degree %d", v, d)
		}
	}
}

func TestReferenceSmooths(t *testing.T) {
	m := snapshot(t)
	u := initField(m)
	varBefore := fieldVariance(m, u)
	Reference(m, u, 20)
	varAfter := fieldVariance(m, u)
	if varAfter >= varBefore {
		t.Fatalf("relaxation did not smooth: %v -> %v", varBefore, varAfter)
	}
	for v := range u {
		if math.IsNaN(u[v]) || math.IsInf(u[v], 0) {
			t.Fatal("field blew up")
		}
	}
}

func TestReferenceConservesMeanApprox(t *testing.T) {
	// Graph-Laplacian smoothing with symmetric edge fluxes conserves the
	// degree-weighted total exactly except for boundary effects; the plain
	// sum must stay bounded.
	m := snapshot(t)
	u := initField(m)
	before := Checksum(m, u)
	Reference(m, u, 10)
	after := Checksum(m, u)
	if math.Abs(after) > 10*math.Abs(before)+1 {
		t.Fatalf("sum drifted wildly: %v -> %v", before, after)
	}
}

func TestReferenceDeterministic(t *testing.T) {
	m := snapshot(t)
	u1 := initField(m)
	u2 := initField(m)
	Reference(m, u1, 7)
	Reference(m, u2, 7)
	for v := range u1 {
		if u1[v] != u2[v] {
			t.Fatal("reference nondeterministic")
		}
	}
}

func TestFluxAntisymmetric(t *testing.T) {
	if Flux(1, 3) != -Flux(3, 1) {
		t.Fatal("flux not antisymmetric")
	}
	if Flux(2, 2) != 0 {
		t.Fatal("flux of equal values must vanish")
	}
}

func TestUpdateFixedPoint(t *testing.T) {
	// Zero residual: value unchanged.
	if Update(5, 0, 4) != 5 {
		t.Fatal("update moved a converged value")
	}
	// Positive residual raises the value.
	if Update(5, 1, 4) <= 5 {
		t.Fatal("update direction wrong")
	}
}

func fieldVariance(m *mesh.Mesh, u []float64) float64 {
	n, sum := 0, 0.0
	for v := range u {
		if m.VertUsed(int32(v)) {
			sum += u[v]
			n++
		}
	}
	mean := sum / float64(n)
	va := 0.0
	for v := range u {
		if m.VertUsed(int32(v)) {
			d := u[v] - mean
			va += d * d
		}
	}
	return va / float64(n)
}
