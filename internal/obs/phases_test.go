package obs

import (
	"math"
	"strings"
	"testing"

	"o2k/internal/sim"
)

// fixtureGroup drives three processors by hand so every aggregate below is
// checkable on paper:
//
//	proc  compute  sync
//	p0    100ns    1ns
//	p1    300ns    2ns
//	p2    200ns    2ns
//
// compute: min 100, max 300, sum 600, mean 200, imbalance 300*3/600 = 1.5.
// sync:    min 1, max 2, sum 5, mean round(5/3) = 2, imbalance 2*3/5 = 1.2.
// clocks:  101, 302, 202 → min 101, max 302, sum 605, mean round(605/3) =
// 202 (rounds up from 201.67), imbalance 302*3/605 = 906/605.
func fixtureGroup() *sim.Group {
	g := sim.NewGroup(3)
	comp := []sim.Time{100, 300, 200}
	sync := []sim.Time{1, 2, 2}
	for i := 0; i < 3; i++ {
		p := g.Proc(i)
		p.SetPhase(sim.PhaseCompute)
		p.Advance(comp[i])
		p.SetPhase(sim.PhaseSync)
		p.Advance(sync[i])
	}
	return g
}

func TestGroupPhasesHandComputed(t *testing.T) {
	stats := GroupPhases(fixtureGroup())
	if len(stats) != 2 {
		t.Fatalf("got %d phases, want 2 (compute, sync): %+v", len(stats), stats)
	}
	want := []PhaseStat{
		{Phase: "compute", Min: 100, Max: 300, Mean: 200, Imbalance: 1.5},
		{Phase: "sync", Min: 1, Max: 2, Mean: 2, Imbalance: 1.2},
	}
	for i, w := range want {
		got := stats[i]
		if got.Phase != w.Phase || got.Min != w.Min || got.Max != w.Max || got.Mean != w.Mean {
			t.Errorf("%s: got %+v, want %+v", w.Phase, got, w)
		}
		if math.Abs(got.Imbalance-w.Imbalance) > 1e-12 {
			t.Errorf("%s: imbalance = %v, want %v", w.Phase, got.Imbalance, w.Imbalance)
		}
	}
}

func TestRunPhasesClockAggregate(t *testing.T) {
	rp := NewRunPhases("fixture P=3", fixtureGroup())
	if rp.Procs != 3 || rp.Total != 302 {
		t.Fatalf("Procs/Total = %d/%d, want 3/302", rp.Procs, rp.Total)
	}
	c := rp.Clock
	if c.Phase != "TOTAL" || c.Min != 101 || c.Max != 302 || c.Mean != 202 {
		t.Fatalf("clock aggregate = %+v", c)
	}
	if want := 302.0 * 3 / 605; math.Abs(c.Imbalance-want) > 1e-12 {
		t.Fatalf("clock imbalance = %v, want %v", c.Imbalance, want)
	}
}

func TestPhaseTableShape(t *testing.T) {
	runs := []RunPhases{NewRunPhases("fixture P=3", fixtureGroup())}
	tb := PhaseTable(runs)
	if len(tb.Rows) != 3 { // compute, sync, TOTAL
		t.Fatalf("got %d rows, want 3:\n%s", len(tb.Rows), tb)
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "TOTAL" {
		t.Fatalf("last row is %v, want the TOTAL row", last)
	}
	if !strings.Contains(tb.String(), "1.500") {
		t.Fatalf("rendered table lost the compute imbalance factor:\n%s", tb)
	}
}

// A phase every processor spent identical time in must aggregate to
// imbalance exactly 1.0 — the balanced baseline readers compare against.
func TestBalancedPhaseIsExactlyOne(t *testing.T) {
	g := sim.NewGroup(4)
	for i := 0; i < 4; i++ {
		p := g.Proc(i)
		p.SetPhase(sim.PhaseRemap)
		p.Advance(777)
	}
	stats := GroupPhases(g)
	if len(stats) != 1 || stats[0].Imbalance != 1.0 {
		t.Fatalf("balanced phase: %+v", stats)
	}
}
