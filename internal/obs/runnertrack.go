package obs

import (
	"sort"
	"sync"
	"time"

	"o2k/internal/runner"
)

// Collector buffers runner cell events for later export. Its Hook is safe
// for concurrent use (the engine calls it from request and owner goroutines
// alike); read the events only after the run has finished.
type Collector struct {
	mu     sync.Mutex
	events []runner.Event
}

// Hook returns the function to pass to runner.Engine.SetHook.
func (c *Collector) Hook() runner.Hook {
	return func(ev runner.Event) {
		c.mu.Lock()
		c.events = append(c.events, ev)
		c.mu.Unlock()
	}
}

// Events returns a snapshot of the collected events.
func (c *Collector) Events() []runner.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]runner.Event(nil), c.events...)
}

// Len returns the number of events collected so far.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// AddRunnerTrack adds the engine's cell events as the host-side process
// (pid 0, wall time, normalized so the earliest event is at ts 0). Span
// events — compute attempts, disk hits, dedup waits — are packed greedily
// into non-overlapping lanes, one Chrome thread per lane, so concurrent
// cells render side by side; memo-hit and retry instants go to a dedicated
// lane above them.
func (b *Builder) AddRunnerTrack(events []runner.Event) {
	if len(events) == 0 {
		return
	}
	evs := append([]runner.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start.Before(evs[j].Start) })
	t0 := evs[0].Start

	wallUS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	isSpan := func(k runner.EventKind) bool {
		return k == runner.EventCompute || k == runner.EventDiskHit || k == runner.EventDedup
	}

	// Greedy lane assignment: each span goes to the first lane whose
	// previous span has ended by the time this one starts.
	var laneEnd []time.Time
	lanes := 0
	for _, ev := range evs {
		if !isSpan(ev.Kind) {
			continue
		}
		lane := -1
		for li := range laneEnd {
			if !ev.Start.Before(laneEnd[li]) {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, time.Time{})
		}
		laneEnd[lane] = ev.Start.Add(ev.Dur)
		if lane+1 > lanes {
			lanes = lane + 1
		}
		b.events = append(b.events, ChromeEvent{
			Name: ev.Label,
			Cat:  ev.Kind.String(),
			Ph:   "X",
			Ts:   wallUS(ev.Start.Sub(t0)),
			Dur:  wallUS(ev.Dur),
			Pid:  hostPid,
			Tid:  lane,
			Args: runnerArgs(ev),
		})
	}
	instantTid := lanes // the lane above every span lane
	for _, ev := range evs {
		if isSpan(ev.Kind) {
			continue
		}
		b.events = append(b.events, ChromeEvent{
			Name:  ev.Label,
			Cat:   ev.Kind.String(),
			Ph:    "i",
			Ts:    wallUS(ev.Start.Sub(t0)),
			Pid:   hostPid,
			Tid:   instantTid,
			Scope: "t",
			Args:  runnerArgs(ev),
		})
	}
	b.meta(hostPid, instantTid, "thread_name", "cache hits / retries")
	for lane := 0; lane < lanes; lane++ {
		b.meta(hostPid, lane, "thread_name", "cells")
	}
	b.meta(hostPid, 0, "process_name", "runner (host)")
}

// runnerArgs renders an event's detail fields for the trace viewer.
func runnerArgs(ev runner.Event) map[string]any {
	args := map[string]any{"kind": ev.Kind.String(), "key": ev.Key}
	if ev.Attempt > 0 {
		args["attempt"] = ev.Attempt
	}
	if ev.Err != "" {
		args["err"] = ev.Err
	}
	return args
}
