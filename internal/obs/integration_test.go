package obs_test

// The -trace acceptance test: tracing a real adaptmesh run AND a real
// n-body run must produce a Chrome trace-event file that validates against
// the schema (asserted here, not by hand) and carries at least one track
// per simulated processor, plus host-side runner-cell spans collected from
// a live engine via the hook seam.

import (
	"bytes"
	"testing"

	"o2k/internal/experiments"
	"o2k/internal/obs"
	"o2k/internal/runner"
)

func buildRealTrace(t *testing.T, target, exp string) (*obs.ChromeTrace, []experiments.TracedRun) {
	t.Helper()
	o := experiments.QuickOpts()

	// A real engine run, with the collector attached, supplies the
	// host-side cell events.
	col := &obs.Collector{}
	eng := runner.New(2)
	eng.SetHook(col.Hook())
	if _, err := experiments.RunOn(eng, exp, o); err != nil {
		t.Fatal(err)
	}
	if col.Len() == 0 {
		t.Fatalf("experiment %s produced no runner events", exp)
	}

	traced, err := experiments.Trace(target, o)
	if err != nil {
		t.Fatal(err)
	}
	b := obs.NewBuilder()
	for _, tr := range traced {
		b.AddTimeline(tr.Label, tr.Group)
	}
	b.AddRunnerTrack(col.Events())

	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("%s trace failed Chrome schema validation: %v", target, err)
	}
	return tr, traced
}

func assertTrackShape(t *testing.T, tr *obs.ChromeTrace, traced []experiments.TracedRun) {
	t.Helper()
	pids := tr.Pids()
	if len(pids) != len(traced)+1 {
		t.Fatalf("trace has pids %v, want one per traced run plus the host", pids)
	}
	for i, run := range traced {
		pid := i + 1
		procs := run.Group.Size()
		if threads := tr.Threads(pid); len(threads) < procs {
			t.Errorf("%s: %d threads, want >= one per simulated proc (%d)",
				run.Label, len(threads), procs)
		}
		if len(tr.Spans(pid)) == 0 {
			t.Errorf("%s: timeline has no phase spans", run.Label)
		}
	}
	if len(tr.Spans(0)) == 0 {
		t.Error("host process has no runner-cell spans")
	}
}

func TestTraceMeshEndToEnd(t *testing.T) {
	tr, traced := buildRealTrace(t, "mesh", "mesh-speedup")
	if len(traced) != 3 {
		t.Fatalf("mesh traced %d runs, want all 3 models", len(traced))
	}
	assertTrackShape(t, tr, traced)
}

func TestTraceNBodyEndToEnd(t *testing.T) {
	tr, traced := buildRealTrace(t, "nbody/mp", "nbody-speedup")
	if len(traced) != 1 {
		t.Fatalf("nbody/mp traced %d runs, want 1", len(traced))
	}
	assertTrackShape(t, tr, traced)
}
