package obs_test

// Observability must be engine-independent: the phase timelines a traced
// run records — and therefore the Chrome trace bytes and the per-phase
// aggregate table built from them — are part of the deterministic surface
// the differential engine suite protects.

import (
	"bytes"
	"testing"

	"o2k/internal/experiments"
	"o2k/internal/obs"
	"o2k/internal/sim"
)

func traceBytesUnder(t *testing.T, engine, target string) (trace []byte, phaseTable string) {
	t.Helper()
	e, err := sim.EngineByName(engine)
	if err != nil {
		t.Fatal(err)
	}
	prev := sim.SetDefaultEngine(e)
	defer sim.SetDefaultEngine(prev)

	traced, err := experiments.Trace(target, experiments.QuickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b := obs.NewBuilder()
	phases := make([]obs.RunPhases, len(traced))
	for i, tr := range traced {
		b.AddTimeline(tr.Label, tr.Group)
		phases[i] = obs.NewRunPhases(tr.Label, tr.Group)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("engine %q trace fails schema validation: %v", engine, err)
	}
	return buf.Bytes(), obs.PhaseTable(phases).String()
}

func TestTraceBytesIdenticalAcrossEngines(t *testing.T) {
	for _, target := range []string{"mesh/sas", "nbody/mp"} {
		t.Run(target, func(t *testing.T) {
			names := sim.EngineNames()
			refTrace, refTable := traceBytesUnder(t, names[0], target)
			for _, en := range names[1:] {
				gotTrace, gotTable := traceBytesUnder(t, en, target)
				if !bytes.Equal(gotTrace, refTrace) {
					t.Errorf("Chrome trace bytes differ between engines %q and %q", en, names[0])
				}
				if gotTable != refTable {
					t.Errorf("phase table differs between engines %q and %q:\n%s\n%s",
						en, names[0], gotTable, refTable)
				}
			}
		})
	}
}
