package obs

import (
	"sync"
	"testing"
	"time"

	"o2k/internal/runner"
)

func TestAddRunnerTrackLanePacking(t *testing.T) {
	t0 := time.Unix(1000, 0)
	ms := func(n int) time.Time { return t0.Add(time.Duration(n) * time.Millisecond) }
	events := []runner.Event{
		// a and b overlap → two lanes; c starts after a ends → reuses lane 0.
		{Kind: runner.EventCompute, Key: "a", Label: "cell a", Start: ms(0), Dur: 10 * time.Millisecond, Attempt: 1},
		{Kind: runner.EventCompute, Key: "b", Label: "cell b", Start: ms(5), Dur: 10 * time.Millisecond, Attempt: 1},
		{Kind: runner.EventDiskHit, Key: "c", Label: "cell c", Start: ms(12), Dur: 2 * time.Millisecond},
		{Kind: runner.EventMemoHit, Key: "a", Label: "cell a", Start: ms(20)},
	}
	b := NewBuilder()
	b.AddRunnerTrack(events)
	tr := b.Trace()

	spans := tr.Spans(0)
	if len(spans) != 3 {
		t.Fatalf("got %d host spans, want 3: %+v", len(spans), spans)
	}
	byKey := map[string]ChromeEvent{}
	for _, s := range spans {
		byKey[s.Args["key"].(string)] = s
	}
	if byKey["a"].Tid != 0 || byKey["b"].Tid != 1 || byKey["c"].Tid != 0 {
		t.Fatalf("lane assignment a/b/c = %d/%d/%d, want 0/1/0",
			byKey["a"].Tid, byKey["b"].Tid, byKey["c"].Tid)
	}
	// Wall time is normalized: the earliest event sits at ts 0, in µs.
	if byKey["a"].Ts != 0 || byKey["b"].Ts != 5000 || byKey["a"].Dur != 10000 {
		t.Fatalf("normalized timestamps wrong: a.ts=%v b.ts=%v a.dur=%v",
			byKey["a"].Ts, byKey["b"].Ts, byKey["a"].Dur)
	}

	// The memo-hit instant lives on the lane above both span lanes.
	var instants []ChromeEvent
	for _, ev := range tr.Events {
		if ev.Ph == "i" {
			instants = append(instants, ev)
		}
	}
	if len(instants) != 1 || instants[0].Tid != 2 || instants[0].Scope != "t" {
		t.Fatalf("instants = %+v, want one memo-hit on tid 2 with thread scope", instants)
	}
}

func TestAddRunnerTrackEmptyIsNoop(t *testing.T) {
	b := NewBuilder()
	b.AddRunnerTrack(nil)
	if len(b.Trace().Events) != 0 {
		t.Fatalf("empty event set produced %d events", len(b.Trace().Events))
	}
}

func TestRunnerArgsDetail(t *testing.T) {
	args := runnerArgs(runner.Event{Kind: runner.EventCompute, Key: "k", Attempt: 2, Err: "boom"})
	if args["kind"] != "compute" || args["key"] != "k" || args["attempt"] != 2 || args["err"] != "boom" {
		t.Fatalf("runnerArgs = %v", args)
	}
	args = runnerArgs(runner.Event{Kind: runner.EventMemoHit, Key: "k"})
	if _, ok := args["attempt"]; ok {
		t.Fatal("attempt rendered for an event without one")
	}
	if _, ok := args["err"]; ok {
		t.Fatal("err rendered for a successful event")
	}
}

func TestCollectorConcurrentHook(t *testing.T) {
	col := &Collector{}
	hook := col.Hook()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				hook(runner.Event{Kind: runner.EventMemoHit, Key: "k"})
			}
		}()
	}
	wg.Wait()
	if col.Len() != 800 {
		t.Fatalf("collected %d events, want 800", col.Len())
	}
	snap := col.Events()
	hook(runner.Event{Kind: runner.EventRetry})
	if len(snap) != 800 {
		t.Fatal("Events() snapshot aliases the live buffer")
	}
}
