// Package obs is the observability subsystem: it turns the simulator's
// phase-segment traces (sim.Group.EnableTrace) and the experiment engine's
// cell lifecycle (runner.Hook) into inspectable artifacts.
//
// Two time domains share one trace file, both starting at zero:
//
//   - simulated-proc tracks carry *virtual* time — one Chrome trace process
//     per traced application run, one thread per simulated processor, one
//     complete event per phase segment; and
//   - host tracks carry *wall* time — the runner's cell spans (compute,
//     disk-hit, dedup waits) and instants (memo hits, retries), collected
//     through the engine's event hook and packed into non-overlapping lanes.
//
// The Builder assembles both into Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing; ValidateChrome is the schema check the tests
// (and any downstream tooling) gate on. PhaseStat/RunPhases compute the
// per-phase min/max/mean/imbalance aggregates behind the study's
// load-balance discussion, rendered by PhaseTable as the `-phasereport`
// table and embedded in the `-runreport-json` document.
//
// The subsystem is strictly additive: nothing in sim, runner, or the
// experiments imports obs, and with tracing disabled (no hook attached, no
// EnableTrace) no code in this package runs at all — the invariant behind
// the byte-identity guarantee on `o2kbench -exp all` (DESIGN.md §5.6).
package obs
