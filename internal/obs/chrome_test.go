package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"o2k/internal/sim"
)

// tracedGroup returns a two-proc group run with tracing on:
//
//	p0: compute [0,100) then sync [100,150)
//	p1: compute [0,200)
func tracedGroup() *sim.Group {
	g := sim.NewGroup(2)
	g.EnableTrace()
	p0 := g.Proc(0)
	p0.SetPhase(sim.PhaseCompute)
	p0.Advance(100)
	p0.SetPhase(sim.PhaseSync)
	p0.Advance(50)
	p1 := g.Proc(1)
	p1.SetPhase(sim.PhaseCompute)
	p1.Advance(200)
	return g
}

func TestAddTimelineTrackShape(t *testing.T) {
	b := NewBuilder()
	pid := b.AddTimeline("fixture run", tracedGroup())
	if pid != 1 {
		t.Fatalf("first timeline pid = %d, want 1 (0 is reserved for the host)", pid)
	}
	tr := b.Trace()
	if got := tr.Threads(pid); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("threads of pid %d = %v, want one per proc [0 1]", pid, got)
	}
	spans := tr.Spans(pid)
	if len(spans) != 3 {
		t.Fatalf("got %d phase spans, want 3: %+v", len(spans), spans)
	}
	// Virtual nanoseconds surface as trace microseconds (÷1e3).
	s := spans[1] // p0's sync segment [100,150)
	if s.Name != "sync" || s.Cat != "phase" || s.Ts != 0.1 || s.Dur != 0.05 {
		t.Fatalf("sync span = %+v, want ts=0.1us dur=0.05us", s)
	}
}

func TestTimelinePidsAreSequential(t *testing.T) {
	b := NewBuilder()
	p1 := b.AddTimeline("run one", tracedGroup())
	p2 := b.AddTimeline("run two", tracedGroup())
	if p1 != 1 || p2 != 2 {
		t.Fatalf("pids = %d, %d; want 1, 2", p1, p2)
	}
}

func TestWriteRoundTripsThroughValidate(t *testing.T) {
	b := NewBuilder()
	b.AddTimeline("fixture run", tracedGroup())
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("builder output failed validation: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatal("output is not in JSON-object trace form")
	}
}

func TestValidateChromeRejects(t *testing.T) {
	mk := func(ev ChromeEvent) []byte {
		data, err := json.Marshal(ChromeTrace{Events: []ChromeEvent{ev}})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"not json", []byte("}{")},
		{"unknown field", []byte(`{"traceEvents":[],"bogus":1}`)},
		{"no events", []byte(`{"traceEvents":[]}`)},
		{"unknown phase", mk(ChromeEvent{Name: "x", Ph: "Z"})},
		{"negative ts", mk(ChromeEvent{Name: "x", Ph: "X", Ts: -1})},
		{"negative dur", mk(ChromeEvent{Name: "x", Ph: "X", Dur: -1})},
		{"negative pid", mk(ChromeEvent{Name: "x", Ph: "X", Pid: -1})},
		{"metadata without args", mk(ChromeEvent{Name: "process_name", Ph: "M"})},
		{"bad instant scope", mk(ChromeEvent{Name: "x", Ph: "i", Scope: "q"})},
		{"unnamed span", mk(ChromeEvent{Ph: "X"})},
	}
	for _, tc := range cases {
		if _, err := ValidateChrome(tc.data); err == nil {
			t.Errorf("%s: validated, want error", tc.name)
		}
	}
}

func TestValidateChromeAcceptsForeignPhases(t *testing.T) {
	// A counter event Chrome accepts but the Builder never emits.
	data := []byte(`{"traceEvents":[{"name":"ctr","ph":"C","ts":1,"pid":0,"tid":0}]}`)
	if _, err := ValidateChrome(data); err != nil {
		t.Fatalf("foreign counter event rejected: %v", err)
	}
}

func TestTraceQueryHelpers(t *testing.T) {
	b := NewBuilder()
	b.AddTimeline("one", tracedGroup())
	b.AddTimeline("two", tracedGroup())
	tr := b.Trace()
	if got := tr.Pids(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("pids = %v, want [1 2]", got)
	}
	if all, one := tr.Spans(-1), tr.Spans(1); len(all) != 2*len(one) {
		t.Fatalf("Spans(-1) = %d events, want twice Spans(1) = %d", len(all), len(one))
	}
}
