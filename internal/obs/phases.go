package obs

import (
	"o2k/internal/core"
	"o2k/internal/sim"
)

// PhaseStat aggregates one phase's per-processor virtual time across a
// group: the spread (min/max/mean) and the imbalance factor max/mean — 1.0
// is a perfectly balanced phase, and the factor is exactly how much longer
// the phase's critical path is than its ideal. These are the numbers behind
// the paper's load-balance discussion, computed from the actual traced run
// rather than read off a bar chart.
type PhaseStat struct {
	Phase     string   `json:"phase"`
	Min       sim.Time `json:"min_ns"`
	Max       sim.Time `json:"max_ns"`
	Mean      sim.Time `json:"mean_ns"`   // rounded half-up, like sim.AvgPhaseTime
	Imbalance float64  `json:"imbalance"` // max/mean; 1.0 = perfectly balanced
}

// aggregate computes one PhaseStat from per-processor times. The mean
// rounds half-up (matching sim.Group.AvgPhaseTime) but the imbalance factor
// is computed from the unrounded sum, so it is exact.
func aggregate(name string, vals []sim.Time) PhaseStat {
	st := PhaseStat{Phase: name, Min: vals[0]}
	var sum sim.Time
	for _, v := range vals {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	n := sim.Time(len(vals))
	st.Mean = (sum + n/2) / n
	if sum > 0 {
		st.Imbalance = float64(st.Max) * float64(n) / float64(sum)
	}
	return st
}

// GroupPhases computes the per-phase aggregates of a completed group.
// Phases no processor entered are omitted. It reads the per-proc phase
// accumulators, which every run records — tracing is not required.
func GroupPhases(g *sim.Group) []PhaseStat {
	n := g.Size()
	vals := make([]sim.Time, n)
	var out []PhaseStat
	for ph := sim.Phase(0); ph < sim.NumPhases; ph++ {
		var sum sim.Time
		for i := 0; i < n; i++ {
			vals[i] = g.Proc(i).PhaseTime(ph)
			sum += vals[i]
		}
		if sum == 0 {
			continue
		}
		out = append(out, aggregate(ph.String(), vals))
	}
	return out
}

// RunPhases is the aggregate set of one traced run: every active phase plus
// the per-processor total clocks (the overall load balance).
type RunPhases struct {
	Name   string      `json:"name"`
	Procs  int         `json:"procs"`
	Total  sim.Time    `json:"total_ns"` // simulated wall-clock (max over procs)
	Clock  PhaseStat   `json:"clock"`    // aggregate of per-proc total clocks
	Phases []PhaseStat `json:"phases"`
}

// NewRunPhases computes the aggregates of a completed group under a display
// name (conventionally "app MODEL P=n").
func NewRunPhases(name string, g *sim.Group) RunPhases {
	clocks := make([]sim.Time, g.Size())
	for i := range clocks {
		clocks[i] = g.Proc(i).Now()
	}
	return RunPhases{
		Name:   name,
		Procs:  g.Size(),
		Total:  g.MaxTime(),
		Clock:  aggregate("TOTAL", clocks),
		Phases: GroupPhases(g),
	}
}

// PhaseTable renders the aggregates of one or more runs as the
// `-phasereport` table: one row per (run, phase), closed by the run's TOTAL
// row.
func PhaseTable(runs []RunPhases) *core.Table {
	t := &core.Table{
		Title:  "Phase report — per-proc virtual time and imbalance factor",
		Header: []string{"run", "phase", "min", "max", "mean", "imbalance"},
	}
	for _, r := range runs {
		for _, s := range r.Phases {
			t.AddRow(r.Name, s.Phase, core.FT(s.Min), core.FT(s.Max), core.FT(s.Mean), core.F(s.Imbalance))
		}
		c := r.Clock
		t.AddRow(r.Name, c.Phase, core.FT(c.Min), core.FT(c.Max), core.FT(c.Mean), core.F(c.Imbalance))
	}
	return t
}
