package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"o2k/internal/sim"
)

// ChromeEvent is one entry of a Chrome trace-event file. Only the event
// phases the Builder emits are modeled — complete spans ("X"), instants
// ("i"), and metadata ("M") — but ValidateChrome accepts the full phase
// alphabet so foreign traces can be checked too.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds since trace start
	Dur   float64        `json:"dur,omitempty"` // microseconds, "X" events only
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope: g, p, or t
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of a trace file.
type ChromeTrace struct {
	Events          []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// hostPid is the reserved Chrome process id for host-side (wall-time)
// tracks; simulated timelines are numbered from 1.
const hostPid = 0

// Builder accumulates timeline and host tracks and serializes them as one
// Chrome trace-event file. Not safe for concurrent use; build after the
// runs have completed.
type Builder struct {
	events  []ChromeEvent
	nextPid int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{nextPid: hostPid + 1} }

// virtualUS converts simulated nanoseconds to trace microseconds.
func virtualUS(t sim.Time) float64 { return float64(t) / 1e3 }

// meta appends a metadata event (process_name / thread_name).
func (b *Builder) meta(pid, tid int, kind, name string) {
	b.events = append(b.events, ChromeEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// AddTimeline adds one traced group as a Chrome process named name: one
// thread per simulated processor, one complete event per phase segment, on
// the virtual-time axis. The group must have been run with EnableTrace
// (TraceRun does this); an untraced group contributes only empty threads.
// It returns the pid assigned to the timeline.
func (b *Builder) AddTimeline(name string, g *sim.Group) int {
	pid := b.nextPid
	b.nextPid++
	b.meta(pid, 0, "process_name", name)
	for i, segs := range g.Traces() {
		b.meta(pid, i, "thread_name", fmt.Sprintf("proc %d", i))
		for _, s := range segs {
			b.events = append(b.events, ChromeEvent{
				Name: s.Phase.String(),
				Cat:  "phase",
				Ph:   "X",
				Ts:   virtualUS(s.Start),
				Dur:  virtualUS(s.End - s.Start),
				Pid:  pid,
				Tid:  i,
			})
		}
	}
	return pid
}

// Trace returns the assembled trace object.
func (b *Builder) Trace() *ChromeTrace {
	return &ChromeTrace{Events: b.events, DisplayTimeUnit: "ms"}
}

// Write serializes the trace as indented JSON.
func (b *Builder) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(b.Trace())
}
