package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// chromePhases is the trace-event phase alphabet accepted by Chrome's trace
// importer: duration (B/E), complete (X), instant (i/I), counter (C), async
// (b/n/e and legacy S/T/p/F), flow (s/t/f), sample (P), object (N/O/D),
// metadata (M), memory dump (V/v), mark (R), and clock sync (c).
var chromePhases = map[string]bool{
	"B": true, "E": true, "X": true, "i": true, "I": true, "C": true,
	"b": true, "n": true, "e": true, "S": true, "T": true, "p": true, "F": true,
	"s": true, "t": true, "f": true, "P": true, "N": true, "O": true, "D": true,
	"M": true, "V": true, "v": true, "R": true, "c": true,
}

// instantScopes are the legal values of an instant event's "s" field.
var instantScopes = map[string]bool{"": true, "g": true, "p": true, "t": true}

// ValidateChrome checks that data is a well-formed Chrome trace-event file
// in JSON-object form and returns the decoded trace. Beyond parsing, it
// enforces the schema rules the viewers rely on: a known event phase,
// non-negative timestamps and durations, a name on every non-metadata
// event, and a legal scope on instants. It is the assertion behind the
// `-trace` acceptance test and is exported for downstream bench tooling.
func ValidateChrome(data []byte) (*ChromeTrace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tr ChromeTrace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("obs: trace does not parse: %w", err)
	}
	if len(tr.Events) == 0 {
		return nil, errors.New("obs: trace has no events")
	}
	for i, ev := range tr.Events {
		where := func(msg string, args ...any) error {
			return fmt.Errorf("obs: event %d (%q): %s", i, ev.Name, fmt.Sprintf(msg, args...))
		}
		if !chromePhases[ev.Ph] {
			return nil, where("unknown phase %q", ev.Ph)
		}
		if ev.Ts < 0 {
			return nil, where("negative timestamp %v", ev.Ts)
		}
		if ev.Dur < 0 {
			return nil, where("negative duration %v", ev.Dur)
		}
		if ev.Pid < 0 || ev.Tid < 0 {
			return nil, where("negative pid/tid %d/%d", ev.Pid, ev.Tid)
		}
		switch ev.Ph {
		case "M":
			if len(ev.Args) == 0 {
				return nil, where("metadata event without args")
			}
		case "i", "I":
			if !instantScopes[ev.Scope] {
				return nil, where("bad instant scope %q", ev.Scope)
			}
			fallthrough
		default:
			if ev.Name == "" {
				return nil, where("event without a name")
			}
		}
	}
	return &tr, nil
}

// Spans returns the complete ("X") events of one process, or of every
// process when pid < 0 — the query the track-shape assertions are built on.
func (t *ChromeTrace) Spans(pid int) []ChromeEvent {
	var out []ChromeEvent
	for _, ev := range t.Events {
		if ev.Ph == "X" && (pid < 0 || ev.Pid == pid) {
			out = append(out, ev)
		}
	}
	return out
}

// Threads returns the distinct tids of a pid that carry at least one
// non-metadata event.
func (t *ChromeTrace) Threads(pid int) []int {
	seen := map[int]bool{}
	for _, ev := range t.Events {
		if ev.Pid == pid && ev.Ph != "M" {
			seen[ev.Tid] = true
		}
	}
	out := make([]int, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// Pids returns the distinct process ids of the trace, ascending.
func (t *ChromeTrace) Pids() []int {
	seen := map[int]bool{}
	for _, ev := range t.Events {
		seen[ev.Pid] = true
	}
	out := make([]int, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}
