package sas_test

import (
	"fmt"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sas"
	"o2k/internal/sim"
)

// A minimal CC-SAS program: a shared array, a static loop split, and a
// barrier; there is no communication code at all — the memory system moves
// the data (and the cost model charges for it).
func Example() {
	m := machine.MustNew(machine.Default(4))
	w := sas.NewWorld(m, numa.NewSpace(m))
	a := sas.NewArray[int64](w, 100)
	a.PlaceBlock()
	g := sim.NewGroup(4)
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		lo, hi := c.Range(100)
		for i := lo; i < hi; i++ {
			a.Store(p, i, int64(i))
		}
		c.Barrier()
		sum := sas.Allreduce1(c, int64(hi-lo), sas.OpSum)
		if c.ID() == 0 {
			fmt.Println("elements written:", sum)
		}
	})
	// Output: elements written: 100
}
