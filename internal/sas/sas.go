// Package sas is the cache-coherent shared-address-space (CC-SAS)
// programming-model runtime: the one the Origin2000's hardware coherence
// supports natively. Processors read and write shared arrays directly; the
// only explicit operations are synchronization (barriers, locks) and
// reductions.
//
// Cost structure: loads and stores of shared data are charged through the
// numa package's cache-and-placement model — a cache hit costs nanoseconds,
// a miss costs local or remote memory latency depending on where the page is
// homed, and lines written by one processor are invalidated in the others'
// caches at the next barrier (release-consistent epoch coherence; see package
// numa). There is no per-transfer software overhead at all, which is exactly
// why CC-SAS excels at fine-grained irregular sharing, and no explicit data
// migration at repartitioning time, which is why its locality can degrade
// after adaptation — the trade-off the paper's experiments explore.
package sas

import (
	"fmt"
	"sync"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

// World is the shared context of one CC-SAS program.
type World struct {
	M  *machine.Machine
	Sp *numa.Space

	barrier *sim.Barrier
	reducer *sim.Reducer
}

// NewWorld creates the CC-SAS context for all processors of m over space sp.
// Its barrier performs the coherence merge for every shared array in sp.
func NewWorld(m *machine.Machine, sp *numa.Space) *World {
	w := &World{M: m, Sp: sp}
	// Barrier cost depends only on the fixed gang size; hoist it out of the
	// per-episode closure. (Kept at the same counted line count: Table 5
	// measures this file, and stdout is byte-frozen — see DESIGN.md §5.4.)
	stages := m.LogStages(m.Procs())
	barrierNS := m.Cfg.SasBarrierBase + sim.Time(stages)*m.Cfg.SasBarrierHop
	cost := func(int) sim.Time { return barrierNS }
	w.barrier = sim.NewBarrierHook(m.Procs(), cost, sp.MergeEpoch)
	w.reducer = sim.NewReducer(m.Procs(), cost)
	return w
}

// Ctx binds processor p to the world.
func (w *World) Ctx(p *sim.Proc) *Ctx {
	if p.ID() < 0 || p.ID() >= w.M.Procs() {
		panic(fmt.Sprintf("sas: proc %d outside world of size %d", p.ID(), w.M.Procs()))
	}
	return &Ctx{W: w, P: p}
}

// Ctx is one processor's handle on the shared address space.
type Ctx struct {
	W *World
	P *sim.Proc
}

// ID returns the processor rank.
func (c *Ctx) ID() int { return c.P.ID() }

// Size returns the processor count.
func (c *Ctx) Size() int { return c.W.M.Procs() }

// Barrier synchronizes all processors and resolves coherence for every
// shared array written since the previous barrier.
func (c *Ctx) Barrier() {
	c.P.Collectives++
	c.W.barrier.Wait(c.P)
}

// Range returns the static block [lo, hi) of n iterations assigned to this
// processor — the standard "owner computes" loop decomposition.
func (c *Ctx) Range(n int) (lo, hi int) {
	p, np := c.ID(), c.Size()
	lo, hi = p*n/np, (p+1)*n/np
	return lo, hi
}

// Lock is a costed mutual-exclusion lock over shared data. The virtual cost
// models an uncontended remote atomic; contention additionally serializes
// virtual time because acquirers merge clocks with the previous holder.
//
// Holding is tracked by a flag guarded by a briefly-held host mutex, with an
// engine-aware sim.Cond for contended waits: no host lock is ever held
// across a suspension point, which the event engine's single scheduler
// goroutine requires (and the goroutine engine tolerates identically).
type Lock struct {
	w       *World
	mu      sync.Mutex
	cond    sim.Cond
	held    bool
	release sim.Time // virtual time the last holder released
}

// NewLock creates a lock in world w.
func NewLock(w *World) *Lock { return &Lock{w: w, cond: sim.Cond{Kind: "sas lock"}} }

// Acquire takes the lock, charging the atomic cost and serializing with the
// previous holder's release time.
func (l *Lock) Acquire(c *Ctx) {
	prev := c.P.SetPhase(sim.PhaseSync)
	c.P.Advance(l.w.M.Cfg.SasLockNS)
	l.mu.Lock()
	for l.held {
		l.cond.Wait(c.P, &l.mu)
	}
	l.held = true
	c.P.AdvanceTo(l.release)
	l.mu.Unlock()
	c.P.SetPhase(prev)
	c.P.LockOps++
}

// Release drops the lock.
func (l *Lock) Release(c *Ctx) {
	l.mu.Lock()
	l.release = c.P.Now()
	l.held = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// NewArray allocates a shared array of n elements (pages default to home 0;
// place explicitly).
func NewArray[T any](w *World, n int) *numa.Array[T] {
	return numa.NewShared[T](w.Sp, n)
}

// --- Reductions --------------------------------------------------------------

// Number constrains reduction element types.
type Number interface {
	~int | ~int32 | ~int64 | ~uint64 | ~float64
}

// Op selects the combining operator of a reduction.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func combine[T Number](op Op, a, b T) T {
	// Comparisons deliberately keep the original if-based semantics (return a
	// unless b strictly wins), not the builtin min/max NaN rules.
	switch {
	case op == OpSum:
		return a + b
	case op == OpMax && b > a, op == OpMin && b < a:
		return b
	case op == OpMax, op == OpMin:
		return a
	}
	panic("sas: unknown op")
}

// Allreduce combines vals elementwise across processors in rank order — the
// shared-memory reduction tree. Its cost is the synchronization itself; the
// data passes through shared cache lines.
func Allreduce[T Number](c *Ctx, vals []T, op Op) []T {
	c.P.Collectives++
	cp := make([]T, len(vals))
	copy(cp, vals)
	return c.W.reducer.Do(c.P, cp, func(all []any) any {
		out := make([]T, len(cp))
		first := true
		for _, v := range all {
			vs := v.([]T)
			if first {
				copy(out, vs)
				first = false
				continue
			}
			for i := range out {
				out[i] = combine(op, out[i], vs[i])
			}
		}
		return out
	}).([]T)
}

// Allreduce1 is Allreduce for a single value.
func Allreduce1[T Number](c *Ctx, v T, op Op) T { return Allreduce(c, []T{v}, op)[0] }

// Exscan returns, for each processor, the exclusive prefix sum of the
// per-processor contributions v (rank order) together with the global total.
// It is the deterministic idiom the applications use in place of racy shared
// counters when assigning index ranges.
func Exscan(c *Ctx, v int) (before, total int) {
	c.P.Collectives++
	res := c.W.reducer.Do(c.P, v, func(all []any) any {
		pre := make([]int, len(all)+1)
		for i, x := range all {
			pre[i+1] = pre[i] + x.(int)
		}
		return pre
	}).([]int)
	return res[c.ID()], res[len(res)-1]
}
