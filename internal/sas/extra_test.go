package sas

import (
	"testing"
	"testing/quick"

	"o2k/internal/sim"
)

func TestRangePartitionProperty(t *testing.T) {
	// Ranges cover [0, n) disjointly for any processor count and n.
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16) % 3000
		procs := int(p8)%31 + 1
		w, _, _ := world(procs)
		prevHi := 0
		for q := 0; q < procs; q++ {
			c := &Ctx{W: w, P: sim.NewGroup(procs).Proc(q)}
			lo, hi := c.Range(n)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultipleLocksIndependent(t *testing.T) {
	w, g, _ := world(4)
	l1 := NewLock(w)
	l2 := NewLock(w)
	c1, c2 := 0, 0
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		for i := 0; i < 50; i++ {
			if (c.ID()+i)%2 == 0 {
				l1.Acquire(c)
				c1++
				l1.Release(c)
			} else {
				l2.Acquire(c)
				c2++
				l2.Release(c)
			}
		}
	})
	if c1+c2 != 200 {
		t.Fatalf("lost updates: %d + %d", c1, c2)
	}
}

func TestExscanMatchesAllreduce(t *testing.T) {
	w, g, _ := world(6)
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		v := c.ID()*c.ID() + 1
		before, total := Exscan(c, v)
		sum := Allreduce1(c, v, OpSum)
		if total != sum {
			t.Errorf("exscan total %d != allreduce %d", total, sum)
		}
		// Prefix of my own rank: recompute directly.
		want := 0
		for q := 0; q < c.ID(); q++ {
			want += q*q + 1
		}
		if before != want {
			t.Errorf("rank %d before=%d want %d", c.ID(), before, want)
		}
	})
}

func TestSharedArrayThroughWorldHelper(t *testing.T) {
	w, g, _ := world(2)
	a := NewArray[int64](w, 100)
	a.PlaceBlock()
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		lo, hi := c.Range(100)
		for i := lo; i < hi; i++ {
			a.Store(p, i, int64(i))
		}
		c.Barrier()
		// Verify the other half.
		olo, ohi := (lo+50)%100, (hi+50)%100
		if olo < ohi {
			for i := olo; i < ohi; i++ {
				if a.Load(p, i) != int64(i) {
					t.Errorf("element %d wrong", i)
					return
				}
			}
		}
	})
}
