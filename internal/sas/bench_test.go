package sas

import (
	"testing"

	"o2k/internal/sim"
)

// Host-performance microbenchmarks of the CC-SAS runtime.

func BenchmarkBarrierWithCoherence(b *testing.B) {
	w, g, _ := world(8)
	a := NewArray[float64](w, 8192)
	a.PlaceBlock()
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		lo, hi := c.Range(8192)
		for i := 0; i < b.N; i++ {
			for v := lo; v < hi; v += 16 {
				a.Store(p, v, float64(i))
			}
			c.Barrier()
		}
	})
}

func BenchmarkLockHandoff(b *testing.B) {
	w, g, _ := world(4)
	l := NewLock(w)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		for i := 0; i < b.N; i++ {
			l.Acquire(c)
			l.Release(c)
		}
	})
}

func BenchmarkExscan8(b *testing.B) {
	w, g, _ := world(8)
	b.ResetTimer()
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		for i := 0; i < b.N; i++ {
			Exscan(c, c.ID())
		}
	})
}
