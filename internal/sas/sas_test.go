package sas

import (
	"testing"

	"o2k/internal/machine"
	"o2k/internal/numa"
	"o2k/internal/sim"
)

func world(procs int) (*World, *sim.Group, *machine.Machine) {
	m := machine.MustNew(machine.Default(procs))
	sp := numa.NewSpace(m)
	return NewWorld(m, sp), sim.NewGroup(procs), m
}

func TestSharedWriteReadAcrossBarrier(t *testing.T) {
	w, g, _ := world(2)
	a := NewArray[float64](w, 64)
	var got float64
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		if c.ID() == 0 {
			a.Store(p, 5, 1.25)
		}
		c.Barrier()
		if c.ID() == 1 {
			got = a.Load(p, 5)
		}
	})
	if got != 1.25 {
		t.Fatalf("shared data lost: %v", got)
	}
}

func TestBarrierInvalidatesWrittenLines(t *testing.T) {
	w, g, _ := world(2)
	a := NewArray[float64](w, 64)
	a.PlaceUniform(0)
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		// Both warm line 0.
		a.Load(p, 0)
		a.Load(p, 0)
		c.Barrier()
		if c.ID() == 0 {
			a.Store(p, 0, 9)
		}
		c.Barrier()
		if c.ID() == 1 {
			misses := p.LocalMisses + p.RemoteMisses
			if v := a.Load(p, 0); v != 9 {
				t.Errorf("read %v, want 9", v)
			}
			if p.LocalMisses+p.RemoteMisses != misses+1 {
				t.Error("reader should take a coherence miss after writer's barrier")
			}
		}
	})
}

func TestRange(t *testing.T) {
	w, g, _ := world(4)
	covered := make([]bool, 103)
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		lo, hi := c.Range(103)
		for i := lo; i < hi; i++ {
			covered[i] = true // disjoint by construction
		}
	})
	for i, ok := range covered {
		if !ok {
			t.Fatalf("iteration %d not covered", i)
		}
	}
}

func TestLockMutualExclusionAndCost(t *testing.T) {
	w, g, m := world(4)
	l := NewLock(w)
	counter := 0
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		for i := 0; i < 100; i++ {
			l.Acquire(c)
			counter++
			p.Advance(10)
			l.Release(c)
		}
	})
	if counter != 400 {
		t.Fatalf("lost updates: %d", counter)
	}
	// Virtual time must reflect serialization: 400 critical sections of 10ns
	// plus acquire costs can't all overlap.
	if g.MaxTime() < 400*10 {
		t.Fatalf("critical sections overlapped in virtual time: %v", g.MaxTime())
	}
	if g.Proc(0).LockOps != 100 {
		t.Fatalf("lock ops = %d", g.Proc(0).LockOps)
	}
	_ = m
}

func TestAllreduceAndExscan(t *testing.T) {
	w, g, _ := world(4)
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		if s := Allreduce1(c, float64(c.ID()+1), OpSum); s != 10 {
			t.Errorf("sum = %v", s)
		}
		if mx := Allreduce1(c, c.ID(), OpMax); mx != 3 {
			t.Errorf("max = %v", mx)
		}
		if mn := Allreduce1(c, c.ID(), OpMin); mn != 0 {
			t.Errorf("min = %v", mn)
		}
		vec := Allreduce(c, []int{c.ID(), -c.ID()}, OpSum)
		if vec[0] != 6 || vec[1] != -6 {
			t.Errorf("vector sum: %v", vec)
		}
		before, total := Exscan(c, c.ID())
		wantBefore := 0
		for i := 0; i < c.ID(); i++ {
			wantBefore += i
		}
		if before != wantBefore || total != 6 {
			t.Errorf("exscan: %d %d", before, total)
		}
	})
}

func TestSasBarrierCheaperThanMPBarrier(t *testing.T) {
	// The hardware-supported SAS barrier must be cheaper than the
	// software-tree MP barrier at the same processor count.
	m := machine.MustNew(machine.Default(32))
	stages := m.LogStages(32)
	sasCost := m.Cfg.SasBarrierBase + sim.Time(stages)*m.Cfg.SasBarrierHop
	mpCost := sim.Time(stages) * m.Cfg.MPBarrierHop
	if sasCost >= mpCost {
		t.Fatalf("sas barrier %v !< mp barrier %v", sasCost, mpCost)
	}
}

func TestRemotePlacementCostsMore(t *testing.T) {
	w, g, _ := world(8)
	local := NewArray[float64](w, 4096)
	remote := NewArray[float64](w, 4096)
	local.PlaceUniform(0)
	remote.PlaceUniform(6) // different node from proc 0
	var localT, remoteT sim.Time
	g.Run(func(p *sim.Proc) {
		c := w.Ctx(p)
		if c.ID() != 0 {
			return
		}
		t0 := p.Now()
		local.TouchRange(p, 0, 4096, false)
		localT = p.Now() - t0
		t0 = p.Now()
		remote.TouchRange(p, 0, 4096, false)
		remoteT = p.Now() - t0
	})
	if localT >= remoteT {
		t.Fatalf("local sweep %v !< remote sweep %v", localT, remoteT)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		w, g, _ := world(8)
		a := NewArray[float64](w, 8192)
		a.PlaceBlock()
		g.Run(func(p *sim.Proc) {
			c := w.Ctx(p)
			for iter := 0; iter < 5; iter++ {
				lo, hi := c.Range(8192)
				for i := lo; i < hi; i++ {
					a.Store(p, i, float64(i+iter))
				}
				c.Barrier()
				// Read a neighbour's block: remote + coherence misses.
				nlo, nhi := (lo+1024)%8192, (hi+1024)%8192
				if nlo < nhi {
					a.TouchRange(p, nlo, nhi, false)
				}
				c.Barrier()
			}
		})
		return g.MaxTime()
	}
	first := run()
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("SAS timing nondeterministic: %v vs %v", got, first)
		}
	}
}

func TestCtxOutOfWorldPanics(t *testing.T) {
	w, _, _ := world(2)
	g := sim.NewGroup(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Ctx(g.Proc(3))
}
