package numa

import "o2k/internal/sim"

// refModel routes charge and mergeEpoch through the straightforward
// implementations below instead of the optimized hot paths in array.go. The
// reference path recomputes every quantity directly from the machine Config
// (divisions instead of shifts, Hops instead of the node tables, one Advance
// and one write-set probe per line) so the differential test in ref_test.go
// can assert that the two paths produce identical counters, virtual times,
// and coherence evictions on randomized traces.
//
// The flag is package-internal and must only be flipped by tests, while no
// simulation is running.
var refModel bool

// chargeRef is the pre-optimization cost model for one access: a cache probe,
// then the miss latency from first principles (page-home lookup by division,
// hop count from the machine topology), then the per-line write-set record.
func (a *Array[T]) chargeRef(p *sim.Proc, li uint32, write bool) {
	me := p.ID()
	c := a.sp.caches[me]
	gl := a.baseLine + uint64(li)
	cfg := &a.sp.M.Cfg
	if c.access(gl) {
		p.CacheHits++
		p.Advance(cfg.CacheHitNS)
	} else {
		home := int(a.pageHome[int(uint64(li)*uint64(cfg.LineBytes)/uint64(cfg.PageBytes))])
		h := a.sp.M.Hops(me, home)
		if h == 0 {
			p.LocalMisses++
			p.Advance(cfg.LocalMissNS)
		} else {
			p.RemoteMisses++
			p.Advance(cfg.RemoteMissNS + sim.Time(h-1)*cfg.RemoteHopNS)
		}
	}
	if write && a.shared {
		a.recordWrite(me, li)
	}
}

// mergeEpochRef is the pre-optimization coherence merge: line-major over each
// writer's write-set, probing every other cache per line with no filtering.
func (a *Array[T]) mergeEpochRef(caches []*cache, evicts []uint64) {
	for w := range a.writeLines {
		lines := a.writeLines[w]
		if len(lines) == 0 {
			continue
		}
		bits := a.writeBits[w]
		for _, li := range lines {
			gl := a.baseLine + uint64(li)
			for q, c := range caches {
				if q == w {
					continue
				}
				if c.invalidate(gl) {
					evicts[q]++
				}
			}
			bits[li>>6] &^= uint64(1) << (li & 63)
		}
		a.writeLines[w] = lines[:0]
	}
}
