package numa

import (
	"math/rand"
	"reflect"
	"testing"

	"o2k/internal/sim"
)

// procState is everything the cost model is allowed to change on a processor.
type procState struct {
	Clock    sim.Time
	Phases   [sim.NumPhases]sim.Time
	Counters sim.Counters
}

// traceResult snapshots the observable outcome of one trace execution.
type traceResult struct {
	Procs    []procState
	Evicts   []uint64
	PenLog   []sim.Time // concatenated MergeEpoch penalties, in call order
	Checksum float64    // data written through the arrays (model-independent)
}

// runTrace executes a seeded random access trace against a fresh Space with
// the given cost-model selection and returns the observable state. The trace
// is generated from the seed alone, so two calls with the same seed perform
// the identical operation sequence.
func runTrace(t *testing.T, seed int64, useRef bool) traceResult {
	t.Helper()
	refModel = useRef
	defer func() { refModel = false }()

	const procs = 8
	sp, _ := space(procs)
	g := sim.NewGroup(procs)

	shA := NewShared[float64](sp, 4096)
	shA.PlaceInterleave()
	shB := NewShared[int32](sp, 1000) // odd length: exercises partial last line
	shB.PlaceBlock()
	var priv []*Array[float64]
	for i := 0; i < procs; i++ {
		priv = append(priv, NewPrivate[float64](sp, i, 512))
	}
	// Replay quartet: body coordinates/masses plus a cell store, shaped like
	// the tree-walk arrays ReplayLoads was built for.
	shX := NewShared[float64](sp, 2048)
	shX.PlaceInterleave()
	shY := NewShared[float64](sp, 2048)
	shY.PlaceBlock()
	shM := NewShared[float64](sp, 2048)
	shM.PlaceInterleave()
	shC := NewShared[float64](sp, 3*256)
	shC.PlaceBlock()

	rng := rand.New(rand.NewSource(seed))
	phases := []sim.Phase{sim.PhaseCompute, sim.PhaseMark, sim.PhaseRemap}
	res := traceResult{}
	sum := 0.0

	for step := 0; step < 4000; step++ {
		p := g.Proc(rng.Intn(procs))
		if rng.Intn(16) == 0 {
			p.SetPhase(phases[rng.Intn(len(phases))])
		}
		switch rng.Intn(10) {
		case 0:
			sum += shA.Load(p, rng.Intn(shA.Len()))
		case 1:
			shA.Store(p, rng.Intn(shA.Len()), float64(step))
		case 2:
			shB.Touch(p, rng.Intn(shB.Len()), rng.Intn(2) == 0)
		case 3:
			lo := rng.Intn(shA.Len())
			hi := lo + rng.Intn(shA.Len()-lo)
			shA.TouchRange(p, lo, hi, rng.Intn(2) == 0)
		case 4:
			lo := rng.Intn(shB.Len())
			shB.Fill(p, lo, lo+rng.Intn(shB.Len()-lo), int32(step))
		case 5:
			a := priv[p.ID()]
			if rng.Intn(2) == 0 {
				a.Store(p, rng.Intn(a.Len()), float64(step))
			} else {
				sum += a.Load(p, rng.Intn(a.Len()))
			}
		case 6:
			// Cursor load chains, staged randomly through the inlinable
			// TryLoad / TryProbe fast paths and the LoadMiss completion.
			cu := shA.Cursor(p)
			n := 1 + rng.Intn(32)
			for k := 0; k < n; k++ {
				i := rng.Intn(shA.Len())
				switch rng.Intn(3) {
				case 0:
					sum += cu.Load(i)
				case 1:
					v, ok := cu.TryLoad(i)
					if !ok {
						v = cu.LoadMiss(i)
					}
					sum += v
				default:
					v, ok := cu.TryLoad(i)
					if !ok {
						if v, ok = cu.TryProbe(i); !ok {
							v = cu.LoadMiss(i)
						}
					}
					sum += v
				}
			}
			cu.Flush()
		case 7:
			// Charge-only touch chain (the replay building block).
			cb := shB.Cursor(p)
			n := 1 + rng.Intn(32)
			for k := 0; k < n; k++ {
				if i := rng.Intn(shB.Len()); !cb.TryTouch(i) {
					cb.TouchMiss(i)
				}
			}
			cb.Flush()
		case 8:
			// Stencil-shaped arm walk: two streams cycling distinct lines.
			ca := shA.Cursor(p)
			var up, row Arm
			base := rng.Intn(shA.Len() - 66)
			for j := 0; j < 32; j++ {
				sum += ca.LoadArm(&up, base+j)
				sum += ca.LoadArm(&row, base+32+j)
				sum += ca.LoadArm(&row, base+32+j+1)
			}
			ca.Flush()
		case 9:
			// Batched trace replay over the quartet, with an occasional store
			// beforehand so the replay meets freshly written lines.
			if rng.Intn(2) == 0 {
				arr := [...]*Array[float64]{shX, shY, shM, shC}[rng.Intn(4)]
				arr.Store(p, rng.Intn(arr.Len()), float64(step))
			}
			var tr []int32
			n := 1 + rng.Intn(40)
			for k := 0; k < n; k++ {
				if rng.Intn(3) == 0 {
					tr = append(tr, int32(^rng.Intn(256)))
				} else {
					tr = append(tr, int32(rng.Intn(shX.Len())))
				}
			}
			cx, cy, cm, cc := shX.Cursor(p), shY.Cursor(p), shM.Cursor(p), shC.Cursor(p)
			ReplayLoads(tr, &cx, &cy, &cm, &cc)
			cx.Flush()
			cy.Flush()
			cm.Flush()
			cc.Flush()
		}
		// Periodic synchronization point: resolve coherence and charge the
		// penalties exactly as a barrier would.
		if step%257 == 256 {
			pen := sp.MergeEpoch()
			for i, d := range pen {
				g.Proc(i).Advance(d)
				res.PenLog = append(res.PenLog, d)
			}
		}
	}

	for i := 0; i < procs; i++ {
		p := g.Proc(i)
		res.Procs = append(res.Procs, procState{
			Clock:    p.Now(),
			Phases:   p.PhaseTimes(),
			Counters: p.Counters,
		})
	}
	res.Evicts = sp.CohEvictions()
	res.Checksum = sum
	return res
}

// TestFastPathMatchesReference is the differential test for the optimized
// cost model (DESIGN.md §5.4): the shift/table fast paths in array.go, the
// cursor chains (TryLoad/TryProbe/LoadMiss, TryTouch/TouchMiss, LoadArm),
// the batched trace replay (ReplayLoads), and the filtered, inverted
// coherence merge must be observationally identical to the straightforward
// reference implementations in ref.go — same virtual clocks, same per-phase
// attribution, same counters, same coherence evictions, same merge penalties
// — on randomized traces.
func TestFastPathMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 20260805} {
		fast := runTrace(t, seed, false)
		ref := runTrace(t, seed, true)
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("seed %d: fast path diverged from reference\nfast: %+v\nref:  %+v",
				seed, fast, ref)
		}
	}
}

// TestTouchRangeMatchesPerLine pins the bulk-path equivalence specifically:
// a TouchRange over [lo, hi) must be indistinguishable from touching each
// element's line exactly once in ascending order.
func TestTouchRangeMatchesPerLine(t *testing.T) {
	run := func(bulk bool) (procState, []uint64) {
		sp, _ := space(4)
		g := sim.NewGroup(4)
		a := NewShared[float64](sp, 2048)
		a.PlaceInterleave()
		p := g.Proc(1)
		if bulk {
			a.TouchRange(p, 37, 1500, true)
		} else {
			l0, l1 := a.lineOf(37), a.lineOf(1499)
			for li := l0; li <= l1; li++ {
				a.charge(p, li, true)
			}
		}
		pen := sp.MergeEpoch()
		for i, d := range pen {
			g.Proc(i).Advance(d)
		}
		return procState{p.Now(), p.PhaseTimes(), p.Counters}, sp.CohEvictions()
	}
	bulkSt, bulkEv := run(true)
	lineSt, lineEv := run(false)
	if !reflect.DeepEqual(bulkSt, lineSt) || !reflect.DeepEqual(bulkEv, lineEv) {
		t.Fatalf("bulk TouchRange diverged from per-line charging:\nbulk: %+v %v\nline: %+v %v",
			bulkSt, bulkEv, lineSt, lineEv)
	}
}
