package numa

import (
	"fmt"
	mbits "math/bits"
	"unsafe"

	"o2k/internal/sim"
)

// Array is a typed, placement-aware memory region. Elements live in an
// ordinary Go slice (Data), so applications compute real results; Load,
// Store, and Touch* additionally charge virtual time to the accessing
// processor according to the cache simulator and the touched page's home.
//
// Two kinds exist:
//
//   - Private arrays (NewPrivate) model per-process memory in the MP and
//     SHMEM programs: all pages are homed on the owner and no coherence
//     tracking is done. Only the owner should access them (puts/gets in the
//     SHMEM runtime are the costed exception).
//
//   - Shared arrays (NewShared) model CC-SAS data: pages may be placed
//     anywhere, and writes are recorded per processor so the next coherence
//     merge (Space.MergeEpoch, invoked by the sas barrier) invalidates the
//     written lines in every other cache.
//
// Data-race discipline follows the source programming models: between two
// synchronization points, an element of a shared array may be written by at
// most one processor (and then must not be read by others). The runtimes'
// tests enforce this for the applications in this repository.
type Array[T any] struct {
	sp       *Space
	data     []T
	elemSize uint64
	base     uint64 // byte address of element 0 (page aligned)
	baseLine uint64
	pageHome []int32 // home processor per page
	shared   bool

	// Hot-path caches, filled once in newArray (DESIGN.md §5.4). charge runs
	// for every simulated access — millions per experiment — so the shifts
	// replace the lineOf/pageOf divisions (LineBytes and PageBytes are
	// validated powers of two) and the machine tables replace the per-miss
	// Hops/MemAccess calls. All of them are derived, never authoritative:
	// the reference path in ref.go recomputes everything from Cfg.
	caches       []*cache
	lineShift    uint // log2(LineBytes)
	pageShift    uint // log2(PageBytes)
	pageOverLine uint // pageShift - lineShift: line index -> page index
	cacheHitNS   sim.Time
	procNode     []int32    // machine.ProcNode table
	nodeLat      []sim.Time // machine.NodeLat table, row-major by source node
	nodes        int

	// last[me] remembers the line this processor most recently accessed in
	// this array, with the cache generation at which it did. While the
	// generation matches (no tag has moved since), that line is provably
	// still the MRU way of its set, so a repeat access is a hit with no LRU
	// reorder — chargeable with two compares, no set hash, no tag probe. The
	// tags arrays are large enough to miss in the host cache; this 16-byte
	// slot stays hot. Never consulted or written on the reference path.
	last []lastRef

	// Epoch write-sets (shared arrays only).
	writeLines [][]uint32 // per proc: line indices written this epoch
	writeBits  [][]uint64 // per proc: dedup bitmap over line indices

	// inst[q] bounds the array-local lines processor q has ever installed in
	// its cache (shared arrays only): a conservative superset of this array's
	// residency in cache q, never shrunk by eviction or flush. Address ranges
	// are never reused (Space.reserve), so a line of this array can only enter
	// a cache through this array's accessors — the merge may therefore skip
	// any cache whose install range misses a written line. At large processor
	// counts a cache holds only its partition (plus ghost halo) of each array,
	// so this per-array range stays sharp where the cache-global occupancy
	// filters saturate.
	inst []instRange
}

// instRange is a closed [lo, hi] interval of array-local line indices;
// lo > hi means empty.
type instRange struct {
	lo, hi uint32
}

// lastRef is one entry of Array.last: line is the global line address + 1
// (0 = never set), gen the owning cache's mutation count when it was stored.
type lastRef struct {
	line uint64
	gen  uint64
}

// NewPrivate allocates n elements of private memory homed on owner.
func NewPrivate[T any](sp *Space, owner, n int) *Array[T] {
	a := newArray[T](sp, n)
	a.PlaceUniform(owner)
	return a
}

// NewShared allocates n elements of shared memory with coherence tracking.
// Pages default to home processor 0; call a Place* method to distribute.
func NewShared[T any](sp *Space, n int) *Array[T] {
	a := newArray[T](sp, n)
	a.shared = true
	p := sp.M.Procs()
	a.writeLines = make([][]uint32, p)
	a.writeBits = make([][]uint64, p)
	a.inst = make([]instRange, p)
	for i := range a.inst {
		a.inst[i].lo = ^uint32(0)
	}
	sp.registerShared(a)
	return a
}

func newArray[T any](sp *Space, n int) *Array[T] {
	if n < 0 {
		panic("numa: negative array length")
	}
	var z T
	es := uint64(unsafe.Sizeof(z))
	if es == 0 {
		es = 1
	}
	bytes := es * uint64(n)
	base := sp.reserve(int(bytes))
	pb := uint64(sp.M.Cfg.PageBytes)
	pages := (bytes + pb - 1) / pb
	if pages == 0 {
		pages = 1
	}
	lineShift := uint(mbits.TrailingZeros64(uint64(sp.M.Cfg.LineBytes)))
	pageShift := uint(mbits.TrailingZeros64(pb))
	a := &Array[T]{
		sp:           sp,
		data:         allocData[T](sp, es, n),
		elemSize:     es,
		base:         base,
		baseLine:     base >> lineShift,
		pageHome:     make([]int32, pages),
		caches:       sp.caches,
		lineShift:    lineShift,
		pageShift:    pageShift,
		pageOverLine: pageShift - lineShift,
		cacheHitNS:   sp.M.Cfg.CacheHitNS,
		procNode:     sp.M.ProcNode(),
		nodeLat:      sp.M.NodeLat(),
		nodes:        sp.M.Nodes(),
		last:         make([]lastRef, sp.M.Procs()),
	}
	sp.addAlloc(int(bytes))
	return a
}

// poolMinElems is the smallest allocation worth pooling/rounding: tiny arrays
// are cheap to allocate and would pollute the reuse buckets.
const poolMinElems = 1024

// allocData hands out the host backing slice for a new array: a recycled
// slice from the space's pool when one fits (re-zeroed, so semantically a
// fresh make), else a fresh allocation. Large allocations round the host
// capacity up to a power of two so a later, slightly larger array can reuse
// the slice once released — adaptive workloads grow their arrays cycle over
// cycle, and exact-fit pooling would never hit. Only host memory is affected:
// simulated addresses always come fresh from Space.reserve.
func allocData[T any](sp *Space, es uint64, n int) []T {
	if n < poolMinElems {
		return make([]T, n)
	}
	if sl := takePool[T](sp, es, n); sl != nil {
		return sl
	}
	c := poolMinElems
	for c < n {
		c <<= 1
	}
	return make([]T, n, c)
}

// Release returns a's host backing store to its Space's reuse pool and
// detaches the array; any later costed access panics on the nil data slice.
// Only call it when no simulated code can touch the array again (the arrays
// of a finished adaptation cycle, once the next cycle's remap has read them).
// Shared arrays are also dropped from the coherence-merge roster; their
// write-sets must be empty, i.e. a merge has run since the last write.
// AllocBytes is NOT decremented: the simulated program never freed anything,
// the host merely reuses memory — so the model cannot observe a Release.
func Release[T any](a *Array[T]) {
	if a == nil || a.data == nil {
		return
	}
	if a.shared {
		for _, wl := range a.writeLines {
			if len(wl) != 0 {
				panic("numa: Release of shared array with unmerged writes")
			}
		}
		a.sp.unregisterShared(a)
	}
	if cap(a.data) >= poolMinElems {
		a.sp.putPool(a.elemSize, a.data[:0])
	}
	a.data = nil
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.data) }

// Bytes returns the allocation size in bytes.
func (a *Array[T]) Bytes() int { return int(a.elemSize) * len(a.data) }

// Data exposes the backing slice for bulk computation. Accesses through Data
// are not costed; pair them with Touch/TouchRange, or prefer Load/Store.
func (a *Array[T]) Data() []T { return a.data }

// --- Placement -------------------------------------------------------------

// PlaceUniform homes every page on processor owner.
func (a *Array[T]) PlaceUniform(owner int) {
	a.checkProc(owner)
	for i := range a.pageHome {
		a.pageHome[i] = int32(owner)
	}
}

// PlaceInterleave homes page i on processor i mod P (round-robin), the
// classic "spread everything" placement.
func (a *Array[T]) PlaceInterleave() {
	p := int32(a.sp.M.Procs())
	for i := range a.pageHome {
		a.pageHome[i] = int32(i) % p
	}
}

// PlaceBlock homes pages in contiguous blocks: processor k gets the pages
// covering elements [k*n/P, (k+1)*n/P).
func (a *Array[T]) PlaceBlock() {
	a.PlaceByElem(func(i int) int {
		return i * a.sp.M.Procs() / max(len(a.data), 1)
	})
}

// PlaceByElem homes each page on ownerOf(first element in the page). This is
// the deterministic stand-in for first-touch placement: pass the same owner
// function the application uses to initialize the array.
func (a *Array[T]) PlaceByElem(ownerOf func(elem int) int) {
	pb := uint64(a.sp.M.Cfg.PageBytes)
	for pg := range a.pageHome {
		elem := int(uint64(pg) * pb / a.elemSize)
		if elem >= len(a.data) {
			elem = len(a.data) - 1
		}
		if elem < 0 {
			elem = 0
		}
		o := ownerOf(elem)
		a.checkProc(o)
		a.pageHome[pg] = int32(o)
	}
}

// RehomeByElem re-places every page like PlaceByElem and returns how many
// pages actually changed home — the input to a page-migration cost model.
// It must only be called while no processor is accessing the array (between
// SPMD regions or at a rendezvous).
func (a *Array[T]) RehomeByElem(ownerOf func(elem int) int) (moved int) {
	pb := uint64(a.sp.M.Cfg.PageBytes)
	for pg := range a.pageHome {
		elem := int(uint64(pg) * pb / a.elemSize)
		if elem >= len(a.data) {
			elem = len(a.data) - 1
		}
		if elem < 0 {
			elem = 0
		}
		o := ownerOf(elem)
		a.checkProc(o)
		if a.pageHome[pg] != int32(o) {
			a.pageHome[pg] = int32(o)
			moved++
		}
	}
	return moved
}

// Home returns the home processor of the page containing element i.
func (a *Array[T]) Home(i int) int {
	return int(a.pageHome[a.pageOf(i)])
}

func (a *Array[T]) checkProc(p int) {
	if p < 0 || p >= a.sp.M.Procs() {
		panic(fmt.Sprintf("numa: processor %d out of range [0,%d)", p, a.sp.M.Procs()))
	}
}

func (a *Array[T]) pageOf(i int) int {
	return int(uint64(i) * a.elemSize >> a.pageShift)
}

func (a *Array[T]) lineOf(i int) uint32 {
	return uint32(uint64(i) * a.elemSize >> a.lineShift)
}

// --- Costed access ---------------------------------------------------------

// charge runs the cache/NUMA cost model for one access to local line index
// li by processor p, and (for shared arrays) records the write-set entry.
// The overwhelmingly common case — a repeat access to the processor's last
// line in this array, needing no write-set record — is answered from the
// last-line slot with two compares; an MRU-way hit costs one tag probe more;
// everything else (LRU shuffle, miss, write record, reference model) drops
// to chargeSlow. Load and Store repeat both fast paths inline (the compiler
// will not inline charge into them) — keep the three copies in sync.
func (a *Array[T]) charge(p *sim.Proc, li uint32, write bool) {
	me := p.ID()
	c := a.caches[me]
	gl := a.baseLine + uint64(li)
	lr := &a.last[me]
	if lr.line == gl+1 && lr.gen == c.gen && !(write && a.shared) {
		p.CacheHits++
		p.Advance(a.cacheHitNS)
		return
	}
	base := c.setBase(gl)
	if (write && a.shared) || refModel || !c.mruHit(base, gl) {
		a.chargeSlow(p, c, base, gl, li, write)
		return
	}
	p.CacheHits++
	p.Advance(a.cacheHitNS)
	lr.line, lr.gen = gl+1, c.gen
}

func (a *Array[T]) chargeSlow(p *sim.Proc, c *cache, base, gl uint64, li uint32, write bool) {
	if refModel {
		a.chargeRef(p, li, write)
		return
	}
	me := p.ID()
	if c.mruHit(base, gl) || c.accessSlow(base, gl) {
		p.CacheHits++
		p.Advance(a.cacheHitNS)
	} else {
		a.noteInstall(me, li)
		sn := a.procNode[me]
		hn := a.procNode[a.pageHome[li>>a.pageOverLine]]
		if sn == hn {
			p.LocalMisses++
		} else {
			p.RemoteMisses++
		}
		p.Advance(a.nodeLat[int(sn)*a.nodes+int(hn)])
	}
	if write && a.shared {
		a.recordWrite(me, li)
	}
	// The access (hit or install) left gl in the MRU way; c.gen reflects any
	// shuffle accessSlow just did.
	a.last[me] = lastRef{gl + 1, c.gen}
}

// noteInstall widens processor me's install range after a miss installed
// array-local line li in its cache. Only shared arrays track installs (the
// merge is the sole consumer); the nil check keeps private arrays free.
func (a *Array[T]) noteInstall(me int, li uint32) {
	if a.inst == nil {
		return
	}
	r := &a.inst[me]
	if li < r.lo {
		r.lo = li
	}
	if li > r.hi {
		r.hi = li
	}
}

// recordWrite adds li to processor me's epoch write-set (once per line).
func (a *Array[T]) recordWrite(me int, li uint32) {
	bits := a.writeBits[me]
	if bits == nil {
		bits = make([]uint64, (a.lines()+63)/64)
		a.writeBits[me] = bits
	}
	w, b := li>>6, uint64(1)<<(li&63)
	if bits[w]&b == 0 {
		bits[w] |= b
		a.writeLines[me] = append(a.writeLines[me], li)
	}
}

// recordWriteRange is recordWrite for the contiguous lines [l0, l1],
// word-at-a-time over the dedup bitmap. Newly written lines are appended in
// ascending order — the same order the per-line path produces.
func (a *Array[T]) recordWriteRange(me int, l0, l1 uint32) {
	bits := a.writeBits[me]
	if bits == nil {
		bits = make([]uint64, (a.lines()+63)/64)
		a.writeBits[me] = bits
	}
	wl := a.writeLines[me]
	w0, w1 := l0>>6, l1>>6
	for w := w0; w <= w1; w++ {
		mask := ^uint64(0)
		if w == w0 {
			mask &= ^uint64(0) << (l0 & 63)
		}
		if w == w1 {
			mask &= ^uint64(0) >> (63 - l1&63)
		}
		newly := mask &^ bits[w]
		bits[w] |= mask
		for newly != 0 {
			wl = append(wl, w<<6|uint32(mbits.TrailingZeros64(newly)))
			newly &= newly - 1
		}
	}
	a.writeLines[me] = wl
}

func (a *Array[T]) lines() int {
	return int((a.elemSize*uint64(len(a.data)) + uint64(a.sp.M.Cfg.LineBytes) - 1) / uint64(a.sp.M.Cfg.LineBytes))
}

// Load returns element i, charging the access to p. The charge fast paths
// are repeated here (not called) so the hot hit case costs no function call.
func (a *Array[T]) Load(p *sim.Proc, i int) T {
	me := p.ID()
	li := a.lineOf(i)
	c := a.caches[me]
	gl := a.baseLine + uint64(li)
	lr := &a.last[me]
	if lr.line == gl+1 && lr.gen == c.gen {
		p.CacheHits++
		p.Advance(a.cacheHitNS)
		return a.data[i]
	}
	base := c.setBase(gl)
	if refModel || !c.mruHit(base, gl) {
		a.chargeSlow(p, c, base, gl, li, false)
	} else {
		p.CacheHits++
		p.Advance(a.cacheHitNS)
		lr.line, lr.gen = gl+1, c.gen
	}
	return a.data[i]
}

// Store writes element i, charging the access to p; fast paths as in Load
// (shared-array stores always drop to chargeSlow for the write record).
func (a *Array[T]) Store(p *sim.Proc, i int, v T) {
	me := p.ID()
	li := a.lineOf(i)
	c := a.caches[me]
	gl := a.baseLine + uint64(li)
	lr := &a.last[me]
	if !a.shared && lr.line == gl+1 && lr.gen == c.gen {
		p.CacheHits++
		p.Advance(a.cacheHitNS)
		a.data[i] = v
		return
	}
	base := c.setBase(gl)
	if a.shared || refModel || !c.mruHit(base, gl) {
		a.chargeSlow(p, c, base, gl, li, true)
	} else {
		p.CacheHits++
		p.Advance(a.cacheHitNS)
		lr.line, lr.gen = gl+1, c.gen
	}
	a.data[i] = v
}

// Touch charges a read (or write) of element i without moving data; use when
// computing directly on Data.
func (a *Array[T]) Touch(p *sim.Proc, i int, write bool) {
	a.charge(p, a.lineOf(i), write)
}

// TouchRange charges a streaming access of elements [lo, hi) — one cache
// event per distinct line — without moving data.
//
// The bulk path probes each line once, accumulates the latency into a single
// Advance, and records the write-set word-at-a-time; because every access is
// in the same phase and counters are sums, the result is identical to
// charging line-by-line (the differential test in ref_test.go checks this
// against the reference path).
func (a *Array[T]) TouchRange(p *sim.Proc, lo, hi int, write bool) {
	if lo >= hi {
		return
	}
	l0, l1 := a.lineOf(lo), a.lineOf(hi-1)
	if refModel {
		for li := l0; li <= l1; li++ {
			a.chargeRef(p, li, write)
		}
		return
	}
	me := p.ID()
	c := a.caches[me]
	sn := a.procNode[me]
	var lat sim.Time
	var hits, local, remote uint64
	for li := l0; li <= l1; li++ {
		gl := a.baseLine + uint64(li)
		base := c.setBase(gl)
		if c.mruHit(base, gl) || c.accessSlow(base, gl) {
			hits++
			lat += a.cacheHitNS
			continue
		}
		a.noteInstall(me, li)
		hn := a.procNode[a.pageHome[li>>a.pageOverLine]]
		if sn == hn {
			local++
		} else {
			remote++
		}
		lat += a.nodeLat[int(sn)*a.nodes+int(hn)]
	}
	p.CacheHits += hits
	p.LocalMisses += local
	p.RemoteMisses += remote
	p.Advance(lat)
	if write && a.shared {
		a.recordWriteRange(me, l0, l1)
	}
	// l1 was the final probe, so it sits in the MRU way of its set.
	a.last[me] = lastRef{a.baseLine + uint64(l1) + 1, c.gen}
}

// Fill stores v into [lo, hi), charging one event per line.
func (a *Array[T]) Fill(p *sim.Proc, lo, hi int, v T) {
	a.TouchRange(p, lo, hi, true)
	for i := lo; i < hi; i++ {
		a.data[i] = v
	}
}

// LineRange returns the global line-address range [lo, hi) covering elements
// [e0, e1); hi == lo when the element range is empty.
func (a *Array[T]) LineRange(e0, e1 int) (lo, hi uint64) {
	if e0 >= e1 {
		return 0, 0
	}
	lo = a.baseLine + uint64(a.lineOf(e0))
	hi = a.baseLine + uint64(a.lineOf(e1-1)) + 1
	return lo, hi
}

// --- Coherence merge (epochTracker) -----------------------------------------

// mergeEpoch applies the epoch's write-sets: every line written by some
// processor is invalidated in every other processor's cache.
//
// The loops run per writer, then per cache, then per line, so each target
// cache is filtered once per writer with its occupancy count and line-range
// bounds before any per-line probing. Invalidation outcomes are
// order-independent — invalidate(L) in cache q depends only on whether q
// still holds L, and each (line, cache) pair evicts at most once however many
// writers touched the line — so any probe order (including the reference
// path's line-major order in ref.go) yields identical cache state and evict
// counts.
func (a *Array[T]) mergeEpoch(caches []*cache, evicts []uint64) {
	if refModel {
		a.mergeEpochRef(caches, evicts)
		return
	}
	for w := range a.writeLines {
		lines := a.writeLines[w]
		if len(lines) == 0 {
			continue
		}
		// Precompute global addresses and signature bits once per writer; the
		// per-line signature check below is what keeps the merge affordable
		// at hundreds of caches — a probe only reaches the tag array when the
		// target cache has installed a line in that signature granule.
		gls := a.sp.mergeGls[:0]
		sigs := a.sp.mergeSigs[:0]
		lo, hi := lines[0], lines[0]
		var wsig uint64
		for _, li := range lines {
			if li < lo {
				lo = li
			}
			if li > hi {
				hi = li
			}
			gl := a.baseLine + uint64(li)
			sb := sigBit(gl)
			wsig |= sb
			gls = append(gls, gl)
			sigs = append(sigs, sb)
		}
		a.sp.mergeGls, a.sp.mergeSigs = gls, sigs
		glo, ghi := a.baseLine+uint64(lo), a.baseLine+uint64(hi)
		for q, c := range caches {
			// The per-array install range is the sharpest filter at large
			// processor counts (see inst); the cache-global occupancy and
			// signature checks still help when the range is wide.
			r := a.inst[q]
			if q == w || r.lo > hi || r.hi < lo ||
				c.live == 0 || ghi < c.minLine || glo > c.maxLine || c.sig&wsig == 0 {
				continue
			}
			n := uint64(0)
			csig := c.sig
			for k, li := range lines {
				if li < r.lo || li > r.hi || csig&sigs[k] == 0 {
					continue
				}
				if c.invalidate(gls[k]) {
					n++
				}
			}
			evicts[q] += n
		}
		bits := a.writeBits[w]
		for _, li := range lines {
			bits[li>>6] &^= uint64(1) << (li & 63)
		}
		a.writeLines[w] = lines[:0]
	}
}
