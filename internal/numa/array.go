package numa

import (
	"fmt"
	"unsafe"

	"o2k/internal/sim"
)

// Array is a typed, placement-aware memory region. Elements live in an
// ordinary Go slice (Data), so applications compute real results; Load,
// Store, and Touch* additionally charge virtual time to the accessing
// processor according to the cache simulator and the touched page's home.
//
// Two kinds exist:
//
//   - Private arrays (NewPrivate) model per-process memory in the MP and
//     SHMEM programs: all pages are homed on the owner and no coherence
//     tracking is done. Only the owner should access them (puts/gets in the
//     SHMEM runtime are the costed exception).
//
//   - Shared arrays (NewShared) model CC-SAS data: pages may be placed
//     anywhere, and writes are recorded per processor so the next coherence
//     merge (Space.MergeEpoch, invoked by the sas barrier) invalidates the
//     written lines in every other cache.
//
// Data-race discipline follows the source programming models: between two
// synchronization points, an element of a shared array may be written by at
// most one processor (and then must not be read by others). The runtimes'
// tests enforce this for the applications in this repository.
type Array[T any] struct {
	sp       *Space
	data     []T
	elemSize uint64
	base     uint64 // byte address of element 0 (page aligned)
	baseLine uint64
	pageHome []int32 // home processor per page
	shared   bool

	// Epoch write-sets (shared arrays only).
	writeLines [][]uint32 // per proc: line indices written this epoch
	writeBits  [][]uint64 // per proc: dedup bitmap over line indices
}

// NewPrivate allocates n elements of private memory homed on owner.
func NewPrivate[T any](sp *Space, owner, n int) *Array[T] {
	a := newArray[T](sp, n)
	a.PlaceUniform(owner)
	return a
}

// NewShared allocates n elements of shared memory with coherence tracking.
// Pages default to home processor 0; call a Place* method to distribute.
func NewShared[T any](sp *Space, n int) *Array[T] {
	a := newArray[T](sp, n)
	a.shared = true
	p := sp.M.Procs()
	a.writeLines = make([][]uint32, p)
	a.writeBits = make([][]uint64, p)
	sp.registerShared(a)
	return a
}

func newArray[T any](sp *Space, n int) *Array[T] {
	if n < 0 {
		panic("numa: negative array length")
	}
	var z T
	es := uint64(unsafe.Sizeof(z))
	if es == 0 {
		es = 1
	}
	bytes := es * uint64(n)
	base := sp.reserve(int(bytes))
	pb := uint64(sp.M.Cfg.PageBytes)
	pages := (bytes + pb - 1) / pb
	if pages == 0 {
		pages = 1
	}
	a := &Array[T]{
		sp:       sp,
		data:     make([]T, n),
		elemSize: es,
		base:     base,
		baseLine: base / uint64(sp.M.Cfg.LineBytes),
		pageHome: make([]int32, pages),
	}
	sp.addAlloc(int(bytes))
	return a
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.data) }

// Bytes returns the allocation size in bytes.
func (a *Array[T]) Bytes() int { return int(a.elemSize) * len(a.data) }

// Data exposes the backing slice for bulk computation. Accesses through Data
// are not costed; pair them with Touch/TouchRange, or prefer Load/Store.
func (a *Array[T]) Data() []T { return a.data }

// --- Placement -------------------------------------------------------------

// PlaceUniform homes every page on processor owner.
func (a *Array[T]) PlaceUniform(owner int) {
	a.checkProc(owner)
	for i := range a.pageHome {
		a.pageHome[i] = int32(owner)
	}
}

// PlaceInterleave homes page i on processor i mod P (round-robin), the
// classic "spread everything" placement.
func (a *Array[T]) PlaceInterleave() {
	p := int32(a.sp.M.Procs())
	for i := range a.pageHome {
		a.pageHome[i] = int32(i) % p
	}
}

// PlaceBlock homes pages in contiguous blocks: processor k gets the pages
// covering elements [k*n/P, (k+1)*n/P).
func (a *Array[T]) PlaceBlock() {
	a.PlaceByElem(func(i int) int {
		return i * a.sp.M.Procs() / max(len(a.data), 1)
	})
}

// PlaceByElem homes each page on ownerOf(first element in the page). This is
// the deterministic stand-in for first-touch placement: pass the same owner
// function the application uses to initialize the array.
func (a *Array[T]) PlaceByElem(ownerOf func(elem int) int) {
	pb := uint64(a.sp.M.Cfg.PageBytes)
	for pg := range a.pageHome {
		elem := int(uint64(pg) * pb / a.elemSize)
		if elem >= len(a.data) {
			elem = len(a.data) - 1
		}
		if elem < 0 {
			elem = 0
		}
		o := ownerOf(elem)
		a.checkProc(o)
		a.pageHome[pg] = int32(o)
	}
}

// RehomeByElem re-places every page like PlaceByElem and returns how many
// pages actually changed home — the input to a page-migration cost model.
// It must only be called while no processor is accessing the array (between
// SPMD regions or at a rendezvous).
func (a *Array[T]) RehomeByElem(ownerOf func(elem int) int) (moved int) {
	pb := uint64(a.sp.M.Cfg.PageBytes)
	for pg := range a.pageHome {
		elem := int(uint64(pg) * pb / a.elemSize)
		if elem >= len(a.data) {
			elem = len(a.data) - 1
		}
		if elem < 0 {
			elem = 0
		}
		o := ownerOf(elem)
		a.checkProc(o)
		if a.pageHome[pg] != int32(o) {
			a.pageHome[pg] = int32(o)
			moved++
		}
	}
	return moved
}

// Home returns the home processor of the page containing element i.
func (a *Array[T]) Home(i int) int {
	return int(a.pageHome[a.pageOf(i)])
}

func (a *Array[T]) checkProc(p int) {
	if p < 0 || p >= a.sp.M.Procs() {
		panic(fmt.Sprintf("numa: processor %d out of range [0,%d)", p, a.sp.M.Procs()))
	}
}

func (a *Array[T]) pageOf(i int) int {
	return int(uint64(i) * a.elemSize / uint64(a.sp.M.Cfg.PageBytes))
}

func (a *Array[T]) lineOf(i int) uint32 {
	return uint32(uint64(i) * a.elemSize / uint64(a.sp.M.Cfg.LineBytes))
}

// --- Costed access ---------------------------------------------------------

// charge runs the cache/NUMA cost model for one access to local line index
// li by processor p, and (for shared arrays) records the write-set entry.
func (a *Array[T]) charge(p *sim.Proc, li uint32, write bool) {
	me := p.ID()
	c := a.sp.caches[me]
	gl := a.baseLine + uint64(li)
	if c.access(gl) {
		p.CacheHits++
		p.Advance(a.sp.M.Cfg.CacheHitNS)
	} else {
		home := int(a.pageHome[int(uint64(li)*uint64(a.sp.M.Cfg.LineBytes)/uint64(a.sp.M.Cfg.PageBytes))])
		lat := a.sp.M.MemAccess(me, home)
		if a.sp.M.Hops(me, home) == 0 {
			p.LocalMisses++
		} else {
			p.RemoteMisses++
		}
		p.Advance(lat)
	}
	if write && a.shared {
		bits := a.writeBits[me]
		if bits == nil {
			bits = make([]uint64, (a.lines()+63)/64)
			a.writeBits[me] = bits
		}
		w, b := li>>6, uint64(1)<<(li&63)
		if bits[w]&b == 0 {
			bits[w] |= b
			a.writeLines[me] = append(a.writeLines[me], li)
		}
	}
}

func (a *Array[T]) lines() int {
	return int((a.elemSize*uint64(len(a.data)) + uint64(a.sp.M.Cfg.LineBytes) - 1) / uint64(a.sp.M.Cfg.LineBytes))
}

// Load returns element i, charging the access to p.
func (a *Array[T]) Load(p *sim.Proc, i int) T {
	a.charge(p, a.lineOf(i), false)
	return a.data[i]
}

// Store writes element i, charging the access to p.
func (a *Array[T]) Store(p *sim.Proc, i int, v T) {
	a.charge(p, a.lineOf(i), true)
	a.data[i] = v
}

// Touch charges a read (or write) of element i without moving data; use when
// computing directly on Data.
func (a *Array[T]) Touch(p *sim.Proc, i int, write bool) {
	a.charge(p, a.lineOf(i), write)
}

// TouchRange charges a streaming access of elements [lo, hi) — one cache
// event per distinct line — without moving data.
func (a *Array[T]) TouchRange(p *sim.Proc, lo, hi int, write bool) {
	if lo >= hi {
		return
	}
	l0, l1 := a.lineOf(lo), a.lineOf(hi-1)
	for li := l0; li <= l1; li++ {
		a.charge(p, li, write)
	}
}

// Fill stores v into [lo, hi), charging one event per line.
func (a *Array[T]) Fill(p *sim.Proc, lo, hi int, v T) {
	a.TouchRange(p, lo, hi, true)
	for i := lo; i < hi; i++ {
		a.data[i] = v
	}
}

// LineRange returns the global line-address range [lo, hi) covering elements
// [e0, e1); hi == lo when the element range is empty.
func (a *Array[T]) LineRange(e0, e1 int) (lo, hi uint64) {
	if e0 >= e1 {
		return 0, 0
	}
	lo = a.baseLine + uint64(a.lineOf(e0))
	hi = a.baseLine + uint64(a.lineOf(e1-1)) + 1
	return lo, hi
}

// --- Coherence merge (epochTracker) -----------------------------------------

func (a *Array[T]) mergeEpoch(caches []*cache, evicts []uint64) {
	for w := range a.writeLines {
		lines := a.writeLines[w]
		if len(lines) == 0 {
			continue
		}
		bits := a.writeBits[w]
		for _, li := range lines {
			gl := a.baseLine + uint64(li)
			for q, c := range caches {
				if q == w {
					continue
				}
				if c.invalidate(gl) {
					evicts[q]++
				}
			}
			bits[li>>6] &^= uint64(1) << (li & 63)
		}
		a.writeLines[w] = lines[:0]
	}
}
