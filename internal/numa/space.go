package numa

import (
	"sync"
	"sync/atomic"

	"o2k/internal/machine"
	"o2k/internal/sim"
)

// Space is the memory system of one simulated machine run: it owns the
// per-processor cache simulators, hands out disjoint address ranges to
// arrays, and performs the epoch coherence merge for shared arrays.
type Space struct {
	M *machine.Machine

	caches   []*cache
	nextBase atomic.Uint64

	mu     sync.Mutex
	shared []epochTracker // shared arrays with live write-sets

	// pool holds released host backing slices for reuse, bucketed by element
	// size (the stored values are typed slices; takePool type-asserts). Only
	// the host allocation is recycled: simulated addresses always come fresh
	// from reserve, and a reused slice is re-zeroed, so the model cannot
	// observe the difference. See Release.
	pool map[uint64][]any

	// Scratch for MergeEpoch, reused across barrier episodes. Safe because
	// MergeEpoch only runs from a barrier rendezvous hook while every
	// processor is blocked, and each participant reads its penalty entry
	// before leaving the barrier — so the previous episode's slices are
	// fully consumed before the next merge can start.
	mergeEvicts []uint64
	mergePen    []sim.Time
	// Per-writer scratch for mergeEpoch: the write-set's global line
	// addresses and their Bloom-signature bits, computed once per writer and
	// reused against every target cache.
	mergeGls  []uint64
	mergeSigs []uint64

	allocBytes atomic.Uint64
}

// epochTracker is the slice of Array behaviour the coherence merge needs.
type epochTracker interface {
	// mergeEpoch applies this array's per-proc write-sets to every other
	// processor's cache, accumulating per-proc invalidation counts into
	// evicts, then clears the write-sets.
	mergeEpoch(caches []*cache, evicts []uint64)
}

// NewSpace creates the memory system for machine m.
func NewSpace(m *machine.Machine) *Space {
	s := &Space{M: m, caches: make([]*cache, m.Procs())}
	for i := range s.caches {
		s.caches[i] = newCache(m.Cfg.CacheBytes, m.Cfg.LineBytes)
	}
	s.nextBase.Store(uint64(m.Cfg.PageBytes)) // keep address 0 unused
	return s
}

// reserve claims an address range of n bytes aligned to the page size.
//
// The total address range is bounded so that every global line index fits a
// 32-bit cache tag (see cache.go): with 128-byte lines that is half a
// terabyte of simulated memory, far beyond any workload here — the backing
// Go slices would exhaust host memory long before this panics.
func (s *Space) reserve(n int) uint64 {
	pb := uint64(s.M.Cfg.PageBytes)
	sz := (uint64(n) + pb - 1) / pb * pb
	if sz == 0 {
		sz = pb
	}
	end := s.nextBase.Add(sz)
	if end/uint64(s.M.Cfg.LineBytes) >= 1<<32-1 {
		panic("numa: address space exhausted (global line index no longer fits a 32-bit cache tag)")
	}
	return end - sz
}

func (s *Space) registerShared(t epochTracker) {
	s.mu.Lock()
	s.shared = append(s.shared, t)
	s.mu.Unlock()
}

func (s *Space) unregisterShared(t epochTracker) {
	s.mu.Lock()
	for i, st := range s.shared {
		if st == t {
			s.shared = append(s.shared[:i], s.shared[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// putPool returns a released backing slice (stored as a typed slice in an
// any) to the element-size bucket. Caller must not retain the slice.
func (s *Space) putPool(elemSize uint64, slice any) {
	s.mu.Lock()
	if s.pool == nil {
		s.pool = make(map[uint64][]any)
	}
	s.pool[elemSize] = append(s.pool[elemSize], slice)
	s.mu.Unlock()
}

// takePool finds a pooled slice of element type T with capacity >= n, removes
// it from the bucket, and returns it resliced to n and zeroed — semantically
// a fresh make([]T, n). Returns nil when nothing fits.
func takePool[T any](s *Space, elemSize uint64, n int) []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	bucket := s.pool[elemSize]
	for i := len(bucket) - 1; i >= 0; i-- {
		sl, ok := bucket[i].([]T)
		if !ok || cap(sl) < n {
			continue
		}
		bucket[i] = bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		s.pool[elemSize] = bucket[:len(bucket)-1]
		sl = sl[:n]
		clear(sl)
		return sl
	}
	return nil
}

func (s *Space) addAlloc(n int) { s.allocBytes.Add(uint64(n)) }

// AllocBytes reports total model-visible memory allocated in this space.
func (s *Space) AllocBytes() uint64 { return s.allocBytes.Load() }

// MergeEpoch resolves coherence for all shared arrays: every line written by
// some processor since the previous merge is invalidated in all other caches.
// It returns the per-processor virtual-time penalty (invalidation processing)
// that the caller — a barrier implementation — must charge before releasing
// each processor.
//
// MergeEpoch must be called while every processor in the space is blocked
// (i.e., from inside a barrier's rendezvous), since it touches all caches.
func (s *Space) MergeEpoch() []sim.Time {
	if s.mergeEvicts == nil {
		s.mergeEvicts = make([]uint64, len(s.caches))
		s.mergePen = make([]sim.Time, len(s.caches))
	}
	evicts := s.mergeEvicts
	clear(evicts)
	s.mu.Lock()
	trackers := s.shared
	s.mu.Unlock()
	for _, t := range trackers {
		t.mergeEpoch(s.caches, evicts)
	}
	pen := s.mergePen
	per := s.M.Cfg.CohInvalPerLine
	for i, e := range evicts {
		pen[i] = sim.Time(e) * per
	}
	return pen
}

// InvalidateLines drops the given global line addresses from processor pe's
// cache and returns how many were actually evicted. Like MergeEpoch, it must
// only be called while pe is blocked at a rendezvous.
func (s *Space) InvalidateLines(pe int, lines []uint64) int {
	c := s.caches[pe]
	n := 0
	for _, l := range lines {
		if c.invalidate(l) {
			n++
		}
	}
	return n
}

// InvalidateSpan drops the contiguous global line range [lo, hi) from
// processor pe's cache and returns how many lines were actually evicted. The
// occupancy filter makes the no-overlap case O(1). Like MergeEpoch, it must
// only be called while pe is blocked at a rendezvous.
func (s *Space) InvalidateSpan(pe int, lo, hi uint64) int {
	c := s.caches[pe]
	if c.live == 0 || hi <= lo || hi-1 < c.minLine || lo > c.maxLine {
		return 0
	}
	n := 0
	for l := lo; l < hi; l++ {
		if c.invalidate(l) {
			n++
		}
	}
	return n
}

// CohEvictions reports, per processor, how many cache lines coherence has
// invalidated so far (a proxy for coherence misses in the traffic tables).
func (s *Space) CohEvictions() []uint64 {
	out := make([]uint64, len(s.caches))
	for i, c := range s.caches {
		out[i] = c.cohEvicts
	}
	return out
}

// FlushCaches empties every processor cache; used between benchmark
// repetitions so each repetition starts cold.
func (s *Space) FlushCaches() {
	for _, c := range s.caches {
		c.flush()
	}
}
