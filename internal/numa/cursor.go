package numa

import "o2k/internal/sim"

// Cursor is a bound accessor: Array, processor, and cache resolved once, with
// the per-access virtual latency accumulated locally and charged by a single
// Advance at Flush. It exists for the irregular inner loops that interleave
// several arrays per iteration (edge flux, vertex update, tree walk), where
// the index-batched helpers in batch.go do not fit: the loop keeps its shape
// and each Load/Store charges exactly like Array.Load/Store — same fast
// paths, same probes, same write-set records, same counters — except that the
// clock advances once per Flush instead of once per access. Within one phase
// the sums are identical.
//
// Rules: a Cursor is single-proc (use p's own cursor only from p's body) and
// must be Flushed before any synchronization, communication, or phase change
// — anything that reads p's clock — and before the loop's results are used to
// derive further costed work. Flush is idempotent; an unflushed cursor at a
// rendezvous would under-report the entry clock and break determinism.
//
// Under refModel every access degrades to chargeRef with an immediate
// Advance, so Flush becomes a no-op and differential traces stay aligned.
type Cursor[T any] struct {
	a    *Array[T]
	p    *sim.Proc
	c    *cache
	me   int
	lat  sim.Time
	hits uint64
}

// Cursor binds a to p. The returned value is cheap to create per loop; do not
// share it across procs.
func (a *Array[T]) Cursor(p *sim.Proc) Cursor[T] {
	me := p.ID()
	return Cursor[T]{a: a, p: p, c: a.caches[me], me: me}
}

// Load reads element i through the cursor; identical charging to Array.Load
// with the Advance deferred to Flush.
func (cu *Cursor[T]) Load(i int) T {
	a := cu.a
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	lr := &a.last[cu.me]
	if lr.line == gl+1 && lr.gen == cu.c.gen {
		cu.hits++
		cu.lat += a.cacheHitNS
		return a.data[i]
	}
	return cu.loadSlow(i, gl)
}

// TryLoad is the inlinable fast path of Load: it returns (value, true) iff
// element i hits the per-proc MRU memo, charging exactly like Load's fast
// path. On false it charges nothing; the caller completes the access with
// LoadMiss(i). Load itself cannot inline (its slow-path call alone busts the
// inliner's budget), so the hottest inner loops — the tree walk — use this
// pair to keep the fast path call-free.
func (cu *Cursor[T]) TryLoad(i int) (T, bool) {
	a := cu.a
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	lr := &a.last[cu.me]
	if lr.line == gl+1 && lr.gen == cu.c.gen {
		cu.hits++
		cu.lat += a.cacheHitNS
		return a.data[i], true
	}
	var zero T
	return zero, false
}

// TryProbe is the second inlinable stage of a cursor load: after TryLoad
// misses the memo, it probes the MRU way of the line's set directly — the
// overwhelmingly common outcome in replayed loops like the tree walk, where
// a line transition leaves the target line still MRU from the previous
// body's traversal. A hit charges and refreshes the memo exactly like
// loadSlow's probe branch. On false (not MRU, or reference model) the caller
// completes the access with LoadMiss(i).
func (cu *Cursor[T]) TryProbe(i int) (T, bool) {
	var zero T
	if refModel {
		return zero, false
	}
	a := cu.a
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	c := cu.c
	base := c.setBase(gl)
	if c.mruHit(base, gl) {
		cu.hits++
		cu.lat += a.cacheHitNS
		a.last[cu.me] = lastRef{gl + 1, c.gen}
		return a.data[i], true
	}
	return zero, false
}

// TryTouch charges a load of element i iff it hits the per-proc MRU memo,
// without materializing the value — the replay loops (precomputed traversal
// traces) need only the charge. Returns whether it charged; on false it
// changes nothing and the caller completes with TouchMiss(i). Charging is
// identical to TryLoad's.
func (cu *Cursor[T]) TryTouch(i int) bool {
	a := cu.a
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	lr := &a.last[cu.me]
	if lr.line == gl+1 && lr.gen == cu.c.gen {
		cu.hits++
		cu.lat += a.cacheHitNS
		return true
	}
	return false
}

// TouchMiss completes a charge whose TryTouch returned false; identical
// charging to LoadMiss without returning the element.
func (cu *Cursor[T]) TouchMiss(i int) {
	a := cu.a
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	if refModel {
		a.chargeRef(cu.p, a.lineOf(i), false)
		return
	}
	base := cu.c.setBase(gl)
	if cu.c.mruHit(base, gl) {
		cu.hits++
		cu.lat += a.cacheHitNS
		a.last[cu.me] = lastRef{gl + 1, cu.c.gen}
	} else {
		cu.lat += a.chargeSlowAcc(cu.p, cu.c, base, gl, a.lineOf(i), false)
	}
}

// Arm is a per-access-stream line memo for LoadArm: it remembers the last
// line the stream verified present (in the MRU way of its set) and the cache
// generation at that moment. While the generation is unchanged no tag in the
// cache has moved — installs, LRU reorders, invalidation evictions, and
// flushes all bump it — so the line is provably still MRU and a repeat
// access charges as a hit without the set hash and tag probe. The per-proc
// memo in Array.last remembers only one line per array; loops that cycle
// through several lines of one array each iteration (the up/down/row arms of
// a 5-point stencil) thrash it, and a per-arm memo restores the hit rate.
type Arm struct {
	line uint64 // global line address + 1 (0 = never set)
	gen  uint64
}

// LoadArm reads element i like Load, additionally consulting and maintaining
// arm as a second line memo. Charging is identical to Load: an arm hit is
// exactly the probe-hit outcome it shortcuts (same hit count, latency, and
// memo refresh), and the arm is bypassed under the reference model.
func (cu *Cursor[T]) LoadArm(arm *Arm, i int) T {
	a := cu.a
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	lr := &a.last[cu.me]
	if lr.line == gl+1 && lr.gen == cu.c.gen {
		cu.hits++
		cu.lat += a.cacheHitNS
		return a.data[i]
	}
	if arm.line == gl+1 && arm.gen == cu.c.gen && !refModel {
		cu.hits++
		cu.lat += a.cacheHitNS
		a.last[cu.me] = lastRef{gl + 1, cu.c.gen}
		return a.data[i]
	}
	v := cu.loadSlow(i, gl)
	arm.line = gl + 1
	arm.gen = cu.c.gen
	return v
}

// LoadMiss completes an access whose TryLoad returned false. TryLoad+LoadMiss
// charges identically to one Load (and TryLoad+TryProbe+LoadMiss likewise:
// a failed probe changes no state, so the re-probe inside charges the same).
func (cu *Cursor[T]) LoadMiss(i int) T {
	a := cu.a
	return cu.loadSlow(i, a.baseLine+uint64(uint64(i)*a.elemSize>>a.lineShift))
}

func (cu *Cursor[T]) loadSlow(i int, gl uint64) T {
	a := cu.a
	if refModel {
		a.chargeRef(cu.p, a.lineOf(i), false)
		return a.data[i]
	}
	base := cu.c.setBase(gl)
	if cu.c.mruHit(base, gl) {
		cu.hits++
		cu.lat += a.cacheHitNS
		a.last[cu.me] = lastRef{gl + 1, cu.c.gen}
	} else {
		cu.lat += a.chargeSlowAcc(cu.p, cu.c, base, gl, a.lineOf(i), false)
	}
	return a.data[i]
}

// Store writes element i through the cursor; identical charging to
// Array.Store with the Advance deferred to Flush.
func (cu *Cursor[T]) Store(i int, v T) {
	a := cu.a
	if !a.shared {
		gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
		lr := &a.last[cu.me]
		if lr.line == gl+1 && lr.gen == cu.c.gen {
			cu.hits++
			cu.lat += a.cacheHitNS
			a.data[i] = v
			return
		}
	}
	cu.storeSlow(i, v)
}

func (cu *Cursor[T]) storeSlow(i int, v T) {
	a := cu.a
	if refModel {
		a.chargeRef(cu.p, a.lineOf(i), true)
		a.data[i] = v
		return
	}
	gl := a.baseLine + uint64(uint64(i)*a.elemSize>>a.lineShift)
	base := cu.c.setBase(gl)
	if !a.shared && cu.c.mruHit(base, gl) {
		cu.hits++
		cu.lat += a.cacheHitNS
		a.last[cu.me] = lastRef{gl + 1, cu.c.gen}
	} else {
		cu.lat += a.chargeSlowAcc(cu.p, cu.c, base, gl, a.lineOf(i), true)
	}
	a.data[i] = v
}

// Flush charges the accumulated hit count and latency to the processor. Call
// it before any rendezvous, message, or phase switch.
func (cu *Cursor[T]) Flush() {
	cu.p.CacheHits += cu.hits
	cu.p.Advance(cu.lat)
	cu.hits = 0
	cu.lat = 0
}
