package numa

import "o2k/internal/sim"

// ReplayLoads charges the load sequence of a precomputed tree-walk trace
// through four cursors: an entry e >= 0 loads element e of bx, by, bm (in
// that order); an entry e < 0 loads elements 3c, 3c+1, 3c+2 of cells for
// c = ^e. The sequence of probes, charges, and memo updates is exactly what
// the per-access TryTouch/TouchMiss chain would perform — the point of the
// batched form is that the per-proc MRU memos of all four arrays and the
// cache's generation counter live in locals across the whole trace instead
// of being reloaded per access, which roughly halves the cost of the hit
// path that dominates replayed walks.
//
// All four cursors must be bound to the same processor (they share one
// cache; the function falls back to the per-access chain if not). Hits and
// latency accumulate into bx — flush all four cursors before any rendezvous
// as usual; only the flushed totals are observable, and those are identical.
func ReplayLoads[T any](trace []int32, bx, by, bm, cells *Cursor[T]) {
	c := bx.c
	if refModel || by.c != c || bm.c != c || cells.c != c {
		for _, e := range trace {
			if e >= 0 {
				j := int(e)
				if !bx.TryTouch(j) {
					bx.TouchMiss(j)
				}
				if !by.TryTouch(j) {
					by.TouchMiss(j)
				}
				if !bm.TryTouch(j) {
					bm.TouchMiss(j)
				}
			} else {
				c3 := int(^e) * 3
				if !cells.TryTouch(c3) {
					cells.TouchMiss(c3)
				}
				if !cells.TryTouch(c3 + 1) {
					cells.TouchMiss(c3 + 1)
				}
				if !cells.TryTouch(c3 + 2) {
					cells.TouchMiss(c3 + 2)
				}
			}
		}
		return
	}

	p := bx.p
	me := bx.me
	aX, aY, aM, aC := bx.a, by.a, bm.a, cells.a
	// One space, one line geometry; element size is fixed by T.
	es, shift := aX.elemSize, aX.lineShift
	baseX, baseY, baseM, baseC := aX.baseLine, aY.baseLine, aM.baseLine, aC.baseLine
	hitNS := aX.cacheHitNS
	lrX, lrY, lrM, lrC := aX.last[me], aY.last[me], aM.last[me], aC.last[me]
	gen := c.gen
	var hits uint64
	var lat sim.Time

	// prevLo remembers the line offset of the last leaf entry that completed
	// with all three body memos current: if no install has moved tags since
	// (every install path below resets or re-checks via gen), a following
	// leaf entry on the same line is three guaranteed memo hits — chargeable
	// with one compare instead of three memo checks.
	prevLo := ^uint64(0)

	for _, e := range trace {
		if e >= 0 {
			lo := uint64(e) * es >> shift
			if lo == prevLo {
				hits += 3
				lat += 3 * hitNS
				continue
			}
			g0 := gen

			gl := baseX + lo
			if lrX.line == gl+1 && lrX.gen == gen {
				hits++
				lat += hitNS
			} else if sb := c.setBase(gl); c.mruHit(sb, gl) {
				hits++
				lat += hitNS
				lrX = lastRef{gl + 1, gen}
			} else {
				lat += aX.chargeSlowAcc(p, c, sb, gl, uint32(lo), false)
				gen = c.gen
				lrX = lastRef{gl + 1, gen}
			}

			gl = baseY + lo
			if lrY.line == gl+1 && lrY.gen == gen {
				hits++
				lat += hitNS
			} else if sb := c.setBase(gl); c.mruHit(sb, gl) {
				hits++
				lat += hitNS
				lrY = lastRef{gl + 1, gen}
			} else {
				lat += aY.chargeSlowAcc(p, c, sb, gl, uint32(lo), false)
				gen = c.gen
				lrY = lastRef{gl + 1, gen}
			}

			gl = baseM + lo
			if lrM.line == gl+1 && lrM.gen == gen {
				hits++
				lat += hitNS
			} else if sb := c.setBase(gl); c.mruHit(sb, gl) {
				hits++
				lat += hitNS
				lrM = lastRef{gl + 1, gen}
			} else {
				lat += aM.chargeSlowAcc(p, c, sb, gl, uint32(lo), false)
				gen = c.gen
				lrM = lastRef{gl + 1, gen}
			}

			if gen == g0 {
				// No install during this entry: all three memos hold this
				// line at the current generation.
				prevLo = lo
			} else {
				prevLo = ^uint64(0)
			}
		} else {
			c3 := uint64(int(^e) * 3)
			for k := uint64(0); k < 3; k++ {
				lo := (c3 + k) * es >> shift
				gl := baseC + lo
				if lrC.line == gl+1 && lrC.gen == gen {
					hits++
					lat += hitNS
				} else if sb := c.setBase(gl); c.mruHit(sb, gl) {
					hits++
					lat += hitNS
					lrC = lastRef{gl + 1, gen}
				} else {
					lat += aC.chargeSlowAcc(p, c, sb, gl, uint32(lo), false)
					gen = c.gen
					lrC = lastRef{gl + 1, gen}
					prevLo = ^uint64(0) // install may have displaced a body memo line
				}
			}
		}
	}

	aX.last[me], aY.last[me], aM.last[me], aC.last[me] = lrX, lrY, lrM, lrC
	bx.hits += hits
	bx.lat += lat
}
